// Connection configuration, split out of connection.h so the transport
// layers (handshake, assembler, dispatcher) can read their knobs without
// depending on the Connection composer itself.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cc/congestion.h"
#include "common/types.h"
#include "quic/scheduler.h"
#include "quic/streams.h"
#include "quic/wire.h"

namespace mpq::quic {

enum class Perspective { kClient, kServer };

/// Single-path default: CUBIC; multipath default: coupled OLIA (§3).
using CongestionAlgo = cc::Algorithm;

struct ConnectionConfig {
  bool multipath = false;
  CongestionAlgo congestion = CongestionAlgo::kCubic;
  SchedulerType scheduler = SchedulerType::kLowestRtt;
  ByteCount receive_window = kDefaultReceiveWindow;
  ByteCount max_packet_size{kMaxPacketSize};
  /// §3: send WINDOW_UPDATE frames on every path (ablation knob).
  bool window_update_on_all_paths = true;
  /// §4.3: advertise potentially-failed paths in PATHS frames so the peer
  /// avoids its own RTO (ablation knob).
  bool send_paths_frame = true;
  /// Probe potentially-failed paths with PINGs so they can recover.
  Duration failed_path_probe_interval = 1 * kSecond;
  /// Absolute ceiling on a path's backed-off RTO. Without it a long
  /// outage doubles the RTO (up to the 2^6 backoff cap) on top of an
  /// outage-inflated smoothed RTT, and after the link heals the path can
  /// sit tens of seconds away from its next retransmission even though a
  /// probe ACK would revive it — the chaos sweep's long-flap scenarios
  /// stall exactly there. 15 s keeps the worst case bounded while
  /// staying above 200 ms << 6 = 12.8 s, so minimum-RTO paths (the
  /// Fig. 11 handover) never hit the cap and keep their exact timing.
  Duration max_rto = 15 * kSecond;
  /// Pace data packets at ~1.25x cwnd/RTT per path (2x in slow start),
  /// as quic-go/Chromium did in 2017 — Linux TCP of that era did not
  /// pace, which is part of QUIC's edge in bufferbloat/lossy scenarios.
  bool pacing = true;
  /// Single-path QUIC connection migration (§1's "hard handover"): when
  /// the only path is declared potentially failed — by RTO, or by
  /// receiving nothing for `idle_failure_timeout` while a transfer is in
  /// progress — migrate it to the next local/peer address pair. No effect
  /// with multipath enabled (MPQUIC handles failure via its other paths).
  bool migrate_on_path_failure = false;
  Duration idle_failure_timeout = 2 * kSecond;
  /// §3 designed paths created by either host (server paths get even
  /// ids) but the paper's implementation leaves server-initiated paths
  /// unused because clients sit behind NATs. Off by default, as there;
  /// when enabled the server opens a path to every address the client
  /// advertises via ADD_ADDRESS.
  bool allow_server_paths = false;
  /// Advertise our own extra addresses to the peer after the handshake
  /// (the client-side ADD_ADDRESS; servers advertise theirs in the SHLO).
  bool advertise_addresses = true;
  /// §3: "upon handshake completion, [the path manager] opens one path
  /// over each interface on the client host". Disable to test pure
  /// server-initiated path setups.
  bool client_opens_paths = true;
  /// 0-RTT: the client already holds the server's config (the same
  /// out-of-band secret that makes our 1-RTT handshake possible), derives
  /// the session keys locally and sends encrypted data together with the
  /// CHLO — Google QUIC's repeat-connection handshake. The SHLO still
  /// confirms. Trades one RTT for no fresh server entropy in the keys.
  bool zero_rtt = false;
  /// Initial CHLO retransmission timeout (doubles on each attempt).
  Duration handshake_timeout = 1 * kSecond;
  /// Close the connection after this long with no packets in either
  /// direction (0 = never — the experiment harness manages lifetimes
  /// itself, so that is the default).
  Duration idle_timeout = 0;
  /// Versions this endpoint accepts. The handshake fails cleanly when
  /// client and server share none (§2: version negotiation is part of
  /// what lets QUIC evolve).
  std::vector<std::uint32_t> supported_versions{kVersionMpq1};
  /// Shared secret standing in for the out-of-band server config of the
  /// 1-RTT Google-QUIC handshake (see crypto::DeriveSessionKeys).
  std::array<std::uint8_t, 16> server_config_secret{};
};

}  // namespace mpq::quic
