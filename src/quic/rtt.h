// Per-path RTT estimation (RFC 6298-style smoothing with QUIC's ack-delay
// correction). The paper repeatedly attributes MPQUIC's scheduling edge to
// "precise path latency estimation" (§4.1): unlike TCP, QUIC never samples
// a retransmitted packet (fresh PN per transmission removes the ambiguity)
// and the peer reports how long it withheld the ACK.
#pragma once

#include <algorithm>

#include "common/types.h"

namespace mpq::quic {

class RttEstimator {
 public:
  /// Record one sample. `ack_delay` is the peer-reported delay, subtracted
  /// when it does not push the sample below the observed minimum.
  void AddSample(Duration rtt, Duration ack_delay) {
    if (rtt <= 0) rtt = 1;
    min_rtt_ = has_sample_ ? std::min(min_rtt_, rtt) : rtt;
    Duration adjusted = rtt;
    if (adjusted - ack_delay >= min_rtt_) adjusted -= ack_delay;
    latest_ = adjusted;
    if (!has_sample_) {
      srtt_ = adjusted;
      rttvar_ = adjusted / 2;
      has_sample_ = true;
      return;
    }
    const Duration err =
        srtt_ > adjusted ? srtt_ - adjusted : adjusted - srtt_;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + adjusted) / 8;
  }

  bool has_sample() const { return has_sample_; }
  Duration smoothed() const { return srtt_; }
  Duration variance() const { return rttvar_; }
  Duration min_rtt() const { return min_rtt_; }
  Duration latest() const { return latest_; }

  /// Retransmission timeout: srtt + max(4*rttvar, granularity), floored.
  Duration Rto() const {
    if (!has_sample_) return kDefaultRto;
    const Duration var_term = std::max<Duration>(4 * rttvar_, kGranularity);
    return std::max<Duration>(srtt_ + var_term, kMinRto);
  }

  static constexpr Duration kDefaultRto = 500 * kMillisecond;
  static constexpr Duration kMinRto = 200 * kMillisecond;
  static constexpr Duration kGranularity = 1 * kMillisecond;

 private:
  bool has_sample_ = false;
  Duration srtt_ = 0;
  Duration rttvar_ = 0;
  Duration min_rtt_ = 0;
  Duration latest_ = 0;
};

}  // namespace mpq::quic
