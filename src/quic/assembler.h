// Packet assembly and transmission: frame packing under the byte budget,
// sealing, retransmittable-packet tracking, delayed-ACK scheduling and
// per-path pacing. The assembler owns the send half of the datapath —
// the recycled frame scratch, the sealing keys, the per-path ack/pace
// token state — and is the only layer that calls the datagram send
// function.
//
// Packing order per packet (§2/§3): piggybacked ACK, path-pinned control
// frames, shared control frames, then stream data round-robined across
// the send streams (one chunk each per pass, which is what "streams
// prevent head-of-line blocking" rests on).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/types.h"
#include "crypto/aead.h"
#include "quic/config.h"
#include "quic/control_queue.h"
#include "quic/path.h"
#include "quic/recovery.h"
#include "quic/stats.h"
#include "quic/streams.h"
#include "quic/trace.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace mpq::quic {

/// What the assembler needs from the composer: a way to kick the send
/// loop (pace timer) and the connection-level idle-timer reset on every
/// transmission.
class AssemblerDelegate {
 public:
  virtual ~AssemblerDelegate() = default;
  virtual void RequestSend() = 0;
  virtual void OnPacketTransmitted() = 0;
};

class PacketAssembler {
 public:
  using SendFunction = std::function<void(
      sim::Address local, sim::Address remote, std::vector<std::uint8_t>)>;

  PacketAssembler(sim::Simulator& sim, const ConnectionConfig& config,
                  ConnectionId cid, ConnectionStats& stats,
                  FlowController& flow,
                  std::map<StreamId, std::unique_ptr<SendStream>>& streams,
                  ControlQueue& control, RecoveryManager& recovery,
                  AssemblerDelegate& delegate, SendFunction send);

  void SetTracer(ConnectionTracer* tracer) { tracer_ = tracer; }
  /// Install the sealing keys (ours; the dispatcher holds the opener).
  void SetSealer(std::unique_ptr<crypto::PacketProtection> seal);
  bool HasKeys() const { return seal_ != nullptr; }

  /// Adopt a path: create its (unarmed) delayed-ACK timer and pacing
  /// bucket. Paths are never unregistered.
  void RegisterPath(Path& path);

  void set_established(bool established) { established_ = established; }
  /// Connection closed: stop the ack/pace timers, refuse late ack-only
  /// sends.
  void OnConnectionClosed();

  /// Assemble and transmit one packet on `path` from a piggybacked ACK,
  /// control frames and stream data. Returns false if there was nothing
  /// to send.
  bool SendOnePacket(Path& path, bool include_stream_data,
                     const std::vector<StreamFrame>* duplicate_of,
                     std::vector<StreamFrame>* sent_stream_frames);
  void SendAckOnlyPacket(Path& path);
  void SendPing(Path& path, bool track);
  /// `frames` is consumed (retransmittable frames are moved into the sent-
  /// packet record) but the vector's allocation stays with the caller, so
  /// per-packet scratch can be recycled.
  void TransmitPacket(Path& path, std::vector<Frame>& frames,
                      bool retransmittable, bool handshake_cleartext);

  // -- transmit bursts ----------------------------------------------------
  // Between BeginBurst and EndBurst, TransmitPacket runs everything except
  // seal + datagram send inline (tracking, pacing, cwnd — the state the
  // packet-fill loop reads) and defers the crypto: EndBurst seals every
  // pending packet in one crypto::SealN call, then hands the datagrams to
  // the send function in their original order. Brackets nest; the
  // outermost EndBurst flushes. Connection::TrySend brackets its whole
  // send loop, so retransmission storms and multi-packet fills amortize
  // the per-call crypto dispatch overhead.
  void BeginBurst();
  void EndBurst();
  /// An ACK-eliciting packet arrived on `path`: send the ACK now (out of
  /// order, or enough unacked packets) or arm the delayed-ACK timer.
  void MaybeScheduleAck(Path& path, bool out_of_order);

  // -- pacing -------------------------------------------------------------
  bool PacingAllows(Path& path, ByteCount bytes);
  /// Arm the pace timer for the earliest time any path can send again.
  void ArmPaceTimer();
  /// Migration: the new network path starts with an empty token bucket.
  void ResetPathPacing(PathId id);

  // -- send-side flow accounting ------------------------------------------
  ByteCount SendAllowance() const {
    return flow_.SendAllowance(new_stream_bytes_sent_);
  }
  bool AnyStreamHasData();

 private:
  friend class Auditor;

  struct PathSendState {
    Path* path = nullptr;
    std::unique_ptr<sim::Timer> ack_timer;  // delayed ACK
    /// Pacing token bucket (bytes); refilled from cwnd/RTT.
    double pace_tokens = 0.0;
    TimePoint pace_refill_time = 0;
  };

  AckFrame BuildAck(PathSendState& state);
  /// Bytes/microsecond this path may currently emit.
  double PacingRate(const Path& path) const;
  void RefillPaceTokens(PathSendState& state);
  void ConsumePaceTokens(PathSendState& state, ByteCount bytes);

  sim::Simulator& sim_;
  const ConnectionConfig& config_;
  ConnectionId cid_;
  ConnectionStats& stats_;
  FlowController& flow_;
  std::map<StreamId, std::unique_ptr<SendStream>>& send_streams_;
  ControlQueue& control_;
  RecoveryManager& recovery_;
  AssemblerDelegate& delegate_;
  SendFunction send_;
  ConnectionTracer* tracer_ = nullptr;

  std::unique_ptr<crypto::PacketProtection> seal_;  // our direction
  bool established_ = false;
  bool closed_ = false;
  std::map<PathId, PathSendState> paths_;
  std::unique_ptr<sim::Timer> pace_timer_;

  /// Round-robin position for stream scheduling: concurrent streams share
  /// the connection fairly (one chunk each per packet-fill pass).
  StreamId next_stream_to_serve_{};
  ByteCount new_stream_bytes_sent_{};

  // Recycled per-packet scratch. The capacity survives across packets so
  // the steady-state datapath allocates only the outgoing datagram itself.
  std::vector<Frame> send_frames_scratch_;

  /// One sealed-later packet of the current burst (see BeginBurst).
  struct PendingDatagram {
    sim::Address local;
    sim::Address remote;
    std::vector<std::uint8_t> payload;  // header | plaintext | tag slot
    PathId seal_path{};                 // PathId{0} when not multipath
    PacketNumber pn{};
    std::size_t header_size = 0;
  };
  void FlushBurst();

  int burst_depth_ = 0;
  std::vector<PendingDatagram> burst_pending_;
  /// Recycled SealN request array (capacity survives across bursts).
  std::vector<crypto::SealRequest> burst_seal_requests_;
};

}  // namespace mpq::quic
