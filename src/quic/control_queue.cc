#include "quic/control_queue.h"

#include <utility>

namespace mpq::quic {

void ControlQueue::EnqueueShared(Frame frame) {
  shared_.push_back(std::move(frame));
}

void ControlQueue::EnqueuePinned(PathId path, const Frame& frame) {
  pinned_[path].emplace_back(frame);
}

bool ControlQueue::HasPinned(PathId path) const {
  const auto it = pinned_.find(path);
  return it != pinned_.end() && !it->second.empty();
}

void ControlQueue::FillPacket(PathId path, std::size_t& budget,
                              std::vector<Frame>& out) {
  if (auto it = pinned_.find(path); it != pinned_.end()) {
    std::vector<Frame>& pinned = it->second;
    while (!pinned.empty()) {
      const std::size_t size = FrameWireSize(pinned.front());
      if (size > budget) break;
      budget -= size;
      out.push_back(std::move(pinned.front()));
      pinned.erase(pinned.begin());
    }
  }
  while (!shared_.empty()) {
    const std::size_t size = FrameWireSize(shared_.front());
    if (size > budget) break;
    budget -= size;
    out.push_back(std::move(shared_.front()));
    shared_.erase(shared_.begin());
  }
}

}  // namespace mpq::quic
