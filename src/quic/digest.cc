// Connection::StateDigest — the canonical state hash behind the model
// checker's pruning and determinism checks (docs/MODEL_CHECKING.md).
//
// What goes in: every field that future protocol behavior is a function
// of — packet-number spaces, tracked in-flight packets, ACK ranges,
// stream offsets and retransmission ranges, flow-control limits, path
// status flags, queued control frames, congestion windows.
//
// What stays out, deliberately:
//   - observability state (tracers, ConnectionStats, profiler spans):
//     attaching a qlog tracer must not change the digest, or the
//     determinism theorem would be vacuous (tests/digest_test.cc);
//   - raw timestamps and RTT estimates: they differ across every
//     interleaving, so hashing them would make all states unique and
//     disable pruning. The explorer separately folds the *relative*
//     shape of the pending event queue into its own digest, which is
//     where timing differences that matter re-enter.
//
// Lives next to quic/audit.cc and shares the Auditor friendship — the
// digest walks exactly the private state the invariant checker audits.
#include <cstdint>

#include "cc/congestion.h"
#include "quic/audit.h"
#include "quic/connection.h"

namespace mpq::quic {

namespace {

// FNV-1a, 64-bit. Not cryptographic — collisions merely make the
// explorer prune a state it should have expanded, never miss a
// violation on the trace it does explore.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

class Hasher {
 public:
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (i * 8)) & 0xffU;
      hash_ *= kFnvPrime;
    }
  }
  void Bool(bool b) { U64(b ? 1 : 0); }
  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffset;
};

void HashAddress(Hasher& h, const sim::Address& a) {
  h.U64((static_cast<std::uint64_t>(a.node) << 16) | a.iface);
}

void HashFrame(Hasher& h, const Frame& frame) {
  // Queued control frames: the variant alternative plus the coarse
  // payload identity is enough to distinguish protocol states.
  h.U64(frame.index());
  if (const auto* wu = std::get_if<WindowUpdateFrame>(&frame)) {
    h.U64(wu->stream_id.value());
    h.U64(wu->max_data.value());
  } else if (const auto* add = std::get_if<AddAddressFrame>(&frame)) {
    for (const auto& address : add->addresses) HashAddress(h, address);
  } else if (const auto* rm = std::get_if<RemoveAddressFrame>(&frame)) {
    for (const auto& address : rm->addresses) HashAddress(h, address);
  } else if (const auto* paths = std::get_if<PathsFrame>(&frame)) {
    h.U64(paths->paths.size());
    for (const auto& entry : paths->paths) {
      h.U64(entry.path_id.value());
      h.Bool(entry.status == PathStatus::kPotentiallyFailed);
    }
  }
}

void HashPath(Hasher& h, const Path& path) {
  h.U64(path.id().value());
  HashAddress(h, path.local_address());
  HashAddress(h, path.remote_address());
  h.U64(path.largest_sent().value());
  h.U64(path.largest_acked().value());
  h.U64(static_cast<std::uint64_t>(path.rto_count()));
  h.Bool(path.potentially_failed());
  h.Bool(path.remote_reported_failed());
  h.Bool(path.ack_pending());
  h.U64(static_cast<std::uint64_t>(path.unacked_retransmittable_count()));
  h.U64(path.congestion().congestion_window().value());
  h.U64(path.congestion().bytes_in_flight().value());

  // Tracked in-flight packets (ordered map: deterministic walk).
  const auto& sent = Auditor::SentPackets(path);
  h.U64(sent.size());
  for (const auto& [pn, packet] : sent) {
    h.U64(pn.value());
    h.U64(packet.bytes.value());
    h.U64(packet.frames.size());
  }

  // Receive side: the coalesced ACK ranges.
  const auto ranges = path.receiver().BuildAckRanges();
  h.U64(ranges.size());
  for (const auto& range : ranges) {
    h.U64(range.smallest.value());
    h.U64(range.largest.value());
  }
}

}  // namespace

// Private-state accessors for the digest, routed through the Auditor
// friendship so Path/streams/dispatcher need no new friends.
const std::map<PacketNumber, SentPacket>& Auditor::SentPackets(
    const Path& path) {
  return path.sent_;
}

std::uint64_t Auditor::Digest(const Connection& conn) {
  Hasher h;
  h.Bool(conn.established_);
  h.Bool(conn.closed_);
  h.U64(conn.local_addresses_.size());
  for (const auto& a : conn.local_addresses_) HashAddress(h, a);
  h.U64(conn.peer_addresses_.size());
  for (const auto& a : conn.peer_addresses_) HashAddress(h, a);

  // Paths (ordered by id).
  h.U64(conn.paths_.size());
  for (const auto& [id, path] : conn.paths_) {
    h.U64(id.value());
    if (path != nullptr) HashPath(h, *path);
  }

  // Send streams and flow control.
  h.U64(conn.assembler_->new_stream_bytes_sent_.value());
  h.U64(conn.send_streams_.size());
  for (const auto& [id, stream] : conn.send_streams_) {
    h.U64(id.value());
    h.U64(stream->max_offset_sent().value());
    h.Bool(stream->fin_sent_);
    h.Bool(stream->fin_lost_);
    h.U64(stream->peer_max_stream_data_.value());
    h.U64(stream->retransmit_.size());
    for (const auto& [offset, length] : stream->retransmit_) {
      h.U64(offset.value());
      h.U64(length.value());
    }
  }
  h.U64(conn.flow_.consumed_.value());
  h.U64(conn.flow_.local_max_data_.value());
  h.U64(conn.flow_.peer_max_data_.value());
  h.Bool(conn.blocked_reported_);

  // Receive streams.
  h.U64(conn.dispatcher_->total_highest_received_.value());
  h.U64(conn.dispatcher_->recv_streams_.size());
  for (const auto& [id, stream] : conn.dispatcher_->recv_streams_) {
    h.U64(id.value());
    h.U64(stream->delivered_offset().value());
    h.U64(stream->highest_received().value());
    h.U64(stream->buffered_bytes().value());
    h.Bool(stream->fin_known());
    h.U64(stream->final_size().value());
  }
  h.U64(conn.dispatcher_->stream_advertised_.size());
  for (const auto& [id, limit] : conn.dispatcher_->stream_advertised_) {
    h.U64(id.value());
    h.U64(limit.value());
  }

  // Queued control frames (both tiers, FIFO order).
  h.U64(conn.control_.shared_.size());
  for (const auto& frame : conn.control_.shared_) HashFrame(h, frame);
  h.U64(conn.control_.pinned_.size());
  for (const auto& [path, frames] : conn.control_.pinned_) {
    h.U64(path.value());
    h.U64(frames.size());
    for (const auto& frame : frames) HashFrame(h, frame);
  }

  return h.hash();
}

std::uint64_t Connection::StateDigest() const { return Auditor::Digest(*this); }

}  // namespace mpq::quic
