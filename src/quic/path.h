// One path of an MPQUIC connection (§3): its own packet-number space in
// each direction, its own RTT estimator, congestion controller, loss
// detection state and "potentially failed" flag (§4.3). The Path is a
// passive state machine — the Connection drives it and owns the timers.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "cc/congestion.h"
#include "common/types.h"
#include "quic/ack_tracker.h"
#include "quic/rtt.h"
#include "quic/wire.h"
#include "sim/net.h"

namespace mpq::quic {

struct SentPacket {
  PacketNumber pn{};
  TimePoint sent_time = 0;
  ByteCount bytes{};  // full wire size, charged to the congestion window
  std::vector<Frame> frames;  // retransmittable frames only
};

class Path {
 public:
  Path(PathId id, sim::Address local, sim::Address remote,
       std::unique_ptr<cc::CongestionController> congestion)
      : id_(id),
        local_(local),
        remote_(remote),
        congestion_(std::move(congestion)) {}

  PathId id() const { return id_; }
  sim::Address local_address() const { return local_; }
  sim::Address remote_address() const { return remote_; }

  /// Receive-side address update (NAT rebinding, §3: "the presence of the
  /// Path ID also allows MPQUIC to use multiple flows when a remote
  /// address changes over a particular path" — path state is kept).
  void UpdateAddresses(sim::Address local, sim::Address remote) {
    local_ = local;
    remote_ = remote;
  }

  /// Sender-side hard migration (QUIC connection migration): move to a
  /// new address pair, write off everything in flight (returned for
  /// requeueing), and reset the measurements that belonged to the old
  /// network path. Packet-number spaces and keys survive.
  std::vector<SentPacket> Migrate(sim::Address local, sim::Address remote,
                                  std::unique_ptr<cc::CongestionController>
                                      fresh_congestion,
                                  TimePoint now);

  // -- sending ----------------------------------------------------------
  PacketNumber AllocatePacketNumber() { return next_pn_++; }
  PacketNumber largest_sent() const { return next_pn_ - 1; }
  PacketNumber largest_acked() const { return largest_acked_; }

  /// Register a sent retransmittable packet (ack-only packets are neither
  /// tracked nor congestion-controlled, per QUIC).
  void OnPacketSent(SentPacket packet) {
    congestion_->OnPacketSent(packet.sent_time, packet.bytes);
    last_send_time_ = packet.sent_time;
    bytes_sent_ += packet.bytes;
    sent_.emplace(packet.pn, std::move(packet));
  }

  struct AckResult {
    std::vector<SentPacket> newly_acked;
    std::vector<SentPacket> lost;
    bool was_new_largest = false;
  };

  /// Process an ACK frame for this path's PN space: RTT sampling, CC
  /// updates, packet-threshold and time-threshold loss detection.
  AckResult OnAckReceived(const AckFrame& ack, TimePoint now);

  /// Re-run time-threshold loss detection (called when the loss timer
  /// fires). Packets declared lost are removed and returned.
  std::vector<SentPacket> DetectTimeThresholdLosses(TimePoint now);

  /// Earliest deadline at which an unacked packet crosses the time
  /// threshold, or kTimeInfinite.
  TimePoint NextLossTime() const { return loss_time_; }

  /// RTO fired: collapse the window and hand back every in-flight frame
  /// for retransmission (on any path — MPQUIC flexibility, §3). Marks the
  /// path potentially failed if there was no activity since our last
  /// transmission (§4.3 / Linux MPTCP heuristic).
  std::vector<SentPacket> OnRetransmissionTimeout(TimePoint now);

  bool HasInFlight() const { return !sent_.empty(); }
  TimePoint OldestInFlightSentTime() const {
    return sent_.empty() ? kTimeInfinite : sent_.begin()->second.sent_time;
  }

  /// Current RTO duration with exponential backoff applied.
  Duration CurrentRto() const {
    return rtt_.Rto() << (rto_count_ > 6 ? 6 : rto_count_);
  }

  // -- receiving --------------------------------------------------------
  ReceivedPacketTracker& receiver() { return receiver_; }
  const ReceivedPacketTracker& receiver() const { return receiver_; }
  bool ack_pending() const { return ack_pending_; }
  void set_ack_pending(bool pending) { ack_pending_ = pending; }
  int unacked_retransmittable_count() const { return unacked_count_; }
  void NoteRetransmittableReceived() { ++unacked_count_; ack_pending_ = true; }
  void ClearAckPending() { ack_pending_ = false; unacked_count_ = 0; }

  // -- path quality / status --------------------------------------------
  RttEstimator& rtt() { return rtt_; }
  const RttEstimator& rtt() const { return rtt_; }
  cc::CongestionController& congestion() { return *congestion_; }
  const cc::CongestionController& congestion() const { return *congestion_; }

  bool potentially_failed() const { return potentially_failed_; }
  void set_potentially_failed(bool failed) { potentially_failed_ = failed; }
  /// Peer told us (via PATHS frame) that this path failed on its side.
  bool remote_reported_failed() const { return remote_failed_; }
  void set_remote_reported_failed(bool failed) { remote_failed_ = failed; }

  bool Usable() const { return !potentially_failed_ && !remote_failed_; }

  TimePoint last_send_time() const { return last_send_time_; }
  TimePoint last_ack_time() const { return last_ack_time_; }
  int rto_count() const { return rto_count_; }

  // -- statistics (PATHS frame + harness diagnostics) ---------------------
  ByteCount bytes_sent() const { return bytes_sent_; }
  std::uint64_t packets_declared_lost() const { return packets_lost_; }
  std::uint64_t packets_acked() const { return packets_acked_; }

 private:
  friend class Auditor;

  static constexpr PacketNumber kReorderingThreshold{3};

  Duration TimeThreshold() const {
    const Duration base =
        std::max(rtt_.smoothed(), rtt_.latest());
    return std::max<Duration>(base * 9 / 8, 1 * kMillisecond);
  }

  void DeclareLost(std::map<PacketNumber, SentPacket>::iterator it,
                   TimePoint now, std::vector<SentPacket>& out);

  PathId id_;
  sim::Address local_;
  sim::Address remote_;
  std::unique_ptr<cc::CongestionController> congestion_;
  RttEstimator rtt_;

  // Send state.
  PacketNumber next_pn_{1};
  PacketNumber largest_acked_{};
  TimePoint largest_acked_sent_time_ = 0;
  std::map<PacketNumber, SentPacket> sent_;
  TimePoint loss_time_ = kTimeInfinite;
  TimePoint last_send_time_ = -1;
  TimePoint last_ack_time_ = -1;
  int rto_count_ = 0;
  bool potentially_failed_ = false;
  bool remote_failed_ = false;

  // Receive state.
  ReceivedPacketTracker receiver_;
  bool ack_pending_ = false;
  int unacked_count_ = 0;

  // Statistics.
  ByteCount bytes_sent_{};
  std::uint64_t packets_lost_ = 0;
  std::uint64_t packets_acked_ = 0;
};

}  // namespace mpq::quic
