// The (MP)QUIC connection — §2 and §3 of the paper, composed from five
// enforced layers rather than one monolith:
//
//   HandshakeLayer   CHLO/SHLO exchange, 0-RTT gating   (quic/handshake.h)
//   FrameDispatcher  decrypt → parse → route            (quic/dispatch.h)
//   PacketAssembler  frame packing, sealing, pacing     (quic/assembler.h)
//   RecoveryManager  loss detection, RTO/probe timers   (quic/recovery.h)
//   ControlQueue     reliable control-frame scheduling  (quic/control_queue.h)
//
// Connection is the composer: it owns the paths, the send streams, flow
// control and the scheduler, and implements the layers' delegate
// interfaces (privately — the delegate vocabulary is plumbing, not API).
// Each layer sees only its delegate plus the layers strictly below it;
// the mpq-layering lint rule turns that DAG into a build-time check.
//
// Single-path QUIC is the degenerate configuration (multipath disabled:
// no Path ID byte on the wire, one packet-number space, CUBIC), so the
// evaluation compares the same code base with and without the multipath
// extension — mirroring how the paper extends quic-go.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cc/congestion.h"
#include "cc/lia.h"
#include "cc/olia.h"
#include "common/rng.h"
#include "common/types.h"
#include "quic/assembler.h"
#include "quic/config.h"
#include "quic/control_queue.h"
#include "quic/dispatch.h"
#include "quic/handshake.h"
#include "quic/path.h"
#include "quic/recovery.h"
#include "quic/scheduler.h"
#include "quic/stats.h"
#include "quic/streams.h"
#include "quic/trace.h"
#include "quic/wire.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace mpq::quic {

class Connection : private RecoveryDelegate,
                   private AssemblerDelegate,
                   private DispatchDelegate,
                   private HandshakeDelegate {
 public:
  /// `send` transmits a datagram from a local address this connection
  /// owns; the endpoint wires it to the right socket.
  using SendFunction = PacketAssembler::SendFunction;

  Connection(sim::Simulator& sim, Perspective perspective, ConnectionId cid,
             ConnectionConfig config, Rng rng, SendFunction send);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // -- endpoint wiring ----------------------------------------------------
  /// Local addresses (one per interface). The first is the initial path's.
  void SetLocalAddresses(std::vector<sim::Address> addresses);
  /// Feed an incoming datagram (already demultiplexed by CID).
  void OnDatagram(const sim::Datagram& datagram);
  /// Feed a same-instant run of datagrams (quic::Server batch dispatch):
  /// consecutive 1-RTT packets are decrypted with one crypto::OpenN call
  /// and the send loop runs once for the whole run instead of once per
  /// datagram. Payloads are decrypted in place — the caller owns the
  /// datagrams and must not reuse their payload bytes afterwards.
  void OnDatagramBatch(std::span<sim::Datagram> datagrams);

  // -- client lifecycle ---------------------------------------------------
  /// Start the secure handshake toward the server's initial address.
  void Connect(sim::Address server_address);

  // -- application API ----------------------------------------------------
  /// Called when the handshake completes (client: SHLO received; server:
  /// first CHLO processed).
  void SetEstablishedHandler(std::function<void()> handler) {
    on_established_ = std::move(handler);
  }
  /// In-order stream delivery: (stream, offset, bytes, finished).
  using StreamDataHandler = FrameDispatcher::StreamDataHandler;
  void SetStreamDataHandler(StreamDataHandler handler);
  /// Open (or continue) a send stream fed by `source`; transmission starts
  /// as soon as the handshake and the scheduler allow.
  void SendOnStream(StreamId id, std::unique_ptr<SendSource> source);

  /// Abort a send stream: stop (re)transmitting its data and tell the
  /// peer via RST_STREAM. The receiver's handler sees finished=true with
  /// whatever prefix was delivered.
  void ResetStream(StreamId id, std::uint16_t error_code);

  /// QUIC connection migration (§1: "a form of hard handover"): move an
  /// existing path to a new local/remote address pair. Path state (packet
  /// numbers, keys) survives; RTT and congestion state are reset because
  /// the new network path shares nothing with the old one. In-flight data
  /// is re-sent via the normal loss-recovery machinery.
  void MigratePath(PathId id, sim::Address new_local,
                   sim::Address new_remote);

  /// Withdraw one of our addresses (interface going away): sends
  /// REMOVE_ADDRESS and marks the paths bound to it as failed so the
  /// scheduler drains off them.
  void RemoveLocalAddress(sim::Address address);

  /// (Re-)announce one of our addresses (interface came back): sends
  /// ADD_ADDRESS and clears the local failure mark on paths bound to it,
  /// undoing RemoveLocalAddress. The peer clears its own
  /// remote-reported-failed mark when the frame arrives.
  void AddLocalAddress(sim::Address address);

  void Close(std::uint16_t error_code, const std::string& reason);

  /// Attach a tracer (not owned; must outlive the connection or be
  /// detached with nullptr). Fans out to every layer. See quic/trace.h.
  void SetTracer(ConnectionTracer* tracer);

  // -- introspection ------------------------------------------------------
  bool established() const { return established_; }
  bool closed() const { return closed_; }
  /// Canonical digest of the protocol state (quic/digest.cc): equal
  /// digests ⇒ equivalent states for the mpq_model explorer; identical
  /// schedules must yield identical digest sequences. Excludes
  /// observability state (tracers, stats, profiler) by construction —
  /// tests/digest_test.cc holds that line.
  std::uint64_t StateDigest() const;
  ConnectionId cid() const { return cid_; }
  const ConnectionStats& stats() const { return stats_; }
  std::vector<const Path*> paths() const;
  Path* GetPath(PathId id);
  const Scheduler& scheduler() const { return *scheduler_; }
  sim::Simulator& simulator() { return sim_; }
  const ConnectionConfig& config() const { return config_; }

 private:
  friend class Auditor;

  // -- HandshakeDelegate ---------------------------------------------------
  bool connection_established() const override { return established_; }
  const std::vector<sim::Address>& local_addresses() const override {
    return local_addresses_;
  }
  void OnHandshakeKeys(std::unique_ptr<crypto::PacketProtection> seal,
                       std::unique_ptr<crypto::PacketProtection> open) override;
  void SendHandshakeFrames(std::vector<Frame>& frames) override;
  void RecordHandshakePacketNumber(PathId path, PacketNumber truncated,
                                   std::size_t pn_length) override;
  void OnServerChloAccepted(sim::Address local, sim::Address remote) override;
  void OnPeerAddresses(std::vector<sim::Address> addresses) override;
  void OnClientHandshakeComplete() override;
  void OnZeroRttConfirmed(
      const std::vector<sim::Address>& peer_addresses) override;
  void AddHandshakeRttSample(Duration rtt, bool only_if_no_sample) override;
  void OnHandshakeFailed() override;

  // -- DispatchDelegate ----------------------------------------------------
  bool connection_closed() const override { return closed_; }
  Path* EnsurePath(PathId id, const sim::Datagram& datagram) override;
  void OnAckFrame(const AckFrame& ack) override;
  void OnWindowUpdateFrame(const WindowUpdateFrame& frame) override;
  void OnPathsFrame(const PathsFrame& frame) override;
  void OnAddAddressFrame(const AddAddressFrame& frame) override;
  void OnRemoveAddressFrame(const RemoveAddressFrame& frame) override;
  void OnPeerClose(const ConnectionCloseFrame& frame) override;
  void FanOutWindowUpdate(const WindowUpdateFrame& frame) override;
  void OnAckElicitingPacket(Path& path, bool out_of_order) override;

  // -- RecoveryDelegate ----------------------------------------------------
  void OnStreamFrameLost(StreamId stream, ByteCount offset, ByteCount length,
                         bool fin) override;
  void RequeueWindowUpdate(const WindowUpdateFrame& frame) override;
  void RequeuePathsSnapshot() override;
  void RequeueControlFrame(Frame frame) override;
  bool OnPathPotentiallyFailed(PathId path) override;
  void OnPathRecovered(PathId path) override;
  void SendProbePing(PathId path) override;
  void RunAudit() override;

  // -- AssemblerDelegate (RequestSend is shared with RecoveryDelegate) -----
  void RequestSend() override { TrySend(); }
  void OnPacketTransmitted() override;

  // -- composer logic ------------------------------------------------------
  void BecomeEstablished();
  Path& CreatePath(PathId id, sim::Address local, sim::Address remote);
  void OpenClientPaths();
  /// Server-initiated paths toward freshly advertised client addresses
  /// (even path ids, §3) — only with config.allow_server_paths.
  void MaybeOpenServerPaths();
  std::unique_ptr<cc::CongestionController> MakeController();
  void TryAutoMigrate(Path& path);
  PathsFrame BuildPathsFrame() const;
  std::vector<Path*> PathPointers();
  /// Drive the scheduler until windows/flow control/data run out.
  void TrySend();
  void EnqueueControl(Frame frame);
  /// §3: WINDOW_UPDATE goes out on ALL paths (when configured) so a
  /// receive-buffer deadlock cannot arise from one path losing the update.
  void EnqueueWindowUpdates(const WindowUpdateFrame& frame);
  bool ExpectingData() const;
  bool AnyPathInFlight() const;
  void OnIdleFailureTimer();

  sim::Simulator& sim_;
  Perspective perspective_;
  ConnectionId cid_;
  ConnectionConfig config_;
  Rng rng_;

  std::vector<sim::Address> local_addresses_;
  std::vector<sim::Address> peer_addresses_;

  bool established_ = false;
  bool closed_ = false;

  // NOTE: the OLIA coordinator must outlive the per-path controllers the
  // paths own (they unregister from it on destruction), so it is declared
  // before `paths_`.
  std::unique_ptr<cc::OliaCoordinator> olia_;  // when congestion == kOlia
  std::unique_ptr<cc::LiaCoordinator> lia_;    // when congestion == kLia
  std::unique_ptr<Scheduler> scheduler_;
  // Paths, ordered by id. unique_ptr for stable addresses (the layers
  // keep Path* across their lifetime).
  std::map<PathId, std::unique_ptr<Path>> paths_;

  std::map<StreamId, std::unique_ptr<SendStream>> send_streams_;
  FlowController flow_;
  ControlQueue control_;

  std::function<void()> on_established_;
  ConnectionTracer* tracer_ = nullptr;
  ConnectionStats stats_;
  bool in_try_send_ = false;
  int migrations_ = 0;
  /// Recycled per-batch scratch for OnDatagramBatch (capacity survives
  /// across batches).
  std::vector<FrameDispatcher::EncryptedPacketRef> batch_packets_scratch_;
  /// Armed only in migrate-on-failure mode: detects a dead path from the
  /// receiver side (nothing arrives while a transfer is in progress).
  std::unique_ptr<sim::Timer> idle_timer_;
  /// Connection-level idle timeout (config.idle_timeout > 0 only).
  std::unique_ptr<sim::Timer> connection_idle_timer_;
  /// BLOCKED is sent once per flow-control-blocked episode (diagnostic;
  /// also what real stacks do to aid troubleshooting).
  bool blocked_reported_ = false;

  // The layers. Construction order matters (the assembler holds a
  // reference to the recovery manager); destruction in reverse member
  // order tears the composer down before the state the layers reference.
  std::unique_ptr<RecoveryManager> recovery_;
  std::unique_ptr<PacketAssembler> assembler_;
  std::unique_ptr<FrameDispatcher> dispatcher_;
  std::unique_ptr<HandshakeLayer> handshake_;
};

}  // namespace mpq::quic
