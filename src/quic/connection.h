// The (MP)QUIC connection: packet assembly, the secure handshake, path
// management, scheduling, loss recovery and flow control — §2 and §3 of
// the paper in one state machine.
//
// Single-path QUIC is the degenerate configuration (multipath disabled:
// no Path ID byte on the wire, one packet-number space, CUBIC), so the
// evaluation compares the same code base with and without the multipath
// extension — mirroring how the paper extends quic-go.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cc/congestion.h"
#include "cc/lia.h"
#include "cc/olia.h"
#include "common/rng.h"
#include "common/types.h"
#include "crypto/aead.h"
#include "quic/path.h"
#include "quic/scheduler.h"
#include "quic/streams.h"
#include "quic/trace.h"
#include "quic/wire.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace mpq::quic {

enum class Perspective { kClient, kServer };

/// Single-path default: CUBIC; multipath default: coupled OLIA (§3).
using CongestionAlgo = cc::Algorithm;

struct ConnectionConfig {
  bool multipath = false;
  CongestionAlgo congestion = CongestionAlgo::kCubic;
  SchedulerType scheduler = SchedulerType::kLowestRtt;
  ByteCount receive_window = kDefaultReceiveWindow;
  ByteCount max_packet_size{kMaxPacketSize};
  /// §3: send WINDOW_UPDATE frames on every path (ablation knob).
  bool window_update_on_all_paths = true;
  /// §4.3: advertise potentially-failed paths in PATHS frames so the peer
  /// avoids its own RTO (ablation knob).
  bool send_paths_frame = true;
  /// Probe potentially-failed paths with PINGs so they can recover.
  Duration failed_path_probe_interval = 1 * kSecond;
  /// Pace data packets at ~1.25x cwnd/RTT per path (2x in slow start),
  /// as quic-go/Chromium did in 2017 — Linux TCP of that era did not
  /// pace, which is part of QUIC's edge in bufferbloat/lossy scenarios.
  bool pacing = true;
  /// Single-path QUIC connection migration (§1's "hard handover"): when
  /// the only path is declared potentially failed — by RTO, or by
  /// receiving nothing for `idle_failure_timeout` while a transfer is in
  /// progress — migrate it to the next local/peer address pair. No effect
  /// with multipath enabled (MPQUIC handles failure via its other paths).
  bool migrate_on_path_failure = false;
  Duration idle_failure_timeout = 2 * kSecond;
  /// §3 designed paths created by either host (server paths get even
  /// ids) but the paper's implementation leaves server-initiated paths
  /// unused because clients sit behind NATs. Off by default, as there;
  /// when enabled the server opens a path to every address the client
  /// advertises via ADD_ADDRESS.
  bool allow_server_paths = false;
  /// Advertise our own extra addresses to the peer after the handshake
  /// (the client-side ADD_ADDRESS; servers advertise theirs in the SHLO).
  bool advertise_addresses = true;
  /// §3: "upon handshake completion, [the path manager] opens one path
  /// over each interface on the client host". Disable to test pure
  /// server-initiated path setups.
  bool client_opens_paths = true;
  /// 0-RTT: the client already holds the server's config (the same
  /// out-of-band secret that makes our 1-RTT handshake possible), derives
  /// the session keys locally and sends encrypted data together with the
  /// CHLO — Google QUIC's repeat-connection handshake. The SHLO still
  /// confirms. Trades one RTT for no fresh server entropy in the keys.
  bool zero_rtt = false;
  /// Initial CHLO retransmission timeout (doubles on each attempt).
  Duration handshake_timeout = 1 * kSecond;
  /// Close the connection after this long with no packets in either
  /// direction (0 = never — the experiment harness manages lifetimes
  /// itself, so that is the default).
  Duration idle_timeout = 0;
  /// Versions this endpoint accepts. The handshake fails cleanly when
  /// client and server share none (§2: version negotiation is part of
  /// what lets QUIC evolve).
  std::vector<std::uint32_t> supported_versions{kVersionMpq1};
  /// Shared secret standing in for the out-of-band server config of the
  /// 1-RTT Google-QUIC handshake (see crypto::DeriveSessionKeys).
  std::array<std::uint8_t, 16> server_config_secret{};
};

/// Aggregate counters the experiment harness reads after a run.
struct ConnectionStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t packets_decrypt_failed = 0;
  std::uint64_t packets_duplicate = 0;
  std::uint64_t duplicated_scheduler_packets = 0;
  std::uint64_t rto_events = 0;
  ByteCount stream_bytes_sent_new{};
  ByteCount stream_bytes_received{};
};

class Connection {
 public:
  /// `send` transmits a datagram from a local address this connection
  /// owns; the endpoint wires it to the right socket.
  using SendFunction = std::function<void(
      sim::Address local, sim::Address remote, std::vector<std::uint8_t>)>;

  Connection(sim::Simulator& sim, Perspective perspective, ConnectionId cid,
             ConnectionConfig config, Rng rng, SendFunction send);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // -- endpoint wiring ----------------------------------------------------
  /// Local addresses (one per interface). The first is the initial path's.
  void SetLocalAddresses(std::vector<sim::Address> addresses);
  /// Feed an incoming datagram (already demultiplexed by CID).
  void OnDatagram(const sim::Datagram& datagram);

  // -- client lifecycle ---------------------------------------------------
  /// Start the secure handshake toward the server's initial address.
  void Connect(sim::Address server_address);

  // -- application API ----------------------------------------------------
  /// Called when the handshake completes (client: SHLO received; server:
  /// first CHLO processed).
  void SetEstablishedHandler(std::function<void()> handler) {
    on_established_ = std::move(handler);
  }
  /// In-order stream delivery: (stream, offset, bytes, finished).
  using StreamDataHandler =
      std::function<void(StreamId, ByteCount, std::span<const std::uint8_t>,
                         bool finished)>;
  void SetStreamDataHandler(StreamDataHandler handler) {
    on_stream_data_ = std::move(handler);
  }
  /// Open (or continue) a send stream fed by `source`; transmission starts
  /// as soon as the handshake and the scheduler allow.
  void SendOnStream(StreamId id, std::unique_ptr<SendSource> source);

  /// Abort a send stream: stop (re)transmitting its data and tell the
  /// peer via RST_STREAM. The receiver's handler sees finished=true with
  /// whatever prefix was delivered.
  void ResetStream(StreamId id, std::uint16_t error_code);

  /// QUIC connection migration (§1: "a form of hard handover"): move an
  /// existing path to a new local/remote address pair. Path state (packet
  /// numbers, keys) survives; RTT and congestion state are reset because
  /// the new network path shares nothing with the old one. In-flight data
  /// is re-sent via the normal loss-recovery machinery.
  void MigratePath(PathId id, sim::Address new_local,
                   sim::Address new_remote);

  /// Withdraw one of our addresses (interface going away): sends
  /// REMOVE_ADDRESS and marks the paths bound to it as failed so the
  /// scheduler drains off them.
  void RemoveLocalAddress(sim::Address address);

  void Close(std::uint16_t error_code, const std::string& reason);

  /// Attach a tracer (not owned; must outlive the connection or be
  /// detached with nullptr). See quic/trace.h.
  void SetTracer(ConnectionTracer* tracer) { tracer_ = tracer; }

  // -- introspection ------------------------------------------------------
  bool established() const { return established_; }
  bool closed() const { return closed_; }
  ConnectionId cid() const { return cid_; }
  const ConnectionStats& stats() const { return stats_; }
  std::vector<const Path*> paths() const;
  Path* GetPath(PathId id);
  const Scheduler& scheduler() const { return *scheduler_; }
  sim::Simulator& simulator() { return sim_; }
  const ConnectionConfig& config() const { return config_; }

 private:
  friend class Auditor;

  struct PathRuntime {
    std::unique_ptr<Path> path;
    std::unique_ptr<sim::Timer> retx_timer;  // loss-time + RTO, combined
    std::unique_ptr<sim::Timer> ack_timer;   // delayed ACK
    std::unique_ptr<sim::Timer> probe_timer; // potentially-failed probing
    /// Control frames pinned to this path (its ACKs, per-path
    /// WINDOW_UPDATE copies).
    std::vector<Frame> pinned_frames;
    bool ping_probe_outstanding = false;
    /// Pacing token bucket (bytes); refilled from cwnd/RTT.
    double pace_tokens = 0.0;
    TimePoint pace_refill_time = 0;
  };

  // -- handshake ----------------------------------------------------------
  void SendChlo();
  void OnHandshakePacket(const ParsedHeader& header, BufReader& reader,
                         const sim::Datagram& datagram);
  void HandleChlo(const HandshakeFrame& chlo, const sim::Datagram& datagram);
  void HandleShlo(const HandshakeFrame& shlo);
  void BecomeEstablished();

  // -- path management (§3 "Path Management") -----------------------------
  PathRuntime& CreatePath(PathId id, sim::Address local, sim::Address remote);
  void OpenClientPaths();
  /// Server-initiated paths toward freshly advertised client addresses
  /// (even path ids, §3) — only with config.allow_server_paths.
  void MaybeOpenServerPaths();
  std::unique_ptr<cc::CongestionController> MakeController();
  void OnPathPotentiallyFailed(PathRuntime& runtime);
  void TryAutoMigrate(PathRuntime& runtime);
  PathsFrame BuildPathsFrame() const;
  std::vector<Path*> PathPointers();

  // -- receive ------------------------------------------------------------
  void OnEncryptedPacket(const ParsedHeader& parsed, BufReader& reader,
                         std::span<const std::uint8_t> datagram_bytes,
                         const sim::Datagram& datagram);
  /// Frames are consumed: stream payloads are moved out into the receive
  /// streams rather than copied.
  void ProcessFrames(PathRuntime& runtime, std::vector<Frame>& frames);
  void OnAckFrame(const AckFrame& ack);
  void OnStreamFrameReceived(StreamFrame& frame);
  void OnWindowUpdate(const WindowUpdateFrame& frame);
  void OnPathsFrame(const PathsFrame& frame);
  RecvStream& GetOrCreateRecvStream(StreamId id);

  // -- send ---------------------------------------------------------------
  /// Drive the scheduler until windows/flow control/data run out.
  void TrySend();
  /// Assemble and transmit one packet on `runtime` from pinned frames,
  /// the shared control queue and stream data. Returns false if there was
  /// nothing to send.
  bool SendOnePacket(PathRuntime& runtime, bool include_stream_data,
                     const std::vector<StreamFrame>* duplicate_of,
                     std::vector<StreamFrame>* sent_stream_frames);
  void SendAckOnlyPacket(PathRuntime& runtime);
  void SendPing(PathRuntime& runtime, bool track);
  /// `frames` is consumed (retransmittable frames are moved into the sent-
  /// packet record) but the vector's allocation stays with the caller, so
  /// per-packet scratch can be recycled.
  void TransmitPacket(PathRuntime& runtime, std::vector<Frame>& frames,
                      bool retransmittable, bool handshake_cleartext);
  AckFrame BuildAck(PathRuntime& runtime);
  void MaybeScheduleAck(PathRuntime& runtime, bool out_of_order);
  void EnqueueWindowUpdates(const WindowUpdateFrame& frame);
  void EnqueueControl(Frame frame);

  // -- loss recovery ------------------------------------------------------
  /// `path` is the path the lost packets were sent on (the frames may be
  /// retransmitted on any path); it labels the tracer's requeue events.
  void RequeueLostFrames(PathId path, std::vector<SentPacket> lost);
  void OnRetxTimer(PathRuntime& runtime);
  void RearmRetxTimer(PathRuntime& runtime);
  void OnProbeTimer(PathRuntime& runtime);

  ByteCount ConnectionSendAllowance() const {
    return flow_.SendAllowance(new_stream_bytes_sent_);
  }
  bool AnyStreamHasData();

  // -- pacing -------------------------------------------------------------
  /// Bytes/microsecond this path may currently emit.
  double PacingRate(const PathRuntime& runtime) const;
  void RefillPaceTokens(PathRuntime& runtime);
  bool PacingAllows(PathRuntime& runtime, ByteCount bytes);
  void ConsumePaceTokens(PathRuntime& runtime, ByteCount bytes);
  /// Arm the pace timer for the earliest time any path can send again.
  void ArmPaceTimer();

  sim::Simulator& sim_;
  Perspective perspective_;
  ConnectionId cid_;
  ConnectionConfig config_;
  Rng rng_;
  SendFunction send_;

  std::vector<sim::Address> local_addresses_;
  std::vector<sim::Address> peer_addresses_;

  // Handshake state.
  bool established_ = false;
  bool closed_ = false;
  std::vector<std::uint8_t> client_nonce_;
  std::vector<std::uint8_t> server_nonce_;
  bool shlo_received_ = false;
  TimePoint chlo_sent_time_ = -1;
  std::unique_ptr<sim::Timer> handshake_timer_;
  int handshake_attempts_ = 0;
  sim::Address server_address_{};  // client only

  // Keys (set once established).
  std::unique_ptr<crypto::PacketProtection> seal_;  // our direction
  std::unique_ptr<crypto::PacketProtection> open_;  // peer's direction

  // NOTE: the OLIA coordinator must outlive the per-path controllers the
  // paths own (they unregister from it on destruction), so it is declared
  // before `paths_`.
  std::unique_ptr<cc::OliaCoordinator> olia_;  // when congestion == kOlia
  std::unique_ptr<cc::LiaCoordinator> lia_;    // when congestion == kLia
  std::unique_ptr<Scheduler> scheduler_;
  // Paths, ordered by id. unique_ptr for stable addresses.
  std::map<PathId, std::unique_ptr<PathRuntime>> paths_;

  // Streams.
  std::map<StreamId, std::unique_ptr<SendStream>> send_streams_;
  /// Round-robin position for stream scheduling: concurrent streams share
  /// the connection fairly (one chunk each per packet-fill pass), as
  /// quic-go does — this is what §2's "streams prevent head-of-line
  /// blocking" rests on.
  StreamId next_stream_to_serve_{};
  std::map<StreamId, std::unique_ptr<RecvStream>> recv_streams_;
  FlowController flow_;
  ByteCount new_stream_bytes_sent_{};
  /// Receive-side: per-stream advertised limits for stream-level windows.
  std::map<StreamId, ByteCount> stream_advertised_;
  /// Sum over streams of highest received offset (connection-level
  /// receive accounting).
  ByteCount total_highest_received_{};

  /// Path-agnostic control frames awaiting a packet (PATHS, ADD_ADDRESS,
  /// re-queued control frames).
  std::vector<Frame> control_queue_;

  std::function<void()> on_established_;
  StreamDataHandler on_stream_data_;
  ConnectionTracer* tracer_ = nullptr;
  ConnectionStats stats_;
  bool in_try_send_ = false;
  int migrations_ = 0;
  std::unique_ptr<sim::Timer> pace_timer_;
  /// Armed only in migrate-on-failure mode: detects a dead path from the
  /// receiver side (nothing arrives while a transfer is in progress).
  std::unique_ptr<sim::Timer> idle_timer_;
  bool ExpectingData() const;
  void OnIdleFailureTimer();
  /// Connection-level idle timeout (config.idle_timeout > 0 only).
  std::unique_ptr<sim::Timer> connection_idle_timer_;
  /// BLOCKED is sent once per flow-control-blocked episode (diagnostic;
  /// also what real stacks do to aid troubleshooting).
  bool blocked_reported_ = false;

  // Recycled per-packet scratch. The capacity survives across packets so
  // the steady-state datapath allocates only the outgoing datagram itself.
  // Safe as members: the simulator is single-threaded per connection and
  // neither send nor receive re-enters its own half of the datapath.
  std::vector<Frame> send_frames_scratch_;
  std::vector<std::uint8_t> recv_plaintext_scratch_;
  std::vector<Frame> recv_frames_scratch_;
};

}  // namespace mpq::quic
