// Many-connection server engine: owns N concurrent Connections keyed by
// Connection ID, demultiplexing datagrams from any number of clients
// over any of the server's addresses.
//
// Sharding (docs/ARCHITECTURE.md): a deterministic hash of the CID
// assigns every connection to exactly one shard. One Server instance
// *is* one shard — it owns its connections outright, runs inside its
// shard's Simulator/Network, and drops (and counts) any datagram whose
// CID hashes elsewhere, so cross-shard state sharing is impossible by
// construction (the `mpq-shard-affinity` lint rule enforces the same
// boundary statically). The workload layer (src/harness/workload.h)
// builds one Server per shard and fans shards across the
// harness/parallel worker pool; because ShardOf depends only on the CID
// and the shard count, the partition — and therefore every KPI — is
// byte-identical for any `--jobs N`.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "quic/connection.h"
#include "sim/net.h"
#include "sim/simulator.h"

namespace mpq::quic {

/// Deterministic CID -> shard map: a SplitMix64 finalizer (not
/// std::hash, whose result is implementation-defined) folded modulo the
/// shard count. Stable across runs, platforms and job counts.
std::uint32_t ShardOf(ConnectionId cid, std::uint32_t shard_count);

struct ServerStats {
  std::uint64_t accepted = 0;
  /// Closed connections destroyed by ReapClosed().
  std::uint64_t reaped = 0;
  std::uint64_t datagrams_demuxed = 0;
  /// Non-handshake datagrams for an unknown CID (stray/late packets).
  std::uint64_t datagrams_unknown_cid = 0;
  /// Datagrams whose CID hashes to a different shard (must be zero in a
  /// correctly-partitioned topology; counted, never processed).
  std::uint64_t datagrams_wrong_shard = 0;
};

/// One shard of the many-connection server. With the default
/// shard_index 0 / shard_count 1 it is a plain single-instance server —
/// the `ServerEndpoint` every existing test and bench uses.
class Server {
 public:
  /// Called once per accepted connection, before its first packet is
  /// processed — the application installs its stream handlers here.
  using AcceptHandler = std::function<void(Connection&)>;

  Server(sim::Simulator& sim, sim::Network& net,
         std::vector<sim::Address> locals, const ConnectionConfig& config,
         std::uint64_t seed, std::uint32_t shard_index = 0,
         std::uint32_t shard_count = 1);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void SetAcceptHandler(AcceptHandler handler) {
    on_accept_ = std::move(handler);
  }

  /// Batch dispatch (opt-in; default off): instead of processing each
  /// datagram inside its delivery event, stage every datagram arriving
  /// at the same instant and drain them in one flush event — consecutive
  /// same-connection runs decrypt with one crypto::OpenN call and run
  /// the send loop once per run (Connection::OnDatagramBatch). Arrival
  /// order is preserved exactly; only the *instant-local* interleaving
  /// of receive processing with other same-instant events changes, so
  /// the event stream is NOT byte-identical to unbatched mode (still
  /// fully deterministic for a given mode). The figure benches run
  /// unbatched; the many-connection engine turns this on.
  void SetBatchDispatch(bool on) { batch_dispatch_ = on; }
  bool batch_dispatch() const { return batch_dispatch_; }

  std::size_t connection_count() const { return connections_.size(); }
  Connection* FindConnection(ConnectionId cid);
  /// All owned connections, ordered by CID (deterministic — the model
  /// checker digests every server connection each step).
  std::vector<Connection*> Connections();
  /// Visit owned connections in CID order.
  void ForEachConnection(const std::function<void(Connection&)>& fn);

  /// Destroy every closed connection (frees its timers, streams and
  /// scratch buffers). Deterministic: iterates in CID order. The
  /// workload engine sweeps periodically so a 10k-connection run holds
  /// only the concurrently-active connections in memory.
  std::size_t ReapClosed();

  std::uint32_t shard_index() const { return shard_index_; }
  std::uint32_t shard_count() const { return shard_count_; }
  const ServerStats& stats() const { return stats_; }

 private:
  void OnDatagram(const sim::Datagram& datagram);
  /// Demultiplex one datagram to its (possibly new) connection. Returns
  /// the target connection, or nullptr when the datagram was dropped
  /// (wrong shard, unknown CID); stats are counted either way.
  Connection* Demux(const sim::Datagram& datagram);
  /// Batch mode: drain every staged datagram, feeding consecutive
  /// same-connection runs through Connection::OnDatagramBatch.
  void FlushBatch();

  sim::Simulator& sim_;
  sim::Network& net_;
  std::vector<sim::Address> locals_;
  ConnectionConfig config_;
  Rng rng_;
  std::uint32_t shard_index_;
  std::uint32_t shard_count_;
  AcceptHandler on_accept_;
  ServerStats stats_;
  std::vector<std::pair<sim::Address, sim::DatagramSocket*>> sockets_;
  std::map<ConnectionId, std::unique_ptr<Connection>> connections_;

  bool batch_dispatch_ = false;
  /// Staged same-instant datagrams awaiting the flush event (batch
  /// mode). Payloads are decrypted in place during the flush.
  std::vector<sim::Datagram> batch_pending_;
  bool batch_flush_scheduled_ = false;
};

}  // namespace mpq::quic
