// QUIC streams: send-side chunking and retransmission ranges, receive-side
// reassembly, and stream/connection flow control.
//
// STREAM frames carry (stream id, offset, data) — §2. Because the offset
// fully orders the bytes, the receiver can reassemble data arriving on any
// path; this is why MPQUIC needs no MPTCP-style DSN (§3, "Overall").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/source.h"
#include "common/types.h"
#include "quic/wire.h"

namespace mpq::quic {

/// Default flow-control window, §4.1: "maximal receive window values are
/// set to 16 MB for both TCP and QUIC".
inline constexpr ByteCount kDefaultReceiveWindow{16 * 1024 * 1024};

// Send sources live in common/source.h (they are shared with the TCP
// baseline stack); re-exported here for the QUIC public API.
using mpq::BufferSource;
using mpq::PatternByte;
using mpq::PatternSource;
using mpq::SendSource;

// ---------------------------------------------------------------------------
// Send stream

/// Sender half of one stream. Produces STREAM frames under a byte budget;
/// lost frames are fed back as [offset, length) ranges and take priority
/// over new data. The stream itself is path-agnostic — in MPQUIC a
/// retransmission is free to use a different path (§3).
class SendStream {
 public:
  SendStream(StreamId id, std::unique_ptr<SendSource> source)
      : id_(id), source_(std::move(source)) {}

  StreamId id() const { return id_; }
  ByteCount total_size() const { return source_->size(); }

  /// True if the stream has bytes (new or retransmit) ready to emit given
  /// the current flow-control limits.
  bool HasDataToSend(ByteCount connection_send_allowance) const;

  struct NextFrameResult {
    bool produced = false;
    /// NEW connection-level window consumed (0 for retransmissions).
    ByteCount new_bytes{};
  };

  /// Produce the next STREAM frame with payload of at most `max_payload`
  /// bytes and consuming at most `connection_send_allowance` bytes of
  /// *new* connection-level window (retransmitted bytes don't re-count).
  /// Retransmission ranges are drained before new data.
  NextFrameResult NextFrame(ByteCount max_payload,
                            ByteCount connection_send_allowance,
                            StreamFrame& frame);

  /// Re-queue a lost frame's range for retransmission.
  void OnFrameLost(ByteCount offset, ByteCount length, bool fin);

  /// Peer's stream-level flow control update.
  void OnMaxStreamData(ByteCount max) {
    if (max > peer_max_stream_data_) peer_max_stream_data_ = max;
  }

  /// Largest offset handed to the wire so far (counts toward the
  /// connection-level send limit exactly once).
  ByteCount max_offset_sent() const { return next_offset_; }

  bool fin_sent() const { return fin_sent_; }
  bool AllDataSentOnce() const {
    return next_offset_ >= total_size() && fin_sent_;
  }

 private:
  friend class Auditor;

  StreamId id_;
  std::unique_ptr<SendSource> source_;
  ByteCount next_offset_{};  // next NEW byte to send
  bool fin_sent_ = false;
  bool fin_lost_ = false;  // FIN needs retransmission
  ByteCount peer_max_stream_data_ = kDefaultReceiveWindow;
  // Pending retransmission ranges, keyed by offset (coalesced on insert).
  std::map<ByteCount, ByteCount> retransmit_;  // offset -> length

  ByteCount RetransmitBytesPending() const;
};

// ---------------------------------------------------------------------------
// Receive stream

/// Receiver half of one stream: reassembles out-of-order STREAM frames and
/// delivers bytes in order to the application sink. The application is
/// modelled as consuming immediately (as the paper's file-download client
/// does), so flow-control credit is freed as soon as data is in order —
/// out-of-order bytes are what occupy the receive window.
class RecvStream {
 public:
  /// `sink(offset, data, fin_complete)` is invoked for in-order data.
  using Sink = std::function<void(ByteCount offset,
                                  std::span<const std::uint8_t> data,
                                  bool finished)>;

  explicit RecvStream(StreamId id) : id_(id) {}

  void SetSink(Sink sink) { sink_ = std::move(sink); }

  /// Process one STREAM frame. Returns the increase of this stream's
  /// highest-received offset (the amount of receive window newly consumed
  /// at connection level); 0 for pure duplicates. In-order data is handed
  /// to the sink straight from the frame (no buffering copy); the rvalue
  /// overload additionally moves out-of-order payloads into the
  /// reassembly buffer instead of copying them.
  ByteCount OnStreamFrame(const StreamFrame& frame);
  ByteCount OnStreamFrame(StreamFrame&& frame);

  StreamId id() const { return id_; }
  ByteCount delivered_offset() const { return delivered_; }
  /// Highest contiguous byte delivered == bytes consumed by the app.
  ByteCount consumed_bytes() const { return delivered_; }
  ByteCount highest_received() const { return highest_received_; }
  bool finished() const { return fin_known_ && delivered_ >= final_size_; }
  bool fin_known() const { return fin_known_; }
  ByteCount final_size() const { return final_size_; }
  /// Bytes buffered out of order (occupying receive window).
  ByteCount buffered_bytes() const { return buffered_; }

 private:
  /// `movable` is non-null when the caller donates the frame's payload
  /// vector (rvalue overload) — buffering may then steal it.
  ByteCount OnStreamFrameImpl(const StreamFrame& frame,
                              std::vector<std::uint8_t>* movable);
  void DeliverInOrder();

  StreamId id_;
  Sink sink_;
  ByteCount delivered_{};         // contiguous prefix handed to the app
  ByteCount highest_received_{};  // max(offset+len) seen
  ByteCount buffered_{};
  bool fin_known_ = false;
  bool fin_signaled_ = false;  // the sink saw finished=true exactly once
  ByteCount final_size_{};
  std::map<ByteCount, std::vector<std::uint8_t>> segments_;  // by offset
};

// ---------------------------------------------------------------------------
// Connection-level flow control

/// Tracks both directions of the connection-level window (stream 0 in
/// WINDOW_UPDATE frames). Stream-level windows default to the same size,
/// so in this implementation — as in the paper's setup — the connection
/// window is the binding constraint.
class FlowController {
 public:
  explicit FlowController(ByteCount window = kDefaultReceiveWindow)
      : window_(window), local_max_data_(window), peer_max_data_(window) {}

  // -- send side --------------------------------------------------------
  /// How many NEW bytes we may still put on the wire.
  ByteCount SendAllowance(ByteCount total_new_bytes_sent) const {
    return peer_max_data_ > total_new_bytes_sent
               ? peer_max_data_ - total_new_bytes_sent
               : ByteCount{0};
  }
  void OnMaxData(ByteCount max) {
    if (max > peer_max_data_) peer_max_data_ = max;
  }
  ByteCount peer_max_data() const { return peer_max_data_; }

  // -- receive side -----------------------------------------------------
  /// Called when streams consume in-order data; returns true when a
  /// WINDOW_UPDATE should be emitted (half the window consumed since the
  /// last advertisement).
  bool OnBytesConsumed(ByteCount newly_consumed) {
    consumed_ += newly_consumed;
    return consumed_ + window_ >= local_max_data_ + window_ / 2;
  }
  /// The limit to advertise now.
  ByteCount NextAdvertisement() {
    local_max_data_ = consumed_ + window_;
    return local_max_data_;
  }
  ByteCount local_max_data() const { return local_max_data_; }
  ByteCount window() const { return window_; }

  /// Receive-side enforcement: a peer writing past our advertised limit
  /// is a protocol violation (we drop the packet).
  bool WithinReceiveLimit(ByteCount highest_offset_total) const {
    return highest_offset_total <= local_max_data_;
  }

 private:
  friend class Auditor;

  ByteCount window_;
  ByteCount consumed_{};        // in-order bytes delivered to the app
  ByteCount local_max_data_;      // what we last advertised
  ByteCount peer_max_data_;       // what the peer allows us
};

}  // namespace mpq::quic
