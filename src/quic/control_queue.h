// Control-frame scheduling: the queues of reliable non-stream frames
// (WINDOW_UPDATE, ADD_ADDRESS/REMOVE_ADDRESS, PATHS, re-queued control
// frames) awaiting a packet. Two tiers, mirroring §3's delivery rules:
//
//   pinned   frames bound to one specific path — the per-path copies of a
//            WINDOW_UPDATE ("on ALL paths so a receive-buffer deadlock
//            cannot arise from one path losing the update").
//   shared   path-agnostic frames the next outgoing packet on any path
//            may carry.
//
// The queue knows nothing about paths, packets or timers: the assembler
// drains it under a byte budget, the connection and recovery layers feed
// it. Both tiers are strict FIFO — control frames never reorder.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "common/types.h"
#include "quic/wire.h"

namespace mpq::quic {

class ControlQueue {
 public:
  /// Append a path-agnostic control frame (FIFO).
  void EnqueueShared(Frame frame);
  /// Append a control frame that must leave on `path` specifically.
  void EnqueuePinned(PathId path, const Frame& frame);

  bool HasPinned(PathId path) const;
  bool shared_empty() const { return shared_.empty(); }

  /// Move queued frames into `out` while they fit `budget` (wire size),
  /// pinned frames for `path` first, then shared ones; `budget` is
  /// reduced by every frame taken. Stops at the first frame that does
  /// not fit, preserving FIFO order within each tier.
  void FillPacket(PathId path, std::size_t& budget, std::vector<Frame>& out);

 private:
  friend class Auditor;  // state digest walks the queued frames

  std::vector<Frame> shared_;
  std::map<PathId, std::vector<Frame>> pinned_;
};

}  // namespace mpq::quic
