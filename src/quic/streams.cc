#include "quic/streams.h"

#include <algorithm>

namespace mpq::quic {

// ---------------------------------------------------------------------------
// SendStream

ByteCount SendStream::RetransmitBytesPending() const {
  ByteCount total{};
  for (const auto& [offset, length] : retransmit_) total += length;
  return total;
}

bool SendStream::HasDataToSend(ByteCount connection_send_allowance) const {
  if (!retransmit_.empty() || fin_lost_) return true;
  if (next_offset_ < total_size()) {
    // New data needs both stream- and connection-level credit.
    return next_offset_ < peer_max_stream_data_ &&
           connection_send_allowance > 0;
  }
  return !fin_sent_;
}

SendStream::NextFrameResult SendStream::NextFrame(
    ByteCount max_payload, ByteCount connection_send_allowance,
    StreamFrame& frame) {
  if (max_payload == 0) return {};

  // 1. Retransmissions first: they consume no new flow-control credit and
  //    unblock the receiver fastest.
  if (!retransmit_.empty()) {
    auto it = retransmit_.begin();
    const ByteCount offset = it->first;
    const ByteCount len = std::min<ByteCount>(it->second, max_payload);
    frame.stream_id = id_;
    frame.offset = offset;
    frame.data.resize(len.value());
    source_->Read(offset, frame.data);
    // FIN rides along if this chunk reaches the end of the stream.
    frame.fin = fin_lost_ && offset + len >= total_size();
    if (frame.fin) fin_lost_ = false;
    if (len == it->second) {
      retransmit_.erase(it);
    } else {
      const ByteCount rest = it->second - len;
      retransmit_.erase(it);
      retransmit_.emplace(offset + len, rest);
    }
    return {true, ByteCount{0}};
  }
  if (fin_lost_) {
    frame.stream_id = id_;
    frame.offset = total_size();
    frame.data.clear();
    frame.fin = true;
    fin_lost_ = false;
    return {true, ByteCount{0}};
  }

  // 2. New data under stream + connection flow control.
  if (next_offset_ >= total_size()) {
    if (fin_sent_) return {};
    frame.stream_id = id_;
    frame.offset = next_offset_;
    frame.data.clear();
    frame.fin = true;
    fin_sent_ = true;
    return {true, ByteCount{0}};
  }
  const ByteCount stream_allow =
      peer_max_stream_data_ > next_offset_
          ? peer_max_stream_data_ - next_offset_
          : ByteCount{0};
  const ByteCount len = std::min<ByteCount>(
      {max_payload, total_size() - next_offset_, stream_allow,
       connection_send_allowance});
  if (len == 0) return {};  // flow-control blocked
  frame.stream_id = id_;
  frame.offset = next_offset_;
  frame.data.resize(len.value());
  source_->Read(next_offset_, frame.data);
  next_offset_ += len;
  frame.fin = next_offset_ >= total_size();
  if (frame.fin) fin_sent_ = true;
  return {true, len};
}

void SendStream::OnFrameLost(ByteCount offset, ByteCount length, bool fin) {
  if (fin) fin_lost_ = true;
  if (length == 0) return;
  // Insert [offset, offset+length) and coalesce with neighbours.
  ByteCount start = offset;
  ByteCount end = offset + length;
  auto it = retransmit_.lower_bound(start);
  if (it != retransmit_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->first + prev->second);
      it = retransmit_.erase(prev);
    }
  }
  while (it != retransmit_.end() && it->first <= end) {
    end = std::max(end, it->first + it->second);
    it = retransmit_.erase(it);
  }
  retransmit_.emplace(start, end - start);
}

// ---------------------------------------------------------------------------
// RecvStream

ByteCount RecvStream::OnStreamFrame(const StreamFrame& frame) {
  return OnStreamFrameImpl(frame, nullptr);
}

ByteCount RecvStream::OnStreamFrame(StreamFrame&& frame) {
  return OnStreamFrameImpl(frame, &frame.data);
}

ByteCount RecvStream::OnStreamFrameImpl(const StreamFrame& frame,
                                        std::vector<std::uint8_t>* movable) {
  if (frame.fin) {
    fin_known_ = true;
    final_size_ = frame.offset + frame.data.size();
  }
  const ByteCount frame_end = frame.offset + frame.data.size();
  ByteCount window_growth{};
  if (frame_end > highest_received_) {
    window_growth = frame_end - highest_received_;
    highest_received_ = frame_end;
  }

  if (frame_end > delivered_ && !frame.data.empty()) {
    // Trim the already-delivered prefix. Overlaps with other buffered
    // segments are tolerated (delivery skips duplicate bytes).
    const ByteCount start = std::max(frame.offset, delivered_);
    const std::size_t skip = (start - frame.offset).value();

    if (segments_.empty() && start == delivered_) {
      // In-order fast path — the overwhelmingly common case: hand the
      // payload to the sink straight from the frame, never buffering it.
      const std::span<const std::uint8_t> fresh(frame.data.data() + skip,
                                                frame.data.size() - skip);
      const bool finished =
          fin_known_ && !fin_signaled_ && frame_end >= final_size_;
      if (finished) fin_signaled_ = true;
      if (sink_) sink_(delivered_, fresh, finished);
      delivered_ = frame_end;
      return window_growth;
    }

    std::vector<std::uint8_t> data;
    if (movable != nullptr && skip == 0) {
      data = std::move(*movable);
    } else {
      data.assign(frame.data.begin() + skip, frame.data.end());
    }
    // try_emplace leaves `data` intact when the offset is already present.
    auto [it, inserted] = segments_.try_emplace(start, std::move(data));
    if (inserted) {
      buffered_ += it->second.size();
    } else if (it->second.size() < data.size()) {
      // Same offset seen twice: keep the longer one.
      buffered_ -= it->second.size();
      it->second = std::move(data);
      buffered_ += it->second.size();
    }
  }
  DeliverInOrder();
  if (fin_known_ && !fin_signaled_ && delivered_ >= final_size_ && sink_) {
    // A bare FIN (no data) completes the stream on its own; duplicate or
    // retransmitted FINs (e.g. from scheduler duplication) signal once.
    fin_signaled_ = true;
    sink_(delivered_, {}, true);
  }
  return window_growth;
}

void RecvStream::DeliverInOrder() {
  while (!segments_.empty()) {
    auto it = segments_.begin();
    if (it->first > delivered_) break;  // gap
    const ByteCount seg_end = it->first + it->second.size();
    if (seg_end <= delivered_) {
      buffered_ -= it->second.size();
      segments_.erase(it);
      continue;  // fully duplicate
    }
    const std::size_t skip = (delivered_ - it->first).value();
    std::span<const std::uint8_t> fresh(it->second.data() + skip,
                                        it->second.size() - skip);
    const ByteCount new_delivered = seg_end;
    const bool finished =
        fin_known_ && !fin_signaled_ && new_delivered >= final_size_;
    if (finished) fin_signaled_ = true;
    if (sink_) sink_(delivered_, fresh, finished);
    delivered_ = new_delivered;
    buffered_ -= it->second.size();
    segments_.erase(it);
  }
}

}  // namespace mpq::quic
