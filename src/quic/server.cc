#include "quic/server.h"

#include <span>
#include <utility>

namespace mpq::quic {

std::uint32_t ShardOf(ConnectionId cid, std::uint32_t shard_count) {
  if (shard_count <= 1) return 0;
  // SplitMix64 finalizer: full-avalanche mix so consecutive CIDs spread
  // evenly over shards.
  std::uint64_t x = cid;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % shard_count);
}

Server::Server(sim::Simulator& sim, sim::Network& net,
               std::vector<sim::Address> locals,
               const ConnectionConfig& config, std::uint64_t seed,
               std::uint32_t shard_index, std::uint32_t shard_count)
    : sim_(sim),
      net_(net),
      locals_(std::move(locals)),
      config_(config),
      rng_(seed),
      shard_index_(shard_index),
      shard_count_(shard_count < 1 ? 1 : shard_count) {
  for (const auto& addr : locals_) {
    sim::DatagramSocket* socket = net_.CreateSocket(addr);
    sockets_.emplace_back(addr, socket);
    socket->SetReceiveHandler(
        [this](const sim::Datagram& datagram) { OnDatagram(datagram); });
  }
}

Server::~Server() {
  for (const auto& [addr, socket] : sockets_) net_.CloseSocket(addr);
}

Connection* Server::FindConnection(ConnectionId cid) {
  auto it = connections_.find(cid);
  return it == connections_.end() ? nullptr : it->second.get();
}

std::vector<Connection*> Server::Connections() {
  std::vector<Connection*> out;
  out.reserve(connections_.size());
  for (const auto& [cid, conn] : connections_) out.push_back(conn.get());
  return out;
}

void Server::ForEachConnection(const std::function<void(Connection&)>& fn) {
  for (const auto& [cid, conn] : connections_) fn(*conn);
}

std::size_t Server::ReapClosed() {
  std::size_t reaped = 0;
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second->closed()) {
      it = connections_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  stats_.reaped += reaped;
  return reaped;
}

Connection* Server::Demux(const sim::Datagram& datagram) {
  // Peek the CID (flags byte + 8-byte CID) to demultiplex.
  BufReader reader(datagram.payload);
  std::uint8_t flags = 0;
  ConnectionId cid = 0;
  if (!reader.ReadU8(flags) || !reader.ReadU64(cid)) return nullptr;

  // Shard affinity: this engine instance owns exactly the CIDs that
  // hash to its shard. Anything else indicates a mis-partitioned
  // topology; count it and drop (processing it would silently give two
  // shards views of the same connection).
  if (ShardOf(cid, shard_count_) != shard_index_) {
    ++stats_.datagrams_wrong_shard;
    return nullptr;
  }

  auto it = connections_.find(cid);
  if (it == connections_.end()) {
    // Only a handshake packet may open a connection.
    if ((flags & kFlagHandshake) == 0) {
      ++stats_.datagrams_unknown_cid;
      return nullptr;
    }
    auto send = [this](sim::Address local, sim::Address remote,
                       std::vector<std::uint8_t> payload) {
      for (const auto& [addr, socket] : sockets_) {
        if (addr == local) {
          socket->Send(remote, std::move(payload));
          return;
        }
      }
    };
    auto connection = std::make_unique<Connection>(
        sim_, Perspective::kServer, cid, config_, rng_.Fork(),
        std::move(send));
    connection->SetLocalAddresses(locals_);
    ++stats_.accepted;
    if (on_accept_) on_accept_(*connection);
    it = connections_.emplace(cid, std::move(connection)).first;
  }
  ++stats_.datagrams_demuxed;
  return it->second.get();
}

void Server::OnDatagram(const sim::Datagram& datagram) {
  if (batch_dispatch_) {
    // Stage and drain at the end of the current instant: deliveries from
    // every socket land here first, then one flush event (scheduled at
    // +0, so it runs after all same-instant deliveries) processes them
    // in arrival order with batched crypto.
    batch_pending_.push_back(datagram);
    if (!batch_flush_scheduled_) {
      batch_flush_scheduled_ = true;
      sim_.Schedule(0, [this] { FlushBatch(); });
    }
    return;
  }
  Connection* connection = Demux(datagram);
  if (connection != nullptr) connection->OnDatagram(datagram);
}

void Server::FlushBatch() {
  batch_flush_scheduled_ = false;
  // Swap the staging area out so deliveries landing while we process
  // (none today — sends only schedule future events — but cheap to be
  // safe) stage into a fresh batch.
  std::vector<sim::Datagram> batch;
  batch.swap(batch_pending_);
  const auto peek_cid = [](const sim::Datagram& datagram, ConnectionId& cid) {
    BufReader reader(datagram.payload);
    std::uint8_t flags = 0;
    return reader.ReadU8(flags) && reader.ReadU64(cid);
  };
  std::size_t i = 0;
  while (i < batch.size()) {
    Connection* connection = Demux(batch[i]);
    if (connection == nullptr) {
      ++i;
      continue;
    }
    // Extend the run over consecutive same-CID datagrams. They demux to
    // the same (now known) connection, so only the per-datagram counter
    // needs updating — Demux already ran for the run head.
    ConnectionId run_cid = 0;
    peek_cid(batch[i], run_cid);
    std::size_t j = i + 1;
    for (ConnectionId cid = 0;
         j < batch.size() && peek_cid(batch[j], cid) && cid == run_cid; ++j) {
      ++stats_.datagrams_demuxed;
    }
    connection->OnDatagramBatch(
        std::span<sim::Datagram>(batch.data() + i, j - i));
    i = j;
  }
}

}  // namespace mpq::quic
