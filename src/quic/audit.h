// Debug invariant checker. The checks themselves (Auditor::CheckAll)
// compile in every configuration so tools — most importantly the
// mpq_model state-space explorer — can validate invariants and report
// instead of dying. What MPQ_AUDIT (CMake option of the same name)
// controls is only the per-event hook: MPQ_AUDIT_CHECK(conn) re-validates
// the connection's internal invariants after every timer and packet
// event:
//
//   - per-path packet-number monotonicity (sent PNs < next_pn_, the
//     largest acked never exceeds the largest sent),
//   - the congestion controller's bytes_in_flight equals the sum of the
//     tracked sent packets on that path,
//   - flow-control offsets never exceed the advertised limits, on either
//     side and at either level (connection and stream),
//   - receive-side ACK ranges are sorted, disjoint and coalesced,
//   - the congestion window never falls below the controller's floor.
//
// In an MPQ_AUDIT build a violation prints a diagnostic and aborts, so a
// ctest run turns silent state corruption into a hard failure at the
// first event that produced it. Without MPQ_AUDIT the macro expands to
// nothing and the hot path is untouched.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "quic/path.h"

namespace mpq::quic {

class Connection;

class Auditor {
 public:
  /// Validate every invariant of `conn`; abort with a diagnostic on the
  /// first violation. This is MPQ_AUDIT_CHECK's target.
  static void Check(const Connection& conn);

  /// Non-aborting variant: validate every invariant and return true when
  /// all hold. On failure, appends one line per violation to
  /// `*violations` (when non-null) and returns false. Available in every
  /// build — the model checker reports violations as counterexamples
  /// instead of aborting the exploration.
  static bool CheckAll(const Connection& conn, std::string* violations);

  /// Canonical 64-bit digest of the connection's protocol state: packet
  /// numbers, in-flight tracking, ACK ranges, stream offsets, flow
  /// control, path status — everything behavior depends on, and nothing
  /// observability-related (tracers, stats, profiler) or wall-clock
  /// shaped. Two states with equal digests are treated as equivalent by
  /// the explorer's pruning; replaying a schedule must reproduce the
  /// identical digest sequence (the determinism check). Implemented in
  /// quic/digest.cc.
  static std::uint64_t Digest(const Connection& conn);

  /// Digest helper: read-only view of `path`'s tracked in-flight packets
  /// (private state exposed through the Auditor friendship).
  static const std::map<PacketNumber, SentPacket>& SentPackets(
      const Path& path);

 private:
  class Impl;
};

#if defined(MPQ_AUDIT)
#define MPQ_AUDIT_CHECK(conn) ::mpq::quic::Auditor::Check(conn)
#else
#define MPQ_AUDIT_CHECK(conn) ((void)0)
#endif

/// RAII helper: audits on scope exit, so event handlers with early
/// returns still get checked on every path out.
class AuditScope {
 public:
  explicit AuditScope(const Connection& conn) : conn_(conn) {}
  ~AuditScope() { MPQ_AUDIT_CHECK(conn_); }

  AuditScope(const AuditScope&) = delete;
  AuditScope& operator=(const AuditScope&) = delete;

 private:
  [[maybe_unused]] const Connection& conn_;
};

}  // namespace mpq::quic
