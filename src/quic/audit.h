// Debug invariant checker. When the build defines MPQ_AUDIT (CMake
// option of the same name), MPQ_AUDIT_CHECK(conn) re-validates the
// connection's internal invariants after every timer and packet event:
//
//   - per-path packet-number monotonicity (sent PNs < next_pn_, the
//     largest acked never exceeds the largest sent),
//   - the congestion controller's bytes_in_flight equals the sum of the
//     tracked sent packets on that path,
//   - flow-control offsets never exceed the advertised limits, on either
//     side and at either level (connection and stream),
//   - receive-side ACK ranges are sorted, disjoint and coalesced,
//   - the congestion window never falls below the controller's floor.
//
// A violation prints a diagnostic and aborts, so a ctest run under an
// MPQ_AUDIT build turns silent state corruption into a hard failure at
// the first event that produced it. Without MPQ_AUDIT the macro expands
// to nothing and audit.cc compiles to an empty translation unit.
#pragma once

namespace mpq::quic {

class Connection;

class Auditor {
 public:
  /// Validate every invariant of `conn`; abort with a diagnostic on the
  /// first violation. Only meaningful in MPQ_AUDIT builds.
  static void Check(const Connection& conn);

 private:
  class Impl;
};

#if defined(MPQ_AUDIT)
#define MPQ_AUDIT_CHECK(conn) ::mpq::quic::Auditor::Check(conn)
#else
#define MPQ_AUDIT_CHECK(conn) ((void)0)
#endif

/// RAII helper: audits on scope exit, so event handlers with early
/// returns still get checked on every path out.
class AuditScope {
 public:
  explicit AuditScope(const Connection& conn) : conn_(conn) {}
  ~AuditScope() { MPQ_AUDIT_CHECK(conn_); }

  AuditScope(const AuditScope&) = delete;
  AuditScope& operator=(const AuditScope&) = delete;

 private:
  [[maybe_unused]] const Connection& conn_;
};

}  // namespace mpq::quic
