// Connection observability (a qlog-style event hook): the Connection
// reports packet, loss, RTT, congestion and path-state events to an
// attached tracer. Used by the diagnostic benches (congestion-window
// evolution across paths) and available to library users for debugging —
// real QUIC stacks grew the same facility (qlog) for the same reason.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/types.h"

namespace mpq::quic {

/// Observer interface. Default implementations ignore everything, so a
/// tracer only overrides what it cares about. Callbacks fire synchronously
/// on the simulated-event path; implementations must be cheap.
class ConnectionTracer {
 public:
  virtual ~ConnectionTracer() = default;

  virtual void OnPacketSent(TimePoint /*now*/, PathId /*path*/,
                            PacketNumber /*pn*/, ByteCount /*bytes*/,
                            bool /*retransmittable*/) {}
  virtual void OnPacketReceived(TimePoint /*now*/, PathId /*path*/,
                                PacketNumber /*pn*/, ByteCount /*bytes*/) {}
  virtual void OnPacketLost(TimePoint /*now*/, PathId /*path*/,
                            PacketNumber /*pn*/) {}
  /// Fired whenever an ACK updates a path: current cwnd, bytes in flight
  /// and smoothed RTT.
  virtual void OnPathSample(TimePoint /*now*/, PathId /*path*/,
                            ByteCount /*cwnd*/, ByteCount /*in_flight*/,
                            Duration /*srtt*/) {}
  virtual void OnPathStateChange(TimePoint /*now*/, PathId /*path*/,
                                 const char* /*state*/) {}
};

/// Collects per-path time series of (time, cwnd, srtt) — the data behind
/// a congestion-evolution plot.
class TimeSeriesTracer final : public ConnectionTracer {
 public:
  struct Sample {
    TimePoint time = 0;
    PathId path = 0;
    ByteCount cwnd = 0;
    ByteCount in_flight = 0;
    Duration srtt = 0;
  };

  void OnPathSample(TimePoint now, PathId path, ByteCount cwnd,
                    ByteCount in_flight, Duration srtt) override {
    samples_.push_back({now, path, cwnd, in_flight, srtt});
  }
  void OnPacketLost(TimePoint now, PathId path, PacketNumber) override {
    losses_.push_back({now, path, 0, 0, 0});
  }

  const std::vector<Sample>& samples() const { return samples_; }
  const std::vector<Sample>& losses() const { return losses_; }

 private:
  std::vector<Sample> samples_;
  std::vector<Sample> losses_;
};

/// Counts events — handy in tests for asserting behaviour without poking
/// at connection internals.
class CountingTracer final : public ConnectionTracer {
 public:
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t path_samples = 0;
  std::vector<std::string> state_changes;  // "path:state"

  void OnPacketSent(TimePoint, PathId, PacketNumber, ByteCount,
                    bool) override {
    ++packets_sent;
  }
  void OnPacketReceived(TimePoint, PathId, PacketNumber,
                        ByteCount) override {
    ++packets_received;
  }
  void OnPacketLost(TimePoint, PathId, PacketNumber) override {
    ++packets_lost;
  }
  void OnPathSample(TimePoint, PathId, ByteCount, ByteCount,
                    Duration) override {
    ++path_samples;
  }
  void OnPathStateChange(TimePoint, PathId path,
                         const char* state) override {
    state_changes.push_back(std::to_string(path) + ":" + state);
  }
};

}  // namespace mpq::quic
