// Connection observability (a qlog-style event hook): the Connection
// reports packet, frame, scheduler, loss-recovery, flow-control,
// handshake and path-state events to an attached tracer. Used by the
// diagnostic benches (congestion-window evolution across paths), the
// structured tracers in src/obs/ (NDJSON qlog writer, metrics registry)
// and available to library users for debugging — real QUIC stacks grew
// the same facility (qlog) for the same reason.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "quic/wire.h"

namespace mpq::quic {

/// Observer interface. Default implementations ignore everything, so a
/// tracer only overrides what it cares about. Callbacks fire synchronously
/// on the simulated-event path; implementations must be cheap. The
/// Connection guards every emission with a single null check, so an
/// unattached tracer costs nothing on the datapath.
class ConnectionTracer {
 public:
  virtual ~ConnectionTracer() = default;

  // -- packet level -------------------------------------------------------
  virtual void OnPacketSent(TimePoint /*now*/, PathId /*path*/,
                            PacketNumber /*pn*/, ByteCount /*bytes*/,
                            bool /*retransmittable*/) {}
  virtual void OnPacketReceived(TimePoint /*now*/, PathId /*path*/,
                                PacketNumber /*pn*/, ByteCount /*bytes*/) {}
  virtual void OnPacketLost(TimePoint /*now*/, PathId /*path*/,
                            PacketNumber /*pn*/) {}
  /// A sent packet reached a terminal state: `stage` is "acked" or
  /// "lost", `since_sent` the simulated time from transmission to the
  /// terminal event. Together with the profiler's in-process span
  /// histograms (assembly/seal wall-nanoseconds) this completes the
  /// packet-lifecycle accounting: enqueue→assemble→seal→send come from
  /// MPQ_PROF_SCOPE spans, send→acked/lost from this hook.
  virtual void OnPacketLifecycle(TimePoint /*now*/, PathId /*path*/,
                                 PacketNumber /*pn*/, const char* /*stage*/,
                                 Duration /*since_sent*/) {}

  // -- frame level --------------------------------------------------------
  /// Fired once per frame assembled into an outgoing packet, before the
  /// packet is sealed and transmitted.
  virtual void OnFrameSent(TimePoint /*now*/, PathId /*path*/,
                           const Frame& /*frame*/) {}
  /// Fired once per frame decoded from an incoming packet, before the
  /// frame is processed.
  virtual void OnFrameReceived(TimePoint /*now*/, PathId /*path*/,
                               const Frame& /*frame*/) {}

  // -- scheduler ----------------------------------------------------------
  /// One data-packet scheduling decision. `reason` is the scheduler's
  /// explanation ("lowest-rtt", "rtt-unknown-initial", "round-robin",
  /// "redundant", "ping-first", or "duplicate" for the §3 copy sent onto
  /// an unknown-RTT path). `elapsed_ns` is the wall-clock time the
  /// decision took (0 when not measured — duplication decisions ride on
  /// the primary decision's measurement).
  virtual void OnSchedulerDecision(TimePoint /*now*/, PathId /*chosen*/,
                                   const char* /*reason*/,
                                   std::uint64_t /*elapsed_ns*/) {}

  // -- loss recovery ------------------------------------------------------
  /// Fired whenever an ACK updates a path: current cwnd, bytes in flight
  /// and smoothed RTT.
  virtual void OnPathSample(TimePoint /*now*/, PathId /*path*/,
                            ByteCount /*cwnd*/, ByteCount /*in_flight*/,
                            Duration /*srtt*/) {}
  /// Retransmission timeout fired on a path; `consecutive` is the path's
  /// current RTO backoff count.
  virtual void OnRto(TimePoint /*now*/, PathId /*path*/,
                     int /*consecutive*/) {}
  /// A retransmittable frame from a lost packet re-entered a send queue
  /// (it may go out on any path — MPQUIC frame-level retransmission, §3).
  virtual void OnFrameRetransmitQueued(TimePoint /*now*/, PathId /*path*/,
                                       const Frame& /*frame*/) {}

  // -- flow control -------------------------------------------------------
  /// Sending stalled on the peer's flow-control window (stream 0 = the
  /// connection-level window). Fired once per blocked episode.
  virtual void OnFlowControlBlocked(TimePoint /*now*/,
                                    StreamId /*stream*/) {}

  // -- handshake / path lifecycle -----------------------------------------
  /// Handshake milestones: "chlo-sent", "chlo-received", "shlo-sent",
  /// "shlo-received", "established".
  virtual void OnHandshakeEvent(TimePoint /*now*/,
                                const char* /*milestone*/) {}
  /// Path lifecycle: "created", "potentially-failed", "recovered",
  /// "migrated".
  virtual void OnPathStateChange(TimePoint /*now*/, PathId /*path*/,
                                 const char* /*state*/) {}

  // -- simulated environment ----------------------------------------------
  /// A scheduled fault was applied to a simulated network path (the
  /// fault-injection subsystem, docs/ROBUSTNESS.md). Emitted by the
  /// harness — the connection cannot see the link — so `path` is the
  /// topology path index, not a quic PathId. `kind` is "down", "up",
  /// "loss", "reconfigure" or "burst-loss"; `value` carries the loss
  /// rate (loss / burst-loss) or the new capacity in Mbps (reconfigure),
  /// 0 otherwise.
  virtual void OnLinkFault(TimePoint /*now*/, int /*path*/,
                           const char* /*kind*/, double /*value*/) {}
};

/// Collects per-path time series of (time, cwnd, srtt) — the data behind
/// a congestion-evolution plot — plus the loss events as their own record
/// type.
class TimeSeriesTracer final : public ConnectionTracer {
 public:
  struct Sample {
    TimePoint time = 0;
    PathId path{};
    ByteCount cwnd{};
    ByteCount in_flight{};
    Duration srtt = 0;
  };

  struct LossRecord {
    TimePoint time = 0;
    PathId path{};
    PacketNumber pn{};
  };

  void OnPathSample(TimePoint now, PathId path, ByteCount cwnd,
                    ByteCount in_flight, Duration srtt) override {
    samples_.push_back({now, path, cwnd, in_flight, srtt});
  }
  void OnPacketLost(TimePoint now, PathId path, PacketNumber pn) override {
    losses_.push_back({now, path, pn});
  }

  const std::vector<Sample>& samples() const { return samples_; }
  const std::vector<LossRecord>& losses() const { return losses_; }

 private:
  std::vector<Sample> samples_;
  std::vector<LossRecord> losses_;
};

/// Counts events — handy in tests for asserting behaviour without poking
/// at connection internals.
class CountingTracer final : public ConnectionTracer {
 public:
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t lifecycle_events = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t scheduler_decisions = 0;
  std::uint64_t path_samples = 0;
  std::uint64_t rto_events = 0;
  std::uint64_t frames_requeued = 0;
  std::uint64_t flow_blocked_events = 0;
  std::uint64_t handshake_events = 0;
  std::uint64_t link_faults = 0;
  std::map<PathId, std::uint64_t> packets_sent_by_path;
  std::map<PathId, std::uint64_t> packets_lost_by_path;
  std::map<PathId, std::uint64_t> bytes_sent_by_path;
  std::vector<std::string> state_changes;  // "path:state"
  std::vector<std::string> fault_events;   // "path:kind"

  void OnPacketSent(TimePoint, PathId path, PacketNumber, ByteCount bytes,
                    bool) override {
    ++packets_sent;
    ++packets_sent_by_path[path];
    bytes_sent_by_path[path] += bytes.value();
  }
  void OnPacketReceived(TimePoint, PathId, PacketNumber,
                        ByteCount) override {
    ++packets_received;
  }
  void OnPacketLost(TimePoint, PathId path, PacketNumber) override {
    ++packets_lost;
    ++packets_lost_by_path[path];
  }
  void OnPacketLifecycle(TimePoint, PathId, PacketNumber, const char*,
                         Duration) override {
    ++lifecycle_events;
  }
  void OnFrameSent(TimePoint, PathId, const Frame&) override {
    ++frames_sent;
  }
  void OnFrameReceived(TimePoint, PathId, const Frame&) override {
    ++frames_received;
  }
  void OnSchedulerDecision(TimePoint, PathId, const char*,
                           std::uint64_t) override {
    ++scheduler_decisions;
  }
  void OnPathSample(TimePoint, PathId, ByteCount, ByteCount,
                    Duration) override {
    ++path_samples;
  }
  void OnRto(TimePoint, PathId, int) override { ++rto_events; }
  void OnFrameRetransmitQueued(TimePoint, PathId, const Frame&) override {
    ++frames_requeued;
  }
  void OnFlowControlBlocked(TimePoint, StreamId) override {
    ++flow_blocked_events;
  }
  void OnHandshakeEvent(TimePoint, const char*) override {
    ++handshake_events;
  }
  void OnPathStateChange(TimePoint, PathId path,
                         const char* state) override {
    state_changes.push_back(std::to_string(path.value()) + ":" + state);
  }
  void OnLinkFault(TimePoint, int path, const char* kind, double) override {
    ++link_faults;
    fault_events.push_back(std::to_string(path) + ":" + kind);
  }
};

}  // namespace mpq::quic
