// The secure-handshake state machine (Google-QUIC style, §2): CHLO/SHLO
// exchange, version negotiation, retransmission with exponential backoff,
// key derivation and the 0-RTT shortcut. Owns the nonces and the
// handshake timer; produced keys, path creation and the established
// transition are handed to the composer via HandshakeDelegate.
//
// Cleartext handshake packets bypass the sealer, so this layer never
// needs the assembler or the streams — it emits finished frame lists
// through the delegate and stays below both (enforced by mpq-layering).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "crypto/aead.h"
#include "quic/config.h"
#include "quic/trace.h"
#include "quic/wire.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace mpq::quic {

class HandshakeDelegate {
 public:
  virtual ~HandshakeDelegate() = default;

  virtual bool connection_established() const = 0;
  /// Our addresses, for the SHLO's peer_addresses advertisement.
  virtual const std::vector<sim::Address>& local_addresses() const = 0;
  /// Session keys derived — install them (seal = our direction).
  virtual void OnHandshakeKeys(
      std::unique_ptr<crypto::PacketProtection> seal,
      std::unique_ptr<crypto::PacketProtection> open) = 0;
  /// Transmit `frames` as a cleartext handshake packet on the initial
  /// path (consumed, like the assembler's TransmitPacket).
  virtual void SendHandshakeFrames(std::vector<Frame>& frames) = 0;
  /// Record a handshake packet's PN so packet-number decoding stays
  /// coherent across the handshake/1-RTT boundary (one PN space per
  /// path; the path may not exist yet — then there is nothing to do).
  virtual void RecordHandshakePacketNumber(PathId path,
                                           PacketNumber truncated,
                                           std::size_t pn_length) = 0;
  /// Server accepted a first CHLO: create the initial path toward the
  /// client and become established.
  virtual void OnServerChloAccepted(sim::Address local,
                                    sim::Address remote) = 0;
  /// Fresh SHLO: record the server's advertised addresses.
  virtual void OnPeerAddresses(std::vector<sim::Address> addresses) = 0;
  /// Client handshake done (SHLO processed, or 0-RTT keys derived): open
  /// the client paths, become established, start sending.
  virtual void OnClientHandshakeComplete() = 0;
  /// 0-RTT confirmation SHLO: note the peer's addresses if none were
  /// known (the 0-RTT path-opening used none).
  virtual void OnZeroRttConfirmed(
      const std::vector<sim::Address>& peer_addresses) = 0;
  /// The CHLO/SHLO exchange measured the initial path's RTT.
  virtual void AddHandshakeRttSample(Duration rtt,
                                     bool only_if_no_sample) = 0;
  /// Retries exhausted — the connection is dead.
  virtual void OnHandshakeFailed() = 0;
};

class HandshakeLayer {
 public:
  HandshakeLayer(sim::Simulator& sim, Perspective perspective,
                 ConnectionId cid, const ConnectionConfig& config, Rng& rng,
                 HandshakeDelegate& delegate);

  void SetTracer(ConnectionTracer* tracer) { tracer_ = tracer; }

  /// Client: generate the nonce, arm the retransmission timer and send
  /// the first CHLO (deriving 0-RTT keys locally when configured).
  void StartClient();

  /// A cleartext handshake packet arrived (either perspective).
  void OnHandshakePacket(const ParsedHeader& header, BufReader& reader,
                         const sim::Datagram& datagram);

  void OnConnectionClosed();

 private:
  void SendChlo();
  void HandleChlo(const HandshakeFrame& chlo, const sim::Datagram& datagram);
  void HandleShlo(const HandshakeFrame& shlo);

  sim::Simulator& sim_;
  Perspective perspective_;
  ConnectionId cid_;
  const ConnectionConfig& config_;
  Rng& rng_;
  HandshakeDelegate& delegate_;
  ConnectionTracer* tracer_ = nullptr;

  std::vector<std::uint8_t> client_nonce_;
  std::vector<std::uint8_t> server_nonce_;
  bool shlo_received_ = false;
  TimePoint chlo_sent_time_ = -1;
  std::unique_ptr<sim::Timer> handshake_timer_;
  int handshake_attempts_ = 0;
};

}  // namespace mpq::quic
