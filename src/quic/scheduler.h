// MPQUIC packet schedulers (§3 "Packet Scheduling").
//
// The default scheduler is the paper's: prefer the usable path with the
// lowest smoothed RTT whose congestion window has room (the Linux MPTCP
// default heuristic), with one MPQUIC twist — a path whose RTT is still
// unknown is not trusted with exclusive traffic; instead traffic sent on
// the chosen path is *duplicated* onto unknown-RTT paths so they warm up
// without risking head-of-line blocking.
//
// The alternatives the paper discusses and rejects (§3) are implemented
// as ablation strategies: ping-first (probe, wait one RTT) and
// round-robin; plus a fully redundant scheduler as an upper bound on
// duplication.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "quic/path.h"

namespace mpq::quic {

enum class SchedulerType {
  kLowestRtt,    // paper default: lowest RTT + duplicate-on-unknown
  kPingFirst,    // probe unknown paths, use only measured ones
  kRoundRobin,   // cycle through usable paths
  kRedundant,    // duplicate every data packet on every usable path
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Choose the path for the next data packet among `paths`. Only paths
  /// that are Usable() and whose congestion window fits `bytes` are
  /// candidates; if no usable path qualifies, potentially-failed paths
  /// with window room are considered as a last resort (a connection must
  /// not deadlock when every path looks bad). Returns nullptr if nothing
  /// can send.
  virtual Path* SelectPath(const std::vector<Path*>& paths,
                           ByteCount bytes) = 0;

  /// Paths that should receive a duplicate of the stream frames just sent
  /// on `chosen` (the §3 "duplicate traffic while unknown" mechanism).
  virtual std::vector<Path*> DuplicationTargets(
      const std::vector<Path*>& paths, const Path* chosen, ByteCount bytes);

  /// True if the scheduler wants a PING probe on `path` before using it
  /// (ping-first ablation only).
  virtual bool WantsProbe(const Path& path) const;

  virtual std::string name() const = 0;

  /// Why the last SelectPath call chose its path (a static string such as
  /// "lowest-rtt" or "rtt-unknown-initial"). Valid until the next call;
  /// feeds the tracer's scheduler-decision events.
  const char* last_reason() const { return last_reason_; }

 protected:
  /// Candidates: usable, window room; falls back to failed paths.
  static std::vector<Path*> Candidates(const std::vector<Path*>& paths,
                                       ByteCount bytes);

  const char* last_reason_ = "none";
};

std::unique_ptr<Scheduler> MakeScheduler(SchedulerType type);

class LowestRttScheduler : public Scheduler {
 public:
  Path* SelectPath(const std::vector<Path*>& paths, ByteCount bytes) override;
  std::vector<Path*> DuplicationTargets(const std::vector<Path*>& paths,
                                        const Path* chosen,
                                        ByteCount bytes) override;
  std::string name() const override { return "lowest-rtt"; }
};

class PingFirstScheduler : public Scheduler {
 public:
  Path* SelectPath(const std::vector<Path*>& paths, ByteCount bytes) override;
  std::vector<Path*> DuplicationTargets(const std::vector<Path*>&,
                                        const Path*, ByteCount) override {
    return {};
  }
  bool WantsProbe(const Path& path) const override {
    return !path.rtt().has_sample();
  }
  std::string name() const override { return "ping-first"; }
};

class RoundRobinScheduler : public Scheduler {
 public:
  Path* SelectPath(const std::vector<Path*>& paths, ByteCount bytes) override;
  std::vector<Path*> DuplicationTargets(const std::vector<Path*>&,
                                        const Path*, ByteCount) override {
    return {};
  }
  std::string name() const override { return "round-robin"; }

 private:
  std::size_t next_ = 0;
};

class RedundantScheduler : public Scheduler {
 public:
  Path* SelectPath(const std::vector<Path*>& paths, ByteCount bytes) override;
  std::vector<Path*> DuplicationTargets(const std::vector<Path*>& paths,
                                        const Path* chosen,
                                        ByteCount bytes) override;
  std::string name() const override { return "redundant"; }
};

}  // namespace mpq::quic
