// Receive-side packet-number tracking for one path: which PNs arrived,
// rendered as the descending range list of an ACK frame (up to 256 ranges,
// §4.1 "Low-BDP-losses" — this is the capacity TCP's 2-3 SACK blocks
// lack). Ranges are kept coalesced as packets arrive, so duplicate
// detection and ACK generation cost O(log ranges), not O(packets).
#pragma once

#include <map>
#include <vector>

#include "common/types.h"
#include "quic/wire.h"

namespace mpq::quic {

class ReceivedPacketTracker {
 public:
  /// Record an arriving packet number. Returns false for duplicates (the
  /// packet must then be ignored — its nonce was already consumed).
  bool OnPacketReceived(PacketNumber pn, TimePoint now) {
    if (pn == 0 || AlreadyReceived(pn)) return false;
    // Insert [pn, pn] into the coalesced range map.
    auto it = ranges_.upper_bound(pn);
    PacketNumber start = pn;
    PacketNumber end = pn;
    if (it != ranges_.begin()) {
      auto prev = std::prev(it);
      if (prev->second + 1 == pn) {
        start = prev->first;
        ranges_.erase(prev);
      }
    }
    if (it != ranges_.end() && it->first == pn + 1) {
      end = it->second;
      ranges_.erase(it);
    }
    ranges_.emplace(start, end);
    if (pn > largest_) {
      largest_ = pn;
      largest_time_ = now;
    }
    return true;
  }

  bool AlreadyReceived(PacketNumber pn) const {
    auto it = ranges_.upper_bound(pn);
    if (it == ranges_.begin()) return false;
    --it;
    return pn >= it->first && pn <= it->second;
  }

  PacketNumber largest_received() const { return largest_; }
  TimePoint largest_received_time() const { return largest_time_; }
  bool AnythingToAck() const { return largest_ != 0; }

  /// Build the descending ACK ranges. If there are more than
  /// AckFrame::kMaxAckRanges distinct ranges, the lowest (oldest) ones
  /// are silently dropped — exactly the bounded-SACK truncation
  /// behaviour, except the bound is 256 instead of 3.
  std::vector<AckFrame::Range> BuildAckRanges() const {
    std::vector<AckFrame::Range> out;
    out.reserve(std::min<std::size_t>(ranges_.size(),
                                      AckFrame::kMaxAckRanges));
    for (auto it = ranges_.rbegin();
         it != ranges_.rend() && out.size() < AckFrame::kMaxAckRanges;
         ++it) {
      out.push_back({it->first, it->second});
    }
    return out;
  }

 private:
  /// Coalesced closed intervals [first, second] of received PNs.
  std::map<PacketNumber, PacketNumber> ranges_;
  PacketNumber largest_{};
  TimePoint largest_time_ = 0;
};

}  // namespace mpq::quic
