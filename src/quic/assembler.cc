#include "quic/assembler.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/prof.h"

namespace mpq::quic {

namespace {

/// Delayed-ACK timeout (quic-go used 25 ms).
constexpr Duration kDelayedAckTimeout = 25 * kMillisecond;

/// Send an immediate ACK after this many unacked retransmittable packets.
constexpr int kAckAfterPackets = 2;

/// Reserve for STREAM frame header when filling a packet.
constexpr std::size_t kStreamFrameOverhead = 16;

constexpr double kPaceBurstPackets = 10.0;

}  // namespace

PacketAssembler::PacketAssembler(
    sim::Simulator& sim, const ConnectionConfig& config, ConnectionId cid,
    ConnectionStats& stats, FlowController& flow,
    std::map<StreamId, std::unique_ptr<SendStream>>& streams,
    ControlQueue& control, RecoveryManager& recovery,
    AssemblerDelegate& delegate, SendFunction send)
    : sim_(sim),
      config_(config),
      cid_(cid),
      stats_(stats),
      flow_(flow),
      send_streams_(streams),
      control_(control),
      recovery_(recovery),
      delegate_(delegate),
      send_(std::move(send)) {
  pace_timer_ =
      std::make_unique<sim::Timer>(sim_, [this] { delegate_.RequestSend(); });
}

void PacketAssembler::SetSealer(
    std::unique_ptr<crypto::PacketProtection> seal) {
  seal_ = std::move(seal);
}

void PacketAssembler::RegisterPath(Path& path) {
  PathSendState& state = paths_[path.id()];
  state.path = &path;
  PathSendState* raw = &state;
  state.ack_timer = std::make_unique<sim::Timer>(sim_, [this, raw] {
    if (raw->path->ack_pending()) SendAckOnlyPacket(*raw->path);
  });
}

void PacketAssembler::OnConnectionClosed() {
  // Flush any burst in flight first: its packets are already tracked as
  // sent (recovery would wait on them forever if they never hit the
  // wire). The close frame itself transmits before this, outside bursts.
  FlushBurst();
  closed_ = true;
  for (auto& [id, state] : paths_) state.ack_timer->Cancel();
  if (pace_timer_) pace_timer_->Cancel();
}

void PacketAssembler::BeginBurst() { ++burst_depth_; }

void PacketAssembler::EndBurst() {
  if (burst_depth_ > 0 && --burst_depth_ == 0) FlushBurst();
}

void PacketAssembler::FlushBurst() {
  if (burst_pending_.empty()) return;
  // Batched seal: one crypto call for the whole burst. Requests alias the
  // pending payload buffers, so the seal happens in place.
  std::vector<crypto::SealRequest>& requests = burst_seal_requests_;
  requests.clear();
  requests.reserve(burst_pending_.size());
  for (PendingDatagram& pending : burst_pending_) {
    crypto::SealRequest req;
    req.path = pending.seal_path;
    req.pn = pending.pn;
    const std::span<std::uint8_t> buf(pending.payload);
    req.aad = buf.subspan(0, pending.header_size);
    req.buf = buf.subspan(pending.header_size);
    requests.push_back(req);
  }
  seal_->SealN(requests);
  for (PendingDatagram& pending : burst_pending_) {
    send_(pending.local, pending.remote, std::move(pending.payload));
  }
  burst_pending_.clear();
}

AckFrame PacketAssembler::BuildAck(PathSendState& state) {
  MPQ_PROF_SCOPE("assembly/build_ack");
  Path& path = *state.path;
  AckFrame ack;
  ack.path_id = path.id();
  ack.ranges = path.receiver().BuildAckRanges();
  ack.ack_delay = sim_.now() - path.receiver().largest_received_time();
  path.ClearAckPending();
  state.ack_timer->Cancel();
  return ack;
}

void PacketAssembler::MaybeScheduleAck(Path& path, bool out_of_order) {
  PathSendState& state = paths_.at(path.id());
  if (out_of_order ||
      path.unacked_retransmittable_count() >= kAckAfterPackets) {
    SendAckOnlyPacket(path);
    return;
  }
  if (!state.ack_timer->armed()) {
    state.ack_timer->SetIn(kDelayedAckTimeout);
  }
}

void PacketAssembler::SendAckOnlyPacket(Path& path) {
  if (!established_ || closed_) return;
  if (!path.receiver().AnythingToAck()) return;
  std::vector<Frame> frames;
  frames.emplace_back(BuildAck(paths_.at(path.id())));
  TransmitPacket(path, frames, /*retransmittable=*/false,
                 /*handshake_cleartext=*/false);
}

void PacketAssembler::SendPing(Path& path, bool track) {
  std::vector<Frame> frames;
  frames.emplace_back(PingFrame{});
  TransmitPacket(path, frames, /*retransmittable=*/track,
                 /*handshake_cleartext=*/false);
}

bool PacketAssembler::AnyStreamHasData() {
  const ByteCount allowance = SendAllowance();
  for (auto& [id, stream] : send_streams_) {
    if (stream->HasDataToSend(allowance)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Pacing

double PacketAssembler::PacingRate(const Path& path) const {
  if (!path.rtt().has_sample()) return 0.0;  // unlimited until measured
  const double factor = path.congestion().InSlowStart() ? 2.0 : 1.25;
  return factor *
         static_cast<double>(path.congestion().congestion_window()) /
         static_cast<double>(path.rtt().smoothed());
}

void PacketAssembler::RefillPaceTokens(PathSendState& state) {
  const double burst =
      kPaceBurstPackets * static_cast<double>(config_.max_packet_size);
  const double rate = PacingRate(*state.path);
  const TimePoint now = sim_.now();
  if (rate <= 0.0) {
    state.pace_tokens = burst;
  } else {
    state.pace_tokens =
        std::min(burst, state.pace_tokens +
                            rate * static_cast<double>(
                                       now - state.pace_refill_time));
  }
  state.pace_refill_time = now;
}

bool PacketAssembler::PacingAllows(Path& path, ByteCount bytes) {
  if (!config_.pacing) return true;
  PathSendState& state = paths_.at(path.id());
  RefillPaceTokens(state);
  return state.pace_tokens >= static_cast<double>(bytes);
}

void PacketAssembler::ConsumePaceTokens(PathSendState& state,
                                        ByteCount bytes) {
  if (!config_.pacing) return;
  state.pace_tokens -= static_cast<double>(bytes);
}

void PacketAssembler::ArmPaceTimer() {
  // Earliest time any usable, window-open path accumulates one packet's
  // worth of tokens.
  Duration earliest = kTimeInfinite;
  for (auto& [id, state] : paths_) {
    if (!state.path->Usable() ||
        !state.path->congestion().CanSend(config_.max_packet_size)) {
      continue;
    }
    const double rate = PacingRate(*state.path);
    if (rate <= 0.0) continue;
    const double deficit =
        static_cast<double>(config_.max_packet_size) - state.pace_tokens;
    if (deficit <= 0.0) continue;
    earliest = std::min(earliest, static_cast<Duration>(deficit / rate) + 1);
  }
  if (earliest != kTimeInfinite && !pace_timer_->armed()) {
    pace_timer_->SetIn(earliest);
  }
}

void PacketAssembler::ResetPathPacing(PathId id) {
  PathSendState& state = paths_.at(id);
  state.pace_tokens = 0.0;
  state.pace_refill_time = sim_.now();
}

// ---------------------------------------------------------------------------
// Packet assembly

bool PacketAssembler::SendOnePacket(
    Path& path, bool include_stream_data,
    const std::vector<StreamFrame>* duplicate_of,
    std::vector<StreamFrame>* sent_stream_frames) {
  MPQ_PROF_SCOPE("assembly/packet");
  const std::size_t header_size =
      1 + 8 + (config_.multipath ? 1 : 0) +
      PacketNumberLength(path.largest_sent() + 1, path.largest_acked());
  if (config_.max_packet_size < header_size + crypto::kAeadTagSize + 8) {
    return false;
  }
  std::size_t budget =
      config_.max_packet_size.value() - header_size - crypto::kAeadTagSize;

  // Recycled per-packet scratch: the vector's capacity survives across
  // packets (TransmitPacket moves the frames out but leaves the vector).
  std::vector<Frame>& frames = send_frames_scratch_;
  frames.clear();
  ByteCount new_bytes{};

  // 1. Piggyback a pending ACK for this path.
  if (path.ack_pending() && path.receiver().AnythingToAck()) {
    AckFrame ack = BuildAck(paths_.at(path.id()));
    const std::size_t size = FrameWireSize(Frame{ack});
    if (size <= budget) {
      budget -= size;
      frames.emplace_back(std::move(ack));
    }
  }

  // 2.+3. Control frames: pinned to this path first, then the shared
  // queue (PATHS, ADD_ADDRESS, requeued control).
  control_.FillPacket(path.id(), budget, frames);

  // 4. Stream data: either duplicates of frames just sent on another
  //    path, or fresh data pulled from the send streams.
  if (duplicate_of != nullptr) {
    for (const StreamFrame& frame : *duplicate_of) {
      const std::size_t size = FrameWireSize(Frame{frame});
      if (size > budget) break;
      budget -= size;
      frames.emplace_back(frame);
    }
  } else if (include_stream_data && !send_streams_.empty()) {
    // Round-robin over the streams, one chunk per stream per pass, so
    // concurrent objects progress together instead of serially.
    auto it = send_streams_.upper_bound(next_stream_to_serve_);
    if (it == send_streams_.end()) it = send_streams_.begin();
    const StreamId first_served = it->first;
    bool any_progress = true;
    while (budget > kStreamFrameOverhead && any_progress) {
      any_progress = false;
      for (std::size_t i = 0; i < send_streams_.size(); ++i) {
        if (budget <= kStreamFrameOverhead) break;
        SendStream& stream = *it->second;
        const StreamId sid = it->first;
        ++it;
        if (it == send_streams_.end()) it = send_streams_.begin();
        StreamFrame frame;
        const ByteCount allowance = SendAllowance() >= new_bytes
                                        ? SendAllowance() - new_bytes
                                        : ByteCount{0};
        const auto result =
            stream.NextFrame(ByteCount{budget - kStreamFrameOverhead},
                             allowance, frame);
        if (!result.produced) continue;
        any_progress = true;
        next_stream_to_serve_ = sid;
        new_bytes += result.new_bytes;
        const std::size_t size = FrameWireSize(Frame{frame});
        assert(size <= budget);
        budget -= size;
        if (sent_stream_frames) sent_stream_frames->push_back(frame);
        frames.emplace_back(std::move(frame));
      }
    }
    (void)first_served;
  }

  if (frames.empty()) return false;

  bool retransmittable = false;
  for (const Frame& frame : frames) {
    if (IsRetransmittable(frame)) retransmittable = true;
  }
  new_stream_bytes_sent_ += new_bytes;
  stats_.stream_bytes_sent_new += new_bytes;
  TransmitPacket(path, frames, retransmittable,
                 /*handshake_cleartext=*/false);
  return true;
}

void PacketAssembler::TransmitPacket(Path& path, std::vector<Frame>& frames,
                                     bool retransmittable,
                                     bool handshake_cleartext) {
  MPQ_PROF_SCOPE("assembly/transmit");
  if (tracer_ != nullptr) {
    for (const Frame& frame : frames) {
      tracer_->OnFrameSent(sim_.now(), path.id(), frame);
    }
  }
  PacketHeader header;
  header.cid = cid_;
  header.path_id = path.id();
  header.multipath = config_.multipath;
  header.handshake = handshake_cleartext;
  header.packet_number = path.AllocatePacketNumber();

  // Single-buffer assembly: header and frames are encoded into one
  // writer and the payload is sealed where it lies — the only per-packet
  // allocation left is the outgoing datagram itself (the network takes
  // ownership of it).
  BufWriter writer(config_.max_packet_size.value() + crypto::kAeadTagSize);
  EncodeHeader(header, path.largest_acked(), writer);
  const std::size_t header_size = writer.size();

  for (const Frame& frame : frames) EncodeFrame(frame, writer);

  const bool defer_seal = !handshake_cleartext && burst_depth_ > 0;
  if (!handshake_cleartext) {
    assert(seal_ != nullptr);
    writer.WriteZeroes(crypto::kAeadTagSize);  // tag slot
    if (!defer_seal) {
      const std::span<std::uint8_t> buf = writer.mutable_span();
      seal_->SealInPlace(header.multipath ? header.path_id : PathId{0},
                         header.packet_number, buf.subspan(0, header_size),
                         buf.subspan(header_size));
    }
  }
  assert(writer.size() <= config_.max_packet_size + 64);
  const std::size_t packet_size = writer.size();

  if (retransmittable) {
    SentPacket tracked;
    tracked.pn = header.packet_number;
    tracked.sent_time = sim_.now();
    tracked.bytes = ByteCount{packet_size};
    for (Frame& frame : frames) {
      if (IsRetransmittable(frame)) tracked.frames.push_back(std::move(frame));
    }
    ConsumePaceTokens(paths_.at(path.id()), ByteCount{packet_size});
    path.OnPacketSent(std::move(tracked));
    recovery_.OnPacketTracked(path);
  }
  ++stats_.packets_sent;
  delegate_.OnPacketTransmitted();
  if (tracer_ != nullptr) {
    tracer_->OnPacketSent(sim_.now(), path.id(), header.packet_number,
                          ByteCount{packet_size}, retransmittable);
  }
  if (defer_seal) {
    // Burst mode: tracking/pacing/stats above ran inline (the packet-fill
    // loop reads them), only the seal + handoff wait for EndBurst's
    // batched SealN. No simulated time passes inside a burst, so the
    // datagrams reach the network at the same instant, in the same order.
    PendingDatagram pending;
    pending.local = path.local_address();
    pending.remote = path.remote_address();
    pending.payload = writer.Take();
    pending.seal_path = header.multipath ? header.path_id : PathId{0};
    pending.pn = header.packet_number;
    pending.header_size = header_size;
    burst_pending_.push_back(std::move(pending));
    return;
  }
  send_(path.local_address(), path.remote_address(), writer.Take());
}

}  // namespace mpq::quic
