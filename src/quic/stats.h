// Aggregate connection counters. Split out of connection.h so every
// transport layer (recovery, assembler, dispatcher) can update its own
// counters without seeing the Connection composer.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace mpq::quic {

/// Aggregate counters the experiment harness reads after a run. Each
/// layer owns the counters for the events it produces: the assembler
/// counts packets sent, the dispatcher counts receive-side outcomes, the
/// recovery manager counts RTOs and retransmissions.
struct ConnectionStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t packets_decrypt_failed = 0;
  std::uint64_t packets_duplicate = 0;
  /// STREAM frames dropped because they wrote past our advertised receive
  /// window (peer protocol violation — or forged traffic).
  std::uint64_t flow_control_overruns = 0;
  /// ACK frames dropped because they acknowledged packet numbers this end
  /// never sent (optimistic ACK — peer protocol violation or forgery).
  std::uint64_t invalid_acks_ignored = 0;
  std::uint64_t duplicated_scheduler_packets = 0;
  std::uint64_t rto_events = 0;
  /// Frames from lost packets re-queued for retransmission, and their
  /// total wire size — the retransmission overhead of the connection
  /// (§3: frames may be retransmitted on any path).
  std::uint64_t frames_retransmitted = 0;
  ByteCount bytes_retransmitted{};
  ByteCount stream_bytes_sent_new{};
  ByteCount stream_bytes_received{};
};

}  // namespace mpq::quic
