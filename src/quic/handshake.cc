#include "quic/handshake.h"

#include <algorithm>
#include <utility>

#include "common/log.h"

namespace mpq::quic {

namespace {

/// CHLOs are padded to a minimum size, as in QUIC, so the handshake cannot
/// be used for traffic amplification.
constexpr std::size_t kMinChloSize = 1200;

/// The server's handshake nonce is a deterministic function of the
/// client nonce, the CID and the shared server config — that is what
/// makes CHLO retransmission idempotent AND what lets a 0-RTT client
/// compute the session keys without waiting for the SHLO.
std::vector<std::uint8_t> DeriveServerNonce(
    const std::vector<std::uint8_t>& client_nonce, ConnectionId cid,
    const std::array<std::uint8_t, 16>& server_config_secret) {
  std::vector<std::uint8_t> seed(client_nonce);
  for (int i = 0; i < 8; ++i) {
    seed.push_back(static_cast<std::uint8_t>(cid >> (8 * i)));
  }
  seed.insert(seed.end(), server_config_secret.begin(),
              server_config_secret.end());
  const auto derived = crypto::Kdf32(seed, "server nonce");
  return {derived.begin(), derived.begin() + 16};
}

}  // namespace

HandshakeLayer::HandshakeLayer(sim::Simulator& sim, Perspective perspective,
                               ConnectionId cid,
                               const ConnectionConfig& config, Rng& rng,
                               HandshakeDelegate& delegate)
    : sim_(sim),
      perspective_(perspective),
      cid_(cid),
      config_(config),
      rng_(rng),
      delegate_(delegate) {}

void HandshakeLayer::StartClient() {
  client_nonce_.resize(16);
  for (auto& b : client_nonce_) {
    b = static_cast<std::uint8_t>(rng_.NextU64());
  }
  handshake_timer_ = std::make_unique<sim::Timer>(sim_, [this] {
    if (!shlo_received_) SendChlo();
  });
  if (config_.zero_rtt) {
    // Derive everything locally from the cached server config; the CHLO
    // below tells the server which client nonce to use, and encrypted
    // data may follow it in the very same sending burst.
    server_nonce_ =
        DeriveServerNonce(client_nonce_, cid_, config_.server_config_secret);
    const auto keys = crypto::DeriveSessionKeys(
        client_nonce_, server_nonce_, config_.server_config_secret);
    delegate_.OnHandshakeKeys(
        std::make_unique<crypto::PacketProtection>(keys.client_to_server),
        std::make_unique<crypto::PacketProtection>(keys.server_to_client));
    SendChlo();
    delegate_.OnClientHandshakeComplete();
    return;
  }
  SendChlo();
}

void HandshakeLayer::SendChlo() {
  ++handshake_attempts_;
  if (handshake_attempts_ > 10) {
    MPQ_WARN(sim_.now(), "quic", "cid=%llu handshake giving up",
             static_cast<unsigned long long>(cid_));
    delegate_.OnHandshakeFailed();
    return;
  }
  HandshakeFrame chlo;
  chlo.message = HandshakeMessageType::kChlo;
  chlo.version = config_.supported_versions.empty()
                     ? kVersionMpq1
                     : config_.supported_versions.front();
  chlo.nonce = client_nonce_;
  std::vector<Frame> frames;
  frames.emplace_back(std::move(chlo));
  // Pad to the anti-amplification minimum.
  const std::size_t body = FrameWireSize(frames.front());
  if (body < kMinChloSize) {
    frames.emplace_back(
        PaddingFrame{static_cast<std::uint32_t>(kMinChloSize - body)});
  }
  chlo_sent_time_ = sim_.now();
  if (tracer_ != nullptr) tracer_->OnHandshakeEvent(sim_.now(), "chlo-sent");
  delegate_.SendHandshakeFrames(frames);
  const Duration timeout = config_.handshake_timeout
                           << (handshake_attempts_ - 1);
  handshake_timer_->SetIn(timeout);
}

void HandshakeLayer::OnHandshakePacket(const ParsedHeader& header,
                                       BufReader& reader,
                                       const sim::Datagram& datagram) {
  std::span<const std::uint8_t> payload;
  if (!reader.ReadSpan(reader.remaining(), payload)) return;
  std::vector<Frame> frames;
  if (!DecodePayload(payload, frames)) return;
  delegate_.RecordHandshakePacketNumber(header.header.path_id,
                                        header.header.packet_number,
                                        header.pn_length);
  for (const Frame& frame : frames) {
    const auto* handshake = std::get_if<HandshakeFrame>(&frame);
    if (handshake == nullptr) continue;
    if (handshake->message == HandshakeMessageType::kChlo &&
        perspective_ == Perspective::kServer) {
      HandleChlo(*handshake, datagram);
    } else if (handshake->message == HandshakeMessageType::kShlo &&
               perspective_ == Perspective::kClient) {
      HandleShlo(*handshake);
    }
  }
}

void HandshakeLayer::HandleChlo(const HandshakeFrame& chlo,
                                const sim::Datagram& datagram) {
  // Version negotiation (§2): a CHLO carrying a version we do not speak
  // is ignored; the client's handshake retries exhaust and it closes —
  // the clean failure mode for incompatible endpoints.
  if (std::find(config_.supported_versions.begin(),
                config_.supported_versions.end(),
                chlo.version) == config_.supported_versions.end()) {
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->OnHandshakeEvent(sim_.now(), "chlo-received");
  }
  if (!delegate_.connection_established()) {
    client_nonce_ = chlo.nonce;
    server_nonce_ =
        DeriveServerNonce(client_nonce_, cid_, config_.server_config_secret);
    const auto keys = crypto::DeriveSessionKeys(client_nonce_, server_nonce_,
                                                config_.server_config_secret);
    delegate_.OnHandshakeKeys(
        std::make_unique<crypto::PacketProtection>(keys.server_to_client),
        std::make_unique<crypto::PacketProtection>(keys.client_to_server));
    delegate_.OnServerChloAccepted(datagram.dst, datagram.src);
  }
  // Always answer (possibly retransmitted) CHLOs with an SHLO.
  HandshakeFrame shlo;
  shlo.message = HandshakeMessageType::kShlo;
  shlo.version = kVersionMpq1;
  shlo.nonce = server_nonce_;
  shlo.peer_addresses = delegate_.local_addresses();
  std::vector<Frame> frames;
  frames.emplace_back(std::move(shlo));
  if (tracer_ != nullptr) tracer_->OnHandshakeEvent(sim_.now(), "shlo-sent");
  delegate_.SendHandshakeFrames(frames);
}

void HandshakeLayer::HandleShlo(const HandshakeFrame& shlo) {
  shlo_received_ = true;
  if (tracer_ != nullptr) {
    tracer_->OnHandshakeEvent(sim_.now(), "shlo-received");
  }
  if (handshake_timer_) handshake_timer_->Cancel();
  if (delegate_.connection_established()) {
    // 0-RTT: the SHLO only confirms; note the peer's addresses (the
    // 0-RTT path-opening used none) and sample the handshake RTT.
    delegate_.OnZeroRttConfirmed(shlo.peer_addresses);
    if (chlo_sent_time_ >= 0) {
      delegate_.AddHandshakeRttSample(sim_.now() - chlo_sent_time_,
                                      /*only_if_no_sample=*/true);
    }
    return;
  }
  server_nonce_ = shlo.nonce;
  delegate_.OnPeerAddresses(shlo.peer_addresses);
  const auto keys = crypto::DeriveSessionKeys(client_nonce_, server_nonce_,
                                              config_.server_config_secret);
  delegate_.OnHandshakeKeys(
      std::make_unique<crypto::PacketProtection>(keys.client_to_server),
      std::make_unique<crypto::PacketProtection>(keys.server_to_client));
  if (handshake_timer_) handshake_timer_->Cancel();
  // The CHLO/SHLO exchange gives the initial path its first RTT sample —
  // one of the reasons MPQUIC starts with usable latency estimates.
  if (chlo_sent_time_ >= 0) {
    delegate_.AddHandshakeRttSample(sim_.now() - chlo_sent_time_,
                                    /*only_if_no_sample=*/false);
  }
  delegate_.OnClientHandshakeComplete();
}

void HandshakeLayer::OnConnectionClosed() {
  if (handshake_timer_) handshake_timer_->Cancel();
}

}  // namespace mpq::quic
