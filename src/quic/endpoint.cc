#include "quic/endpoint.h"

namespace mpq::quic {

ClientEndpoint::ClientEndpoint(sim::Simulator& sim, sim::Network& net,
                               std::vector<sim::Address> locals,
                               const ConnectionConfig& config,
                               std::uint64_t seed)
    : net_(net), locals_(std::move(locals)) {
  std::vector<sim::DatagramSocket*> sockets;
  sockets.reserve(locals_.size());
  for (const auto& addr : locals_) {
    sockets.push_back(net_.CreateSocket(addr));
  }
  Rng rng(seed);
  const ConnectionId cid = rng.NextU64() | 1;  // never zero
  auto send = [sockets, locals = locals_](sim::Address local,
                                          sim::Address remote,
                                          std::vector<std::uint8_t> payload) {
    for (std::size_t i = 0; i < locals.size(); ++i) {
      if (locals[i] == local) {
        sockets[i]->Send(remote, std::move(payload));
        return;
      }
    }
  };
  connection_ = std::make_unique<Connection>(
      sim, Perspective::kClient, cid, config, rng.Fork(), std::move(send));
  connection_->SetLocalAddresses(locals_);
  for (auto* socket : sockets) {
    socket->SetReceiveHandler([this](const sim::Datagram& datagram) {
      connection_->OnDatagram(datagram);
    });
  }
}

ClientEndpoint::~ClientEndpoint() {
  for (const auto& addr : locals_) net_.CloseSocket(addr);
}

void ClientEndpoint::Connect(sim::Address server_address) {
  connection_->Connect(server_address);
}

// ---------------------------------------------------------------------------

ServerEndpoint::ServerEndpoint(sim::Simulator& sim, sim::Network& net,
                               std::vector<sim::Address> locals,
                               const ConnectionConfig& config,
                               std::uint64_t seed)
    : sim_(sim),
      net_(net),
      locals_(std::move(locals)),
      config_(config),
      rng_(seed) {
  for (const auto& addr : locals_) {
    sim::DatagramSocket* socket = net_.CreateSocket(addr);
    sockets_.emplace_back(addr, socket);
    socket->SetReceiveHandler(
        [this](const sim::Datagram& datagram) { OnDatagram(datagram); });
  }
}

ServerEndpoint::~ServerEndpoint() {
  for (const auto& [addr, socket] : sockets_) net_.CloseSocket(addr);
}

Connection* ServerEndpoint::FindConnection(ConnectionId cid) {
  auto it = connections_.find(cid);
  return it == connections_.end() ? nullptr : it->second.get();
}

std::vector<Connection*> ServerEndpoint::Connections() {
  std::vector<Connection*> out;
  out.reserve(connections_.size());
  for (const auto& [cid, conn] : connections_) out.push_back(conn.get());
  return out;
}

void ServerEndpoint::OnDatagram(const sim::Datagram& datagram) {
  // Peek the CID (flags byte + 8-byte CID) to demultiplex.
  BufReader reader(datagram.payload);
  std::uint8_t flags = 0;
  ConnectionId cid = 0;
  if (!reader.ReadU8(flags) || !reader.ReadU64(cid)) return;

  auto it = connections_.find(cid);
  if (it == connections_.end()) {
    // Only a handshake packet may open a connection.
    if ((flags & kFlagHandshake) == 0) return;
    auto send = [this](sim::Address local, sim::Address remote,
                       std::vector<std::uint8_t> payload) {
      for (const auto& [addr, socket] : sockets_) {
        if (addr == local) {
          socket->Send(remote, std::move(payload));
          return;
        }
      }
    };
    auto connection = std::make_unique<Connection>(
        sim_, Perspective::kServer, cid, config_, rng_.Fork(),
        std::move(send));
    connection->SetLocalAddresses(locals_);
    if (on_accept_) on_accept_(*connection);
    it = connections_.emplace(cid, std::move(connection)).first;
  }
  it->second->OnDatagram(datagram);
}

}  // namespace mpq::quic
