#include "quic/endpoint.h"

namespace mpq::quic {

ClientEndpoint::ClientEndpoint(sim::Simulator& sim, sim::Network& net,
                               std::vector<sim::Address> locals,
                               const ConnectionConfig& config,
                               std::uint64_t seed)
    : net_(net), locals_(std::move(locals)) {
  std::vector<sim::DatagramSocket*> sockets;
  sockets.reserve(locals_.size());
  for (const auto& addr : locals_) {
    sockets.push_back(net_.CreateSocket(addr));
  }
  Rng rng(seed);
  const ConnectionId cid = rng.NextU64() | 1;  // == CidForSeed(seed)
  auto send = [sockets, locals = locals_](sim::Address local,
                                          sim::Address remote,
                                          std::vector<std::uint8_t> payload) {
    for (std::size_t i = 0; i < locals.size(); ++i) {
      if (locals[i] == local) {
        sockets[i]->Send(remote, std::move(payload));
        return;
      }
    }
  };
  connection_ = std::make_unique<Connection>(
      sim, Perspective::kClient, cid, config, rng.Fork(), std::move(send));
  connection_->SetLocalAddresses(locals_);
  for (auto* socket : sockets) {
    socket->SetReceiveHandler([this](const sim::Datagram& datagram) {
      connection_->OnDatagram(datagram);
    });
  }
}

ClientEndpoint::~ClientEndpoint() {
  for (const auto& addr : locals_) net_.CloseSocket(addr);
}

void ClientEndpoint::Connect(sim::Address server_address) {
  connection_->Connect(server_address);
}

}  // namespace mpq::quic
