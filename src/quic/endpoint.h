// Client and server endpoints: bind the simulator's datagram sockets to
// (MP)QUIC connections. The client owns one connection over all of its
// interfaces; the server accepts connections demultiplexed by the
// Connection ID in the public header.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "quic/connection.h"
#include "sim/net.h"
#include "sim/simulator.h"

namespace mpq::quic {

class ClientEndpoint {
 public:
  /// Binds a socket on every address in `locals`; `locals[0]` carries the
  /// handshake.
  ClientEndpoint(sim::Simulator& sim, sim::Network& net,
                 std::vector<sim::Address> locals,
                 const ConnectionConfig& config, std::uint64_t seed);
  ~ClientEndpoint();

  ClientEndpoint(const ClientEndpoint&) = delete;
  ClientEndpoint& operator=(const ClientEndpoint&) = delete;

  /// Start the handshake toward the server's initial address.
  void Connect(sim::Address server_address);

  Connection& connection() { return *connection_; }

 private:
  sim::Network& net_;
  std::vector<sim::Address> locals_;
  std::unique_ptr<Connection> connection_;
};

class ServerEndpoint {
 public:
  /// Called once per accepted connection, before its first packet is
  /// processed — the application installs its stream handlers here.
  using AcceptHandler = std::function<void(Connection&)>;

  ServerEndpoint(sim::Simulator& sim, sim::Network& net,
                 std::vector<sim::Address> locals,
                 const ConnectionConfig& config, std::uint64_t seed);
  ~ServerEndpoint();

  ServerEndpoint(const ServerEndpoint&) = delete;
  ServerEndpoint& operator=(const ServerEndpoint&) = delete;

  void SetAcceptHandler(AcceptHandler handler) {
    on_accept_ = std::move(handler);
  }

  std::size_t connection_count() const { return connections_.size(); }
  Connection* FindConnection(ConnectionId cid);
  /// All accepted connections, ordered by CID (deterministic — the
  /// model checker digests every server connection each step).
  std::vector<Connection*> Connections();

 private:
  void OnDatagram(const sim::Datagram& datagram);

  sim::Simulator& sim_;
  sim::Network& net_;
  std::vector<sim::Address> locals_;
  ConnectionConfig config_;
  Rng rng_;
  AcceptHandler on_accept_;
  std::vector<std::pair<sim::Address, sim::DatagramSocket*>> sockets_;
  std::map<ConnectionId, std::unique_ptr<Connection>> connections_;
};

}  // namespace mpq::quic
