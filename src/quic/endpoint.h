// Client endpoint: binds the simulator's datagram sockets to one (MP)QUIC
// connection over all of the client's interfaces. The server side lives
// in quic/server.h — a sharded many-connection engine; `ServerEndpoint`
// is its single-shard configuration, kept as the historical name every
// single-connection test and bench uses.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "quic/connection.h"
#include "quic/server.h"
#include "sim/net.h"
#include "sim/simulator.h"

namespace mpq::quic {

class ClientEndpoint {
 public:
  /// Binds a socket on every address in `locals`; `locals[0]` carries the
  /// handshake.
  ClientEndpoint(sim::Simulator& sim, sim::Network& net,
                 std::vector<sim::Address> locals,
                 const ConnectionConfig& config, std::uint64_t seed);
  ~ClientEndpoint();

  ClientEndpoint(const ClientEndpoint&) = delete;
  ClientEndpoint& operator=(const ClientEndpoint&) = delete;

  /// The CID a client constructed with `seed` will use (the seed RNG's
  /// first draw, low bit forced so it is never zero). The workload layer
  /// calls this to place each planned flow on the shard that will own
  /// it — keep in sync with the constructor.
  static ConnectionId CidForSeed(std::uint64_t seed) {
    return Rng(seed).NextU64() | 1;
  }

  /// Start the handshake toward the server's initial address.
  void Connect(sim::Address server_address);

  Connection& connection() { return *connection_; }

 private:
  sim::Network& net_;
  std::vector<sim::Address> locals_;
  std::unique_ptr<Connection> connection_;
};

/// One-shard server: the exact accept/demux surface the full engine
/// provides, minus sharding. See quic/server.h.
using ServerEndpoint = Server;

}  // namespace mpq::quic
