#include "quic/wire.h"

#include <string>

namespace mpq::quic {

namespace {

std::size_t AddressListSize(const std::vector<sim::Address>& addrs) {
  return 1 + addrs.size() * 4;
}

void EncodeAddressList(const std::vector<sim::Address>& addrs,
                       BufWriter& out) {
  out.WriteU8(static_cast<std::uint8_t>(addrs.size()));
  for (const auto& a : addrs) {
    out.WriteU16(a.node);
    out.WriteU16(a.iface);
  }
}

bool DecodeAddressList(BufReader& in, std::vector<sim::Address>& out) {
  std::uint8_t count = 0;
  if (!in.ReadU8(count)) return false;
  out.clear();
  out.reserve(count);
  for (std::uint8_t i = 0; i < count; ++i) {
    sim::Address a;
    if (!in.ReadU16(a.node) || !in.ReadU16(a.iface)) return false;
    out.push_back(a);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public header

std::size_t PacketNumberLength(PacketNumber full, PacketNumber largest_acked) {
  // The encoding must disambiguate at least twice the number of packets
  // in flight (RFC 9000 §17.1 logic).
  const PacketNumber distance =
      full > largest_acked ? full - largest_acked : PacketNumber{1};
  const PacketNumber needed = 2 * distance + 1;
  if (needed < (1ULL << 8)) return 1;
  if (needed < (1ULL << 16)) return 2;
  if (needed < (1ULL << 32)) return 4;
  return 8;
}

void EncodeHeader(const PacketHeader& header, PacketNumber largest_acked,
                  BufWriter& out) {
  const std::size_t pn_len =
      PacketNumberLength(header.packet_number, largest_acked);
  std::uint8_t flags = 0;
  if (header.handshake) flags |= kFlagHandshake;
  if (header.multipath) flags |= kFlagMultipath;
  const std::uint8_t pn_code =
      pn_len == 1 ? 0 : pn_len == 2 ? 1 : pn_len == 4 ? 2 : 3;
  flags |= static_cast<std::uint8_t>(pn_code << kFlagPnShift);
  out.WriteU8(flags);
  out.WriteU64(header.cid);
  // Wire format still carries one path-id byte (a MAX_PATHS negotiation
  // would widen it); PathId itself is 32-bit for the AEAD nonce.
  if (header.multipath) {
    out.WriteU8(static_cast<std::uint8_t>(header.path_id.value()));
  }
  switch (pn_len) {
    case 1:
      out.WriteU8(static_cast<std::uint8_t>(header.packet_number));
      break;
    case 2:
      out.WriteU16(static_cast<std::uint16_t>(header.packet_number));
      break;
    case 4:
      out.WriteU32(static_cast<std::uint32_t>(header.packet_number));
      break;
    default:
      out.WriteU64(header.packet_number.value());
      break;
  }
}

bool DecodeHeader(BufReader& in, ParsedHeader& out) {
  const std::size_t start = in.position();
  std::uint8_t flags = 0;
  if (!in.ReadU8(flags)) return false;
  out.header.handshake = (flags & kFlagHandshake) != 0;
  out.header.multipath = (flags & kFlagMultipath) != 0;
  if (!in.ReadU64(out.header.cid)) return false;
  out.header.path_id = PathId{0};
  if (out.header.multipath) {
    std::uint8_t path = 0;
    if (!in.ReadU8(path)) return false;
    out.header.path_id = PathId{path};
  }
  const std::uint8_t pn_code = (flags & kFlagPnMask) >> kFlagPnShift;
  out.pn_length = std::size_t{1} << pn_code;
  switch (out.pn_length) {
    case 1: {
      std::uint8_t v = 0;
      if (!in.ReadU8(v)) return false;
      out.header.packet_number = PacketNumber{v};
      break;
    }
    case 2: {
      std::uint16_t v = 0;
      if (!in.ReadU16(v)) return false;
      out.header.packet_number = PacketNumber{v};
      break;
    }
    case 4: {
      std::uint32_t v = 0;
      if (!in.ReadU32(v)) return false;
      out.header.packet_number = PacketNumber{v};
      break;
    }
    default: {
      std::uint64_t v = 0;
      if (!in.ReadU64(v)) return false;
      out.header.packet_number = PacketNumber{v};
      break;
    }
  }
  out.header_size = in.position() - start;
  return true;
}

PacketNumber DecodePacketNumber(PacketNumber largest_seen,
                                PacketNumber truncated,
                                std::size_t pn_length) {
  if (pn_length >= 8) return truncated;
  const std::uint64_t expected = largest_seen.value() + 1;
  const std::uint64_t win = std::uint64_t{1} << (8 * pn_length);
  const std::uint64_t half = win / 2;
  std::uint64_t candidate = (expected & ~(win - 1)) | truncated.value();
  if (candidate + half <= expected) {
    candidate += win;
  } else if (candidate > expected + half && candidate >= win) {
    candidate -= win;
  }
  return PacketNumber{candidate};
}

// ---------------------------------------------------------------------------
// Frames

std::size_t FrameWireSize(const Frame& frame) {
  struct Visitor {
    std::size_t operator()(const PaddingFrame& f) const { return f.length; }
    std::size_t operator()(const PingFrame&) const { return 1; }
    std::size_t operator()(const ConnectionCloseFrame& f) const {
      return 1 + 2 + VarintSize(f.reason.size()) + f.reason.size();
    }
    std::size_t operator()(const RstStreamFrame& f) const {
      return 1 + VarintSize(f.stream_id.value()) + 2 + VarintSize(f.final_offset.value());
    }
    std::size_t operator()(const WindowUpdateFrame& f) const {
      return 1 + VarintSize(f.stream_id.value()) + VarintSize(f.max_data.value());
    }
    std::size_t operator()(const BlockedFrame& f) const {
      return 1 + VarintSize(f.stream_id.value());
    }
    std::size_t operator()(const HandshakeFrame& f) const {
      return 1 + 1 + 4 + VarintSize(f.nonce.size()) + f.nonce.size() +
             AddressListSize(f.peer_addresses);
    }
    std::size_t operator()(const AddAddressFrame& f) const {
      return 1 + AddressListSize(f.addresses);
    }
    std::size_t operator()(const RemoveAddressFrame& f) const {
      return 1 + AddressListSize(f.addresses);
    }
    std::size_t operator()(const PathsFrame& f) const {
      std::size_t size = 1 + 1;
      for (const auto& p : f.paths) {
        size += 1 + 1 + VarintSize(static_cast<std::uint64_t>(p.srtt));
      }
      return size;
    }
    std::size_t operator()(const AckFrame& f) const {
      std::size_t size = 1 + 1 +
                         VarintSize(static_cast<std::uint64_t>(f.ack_delay)) +
                         VarintSize(f.ranges.size());
      if (f.ranges.empty()) return size;
      size += VarintSize(f.ranges.front().largest.value());
      size += VarintSize((f.ranges.front().largest - f.ranges.front().smallest).value());
      for (std::size_t i = 1; i < f.ranges.size(); ++i) {
        size += VarintSize((f.ranges[i - 1].smallest - f.ranges[i].largest).value());
        size += VarintSize((f.ranges[i].largest - f.ranges[i].smallest).value());
      }
      return size;
    }
    std::size_t operator()(const StreamFrame& f) const {
      return 1 + VarintSize(f.stream_id.value()) + VarintSize(f.offset.value()) +
             VarintSize(f.data.size()) + 1 + f.data.size();
    }
  };
  return std::visit(Visitor{}, frame);
}

void EncodeFrame(const Frame& frame, BufWriter& out) {
  struct Visitor {
    BufWriter& out;

    void operator()(const PaddingFrame& f) const {
      out.WriteZeroes(f.length);  // PADDING's type byte is itself zero
    }
    void operator()(const PingFrame&) const {
      out.WriteU8(static_cast<std::uint8_t>(FrameType::kPing));
    }
    void operator()(const ConnectionCloseFrame& f) const {
      out.WriteU8(static_cast<std::uint8_t>(FrameType::kConnectionClose));
      out.WriteU16(f.error_code);
      out.WriteVarint(f.reason.size());
      out.WriteBytes(f.reason.data(), f.reason.size());
    }
    void operator()(const RstStreamFrame& f) const {
      out.WriteU8(static_cast<std::uint8_t>(FrameType::kRstStream));
      out.WriteVarint(f.stream_id.value());
      out.WriteU16(f.error_code);
      out.WriteVarint(f.final_offset.value());
    }
    void operator()(const WindowUpdateFrame& f) const {
      out.WriteU8(static_cast<std::uint8_t>(FrameType::kWindowUpdate));
      out.WriteVarint(f.stream_id.value());
      out.WriteVarint(f.max_data.value());
    }
    void operator()(const BlockedFrame& f) const {
      out.WriteU8(static_cast<std::uint8_t>(FrameType::kBlocked));
      out.WriteVarint(f.stream_id.value());
    }
    void operator()(const HandshakeFrame& f) const {
      out.WriteU8(static_cast<std::uint8_t>(FrameType::kHandshake));
      out.WriteU8(static_cast<std::uint8_t>(f.message));
      out.WriteU32(f.version);
      out.WriteVarint(f.nonce.size());
      out.WriteBytes(f.nonce);
      EncodeAddressList(f.peer_addresses, out);
    }
    void operator()(const AddAddressFrame& f) const {
      out.WriteU8(static_cast<std::uint8_t>(FrameType::kAddAddress));
      EncodeAddressList(f.addresses, out);
    }
    void operator()(const RemoveAddressFrame& f) const {
      out.WriteU8(static_cast<std::uint8_t>(FrameType::kRemoveAddress));
      EncodeAddressList(f.addresses, out);
    }
    void operator()(const PathsFrame& f) const {
      out.WriteU8(static_cast<std::uint8_t>(FrameType::kPaths));
      out.WriteU8(static_cast<std::uint8_t>(f.paths.size()));
      for (const auto& p : f.paths) {
        out.WriteU8(static_cast<std::uint8_t>(p.path_id.value()));
        out.WriteU8(static_cast<std::uint8_t>(p.status));
        out.WriteVarint(static_cast<std::uint64_t>(p.srtt));
      }
    }
    void operator()(const AckFrame& f) const {
      out.WriteU8(static_cast<std::uint8_t>(FrameType::kAck));
      out.WriteU8(static_cast<std::uint8_t>(f.path_id.value()));
      out.WriteVarint(static_cast<std::uint64_t>(f.ack_delay));
      out.WriteVarint(f.ranges.size());
      if (f.ranges.empty()) return;
      out.WriteVarint(f.ranges.front().largest.value());
      out.WriteVarint((f.ranges.front().largest - f.ranges.front().smallest).value());
      for (std::size_t i = 1; i < f.ranges.size(); ++i) {
        // Gap to the next (lower) range, then its length. Ranges are
        // non-adjacent so the gap is always >= 2.
        out.WriteVarint((f.ranges[i - 1].smallest - f.ranges[i].largest).value());
        out.WriteVarint((f.ranges[i].largest - f.ranges[i].smallest).value());
      }
    }
    void operator()(const StreamFrame& f) const {
      out.WriteU8(static_cast<std::uint8_t>(FrameType::kStream));
      out.WriteVarint(f.stream_id.value());
      out.WriteVarint(f.offset.value());
      out.WriteVarint(f.data.size());
      out.WriteU8(f.fin ? 1 : 0);
      out.WriteBytes(f.data);
    }
  };
  std::visit(Visitor{out}, frame);
}

bool DecodeFrame(BufReader& in, Frame& out) {
  std::uint8_t type = 0;
  if (!in.ReadU8(type)) return false;

  if (type == static_cast<std::uint8_t>(FrameType::kPadding)) {
    // Coalesce the run of zero bytes into one PaddingFrame.
    PaddingFrame padding;
    std::uint8_t next = 0;
    while (in.remaining() > 0) {
      if (!in.ReadU8(next)) return false;
      if (next != 0) break;
      ++padding.length;
    }
    // The loop consumed one non-padding byte unless it hit the end — but
    // padding is only legal as trailing filler in this implementation, so
    // any non-zero byte after padding is malformed.
    if (next != 0 && in.remaining() > 0) return false;
    if (next != 0) return false;
    out = padding;
    return true;
  }

  switch (static_cast<FrameType>(type)) {
    case FrameType::kPing:
      out = PingFrame{};
      return true;
    case FrameType::kConnectionClose: {
      ConnectionCloseFrame f;
      std::uint64_t len = 0;
      if (!in.ReadU16(f.error_code) || !in.ReadVarint(len)) return false;
      std::vector<std::uint8_t> reason;
      if (!in.ReadBytes(len, reason)) return false;
      f.reason.assign(reason.begin(), reason.end());
      out = std::move(f);
      return true;
    }
    case FrameType::kRstStream: {
      RstStreamFrame f;
      std::uint64_t sid = 0, off = 0;
      if (!in.ReadVarint(sid) || !in.ReadU16(f.error_code) ||
          !in.ReadVarint(off)) {
        return false;
      }
      f.stream_id = static_cast<StreamId>(sid);
      f.final_offset = ByteCount{off};
      out = f;
      return true;
    }
    case FrameType::kWindowUpdate: {
      WindowUpdateFrame f;
      std::uint64_t sid = 0, max_data = 0;
      if (!in.ReadVarint(sid) || !in.ReadVarint(max_data)) return false;
      f.stream_id = static_cast<StreamId>(sid);
      f.max_data = ByteCount{max_data};
      out = f;
      return true;
    }
    case FrameType::kBlocked: {
      BlockedFrame f;
      std::uint64_t sid = 0;
      if (!in.ReadVarint(sid)) return false;
      f.stream_id = static_cast<StreamId>(sid);
      out = f;
      return true;
    }
    case FrameType::kHandshake: {
      HandshakeFrame f;
      std::uint8_t message = 0;
      std::uint64_t nonce_len = 0;
      if (!in.ReadU8(message) || !in.ReadU32(f.version) ||
          !in.ReadVarint(nonce_len) || !in.ReadBytes(nonce_len, f.nonce) ||
          !DecodeAddressList(in, f.peer_addresses)) {
        return false;
      }
      f.message = static_cast<HandshakeMessageType>(message);
      out = std::move(f);
      return true;
    }
    case FrameType::kAddAddress: {
      AddAddressFrame f;
      if (!DecodeAddressList(in, f.addresses)) return false;
      out = std::move(f);
      return true;
    }
    case FrameType::kRemoveAddress: {
      RemoveAddressFrame f;
      if (!DecodeAddressList(in, f.addresses)) return false;
      out = std::move(f);
      return true;
    }
    case FrameType::kPaths: {
      PathsFrame f;
      std::uint8_t count = 0;
      if (!in.ReadU8(count)) return false;
      f.paths.reserve(count);
      for (std::uint8_t i = 0; i < count; ++i) {
        PathsFrame::Entry e;
        std::uint8_t status = 0;
        std::uint64_t srtt = 0;
        std::uint8_t pid = 0;
        if (!in.ReadU8(pid) || !in.ReadU8(status) ||
            !in.ReadVarint(srtt)) {
          return false;
        }
        e.path_id = PathId{pid};
        e.status = static_cast<PathStatus>(status);
        e.srtt = static_cast<Duration>(srtt);
        f.paths.push_back(e);
      }
      out = std::move(f);
      return true;
    }
    case FrameType::kAck: {
      AckFrame f;
      std::uint64_t delay = 0, count = 0;
      std::uint8_t pid = 0;
      if (!in.ReadU8(pid) || !in.ReadVarint(delay) ||
          !in.ReadVarint(count)) {
        return false;
      }
      f.path_id = PathId{pid};
      f.ack_delay = static_cast<Duration>(delay);
      if (count > AckFrame::kMaxAckRanges) return false;
      if (count > 0) {
        std::uint64_t largest = 0, len = 0;
        if (!in.ReadVarint(largest) || !in.ReadVarint(len)) return false;
        if (len > largest) return false;
        f.ranges.push_back({PacketNumber{largest - len}, PacketNumber{largest}});
        for (std::uint64_t i = 1; i < count; ++i) {
          std::uint64_t gap = 0;
          if (!in.ReadVarint(gap) || !in.ReadVarint(len)) return false;
          const PacketNumber prev_smallest = f.ranges.back().smallest;
          if (gap < 2 || gap > prev_smallest) return false;
          const PacketNumber range_largest = prev_smallest - gap;
          if (len > range_largest) return false;
          f.ranges.push_back({range_largest - len, range_largest});
        }
      }
      out = std::move(f);
      return true;
    }
    case FrameType::kStream: {
      StreamFrame f;
      std::uint64_t sid = 0, off = 0, len = 0;
      std::uint8_t fin = 0;
      if (!in.ReadVarint(sid) || !in.ReadVarint(off) || !in.ReadVarint(len) ||
          !in.ReadU8(fin) || !in.ReadBytes(len, f.data)) {
        return false;
      }
      f.stream_id = static_cast<StreamId>(sid);
      f.offset = ByteCount{off};
      f.fin = fin != 0;
      out = std::move(f);
      return true;
    }
    default:
      return false;
  }
}

bool DecodePayload(std::span<const std::uint8_t> payload,
                   std::vector<Frame>& out) {
  BufReader reader(payload);
  out.clear();
  while (!reader.AtEnd()) {
    Frame frame;
    if (!DecodeFrame(reader, frame)) return false;
    out.push_back(std::move(frame));
  }
  return true;
}

bool IsRetransmittable(const Frame& frame) {
  return !std::holds_alternative<AckFrame>(frame) &&
         !std::holds_alternative<PaddingFrame>(frame);
}

const char* FrameTypeName(const Frame& frame) {
  return std::visit(
      [](const auto& f) -> const char* {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, PaddingFrame>) return "PADDING";
        if constexpr (std::is_same_v<T, PingFrame>) return "PING";
        if constexpr (std::is_same_v<T, ConnectionCloseFrame>) {
          return "CONNECTION_CLOSE";
        }
        if constexpr (std::is_same_v<T, RstStreamFrame>) return "RST_STREAM";
        if constexpr (std::is_same_v<T, WindowUpdateFrame>) {
          return "WINDOW_UPDATE";
        }
        if constexpr (std::is_same_v<T, BlockedFrame>) return "BLOCKED";
        if constexpr (std::is_same_v<T, HandshakeFrame>) return "HANDSHAKE";
        if constexpr (std::is_same_v<T, AddAddressFrame>) {
          return "ADD_ADDRESS";
        }
        if constexpr (std::is_same_v<T, RemoveAddressFrame>) {
          return "REMOVE_ADDRESS";
        }
        if constexpr (std::is_same_v<T, PathsFrame>) return "PATHS";
        if constexpr (std::is_same_v<T, AckFrame>) return "ACK";
        if constexpr (std::is_same_v<T, StreamFrame>) return "STREAM";
      },
      frame);
}

}  // namespace mpq::quic
