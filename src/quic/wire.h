// (MP)QUIC wire format: public packet header and frames.
//
// Follows the Google-QUIC lineage the paper builds on (§2): each packet
// has a small unencrypted public header — flags, Connection ID, Packet
// Number, and (the MPQUIC extension, §3 "Path Identification") an explicit
// Path ID — followed by an encrypted payload that is a sequence of frames.
// Frames carry all data and control information; packets are only their
// containers, which is what lets MPQUIC retransmit frames on a different
// path than the lost packet's (§3 "Packet Scheduling").
//
// Multipath-specific elements implemented exactly as in §3:
//   * Path ID byte in the public header (explicit path identification),
//   * per-path packet-number spaces (PNs here are always path-relative),
//   * ACK frames carrying the Path ID they acknowledge,
//   * ADD_ADDRESS frame advertising a host's addresses,
//   * PATHS frame carrying per-path status/RTT for fast failover.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "common/buf.h"
#include "common/types.h"
#include "sim/net.h"

namespace mpq::quic {

/// Maximum UDP payload we produce (Google QUIC used 1350 for IPv4).
inline constexpr std::size_t kMaxPacketSize = 1350;

/// Version tag negotiated in the handshake.
inline constexpr std::uint32_t kVersionMpq1 = 0x4D510001;  // "MQ" 00 01

// ---------------------------------------------------------------------------
// Public header

enum HeaderFlags : std::uint8_t {
  kFlagHandshake = 0x01,  // cleartext handshake packet (CHLO/SHLO)
  kFlagMultipath = 0x02,  // Path ID byte present
  // Bits 2-3: packet number length: 0 -> 1 byte, 1 -> 2, 2 -> 4, 3 -> 8.
  kFlagPnShift = 2,
  kFlagPnMask = 0x0C,
};

struct PacketHeader {
  ConnectionId cid = 0;
  PathId path_id{};
  PacketNumber packet_number{};
  bool handshake = false;
  bool multipath = false;  // whether the Path ID byte is on the wire
};

/// Bytes needed for the truncated packet-number encoding, chosen from the
/// distance to the largest acknowledged PN (QUIC's standard truncation).
std::size_t PacketNumberLength(PacketNumber full, PacketNumber largest_acked);

/// Append the public header. The packet number is truncated to
/// PacketNumberLength(pn, largest_acked) bytes.
void EncodeHeader(const PacketHeader& header, PacketNumber largest_acked,
                  BufWriter& out);

/// Parse a public header; returns the truncated PN and its length in
/// `pn_length` — the caller reconstructs the full PN with
/// DecodePacketNumber once it knows the path's receive state.
struct ParsedHeader {
  PacketHeader header;           // packet_number holds the *truncated* PN
  std::size_t pn_length = 0;     // bytes of PN on the wire
  std::size_t header_size = 0;   // total public-header bytes (the AEAD AAD)
};
bool DecodeHeader(BufReader& in, ParsedHeader& out);

/// Reconstruct a full packet number from its truncated form given the
/// largest packet number seen so far on the path (RFC 9000 appendix A).
PacketNumber DecodePacketNumber(PacketNumber largest_seen,
                                PacketNumber truncated,
                                std::size_t pn_length);

// ---------------------------------------------------------------------------
// Frames

enum class FrameType : std::uint8_t {
  kPadding = 0x00,
  kPing = 0x01,
  kConnectionClose = 0x02,
  kRstStream = 0x03,
  kWindowUpdate = 0x04,
  kBlocked = 0x05,
  kHandshake = 0x07,
  kAddAddress = 0x08,
  kPaths = 0x09,
  kRemoveAddress = 0x0A,
  kAck = 0x10,
  kStream = 0x20,
};

struct PaddingFrame {
  std::uint32_t length = 1;  // run length of zero bytes (incl. type byte)
};

struct PingFrame {};

struct ConnectionCloseFrame {
  std::uint16_t error_code = 0;
  std::string reason;
};

struct RstStreamFrame {
  StreamId stream_id{};
  std::uint16_t error_code = 0;
  ByteCount final_offset{};
};

/// Advertises the receiver's flow-control limit. stream_id 0 addresses the
/// connection-level window (§2: QUIC's WINDOW_UPDATE; §3: MPQUIC sends
/// these on *all* paths to dodge receive-buffer deadlocks).
struct WindowUpdateFrame {
  StreamId stream_id{};  // 0 = connection level
  ByteCount max_data{};
};

struct BlockedFrame {
  StreamId stream_id{};  // 0 = connection level
};

enum class HandshakeMessageType : std::uint8_t { kChlo = 1, kShlo = 2 };

/// Simulated 1-RTT secure handshake (CHLO -> SHLO). The SHLO carries the
/// server's other addresses, standing in for early ADD_ADDRESS delivery.
struct HandshakeFrame {
  HandshakeMessageType message = HandshakeMessageType::kChlo;
  std::uint32_t version = kVersionMpq1;
  std::vector<std::uint8_t> nonce;          // 16 bytes in practice
  std::vector<sim::Address> peer_addresses; // SHLO only
};

/// §3 "Path Management": advertises all addresses a host owns, so a
/// dual-stack server can expose its second address over the first path.
struct AddAddressFrame {
  std::vector<sim::Address> addresses;
};

/// Withdraws addresses previously advertised (interface went away); the
/// peer stops scheduling traffic onto paths using them.
struct RemoveAddressFrame {
  std::vector<sim::Address> addresses;
};

enum class PathStatus : std::uint8_t { kActive = 0, kPotentiallyFailed = 1 };

/// §3 "Path Management" / §4.3: per-path performance and status snapshot;
/// lets the peer skip a broken path without waiting for its own RTO.
struct PathsFrame {
  struct Entry {
    PathId path_id{};
    PathStatus status = PathStatus::kActive;
    Duration srtt = 0;
  };
  std::vector<Entry> paths;
};

/// ACK for one path's packet-number space. `ranges` are descending,
/// non-adjacent [smallest, largest] closed intervals; at most
/// kMaxAckRanges of them (vs TCP's 2-3 SACK blocks — the gap driving the
/// lossy-scenario results, §4.1 "Low-BDP-losses").
struct AckFrame {
  static constexpr std::size_t kMaxAckRanges = 256;

  struct Range {
    PacketNumber smallest{};
    PacketNumber largest{};
  };

  PathId path_id{};
  Duration ack_delay = 0;  // microseconds the ACK was withheld
  std::vector<Range> ranges;

  PacketNumber LargestAcked() const {
    return ranges.empty() ? PacketNumber{0} : ranges.front().largest;
  }
};

struct StreamFrame {
  StreamId stream_id{};
  ByteCount offset{};
  bool fin = false;
  std::vector<std::uint8_t> data;
};

using Frame =
    std::variant<PaddingFrame, PingFrame, ConnectionCloseFrame,
                 RstStreamFrame, WindowUpdateFrame, BlockedFrame,
                 HandshakeFrame, AddAddressFrame, RemoveAddressFrame,
                 PathsFrame, AckFrame, StreamFrame>;

/// Serialized size of a frame, exact (used by the packet assembler to fit
/// frames into the MTU without trial encoding).
std::size_t FrameWireSize(const Frame& frame);

/// Append one frame.
void EncodeFrame(const Frame& frame, BufWriter& out);

/// Decode one frame. Returns false on malformed input.
bool DecodeFrame(BufReader& in, Frame& out);

/// Decode an entire payload into frames. Returns false if any frame is
/// malformed (the packet is then dropped whole).
bool DecodePayload(std::span<const std::uint8_t> payload,
                   std::vector<Frame>& out);

/// True for frame types whose loss must trigger retransmission. ACK and
/// PADDING frames are not retransmittable (QUIC rule); everything else is.
bool IsRetransmittable(const Frame& frame);

/// Stable human-readable wire-type name ("ACK", "STREAM", ...) — used by
/// the structured tracers (src/obs/) as event labels.
const char* FrameTypeName(const Frame& frame);

}  // namespace mpq::quic
