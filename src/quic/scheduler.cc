#include "quic/scheduler.h"

#include <algorithm>

namespace mpq::quic {

std::vector<Path*> Scheduler::Candidates(const std::vector<Path*>& paths,
                                         ByteCount bytes) {
  std::vector<Path*> usable;
  std::vector<Path*> failed;
  for (Path* p : paths) {
    if (!p->congestion().CanSend(bytes)) continue;
    (p->Usable() ? usable : failed).push_back(p);
  }
  return usable.empty() ? failed : usable;
}

std::vector<Path*> Scheduler::DuplicationTargets(const std::vector<Path*>&,
                                                 const Path*, ByteCount) {
  return {};
}

bool Scheduler::WantsProbe(const Path&) const { return false; }

// ---------------------------------------------------------------------------

Path* LowestRttScheduler::SelectPath(const std::vector<Path*>& paths,
                                     ByteCount bytes) {
  std::vector<Path*> candidates = Candidates(paths, bytes);
  if (candidates.empty()) return nullptr;
  // Prefer measured paths by smoothed RTT; fall back to the lowest path
  // id (the initial path) when nothing is measured yet.
  Path* best = nullptr;
  for (Path* p : candidates) {
    if (!p->rtt().has_sample()) continue;
    if (best == nullptr || p->rtt().smoothed() < best->rtt().smoothed()) {
      best = p;
    }
  }
  if (best != nullptr) {
    last_reason_ = "lowest-rtt";
    return best;
  }
  last_reason_ = "rtt-unknown-initial";
  return *std::min_element(candidates.begin(), candidates.end(),
                           [](const Path* a, const Path* b) {
                             return a->id() < b->id();
                           });
}

std::vector<Path*> LowestRttScheduler::DuplicationTargets(
    const std::vector<Path*>& paths, const Path* chosen, ByteCount bytes) {
  // §3: duplicate onto usable paths whose characteristics are unknown so
  // they can be used immediately without risking head-of-line blocking.
  std::vector<Path*> targets;
  for (Path* p : paths) {
    if (p == chosen || p->rtt().has_sample() || !p->Usable()) continue;
    if (!p->congestion().CanSend(bytes)) continue;
    targets.push_back(p);
  }
  return targets;
}

// ---------------------------------------------------------------------------

Path* PingFirstScheduler::SelectPath(const std::vector<Path*>& paths,
                                     ByteCount bytes) {
  last_reason_ = "ping-first";
  std::vector<Path*> candidates = Candidates(paths, bytes);
  Path* best = nullptr;
  bool any_measured = false;
  for (Path* p : candidates) {
    if (p->rtt().has_sample()) any_measured = true;
  }
  for (Path* p : candidates) {
    // Until the first path is measured nothing would ever send; allow the
    // initial path through unmeasured.
    if (any_measured && !p->rtt().has_sample()) continue;
    if (best == nullptr ||
        (p->rtt().has_sample() && best->rtt().has_sample() &&
         p->rtt().smoothed() < best->rtt().smoothed()) ||
        (!best->rtt().has_sample() && p->rtt().has_sample())) {
      best = p;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------

Path* RoundRobinScheduler::SelectPath(const std::vector<Path*>& paths,
                                      ByteCount bytes) {
  last_reason_ = "round-robin";
  std::vector<Path*> candidates = Candidates(paths, bytes);
  if (candidates.empty()) return nullptr;
  std::sort(candidates.begin(), candidates.end(),
            [](const Path* a, const Path* b) { return a->id() < b->id(); });
  Path* chosen = candidates[next_ % candidates.size()];
  ++next_;
  return chosen;
}

// ---------------------------------------------------------------------------

Path* RedundantScheduler::SelectPath(const std::vector<Path*>& paths,
                                     ByteCount bytes) {
  last_reason_ = "redundant";
  std::vector<Path*> candidates = Candidates(paths, bytes);
  if (candidates.empty()) return nullptr;
  Path* best = nullptr;
  for (Path* p : candidates) {
    if (best == nullptr ||
        (p->rtt().has_sample() &&
         (!best->rtt().has_sample() ||
          p->rtt().smoothed() < best->rtt().smoothed()))) {
      best = p;
    }
  }
  return best;
}

std::vector<Path*> RedundantScheduler::DuplicationTargets(
    const std::vector<Path*>& paths, const Path* chosen, ByteCount bytes) {
  std::vector<Path*> targets;
  for (Path* p : paths) {
    if (p == chosen || !p->Usable()) continue;
    if (!p->congestion().CanSend(bytes)) continue;
    targets.push_back(p);
  }
  return targets;
}

// ---------------------------------------------------------------------------

std::unique_ptr<Scheduler> MakeScheduler(SchedulerType type) {
  switch (type) {
    case SchedulerType::kLowestRtt:
      return std::make_unique<LowestRttScheduler>();
    case SchedulerType::kPingFirst:
      return std::make_unique<PingFirstScheduler>();
    case SchedulerType::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerType::kRedundant:
      return std::make_unique<RedundantScheduler>();
  }
  return std::make_unique<LowestRttScheduler>();
}

}  // namespace mpq::quic
