// Loss recovery, per path: the retransmission/loss-probe timers, ACK
// processing, RTO accounting and the frame-level requeue of lost packets
// (§3: a frame from a lost packet may be retransmitted on ANY path —
// that flexibility is exactly why requeueing is delegated outward rather
// than re-sent here).
//
// The layer drives the passive per-path state machines (quic/path.h) and
// owns their timers; everything that involves streams, the control queue
// or path lifecycle goes through RecoveryDelegate. By design this file
// must not include quic/streams.h or quic/connection.h — the mpq-layering
// lint rule enforces it — which is what keeps alternative recovery
// designs swappable (the Packet Number Space Debate follow-up compares
// exactly such variants).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/types.h"
#include "quic/path.h"
#include "quic/stats.h"
#include "quic/trace.h"
#include "quic/wire.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace mpq::quic {

/// Everything loss recovery needs from the rest of the connection,
/// expressed without stream or connection types so the recovery layer
/// stays below both.
class RecoveryDelegate {
 public:
  virtual ~RecoveryDelegate() = default;

  /// A STREAM frame range was lost — re-queue it on its send stream.
  virtual void OnStreamFrameLost(StreamId stream, ByteCount offset,
                                 ByteCount length, bool fin) = 0;
  /// A WINDOW_UPDATE was lost — re-advertise (values are monotonic, the
  /// delegate may freshen the limit before fanning it out per §3).
  virtual void RequeueWindowUpdate(const WindowUpdateFrame& frame) = 0;
  /// A PATHS frame was lost — enqueue a fresh snapshot.
  virtual void RequeuePathsSnapshot() = 0;
  /// Any other reliable control frame (ADD/REMOVE_ADDRESS, RST_STREAM,
  /// handshake cleartext) — re-enqueue it as-is on the control queue.
  virtual void RequeueControlFrame(Frame frame) = 0;
  /// An RTO marked the path potentially failed (§4.3). Returns true if
  /// recovery should start probing the path (the delegate may instead
  /// migrate it, in which case probing is pointless).
  virtual bool OnPathPotentiallyFailed(PathId path) = 0;
  /// An ACK brought a potentially-failed path back.
  virtual void OnPathRecovered(PathId path) = 0;
  /// Send a tracked PING on the (potentially failed) path.
  virtual void SendProbePing(PathId path) = 0;
  /// Kick the send loop (data freed by ACKs / requeued by losses).
  virtual void RequestSend() = 0;
  /// MPQ_AUDIT hook: re-validate connection invariants after a recovery
  /// timer event (no-op outside audit builds).
  virtual void RunAudit() = 0;
};

class RecoveryManager {
 public:
  RecoveryManager(sim::Simulator& sim, ConnectionStats& stats,
                  Duration failed_path_probe_interval, Duration max_rto,
                  RecoveryDelegate& delegate);

  void SetTracer(ConnectionTracer* tracer) { tracer_ = tracer; }

  /// Adopt a path: create its (unarmed) retransmission and probe timers.
  /// Paths are never unregistered — they live as long as the connection.
  void RegisterPath(Path& path);

  /// Process an ACK frame for `path`'s packet-number space: RTT/CC
  /// updates, loss detection, probe bookkeeping, requeue of losses.
  void OnAckReceived(Path& path, const AckFrame& ack);

  /// A retransmittable packet went out on `path` — re-anchor its timer.
  void OnPacketTracked(Path& path);

  /// Feed every retransmittable frame of `lost` back for retransmission
  /// via the delegate. `path` labels the tracer events only — the frames
  /// may go out on any path.
  void RequeueLostFrames(PathId path, std::vector<SentPacket> lost);

  /// Path migrated: its in-flight state was written off, stop its timers.
  void OnPathMigrated(PathId id);

  /// Connection closed: stop every timer, ignore late events.
  void OnConnectionClosed();

  /// Scheduler-probe bookkeeping (ping-first ablation): at most one
  /// outstanding tracked PING per path.
  bool ping_probe_outstanding(PathId id) const;
  void set_ping_probe_outstanding(PathId id, bool outstanding);

 private:
  struct PathRecovery {
    Path* path = nullptr;
    std::unique_ptr<sim::Timer> retx_timer;   // loss-time + RTO, combined
    std::unique_ptr<sim::Timer> probe_timer;  // potentially-failed probing
    bool ping_probe_outstanding = false;
  };

  void OnRetxTimer(PathRecovery& rec);
  void OnProbeTimer(PathRecovery& rec);
  void RearmRetxTimer(PathRecovery& rec);

  sim::Simulator& sim_;
  ConnectionStats& stats_;
  Duration probe_interval_;
  Duration max_rto_;
  RecoveryDelegate& delegate_;
  ConnectionTracer* tracer_ = nullptr;
  bool closed_ = false;
  std::map<PathId, PathRecovery> paths_;
};

}  // namespace mpq::quic
