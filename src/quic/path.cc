#include "quic/path.h"

#include <algorithm>

namespace mpq::quic {

void Path::DeclareLost(std::map<PacketNumber, SentPacket>::iterator it,
                       TimePoint now, std::vector<SentPacket>& out) {
  congestion_->OnPacketLost(now, it->second.bytes, it->second.sent_time);
  ++packets_lost_;
  out.push_back(std::move(it->second));
  sent_.erase(it);
}

Path::AckResult Path::OnAckReceived(const AckFrame& ack, TimePoint now) {
  AckResult result;
  if (ack.ranges.empty()) return result;
  const PacketNumber largest = ack.LargestAcked();

  if (largest > largest_acked_) {
    largest_acked_ = largest;
    result.was_new_largest = true;
  }

  // Collect newly acked packets. The RTT sample comes from the highest
  // newly-acked *tracked* packet (ack-only packets consume PNs but are
  // never tracked, so the frame's LargestAcked may not be in the map).
  PacketNumber rtt_sample_pn{};
  TimePoint rtt_sample_sent_time = -1;
  for (const auto& range : ack.ranges) {
    auto it = sent_.lower_bound(range.smallest);
    while (it != sent_.end() && it->first <= range.largest) {
      if (it->first > rtt_sample_pn) {
        rtt_sample_pn = it->first;
        rtt_sample_sent_time = it->second.sent_time;
        largest_acked_sent_time_ = it->second.sent_time;
      }
      congestion_->OnPacketAcked(now, it->second.bytes,
                                 it->second.sent_time, rtt_.smoothed());
      ++packets_acked_;
      result.newly_acked.push_back(std::move(it->second));
      it = sent_.erase(it);
    }
  }
  if (rtt_sample_sent_time >= 0) {
    rtt_.AddSample(now - rtt_sample_sent_time, ack.ack_delay);
  }
  if (!result.newly_acked.empty()) {
    last_ack_time_ = now;
    rto_count_ = 0;
    // Data acknowledged on this path: it works again (§4.3 — the state
    // persists "until data is acknowledged on this path").
    potentially_failed_ = false;
  }

  // Packet-threshold losses: anything at least kReorderingThreshold below
  // the largest acked.
  loss_time_ = kTimeInfinite;
  const Duration threshold = TimeThreshold();
  for (auto it = sent_.begin();
       it != sent_.end() && it->first < largest_acked_;) {
    if (largest_acked_ - it->first >= kReorderingThreshold) {
      auto doomed = it++;
      DeclareLost(doomed, now, result.lost);
      continue;
    }
    // Time threshold: sent sufficiently before the largest-acked packet.
    if (it->second.sent_time + threshold <= now) {
      auto doomed = it++;
      DeclareLost(doomed, now, result.lost);
      continue;
    }
    loss_time_ = std::min(loss_time_, it->second.sent_time + threshold);
    ++it;
  }
  return result;
}

std::vector<SentPacket> Path::DetectTimeThresholdLosses(TimePoint now) {
  std::vector<SentPacket> lost;
  loss_time_ = kTimeInfinite;
  const Duration threshold = TimeThreshold();
  for (auto it = sent_.begin();
       it != sent_.end() && it->first < largest_acked_;) {
    if (it->second.sent_time + threshold <= now) {
      auto doomed = it++;
      DeclareLost(doomed, now, lost);
      continue;
    }
    loss_time_ = std::min(loss_time_, it->second.sent_time + threshold);
    ++it;
  }
  return lost;
}

std::vector<SentPacket> Path::Migrate(
    sim::Address local, sim::Address remote,
    std::unique_ptr<cc::CongestionController> fresh_congestion,
    TimePoint now) {
  local_ = local;
  remote_ = remote;
  // Everything in flight was addressed to the old path; hand the frames
  // back for retransmission on the new one.
  std::vector<SentPacket> lost;
  lost.reserve(sent_.size());
  for (auto& [pn, packet] : sent_) {
    ++packets_lost_;
    lost.push_back(std::move(packet));
  }
  sent_.clear();
  loss_time_ = kTimeInfinite;
  // Measurements and congestion state belong to the old network path.
  congestion_ = std::move(fresh_congestion);
  rtt_ = RttEstimator();
  rto_count_ = 0;
  potentially_failed_ = false;
  remote_failed_ = false;
  (void)now;
  return lost;
}

std::vector<SentPacket> Path::OnRetransmissionTimeout(TimePoint now) {
  ++rto_count_;
  // §4.3: a path that sees an RTO with no network activity since our last
  // transmission is potentially failed; the scheduler will avoid it.
  if (last_ack_time_ < last_send_time_) {
    potentially_failed_ = true;
  }
  congestion_->OnRetransmissionTimeout(now);
  std::vector<SentPacket> lost;
  lost.reserve(sent_.size());
  for (auto& [pn, packet] : sent_) {
    // The packets' bytes were already removed from in-flight by the CC's
    // RTO handling? No — the controller only collapses the window; each
    // packet still occupies in-flight until acked or declared lost, so we
    // mark them lost explicitly (without a second window reduction: the
    // controller ignores losses sent before its recovery point).
    congestion_->OnPacketLost(now, packet.bytes, packet.sent_time);
    ++packets_lost_;
    lost.push_back(std::move(packet));
  }
  sent_.clear();
  loss_time_ = kTimeInfinite;
  return lost;
}

}  // namespace mpq::quic
