#include "quic/audit.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "cc/congestion.h"
#include "quic/connection.h"

namespace mpq::quic {

// Violations are collected (not thrown, not aborted-on) so the same
// implementation serves both MPQ_AUDIT_CHECK (abort at first bad event)
// and the model checker's CheckAll (report and keep exploring).
class Auditor::Impl {
 public:
  Impl(const Connection& conn, std::string* out) : conn_(conn), out_(out) {}

  bool ok() const { return ok_; }

  void Check();
  void CheckPath(const Path& path);

 private:
  void Fail(const char* what);

  const Connection& conn_;
  std::string* out_;
  bool ok_ = true;
};

void Auditor::Impl::Fail(const char* what) {
  ok_ = false;
  if (out_ == nullptr) return;
  char line[160];
  std::snprintf(line, sizeof(line), "MPQ_AUDIT violation (cid=%" PRIu64
                "): %s\n", conn_.cid(), what);
  out_->append(line);
}

#define AUDIT(cond, what)                  \
  do {                                     \
    if (!(cond)) Fail(what);               \
  } while (0)

void Auditor::Impl::CheckPath(const Path& path) {
  const Connection& conn = conn_;
  // Packet-number space: allocation is monotonic starting at 1, and
  // nothing tracked or acked can sit at or beyond the next allocation.
  AUDIT(path.next_pn_ >= PacketNumber{1}, "path next_pn below 1");
  AUDIT(path.largest_acked_ < path.next_pn_,
        "largest_acked >= next unallocated packet number");

  ByteCount tracked_in_flight{0};
  PacketNumber prev{0};
  for (const auto& [pn, packet] : path.sent_) {
    AUDIT(pn == packet.pn, "sent_ key disagrees with the packet record");
    AUDIT(pn > prev, "sent_ packet numbers not strictly increasing");
    AUDIT(pn < path.next_pn_, "sent_ holds an unallocated packet number");
    tracked_in_flight += packet.bytes;
    prev = pn;
  }
  AUDIT(path.congestion_->bytes_in_flight() == tracked_in_flight,
        "bytes_in_flight != sum of tracked sent packets");

  // Congestion window floor: every controller collapses to at most
  // kMinWindowPackets * mss on loss/RTO, never below it. All controllers
  // in this stack are built with mss = config.max_packet_size.
  AUDIT(path.congestion_->congestion_window() >=
            cc::kMinWindowPackets * conn.config_.max_packet_size.value(),
        "congestion window below the minimum window");

  // Receive-side ACK ranges: descending, within-range, disjoint and
  // coalesced (adjacent ranges must have been merged on insert).
  const auto ranges = path.receiver_.BuildAckRanges();
  if (!ranges.empty()) {
    AUDIT(ranges.front().largest == path.receiver_.largest_received(),
          "first ACK range does not end at largest_received");
  }
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    AUDIT(ranges[i].smallest <= ranges[i].largest,
          "ACK range with smallest > largest");
    if (i + 1 < ranges.size()) {
      AUDIT(ranges[i + 1].largest + 1 < ranges[i].smallest,
            "ACK ranges overlapping, unsorted or uncoalesced");
    }
  }
}

void Auditor::Impl::Check() {
  const Connection& conn = conn_;
  for (const auto& [id, path] : conn.paths_) {
    AUDIT(path != nullptr, "paths_ entry without a path");
    AUDIT(path->id() == id, "paths_ key disagrees with path id");
    if (path != nullptr) CheckPath(*path);
  }

  // Send-side flow control: new stream bytes on the wire never exceed
  // what the peer advertised, at connection level or per stream.
  AUDIT(conn.assembler_->new_stream_bytes_sent_ <= conn.flow_.peer_max_data(),
        "sent beyond the peer's connection-level flow-control limit");
  for (const auto& [id, stream] : conn.send_streams_) {
    AUDIT(stream->max_offset_sent() <= stream->peer_max_stream_data_,
          "sent beyond the peer's stream-level flow-control limit");
    for (const auto& [offset, length] : stream->retransmit_) {
      AUDIT(offset + length.value() <= stream->max_offset_sent() ||
                (stream->fin_sent_ && offset + length.value() <=
                                          stream->source_->size()),
            "retransmission range beyond the bytes ever sent");
    }
  }

  // Receive side: the peer never wrote past what we advertised, and the
  // delivered prefix of each stream is consistent with what arrived.
  AUDIT(conn.dispatcher_->total_highest_received_ <= conn.flow_.local_max_data(),
        "peer wrote beyond our advertised connection-level limit");
  AUDIT(conn.flow_.consumed_ <= conn.flow_.local_max_data(),
        "consumed beyond our own advertisement");
  for (const auto& [id, stream] : conn.dispatcher_->recv_streams_) {
    AUDIT(stream->delivered_offset() <= stream->highest_received(),
          "delivered beyond the highest received offset");
    if (stream->fin_known()) {
      AUDIT(stream->highest_received() <= stream->final_size(),
            "received data beyond the stream's final size");
    }
  }
}

#undef AUDIT

bool Auditor::CheckAll(const Connection& conn, std::string* violations) {
  Impl impl(conn, violations);
  impl.Check();
  return impl.ok();
}

void Auditor::Check(const Connection& conn) {
  std::string why;
  if (!CheckAll(conn, &why)) {
    std::fputs(why.c_str(), stderr);
    std::abort();
  }
}

}  // namespace mpq::quic
