// Receive half of the datapath: decrypt, packet-number reconstruction,
// duplicate detection, frame parsing and per-frame routing. Owns the
// opener keys, the receive streams (reassembly + in-order delivery) and
// the receive-side window accounting; everything that touches the send
// side, path lifecycle or connection state goes through DispatchDelegate.
//
// §2/§3 in this layer: the offset in STREAM frames fully orders the
// bytes, so reassembly works regardless of which path a frame arrived
// on, and receive-window advertisements are fanned out on all paths via
// the delegate.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "crypto/aead.h"
#include "quic/path.h"
#include "quic/stats.h"
#include "quic/streams.h"
#include "quic/trace.h"
#include "quic/wire.h"
#include "sim/net.h"
#include "sim/simulator.h"

namespace mpq::quic {

/// Frame routing the dispatcher cannot resolve locally: ACKs belong to
/// recovery, WINDOW_UPDATE to the send side, address/path frames to path
/// management — all behind the composer.
class DispatchDelegate {
 public:
  virtual ~DispatchDelegate() = default;

  virtual bool connection_closed() const = 0;
  /// Find the path, creating it on first contact (§3: data can ride in
  /// the very first packet of a peer-created path).
  virtual Path* EnsurePath(PathId id, const sim::Datagram& datagram) = 0;
  virtual void OnAckFrame(const AckFrame& ack) = 0;
  /// Peer raised a send-side limit (connection or stream level).
  virtual void OnWindowUpdateFrame(const WindowUpdateFrame& frame) = 0;
  virtual void OnPathsFrame(const PathsFrame& frame) = 0;
  virtual void OnAddAddressFrame(const AddAddressFrame& frame) = 0;
  virtual void OnRemoveAddressFrame(const RemoveAddressFrame& frame) = 0;
  virtual void OnPeerClose(const ConnectionCloseFrame& frame) = 0;
  /// Our receive window moved — advertise it (on all paths under §3's
  /// multipath rule; the composer decides).
  virtual void FanOutWindowUpdate(const WindowUpdateFrame& frame) = 0;
  /// The packet carried retransmittable frames — note it on the path and
  /// schedule the ACK.
  virtual void OnAckElicitingPacket(Path& path, bool out_of_order) = 0;
};

class FrameDispatcher {
 public:
  /// In-order stream delivery: (stream, offset, bytes, finished).
  using StreamDataHandler =
      std::function<void(StreamId, ByteCount, std::span<const std::uint8_t>,
                         bool finished)>;

  FrameDispatcher(sim::Simulator& sim, ConnectionId cid,
                  ConnectionStats& stats, FlowController& flow,
                  DispatchDelegate& delegate);

  void SetTracer(ConnectionTracer* tracer) { tracer_ = tracer; }
  /// Install the opening keys (the peer's direction).
  void SetOpener(std::unique_ptr<crypto::PacketProtection> open);
  bool HasKeys() const { return open_ != nullptr; }
  void SetStreamDataHandler(StreamDataHandler handler) {
    on_stream_data_ = std::move(handler);
  }

  /// Decrypt and process one 1-RTT packet. Drops it on missing keys,
  /// decrypt failure or duplicate packet number.
  void OnEncryptedPacket(const ParsedHeader& parsed, BufReader& reader,
                         std::span<const std::uint8_t> datagram_bytes,
                         const sim::Datagram& datagram);

  /// One 1-RTT packet of a receive batch (quic::Server batch dispatch).
  /// `payload` is the full mutable datagram payload (header | ciphertext
  /// | tag) — the batch open decrypts it in place.
  struct EncryptedPacketRef {
    ParsedHeader parsed;
    std::span<std::uint8_t> payload;
    const sim::Datagram* datagram = nullptr;
  };

  /// Decrypt and process a same-instant run of 1-RTT packets with one
  /// crypto::OpenN call. Packet numbers are reconstructed speculatively
  /// along the run (each packet's decode context includes the packets
  /// before it); the consume pass re-derives every number from the live
  /// receiver state and falls back to a per-packet open whenever the
  /// speculation diverged (only possible after a failed open), so the
  /// outcome per packet — including stats — is exactly what sequential
  /// OnEncryptedPacket calls would have produced.
  void OnEncryptedPacketBatch(std::span<EncryptedPacketRef> packets);

  /// True while any receive stream still awaits data (idle-failure
  /// detection asks this).
  bool AnyRecvStreamUnfinished() const;

 private:
  friend class Auditor;

  /// Everything after a successful open: duplicate check, tracing,
  /// address follow, frame parse + routing, ACK scheduling. Shared by
  /// the single-packet and batch paths.
  void ProcessOpenedPacket(Path& path, PathId pid, PacketNumber pn,
                           std::span<const std::uint8_t> plaintext,
                           const sim::Datagram& datagram);
  /// Frames are consumed: stream payloads are moved out into the receive
  /// streams rather than copied.
  void ProcessFrames(Path& path, std::vector<Frame>& frames);
  void OnStreamFrameReceived(StreamFrame& frame);
  RecvStream& GetOrCreateRecvStream(StreamId id);

  sim::Simulator& sim_;
  ConnectionId cid_;
  ConnectionStats& stats_;
  FlowController& flow_;
  DispatchDelegate& delegate_;
  ConnectionTracer* tracer_ = nullptr;

  std::unique_ptr<crypto::PacketProtection> open_;  // peer's direction
  StreamDataHandler on_stream_data_;

  std::map<StreamId, std::unique_ptr<RecvStream>> recv_streams_;
  /// Receive-side: per-stream advertised limits for stream-level windows.
  std::map<StreamId, ByteCount> stream_advertised_;
  /// Sum over streams of highest received offset (connection-level
  /// receive accounting).
  ByteCount total_highest_received_{};

  // Recycled per-packet scratch (see assembler.h for the rationale).
  std::vector<std::uint8_t> recv_plaintext_scratch_;
  std::vector<Frame> recv_frames_scratch_;
  /// Recycled OpenN request array + per-path speculative packet-number
  /// context for OnEncryptedPacketBatch.
  std::vector<crypto::OpenRequest> open_requests_scratch_;
  std::vector<std::pair<PathId, PacketNumber>> predicted_largest_scratch_;
};

}  // namespace mpq::quic
