#include "quic/connection.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "cc/cubic.h"
#include "cc/newreno.h"
#include "common/clock.h"
#include "common/log.h"
#include "obs/prof.h"
#include "quic/audit.h"

namespace mpq::quic {

Connection::Connection(sim::Simulator& sim, Perspective perspective,
                       ConnectionId cid, ConnectionConfig config, Rng rng,
                       SendFunction send)
    : sim_(sim),
      perspective_(perspective),
      cid_(cid),
      config_(config),
      rng_(rng),
      scheduler_(MakeScheduler(config.scheduler)),
      flow_(config.receive_window) {
  if (config_.congestion == CongestionAlgo::kOlia) {
    olia_ = std::make_unique<cc::OliaCoordinator>(config_.max_packet_size);
  } else if (config_.congestion == CongestionAlgo::kLia) {
    lia_ = std::make_unique<cc::LiaCoordinator>(config_.max_packet_size);
  }
  // The delegate casts must happen here, inside a Connection member,
  // where the private bases are accessible.
  recovery_ = std::make_unique<RecoveryManager>(
      sim_, stats_, config_.failed_path_probe_interval, config_.max_rto,
      static_cast<RecoveryDelegate&>(*this));
  assembler_ = std::make_unique<PacketAssembler>(
      sim_, config_, cid_, stats_, flow_, send_streams_, control_, *recovery_,
      static_cast<AssemblerDelegate&>(*this), std::move(send));
  dispatcher_ = std::make_unique<FrameDispatcher>(
      sim_, cid_, stats_, flow_, static_cast<DispatchDelegate&>(*this));
  handshake_ = std::make_unique<HandshakeLayer>(
      sim_, perspective_, cid_, config_, rng_,
      static_cast<HandshakeDelegate&>(*this));
  if (config_.idle_timeout > 0) {
    connection_idle_timer_ = std::make_unique<sim::Timer>(sim_, [this] {
      // The timer is rearmed on packet activity, but a path outage can
      // silence both directions for its full duration: nothing arrives,
      // and once the probe/RTO backoff exceeds the idle timeout nothing
      // is sent either. Killing the connection then turns every outage
      // longer than the idle timeout into a spurious close even though
      // recovery is still working on it — so while the transfer is
      // unfinished or data is in flight, the timer only rearms.
      if (ExpectingData() || AnyPathInFlight()) {
        connection_idle_timer_->SetIn(config_.idle_timeout);
        return;
      }
      MPQ_DEBUG(sim_.now(), "quic", "cid=%llu idle timeout",
                static_cast<unsigned long long>(cid_));
      Close(0, "idle timeout");
    });
    connection_idle_timer_->SetIn(config_.idle_timeout);
  }
  if (config_.migrate_on_path_failure &&
      perspective_ == Perspective::kClient) {
    idle_timer_ =
        std::make_unique<sim::Timer>(sim_, [this] { OnIdleFailureTimer(); });
  }
}

Connection::~Connection() = default;

void Connection::SetTracer(ConnectionTracer* tracer) {
  tracer_ = tracer;
  recovery_->SetTracer(tracer);
  assembler_->SetTracer(tracer);
  dispatcher_->SetTracer(tracer);
  handshake_->SetTracer(tracer);
}

void Connection::SetStreamDataHandler(StreamDataHandler handler) {
  dispatcher_->SetStreamDataHandler(std::move(handler));
}

bool Connection::ExpectingData() const {
  if (dispatcher_->AnyRecvStreamUnfinished()) return true;
  for (const auto& [id, stream] : send_streams_) {
    if (!stream->AllDataSentOnce()) return true;
  }
  return false;
}

bool Connection::AnyPathInFlight() const {
  for (const auto& [id, path] : paths_) {
    if (path->HasInFlight()) return true;
  }
  return false;
}

void Connection::OnIdleFailureTimer() {
  if (closed_ || !established_) return;
  AuditScope audit(*this);
  if (ExpectingData() && !paths_.empty()) {
    Path& path = *paths_.begin()->second;
    if (tracer_ != nullptr && !path.potentially_failed()) {
      tracer_->OnPathStateChange(sim_.now(), path.id(), "potentially-failed");
    }
    path.set_potentially_failed(true);
    TryAutoMigrate(path);
  }
  idle_timer_->SetIn(config_.idle_failure_timeout);
}

void Connection::SetLocalAddresses(std::vector<sim::Address> addresses) {
  local_addresses_ = std::move(addresses);
}

std::vector<const Path*> Connection::paths() const {
  std::vector<const Path*> out;
  out.reserve(paths_.size());
  for (const auto& [id, path] : paths_) out.push_back(path.get());
  return out;
}

Path* Connection::GetPath(PathId id) {
  auto it = paths_.find(id);
  return it == paths_.end() ? nullptr : it->second.get();
}

std::vector<Path*> Connection::PathPointers() {
  std::vector<Path*> out;
  out.reserve(paths_.size());
  for (auto& [id, path] : paths_) out.push_back(path.get());
  return out;
}

std::unique_ptr<cc::CongestionController> Connection::MakeController() {
  switch (config_.congestion) {
    case CongestionAlgo::kOlia:
      return olia_->CreateController();
    case CongestionAlgo::kLia:
      return lia_->CreateController();
    case CongestionAlgo::kNewReno:
      return std::make_unique<cc::NewReno>(config_.max_packet_size);
    case CongestionAlgo::kCubic:
      break;
  }
  return std::make_unique<cc::Cubic>(config_.max_packet_size);
}

Path& Connection::CreatePath(PathId id, sim::Address local,
                             sim::Address remote) {
  auto [it, inserted] = paths_.emplace(
      id, std::make_unique<Path>(id, local, remote, MakeController()));
  assert(inserted);
  recovery_->RegisterPath(*it->second);
  assembler_->RegisterPath(*it->second);
  MPQ_DEBUG(sim_.now(), "quic", "cid=%llu new path %u",
            static_cast<unsigned long long>(cid_), id.value());
  if (tracer_ != nullptr) {
    tracer_->OnPathStateChange(sim_.now(), id, "created");
  }
  return *it->second;
}

// ---------------------------------------------------------------------------
// Handshake (the state machine lives in quic/handshake.h; these are the
// composer-side effects it triggers through HandshakeDelegate)

void Connection::Connect(sim::Address server_address) {
  assert(perspective_ == Perspective::kClient);
  assert(!local_addresses_.empty());
  CreatePath(PathId{0}, local_addresses_[0], server_address);
  handshake_->StartClient();
}

void Connection::OnHandshakeKeys(
    std::unique_ptr<crypto::PacketProtection> seal,
    std::unique_ptr<crypto::PacketProtection> open) {
  assembler_->SetSealer(std::move(seal));
  dispatcher_->SetOpener(std::move(open));
}

void Connection::SendHandshakeFrames(std::vector<Frame>& frames) {
  assembler_->TransmitPacket(*paths_.at(PathId{0}), frames,
                             /*retransmittable=*/false,
                             /*handshake_cleartext=*/true);
}

void Connection::RecordHandshakePacketNumber(PathId path,
                                             PacketNumber truncated,
                                             std::size_t pn_length) {
  if (auto it = paths_.find(path); it != paths_.end()) {
    const PacketNumber full = DecodePacketNumber(
        it->second->receiver().largest_received(), truncated, pn_length);
    it->second->receiver().OnPacketReceived(full, sim_.now());
  }
}

void Connection::OnServerChloAccepted(sim::Address local,
                                      sim::Address remote) {
  CreatePath(PathId{0}, local, remote);
  BecomeEstablished();
}

void Connection::OnPeerAddresses(std::vector<sim::Address> addresses) {
  peer_addresses_ = std::move(addresses);
}

void Connection::OnClientHandshakeComplete() {
  OpenClientPaths();
  BecomeEstablished();
  TrySend();
}

void Connection::OnZeroRttConfirmed(
    const std::vector<sim::Address>& peer_addresses) {
  if (peer_addresses_.empty()) {
    peer_addresses_ = peer_addresses;
    OpenClientPaths();
  }
}

void Connection::AddHandshakeRttSample(Duration rtt, bool only_if_no_sample) {
  Path& path = *paths_.at(PathId{0});
  if (only_if_no_sample && path.rtt().has_sample()) return;
  // The CHLO/SHLO exchange gives the initial path its first RTT sample —
  // one of the reasons MPQUIC starts with usable latency estimates.
  path.rtt().AddSample(rtt, 0);
}

void Connection::OnHandshakeFailed() { closed_ = true; }

void Connection::BecomeEstablished() {
  established_ = true;
  assembler_->set_established(true);
  MPQ_DEBUG(sim_.now(), "quic", "cid=%llu established (%s)",
            static_cast<unsigned long long>(cid_),
            perspective_ == Perspective::kClient ? "client" : "server");
  if (tracer_ != nullptr) {
    tracer_->OnHandshakeEvent(sim_.now(), "established");
  }
  // §3 "Path Management": advertise our other addresses so the peer can
  // open paths toward them (the server already put its own in the SHLO).
  if (config_.multipath && config_.advertise_addresses &&
      perspective_ == Perspective::kClient && local_addresses_.size() > 1) {
    EnqueueControl(AddAddressFrame{local_addresses_});
  }
  if (on_established_) on_established_();
}

// ---------------------------------------------------------------------------
// Path management (§3 "Path Management")

void Connection::MaybeOpenServerPaths() {
  if (!config_.multipath || !config_.allow_server_paths ||
      perspective_ != Perspective::kServer || !established_) {
    return;
  }
  PathId next_even{2};
  for (const auto& [id, path] : paths_) {
    if (id % 2 == 0 && id >= next_even) {
      next_even = static_cast<PathId>(id + 2);
    }
  }
  for (const auto& remote : peer_addresses_) {
    bool used = false;
    for (const auto& [id, path] : paths_) {
      if (path->remote_address() == remote) used = true;
    }
    if (used) continue;
    const sim::Address* local = nullptr;
    for (const auto& addr : local_addresses_) {
      if (addr.iface == remote.iface) {
        local = &addr;
        break;
      }
    }
    if (local == nullptr) continue;
    CreatePath(next_even, *local, remote);
    next_even = static_cast<PathId>(next_even + 2);
  }
  TrySend();
}

void Connection::RemoveLocalAddress(sim::Address address) {
  if (closed_) return;
  std::erase(local_addresses_, address);
  for (auto& [id, path] : paths_) {
    if (path->local_address() == address) {
      if (tracer_ != nullptr && !path->potentially_failed()) {
        tracer_->OnPathStateChange(sim_.now(), id, "potentially-failed");
      }
      path->set_potentially_failed(true);
      recovery_->RequeueLostFrames(id,
                                   path->OnRetransmissionTimeout(sim_.now()));
    }
  }
  EnqueueControl(RemoveAddressFrame{{address}});
  TrySend();
}

void Connection::AddLocalAddress(sim::Address address) {
  if (closed_) return;
  if (std::find(local_addresses_.begin(), local_addresses_.end(), address) ==
      local_addresses_.end()) {
    local_addresses_.push_back(address);
  }
  for (auto& [id, path] : paths_) {
    if (path->local_address() == address && path->potentially_failed()) {
      path->set_potentially_failed(false);
      if (tracer_ != nullptr) {
        tracer_->OnPathStateChange(sim_.now(), id, "recovered");
      }
    }
  }
  EnqueueControl(AddAddressFrame{{address}});
  TrySend();
}

void Connection::OpenClientPaths() {
  if (!config_.multipath || perspective_ != Perspective::kClient ||
      !config_.client_opens_paths) {
    return;
  }
  // §3 "Path Management": upon handshake completion, open one path over
  // each (additional) client interface. Client-created paths get odd ids.
  // Idempotent: with 0-RTT this runs again once the SHLO delivers the
  // peer's addresses.
  PathId next_id{1};
  while (paths_.contains(next_id)) next_id = static_cast<PathId>(next_id + 2);
  for (std::size_t i = 1; i < local_addresses_.size(); ++i) {
    // Pair the i-th local interface with the peer address advertised for
    // the same interface index, if any.
    const sim::Address local = local_addresses_[i];
    const sim::Address* remote = nullptr;
    for (const auto& addr : peer_addresses_) {
      if (addr.iface == local.iface) {
        remote = &addr;
        break;
      }
    }
    if (remote == nullptr) continue;
    bool already = false;
    for (const auto& [id, path] : paths_) {
      if (path->remote_address() == *remote) already = true;
    }
    if (already) continue;
    Path& path = CreatePath(next_id, local, *remote);
    next_id = static_cast<PathId>(next_id + 2);
    // Announce the new path right away (path-validation PING): the server
    // only learns of a path from a packet carrying its id, and a pure
    // downloader might otherwise never send one. The PING's ACK also
    // seeds the path's RTT estimate.
    if (established_) assembler_->SendPing(path, /*track=*/true);
  }
}

// ---------------------------------------------------------------------------
// Application API

void Connection::SendOnStream(StreamId id,
                              std::unique_ptr<SendSource> source) {
  assert(id != 0);  // stream id 0 addresses the connection in WINDOW_UPDATE
  auto [it, inserted] = send_streams_.try_emplace(
      id, std::make_unique<SendStream>(id, std::move(source)));
  assert(inserted && "stream already exists");
  (void)it;
  if (established_) TrySend();
}

void Connection::ResetStream(StreamId id, std::uint16_t error_code) {
  auto it = send_streams_.find(id);
  if (it == send_streams_.end() || closed_) return;
  RstStreamFrame frame;
  frame.stream_id = id;
  frame.error_code = error_code;
  frame.final_offset = it->second->max_offset_sent();
  // Drop the stream: no more (re)transmissions of its data. STREAM frames
  // of this id from lost packets are silently discarded from now on.
  send_streams_.erase(it);
  EnqueueControl(frame);
  TrySend();
}

void Connection::Close(std::uint16_t error_code, const std::string& reason) {
  if (closed_) return;
  if (established_ && !paths_.empty()) {
    ConnectionCloseFrame frame;
    frame.error_code = error_code;
    frame.reason = reason;
    // Best effort on the initial path.
    std::vector<Frame> frames;
    frames.emplace_back(std::move(frame));
    assembler_->TransmitPacket(*paths_.begin()->second, frames,
                               /*retransmittable=*/false,
                               /*handshake_cleartext=*/false);
  }
  closed_ = true;
  recovery_->OnConnectionClosed();
  assembler_->OnConnectionClosed();
  handshake_->OnConnectionClosed();
  if (idle_timer_) idle_timer_->Cancel();
  if (connection_idle_timer_) connection_idle_timer_->Cancel();
}

// ---------------------------------------------------------------------------
// Receive (decrypt/parse/route live in quic/dispatch.h; these are the
// composer-side effects the dispatcher triggers through DispatchDelegate)

void Connection::OnDatagram(const sim::Datagram& datagram) {
  if (closed_) return;
  AuditScope audit(*this);
  BufReader reader(datagram.payload);
  ParsedHeader parsed;
  if (!DecodeHeader(reader, parsed)) return;
  if (parsed.header.cid != cid_) return;
  ++stats_.packets_received;
  if (idle_timer_) idle_timer_->SetIn(config_.idle_failure_timeout);
  if (connection_idle_timer_) {
    connection_idle_timer_->SetIn(config_.idle_timeout);
  }
  if (parsed.header.handshake) {
    handshake_->OnHandshakePacket(parsed, reader, datagram);
    TrySend();
    return;
  }
  dispatcher_->OnEncryptedPacket(parsed, reader, datagram.payload, datagram);
  TrySend();
}

void Connection::OnDatagramBatch(std::span<sim::Datagram> datagrams) {
  if (closed_) return;
  AuditScope audit(*this);
  std::vector<FrameDispatcher::EncryptedPacketRef>& run = batch_packets_scratch_;
  run.clear();
  const auto flush_run = [&] {
    if (run.empty()) return;
    dispatcher_->OnEncryptedPacketBatch(run);
    run.clear();
  };
  for (sim::Datagram& datagram : datagrams) {
    if (closed_) break;
    BufReader reader(datagram.payload);
    ParsedHeader parsed;
    if (!DecodeHeader(reader, parsed)) continue;
    if (parsed.header.cid != cid_) continue;
    ++stats_.packets_received;
    if (idle_timer_) idle_timer_->SetIn(config_.idle_failure_timeout);
    if (connection_idle_timer_) {
      connection_idle_timer_->SetIn(config_.idle_timeout);
    }
    if (parsed.header.handshake) {
      // Key installs must land before the packets behind them decrypt:
      // drain the pending 1-RTT run, then process the handshake packet
      // exactly as the unbatched path would.
      flush_run();
      handshake_->OnHandshakePacket(parsed, reader, datagram);
      TrySend();
      continue;
    }
    run.push_back(FrameDispatcher::EncryptedPacketRef{
        parsed, std::span<std::uint8_t>(datagram.payload), &datagram});
  }
  if (!closed_) flush_run();
  if (!closed_) TrySend();
}

Path* Connection::EnsurePath(PathId id, const sim::Datagram& datagram) {
  auto it = paths_.find(id);
  if (it == paths_.end()) {
    return &CreatePath(id, datagram.dst, datagram.src);
  }
  return it->second.get();
}

void Connection::OnAckFrame(const AckFrame& ack) {
  auto it = paths_.find(ack.path_id);
  if (it == paths_.end()) return;
  recovery_->OnAckReceived(*it->second, ack);
}

void Connection::OnWindowUpdateFrame(const WindowUpdateFrame& frame) {
  if (frame.stream_id == 0) {
    flow_.OnMaxData(frame.max_data);
  } else if (auto it = send_streams_.find(frame.stream_id);
             it != send_streams_.end()) {
    it->second->OnMaxStreamData(frame.max_data);
  }
}

void Connection::OnPathsFrame(const PathsFrame& frame) {
  for (const auto& entry : frame.paths) {
    auto it = paths_.find(entry.path_id);
    if (it == paths_.end()) continue;
    it->second->set_remote_reported_failed(entry.status ==
                                           PathStatus::kPotentiallyFailed);
  }
}

void Connection::OnAddAddressFrame(const AddAddressFrame& frame) {
  for (const auto& addr : frame.addresses) {
    if (std::find(peer_addresses_.begin(), peer_addresses_.end(), addr) ==
        peer_addresses_.end()) {
      peer_addresses_.push_back(addr);
    }
    // Re-adding an address the peer previously withdrew un-strands every
    // path to it: REMOVE_ADDRESS set remote_reported_failed, and without
    // this the only other way back is a PATHS frame — which the peer
    // only sends while it considers the path worth reporting. A path
    // whose remote address is advertised again is usable again.
    for (auto& [id, path] : paths_) {
      if (path->remote_address() == addr && path->remote_reported_failed()) {
        path->set_remote_reported_failed(false);
        if (tracer_ != nullptr) {
          tracer_->OnPathStateChange(sim_.now(), id, "recovered");
        }
      }
    }
  }
  MaybeOpenServerPaths();
}

void Connection::OnRemoveAddressFrame(const RemoveAddressFrame& frame) {
  for (const auto& addr : frame.addresses) {
    std::erase(peer_addresses_, addr);
    for (auto& [id, path] : paths_) {
      if (path->remote_address() == addr) {
        path->set_remote_reported_failed(true);
      }
    }
  }
}

void Connection::OnPeerClose(const ConnectionCloseFrame& frame) {
  Close(frame.error_code, "peer close");
}

void Connection::FanOutWindowUpdate(const WindowUpdateFrame& frame) {
  EnqueueWindowUpdates(frame);
}

void Connection::OnAckElicitingPacket(Path& path, bool out_of_order) {
  path.NoteRetransmittableReceived();
  assembler_->MaybeScheduleAck(path, out_of_order);
}

// ---------------------------------------------------------------------------
// Send

PathsFrame Connection::BuildPathsFrame() const {
  PathsFrame frame;
  for (const auto& [id, path] : paths_) {
    PathsFrame::Entry entry;
    entry.path_id = id;
    entry.status = path->potentially_failed() ? PathStatus::kPotentiallyFailed
                                              : PathStatus::kActive;
    entry.srtt = path->rtt().smoothed();
    frame.paths.push_back(entry);
  }
  return frame;
}

void Connection::EnqueueControl(Frame frame) {
  control_.EnqueueShared(std::move(frame));
}

void Connection::EnqueueWindowUpdates(const WindowUpdateFrame& frame) {
  if (config_.multipath && config_.window_update_on_all_paths) {
    // §3: WINDOW_UPDATE goes out on ALL paths so a receive-buffer
    // deadlock cannot arise from one path losing the update.
    for (auto& [id, path] : paths_) {
      control_.EnqueuePinned(id, Frame{frame});
    }
  } else {
    EnqueueControl(frame);
  }
}

void Connection::TrySend() {
  if (!established_ || closed_ || in_try_send_) return;
  AuditScope audit(*this);
  in_try_send_ = true;
  // Transmit burst: every packet this pass produces (probes, control,
  // the main data loop, scheduler duplicates) is sealed in one batched
  // crypto call and handed to the network when the burst ends.
  assembler_->BeginBurst();

  // Scheduler-requested probes (ping-first ablation).
  for (auto& [id, path] : paths_) {
    if (scheduler_->WantsProbe(*path) &&
        !recovery_->ping_probe_outstanding(id) && path->Usable()) {
      recovery_->set_ping_probe_outstanding(id, true);
      assembler_->SendPing(*path, /*track=*/true);
    }
  }

  // Drain path-pinned control frames (per-path WINDOW_UPDATE copies).
  // These bypass the congestion window check: they are tiny and withhold-
  // ing them can deadlock the transfer — the exact failure mode §3's
  // "WINDOW_UPDATE on all paths" rule exists to avoid.
  for (auto& [id, path] : paths_) {
    while (control_.HasPinned(id)) {
      if (!assembler_->SendOnePacket(*path, /*include_stream_data=*/false,
                                     nullptr, nullptr)) {
        break;
      }
    }
  }

  // Flow-control diagnostics: report BLOCKED (once per episode) when
  // data is waiting but the connection-level window is exhausted.
  if (established_ && assembler_->SendAllowance() == 0) {
    bool data_waiting = false;
    for (auto& [id, stream] : send_streams_) {
      if (!stream->AllDataSentOnce()) data_waiting = true;
    }
    if (data_waiting && !blocked_reported_) {
      blocked_reported_ = true;
      if (tracer_ != nullptr) {
        tracer_->OnFlowControlBlocked(sim_.now(), StreamId{0});
      }
      EnqueueControl(BlockedFrame{StreamId{0}});
    }
  } else {
    blocked_reported_ = false;
  }

  // Main data loop: one packet per iteration, path chosen by the
  // scheduler among paths the pacer currently allows, duplicates onto
  // unknown-RTT paths (§3).
  for (int guard = 0; guard < 100000; ++guard) {
    const bool have_control = !control_.shared_empty();
    if (!have_control && !assembler_->AnyStreamHasData()) break;
    std::vector<Path*> eligible;
    bool pacing_blocked = false;
    bool usable_exists = false;
    for (auto& [id, path] : paths_) {
      if (path->Usable()) usable_exists = true;
      if (assembler_->PacingAllows(*path, config_.max_packet_size)) {
        eligible.push_back(path.get());
      } else if (path->Usable() &&
                 path->congestion().CanSend(config_.max_packet_size)) {
        pacing_blocked = true;
      }
    }
    // A potentially-failed path is a last resort: the scheduler's
    // failed-path fallback must only engage when NO path is usable.
    // Offering a failed path while a live one is merely pacing- or
    // cwnd-limited strands fresh data on a black-holed link, where only
    // an RTO can recover it. Wait for the live path instead.
    if (usable_exists) {
      std::erase_if(eligible, [](Path* p) { return !p->Usable(); });
    }
    Path* chosen;
    if (tracer_ != nullptr) {
      // Measured decision: the wall-clock cost of the scheduler itself is
      // one of the hot-path numbers the metrics registry tracks. Only the
      // traced configuration pays for the clock reads. This feeds the
      // tracer API (OnSchedulerDecision carries elapsed_ns), so the raw
      // clock reads stay; the profiler records the same span.
      MPQ_PROF_SCOPE("scheduler/select");
      const std::uint64_t before = MonotonicNanos();  // NOLINT(mpq-prof-clock)
      chosen = scheduler_->SelectPath(eligible, config_.max_packet_size);
      const std::uint64_t elapsed =
          MonotonicNanos() - before;  // NOLINT(mpq-prof-clock)
      if (chosen != nullptr) {
        tracer_->OnSchedulerDecision(sim_.now(), chosen->id(),
                                     scheduler_->last_reason(), elapsed);
      }
    } else {
      MPQ_PROF_SCOPE("scheduler/select");
      chosen = scheduler_->SelectPath(eligible, config_.max_packet_size);
    }
    if (chosen == nullptr) {
      if (pacing_blocked) assembler_->ArmPaceTimer();
      break;
    }
    std::vector<StreamFrame> sent_stream_frames;
    if (!assembler_->SendOnePacket(*paths_.at(chosen->id()),
                                   /*include_stream_data=*/true, nullptr,
                                   &sent_stream_frames)) {
      break;
    }
    if (!sent_stream_frames.empty()) {
      for (Path* target : scheduler_->DuplicationTargets(
               eligible, chosen, config_.max_packet_size)) {
        ++stats_.duplicated_scheduler_packets;
        if (tracer_ != nullptr) {
          tracer_->OnSchedulerDecision(sim_.now(), target->id(), "duplicate",
                                       0);
        }
        assembler_->SendOnePacket(*paths_.at(target->id()),
                                  /*include_stream_data=*/false,
                                  &sent_stream_frames, nullptr);
      }
    }
  }
  assembler_->EndBurst();
  in_try_send_ = false;
}

void Connection::OnPacketTransmitted() {
  if (connection_idle_timer_) {
    connection_idle_timer_->SetIn(config_.idle_timeout);
  }
}

// ---------------------------------------------------------------------------
// Loss recovery (timers and requeue live in quic/recovery.h; these are
// the composer-side effects it triggers through RecoveryDelegate)

void Connection::OnStreamFrameLost(StreamId stream, ByteCount offset,
                                   ByteCount length, bool fin) {
  auto it = send_streams_.find(stream);
  if (it != send_streams_.end()) {
    it->second->OnFrameLost(offset, length, fin);
  }
}

void Connection::RequeueWindowUpdate(const WindowUpdateFrame& frame) {
  // Values are monotonic; resending the same limit is safe and
  // refreshing it is better.
  WindowUpdateFrame fresh = frame;
  if (frame.stream_id == 0) {
    fresh.max_data = std::max(fresh.max_data, flow_.local_max_data());
  }
  EnqueueWindowUpdates(fresh);
}

void Connection::RequeuePathsSnapshot() {
  EnqueueControl(BuildPathsFrame());  // fresh snapshot
}

void Connection::RequeueControlFrame(Frame frame) {
  EnqueueControl(std::move(frame));
}

bool Connection::OnPathPotentiallyFailed(PathId path) {
  MPQ_DEBUG(sim_.now(), "quic", "cid=%llu path %u potentially failed",
            static_cast<unsigned long long>(cid_), path.value());
  if (tracer_ != nullptr) {
    tracer_->OnPathStateChange(sim_.now(), path, "potentially-failed");
  }
  if (config_.send_paths_frame && config_.multipath) {
    // §4.3: tell the peer immediately so it does not wait for its own RTO
    // before answering on another path.
    EnqueueControl(BuildPathsFrame());
  }
  if (!config_.multipath && config_.migrate_on_path_failure &&
      perspective_ == Perspective::kClient) {
    TryAutoMigrate(*paths_.at(path));
    return false;  // migrating — probing the dead address pair is pointless
  }
  return true;  // recovery probes the path until it recovers
}

void Connection::OnPathRecovered(PathId path) {
  (void)path;
  if (config_.send_paths_frame && config_.multipath) {
    EnqueueControl(BuildPathsFrame());  // path recovered: tell the peer
  }
}

void Connection::SendProbePing(PathId path) {
  assembler_->SendPing(*paths_.at(path), /*track=*/true);
}

void Connection::RunAudit() { MPQ_AUDIT_CHECK(*this); }

void Connection::TryAutoMigrate(Path& path) {
  // Hard handover: hop to the next local/peer address pair (round robin
  // over the client's interfaces).
  if (local_addresses_.size() < 2) return;
  ++migrations_;
  const sim::Address local = local_addresses_[static_cast<std::size_t>(
      migrations_) % local_addresses_.size()];
  const sim::Address* remote = nullptr;
  for (const auto& addr : peer_addresses_) {
    if (addr.iface == local.iface) {
      remote = &addr;
      break;
    }
  }
  if (remote == nullptr) return;
  MigratePath(path.id(), local, *remote);
}

void Connection::MigratePath(PathId id, sim::Address new_local,
                             sim::Address new_remote) {
  auto it = paths_.find(id);
  if (it == paths_.end() || closed_) return;
  Path& path = *it->second;
  MPQ_DEBUG(sim_.now(), "quic", "cid=%llu migrating path %u",
            static_cast<unsigned long long>(cid_), id.value());
  if (tracer_ != nullptr) {
    tracer_->OnPathStateChange(sim_.now(), id, "migrated");
  }
  recovery_->RequeueLostFrames(
      id, path.Migrate(new_local, new_remote, MakeController(), sim_.now()));
  recovery_->OnPathMigrated(id);
  assembler_->ResetPathPacing(id);
  // Probe the new address pair immediately (the PATH_CHALLENGE analogue):
  // it announces the migration to the peer even when we have no data to
  // send, and its ACK seeds the new path's RTT estimate.
  assembler_->SendPing(path, /*track=*/true);
  TrySend();
}

}  // namespace mpq::quic
