#include "quic/connection.h"

#include <algorithm>
#include <cassert>

#include "cc/cubic.h"
#include "cc/newreno.h"
#include "common/clock.h"
#include "common/log.h"
#include "quic/audit.h"

namespace mpq::quic {

namespace {

/// CHLOs are padded to a minimum size, as in QUIC, so the handshake cannot
/// be used for traffic amplification.
constexpr std::size_t kMinChloSize = 1200;

/// Delayed-ACK timeout (quic-go used 25 ms).
constexpr Duration kDelayedAckTimeout = 25 * kMillisecond;

/// Send an immediate ACK after this many unacked retransmittable packets.
constexpr int kAckAfterPackets = 2;

/// Reserve for STREAM frame header when filling a packet.
constexpr std::size_t kStreamFrameOverhead = 16;

/// The server's handshake nonce is a deterministic function of the
/// client nonce, the CID and the shared server config — that is what
/// makes CHLO retransmission idempotent AND what lets a 0-RTT client
/// compute the session keys without waiting for the SHLO.
std::vector<std::uint8_t> DeriveServerNonce(
    const std::vector<std::uint8_t>& client_nonce, ConnectionId cid,
    const std::array<std::uint8_t, 16>& server_config_secret) {
  std::vector<std::uint8_t> seed(client_nonce);
  for (int i = 0; i < 8; ++i) {
    seed.push_back(static_cast<std::uint8_t>(cid >> (8 * i)));
  }
  seed.insert(seed.end(), server_config_secret.begin(),
              server_config_secret.end());
  const auto derived = crypto::Kdf32(seed, "server nonce");
  return {derived.begin(), derived.begin() + 16};
}

}  // namespace

Connection::Connection(sim::Simulator& sim, Perspective perspective,
                       ConnectionId cid, ConnectionConfig config, Rng rng,
                       SendFunction send)
    : sim_(sim),
      perspective_(perspective),
      cid_(cid),
      config_(config),
      rng_(rng),
      send_(std::move(send)),
      scheduler_(MakeScheduler(config.scheduler)),
      flow_(config.receive_window) {
  if (config_.congestion == CongestionAlgo::kOlia) {
    olia_ = std::make_unique<cc::OliaCoordinator>(config_.max_packet_size);
  } else if (config_.congestion == CongestionAlgo::kLia) {
    lia_ = std::make_unique<cc::LiaCoordinator>(config_.max_packet_size);
  }
  pace_timer_ = std::make_unique<sim::Timer>(sim_, [this] { TrySend(); });
  if (config_.idle_timeout > 0) {
    connection_idle_timer_ = std::make_unique<sim::Timer>(sim_, [this] {
      MPQ_DEBUG(sim_.now(), "quic", "cid=%llu idle timeout",
                static_cast<unsigned long long>(cid_));
      Close(0, "idle timeout");
    });
    connection_idle_timer_->SetIn(config_.idle_timeout);
  }
  if (config_.migrate_on_path_failure &&
      perspective_ == Perspective::kClient) {
    idle_timer_ =
        std::make_unique<sim::Timer>(sim_, [this] { OnIdleFailureTimer(); });
  }
}

bool Connection::ExpectingData() const {
  for (const auto& [id, stream] : recv_streams_) {
    if (!stream->finished()) return true;
  }
  for (const auto& [id, stream] : send_streams_) {
    if (!stream->AllDataSentOnce()) return true;
  }
  return false;
}

void Connection::OnIdleFailureTimer() {
  if (closed_ || !established_) return;
  AuditScope audit(*this);
  if (ExpectingData() && !paths_.empty()) {
    PathRuntime& runtime = *paths_.begin()->second;
    if (tracer_ != nullptr && !runtime.path->potentially_failed()) {
      tracer_->OnPathStateChange(sim_.now(), runtime.path->id(),
                                 "potentially-failed");
    }
    runtime.path->set_potentially_failed(true);
    TryAutoMigrate(runtime);
  }
  idle_timer_->SetIn(config_.idle_failure_timeout);
}

Connection::~Connection() = default;

void Connection::SetLocalAddresses(std::vector<sim::Address> addresses) {
  local_addresses_ = std::move(addresses);
}

std::vector<const Path*> Connection::paths() const {
  std::vector<const Path*> out;
  out.reserve(paths_.size());
  for (const auto& [id, runtime] : paths_) out.push_back(runtime->path.get());
  return out;
}

Path* Connection::GetPath(PathId id) {
  auto it = paths_.find(id);
  return it == paths_.end() ? nullptr : it->second->path.get();
}

std::vector<Path*> Connection::PathPointers() {
  std::vector<Path*> out;
  out.reserve(paths_.size());
  for (auto& [id, runtime] : paths_) out.push_back(runtime->path.get());
  return out;
}

std::unique_ptr<cc::CongestionController> Connection::MakeController() {
  switch (config_.congestion) {
    case CongestionAlgo::kOlia:
      return olia_->CreateController();
    case CongestionAlgo::kLia:
      return lia_->CreateController();
    case CongestionAlgo::kNewReno:
      return std::make_unique<cc::NewReno>(config_.max_packet_size);
    case CongestionAlgo::kCubic:
      break;
  }
  return std::make_unique<cc::Cubic>(config_.max_packet_size);
}

Connection::PathRuntime& Connection::CreatePath(PathId id, sim::Address local,
                                                sim::Address remote) {
  auto runtime = std::make_unique<PathRuntime>();
  runtime->path = std::make_unique<Path>(id, local, remote, MakeController());
  PathRuntime* raw = runtime.get();
  runtime->retx_timer =
      std::make_unique<sim::Timer>(sim_, [this, raw] { OnRetxTimer(*raw); });
  runtime->ack_timer = std::make_unique<sim::Timer>(sim_, [this, raw] {
    if (raw->path->ack_pending()) SendAckOnlyPacket(*raw);
  });
  runtime->probe_timer =
      std::make_unique<sim::Timer>(sim_, [this, raw] { OnProbeTimer(*raw); });
  auto [it, inserted] = paths_.emplace(id, std::move(runtime));
  assert(inserted);
  MPQ_DEBUG(sim_.now(), "quic", "cid=%llu new path %u",
            static_cast<unsigned long long>(cid_), id.value());
  if (tracer_ != nullptr) {
    tracer_->OnPathStateChange(sim_.now(), id, "created");
  }
  return *it->second;
}

// ---------------------------------------------------------------------------
// Handshake

void Connection::Connect(sim::Address server_address) {
  assert(perspective_ == Perspective::kClient);
  assert(!local_addresses_.empty());
  server_address_ = server_address;
  CreatePath(PathId{0}, local_addresses_[0], server_address);
  client_nonce_.resize(16);
  for (auto& b : client_nonce_) {
    b = static_cast<std::uint8_t>(rng_.NextU64());
  }
  handshake_timer_ = std::make_unique<sim::Timer>(sim_, [this] {
    if (!shlo_received_) SendChlo();
  });
  if (config_.zero_rtt) {
    // Derive everything locally from the cached server config; the CHLO
    // below tells the server which client nonce to use, and encrypted
    // data may follow it in the very same sending burst.
    server_nonce_ =
        DeriveServerNonce(client_nonce_, cid_, config_.server_config_secret);
    const auto keys = crypto::DeriveSessionKeys(
        client_nonce_, server_nonce_, config_.server_config_secret);
    seal_ = std::make_unique<crypto::PacketProtection>(keys.client_to_server);
    open_ = std::make_unique<crypto::PacketProtection>(keys.server_to_client);
    SendChlo();
    OpenClientPaths();
    BecomeEstablished();
    TrySend();
    return;
  }
  SendChlo();
}

void Connection::SendChlo() {
  ++handshake_attempts_;
  if (handshake_attempts_ > 10) {
    MPQ_WARN(sim_.now(), "quic", "cid=%llu handshake giving up",
             static_cast<unsigned long long>(cid_));
    closed_ = true;
    return;
  }
  HandshakeFrame chlo;
  chlo.message = HandshakeMessageType::kChlo;
  chlo.version = config_.supported_versions.empty()
                     ? kVersionMpq1
                     : config_.supported_versions.front();
  chlo.nonce = client_nonce_;
  std::vector<Frame> frames;
  frames.emplace_back(std::move(chlo));
  // Pad to the anti-amplification minimum.
  const std::size_t body = FrameWireSize(frames.front());
  if (body < kMinChloSize) {
    frames.emplace_back(
        PaddingFrame{static_cast<std::uint32_t>(kMinChloSize - body)});
  }
  chlo_sent_time_ = sim_.now();
  if (tracer_ != nullptr) tracer_->OnHandshakeEvent(sim_.now(), "chlo-sent");
  TransmitPacket(*paths_.at(PathId{0}), frames, /*retransmittable=*/false,
                 /*handshake_cleartext=*/true);
  const Duration timeout = config_.handshake_timeout
                           << (handshake_attempts_ - 1);
  handshake_timer_->SetIn(timeout);
}

void Connection::OnHandshakePacket(const ParsedHeader& header,
                                   BufReader& reader,
                                   const sim::Datagram& datagram) {
  std::span<const std::uint8_t> payload;
  if (!reader.ReadSpan(reader.remaining(), payload)) return;
  std::vector<Frame> frames;
  if (!DecodePayload(payload, frames)) return;
  // Record the PN so packet-number decoding stays coherent across the
  // handshake/1-RTT boundary (one PN space per path).
  if (auto it = paths_.find(header.header.path_id); it != paths_.end()) {
    const PacketNumber full = DecodePacketNumber(
        it->second->path->receiver().largest_received(),
        header.header.packet_number, header.pn_length);
    it->second->path->receiver().OnPacketReceived(full, sim_.now());
  }
  for (const Frame& frame : frames) {
    const auto* handshake = std::get_if<HandshakeFrame>(&frame);
    if (handshake == nullptr) continue;
    if (handshake->message == HandshakeMessageType::kChlo &&
        perspective_ == Perspective::kServer) {
      HandleChlo(*handshake, datagram);
    } else if (handshake->message == HandshakeMessageType::kShlo &&
               perspective_ == Perspective::kClient) {
      HandleShlo(*handshake);
    }
  }
}

void Connection::HandleChlo(const HandshakeFrame& chlo,
                            const sim::Datagram& datagram) {
  // Version negotiation (§2): a CHLO carrying a version we do not speak
  // is ignored; the client's handshake retries exhaust and it closes —
  // the clean failure mode for incompatible endpoints.
  if (std::find(config_.supported_versions.begin(),
                config_.supported_versions.end(),
                chlo.version) == config_.supported_versions.end()) {
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->OnHandshakeEvent(sim_.now(), "chlo-received");
  }
  if (!established_) {
    client_nonce_ = chlo.nonce;
    server_nonce_ =
        DeriveServerNonce(client_nonce_, cid_, config_.server_config_secret);
    const auto keys = crypto::DeriveSessionKeys(client_nonce_, server_nonce_,
                                                config_.server_config_secret);
    seal_ = std::make_unique<crypto::PacketProtection>(keys.server_to_client);
    open_ = std::make_unique<crypto::PacketProtection>(keys.client_to_server);
    CreatePath(PathId{0}, datagram.dst, datagram.src);
    BecomeEstablished();
  }
  // Always answer (possibly retransmitted) CHLOs with an SHLO.
  HandshakeFrame shlo;
  shlo.message = HandshakeMessageType::kShlo;
  shlo.version = kVersionMpq1;
  shlo.nonce = server_nonce_;
  shlo.peer_addresses = local_addresses_;
  std::vector<Frame> frames;
  frames.emplace_back(std::move(shlo));
  if (tracer_ != nullptr) tracer_->OnHandshakeEvent(sim_.now(), "shlo-sent");
  TransmitPacket(*paths_.at(PathId{0}), frames, /*retransmittable=*/false,
                 /*handshake_cleartext=*/true);
}

void Connection::HandleShlo(const HandshakeFrame& shlo) {
  shlo_received_ = true;
  if (tracer_ != nullptr) {
    tracer_->OnHandshakeEvent(sim_.now(), "shlo-received");
  }
  if (handshake_timer_) handshake_timer_->Cancel();
  if (established_) {
    // 0-RTT: the SHLO only confirms; note the peer's addresses (the
    // 0-RTT path-opening used none) and sample the handshake RTT.
    if (peer_addresses_.empty()) {
      peer_addresses_ = shlo.peer_addresses;
      OpenClientPaths();
    }
    if (chlo_sent_time_ >= 0 && !paths_.at(PathId{0})->path->rtt().has_sample()) {
      paths_.at(PathId{0})->path->rtt().AddSample(sim_.now() - chlo_sent_time_, 0);
    }
    return;
  }
  server_nonce_ = shlo.nonce;
  peer_addresses_ = shlo.peer_addresses;
  const auto keys = crypto::DeriveSessionKeys(client_nonce_, server_nonce_,
                                              config_.server_config_secret);
  seal_ = std::make_unique<crypto::PacketProtection>(keys.client_to_server);
  open_ = std::make_unique<crypto::PacketProtection>(keys.server_to_client);
  if (handshake_timer_) handshake_timer_->Cancel();
  // The CHLO/SHLO exchange gives the initial path its first RTT sample —
  // one of the reasons MPQUIC starts with usable latency estimates.
  if (chlo_sent_time_ >= 0) {
    paths_.at(PathId{0})->path->rtt().AddSample(sim_.now() - chlo_sent_time_, 0);
  }
  OpenClientPaths();
  BecomeEstablished();
  TrySend();
}

void Connection::BecomeEstablished() {
  established_ = true;
  MPQ_DEBUG(sim_.now(), "quic", "cid=%llu established (%s)",
            static_cast<unsigned long long>(cid_),
            perspective_ == Perspective::kClient ? "client" : "server");
  if (tracer_ != nullptr) {
    tracer_->OnHandshakeEvent(sim_.now(), "established");
  }
  // §3 "Path Management": advertise our other addresses so the peer can
  // open paths toward them (the server already put its own in the SHLO).
  if (config_.multipath && config_.advertise_addresses &&
      perspective_ == Perspective::kClient && local_addresses_.size() > 1) {
    EnqueueControl(AddAddressFrame{local_addresses_});
  }
  if (on_established_) on_established_();
}

void Connection::MaybeOpenServerPaths() {
  if (!config_.multipath || !config_.allow_server_paths ||
      perspective_ != Perspective::kServer || !established_) {
    return;
  }
  PathId next_even{2};
  for (const auto& [id, rt] : paths_) {
    if (id % 2 == 0 && id >= next_even) {
      next_even = static_cast<PathId>(id + 2);
    }
  }
  for (const auto& remote : peer_addresses_) {
    bool used = false;
    for (const auto& [id, rt] : paths_) {
      if (rt->path->remote_address() == remote) used = true;
    }
    if (used) continue;
    const sim::Address* local = nullptr;
    for (const auto& addr : local_addresses_) {
      if (addr.iface == remote.iface) {
        local = &addr;
        break;
      }
    }
    if (local == nullptr) continue;
    CreatePath(next_even, *local, remote);
    next_even = static_cast<PathId>(next_even + 2);
  }
  TrySend();
}

void Connection::RemoveLocalAddress(sim::Address address) {
  if (closed_) return;
  std::erase(local_addresses_, address);
  for (auto& [id, rt] : paths_) {
    if (rt->path->local_address() == address) {
      if (tracer_ != nullptr && !rt->path->potentially_failed()) {
        tracer_->OnPathStateChange(sim_.now(), id, "potentially-failed");
      }
      rt->path->set_potentially_failed(true);
      RequeueLostFrames(id, rt->path->OnRetransmissionTimeout(sim_.now()));
    }
  }
  EnqueueControl(RemoveAddressFrame{{address}});
  TrySend();
}

void Connection::OpenClientPaths() {
  if (!config_.multipath || perspective_ != Perspective::kClient ||
      !config_.client_opens_paths) {
    return;
  }
  // §3 "Path Management": upon handshake completion, open one path over
  // each (additional) client interface. Client-created paths get odd ids.
  // Idempotent: with 0-RTT this runs again once the SHLO delivers the
  // peer's addresses.
  PathId next_id{1};
  while (paths_.contains(next_id)) next_id = static_cast<PathId>(next_id + 2);
  for (std::size_t i = 1; i < local_addresses_.size(); ++i) {
    // Pair the i-th local interface with the peer address advertised for
    // the same interface index, if any.
    const sim::Address local = local_addresses_[i];
    const sim::Address* remote = nullptr;
    for (const auto& addr : peer_addresses_) {
      if (addr.iface == local.iface) {
        remote = &addr;
        break;
      }
    }
    if (remote == nullptr) continue;
    bool already = false;
    for (const auto& [id, runtime] : paths_) {
      if (runtime->path->remote_address() == *remote) already = true;
    }
    if (already) continue;
    PathRuntime& runtime = CreatePath(next_id, local, *remote);
    next_id = static_cast<PathId>(next_id + 2);
    // Announce the new path right away (path-validation PING): the server
    // only learns of a path from a packet carrying its id, and a pure
    // downloader might otherwise never send one. The PING's ACK also
    // seeds the path's RTT estimate.
    if (established_) SendPing(runtime, /*track=*/true);
  }
}

// ---------------------------------------------------------------------------
// Application API

void Connection::SendOnStream(StreamId id,
                              std::unique_ptr<SendSource> source) {
  assert(id != 0);  // stream id 0 addresses the connection in WINDOW_UPDATE
  auto [it, inserted] = send_streams_.try_emplace(
      id, std::make_unique<SendStream>(id, std::move(source)));
  assert(inserted && "stream already exists");
  (void)it;
  if (established_) TrySend();
}

void Connection::ResetStream(StreamId id, std::uint16_t error_code) {
  auto it = send_streams_.find(id);
  if (it == send_streams_.end() || closed_) return;
  RstStreamFrame frame;
  frame.stream_id = id;
  frame.error_code = error_code;
  frame.final_offset = it->second->max_offset_sent();
  // Drop the stream: no more (re)transmissions of its data. STREAM frames
  // of this id from lost packets are silently discarded from now on.
  send_streams_.erase(it);
  EnqueueControl(frame);
  TrySend();
}

void Connection::Close(std::uint16_t error_code, const std::string& reason) {
  if (closed_) return;
  if (established_ && !paths_.empty()) {
    ConnectionCloseFrame frame;
    frame.error_code = error_code;
    frame.reason = reason;
    // Best effort on the initial path.
    std::vector<Frame> frames;
    frames.emplace_back(std::move(frame));
    TransmitPacket(*paths_.begin()->second, frames,
                   /*retransmittable=*/false, /*handshake_cleartext=*/false);
  }
  closed_ = true;
  for (auto& [id, runtime] : paths_) {
    runtime->retx_timer->Cancel();
    runtime->ack_timer->Cancel();
    runtime->probe_timer->Cancel();
  }
  if (handshake_timer_) handshake_timer_->Cancel();
  if (pace_timer_) pace_timer_->Cancel();
  if (idle_timer_) idle_timer_->Cancel();
  if (connection_idle_timer_) connection_idle_timer_->Cancel();
}

// ---------------------------------------------------------------------------
// Receive

void Connection::OnDatagram(const sim::Datagram& datagram) {
  if (closed_) return;
  AuditScope audit(*this);
  BufReader reader(datagram.payload);
  ParsedHeader parsed;
  if (!DecodeHeader(reader, parsed)) return;
  if (parsed.header.cid != cid_) return;
  ++stats_.packets_received;
  if (idle_timer_) idle_timer_->SetIn(config_.idle_failure_timeout);
  if (connection_idle_timer_) {
    connection_idle_timer_->SetIn(config_.idle_timeout);
  }
  if (parsed.header.handshake) {
    OnHandshakePacket(parsed, reader, datagram);
    TrySend();
    return;
  }
  OnEncryptedPacket(parsed, reader, datagram.payload, datagram);
  TrySend();
}

void Connection::OnEncryptedPacket(const ParsedHeader& parsed,
                                   BufReader& reader,
                                   std::span<const std::uint8_t> datagram_bytes,
                                   const sim::Datagram& datagram) {
  if (!open_) return;  // keys not established yet
  const PathId pid = parsed.header.multipath ? parsed.header.path_id : PathId{0};
  auto it = paths_.find(pid);
  if (it == paths_.end()) {
    // First packet of a peer-created path (§3: data can ride in the very
    // first packet of a new path — no handshake required).
    CreatePath(pid, datagram.dst, datagram.src);
    it = paths_.find(pid);
  }
  PathRuntime& runtime = *it->second;
  Path& path = *runtime.path;

  const PacketNumber pn =
      DecodePacketNumber(path.receiver().largest_received(),
                         parsed.header.packet_number, parsed.pn_length);
  const std::span<const std::uint8_t> aad =
      datagram_bytes.subspan(0, parsed.header_size);
  std::span<const std::uint8_t> sealed;
  if (!reader.ReadSpan(reader.remaining(), sealed)) return;
  // Reused scratch: Open assigns into it, recycling the capacity.
  std::vector<std::uint8_t>& plaintext = recv_plaintext_scratch_;
  if (!open_->Open(pid, pn, aad, sealed, plaintext)) {
    ++stats_.packets_decrypt_failed;
    return;
  }
  const PacketNumber largest_before = path.receiver().largest_received();
  if (!path.receiver().OnPacketReceived(pn, sim_.now())) {
    ++stats_.packets_duplicate;
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->OnPacketReceived(sim_.now(), pid, pn,
                              ByteCount{datagram.payload.size()});
  }
  // NAT rebinding / peer migration: the packet authenticated under this
  // path's keys but arrived from a new address — follow it (§3), keeping
  // the path's state.
  if (!(datagram.src == path.remote_address())) {
    MPQ_DEBUG(sim_.now(), "quic", "cid=%llu path %u peer address changed",
              static_cast<unsigned long long>(cid_), pid.value());
    path.UpdateAddresses(datagram.dst, datagram.src);
  }
  std::vector<Frame>& frames = recv_frames_scratch_;
  if (!DecodePayload(plaintext, frames)) return;

  bool any_retransmittable = false;
  for (const Frame& frame : frames) {
    if (IsRetransmittable(frame)) any_retransmittable = true;
  }
  ProcessFrames(runtime, frames);
  if (closed_) return;
  if (any_retransmittable) {
    path.NoteRetransmittableReceived();
    const bool out_of_order = pn != largest_before + 1;
    MaybeScheduleAck(runtime, out_of_order);
  }
}

void Connection::ProcessFrames(PathRuntime& runtime,
                               std::vector<Frame>& frames) {
  if (tracer_ != nullptr) {
    for (const Frame& frame : frames) {
      tracer_->OnFrameReceived(sim_.now(), runtime.path->id(), frame);
    }
  }
  for (Frame& frame : frames) {
    if (closed_) return;
    std::visit(
        [&](auto& f) {
          using T = std::decay_t<decltype(f)>;
          if constexpr (std::is_same_v<T, AckFrame>) {
            OnAckFrame(f);
          } else if constexpr (std::is_same_v<T, StreamFrame>) {
            OnStreamFrameReceived(f);
          } else if constexpr (std::is_same_v<T, WindowUpdateFrame>) {
            OnWindowUpdate(f);
          } else if constexpr (std::is_same_v<T, PathsFrame>) {
            OnPathsFrame(f);
          } else if constexpr (std::is_same_v<T, AddAddressFrame>) {
            for (const auto& addr : f.addresses) {
              if (std::find(peer_addresses_.begin(), peer_addresses_.end(),
                            addr) == peer_addresses_.end()) {
                peer_addresses_.push_back(addr);
              }
            }
            MaybeOpenServerPaths();
          } else if constexpr (std::is_same_v<T, RemoveAddressFrame>) {
            for (const auto& addr : f.addresses) {
              std::erase(peer_addresses_, addr);
              for (auto& [id, rt] : paths_) {
                if (rt->path->remote_address() == addr) {
                  rt->path->set_remote_reported_failed(true);
                }
              }
            }
          } else if constexpr (std::is_same_v<T, RstStreamFrame>) {
            // Peer aborted its send stream: surface EOF-with-error to the
            // app (delivered prefix stays delivered, the rest never comes).
            auto rs = recv_streams_.find(f.stream_id);
            if (rs != recv_streams_.end() && !rs->second->finished()) {
              if (on_stream_data_) {
                on_stream_data_(f.stream_id, rs->second->delivered_offset(),
                                {}, true);
              }
            }
          } else if constexpr (std::is_same_v<T, ConnectionCloseFrame>) {
            MPQ_DEBUG(sim_.now(), "quic", "cid=%llu closed by peer: %s",
                      static_cast<unsigned long long>(cid_),
                      f.reason.c_str());
            Close(f.error_code, "peer close");
          }
          // PING, PADDING, BLOCKED, RST_STREAM, HANDSHAKE: nothing to do
          // here (PING only elicits the ACK machinery).
          (void)runtime;
        },
        frame);
  }
}

void Connection::OnAckFrame(const AckFrame& ack) {
  auto it = paths_.find(ack.path_id);
  if (it == paths_.end()) return;
  PathRuntime& runtime = *it->second;
  const bool was_failed = runtime.path->potentially_failed();
  Path::AckResult result = runtime.path->OnAckReceived(ack, sim_.now());
  if (tracer_ != nullptr) {
    for (const SentPacket& lost : result.lost) {
      tracer_->OnPacketLost(sim_.now(), ack.path_id, lost.pn);
    }
    tracer_->OnPathSample(sim_.now(), ack.path_id,
                          runtime.path->congestion().congestion_window(),
                          runtime.path->congestion().bytes_in_flight(),
                          runtime.path->rtt().smoothed());
  }
  for (const SentPacket& packet : result.newly_acked) {
    for (const Frame& frame : packet.frames) {
      if (std::holds_alternative<PingFrame>(frame)) {
        runtime.ping_probe_outstanding = false;
      }
    }
  }
  if (was_failed && !runtime.path->potentially_failed()) {
    if (tracer_ != nullptr) {
      tracer_->OnPathStateChange(sim_.now(), ack.path_id, "recovered");
    }
    runtime.probe_timer->Cancel();
    if (config_.send_paths_frame && config_.multipath) {
      EnqueueControl(BuildPathsFrame());  // path recovered: tell the peer
    }
  }
  RequeueLostFrames(ack.path_id, std::move(result.lost));
  RearmRetxTimer(runtime);
}

RecvStream& Connection::GetOrCreateRecvStream(StreamId id) {
  auto it = recv_streams_.find(id);
  if (it != recv_streams_.end()) return *it->second;
  auto stream = std::make_unique<RecvStream>(id);
  RecvStream* raw = stream.get();
  stream_advertised_.emplace(id, flow_.window());
  stream->SetSink([this, id, raw](ByteCount offset,
                                  std::span<const std::uint8_t> data,
                                  bool finished) {
    stats_.stream_bytes_received += data.size();
    if (!data.empty() && flow_.OnBytesConsumed(ByteCount{data.size()})) {
      EnqueueWindowUpdates(WindowUpdateFrame{StreamId{0}, flow_.NextAdvertisement()});
    }
    // Stream-level window replenishment, same half-window policy.
    auto adv = stream_advertised_.find(id);
    if (adv != stream_advertised_.end() &&
        raw->consumed_bytes() + flow_.window() >=
            adv->second + flow_.window() / 2) {
      adv->second = raw->consumed_bytes() + flow_.window();
      EnqueueWindowUpdates(WindowUpdateFrame{id, adv->second});
    }
    if (on_stream_data_) on_stream_data_(id, offset, data, finished);
  });
  auto [inserted_it, ok] = recv_streams_.emplace(id, std::move(stream));
  assert(ok);
  return *inserted_it->second;
}

void Connection::OnStreamFrameReceived(StreamFrame& frame) {
  RecvStream& stream = GetOrCreateRecvStream(frame.stream_id);
  const ByteCount growth = stream.OnStreamFrame(std::move(frame));
  total_highest_received_ += growth;
  if (!flow_.WithinReceiveLimit(total_highest_received_)) {
    // Peer overran our advertised window: protocol violation.
    MPQ_WARN(sim_.now(), "quic", "cid=%llu flow control violated",
             static_cast<unsigned long long>(cid_));
  }
}

void Connection::OnWindowUpdate(const WindowUpdateFrame& frame) {
  if (frame.stream_id == 0) {
    flow_.OnMaxData(frame.max_data);
  } else if (auto it = send_streams_.find(frame.stream_id);
             it != send_streams_.end()) {
    it->second->OnMaxStreamData(frame.max_data);
  }
}

void Connection::OnPathsFrame(const PathsFrame& frame) {
  for (const auto& entry : frame.paths) {
    auto it = paths_.find(entry.path_id);
    if (it == paths_.end()) continue;
    it->second->path->set_remote_reported_failed(
        entry.status == PathStatus::kPotentiallyFailed);
  }
}

// ---------------------------------------------------------------------------
// Send

PathsFrame Connection::BuildPathsFrame() const {
  PathsFrame frame;
  for (const auto& [id, runtime] : paths_) {
    PathsFrame::Entry entry;
    entry.path_id = id;
    entry.status = runtime->path->potentially_failed()
                       ? PathStatus::kPotentiallyFailed
                       : PathStatus::kActive;
    entry.srtt = runtime->path->rtt().smoothed();
    frame.paths.push_back(entry);
  }
  return frame;
}

void Connection::EnqueueControl(Frame frame) {
  control_queue_.push_back(std::move(frame));
}

void Connection::EnqueueWindowUpdates(const WindowUpdateFrame& frame) {
  if (config_.multipath && config_.window_update_on_all_paths) {
    // §3: WINDOW_UPDATE goes out on ALL paths so a receive-buffer
    // deadlock cannot arise from one path losing the update.
    for (auto& [id, runtime] : paths_) {
      runtime->pinned_frames.emplace_back(frame);
    }
  } else {
    EnqueueControl(frame);
  }
}

AckFrame Connection::BuildAck(PathRuntime& runtime) {
  AckFrame ack;
  ack.path_id = runtime.path->id();
  ack.ranges = runtime.path->receiver().BuildAckRanges();
  ack.ack_delay =
      sim_.now() - runtime.path->receiver().largest_received_time();
  runtime.path->ClearAckPending();
  runtime.ack_timer->Cancel();
  return ack;
}

void Connection::MaybeScheduleAck(PathRuntime& runtime, bool out_of_order) {
  if (out_of_order ||
      runtime.path->unacked_retransmittable_count() >= kAckAfterPackets) {
    SendAckOnlyPacket(runtime);
    return;
  }
  if (!runtime.ack_timer->armed()) {
    runtime.ack_timer->SetIn(kDelayedAckTimeout);
  }
}

void Connection::SendAckOnlyPacket(PathRuntime& runtime) {
  if (!established_ || closed_) return;
  if (!runtime.path->receiver().AnythingToAck()) return;
  std::vector<Frame> frames;
  frames.emplace_back(BuildAck(runtime));
  TransmitPacket(runtime, frames, /*retransmittable=*/false,
                 /*handshake_cleartext=*/false);
}

void Connection::SendPing(PathRuntime& runtime, bool track) {
  std::vector<Frame> frames;
  frames.emplace_back(PingFrame{});
  TransmitPacket(runtime, frames, /*retransmittable=*/track,
                 /*handshake_cleartext=*/false);
}

bool Connection::AnyStreamHasData() {
  const ByteCount allowance = ConnectionSendAllowance();
  for (auto& [id, stream] : send_streams_) {
    if (stream->HasDataToSend(allowance)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Pacing

namespace {
constexpr double kPaceBurstPackets = 10.0;
}

double Connection::PacingRate(const PathRuntime& runtime) const {
  const Path& path = *runtime.path;
  if (!path.rtt().has_sample()) return 0.0;  // unlimited until measured
  const double factor = path.congestion().InSlowStart() ? 2.0 : 1.25;
  return factor *
         static_cast<double>(path.congestion().congestion_window()) /
         static_cast<double>(path.rtt().smoothed());
}

void Connection::RefillPaceTokens(PathRuntime& runtime) {
  const double burst =
      kPaceBurstPackets * static_cast<double>(config_.max_packet_size);
  const double rate = PacingRate(runtime);
  const TimePoint now = sim_.now();
  if (rate <= 0.0) {
    runtime.pace_tokens = burst;
  } else {
    runtime.pace_tokens =
        std::min(burst, runtime.pace_tokens +
                            rate * static_cast<double>(
                                       now - runtime.pace_refill_time));
  }
  runtime.pace_refill_time = now;
}

bool Connection::PacingAllows(PathRuntime& runtime, ByteCount bytes) {
  if (!config_.pacing) return true;
  RefillPaceTokens(runtime);
  return runtime.pace_tokens >= static_cast<double>(bytes);
}

void Connection::ConsumePaceTokens(PathRuntime& runtime, ByteCount bytes) {
  if (!config_.pacing) return;
  runtime.pace_tokens -= static_cast<double>(bytes);
}

void Connection::ArmPaceTimer() {
  // Earliest time any usable, window-open path accumulates one packet's
  // worth of tokens.
  Duration earliest = kTimeInfinite;
  for (auto& [id, runtime] : paths_) {
    if (!runtime->path->Usable() ||
        !runtime->path->congestion().CanSend(config_.max_packet_size)) {
      continue;
    }
    const double rate = PacingRate(*runtime);
    if (rate <= 0.0) continue;
    const double deficit =
        static_cast<double>(config_.max_packet_size) - runtime->pace_tokens;
    if (deficit <= 0.0) continue;
    earliest = std::min(earliest, static_cast<Duration>(deficit / rate) + 1);
  }
  if (earliest != kTimeInfinite && !pace_timer_->armed()) {
    pace_timer_->SetIn(earliest);
  }
}

void Connection::TrySend() {
  if (!established_ || closed_ || in_try_send_) return;
  AuditScope audit(*this);
  in_try_send_ = true;

  // Scheduler-requested probes (ping-first ablation).
  for (auto& [id, runtime] : paths_) {
    if (scheduler_->WantsProbe(*runtime->path) &&
        !runtime->ping_probe_outstanding && runtime->path->Usable()) {
      runtime->ping_probe_outstanding = true;
      SendPing(*runtime, /*track=*/true);
    }
  }

  // Drain path-pinned control frames (per-path WINDOW_UPDATE copies).
  // These bypass the congestion window check: they are tiny and withhold-
  // ing them can deadlock the transfer — the exact failure mode §3's
  // "WINDOW_UPDATE on all paths" rule exists to avoid.
  for (auto& [id, runtime] : paths_) {
    while (!runtime->pinned_frames.empty()) {
      if (!SendOnePacket(*runtime, /*include_stream_data=*/false, nullptr,
                         nullptr)) {
        break;
      }
    }
  }

  // Flow-control diagnostics: report BLOCKED (once per episode) when
  // data is waiting but the connection-level window is exhausted.
  if (established_ && ConnectionSendAllowance() == 0) {
    bool data_waiting = false;
    for (auto& [id, stream] : send_streams_) {
      if (!stream->AllDataSentOnce()) data_waiting = true;
    }
    if (data_waiting && !blocked_reported_) {
      blocked_reported_ = true;
      if (tracer_ != nullptr) tracer_->OnFlowControlBlocked(sim_.now(), StreamId{0});
      EnqueueControl(BlockedFrame{StreamId{0}});
    }
  } else {
    blocked_reported_ = false;
  }

  // Main data loop: one packet per iteration, path chosen by the
  // scheduler among paths the pacer currently allows, duplicates onto
  // unknown-RTT paths (§3).
  for (int guard = 0; guard < 100000; ++guard) {
    const bool have_control = !control_queue_.empty();
    if (!have_control && !AnyStreamHasData()) break;
    std::vector<Path*> eligible;
    bool pacing_blocked = false;
    bool usable_exists = false;
    for (auto& [id, runtime] : paths_) {
      if (runtime->path->Usable()) usable_exists = true;
      if (PacingAllows(*runtime, config_.max_packet_size)) {
        eligible.push_back(runtime->path.get());
      } else if (runtime->path->Usable() &&
                 runtime->path->congestion().CanSend(
                     config_.max_packet_size)) {
        pacing_blocked = true;
      }
    }
    // A potentially-failed path is a last resort: the scheduler's
    // failed-path fallback must only engage when NO path is usable.
    // Offering a failed path while a live one is merely pacing- or
    // cwnd-limited strands fresh data on a black-holed link, where only
    // an RTO can recover it. Wait for the live path instead.
    if (usable_exists) {
      std::erase_if(eligible, [](Path* p) { return !p->Usable(); });
    }
    Path* chosen;
    if (tracer_ != nullptr) {
      // Measured decision: the wall-clock cost of the scheduler itself is
      // one of the hot-path numbers the metrics registry tracks. Only the
      // traced configuration pays for the clock reads.
      const std::uint64_t before = MonotonicNanos();
      chosen = scheduler_->SelectPath(eligible, config_.max_packet_size);
      const std::uint64_t elapsed = MonotonicNanos() - before;
      if (chosen != nullptr) {
        tracer_->OnSchedulerDecision(sim_.now(), chosen->id(),
                                     scheduler_->last_reason(), elapsed);
      }
    } else {
      chosen = scheduler_->SelectPath(eligible, config_.max_packet_size);
    }
    if (chosen == nullptr) {
      if (pacing_blocked) ArmPaceTimer();
      break;
    }
    PathRuntime& runtime = *paths_.at(chosen->id());
    std::vector<StreamFrame> sent_stream_frames;
    if (!SendOnePacket(runtime, /*include_stream_data=*/true, nullptr,
                       &sent_stream_frames)) {
      break;
    }
    if (!sent_stream_frames.empty()) {
      for (Path* target : scheduler_->DuplicationTargets(
               eligible, chosen, config_.max_packet_size)) {
        PathRuntime& dup = *paths_.at(target->id());
        ++stats_.duplicated_scheduler_packets;
        if (tracer_ != nullptr) {
          tracer_->OnSchedulerDecision(sim_.now(), target->id(), "duplicate",
                                       0);
        }
        SendOnePacket(dup, /*include_stream_data=*/false,
                      &sent_stream_frames, nullptr);
      }
    }
  }
  in_try_send_ = false;
}

bool Connection::SendOnePacket(PathRuntime& runtime, bool include_stream_data,
                               const std::vector<StreamFrame>* duplicate_of,
                               std::vector<StreamFrame>* sent_stream_frames) {
  Path& path = *runtime.path;
  const std::size_t header_size =
      1 + 8 + (config_.multipath ? 1 : 0) +
      PacketNumberLength(path.largest_sent() + 1, path.largest_acked());
  if (config_.max_packet_size < header_size + crypto::kAeadTagSize + 8) {
    return false;
  }
  std::size_t budget =
      config_.max_packet_size.value() - header_size - crypto::kAeadTagSize;

  // Recycled per-packet scratch: the vector's capacity survives across
  // packets (TransmitPacket moves the frames out but leaves the vector).
  std::vector<Frame>& frames = send_frames_scratch_;
  frames.clear();
  ByteCount new_bytes{};

  // 1. Piggyback a pending ACK for this path.
  if (path.ack_pending() && path.receiver().AnythingToAck()) {
    AckFrame ack = BuildAck(runtime);
    const std::size_t size = FrameWireSize(Frame{ack});
    if (size <= budget) {
      budget -= size;
      frames.emplace_back(std::move(ack));
    }
  }

  // 2. Frames pinned to this path.
  while (!runtime.pinned_frames.empty()) {
    const std::size_t size = FrameWireSize(runtime.pinned_frames.front());
    if (size > budget) break;
    budget -= size;
    frames.push_back(std::move(runtime.pinned_frames.front()));
    runtime.pinned_frames.erase(runtime.pinned_frames.begin());
  }

  // 3. Shared control queue (PATHS, ADD_ADDRESS, requeued control).
  while (!control_queue_.empty()) {
    const std::size_t size = FrameWireSize(control_queue_.front());
    if (size > budget) break;
    budget -= size;
    frames.push_back(std::move(control_queue_.front()));
    control_queue_.erase(control_queue_.begin());
  }

  // 4. Stream data: either duplicates of frames just sent on another
  //    path, or fresh data pulled from the send streams.
  if (duplicate_of != nullptr) {
    for (const StreamFrame& frame : *duplicate_of) {
      const std::size_t size = FrameWireSize(Frame{frame});
      if (size > budget) break;
      budget -= size;
      frames.emplace_back(frame);
    }
  } else if (include_stream_data && !send_streams_.empty()) {
    // Round-robin over the streams, one chunk per stream per pass, so
    // concurrent objects progress together instead of serially.
    auto it = send_streams_.upper_bound(next_stream_to_serve_);
    if (it == send_streams_.end()) it = send_streams_.begin();
    const StreamId first_served = it->first;
    bool any_progress = true;
    while (budget > kStreamFrameOverhead && any_progress) {
      any_progress = false;
      for (std::size_t i = 0; i < send_streams_.size(); ++i) {
        if (budget <= kStreamFrameOverhead) break;
        SendStream& stream = *it->second;
        const StreamId sid = it->first;
        ++it;
        if (it == send_streams_.end()) it = send_streams_.begin();
        StreamFrame frame;
        const ByteCount allowance = ConnectionSendAllowance() >= new_bytes
                                        ? ConnectionSendAllowance() - new_bytes
                                        : ByteCount{0};
        const auto result =
            stream.NextFrame(ByteCount{budget - kStreamFrameOverhead}, allowance,
                             frame);
        if (!result.produced) continue;
        any_progress = true;
        next_stream_to_serve_ = sid;
        new_bytes += result.new_bytes;
        const std::size_t size = FrameWireSize(Frame{frame});
        assert(size <= budget);
        budget -= size;
        if (sent_stream_frames) sent_stream_frames->push_back(frame);
        frames.emplace_back(std::move(frame));
      }
    }
    (void)first_served;
  }

  if (frames.empty()) return false;

  bool retransmittable = false;
  for (const Frame& frame : frames) {
    if (IsRetransmittable(frame)) retransmittable = true;
  }
  new_stream_bytes_sent_ += new_bytes;
  stats_.stream_bytes_sent_new += new_bytes;
  TransmitPacket(runtime, frames, retransmittable,
                 /*handshake_cleartext=*/false);
  return true;
}

void Connection::TransmitPacket(PathRuntime& runtime,
                                std::vector<Frame>& frames,
                                bool retransmittable,
                                bool handshake_cleartext) {
  Path& path = *runtime.path;
  if (tracer_ != nullptr) {
    for (const Frame& frame : frames) {
      tracer_->OnFrameSent(sim_.now(), path.id(), frame);
    }
  }
  PacketHeader header;
  header.cid = cid_;
  header.path_id = path.id();
  header.multipath = config_.multipath;
  header.handshake = handshake_cleartext;
  header.packet_number = path.AllocatePacketNumber();

  // Single-buffer assembly: header and frames are encoded into one
  // writer and the payload is sealed where it lies — the only per-packet
  // allocation left is the outgoing datagram itself (the network takes
  // ownership of it).
  BufWriter writer(config_.max_packet_size.value() + crypto::kAeadTagSize);
  EncodeHeader(header, path.largest_acked(), writer);
  const std::size_t header_size = writer.size();

  for (const Frame& frame : frames) EncodeFrame(frame, writer);

  if (!handshake_cleartext) {
    assert(seal_ != nullptr);
    writer.WriteZeroes(crypto::kAeadTagSize);  // tag slot
    const std::span<std::uint8_t> buf = writer.mutable_span();
    seal_->SealInPlace(header.multipath ? header.path_id : PathId{0},
                       header.packet_number, buf.subspan(0, header_size),
                       buf.subspan(header_size));
  }
  assert(writer.size() <= config_.max_packet_size + 64);

  if (retransmittable) {
    SentPacket tracked;
    tracked.pn = header.packet_number;
    tracked.sent_time = sim_.now();
    tracked.bytes = ByteCount{writer.size()};
    for (Frame& frame : frames) {
      if (IsRetransmittable(frame)) tracked.frames.push_back(std::move(frame));
    }
    ConsumePaceTokens(runtime, ByteCount{writer.size()});
    path.OnPacketSent(std::move(tracked));
    RearmRetxTimer(runtime);
  }
  ++stats_.packets_sent;
  if (connection_idle_timer_) {
    connection_idle_timer_->SetIn(config_.idle_timeout);
  }
  if (tracer_ != nullptr) {
    tracer_->OnPacketSent(sim_.now(), path.id(), header.packet_number,
                          ByteCount{writer.size()}, retransmittable);
  }
  send_(path.local_address(), path.remote_address(), writer.Take());
}

// ---------------------------------------------------------------------------
// Loss recovery

void Connection::RequeueLostFrames(PathId path, std::vector<SentPacket> lost) {
  for (SentPacket& packet : lost) {
    for (Frame& frame : packet.frames) {
      if (tracer_ != nullptr) {
        tracer_->OnFrameRetransmitQueued(sim_.now(), path, frame);
      }
      std::visit(
          [&](auto& f) {
            using T = std::decay_t<decltype(f)>;
            if constexpr (std::is_same_v<T, StreamFrame>) {
              auto it = send_streams_.find(f.stream_id);
              if (it != send_streams_.end()) {
                it->second->OnFrameLost(f.offset, ByteCount{f.data.size()}, f.fin);
              }
            } else if constexpr (std::is_same_v<T, WindowUpdateFrame>) {
              // Values are monotonic; resending the same limit is safe and
              // refreshing it is better.
              WindowUpdateFrame fresh = f;
              if (f.stream_id == 0) {
                fresh.max_data =
                    std::max(fresh.max_data, flow_.local_max_data());
              }
              EnqueueWindowUpdates(fresh);
            } else if constexpr (std::is_same_v<T, PathsFrame>) {
              EnqueueControl(BuildPathsFrame());  // fresh snapshot
            } else if constexpr (std::is_same_v<T, AddAddressFrame>) {
              EnqueueControl(std::move(f));
            } else if constexpr (std::is_same_v<T, RemoveAddressFrame>) {
              EnqueueControl(std::move(f));
            } else if constexpr (std::is_same_v<T, RstStreamFrame>) {
              EnqueueControl(f);  // the abort notice itself is reliable
            }
            // PING / BLOCKED / CONNECTION_CLOSE / RST: not worth
            // retransmitting (probe timers re-issue pings).
          },
          frame);
    }
  }
}

void Connection::RearmRetxTimer(PathRuntime& runtime) {
  Path& path = *runtime.path;
  TimePoint deadline = path.NextLossTime();
  if (path.HasInFlight()) {
    // Anchor the RTO on the oldest outstanding packet, not the last
    // transmission: periodic sends (e.g. the 1 Hz probe pings on a
    // potentially-failed path) would otherwise push the deadline back
    // forever once the backed-off RTO exceeds the send interval, and
    // stranded in-flight data would never be redeclared lost.
    const TimePoint rto_deadline =
        path.OldestInFlightSentTime() + path.CurrentRto();
    deadline = std::min(deadline, rto_deadline);
  }
  if (deadline == kTimeInfinite) {
    runtime.retx_timer->Cancel();
  } else {
    runtime.retx_timer->SetAt(deadline);
  }
}

void Connection::OnRetxTimer(PathRuntime& runtime) {
  Path& path = *runtime.path;
  if (closed_) return;
  AuditScope audit(*this);
  if (sim_.now() >= path.NextLossTime()) {
    RequeueLostFrames(path.id(), path.DetectTimeThresholdLosses(sim_.now()));
  } else if (path.HasInFlight()) {
    ++stats_.rto_events;
    const bool was_failed = path.potentially_failed();
    RequeueLostFrames(path.id(), path.OnRetransmissionTimeout(sim_.now()));
    if (tracer_ != nullptr) {
      tracer_->OnRto(sim_.now(), path.id(), path.rto_count());
    }
    if (!was_failed && path.potentially_failed()) {
      OnPathPotentiallyFailed(runtime);
    }
  }
  RearmRetxTimer(runtime);
  TrySend();
}

void Connection::OnPathPotentiallyFailed(PathRuntime& runtime) {
  MPQ_DEBUG(sim_.now(), "quic", "cid=%llu path %u potentially failed",
            static_cast<unsigned long long>(cid_), runtime.path->id().value());
  if (tracer_ != nullptr) {
    tracer_->OnPathStateChange(sim_.now(), runtime.path->id(),
                               "potentially-failed");
  }
  if (config_.send_paths_frame && config_.multipath) {
    // §4.3: tell the peer immediately so it does not wait for its own RTO
    // before answering on another path.
    EnqueueControl(BuildPathsFrame());
  }
  if (!config_.multipath && config_.migrate_on_path_failure &&
      perspective_ == Perspective::kClient) {
    TryAutoMigrate(runtime);
    return;
  }
  runtime.probe_timer->SetIn(config_.failed_path_probe_interval);
}

void Connection::TryAutoMigrate(PathRuntime& runtime) {
  // Hard handover: hop to the next local/peer address pair (round robin
  // over the client's interfaces).
  if (local_addresses_.size() < 2) return;
  ++migrations_;
  const sim::Address local = local_addresses_[static_cast<std::size_t>(
      migrations_) % local_addresses_.size()];
  const sim::Address* remote = nullptr;
  for (const auto& addr : peer_addresses_) {
    if (addr.iface == local.iface) {
      remote = &addr;
      break;
    }
  }
  if (remote == nullptr) return;
  MigratePath(runtime.path->id(), local, *remote);
}

void Connection::MigratePath(PathId id, sim::Address new_local,
                             sim::Address new_remote) {
  auto it = paths_.find(id);
  if (it == paths_.end() || closed_) return;
  PathRuntime& runtime = *it->second;
  MPQ_DEBUG(sim_.now(), "quic", "cid=%llu migrating path %u",
            static_cast<unsigned long long>(cid_), id.value());
  if (tracer_ != nullptr) {
    tracer_->OnPathStateChange(sim_.now(), id, "migrated");
  }
  RequeueLostFrames(id, runtime.path->Migrate(new_local, new_remote,
                                              MakeController(), sim_.now()));
  runtime.retx_timer->Cancel();
  runtime.probe_timer->Cancel();
  runtime.pace_tokens = 0.0;
  runtime.pace_refill_time = sim_.now();
  // Probe the new address pair immediately (the PATH_CHALLENGE analogue):
  // it announces the migration to the peer even when we have no data to
  // send, and its ACK seeds the new path's RTT estimate.
  SendPing(runtime, /*track=*/true);
  TrySend();
}

void Connection::OnProbeTimer(PathRuntime& runtime) {
  if (closed_ || !runtime.path->potentially_failed()) return;
  AuditScope audit(*this);
  SendPing(runtime, /*track=*/true);
  runtime.probe_timer->SetIn(config_.failed_path_probe_interval);
}

}  // namespace mpq::quic
