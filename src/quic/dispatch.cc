#include "quic/dispatch.h"

#include <cassert>
#include <utility>
#include <variant>

#include "common/log.h"
#include "obs/prof.h"

namespace mpq::quic {

FrameDispatcher::FrameDispatcher(sim::Simulator& sim, ConnectionId cid,
                                 ConnectionStats& stats, FlowController& flow,
                                 DispatchDelegate& delegate)
    : sim_(sim), cid_(cid), stats_(stats), flow_(flow), delegate_(delegate) {}

void FrameDispatcher::SetOpener(
    std::unique_ptr<crypto::PacketProtection> open) {
  open_ = std::move(open);
}

bool FrameDispatcher::AnyRecvStreamUnfinished() const {
  for (const auto& [id, stream] : recv_streams_) {
    if (!stream->finished()) return true;
  }
  return false;
}

void FrameDispatcher::OnEncryptedPacket(
    const ParsedHeader& parsed, BufReader& reader,
    std::span<const std::uint8_t> datagram_bytes,
    const sim::Datagram& datagram) {
  MPQ_PROF_SCOPE("dispatch/packet");
  if (!open_) return;  // keys not established yet
  const PathId pid =
      parsed.header.multipath ? parsed.header.path_id : PathId{0};
  // First packet of a peer-created path (§3: data can ride in the very
  // first packet of a new path — no handshake required).
  Path& path = *delegate_.EnsurePath(pid, datagram);

  const PacketNumber pn =
      DecodePacketNumber(path.receiver().largest_received(),
                         parsed.header.packet_number, parsed.pn_length);
  const std::span<const std::uint8_t> aad =
      datagram_bytes.subspan(0, parsed.header_size);
  std::span<const std::uint8_t> sealed;
  if (!reader.ReadSpan(reader.remaining(), sealed)) return;
  // Reused scratch: Open assigns into it, recycling the capacity.
  std::vector<std::uint8_t>& plaintext = recv_plaintext_scratch_;
  if (!open_->Open(pid, pn, aad, sealed, plaintext)) {
    ++stats_.packets_decrypt_failed;
    return;
  }
  ProcessOpenedPacket(path, pid, pn, plaintext, datagram);
}

void FrameDispatcher::OnEncryptedPacketBatch(
    std::span<EncryptedPacketRef> packets) {
  if (!open_ || packets.empty()) return;
  // Phase 1: reconstruct packet numbers speculatively — each packet's
  // decode context is the receiver's largest plus every number decoded
  // earlier in the run, which is exactly the sequential context as long
  // as every open succeeds — and build the OpenN request array.
  std::vector<crypto::OpenRequest>& requests = open_requests_scratch_;
  requests.clear();
  predicted_largest_scratch_.clear();
  for (EncryptedPacketRef& packet : packets) {
    const PathId pid =
        packet.parsed.header.multipath ? packet.parsed.header.path_id
                                       : PathId{0};
    Path& path = *delegate_.EnsurePath(pid, *packet.datagram);
    PacketNumber* predicted = nullptr;
    for (auto& [id, largest] : predicted_largest_scratch_) {
      if (id == pid) {
        predicted = &largest;
        break;
      }
    }
    if (predicted == nullptr) {
      predicted_largest_scratch_.emplace_back(
          pid, path.receiver().largest_received());
      predicted = &predicted_largest_scratch_.back().second;
    }
    const PacketNumber pn = DecodePacketNumber(
        *predicted, packet.parsed.header.packet_number,
        packet.parsed.pn_length);
    if (pn > *predicted) *predicted = pn;
    const std::span<std::uint8_t> payload = packet.payload;
    requests.push_back(crypto::OpenRequest{
        pid, pn,
        std::span<const std::uint8_t>(payload)
            .subspan(0, packet.parsed.header_size),
        payload.subspan(packet.parsed.header_size)});
  }
  // Phase 2: one batched crypto call, decrypting every payload in place.
  open_->OpenN(requests);
  // Phase 3: consume in arrival order against the live receiver state.
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (delegate_.connection_closed()) return;
    MPQ_PROF_SCOPE("dispatch/packet");
    EncryptedPacketRef& packet = packets[i];
    crypto::OpenRequest& request = requests[i];
    const PathId pid = request.path;
    Path& path = *delegate_.EnsurePath(pid, *packet.datagram);
    const PacketNumber pn_true = DecodePacketNumber(
        path.receiver().largest_received(), packet.parsed.header.packet_number,
        packet.parsed.pn_length);
    std::span<const std::uint8_t> plaintext;
    if (pn_true == request.pn) {
      if (!request.ok) {
        ++stats_.packets_decrypt_failed;
        continue;
      }
      plaintext = request.buf.first(request.plaintext_len);
    } else if (!request.ok) {
      // The speculative chain diverged (an earlier packet in the run
      // failed to open, so its number never entered the receiver state).
      // The failed open left the buffer's original ciphertext intact —
      // retry under the number sequential processing would have used.
      std::size_t plaintext_len = 0;
      if (!open_->OpenInPlace(pid, pn_true, request.aad, request.buf,
                              plaintext_len)) {
        ++stats_.packets_decrypt_failed;
        continue;
      }
      plaintext = request.buf.first(plaintext_len);
    } else {
      // Opened under the speculative number, but sequential processing
      // would have reconstructed pn_true and rejected the tag (the tag
      // binds the nonce, and the nonce binds the packet number).
      ++stats_.packets_decrypt_failed;
      continue;
    }
    ProcessOpenedPacket(path, pid, pn_true, plaintext, *packet.datagram);
  }
}

void FrameDispatcher::ProcessOpenedPacket(
    Path& path, PathId pid, PacketNumber pn,
    std::span<const std::uint8_t> plaintext, const sim::Datagram& datagram) {
  const PacketNumber largest_before = path.receiver().largest_received();
  if (!path.receiver().OnPacketReceived(pn, sim_.now())) {
    ++stats_.packets_duplicate;
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->OnPacketReceived(sim_.now(), pid, pn,
                              ByteCount{datagram.payload.size()});
  }
  // NAT rebinding / peer migration: the packet authenticated under this
  // path's keys but arrived from a new address — follow it (§3), keeping
  // the path's state.
  if (!(datagram.src == path.remote_address())) {
    MPQ_DEBUG(sim_.now(), "quic", "cid=%llu path %u peer address changed",
              static_cast<unsigned long long>(cid_), pid.value());
    path.UpdateAddresses(datagram.dst, datagram.src);
  }
  std::vector<Frame>& frames = recv_frames_scratch_;
  if (!DecodePayload(plaintext, frames)) return;

  bool any_retransmittable = false;
  for (const Frame& frame : frames) {
    if (IsRetransmittable(frame)) any_retransmittable = true;
  }
  ProcessFrames(path, frames);
  if (delegate_.connection_closed()) return;
  if (any_retransmittable) {
    const bool out_of_order = pn != largest_before + 1;
    delegate_.OnAckElicitingPacket(path, out_of_order);
  }
}

void FrameDispatcher::ProcessFrames(Path& path, std::vector<Frame>& frames) {
  MPQ_PROF_SCOPE("dispatch/frames");
  if (tracer_ != nullptr) {
    for (const Frame& frame : frames) {
      tracer_->OnFrameReceived(sim_.now(), path.id(), frame);
    }
  }
  for (Frame& frame : frames) {
    if (delegate_.connection_closed()) return;
    std::visit(
        [&](auto& f) {
          using T = std::decay_t<decltype(f)>;
          if constexpr (std::is_same_v<T, AckFrame>) {
            delegate_.OnAckFrame(f);
          } else if constexpr (std::is_same_v<T, StreamFrame>) {
            OnStreamFrameReceived(f);
          } else if constexpr (std::is_same_v<T, WindowUpdateFrame>) {
            delegate_.OnWindowUpdateFrame(f);
          } else if constexpr (std::is_same_v<T, PathsFrame>) {
            delegate_.OnPathsFrame(f);
          } else if constexpr (std::is_same_v<T, AddAddressFrame>) {
            delegate_.OnAddAddressFrame(f);
          } else if constexpr (std::is_same_v<T, RemoveAddressFrame>) {
            delegate_.OnRemoveAddressFrame(f);
          } else if constexpr (std::is_same_v<T, RstStreamFrame>) {
            // Peer aborted its send stream: surface EOF-with-error to the
            // app (delivered prefix stays delivered, the rest never comes).
            auto rs = recv_streams_.find(f.stream_id);
            if (rs != recv_streams_.end() && !rs->second->finished()) {
              if (on_stream_data_) {
                on_stream_data_(f.stream_id, rs->second->delivered_offset(),
                                {}, true);
              }
            }
          } else if constexpr (std::is_same_v<T, ConnectionCloseFrame>) {
            MPQ_DEBUG(sim_.now(), "quic", "cid=%llu closed by peer: %s",
                      static_cast<unsigned long long>(cid_),
                      f.reason.c_str());
            delegate_.OnPeerClose(f);
          }
          // PING, PADDING, BLOCKED, HANDSHAKE: nothing to do here (PING
          // only elicits the ACK machinery).
        },
        frame);
  }
}

RecvStream& FrameDispatcher::GetOrCreateRecvStream(StreamId id) {
  auto it = recv_streams_.find(id);
  if (it != recv_streams_.end()) return *it->second;
  auto stream = std::make_unique<RecvStream>(id);
  RecvStream* raw = stream.get();
  stream_advertised_.emplace(id, flow_.window());
  stream->SetSink([this, id, raw](ByteCount offset,
                                  std::span<const std::uint8_t> data,
                                  bool finished) {
    stats_.stream_bytes_received += data.size();
    if (!data.empty() && flow_.OnBytesConsumed(ByteCount{data.size()})) {
      delegate_.FanOutWindowUpdate(
          WindowUpdateFrame{StreamId{0}, flow_.NextAdvertisement()});
    }
    // Stream-level window replenishment, same half-window policy.
    auto adv = stream_advertised_.find(id);
    if (adv != stream_advertised_.end() &&
        raw->consumed_bytes() + flow_.window() >=
            adv->second + flow_.window() / 2) {
      adv->second = raw->consumed_bytes() + flow_.window();
      delegate_.FanOutWindowUpdate(WindowUpdateFrame{id, adv->second});
    }
    if (on_stream_data_) on_stream_data_(id, offset, data, finished);
  });
  auto [inserted_it, ok] = recv_streams_.emplace(id, std::move(stream));
  assert(ok);
  return *inserted_it->second;
}

void FrameDispatcher::OnStreamFrameReceived(StreamFrame& frame) {
  RecvStream& stream = GetOrCreateRecvStream(frame.stream_id);
  // Receive-side enforcement: data past the advertised limit is a
  // protocol violation and must be dropped BEFORE it reaches the stream —
  // once a bogus offset or fin enters RecvStream it pins the stream's
  // final size and the connection-level receive accounting forever (and
  // trips the auditor's total_highest_received <= local_max_data
  // invariant). An honest peer never sends past our advertisement, so
  // only corrupt or forged traffic lands here.
  const ByteCount frame_end = frame.offset + frame.data.size();
  const ByteCount growth = frame_end > stream.highest_received()
                               ? frame_end - stream.highest_received()
                               : ByteCount{0};
  if (!flow_.WithinReceiveLimit(total_highest_received_ + growth)) {
    ++stats_.flow_control_overruns;
    MPQ_WARN(sim_.now(), "quic", "cid=%llu flow control violated",
             static_cast<unsigned long long>(cid_));
    return;
  }
  total_highest_received_ += stream.OnStreamFrame(std::move(frame));
}

}  // namespace mpq::quic
