#include "quic/recovery.h"

#include <algorithm>
#include <utility>
#include <variant>

#include "common/log.h"
#include "obs/prof.h"

namespace mpq::quic {

namespace {

/// Audits on scope exit, so timer handlers with early returns still get
/// checked on every path out (the recovery-layer analogue of AuditScope,
/// routed through the delegate to keep connection.h out of this layer).
class AuditOnExit {
 public:
  explicit AuditOnExit(RecoveryDelegate& delegate) : delegate_(delegate) {}
  ~AuditOnExit() { delegate_.RunAudit(); }

  AuditOnExit(const AuditOnExit&) = delete;
  AuditOnExit& operator=(const AuditOnExit&) = delete;

 private:
  RecoveryDelegate& delegate_;
};

}  // namespace

RecoveryManager::RecoveryManager(sim::Simulator& sim, ConnectionStats& stats,
                                 Duration failed_path_probe_interval,
                                 Duration max_rto,
                                 RecoveryDelegate& delegate)
    : sim_(sim),
      stats_(stats),
      probe_interval_(failed_path_probe_interval),
      max_rto_(max_rto),
      delegate_(delegate) {}

void RecoveryManager::RegisterPath(Path& path) {
  PathRecovery& rec = paths_[path.id()];
  rec.path = &path;
  PathRecovery* raw = &rec;
  rec.retx_timer =
      std::make_unique<sim::Timer>(sim_, [this, raw] { OnRetxTimer(*raw); });
  rec.probe_timer =
      std::make_unique<sim::Timer>(sim_, [this, raw] { OnProbeTimer(*raw); });
}

void RecoveryManager::OnAckReceived(Path& path, const AckFrame& ack) {
  // An ACK for a packet number this path never allocated is proof of a
  // broken or forged peer (optimistic ACK). Accepting it would drag
  // largest_acked past the send horizon, instantly declare every
  // in-flight packet lost via the packet-number reordering threshold,
  // and desync header packet-number encoding. Ignore the whole frame —
  // an honest peer never acknowledges the future.
  if (!ack.ranges.empty() && ack.LargestAcked() > path.largest_sent()) {
    ++stats_.invalid_acks_ignored;
    MPQ_WARN(sim_.now(), "recovery",
             "path %u ACK for unsent pn %llu (largest sent %llu) ignored",
             path.id().value(),
             static_cast<unsigned long long>(ack.LargestAcked().value()),
             static_cast<unsigned long long>(path.largest_sent().value()));
    return;
  }
  MPQ_PROF_SCOPE("recovery/ack");
  PathRecovery& rec = paths_.at(path.id());
  const bool was_failed = path.potentially_failed();
  Path::AckResult result = path.OnAckReceived(ack, sim_.now());
  if (tracer_ != nullptr) {
    for (const SentPacket& lost : result.lost) {
      tracer_->OnPacketLost(sim_.now(), ack.path_id, lost.pn);
    }
    tracer_->OnPathSample(sim_.now(), ack.path_id,
                          path.congestion().congestion_window(),
                          path.congestion().bytes_in_flight(),
                          path.rtt().smoothed());
  }
  for (const SentPacket& packet : result.newly_acked) {
    if (tracer_ != nullptr) {
      tracer_->OnPacketLifecycle(sim_.now(), ack.path_id, packet.pn, "acked",
                                 sim_.now() - packet.sent_time);
    }
    for (const Frame& frame : packet.frames) {
      if (std::holds_alternative<PingFrame>(frame)) {
        rec.ping_probe_outstanding = false;
      }
    }
  }
  if (was_failed && !path.potentially_failed()) {
    if (tracer_ != nullptr) {
      tracer_->OnPathStateChange(sim_.now(), ack.path_id, "recovered");
    }
    rec.probe_timer->Cancel();
    delegate_.OnPathRecovered(ack.path_id);
  }
  RequeueLostFrames(ack.path_id, std::move(result.lost));
  RearmRetxTimer(rec);
}

void RecoveryManager::OnPacketTracked(Path& path) {
  RearmRetxTimer(paths_.at(path.id()));
}

void RecoveryManager::RequeueLostFrames(PathId path,
                                        std::vector<SentPacket> lost) {
  // Only frames that are actually fed back for retransmission count
  // toward the retransmit stats — PINGs from lost packets are dropped,
  // not retransmitted.
  const auto count = [this](const Frame& frame) {
    ++stats_.frames_retransmitted;
    stats_.bytes_retransmitted += FrameWireSize(frame);
  };
  for (SentPacket& packet : lost) {
    // Terminal lifecycle event for the lost packet, whether the loss was
    // ack-implied (OnAckReceived) or timer-driven (OnRetxTimer).
    if (tracer_ != nullptr) {
      tracer_->OnPacketLifecycle(sim_.now(), path, packet.pn, "lost",
                                 sim_.now() - packet.sent_time);
    }
    for (Frame& frame : packet.frames) {
      if (tracer_ != nullptr) {
        tracer_->OnFrameRetransmitQueued(sim_.now(), path, frame);
      }
      std::visit(
          [&](auto& f) {
            using T = std::decay_t<decltype(f)>;
            if constexpr (std::is_same_v<T, StreamFrame>) {
              count(frame);
              delegate_.OnStreamFrameLost(f.stream_id, f.offset,
                                          ByteCount{f.data.size()}, f.fin);
            } else if constexpr (std::is_same_v<T, WindowUpdateFrame>) {
              // Values are monotonic; resending the same limit is safe and
              // refreshing it is better (the delegate freshens).
              count(frame);
              delegate_.RequeueWindowUpdate(f);
            } else if constexpr (std::is_same_v<T, PathsFrame>) {
              count(frame);
              delegate_.RequeuePathsSnapshot();  // fresh snapshot
            } else if constexpr (std::is_same_v<T, AddAddressFrame>) {
              count(frame);
              delegate_.RequeueControlFrame(std::move(f));
            } else if constexpr (std::is_same_v<T, RemoveAddressFrame>) {
              count(frame);
              delegate_.RequeueControlFrame(std::move(f));
            } else if constexpr (std::is_same_v<T, HandshakeFrame>) {
              // Lost handshake cleartext drains via the control queue,
              // which the assembler serves ahead of stream data.
              count(frame);
              delegate_.RequeueControlFrame(std::move(f));
            } else if constexpr (std::is_same_v<T, RstStreamFrame>) {
              count(frame);
              delegate_.RequeueControlFrame(f);  // the abort notice itself
                                                 // is reliable
            }
            // PING / BLOCKED / CONNECTION_CLOSE: not worth retransmitting
            // (probe timers re-issue pings).
          },
          frame);
    }
  }
}

void RecoveryManager::RearmRetxTimer(PathRecovery& rec) {
  Path& path = *rec.path;
  TimePoint deadline = path.NextLossTime();
  if (path.HasInFlight()) {
    // Anchor the RTO on the oldest outstanding packet, not the last
    // transmission: periodic sends (e.g. the 1 Hz probe pings on a
    // potentially-failed path) would otherwise push the deadline back
    // forever once the backed-off RTO exceeds the send interval, and
    // stranded in-flight data would never be redeclared lost.
    // Cap the backed-off RTO: exponential backoff on an outage-inflated
    // srtt can otherwise push the next retransmission tens of seconds
    // past the moment the link heals (config.h documents the bound).
    const Duration rto =
        max_rto_ > 0 ? std::min(path.CurrentRto(), max_rto_)
                     : path.CurrentRto();
    const TimePoint rto_deadline = path.OldestInFlightSentTime() + rto;
    deadline = std::min(deadline, rto_deadline);
  }
  if (deadline == kTimeInfinite) {
    rec.retx_timer->Cancel();
  } else {
    rec.retx_timer->SetAt(deadline);
  }
}

void RecoveryManager::OnRetxTimer(PathRecovery& rec) {
  Path& path = *rec.path;
  if (closed_) return;
  MPQ_PROF_SCOPE("recovery/retx_timer");
  AuditOnExit audit(delegate_);
  if (sim_.now() >= path.NextLossTime()) {
    RequeueLostFrames(path.id(), path.DetectTimeThresholdLosses(sim_.now()));
  } else if (path.HasInFlight()) {
    ++stats_.rto_events;
    const bool was_failed = path.potentially_failed();
    RequeueLostFrames(path.id(), path.OnRetransmissionTimeout(sim_.now()));
    if (tracer_ != nullptr) {
      tracer_->OnRto(sim_.now(), path.id(), path.rto_count());
    }
    if (!was_failed && path.potentially_failed()) {
      if (delegate_.OnPathPotentiallyFailed(path.id())) {
        rec.probe_timer->SetIn(probe_interval_);
      }
    }
  }
  RearmRetxTimer(rec);
  delegate_.RequestSend();
}

void RecoveryManager::OnProbeTimer(PathRecovery& rec) {
  if (closed_ || !rec.path->potentially_failed()) return;
  AuditOnExit audit(delegate_);
  delegate_.SendProbePing(rec.path->id());
  rec.probe_timer->SetIn(probe_interval_);
}

void RecoveryManager::OnPathMigrated(PathId id) {
  PathRecovery& rec = paths_.at(id);
  rec.retx_timer->Cancel();
  rec.probe_timer->Cancel();
}

void RecoveryManager::OnConnectionClosed() {
  closed_ = true;
  for (auto& [id, rec] : paths_) {
    rec.retx_timer->Cancel();
    rec.probe_timer->Cancel();
  }
}

bool RecoveryManager::ping_probe_outstanding(PathId id) const {
  return paths_.at(id).ping_probe_outstanding;
}

void RecoveryManager::set_ping_probe_outstanding(PathId id, bool outstanding) {
  paths_.at(id).ping_probe_outstanding = outstanding;
}

}  // namespace mpq::quic
