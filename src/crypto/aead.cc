#include "crypto/aead.h"

#include <cstring>

namespace mpq::crypto {

std::array<std::uint8_t, 32> Kdf32(std::span<const std::uint8_t> secret,
                                   std::string_view label) {
  SipHashKey key{};
  const std::size_t key_bytes = secret.size() < 16 ? secret.size() : 16;
  std::memcpy(key.data(), secret.data(), key_bytes);

  std::vector<std::uint8_t> message;
  message.reserve(secret.size() + label.size() + 1);
  if (secret.size() > 16) {
    message.insert(message.end(), secret.begin() + 16, secret.end());
  }
  message.insert(message.end(), label.begin(), label.end());
  message.push_back(0);  // counter slot

  std::array<std::uint8_t, 32> out{};
  for (std::uint8_t block = 0; block < 4; ++block) {
    message.back() = block;
    const std::uint64_t h = SipHash24(key, message);
    for (int i = 0; i < 8; ++i) {
      out[8 * block + i] = static_cast<std::uint8_t>(h >> (8 * i));
    }
  }
  return out;
}

PacketProtection::PacketProtection(const ChaChaKey& key) : cipher_key_(key) {
  const auto derived = Kdf32(key, "mpquic tag key");
  std::memcpy(tag_key_.data(), derived.data(), tag_key_.size());
}

ChaChaNonce PacketProtection::MakeNonce(PathId path, PacketNumber pn) const {
  // path id (1) | zeros (3) | packet number (8, big-endian). Distinct
  // paths therefore always yield distinct nonces (paper §3).
  ChaChaNonce nonce{};
  nonce[0] = path;
  for (int i = 0; i < 8; ++i) {
    nonce[4 + i] = static_cast<std::uint8_t>(pn >> (8 * (7 - i)));
  }
  return nonce;
}

std::uint64_t PacketProtection::Tag(
    const ChaChaNonce& nonce, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> ciphertext) const {
  // Unambiguous framing: nonce | aad_len | aad | ciphertext.
  std::vector<std::uint8_t> material;
  material.reserve(nonce.size() + 8 + aad.size() + ciphertext.size());
  material.insert(material.end(), nonce.begin(), nonce.end());
  const std::uint64_t aad_len = aad.size();
  for (int i = 0; i < 8; ++i) {
    material.push_back(static_cast<std::uint8_t>(aad_len >> (8 * i)));
  }
  material.insert(material.end(), aad.begin(), aad.end());
  material.insert(material.end(), ciphertext.begin(), ciphertext.end());
  return SipHash24(tag_key_, material);
}

std::vector<std::uint8_t> PacketProtection::Seal(
    PathId path, PacketNumber pn, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> plaintext) const {
  const ChaChaNonce nonce = MakeNonce(path, pn);
  std::vector<std::uint8_t> out(plaintext.begin(), plaintext.end());
  ChaCha20Xor(cipher_key_, 1, nonce, out);
  const std::uint64_t tag = Tag(nonce, aad, out);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(tag >> (8 * i)));
  }
  return out;
}

bool PacketProtection::Open(PathId path, PacketNumber pn,
                            std::span<const std::uint8_t> aad,
                            std::span<const std::uint8_t> sealed,
                            std::vector<std::uint8_t>& out) const {
  if (sealed.size() < kAeadTagSize) return false;
  const std::span<const std::uint8_t> ciphertext =
      sealed.subspan(0, sealed.size() - kAeadTagSize);
  const std::span<const std::uint8_t> tag_bytes =
      sealed.subspan(sealed.size() - kAeadTagSize);

  const ChaChaNonce nonce = MakeNonce(path, pn);
  std::uint64_t expected = Tag(nonce, aad, ciphertext);
  std::uint64_t got = 0;
  for (int i = 7; i >= 0; --i) got = got << 8 | tag_bytes[i];
  // Constant-time comparison is irrelevant in a simulator but cheap.
  if ((expected ^ got) != 0) return false;

  out.assign(ciphertext.begin(), ciphertext.end());
  ChaCha20Xor(cipher_key_, 1, nonce, out);
  return true;
}

SessionKeys DeriveSessionKeys(
    std::span<const std::uint8_t> client_nonce,
    std::span<const std::uint8_t> server_nonce,
    std::span<const std::uint8_t> server_config_secret) {
  std::vector<std::uint8_t> master;
  master.reserve(client_nonce.size() + server_nonce.size() +
                 server_config_secret.size());
  master.insert(master.end(), client_nonce.begin(), client_nonce.end());
  master.insert(master.end(), server_nonce.begin(), server_nonce.end());
  master.insert(master.end(), server_config_secret.begin(),
                server_config_secret.end());
  SessionKeys keys;
  keys.client_to_server = Kdf32(master, "client to server");
  keys.server_to_client = Kdf32(master, "server to client");
  return keys;
}

}  // namespace mpq::crypto
