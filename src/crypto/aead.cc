#include "crypto/aead.h"

#include <cstring>

#include "obs/prof.h"

namespace mpq::crypto {

std::array<std::uint8_t, 32> Kdf32(std::span<const std::uint8_t> secret,
                                   std::string_view label) {
  SipHashKey key{};
  const std::size_t key_bytes = secret.size() < 16 ? secret.size() : 16;
  std::memcpy(key.data(), secret.data(), key_bytes);

  std::vector<std::uint8_t> message;
  message.reserve(secret.size() + label.size() + 1);
  if (secret.size() > 16) {
    message.insert(message.end(), secret.begin() + 16, secret.end());
  }
  message.insert(message.end(), label.begin(), label.end());
  message.push_back(0);  // counter slot

  std::array<std::uint8_t, 32> out{};
  for (std::uint8_t block = 0; block < 4; ++block) {
    message.back() = block;
    const std::uint64_t h = SipHash24(key, message);
    for (int i = 0; i < 8; ++i) {
      out[8 * block + i] = static_cast<std::uint8_t>(h >> (8 * i));
    }
  }
  return out;
}

PacketProtection::PacketProtection(const ChaChaKey& key) : cipher_key_(key) {
  const auto derived = Kdf32(key, "mpquic tag key");
  std::memcpy(tag_key_.data(), derived.data(), tag_key_.size());
}

ChaChaNonce PacketProtection::MakeNonce(PathId path, PacketNumber pn) const {
  // path id (1) | zeros (3) | packet number (8, big-endian). Distinct
  // paths therefore always yield distinct nonces (paper §3).
  ChaChaNonce nonce{};
  nonce[0] = path.value();
  for (int i = 0; i < 8; ++i) {
    nonce[4 + i] = static_cast<std::uint8_t>(pn.value() >> (8 * (7 - i)));
  }
  return nonce;
}

std::uint64_t PacketProtection::Tag(
    const ChaChaNonce& nonce, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> ciphertext) const {
  // Unambiguous framing: nonce | aad_len | aad | ciphertext, absorbed
  // incrementally — no per-packet material buffer.
  SipHashState state(tag_key_);
  state.Absorb(nonce);
  std::uint8_t aad_len[8];
  for (int i = 0; i < 8; ++i) {
    aad_len[i] = static_cast<std::uint8_t>(aad.size() >> (8 * i));
  }
  state.Absorb(aad_len);
  state.Absorb(aad);
  state.Absorb(ciphertext);
  return state.Finalize();
}

std::vector<std::uint8_t> PacketProtection::Seal(
    PathId path, PacketNumber pn, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> plaintext) const {
  std::vector<std::uint8_t> out(plaintext.size() + kAeadTagSize);
  if (!plaintext.empty()) {
    std::memcpy(out.data(), plaintext.data(), plaintext.size());
  }
  SealInPlace(path, pn, aad, out);
  return out;
}

void PacketProtection::SealInPlace(PathId path, PacketNumber pn,
                                   std::span<const std::uint8_t> aad,
                                   std::span<std::uint8_t> buf) const {
  MPQ_PROF_SCOPE("crypto/seal");
  const ChaChaNonce nonce = MakeNonce(path, pn);
  const std::span<std::uint8_t> text = buf.first(buf.size() - kAeadTagSize);
  ChaCha20Xor(cipher_key_, 1, nonce, text);
  const std::uint64_t tag = Tag(nonce, aad, text);
  std::uint8_t* tag_out = buf.data() + text.size();
  for (std::size_t i = 0; i < kAeadTagSize; ++i) {
    tag_out[i] = static_cast<std::uint8_t>(tag >> (8 * i));
  }
}

bool PacketProtection::Open(PathId path, PacketNumber pn,
                            std::span<const std::uint8_t> aad,
                            std::span<const std::uint8_t> sealed,
                            std::vector<std::uint8_t>& out) const {
  MPQ_PROF_SCOPE("crypto/open");
  if (sealed.size() < kAeadTagSize) return false;
  const std::span<const std::uint8_t> ciphertext =
      sealed.subspan(0, sealed.size() - kAeadTagSize);
  const std::span<const std::uint8_t> tag_bytes =
      sealed.subspan(sealed.size() - kAeadTagSize);

  const ChaChaNonce nonce = MakeNonce(path, pn);
  std::uint64_t expected = Tag(nonce, aad, ciphertext);
  std::uint64_t got = 0;
  for (int i = 7; i >= 0; --i) got = got << 8 | tag_bytes[i];
  // Constant-time comparison is irrelevant in a simulator but cheap.
  if ((expected ^ got) != 0) return false;

  out.assign(ciphertext.begin(), ciphertext.end());
  ChaCha20Xor(cipher_key_, 1, nonce, out);
  return true;
}

bool PacketProtection::OpenInPlace(PathId path, PacketNumber pn,
                                   std::span<const std::uint8_t> aad,
                                   std::span<std::uint8_t> buf,
                                   std::size_t& plaintext_len) const {
  MPQ_PROF_SCOPE("crypto/open");
  if (buf.size() < kAeadTagSize) return false;
  const std::span<std::uint8_t> ciphertext =
      buf.first(buf.size() - kAeadTagSize);
  const std::span<const std::uint8_t> tag_bytes =
      buf.subspan(ciphertext.size());

  const ChaChaNonce nonce = MakeNonce(path, pn);
  const std::uint64_t expected = Tag(nonce, aad, ciphertext);
  std::uint64_t got = 0;
  for (int i = 7; i >= 0; --i) got = got << 8 | tag_bytes[i];
  if ((expected ^ got) != 0) return false;

  ChaCha20Xor(cipher_key_, 1, nonce, ciphertext);
  plaintext_len = ciphertext.size();
  return true;
}

SessionKeys DeriveSessionKeys(
    std::span<const std::uint8_t> client_nonce,
    std::span<const std::uint8_t> server_nonce,
    std::span<const std::uint8_t> server_config_secret) {
  std::vector<std::uint8_t> master;
  master.reserve(client_nonce.size() + server_nonce.size() +
                 server_config_secret.size());
  master.insert(master.end(), client_nonce.begin(), client_nonce.end());
  master.insert(master.end(), server_nonce.begin(), server_nonce.end());
  master.insert(master.end(), server_config_secret.begin(),
                server_config_secret.end());
  SessionKeys keys;
  keys.client_to_server = Kdf32(master, "client to server");
  keys.server_to_client = Kdf32(master, "server to client");
  return keys;
}

}  // namespace mpq::crypto
