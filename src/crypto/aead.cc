#include "crypto/aead.h"

#include <algorithm>
#include <cstring>

#include "obs/prof.h"

namespace mpq::crypto {

namespace {

/// Fused-walk chunk: big enough that the SIMD kernels run at full width
/// (a multiple of 8 ChaCha blocks), small enough that the ciphertext is
/// still in L1 when the tag absorb re-reads it.
constexpr std::size_t kFuseChunk = 1024;
static_assert(kFuseChunk % kChaChaBlockSize == 0);

/// Absorb the authenticated prefix `nonce | aad_len | aad` (the framing
/// Tag() documents; the fused seal/open walks append the ciphertext).
void AbsorbTagPrefix(SipHashState& state, const ChaChaNonce& nonce,
                     std::span<const std::uint8_t> aad) {
  state.Absorb(nonce);
  std::uint8_t aad_len[8];
  for (int i = 0; i < 8; ++i) {
    aad_len[i] = static_cast<std::uint8_t>(aad.size() >> (8 * i));
  }
  state.Absorb(aad_len);
  state.Absorb(aad);
}

std::uint64_t ReadTagLe(const std::uint8_t* tag_bytes) {
  std::uint64_t got = 0;
  for (int i = 7; i >= 0; --i) got = got << 8 | tag_bytes[i];
  return got;
}

void WriteTagLe(std::uint8_t* tag_out, std::uint64_t tag) {
  for (std::size_t i = 0; i < kAeadTagSize; ++i) {
    tag_out[i] = static_cast<std::uint8_t>(tag >> (8 * i));
  }
}

}  // namespace

std::array<std::uint8_t, 32> Kdf32(std::span<const std::uint8_t> secret,
                                   std::string_view label) {
  SipHashKey key{};
  const std::size_t key_bytes = secret.size() < 16 ? secret.size() : 16;
  // Guard the copy: memcpy from an empty span's data() (null) is UB even
  // for zero bytes.
  if (key_bytes > 0) std::memcpy(key.data(), secret.data(), key_bytes);

  std::vector<std::uint8_t> message;
  message.reserve(secret.size() + label.size() + 1);
  if (secret.size() > 16) {
    message.insert(message.end(), secret.begin() + 16, secret.end());
  }
  message.insert(message.end(), label.begin(), label.end());
  message.push_back(0);  // counter slot

  std::array<std::uint8_t, 32> out{};
  for (std::uint8_t block = 0; block < 4; ++block) {
    message.back() = block;
    const std::uint64_t h = SipHash24(key, message);
    for (int i = 0; i < 8; ++i) {
      out[8 * block + i] = static_cast<std::uint8_t>(h >> (8 * i));
    }
  }
  return out;
}

PacketProtection::PacketProtection(const ChaChaKey& key) : cipher_key_(key) {
  const auto derived = Kdf32(key, "mpquic tag key");
  std::memcpy(tag_key_.data(), derived.data(), tag_key_.size());
}

ChaChaNonce PacketProtection::MakeNonce(PathId path, PacketNumber pn) const {
  // path id (4, little-endian) | packet number (8, big-endian). Distinct
  // paths therefore always yield distinct nonces (paper §3) — the full
  // 32-bit PathId is encoded, so paths 256 apart cannot collide.
  ChaChaNonce nonce{};
  for (int i = 0; i < 4; ++i) {
    nonce[i] = static_cast<std::uint8_t>(path.value() >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    nonce[4 + i] = static_cast<std::uint8_t>(pn.value() >> (8 * (7 - i)));
  }
  return nonce;
}

std::uint64_t PacketProtection::Tag(
    const ChaChaNonce& nonce, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> ciphertext) const {
  // Unambiguous framing: nonce | aad_len | aad | ciphertext, absorbed
  // incrementally — no per-packet material buffer.
  SipHashState state(tag_key_);
  AbsorbTagPrefix(state, nonce, aad);
  state.Absorb(ciphertext);
  return state.Finalize();
}

void PacketProtection::SealOne(PathId path, PacketNumber pn,
                               std::span<const std::uint8_t> aad,
                               std::span<std::uint8_t> buf) const {
  MPQ_PROF_SCOPE("crypto/seal");
  const ChaChaNonce nonce = MakeNonce(path, pn);
  const std::span<std::uint8_t> text = buf.first(buf.size() - kAeadTagSize);

  SipHashState tag_state(tag_key_);
  AbsorbTagPrefix(tag_state, nonce, aad);
  ChaCha20Ctx ctx;
  ChaCha20Init(ctx, cipher_key_, 1, nonce);

  // Fused walk: encrypt a chunk, then absorb the ciphertext into the tag
  // while it is still cache-hot — one pass over the packet instead of two.
  std::size_t offset = 0;
  while (offset < text.size()) {
    const std::size_t n = std::min(kFuseChunk, text.size() - offset);
    const std::span<std::uint8_t> chunk = text.subspan(offset, n);
    ChaCha20XorUpdate(ctx, chunk);
    tag_state.Absorb(chunk);
    offset += n;
  }
  WriteTagLe(buf.data() + text.size(), tag_state.Finalize());
}

bool PacketProtection::OpenOne(PathId path, PacketNumber pn,
                               std::span<const std::uint8_t> aad,
                               std::span<std::uint8_t> buf,
                               std::size_t& plaintext_len) const {
  MPQ_PROF_SCOPE("crypto/open");
  if (buf.size() < kAeadTagSize) return false;
  const std::span<std::uint8_t> ciphertext =
      buf.first(buf.size() - kAeadTagSize);

  const ChaChaNonce nonce = MakeNonce(path, pn);
  SipHashState tag_state(tag_key_);
  AbsorbTagPrefix(tag_state, nonce, aad);
  ChaCha20Ctx ctx;
  ChaCha20Init(ctx, cipher_key_, 1, nonce);

  // Optimistic fused walk: absorb the ciphertext chunk into the tag,
  // then decrypt it in place — the verdict only lands at the end.
  std::size_t offset = 0;
  while (offset < ciphertext.size()) {
    const std::size_t n = std::min(kFuseChunk, ciphertext.size() - offset);
    const std::span<std::uint8_t> chunk = ciphertext.subspan(offset, n);
    tag_state.Absorb(chunk);
    ChaCha20XorUpdate(ctx, chunk);
    offset += n;
  }
  const std::uint64_t expected = tag_state.Finalize();
  // Constant-time comparison is irrelevant in a simulator but cheap.
  if ((expected ^ ReadTagLe(buf.data() + ciphertext.size())) != 0) {
    // Rare path: re-encrypt to hand the buffer back exactly as passed
    // (XOR with the same keystream is involutive).
    ChaCha20Init(ctx, cipher_key_, 1, nonce);
    ChaCha20XorUpdate(ctx, ciphertext);
    return false;
  }
  plaintext_len = ciphertext.size();
  return true;
}

std::vector<std::uint8_t> PacketProtection::Seal(
    PathId path, PacketNumber pn, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> plaintext) const {
  std::vector<std::uint8_t> out(plaintext.size() + kAeadTagSize);
  if (!plaintext.empty()) {
    std::memcpy(out.data(), plaintext.data(), plaintext.size());
  }
  SealInPlace(path, pn, aad, out);
  return out;
}

void PacketProtection::SealInPlace(PathId path, PacketNumber pn,
                                   std::span<const std::uint8_t> aad,
                                   std::span<std::uint8_t> buf) const {
  SealOne(path, pn, aad, buf);
}

bool PacketProtection::Open(PathId path, PacketNumber pn,
                            std::span<const std::uint8_t> aad,
                            std::span<const std::uint8_t> sealed,
                            std::vector<std::uint8_t>& out) const {
  if (sealed.size() < kAeadTagSize) return false;
  // Copy ciphertext | tag into the scratch and run the fused in-place
  // open there: one walk decrypt+authenticate, and the caller's input
  // stays pristine without a restore pass (on failure only `out` — whose
  // contents are unspecified then — holds the restored ciphertext).
  out.assign(sealed.begin(), sealed.end());
  std::size_t plaintext_len = 0;
  if (!OpenOne(path, pn, aad, out, plaintext_len)) return false;
  out.resize(plaintext_len);
  return true;
}

bool PacketProtection::OpenInPlace(PathId path, PacketNumber pn,
                                   std::span<const std::uint8_t> aad,
                                   std::span<std::uint8_t> buf,
                                   std::size_t& plaintext_len) const {
  return OpenOne(path, pn, aad, buf, plaintext_len);
}

void PacketProtection::SealN(std::span<SealRequest> requests) const {
  for (SealRequest& req : requests) {
    // The per-packet profiler scope lives inside SealOne, so span names
    // and counts match the unbatched path packet for packet.
    SealOne(req.path, req.pn, req.aad, req.buf);
  }
}

void PacketProtection::OpenN(std::span<OpenRequest> requests) const {
  for (OpenRequest& req : requests) {
    req.plaintext_len = 0;
    req.ok = OpenOne(req.path, req.pn, req.aad, req.buf, req.plaintext_len);
  }
}

SessionKeys DeriveSessionKeys(
    std::span<const std::uint8_t> client_nonce,
    std::span<const std::uint8_t> server_nonce,
    std::span<const std::uint8_t> server_config_secret) {
  // Length-prefix each field (8 bytes little-endian, like Tag() frames
  // the AAD) so distinct (client_nonce, server_nonce, secret) splits of
  // the same concatenated bytes can never alias into one master secret.
  std::vector<std::uint8_t> master;
  master.reserve(client_nonce.size() + server_nonce.size() +
                 server_config_secret.size() + 24);
  const auto append_framed = [&master](std::span<const std::uint8_t> field) {
    for (int i = 0; i < 8; ++i) {
      master.push_back(static_cast<std::uint8_t>(field.size() >> (8 * i)));
    }
    master.insert(master.end(), field.begin(), field.end());
  };
  append_framed(client_nonce);
  append_framed(server_nonce);
  append_framed(server_config_secret);
  SessionKeys keys;
  keys.client_to_server = Kdf32(master, "client to server");
  keys.server_to_client = Kdf32(master, "server to client");
  return keys;
}

}  // namespace mpq::crypto
