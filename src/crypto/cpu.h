// Runtime CPU-feature dispatch for the crypto kernels. The only place in
// the repository allowed to name CPU features or use vendor intrinsics is
// src/crypto/ (enforced by the `mpq-simd-intrinsics` lint rule); everything
// above the AEAD sees one scalar-equivalent API whose implementation is
// selected here once per process.
//
// Selection order (highest wins): AVX2 (8 ChaCha blocks per call) >
// SSE2 (4 blocks) > scalar. A level is usable only if it was compiled in
// (the build can force scalar with -DMPQ_NO_SIMD=ON), the CPU reports it,
// and the environment does not veto it (MPQ_NO_SIMD=1 at runtime).
// Every level produces byte-identical output — cross-checked by
// tests/crypto_test.cc and the ci.sh no-SIMD cmp stage.
#pragma once

namespace mpq::crypto {

enum class SimdLevel { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Best level that is compiled in, supported by this CPU, and not vetoed
/// by MPQ_NO_SIMD=1 in the environment. Detected once, then cached.
SimdLevel MaxSimdLevel();

/// The level the kernels currently dispatch on: MaxSimdLevel() unless a
/// test lowered it with ForceSimdLevel.
SimdLevel ActiveSimdLevel();

/// Test hook: pin dispatch to `level` (clamped to MaxSimdLevel — forcing
/// a level the machine cannot run is silently capped, so equivalence
/// tests iterate 0..level without #ifdefs). Not thread-safe; call it only
/// from single-threaded test setup.
void ForceSimdLevel(SimdLevel level);

/// "scalar" | "sse2" | "avx2" — for bench/selftest labels.
const char* SimdLevelName(SimdLevel level);

}  // namespace mpq::crypto
