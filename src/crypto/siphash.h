// SipHash-2-4 (Aumasson & Bernstein), the keyed 64-bit PRF used for the
// AEAD authentication tag and for the toy key schedule. Verified against
// the reference test vectors in tests/crypto_test.cc.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mpq::crypto {

using SipHashKey = std::array<std::uint8_t, 16>;

/// 64-bit SipHash-2-4 of `data` under `key`.
std::uint64_t SipHash24(const SipHashKey& key,
                        std::span<const std::uint8_t> data);

}  // namespace mpq::crypto
