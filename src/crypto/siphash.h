// SipHash-2-4 (Aumasson & Bernstein), the keyed 64-bit PRF used for the
// AEAD authentication tag and for the toy key schedule. Verified against
// the reference test vectors in tests/crypto_test.cc.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mpq::crypto {

using SipHashKey = std::array<std::uint8_t, 16>;

/// 64-bit SipHash-2-4 of `data` under `key`.
std::uint64_t SipHash24(const SipHashKey& key,
                        std::span<const std::uint8_t> data);

/// Incremental SipHash-2-4: absorb a message in arbitrary chunks and
/// produce exactly the hash SipHash24 yields for their concatenation.
/// Lets the AEAD authenticate `nonce | aad_len | aad | ciphertext`
/// without first copying the parts into one contiguous buffer — the
/// per-packet allocation that used to dominate tag computation.
class SipHashState {
 public:
  explicit SipHashState(const SipHashKey& key);

  void Absorb(std::span<const std::uint8_t> data);

  /// Finish and return the hash. The state must not be reused afterwards.
  std::uint64_t Finalize();

 private:
  std::uint64_t v0_, v1_, v2_, v3_;
  std::uint64_t tail_ = 0;      // pending (< 8) bytes, little-endian packed
  std::size_t tail_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace mpq::crypto
