#include "crypto/siphash.h"

#include <bit>
#include <cstring>

namespace mpq::crypto {

namespace {

constexpr std::uint64_t Rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline std::uint64_t LoadLe64(const std::uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

inline void SipRound(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) {
  v0 += v1;
  v1 = Rotl64(v1, 13);
  v1 ^= v0;
  v0 = Rotl64(v0, 32);
  v2 += v3;
  v3 = Rotl64(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = Rotl64(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = Rotl64(v1, 17);
  v1 ^= v2;
  v2 = Rotl64(v2, 32);
}

}  // namespace

std::uint64_t SipHash24(const SipHashKey& key,
                        std::span<const std::uint8_t> data) {
  const std::uint64_t k0 = LoadLe64(key.data());
  const std::uint64_t k1 = LoadLe64(key.data() + 8);
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const std::size_t len = data.size();
  const std::size_t full_blocks = len / 8;
  for (std::size_t i = 0; i < full_blocks; ++i) {
    const std::uint64_t m = LoadLe64(data.data() + 8 * i);
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }

  // Final block: remaining bytes, little-endian, length in the top byte.
  std::uint64_t b = static_cast<std::uint64_t>(len & 0xFF) << 56;
  const std::size_t tail = len & 7;
  for (std::size_t i = 0; i < tail; ++i) {
    b |= static_cast<std::uint64_t>(data[full_blocks * 8 + i]) << (8 * i);
  }
  v3 ^= b;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xFF;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

SipHashState::SipHashState(const SipHashKey& key) {
  const std::uint64_t k0 = LoadLe64(key.data());
  const std::uint64_t k1 = LoadLe64(key.data() + 8);
  v0_ = 0x736f6d6570736575ULL ^ k0;
  v1_ = 0x646f72616e646f6dULL ^ k1;
  v2_ = 0x6c7967656e657261ULL ^ k0;
  v3_ = 0x7465646279746573ULL ^ k1;
}

void SipHashState::Absorb(std::span<const std::uint8_t> data) {
  total_len_ += data.size();
  std::size_t i = 0;

  // Top up a partial block left by a previous chunk.
  if (tail_len_ > 0) {
    while (tail_len_ < 8 && i < data.size()) {
      tail_ |= static_cast<std::uint64_t>(data[i++]) << (8 * tail_len_++);
    }
    if (tail_len_ < 8) return;
    v3_ ^= tail_;
    SipRound(v0_, v1_, v2_, v3_);
    SipRound(v0_, v1_, v2_, v3_);
    v0_ ^= tail_;
    tail_ = 0;
    tail_len_ = 0;
  }

  // Aligned full blocks straight from the input.
  for (; i + 8 <= data.size(); i += 8) {
    const std::uint64_t m = LoadLe64(data.data() + i);
    v3_ ^= m;
    SipRound(v0_, v1_, v2_, v3_);
    SipRound(v0_, v1_, v2_, v3_);
    v0_ ^= m;
  }

  for (; i < data.size(); ++i) {
    tail_ |= static_cast<std::uint64_t>(data[i]) << (8 * tail_len_++);
  }
}

std::uint64_t SipHashState::Finalize() {
  const std::uint64_t b =
      (static_cast<std::uint64_t>(total_len_ & 0xFF) << 56) | tail_;
  v3_ ^= b;
  SipRound(v0_, v1_, v2_, v3_);
  SipRound(v0_, v1_, v2_, v3_);
  v0_ ^= b;

  v2_ ^= 0xFF;
  SipRound(v0_, v1_, v2_, v3_);
  SipRound(v0_, v1_, v2_, v3_);
  SipRound(v0_, v1_, v2_, v3_);
  SipRound(v0_, v1_, v2_, v3_);
  return v0_ ^ v1_ ^ v2_ ^ v3_;
}

}  // namespace mpq::crypto
