#include "crypto/siphash.h"

namespace mpq::crypto {

namespace {

constexpr std::uint64_t Rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline std::uint64_t LoadLe64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

inline void SipRound(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) {
  v0 += v1;
  v1 = Rotl64(v1, 13);
  v1 ^= v0;
  v0 = Rotl64(v0, 32);
  v2 += v3;
  v3 = Rotl64(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = Rotl64(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = Rotl64(v1, 17);
  v1 ^= v2;
  v2 = Rotl64(v2, 32);
}

}  // namespace

std::uint64_t SipHash24(const SipHashKey& key,
                        std::span<const std::uint8_t> data) {
  const std::uint64_t k0 = LoadLe64(key.data());
  const std::uint64_t k1 = LoadLe64(key.data() + 8);
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const std::size_t len = data.size();
  const std::size_t full_blocks = len / 8;
  for (std::size_t i = 0; i < full_blocks; ++i) {
    const std::uint64_t m = LoadLe64(data.data() + 8 * i);
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }

  // Final block: remaining bytes, little-endian, length in the top byte.
  std::uint64_t b = static_cast<std::uint64_t>(len & 0xFF) << 56;
  const std::size_t tail = len & 7;
  for (std::size_t i = 0; i < tail; ++i) {
    b |= static_cast<std::uint64_t>(data[full_blocks * 8 + i]) << (8 * i);
  }
  v3 ^= b;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xFF;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

}  // namespace mpq::crypto
