// Packet protection for (MP)QUIC packets: a compact AEAD built from
// ChaCha20 (confidentiality) and SipHash-2-4 (64-bit authentication tag),
// plus the key schedule used by the simulated secure handshake.
//
// SECURITY CAVEAT (documented substitution, see DESIGN.md §1): this AEAD
// is a stand-in for QUIC crypto / TLS — it exercises the same code paths
// (key derivation, per-packet nonce construction, tag verification,
// ciphertext expansion) but is NOT a vetted AEAD construction and must
// not be used outside this simulator.
//
// The nonce construction implements the paper's §3 mitigation for nonce
// reuse across paths: the full 32-bit Path ID is mixed into the nonce
// together with the per-path packet number, so (path, packet number)
// pairs can never collide into the same nonce even though every path
// restarts its packet numbers at 1.
//
// Hot-path shape: seal and open walk each packet buffer once — the
// ChaCha20 XOR (SIMD multi-block, crypto/cpu.h) and the SipHash tag
// absorb are fused chunk by chunk so the ciphertext is hashed while it
// is still cache-hot. SealN/OpenN batch N packets per call for the
// burst-oriented datapath (quic/assembler.h, quic/server.h).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "crypto/chacha20.h"
#include "crypto/siphash.h"

namespace mpq::crypto {

/// Bytes of ciphertext expansion per packet.
inline constexpr std::size_t kAeadTagSize = 8;

/// Derive 32 bytes from `secret` bound to `label` (toy KDF: SipHash-2-4 in
/// counter mode, keyed by the first half of the secret).
std::array<std::uint8_t, 32> Kdf32(std::span<const std::uint8_t> secret,
                                   std::string_view label);

/// One packet of a SealN batch: on entry the first
/// `buf.size() - kAeadTagSize` bytes hold the plaintext; on return they
/// hold the ciphertext and the last kAeadTagSize bytes the tag.
/// Identical semantics to SealInPlace. `buf` must not overlap `aad`.
struct SealRequest {
  PathId path{};
  PacketNumber pn{};
  std::span<const std::uint8_t> aad;
  std::span<std::uint8_t> buf;
};

/// One packet of an OpenN batch: `buf` holds ciphertext | tag. On
/// success `ok` is true, the ciphertext is decrypted in place and
/// `plaintext_len` receives buf.size() - kAeadTagSize; on failure `ok`
/// is false and `buf` is left exactly as passed (same contract as
/// OpenInPlace).
struct OpenRequest {
  PathId path{};
  PacketNumber pn{};
  std::span<const std::uint8_t> aad;
  std::span<std::uint8_t> buf;
  std::size_t plaintext_len = 0;
  bool ok = false;
};

/// One direction of packet protection.
class PacketProtection {
 public:
  /// `key` is the 32-byte directional key from the key schedule; the tag
  /// key is derived from it internally.
  explicit PacketProtection(const ChaChaKey& key);

  /// Encrypt `plaintext` and append the tag. `aad` is the unencrypted
  /// public header, which is thereby authenticated (QUIC property:
  /// middleboxes cannot modify even the visible header fields).
  std::vector<std::uint8_t> Seal(PathId path, PacketNumber pn,
                                 std::span<const std::uint8_t> aad,
                                 std::span<const std::uint8_t> plaintext) const;

  /// Verify and decrypt into `out` (a reused scratch vector — its capacity
  /// is recycled across packets). Returns false on a bad tag or truncated
  /// input; callers drop the packet. On failure `out`'s contents are
  /// unspecified (the fused walk decrypts while it authenticates).
  bool Open(PathId path, PacketNumber pn, std::span<const std::uint8_t> aad,
            std::span<const std::uint8_t> sealed,
            std::vector<std::uint8_t>& out) const;

  /// Zero-allocation seal over a caller-provided buffer: on entry the
  /// first `buf.size() - kAeadTagSize` bytes hold the plaintext; on return
  /// they hold the ciphertext and the last kAeadTagSize bytes the tag.
  /// Produces byte-identical output to Seal. `buf` must not overlap `aad`.
  /// Precondition: buf.size() >= kAeadTagSize.
  void SealInPlace(PathId path, PacketNumber pn,
                   std::span<const std::uint8_t> aad,
                   std::span<std::uint8_t> buf) const;

  /// Zero-allocation open: `buf` holds ciphertext | tag. Verifies the tag
  /// while decrypting (fused walk), leaving the plaintext in place;
  /// `plaintext_len` receives buf.size() - kAeadTagSize. Returns false on
  /// a bad tag or truncated input — the buffer is then restored to
  /// exactly the bytes the caller passed (a failed decrypt never leaks
  /// keystream).
  bool OpenInPlace(PathId path, PacketNumber pn,
                   std::span<const std::uint8_t> aad,
                   std::span<std::uint8_t> buf,
                   std::size_t& plaintext_len) const;

  /// Batched seal: seal every request in order, equivalent to calling
  /// SealInPlace per entry. One call per transmit burst amortizes the
  /// dispatch overhead across the burst (quic/assembler.h).
  void SealN(std::span<SealRequest> requests) const;

  /// Batched open: open every request in order, equivalent to calling
  /// OpenInPlace per entry; per-packet verdicts land in OpenRequest::ok.
  void OpenN(std::span<OpenRequest> requests) const;

 private:
  ChaChaNonce MakeNonce(PathId path, PacketNumber pn) const;
  std::uint64_t Tag(const ChaChaNonce& nonce,
                    std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> ciphertext) const;
  void SealOne(PathId path, PacketNumber pn,
               std::span<const std::uint8_t> aad,
               std::span<std::uint8_t> buf) const;
  bool OpenOne(PathId path, PacketNumber pn,
               std::span<const std::uint8_t> aad, std::span<std::uint8_t> buf,
               std::size_t& plaintext_len) const;

  ChaChaKey cipher_key_;
  SipHashKey tag_key_;
};

/// Directional key pair for one connection.
struct SessionKeys {
  ChaChaKey client_to_server;
  ChaChaKey server_to_client;
};

/// Compute the session keys both ends derive at the end of the simulated
/// 1-RTT handshake. `server_config_secret` models the out-of-band server
/// config of Google-QUIC's low-latency handshake (both ends know it);
/// the two nonces are the fresh randomness exchanged in CHLO/SHLO. Each
/// input is length-prefixed before hashing, so different splits of the
/// same concatenated bytes yield different master secrets.
SessionKeys DeriveSessionKeys(std::span<const std::uint8_t> client_nonce,
                              std::span<const std::uint8_t> server_nonce,
                              std::span<const std::uint8_t> server_config_secret);

}  // namespace mpq::crypto
