// AVX2 8-block ChaCha20 kernel: vertical vectorization — ymm register i
// holds word i of eight consecutive keystream blocks (blocks c..c+3 in
// the low 128-bit lane, c+4..c+7 in the high lane). The 16/8-bit
// rotations use the byte shuffle unit (_mm256_shuffle_epi8), the others
// shift+or; uint32 lane arithmetic wraps exactly like the scalar loop,
// so the output is byte-identical to XorBlocksScalar (tests + ci.sh
// enforce it).
//
// This file is compiled with -mavx2 and only when the toolchain supports
// it; chacha20.cc dispatches here at runtime (crypto/cpu.h).
#if defined(MPQ_HAVE_AVX2)

#include <immintrin.h>

#include "crypto/chacha20_impl.h"

namespace mpq::crypto::internal {

namespace {

inline __m256i Rot16(__m256i x) {
  const __m256i mask = _mm256_set_epi8(
      13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2,
      13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2);
  return _mm256_shuffle_epi8(x, mask);
}

inline __m256i Rot8(__m256i x) {
  const __m256i mask = _mm256_set_epi8(
      14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3,
      14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3);
  return _mm256_shuffle_epi8(x, mask);
}

inline __m256i Rotl(__m256i x, int k) {
  return _mm256_or_si256(_mm256_slli_epi32(x, k),
                         _mm256_srli_epi32(x, 32 - k));
}

inline void QuarterRound(__m256i& a, __m256i& b, __m256i& c, __m256i& d) {
  a = _mm256_add_epi32(a, b);
  d = Rot16(_mm256_xor_si256(d, a));
  c = _mm256_add_epi32(c, d);
  b = Rotl(_mm256_xor_si256(b, c), 12);
  a = _mm256_add_epi32(a, b);
  d = Rot8(_mm256_xor_si256(d, a));
  c = _mm256_add_epi32(c, d);
  b = Rotl(_mm256_xor_si256(b, c), 7);
}

inline void XorRow(std::uint8_t* p, __m256i row) {
  const __m256i data =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p),
                      _mm256_xor_si256(data, row));
}

}  // namespace

void ChaCha20XorBlocksAvx2(const std::uint32_t state[16], std::uint8_t* data,
                           std::size_t blocks) {
  const __m256i lane_offsets = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (std::size_t done = 0; done < blocks; done += 8) {
    __m256i init[16];
    for (int i = 0; i < 16; ++i) {
      init[i] = _mm256_set1_epi32(static_cast<int>(state[i]));
    }
    init[12] = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(
            state[12] + static_cast<std::uint32_t>(done))),
        lane_offsets);

    __m256i v[16];
    for (int i = 0; i < 16; ++i) v[i] = init[i];
    for (int round = 0; round < 10; ++round) {
      QuarterRound(v[0], v[4], v[8], v[12]);
      QuarterRound(v[1], v[5], v[9], v[13]);
      QuarterRound(v[2], v[6], v[10], v[14]);
      QuarterRound(v[3], v[7], v[11], v[15]);
      QuarterRound(v[0], v[5], v[10], v[15]);
      QuarterRound(v[1], v[6], v[11], v[12]);
      QuarterRound(v[2], v[7], v[8], v[13]);
      QuarterRound(v[3], v[4], v[9], v[14]);
    }
    for (int i = 0; i < 16; ++i) v[i] = _mm256_add_epi32(v[i], init[i]);

    // Transpose each 4-word group within the 128-bit lanes (giving one
    // block's 16-byte row per lane), then splice lanes pairwise so each
    // 32-byte store covers half a block's keystream contiguously.
    __m256i rows[4][4];  // rows[g][b]: block b (lane 0) / b+4 (lane 1)
    for (int g = 0; g < 4; ++g) {
      const __m256i t0 = _mm256_unpacklo_epi32(v[4 * g], v[4 * g + 1]);
      const __m256i t1 = _mm256_unpacklo_epi32(v[4 * g + 2], v[4 * g + 3]);
      const __m256i t2 = _mm256_unpackhi_epi32(v[4 * g], v[4 * g + 1]);
      const __m256i t3 = _mm256_unpackhi_epi32(v[4 * g + 2], v[4 * g + 3]);
      rows[g][0] = _mm256_unpacklo_epi64(t0, t1);
      rows[g][1] = _mm256_unpackhi_epi64(t0, t1);
      rows[g][2] = _mm256_unpacklo_epi64(t2, t3);
      rows[g][3] = _mm256_unpackhi_epi64(t2, t3);
    }
    std::uint8_t* base = data + done * 64;
    for (int b = 0; b < 4; ++b) {
      XorRow(base + b * 64,
             _mm256_permute2x128_si256(rows[0][b], rows[1][b], 0x20));
      XorRow(base + b * 64 + 32,
             _mm256_permute2x128_si256(rows[2][b], rows[3][b], 0x20));
      XorRow(base + (b + 4) * 64,
             _mm256_permute2x128_si256(rows[0][b], rows[1][b], 0x31));
      XorRow(base + (b + 4) * 64 + 32,
             _mm256_permute2x128_si256(rows[2][b], rows[3][b], 0x31));
    }
  }
}

}  // namespace mpq::crypto::internal

#endif  // MPQ_HAVE_AVX2
