#include "crypto/cpu.h"

#include <cstdlib>

namespace mpq::crypto {

namespace {

SimdLevel DetectMaxLevel() {
  if (const char* env = std::getenv("MPQ_NO_SIMD");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    return SimdLevel::kScalar;
  }
  SimdLevel level = SimdLevel::kScalar;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  __builtin_cpu_init();
#if defined(MPQ_HAVE_SSE2)
  if (__builtin_cpu_supports("sse2")) level = SimdLevel::kSse2;
#endif
#if defined(MPQ_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) level = SimdLevel::kAvx2;
#endif
#endif
  return level;
}

SimdLevel& ForcedLevel() {
  static SimdLevel forced = MaxSimdLevel();
  return forced;
}

}  // namespace

SimdLevel MaxSimdLevel() {
  static const SimdLevel max = DetectMaxLevel();
  return max;
}

SimdLevel ActiveSimdLevel() { return ForcedLevel(); }

void ForceSimdLevel(SimdLevel level) {
  ForcedLevel() = level <= MaxSimdLevel() ? level : MaxSimdLevel();
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace mpq::crypto
