#include "crypto/chacha20.h"

#include <bit>
#include <cstring>

#include "crypto/chacha20_impl.h"
#include "crypto/cpu.h"

namespace mpq::crypto {

namespace {

constexpr std::uint32_t Rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

inline void QuarterRound(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                         std::uint32_t& d) {
  a += b;
  d = Rotl32(d ^ a, 16);
  c += d;
  b = Rotl32(b ^ c, 12);
  a += b;
  d = Rotl32(d ^ a, 8);
  c += d;
  b = Rotl32(b ^ c, 7);
}

inline std::uint32_t LoadLe32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | std::uint32_t{p[1]} << 8 |
         std::uint32_t{p[2]} << 16 | std::uint32_t{p[3]} << 24;
}

inline void StoreLe32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void InitState(std::uint32_t state[16], const ChaChaKey& key,
                      std::uint32_t counter, const ChaChaNonce& nonce) {
  // RFC 8439 §2.3: constants | key | counter | nonce.
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = LoadLe32(&key[4 * i]);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = LoadLe32(&nonce[4 * i]);
}

/// Scalar fallback: XOR `blocks` full keystream blocks into `data`,
/// starting at state[12]; the caller advances the counter.
void XorBlocksScalar(const std::uint32_t state[16], std::uint8_t* data,
                     std::size_t blocks) {
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint32_t working[16];
    std::memcpy(working, state, 16 * sizeof(std::uint32_t));
    working[12] = state[12] + static_cast<std::uint32_t>(b);
    for (int round = 0; round < 10; ++round) {
      QuarterRound(working[0], working[4], working[8], working[12]);
      QuarterRound(working[1], working[5], working[9], working[13]);
      QuarterRound(working[2], working[6], working[10], working[14]);
      QuarterRound(working[3], working[7], working[11], working[15]);
      QuarterRound(working[0], working[5], working[10], working[15]);
      QuarterRound(working[1], working[6], working[11], working[12]);
      QuarterRound(working[2], working[7], working[8], working[13]);
      QuarterRound(working[3], working[4], working[9], working[14]);
    }
    std::uint8_t* p = data + b * kChaChaBlockSize;
    for (int i = 0; i < 16; ++i) {
      std::uint32_t ks = working[i] + state[i];
      if (i == 12) ks = working[12] + state[12] + static_cast<std::uint32_t>(b);
      // XOR the keystream into the data word by word, without serializing
      // it to a byte array first. On a little-endian host the native word
      // layout *is* the RFC 8439 serialization.
      if constexpr (std::endian::native == std::endian::little) {
        std::uint32_t word;
        std::memcpy(&word, p + 4 * i, sizeof(word));
        word ^= ks;
        std::memcpy(p + 4 * i, &word, sizeof(word));
      } else {
        p[4 * i] ^= static_cast<std::uint8_t>(ks);
        p[4 * i + 1] ^= static_cast<std::uint8_t>(ks >> 8);
        p[4 * i + 2] ^= static_cast<std::uint8_t>(ks >> 16);
        p[4 * i + 3] ^= static_cast<std::uint8_t>(ks >> 24);
      }
    }
  }
}

}  // namespace

void ChaCha20Block(const ChaChaKey& key, std::uint32_t counter,
                   const ChaChaNonce& nonce,
                   std::array<std::uint8_t, kChaChaBlockSize>& out) {
  std::uint32_t state[16];
  InitState(state, key, counter, nonce);

  std::uint32_t working[16];
  std::memcpy(working, state, sizeof(state));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(working[0], working[4], working[8], working[12]);
    QuarterRound(working[1], working[5], working[9], working[13]);
    QuarterRound(working[2], working[6], working[10], working[14]);
    QuarterRound(working[3], working[7], working[11], working[15]);
    QuarterRound(working[0], working[5], working[10], working[15]);
    QuarterRound(working[1], working[6], working[11], working[12]);
    QuarterRound(working[2], working[7], working[8], working[13]);
    QuarterRound(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    StoreLe32(&out[4 * i], working[i] + state[i]);
  }
}

void ChaCha20Init(ChaCha20Ctx& ctx, const ChaChaKey& key,
                  std::uint32_t counter, const ChaChaNonce& nonce) {
  InitState(ctx.state, key, counter, nonce);
}

void ChaCha20XorUpdate(ChaCha20Ctx& ctx, std::span<std::uint8_t> data) {
  std::size_t blocks = data.size() / kChaChaBlockSize;
  std::uint8_t* p = data.data();
  const SimdLevel level = ActiveSimdLevel();

#if defined(MPQ_HAVE_AVX2)
  if (level >= SimdLevel::kAvx2 && blocks >= 8) {
    const std::size_t n = blocks & ~std::size_t{7};
    internal::ChaCha20XorBlocksAvx2(ctx.state, p, n);
    ctx.state[12] += static_cast<std::uint32_t>(n);
    p += n * kChaChaBlockSize;
    blocks -= n;
  }
#endif
#if defined(MPQ_HAVE_SSE2)
  if (level >= SimdLevel::kSse2 && blocks >= 4) {
    const std::size_t n = blocks & ~std::size_t{3};
    internal::ChaCha20XorBlocksSse2(ctx.state, p, n);
    ctx.state[12] += static_cast<std::uint32_t>(n);
    p += n * kChaChaBlockSize;
    blocks -= n;
  }
#endif
  (void)level;
  if (blocks > 0) {
    XorBlocksScalar(ctx.state, p, blocks);
    ctx.state[12] += static_cast<std::uint32_t>(blocks);
    p += blocks * kChaChaBlockSize;
  }

  // Trailing partial block (only legal as the end of the stream).
  const std::size_t tail = data.size() % kChaChaBlockSize;
  if (tail > 0) {
    std::uint32_t working[16];
    std::memcpy(working, ctx.state, sizeof(working));
    for (int round = 0; round < 10; ++round) {
      QuarterRound(working[0], working[4], working[8], working[12]);
      QuarterRound(working[1], working[5], working[9], working[13]);
      QuarterRound(working[2], working[6], working[10], working[14]);
      QuarterRound(working[3], working[7], working[11], working[15]);
      QuarterRound(working[0], working[5], working[10], working[15]);
      QuarterRound(working[1], working[6], working[11], working[12]);
      QuarterRound(working[2], working[7], working[8], working[13]);
      QuarterRound(working[3], working[4], working[9], working[14]);
    }
    for (std::size_t i = 0; i < tail; ++i) {
      const std::uint32_t ks = working[i / 4] + ctx.state[i / 4];
      p[i] ^= static_cast<std::uint8_t>(ks >> (8 * (i % 4)));
    }
    ctx.state[12] += 1;
  }
}

void ChaCha20Xor(const ChaChaKey& key, std::uint32_t initial_counter,
                 const ChaChaNonce& nonce, std::span<std::uint8_t> data) {
  ChaCha20Ctx ctx;
  ChaCha20Init(ctx, key, initial_counter, nonce);
  ChaCha20XorUpdate(ctx, data);
}

}  // namespace mpq::crypto
