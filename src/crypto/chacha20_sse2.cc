// SSE2 4-block ChaCha20 kernel: vertical vectorization — xmm register i
// holds word i of four consecutive keystream blocks, so the 20 rounds run
// on all four blocks at once with plain 32-bit lane adds/xors/shifts.
// uint32 lane arithmetic wraps exactly like the scalar loop, so the
// output is byte-identical to XorBlocksScalar (tests + ci.sh enforce it).
//
// This file is compiled with -msse2 and only when the toolchain supports
// it; chacha20.cc dispatches here at runtime (crypto/cpu.h).
#if defined(MPQ_HAVE_SSE2)

#include <emmintrin.h>

#include "crypto/chacha20_impl.h"

namespace mpq::crypto::internal {

namespace {

inline __m128i Rotl(__m128i x, int k) {
  return _mm_or_si128(_mm_slli_epi32(x, k), _mm_srli_epi32(x, 32 - k));
}

inline void QuarterRound(__m128i& a, __m128i& b, __m128i& c, __m128i& d) {
  a = _mm_add_epi32(a, b);
  d = Rotl(_mm_xor_si128(d, a), 16);
  c = _mm_add_epi32(c, d);
  b = Rotl(_mm_xor_si128(b, c), 12);
  a = _mm_add_epi32(a, b);
  d = Rotl(_mm_xor_si128(d, a), 8);
  c = _mm_add_epi32(c, d);
  b = Rotl(_mm_xor_si128(b, c), 7);
}

inline void XorRow(std::uint8_t* p, __m128i row) {
  const __m128i data =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p),
                   _mm_xor_si128(data, row));
}

}  // namespace

void ChaCha20XorBlocksSse2(const std::uint32_t state[16], std::uint8_t* data,
                           std::size_t blocks) {
  const __m128i lane_offsets = _mm_setr_epi32(0, 1, 2, 3);
  for (std::size_t done = 0; done < blocks; done += 4) {
    __m128i init[16];
    for (int i = 0; i < 16; ++i) {
      init[i] = _mm_set1_epi32(static_cast<int>(state[i]));
    }
    init[12] = _mm_add_epi32(
        _mm_set1_epi32(static_cast<int>(
            state[12] + static_cast<std::uint32_t>(done))),
        lane_offsets);

    __m128i v[16];
    for (int i = 0; i < 16; ++i) v[i] = init[i];
    for (int round = 0; round < 10; ++round) {
      QuarterRound(v[0], v[4], v[8], v[12]);
      QuarterRound(v[1], v[5], v[9], v[13]);
      QuarterRound(v[2], v[6], v[10], v[14]);
      QuarterRound(v[3], v[7], v[11], v[15]);
      QuarterRound(v[0], v[5], v[10], v[15]);
      QuarterRound(v[1], v[6], v[11], v[12]);
      QuarterRound(v[2], v[7], v[8], v[13]);
      QuarterRound(v[3], v[4], v[9], v[14]);
    }
    for (int i = 0; i < 16; ++i) v[i] = _mm_add_epi32(v[i], init[i]);

    // Transpose each 4-word group: v[4g..4g+3] hold word columns; the
    // unpack pairs yield one 16-byte row per block, landing at byte
    // offset 16*g of that block's 64-byte keystream.
    std::uint8_t* base = data + done * 64;
    for (int g = 0; g < 4; ++g) {
      const __m128i t0 = _mm_unpacklo_epi32(v[4 * g], v[4 * g + 1]);
      const __m128i t1 = _mm_unpacklo_epi32(v[4 * g + 2], v[4 * g + 3]);
      const __m128i t2 = _mm_unpackhi_epi32(v[4 * g], v[4 * g + 1]);
      const __m128i t3 = _mm_unpackhi_epi32(v[4 * g + 2], v[4 * g + 3]);
      XorRow(base + 0 * 64 + 16 * g, _mm_unpacklo_epi64(t0, t1));
      XorRow(base + 1 * 64 + 16 * g, _mm_unpackhi_epi64(t0, t1));
      XorRow(base + 2 * 64 + 16 * g, _mm_unpacklo_epi64(t2, t3));
      XorRow(base + 3 * 64 + 16 * g, _mm_unpackhi_epi64(t2, t3));
    }
  }
}

}  // namespace mpq::crypto::internal

#endif  // MPQ_HAVE_SSE2
