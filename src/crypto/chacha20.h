// ChaCha20 stream cipher (RFC 8439 block function), used as the bulk
// cipher of this repository's lightweight AEAD (see aead.h for the
// security caveat). Verified against the RFC 8439 test vectors in
// tests/crypto_test.cc.
//
// The XOR path is vectorized: runtime CPU dispatch (crypto/cpu.h) picks
// an AVX2 8-block or SSE2 4-block kernel, falling back to the scalar
// single-block loop. Every level is byte-identical — the vector kernels
// compute the same 32-bit additions/rotations lane-wise, and uint32
// wraparound is identical in scalar and SIMD registers.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mpq::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;
inline constexpr std::size_t kChaChaBlockSize = 64;

using ChaChaKey = std::array<std::uint8_t, kChaChaKeySize>;
using ChaChaNonce = std::array<std::uint8_t, kChaChaNonceSize>;

/// Compute one 64-byte keystream block (RFC 8439 §2.3).
void ChaCha20Block(const ChaChaKey& key, std::uint32_t counter,
                   const ChaChaNonce& nonce,
                   std::array<std::uint8_t, kChaChaBlockSize>& out);

/// Streaming XOR context: the 16-word RFC 8439 state, set up once per
/// message so the AEAD can interleave cipher and tag work chunk by chunk
/// (the fused seal/open walk in aead.cc) without re-expanding the key.
struct ChaCha20Ctx {
  std::uint32_t state[16];
};

/// Initialize `ctx` from key/counter/nonce (RFC 8439 §2.3 state layout).
void ChaCha20Init(ChaCha20Ctx& ctx, const ChaChaKey& key,
                  std::uint32_t counter, const ChaChaNonce& nonce);

/// XOR `data` in place with the next keystream bytes, advancing the block
/// counter. Every call but the last must pass a multiple of
/// kChaChaBlockSize bytes (a partial block ends the stream: the counter
/// still advances past it, so only the final call may be partial).
void ChaCha20XorUpdate(ChaCha20Ctx& ctx, std::span<std::uint8_t> data);

/// XOR `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter` (RFC 8439 §2.4). Encryption and decryption are the
/// same operation. Equivalent to ChaCha20Init + one ChaCha20XorUpdate.
void ChaCha20Xor(const ChaChaKey& key, std::uint32_t initial_counter,
                 const ChaChaNonce& nonce, std::span<std::uint8_t> data);

}  // namespace mpq::crypto
