// ChaCha20 stream cipher (RFC 8439 block function), used as the bulk
// cipher of this repository's lightweight AEAD (see aead.h for the
// security caveat). Verified against the RFC 8439 test vectors in
// tests/crypto_test.cc.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mpq::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;
inline constexpr std::size_t kChaChaBlockSize = 64;

using ChaChaKey = std::array<std::uint8_t, kChaChaKeySize>;
using ChaChaNonce = std::array<std::uint8_t, kChaChaNonceSize>;

/// Compute one 64-byte keystream block (RFC 8439 §2.3).
void ChaCha20Block(const ChaChaKey& key, std::uint32_t counter,
                   const ChaChaNonce& nonce,
                   std::array<std::uint8_t, kChaChaBlockSize>& out);

/// XOR `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter` (RFC 8439 §2.4). Encryption and decryption are the
/// same operation.
void ChaCha20Xor(const ChaChaKey& key, std::uint32_t initial_counter,
                 const ChaChaNonce& nonce, std::span<std::uint8_t> data);

}  // namespace mpq::crypto
