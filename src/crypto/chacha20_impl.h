// Internal contract between the ChaCha20 dispatcher (chacha20.cc) and the
// per-ISA multi-block kernels (chacha20_sse2.cc / chacha20_avx2.cc). Not
// installed outside src/crypto.
//
// A kernel XORs `blocks` consecutive 64-byte keystream blocks into `data`,
// starting at the block counter in state[12]; `blocks` is always a
// multiple of the kernel's lane width (4 for SSE2, 8 for AVX2). The caller
// advances state[12] afterwards. state is the RFC 8439 layout:
// constants | key | counter | nonce, one 32-bit word each.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mpq::crypto::internal {

#if defined(MPQ_HAVE_SSE2)
void ChaCha20XorBlocksSse2(const std::uint32_t state[16], std::uint8_t* data,
                           std::size_t blocks);
#endif

#if defined(MPQ_HAVE_AVX2)
void ChaCha20XorBlocksAvx2(const std::uint32_t state[16], std::uint8_t* data,
                           std::size_t blocks);
#endif

}  // namespace mpq::crypto::internal
