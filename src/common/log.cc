#include "common/log.h"

#include <cstdarg>

namespace mpq {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace detail {

void LogLine(LogLevel level, TimePoint now, std::string_view component,
             const char* fmt, ...) {
  char message[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(message, sizeof(message), fmt, args);
  va_end(args);
  if (now >= 0) {
    std::fprintf(stderr, "[%s %10.6fs %.*s] %s\n", LevelName(level),
                 DurationToSeconds(now), static_cast<int>(component.size()),
                 component.data(), message);
  } else {
    std::fprintf(stderr, "[%s %.*s] %s\n", LevelName(level),
                 static_cast<int>(component.size()), component.data(),
                 message);
  }
}

}  // namespace detail
}  // namespace mpq
