// Tagged integer wrappers for protocol identifiers and quantities.
//
// The multipath design gives every path its own packet-number space and
// labels packets, ACKs and nonces with a Path ID (paper §3). That makes
// "PacketNumber from path A used with path B's state" and "StreamId
// passed where a PathId was meant" a silent-corruption bug class when the
// identifiers are plain integer aliases — the compiler accepts every mix.
// Strong<> turns each identifier kind into its own type:
//
//   * construction from raw integers is explicit (`PathId{0}`),
//   * assignment/arithmetic/comparison across kinds is a compile error,
//   * same-kind arithmetic and comparison against integer literals keep
//     their natural spelling (`pn + 1`, `bytes += n`, `id == 0`),
//   * `.value()` is the single, searchable escape hatch to the raw
//     representation (wire encoding, printf-style logging, indexing).
//
// tests/strong_types_negcompile.cc proves the forbidden mixes no longer
// compile; docs/STATIC_ANALYSIS.md describes the conventions.
#pragma once

#include <compare>
#include <cstddef>
#include <functional>
#include <limits>
#include <type_traits>

namespace mpq {

template <typename T>
concept RawArithmetic = std::is_arithmetic_v<T>;

template <typename T>
concept RawIntegral = std::is_integral_v<T>;

template <typename TagT, typename RepT>
class Strong {
  static_assert(std::is_integral_v<RepT> && std::is_unsigned_v<RepT>,
                "Strong<> wraps unsigned integer representations");

 public:
  using Tag = TagT;
  using Rep = RepT;

  /// Zero-initialises, so `PathId id;` and `PathId id{};` both mean 0 —
  /// matching the `= 0` member defaults the raw aliases had.
  constexpr Strong() = default;

  template <RawArithmetic T>
  constexpr explicit Strong(T v) : v_(static_cast<RepT>(v)) {}

  constexpr RepT value() const { return v_; }

  /// Explicit conversion to any arithmetic type: enables
  /// `static_cast<double>(bytes)` at measurement boundaries.
  template <RawArithmetic T>
  constexpr explicit operator T() const {
    return static_cast<T>(v_);
  }

  // -- comparison ---------------------------------------------------------
  friend constexpr bool operator==(Strong a, Strong b) = default;
  friend constexpr auto operator<=>(Strong a, Strong b) = default;

  /// Comparison against raw integers (mostly literals: `pn == 0`). A
  /// different Strong kind is still a compile error — it is not integral.
  template <RawIntegral T>
  friend constexpr bool operator==(Strong a, T b) {
    return a.v_ == static_cast<RepT>(b);
  }
  template <RawIntegral T>
  friend constexpr auto operator<=>(Strong a, T b) {
    return a.v_ <=> static_cast<RepT>(b);
  }

  // -- same-kind arithmetic ----------------------------------------------
  constexpr Strong& operator+=(Strong o) {
    v_ = static_cast<RepT>(v_ + o.v_);
    return *this;
  }
  constexpr Strong& operator-=(Strong o) {
    v_ = static_cast<RepT>(v_ - o.v_);
    return *this;
  }
  friend constexpr Strong operator+(Strong a, Strong b) {
    return Strong(static_cast<RepT>(a.v_ + b.v_));
  }
  friend constexpr Strong operator-(Strong a, Strong b) {
    return Strong(static_cast<RepT>(a.v_ - b.v_));
  }
  /// Ratio of two like quantities is a raw number.
  friend constexpr RepT operator/(Strong a, Strong b) { return a.v_ / b.v_; }

  // -- arithmetic with raw integers --------------------------------------
  template <RawIntegral T>
  constexpr Strong& operator+=(T b) {
    v_ = static_cast<RepT>(v_ + static_cast<RepT>(b));
    return *this;
  }
  template <RawIntegral T>
  constexpr Strong& operator-=(T b) {
    v_ = static_cast<RepT>(v_ - static_cast<RepT>(b));
    return *this;
  }
  template <RawIntegral T>
  friend constexpr Strong operator+(Strong a, T b) {
    return Strong(static_cast<RepT>(a.v_ + static_cast<RepT>(b)));
  }
  template <RawIntegral T>
  friend constexpr Strong operator+(T a, Strong b) {
    return b + a;
  }
  template <RawIntegral T>
  friend constexpr Strong operator-(Strong a, T b) {
    return Strong(static_cast<RepT>(a.v_ - static_cast<RepT>(b)));
  }
  template <RawIntegral T>
  constexpr Strong& operator*=(T b) {
    v_ = static_cast<RepT>(v_ * static_cast<RepT>(b));
    return *this;
  }
  template <RawIntegral T>
  constexpr Strong& operator/=(T b) {
    v_ = static_cast<RepT>(v_ / static_cast<RepT>(b));
    return *this;
  }
  template <RawIntegral T>
  friend constexpr Strong operator*(Strong a, T b) {
    return Strong(static_cast<RepT>(a.v_ * static_cast<RepT>(b)));
  }
  template <RawIntegral T>
  friend constexpr Strong operator*(T a, Strong b) {
    return b * a;
  }
  template <RawIntegral T>
  friend constexpr Strong operator/(Strong a, T b) {
    return Strong(static_cast<RepT>(a.v_ / static_cast<RepT>(b)));
  }
  template <RawIntegral T>
  friend constexpr Strong operator%(Strong a, T b) {
    return Strong(static_cast<RepT>(a.v_ % static_cast<RepT>(b)));
  }

  constexpr Strong& operator++() {
    v_ = static_cast<RepT>(v_ + 1);
    return *this;
  }
  constexpr Strong operator++(int) {
    Strong old = *this;
    ++*this;
    return old;
  }
  constexpr Strong& operator--() {
    v_ = static_cast<RepT>(v_ - 1);
    return *this;
  }
  constexpr Strong operator--(int) {
    Strong old = *this;
    --*this;
    return old;
  }

 private:
  RepT v_ = 0;
};

}  // namespace mpq

/// Strong ids work as unordered keys out of the box.
template <typename Tag, typename Rep>
struct std::hash<mpq::Strong<Tag, Rep>> {
  std::size_t operator()(mpq::Strong<Tag, Rep> v) const noexcept {
    return std::hash<Rep>{}(v.value());
  }
};

/// numeric_limits carries over from the representation, so idioms like
/// `std::numeric_limits<ByteCount>::max()` keep working.
template <typename Tag, typename Rep>
struct std::numeric_limits<mpq::Strong<Tag, Rep>> {
  static constexpr bool is_specialized = true;
  static constexpr bool is_integer = true;
  static constexpr bool is_signed = std::numeric_limits<Rep>::is_signed;
  static constexpr mpq::Strong<Tag, Rep> min() noexcept {
    return mpq::Strong<Tag, Rep>(std::numeric_limits<Rep>::min());
  }
  static constexpr mpq::Strong<Tag, Rep> max() noexcept {
    return mpq::Strong<Tag, Rep>(std::numeric_limits<Rep>::max());
  }
  static constexpr mpq::Strong<Tag, Rep> lowest() noexcept { return min(); }
};
