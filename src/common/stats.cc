#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mpq {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

double Median(std::vector<double> values) {
  return Percentile(std::move(values), 50.0);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(values.size());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    cdf.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

double FractionAbove(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : values)
    if (v > threshold) ++count;
  return static_cast<double>(count) / static_cast<double>(values.size());
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = Percentile(sorted, 25.0);
  s.median = Percentile(sorted, 50.0);
  s.p75 = Percentile(sorted, 75.0);
  s.mean = Mean(sorted);
  return s;
}

std::string FormatSummary(const Summary& s) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.3f p25=%.3f med=%.3f p75=%.3f max=%.3f "
                "mean=%.3f",
                s.count, s.min, s.p25, s.median, s.p75, s.max, s.mean);
  return buf;
}

}  // namespace mpq
