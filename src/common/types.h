// Core scalar types shared by every module.
//
// All simulated time is kept in integer microseconds. Using an integer (and
// never a floating-point duration) keeps the discrete-event simulator exactly
// deterministic across platforms and optimisation levels.
#pragma once

#include <cstdint>
#include <limits>

#include "common/strong.h"

namespace mpq {

/// Absolute simulated time in microseconds since the start of the simulation.
using TimePoint = std::int64_t;

/// Relative simulated duration in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1'000'000;

/// Sentinel "no deadline / not set" time.
inline constexpr TimePoint kTimeInfinite =
    std::numeric_limits<TimePoint>::max();

/// Convert a floating-point number of seconds to a Duration, rounding to the
/// nearest microsecond. Only used at configuration boundaries (scenario
/// files use seconds / milliseconds); the datapath never touches doubles.
constexpr Duration SecondsToDuration(double seconds) {
  return static_cast<Duration>(seconds * static_cast<double>(kSecond) + 0.5);
}

constexpr double DurationToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr Duration MillisToDuration(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond) + 0.5);
}

// The four protocol identifiers below are tagged wrapper types (see
// common/strong.h): constructing one from a raw integer is explicit, and
// mixing kinds (assigning a StreamId where a PathId is expected, adding a
// PacketNumber to a ByteCount, comparing across kinds) is a compile
// error. `.value()` yields the raw representation for wire encoding,
// logging and indexing.

/// Identifies one end-to-end path of a multipath connection (paper §3,
/// "Path Identification"). Path 0 is always the initial path used for the
/// handshake; client-created paths are odd, server-created paths even.
/// 32 bits wide so a future MAX_PATHS negotiation can exceed 255 paths —
/// the AEAD nonce reserves 4 bytes for it (crypto/aead.cc) while the
/// current wire header still encodes the low byte (quic/wire.cc).
using PathId = Strong<struct PathIdTag, std::uint32_t>;

/// QUIC connection identifier (64-bit, as in Google QUIC).
using ConnectionId = std::uint64_t;

/// Per-path monotonically increasing packet number.
using PacketNumber = Strong<struct PacketNumberTag, std::uint64_t>;

/// QUIC stream identifier.
using StreamId = Strong<struct StreamIdTag, std::uint32_t>;

/// Bytes counts on the wire / in flight.
using ByteCount = Strong<struct ByteCountTag, std::uint64_t>;

}  // namespace mpq
