// Minimal leveled logger. The datapath compiles trace logging away unless
// MPQ_TRACE is defined, so experiments run at full speed; tests and
// examples can flip the runtime level to debug a single connection.
#pragma once

#include <cstdio>
#include <string_view>

#include "common/types.h"

namespace mpq {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Process-wide minimum level. Defaults to kWarn so large sweeps stay quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace detail {
void LogLine(LogLevel level, TimePoint now, std::string_view component,
             const char* fmt, ...) __attribute__((format(printf, 4, 5)));
}  // namespace detail

}  // namespace mpq

// `now` is the simulated clock; pass -1 when no simulator is in scope.
#define MPQ_LOG(level, now, component, ...)                         \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::mpq::GetLogLevel())) {                   \
      ::mpq::detail::LogLine(level, now, component, __VA_ARGS__);   \
    }                                                               \
  } while (0)

#define MPQ_WARN(now, component, ...) \
  MPQ_LOG(::mpq::LogLevel::kWarn, now, component, __VA_ARGS__)
#define MPQ_INFO(now, component, ...) \
  MPQ_LOG(::mpq::LogLevel::kInfo, now, component, __VA_ARGS__)
#define MPQ_DEBUG(now, component, ...) \
  MPQ_LOG(::mpq::LogLevel::kDebug, now, component, __VA_ARGS__)

#ifdef MPQ_TRACE
#define MPQ_TRACE_LOG(now, component, ...) \
  MPQ_LOG(::mpq::LogLevel::kTrace, now, component, __VA_ARGS__)
#else
#define MPQ_TRACE_LOG(now, component, ...) \
  do {                                     \
  } while (0)
#endif
