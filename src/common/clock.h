// The one sanctioned wall-clock read in the codebase. Simulation and
// protocol code must be a pure function of simulated time and the seed;
// the only legitimate use of the host's clock is measuring the cost of
// our own code (e.g. the traced scheduler-decision latency). Keeping the
// read here lets mpq_lint forbid <chrono> clocks everywhere else.
#pragma once

#include <chrono>
#include <cstdint>

namespace mpq {

/// Monotonic host time in nanoseconds, for measuring elapsed wall-clock
/// cost of in-process work. Not comparable across processes or reboots.
inline std::uint64_t MonotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace mpq
