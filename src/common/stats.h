// Small statistics toolkit used by the experiment harness: medians,
// percentiles, empirical CDFs and five-number summaries. These back the
// figure reproductions (CDF plots of completion-time ratios, aggregation
// benefit box plots).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mpq {

/// Interpolated percentile of a sample, p in [0, 100]. The input need not
/// be sorted. Returns 0 for an empty sample (callers guard, tests assert).
double Percentile(std::vector<double> values, double p);

/// Median (50th percentile).
double Median(std::vector<double> values);

double Mean(const std::vector<double>& values);

/// Population standard deviation.
double StdDev(const std::vector<double>& values);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double cumulative_probability = 0.0;  // in (0, 1]
};

/// Empirical CDF of the sample (sorted values, each with its cumulative
/// probability i/n). This is exactly what the paper's CDF figures plot.
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values);

/// Fraction of values strictly greater than `threshold` — used for claims
/// like "MPQUIC outperforms MPTCP in 89% of scenarios" (ratio > 1).
double FractionAbove(const std::vector<double>& values, double threshold);

/// Five-number summary + mean, the data behind a box plot.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

Summary Summarize(const std::vector<double>& values);

/// Render a summary as one human-readable row (used by bench binaries).
std::string FormatSummary(const Summary& s);

}  // namespace mpq
