// Bounds-checked binary writer/reader used for every wire format in the
// repository (QUIC packets and frames, TCP segments, handshake messages).
//
// Integers are encoded big-endian (network order). Variable-length integers
// use the QUIC-style 2-bit-prefix varint (RFC 9000 §16): the two most
// significant bits of the first byte give the total length (1/2/4/8 bytes)
// and the remaining bits the value, so values up to 2^62-1 are encodable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace mpq {

/// Maximum value representable by the 2-bit-prefix varint.
inline constexpr std::uint64_t kVarintMax = (1ULL << 62) - 1;

/// Number of bytes the varint encoding of `v` occupies (1, 2, 4 or 8).
/// Precondition: v <= kVarintMax.
constexpr std::size_t VarintSize(std::uint64_t v) {
  if (v < (1ULL << 6)) return 1;
  if (v < (1ULL << 14)) return 2;
  if (v < (1ULL << 30)) return 4;
  return 8;
}

/// Append-only binary writer over an owned byte vector.
class BufWriter {
 public:
  BufWriter() = default;
  explicit BufWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void WriteU8(std::uint8_t v) { buf_.push_back(v); }
  void WriteU16(std::uint16_t v) {
    std::uint8_t* p = Grow(2);
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
  }
  void WriteU32(std::uint32_t v) {
    std::uint8_t* p = Grow(4);
    for (int i = 0; i < 4; ++i)
      p[i] = static_cast<std::uint8_t>(v >> (24 - 8 * i));
  }
  void WriteU64(std::uint64_t v) {
    std::uint8_t* p = Grow(8);
    for (int i = 0; i < 8; ++i)
      p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }

  /// QUIC 2-bit-prefix varint. Returns false (writing nothing) if the value
  /// exceeds kVarintMax; callers on the datapath treat that as a bug.
  bool WriteVarint(std::uint64_t v) {
    if (v > kVarintMax) return false;
    switch (VarintSize(v)) {
      case 1:
        WriteU8(static_cast<std::uint8_t>(v));
        break;
      case 2:
        WriteU16(static_cast<std::uint16_t>(v) | 0x4000);
        break;
      case 4:
        WriteU32(static_cast<std::uint32_t>(v) | 0x8000'0000U);
        break;
      default:
        WriteU64(v | 0xC000'0000'0000'0000ULL);
        break;
    }
    return true;
  }

  void WriteBytes(std::span<const std::uint8_t> bytes) {
    if (bytes.empty()) return;
    std::memcpy(Grow(bytes.size()), bytes.data(), bytes.size());
  }
  void WriteBytes(const void* data, std::size_t len) {
    if (len == 0) return;
    std::memcpy(Grow(len), data, len);
  }
  /// Append `len` zero bytes (PADDING frames, payload placeholders).
  void WriteZeroes(std::size_t len) { buf_.resize(buf_.size() + len, 0); }

  std::size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  std::span<const std::uint8_t> span() const { return buf_; }
  /// Mutable view of the accumulated bytes — used for in-place packet
  /// protection (the AEAD encrypts the assembled payload where it lies).
  std::span<std::uint8_t> mutable_span() { return buf_; }
  const std::vector<std::uint8_t>& data() const { return buf_; }

  /// Move the accumulated bytes out; the writer is empty afterwards.
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

  /// Drop the contents but keep the allocation — for reuse as scratch.
  void Clear() { buf_.clear(); }

 private:
  /// Extend by `n` bytes and return a pointer to the fresh region (single
  /// resize instead of byte-wise push_back — this is the hot path of every
  /// packet assembly).
  std::uint8_t* Grow(std::size_t n) {
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    return buf_.data() + old;
  }

  std::vector<std::uint8_t> buf_;
};

/// Non-owning bounds-checked reader. All Read* methods return false on
/// underrun and leave the output untouched; the cursor only advances on
/// success. A malformed packet therefore fails cleanly instead of reading
/// out of bounds — the caller drops it, as a real stack would.
class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}
  BufReader(const void* data, std::size_t len)
      : data_(static_cast<const std::uint8_t*>(data), len) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

  bool ReadU8(std::uint8_t& out) {
    if (remaining() < 1) return false;
    out = data_[pos_++];
    return true;
  }
  bool ReadU16(std::uint16_t& out) {
    if (remaining() < 2) return false;
    out = static_cast<std::uint16_t>(std::uint16_t{data_[pos_]} << 8 |
                                     std::uint16_t{data_[pos_ + 1]});
    pos_ += 2;
    return true;
  }
  bool ReadU32(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) out = out << 8 | data_[pos_ + i];
    pos_ += 4;
    return true;
  }
  bool ReadU64(std::uint64_t& out) {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) out = out << 8 | data_[pos_ + i];
    pos_ += 8;
    return true;
  }

  bool ReadVarint(std::uint64_t& out) {
    if (remaining() < 1) return false;
    const std::uint8_t first = data_[pos_];
    const std::size_t len = std::size_t{1} << (first >> 6);
    if (remaining() < len) return false;
    std::uint64_t v = first & 0x3F;
    for (std::size_t i = 1; i < len; ++i) v = v << 8 | data_[pos_ + i];
    pos_ += len;
    out = v;
    return true;
  }

  /// View `len` bytes without copying; the span aliases the packet buffer
  /// and is only valid while the underlying buffer lives.
  bool ReadSpan(std::size_t len, std::span<const std::uint8_t>& out) {
    if (remaining() < len) return false;
    out = data_.subspan(pos_, len);
    pos_ += len;
    return true;
  }

  bool ReadBytes(std::size_t len, std::vector<std::uint8_t>& out) {
    std::span<const std::uint8_t> s;
    if (!ReadSpan(len, s)) return false;
    out.assign(s.begin(), s.end());
    return true;
  }

  bool Skip(std::size_t len) {
    if (remaining() < len) return false;
    pos_ += len;
    return true;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Hex dump (lowercase, no separators) — used by tests and trace logging.
std::string ToHex(std::span<const std::uint8_t> bytes);

}  // namespace mpq
