#include "common/source.h"

namespace mpq {

std::uint8_t PatternByte(std::uint32_t id, ByteCount offset) {
  // Cheap non-repeating-ish pattern; mixes the offset's low and high bits
  // so truncation/reordering bugs can't alias to the right bytes.
  const std::uint64_t x =
      offset.value() * 0x9E3779B97F4A7C15ULL + id * 0xBF58476D1CE4E5B9ULL;
  return static_cast<std::uint8_t>(x >> 32);
}

}  // namespace mpq
