// Abstract byte sources for transmit streams, shared by the QUIC and TCP
// stacks. Large benchmark transfers synthesize data on the fly (O(window)
// memory for a 20 MB download) while applications can send real buffers.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"

namespace mpq {

class SendSource {
 public:
  virtual ~SendSource() = default;
  virtual ByteCount size() const = 0;
  /// Fill `out` with the bytes at [offset, offset+out.size()), which is
  /// guaranteed to lie within [0, size()).
  virtual void Read(ByteCount offset, std::span<std::uint8_t> out) const = 0;
};

/// Deterministic pseudo-data: the byte at `offset` of stream `id` is
/// PatternByte(id, offset). Receivers can verify payload integrity
/// without the sender storing the file.
std::uint8_t PatternByte(std::uint32_t id, ByteCount offset);

class PatternSource final : public SendSource {
 public:
  PatternSource(std::uint32_t id, ByteCount size) : id_(id), size_(size) {}
  PatternSource(StreamId id, ByteCount size)
      : PatternSource(id.value(), size) {}
  ByteCount size() const override { return size_; }
  void Read(ByteCount offset, std::span<std::uint8_t> out) const override {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = PatternByte(id_, offset + i);
    }
  }

 private:
  std::uint32_t id_;
  ByteCount size_;
};

class BufferSource final : public SendSource {
 public:
  explicit BufferSource(std::vector<std::uint8_t> data)
      : data_(std::move(data)) {}
  ByteCount size() const override { return ByteCount{data_.size()}; }
  void Read(ByteCount offset, std::span<std::uint8_t> out) const override {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = data_[(offset + i).value()];
    }
  }

 private:
  std::vector<std::uint8_t> data_;
};

}  // namespace mpq
