// Deterministic pseudo-random number generation.
//
// Every stochastic element of the system (random link loss, experimental
// design sampling, payload generation) draws from an explicitly seeded
// xoshiro256** instance. There is no global RNG and no use of
// std::random_device, so a simulation is a pure function of its seed —
// the paper's "repeat 3 times, take the median" becomes three seeds.
#pragma once

#include <cstdint>

namespace mpq {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, http://prng.di.unimi.it/). Chosen over std::mt19937_64
/// because its output sequence is fully specified by the algorithm, not by
/// the standard library implementation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// degenerates to rejection sampling here for simplicity and exactness).
  std::uint64_t NextBounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Derive an independent child generator; used to give each simulated
  /// link / host its own stream so adding a component never perturbs the
  /// draws seen by another.
  Rng Fork() { return Rng(NextU64() ^ 0xA5A5A5A5DEADBEEFULL); }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace mpq
