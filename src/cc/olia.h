// OLIA — Opportunistic Linked-Increases Algorithm (Khalili et al.,
// CoNEXT 2012), the coupled multipath congestion control the paper uses
// for both Multipath TCP and Multipath QUIC (§3 "Congestion Control":
// "we integrate the OLIA congestion control scheme").
//
// Each path runs an Olia controller; an OliaCoordinator couples them:
// the congestion-avoidance increase on path r per acked MSS is
//
//     w_r / rtt_r^2
//   ------------------  +  alpha_r / w_r          (windows in MSS)
//   ( sum_p w_p/rtt_p )^2
//
// where alpha_r re-allocates window between the "best" paths (largest
// inter-loss delivered volume l_p^2 / rtt_p) and the paths with the
// largest windows, making the allocation Pareto-improving. Loss behaviour
// is standard halving; slow start is per-path and uncoupled.
#pragma once

#include <memory>
#include <vector>

#include "cc/congestion.h"

namespace mpq::cc {

class Olia;

/// Couples the per-path Olia controllers of one connection. Must outlive
/// the controllers it created.
class OliaCoordinator {
 public:
  explicit OliaCoordinator(ByteCount mss = kDefaultMss) : mss_(mss) {}

  OliaCoordinator(const OliaCoordinator&) = delete;
  OliaCoordinator& operator=(const OliaCoordinator&) = delete;

  std::unique_ptr<Olia> CreateController();

  ByteCount mss() const { return mss_; }

 private:
  friend class Olia;
  void Unregister(Olia* path);

  ByteCount mss_;
  std::vector<Olia*> paths_;
};

class Olia final : public CongestionController {
 public:
  ~Olia() override;

  void OnPacketSent(TimePoint now, ByteCount bytes) override;
  void OnPacketAcked(TimePoint now, ByteCount bytes, TimePoint sent_time,
                     Duration rtt) override;
  void OnPacketLost(TimePoint now, ByteCount bytes,
                    TimePoint sent_time) override;
  void OnRetransmissionTimeout(TimePoint now) override;

  ByteCount congestion_window() const override { return cwnd_; }
  std::string name() const override { return "olia"; }

 private:
  friend class OliaCoordinator;
  explicit Olia(OliaCoordinator& coordinator);

  /// Smoothed inter-loss delivered volume: max of the current and the
  /// previous loss epoch (the l_r of the OLIA paper).
  double InterLossBytes() const {
    return static_cast<double>(epoch_bytes_ > prev_epoch_bytes_
                                   ? epoch_bytes_
                                   : prev_epoch_bytes_);
  }
  double RttSeconds() const;
  /// alpha_r for this path given the coordinator's current path set.
  double Alpha() const;

  OliaCoordinator& coordinator_;
  ByteCount cwnd_;
  TimePoint recovery_start_ = -1;
  Duration srtt_ = 0;  // last smoothed RTT reported by the stack
  ByteCount epoch_bytes_;       // bytes acked since last loss (l1)
  ByteCount prev_epoch_bytes_;  // previous inter-loss epoch (l2)
  double increase_remainder_mss_ = 0.0;
};

}  // namespace mpq::cc
