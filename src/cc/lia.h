// LIA — the Linked Increases Algorithm (Wischik, Raiciu, Greenhalgh,
// Handley, NSDI 2011; RFC 6356), the default coupled congestion control
// of the Linux MPTCP kernel the paper benchmarks against. The paper
// instead integrates OLIA [27], which fixed LIA's non-Pareto-optimality;
// having both lets the ablation bench quantify that design choice.
//
// Congestion-avoidance increase per ACK on path r (windows in MSS):
//
//     min( alpha / w_total ,  1 / w_r )
//
// with the aggressiveness factor recomputed from the current windows:
//
//     alpha = w_total * max_r(w_r / rtt_r^2) / ( sum_r(w_r / rtt_r) )^2
//
// Loss behaviour is standard halving; slow start is per-path, uncoupled.
#pragma once

#include <memory>
#include <vector>

#include "cc/congestion.h"

namespace mpq::cc {

class Lia;

/// Couples the per-path Lia controllers of one connection. Must outlive
/// the controllers it created.
class LiaCoordinator {
 public:
  explicit LiaCoordinator(ByteCount mss = kDefaultMss) : mss_(mss) {}

  LiaCoordinator(const LiaCoordinator&) = delete;
  LiaCoordinator& operator=(const LiaCoordinator&) = delete;

  std::unique_ptr<Lia> CreateController();

  ByteCount mss() const { return mss_; }

 private:
  friend class Lia;
  void Unregister(Lia* path);

  ByteCount mss_;
  std::vector<Lia*> paths_;
};

class Lia final : public CongestionController {
 public:
  ~Lia() override;

  void OnPacketSent(TimePoint now, ByteCount bytes) override;
  void OnPacketAcked(TimePoint now, ByteCount bytes, TimePoint sent_time,
                     Duration rtt) override;
  void OnPacketLost(TimePoint now, ByteCount bytes,
                    TimePoint sent_time) override;
  void OnRetransmissionTimeout(TimePoint now) override;

  ByteCount congestion_window() const override { return cwnd_; }
  std::string name() const override { return "lia"; }

 private:
  friend class LiaCoordinator;
  explicit Lia(LiaCoordinator& coordinator);

  double RttSeconds() const;
  /// RFC 6356 alpha over the coordinator's current path set.
  double Alpha() const;

  LiaCoordinator& coordinator_;
  ByteCount cwnd_;
  TimePoint recovery_start_ = -1;
  Duration srtt_ = 0;
  double increase_remainder_mss_ = 0.0;
};

}  // namespace mpq::cc
