#include "cc/lia.h"

#include <algorithm>
#include <cmath>

namespace mpq::cc {

std::unique_ptr<Lia> LiaCoordinator::CreateController() {
  auto controller = std::unique_ptr<Lia>(new Lia(*this));
  paths_.push_back(controller.get());
  return controller;
}

void LiaCoordinator::Unregister(Lia* path) { std::erase(paths_, path); }

Lia::Lia(LiaCoordinator& coordinator)
    : coordinator_(coordinator),
      cwnd_(kInitialWindowPackets * coordinator.mss()) {}

Lia::~Lia() { coordinator_.Unregister(this); }

double Lia::RttSeconds() const {
  return srtt_ > 0 ? DurationToSeconds(srtt_) : 0.1;
}

void Lia::OnPacketSent(TimePoint, ByteCount bytes) { AddInFlight(bytes); }

double Lia::Alpha() const {
  // alpha = w_total * max(w_r/rtt_r^2) / (sum(w_r/rtt_r))^2, windows in
  // MSS (RFC 6356 §4).
  const ByteCount mss = coordinator_.mss();
  double w_total = 0.0;
  double best_ratio = 0.0;
  double denom = 0.0;
  for (const Lia* path : coordinator_.paths_) {
    const double w = static_cast<double>(path->cwnd_) / static_cast<double>(mss);
    const double rtt = path->RttSeconds();
    w_total += w;
    best_ratio = std::max(best_ratio, w / (rtt * rtt));
    denom += w / rtt;
  }
  if (denom <= 0.0) return 1.0;
  return w_total * best_ratio / (denom * denom);
}

void Lia::OnPacketAcked(TimePoint, ByteCount bytes, TimePoint sent_time,
                        Duration rtt) {
  RemoveInFlight(bytes);
  if (rtt > 0) srtt_ = rtt;
  if (sent_time <= recovery_start_) return;

  const ByteCount mss = coordinator_.mss();
  if (cwnd_ < ssthresh_) {
    cwnd_ += bytes;  // per-path slow start, uncoupled
    return;
  }

  double w_total_mss = 0.0;
  for (const Lia* path : coordinator_.paths_) {
    w_total_mss += static_cast<double>(path->cwnd_) / static_cast<double>(mss);
  }
  const double w_mss = static_cast<double>(cwnd_) / static_cast<double>(mss);
  // RFC 6356 §4: increase per acked MSS = min(alpha/w_total, 1/w_r) —
  // never more aggressive than a regular TCP flow on this path.
  const double per_ack_mss =
      std::min(Alpha() / w_total_mss, 1.0 / w_mss);
  increase_remainder_mss_ +=
      per_ack_mss * (static_cast<double>(bytes) / static_cast<double>(mss));
  if (increase_remainder_mss_ >= 1.0) {
    const double whole = std::floor(increase_remainder_mss_);
    cwnd_ += static_cast<std::uint64_t>(whole) * mss;
    increase_remainder_mss_ -= whole;
  }
}

void Lia::OnPacketLost(TimePoint now, ByteCount bytes, TimePoint sent_time) {
  RemoveInFlight(bytes);
  if (sent_time <= recovery_start_) return;
  recovery_start_ = now;
  cwnd_ /= 2;
  const ByteCount floor_window = kMinWindowPackets * coordinator_.mss();
  if (cwnd_ < floor_window) cwnd_ = floor_window;
  ssthresh_ = cwnd_;
}

void Lia::OnRetransmissionTimeout(TimePoint now) {
  recovery_start_ = now;
  ssthresh_ = cwnd_ / 2;
  const ByteCount floor_window = kMinWindowPackets * coordinator_.mss();
  if (ssthresh_ < floor_window) ssthresh_ = floor_window;
  cwnd_ = floor_window;
}

}  // namespace mpq::cc
