// CUBIC congestion control (Ha, Rhee, Xu; RFC 8312 parameterisation).
//
// Used by single-path TCP and single-path QUIC in the evaluation, exactly
// as in the paper (§4.1: "we use CUBIC congestion control with the two
// single path protocols", both the Linux kernel and quic-go defaulting to
// CUBIC). Bytes-based; the cubic curve is computed in MSS units in double
// precision, matching common userspace implementations.
#pragma once

#include "cc/congestion.h"

namespace mpq::cc {

class Cubic final : public CongestionController {
 public:
  explicit Cubic(ByteCount mss = kDefaultMss);

  void OnPacketSent(TimePoint now, ByteCount bytes) override;
  void OnPacketAcked(TimePoint now, ByteCount bytes, TimePoint sent_time,
                     Duration rtt) override;
  void OnPacketLost(TimePoint now, ByteCount bytes,
                    TimePoint sent_time) override;
  void OnRetransmissionTimeout(TimePoint now) override;

  ByteCount congestion_window() const override { return cwnd_; }
  std::string name() const override { return "cubic"; }

 private:
  void EnterCongestionAvoidanceEpoch(TimePoint now);

  static constexpr double kC = 0.4;     // cubic scaling constant
  static constexpr double kBeta = 0.7;  // multiplicative decrease factor

  const ByteCount mss_;
  ByteCount cwnd_;
  TimePoint recovery_start_ = -1;

  // Cubic epoch state (valid while in congestion avoidance).
  bool epoch_started_ = false;
  TimePoint epoch_start_ = 0;
  double w_max_mss_ = 0.0;       // window before the last reduction, in MSS
  double k_seconds_ = 0.0;       // time to regain w_max on the cubic curve
  double w_est_mss_ = 0.0;       // TCP-friendly (Reno) estimate, in MSS
  ByteCount acked_since_epoch_;
};

}  // namespace mpq::cc
