// Congestion-controller interface shared by the QUIC and TCP stacks.
//
// The evaluation setup of the paper (§4.1): single-path protocols use
// CUBIC; multipath protocols use OLIA, one controller per path coupled
// through a coordinator. Controllers are bytes-based and are driven by
// the loss-recovery machinery of each stack:
//   OnPacketSent    — a retransmittable packet left the host,
//   OnPacketAcked   — newly acknowledged (first transmission time given
//                     so a controller can ignore acks from before its
//                     last congestion response),
//   OnPacketLost    — declared lost by loss detection,
//   OnRetransmissionTimeout — RTO fired (collapse to minimum window).
#pragma once

#include <limits>
#include <string>

#include "common/types.h"

namespace mpq::cc {

inline constexpr ByteCount kDefaultMss{1350};
inline constexpr int kInitialWindowPackets = 10;  // RFC 6928 style
inline constexpr int kMinWindowPackets = 2;

/// Which controller a connection uses (paper §4.1: CUBIC for single-path
/// protocols, OLIA coupled across paths for the multipath ones; an
/// uncoupled-CUBIC multipath mode exists as the fairness ablation).
enum class Algorithm {
  kCubic,
  kOlia,
  kNewReno,
  kLia,  // RFC 6356 coupled CC, the Linux MPTCP default of the era
};

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  virtual void OnPacketSent(TimePoint now, ByteCount bytes) = 0;
  /// `sent_time` is when the acked packet was sent; `rtt` the smoothed
  /// RTT estimate of the path (used by CUBIC's TCP-friendly region and
  /// OLIA's coupling; pass 0 if unknown).
  virtual void OnPacketAcked(TimePoint now, ByteCount bytes,
                             TimePoint sent_time, Duration rtt) = 0;
  virtual void OnPacketLost(TimePoint now, ByteCount bytes,
                            TimePoint sent_time) = 0;
  virtual void OnRetransmissionTimeout(TimePoint now) = 0;

  virtual ByteCount congestion_window() const = 0;
  virtual std::string name() const = 0;

  /// Bytes currently in flight, maintained from the Sent/Acked/Lost calls.
  ByteCount bytes_in_flight() const { return bytes_in_flight_; }

  /// True if at least `bytes` fit under the congestion window.
  bool CanSend(ByteCount bytes) const {
    return bytes_in_flight_ + bytes <= congestion_window();
  }

  bool InSlowStart() const { return congestion_window() < ssthresh_; }

 protected:
  void AddInFlight(ByteCount bytes) { bytes_in_flight_ += bytes; }
  void RemoveInFlight(ByteCount bytes) {
    bytes_in_flight_ =
        bytes_in_flight_ >= bytes ? bytes_in_flight_ - bytes : ByteCount{0};
  }

  ByteCount ssthresh_ = std::numeric_limits<ByteCount>::max();

 private:
  ByteCount bytes_in_flight_;
};

}  // namespace mpq::cc
