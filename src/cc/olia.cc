#include "cc/olia.h"

#include <algorithm>
#include <cmath>

namespace mpq::cc {

std::unique_ptr<Olia> OliaCoordinator::CreateController() {
  auto controller = std::unique_ptr<Olia>(new Olia(*this));
  paths_.push_back(controller.get());
  return controller;
}

void OliaCoordinator::Unregister(Olia* path) {
  std::erase(paths_, path);
}

Olia::Olia(OliaCoordinator& coordinator)
    : coordinator_(coordinator),
      cwnd_(kInitialWindowPackets * coordinator.mss()) {}

Olia::~Olia() { coordinator_.Unregister(this); }

double Olia::RttSeconds() const {
  // Before the first RTT sample use a conservative placeholder; the exact
  // value only matters for a handful of initial acks.
  return srtt_ > 0 ? DurationToSeconds(srtt_) : 0.1;
}

void Olia::OnPacketSent(TimePoint, ByteCount bytes) { AddInFlight(bytes); }

double Olia::Alpha() const {
  const auto& paths = coordinator_.paths_;
  const double n = static_cast<double>(paths.size());
  if (paths.size() < 2) return 0.0;

  // Partition: M = paths with the maximum window; B = "best" paths by
  // l_p^2 / rtt_p; collected = B \ M (good paths kept at small windows).
  ByteCount max_cwnd{0};
  double best_metric = -1.0;
  for (const Olia* p : paths) {
    max_cwnd = std::max(max_cwnd, p->cwnd_);
    const double l = p->InterLossBytes();
    best_metric = std::max(best_metric, l * l / p->RttSeconds());
  }
  std::size_t num_max = 0, num_collected = 0;
  bool self_in_max = false, self_in_collected = false;
  for (const Olia* p : paths) {
    const bool in_max = p->cwnd_ == max_cwnd;
    const double l = p->InterLossBytes();
    const bool in_best = l * l / p->RttSeconds() >= best_metric;
    const bool in_collected = in_best && !in_max;
    num_max += in_max;
    num_collected += in_collected;
    if (p == this) {
      self_in_max = in_max;
      self_in_collected = in_collected;
    }
  }
  if (self_in_collected) {
    return 1.0 / (n * static_cast<double>(num_collected));
  }
  if (self_in_max && num_collected > 0) {
    return -1.0 / (n * static_cast<double>(num_max));
  }
  return 0.0;
}

void Olia::OnPacketAcked(TimePoint, ByteCount bytes, TimePoint sent_time,
                         Duration rtt) {
  RemoveInFlight(bytes);
  if (rtt > 0) srtt_ = rtt;
  if (sent_time <= recovery_start_) return;
  epoch_bytes_ += bytes;

  const ByteCount mss = coordinator_.mss();
  if (cwnd_ < ssthresh_) {
    cwnd_ += bytes;  // per-path slow start, uncoupled
    return;
  }

  // Coupled congestion-avoidance increase.
  double denom = 0.0;
  for (const Olia* p : coordinator_.paths_) {
    denom += static_cast<double>(p->cwnd_) / static_cast<double>(mss) / p->RttSeconds();
  }
  denom *= denom;
  const double w_mss = static_cast<double>(cwnd_) / static_cast<double>(mss);
  const double rtt_s = RttSeconds();
  const double term1 = denom > 0.0 ? (w_mss / (rtt_s * rtt_s)) / denom : 0.0;
  const double per_ack_mss = term1 + Alpha() / w_mss;
  const double acked_mss = static_cast<double>(bytes) / static_cast<double>(mss);

  // Accumulate fractional MSS growth; alpha can make this negative, in
  // which case the window shrinks gently (never below the minimum).
  increase_remainder_mss_ += per_ack_mss * acked_mss;
  if (increase_remainder_mss_ >= 1.0) {
    const double whole = std::floor(increase_remainder_mss_);
    cwnd_ += static_cast<std::uint64_t>(whole) * mss;
    increase_remainder_mss_ -= whole;
  } else if (increase_remainder_mss_ <= -1.0) {
    const double whole = std::floor(-increase_remainder_mss_);
    const ByteCount dec = static_cast<std::uint64_t>(whole) * mss;
    cwnd_ = cwnd_ > dec ? cwnd_ - dec : ByteCount{0};
    increase_remainder_mss_ += whole;
  }
  const ByteCount floor_window = kMinWindowPackets * mss;
  if (cwnd_ < floor_window) cwnd_ = floor_window;
}

void Olia::OnPacketLost(TimePoint now, ByteCount bytes,
                        TimePoint sent_time) {
  RemoveInFlight(bytes);
  if (sent_time <= recovery_start_) return;
  recovery_start_ = now;
  prev_epoch_bytes_ = epoch_bytes_;
  epoch_bytes_ = ByteCount{0};
  cwnd_ /= 2;
  const ByteCount floor_window = kMinWindowPackets * coordinator_.mss();
  if (cwnd_ < floor_window) cwnd_ = floor_window;
  ssthresh_ = cwnd_;
}

void Olia::OnRetransmissionTimeout(TimePoint now) {
  recovery_start_ = now;
  prev_epoch_bytes_ = epoch_bytes_;
  epoch_bytes_ = ByteCount{0};
  ssthresh_ = cwnd_ / 2;
  const ByteCount floor_window = kMinWindowPackets * coordinator_.mss();
  if (ssthresh_ < floor_window) ssthresh_ = floor_window;
  cwnd_ = floor_window;
}

}  // namespace mpq::cc
