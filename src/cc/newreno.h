// NewReno-style AIMD controller. Not used in the paper's headline
// comparison (which is CUBIC vs OLIA) but kept as the simplest reference
// implementation: it anchors the congestion-control tests and serves as a
// baseline in the ablation benches.
#pragma once

#include "cc/congestion.h"

namespace mpq::cc {

class NewReno final : public CongestionController {
 public:
  explicit NewReno(ByteCount mss = kDefaultMss)
      : mss_(mss), cwnd_(kInitialWindowPackets * mss) {}

  void OnPacketSent(TimePoint, ByteCount bytes) override {
    AddInFlight(bytes);
  }

  void OnPacketAcked(TimePoint, ByteCount bytes, TimePoint sent_time,
                     Duration) override {
    RemoveInFlight(bytes);
    if (sent_time <= recovery_start_) return;  // ack from before the cut
    if (cwnd_ < ssthresh_) {
      cwnd_ += bytes;  // slow start
      return;
    }
    // Congestion avoidance: one MSS per window of acks.
    accumulated_ += bytes;
    while (accumulated_ >= cwnd_) {
      accumulated_ -= cwnd_;
      cwnd_ += mss_;
    }
  }

  void OnPacketLost(TimePoint now, ByteCount bytes,
                    TimePoint sent_time) override {
    RemoveInFlight(bytes);
    if (sent_time <= recovery_start_) return;  // already responded
    recovery_start_ = now;
    cwnd_ = cwnd_ / 2;
    if (cwnd_ < kMinWindowPackets * mss_) cwnd_ = kMinWindowPackets * mss_;
    ssthresh_ = cwnd_;
  }

  void OnRetransmissionTimeout(TimePoint now) override {
    recovery_start_ = now;
    ssthresh_ = cwnd_ / 2;
    if (ssthresh_ < kMinWindowPackets * mss_)
      ssthresh_ = kMinWindowPackets * mss_;
    cwnd_ = kMinWindowPackets * mss_;
  }

  ByteCount congestion_window() const override { return cwnd_; }
  std::string name() const override { return "newreno"; }

 private:
  ByteCount mss_;
  ByteCount cwnd_;
  ByteCount accumulated_{};
  TimePoint recovery_start_ = -1;
};

}  // namespace mpq::cc
