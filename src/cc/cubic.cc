#include "cc/cubic.h"

#include <algorithm>
#include <cmath>

namespace mpq::cc {

Cubic::Cubic(ByteCount mss)
    : mss_(mss), cwnd_(kInitialWindowPackets * mss) {}

void Cubic::OnPacketSent(TimePoint, ByteCount bytes) { AddInFlight(bytes); }

void Cubic::EnterCongestionAvoidanceEpoch(TimePoint now) {
  epoch_started_ = true;
  epoch_start_ = now;
  acked_since_epoch_ = ByteCount{0};
  const double cwnd_mss = static_cast<double>(cwnd_) / static_cast<double>(mss_);
  if (w_max_mss_ < cwnd_mss) {
    // We got above the previous maximum without a loss: restart the curve
    // from here (RFC 8312 §4.8's convex region handling).
    w_max_mss_ = cwnd_mss;
    k_seconds_ = 0.0;
  } else {
    k_seconds_ = std::cbrt((w_max_mss_ - cwnd_mss) / kC);
  }
  w_est_mss_ = cwnd_mss;
}

void Cubic::OnPacketAcked(TimePoint now, ByteCount bytes,
                          TimePoint sent_time, Duration rtt) {
  RemoveInFlight(bytes);
  if (sent_time <= recovery_start_) return;

  if (cwnd_ < ssthresh_) {
    cwnd_ += bytes;
    return;
  }

  if (!epoch_started_) EnterCongestionAvoidanceEpoch(now);
  acked_since_epoch_ += bytes;

  const double t = DurationToSeconds(now - epoch_start_);
  const double delta = t - k_seconds_;
  const double w_cubic_mss = kC * delta * delta * delta + w_max_mss_;

  // TCP-friendly region (RFC 8312 §4.2): emulate Reno's growth rate.
  const double rtt_s = rtt > 0 ? DurationToSeconds(rtt) : 0.1;
  w_est_mss_ += 3.0 * (1.0 - kBeta) / (1.0 + kBeta) *
                (static_cast<double>(bytes) / static_cast<double>(mss_)) *
                (static_cast<double>(mss_) / static_cast<double>(cwnd_));
  (void)rtt_s;  // growth per ack is already rtt-paced by ack clocking

  const double target_mss = std::max(w_cubic_mss, w_est_mss_);
  const double cwnd_mss = static_cast<double>(cwnd_) / static_cast<double>(mss_);
  if (target_mss > cwnd_mss) {
    // Increase by (target - cwnd)/cwnd MSS per acked MSS (RFC 8312 §4.3).
    const double increase_mss = (target_mss - cwnd_mss) / cwnd_mss *
                                (static_cast<double>(bytes) / static_cast<double>(mss_));
    cwnd_ += static_cast<ByteCount>(increase_mss * static_cast<double>(mss_));
  } else {
    // In the "TCP region" below the curve, grow at least minimally so the
    // window is not frozen: 1 MSS per 100 acked MSS (RFC 8312 §4.8).
    cwnd_ += std::max(ByteCount{1}, bytes / 100);
  }
}

void Cubic::OnPacketLost(TimePoint now, ByteCount bytes,
                         TimePoint sent_time) {
  RemoveInFlight(bytes);
  if (sent_time <= recovery_start_) return;
  recovery_start_ = now;

  double cwnd_mss = static_cast<double>(cwnd_) / static_cast<double>(mss_);
  // Fast convergence (RFC 8312 §4.6): release bandwidth sooner when the
  // maximum keeps shrinking.
  if (cwnd_mss < w_max_mss_) {
    w_max_mss_ = cwnd_mss * (1.0 + kBeta) / 2.0;
  } else {
    w_max_mss_ = cwnd_mss;
  }
  cwnd_ = static_cast<ByteCount>(static_cast<double>(cwnd_) * kBeta);
  if (cwnd_ < kMinWindowPackets * mss_) cwnd_ = kMinWindowPackets * mss_;
  ssthresh_ = cwnd_;
  epoch_started_ = false;
}

void Cubic::OnRetransmissionTimeout(TimePoint now) {
  recovery_start_ = now;
  ssthresh_ = static_cast<ByteCount>(static_cast<double>(cwnd_) * kBeta);
  if (ssthresh_ < kMinWindowPackets * mss_)
    ssthresh_ = kMinWindowPackets * mss_;
  cwnd_ = kMinWindowPackets * mss_;
  w_max_mss_ = static_cast<double>(ssthresh_) / static_cast<double>(mss_);
  epoch_started_ = false;
}

}  // namespace mpq::cc
