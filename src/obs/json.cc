#include "obs/json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mpq::obs {

// ---------------------------------------------------------------------------
// Writing

void AppendJsonString(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char ch : text) {
    const unsigned char byte = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", byte);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no comma
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  assert(!needs_comma_.empty() && !pending_key_);
  if (needs_comma_.back()) out_.push_back(',');
  needs_comma_.back() = true;
  AppendJsonString(out_, key);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendJsonString(out_, value);
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

void JsonWriter::Clear() {
  out_.clear();
  needs_comma_.clear();
  pending_key_ = false;
}

// ---------------------------------------------------------------------------
// Parsing

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool ParseValue(JsonValue& out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        if (!ParseString(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (!Consume("true")) return false;
        out = JsonValue(true);
        return true;
      case 'f':
        if (!Consume("false")) return false;
        out = JsonValue(false);
        return true;
      case 'n':
        if (!Consume("null")) return false;
        out = JsonValue(nullptr);
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool AtEnd() {
    SkipWhitespace();
    return pos_ >= text_.size();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseObject(JsonValue& out) {
    ++pos_;  // '{'
    JsonValue::Object object;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = JsonValue(std::move(object));
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue value;
      if (!ParseValue(value)) return false;
      object.insert_or_assign(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out = JsonValue(std::move(object));
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue& out) {
    ++pos_;  // '['
    JsonValue::Array array;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = JsonValue(std::move(array));
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(value)) return false;
      array.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out = JsonValue(std::move(array));
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch == '"') {
        ++pos_;
        return true;
      }
      if (ch == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char hex = text_[pos_ + i];
              code <<= 4;
              if (hex >= '0' && hex <= '9') {
                code |= static_cast<unsigned>(hex - '0');
              } else if (hex >= 'a' && hex <= 'f') {
                code |= static_cast<unsigned>(hex - 'a' + 10);
              } else if (hex >= 'A' && hex <= 'F') {
                code |= static_cast<unsigned>(hex - 'A' + 10);
              } else {
                return false;
              }
            }
            pos_ += 4;
            // This library only ever writes \u00XX (control characters);
            // decode the basic-multilingual-plane code point as UTF-8 so
            // foreign traces parse too.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return false;
        }
        continue;
      }
      out.push_back(ch);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out = JsonValue(value);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const std::string kEmptyString;
const JsonValue::Array kEmptyArray;
const JsonValue::Object kEmptyObject;

}  // namespace

bool JsonValue::AsBool(bool fallback) const {
  const bool* b = std::get_if<bool>(&value_);
  return b != nullptr ? *b : fallback;
}

double JsonValue::AsDouble(double fallback) const {
  const double* d = std::get_if<double>(&value_);
  return d != nullptr ? *d : fallback;
}

std::int64_t JsonValue::AsInt(std::int64_t fallback) const {
  const double* d = std::get_if<double>(&value_);
  return d != nullptr ? static_cast<std::int64_t>(*d) : fallback;
}

const std::string& JsonValue::AsString() const {
  const std::string* s = std::get_if<std::string>(&value_);
  return s != nullptr ? *s : kEmptyString;
}

const JsonValue::Array& JsonValue::AsArray() const {
  const Array* a = std::get_if<Array>(&value_);
  return a != nullptr ? *a : kEmptyArray;
}

const JsonValue::Object& JsonValue::AsObject() const {
  const Object* o = std::get_if<Object>(&value_);
  return o != nullptr ? *o : kEmptyObject;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  const Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) return nullptr;
  const auto it = o->find(key);
  return it == o->end() ? nullptr : &it->second;
}

std::optional<JsonValue> JsonValue::Parse(std::string_view text) {
  Parser parser(text);
  JsonValue value;
  if (!parser.ParseValue(value)) return std::nullopt;
  if (!parser.AtEnd()) return std::nullopt;
  return value;
}

}  // namespace mpq::obs
