// Tracer that folds connection events into a MetricsRegistry instead of
// logging them: counters for packets/frames/losses/RTOs, per-path byte
// counters, histograms for srtt, ack delay, packet sizes and scheduler
// decision latency. Pairs with TracerMux when a full qlog trace is also
// wanted.
#pragma once

#include "obs/metrics.h"
#include "quic/trace.h"

namespace mpq::obs {

class MetricsTracer final : public quic::ConnectionTracer {
 public:
  /// `registry` is not owned and must outlive the tracer. Metric names
  /// are documented in docs/OBSERVABILITY.md; per-path metrics embed the
  /// path id ("path.0.bytes_sent").
  explicit MetricsTracer(MetricsRegistry& registry);

  void OnPacketSent(TimePoint now, PathId path, PacketNumber pn,
                    ByteCount bytes, bool retransmittable) override;
  void OnPacketReceived(TimePoint now, PathId path, PacketNumber pn,
                        ByteCount bytes) override;
  void OnPacketLost(TimePoint now, PathId path, PacketNumber pn) override;
  void OnPacketLifecycle(TimePoint now, PathId path, PacketNumber pn,
                         const char* stage, Duration since_sent) override;
  void OnFrameSent(TimePoint now, PathId path,
                   const quic::Frame& frame) override;
  void OnFrameReceived(TimePoint now, PathId path,
                       const quic::Frame& frame) override;
  void OnSchedulerDecision(TimePoint now, PathId chosen, const char* reason,
                           std::uint64_t elapsed_ns) override;
  void OnPathSample(TimePoint now, PathId path, ByteCount cwnd,
                    ByteCount in_flight, Duration srtt) override;
  void OnRto(TimePoint now, PathId path, int consecutive) override;
  void OnFrameRetransmitQueued(TimePoint now, PathId path,
                               const quic::Frame& frame) override;
  void OnFlowControlBlocked(TimePoint now, StreamId stream) override;
  void OnHandshakeEvent(TimePoint now, const char* milestone) override;
  void OnPathStateChange(TimePoint now, PathId path,
                         const char* state) override;

 private:
  Counter& PathCounter(PathId path, const char* suffix);

  MetricsRegistry& registry_;
  // Hot metrics resolved once at construction; registry references are
  // stable for its lifetime.
  Counter& packets_sent_;
  Counter& packets_received_;
  Counter& packets_lost_;
  Counter& frames_sent_;
  Counter& frames_received_;
  Counter& frames_requeued_;
  Counter& requeued_bytes_;
  Counter& rtos_;
  Counter& flow_blocked_;
  Histogram& srtt_us_;
  Histogram& ack_delay_us_;
  Histogram& packet_bytes_;
  Histogram& scheduler_ns_;
};

}  // namespace mpq::obs
