// Metrics registry: named counters, gauges and log-linear histograms,
// snapshotable as one compact JSON object. The registry backs the
// per-scenario metrics rows the experiment harness emits and gives
// library users a cheap way to quantify a connection (RTT distribution,
// ack delays, scheduler decision latency, bytes per path) without
// storing full traces.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/json.h"

namespace mpq::obs {

/// Monotonically increasing event/byte count.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value-wins instantaneous measurement.
class Gauge {
 public:
  void Set(std::int64_t value) { value_ = value; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Log-linear histogram over non-negative integer values (HdrHistogram's
/// bucketing idea): values below 32 get exact unit buckets; above that,
/// each power-of-two range is split into 16 linear sub-buckets, bounding
/// the relative quantile error at ~6% while covering the full 64-bit
/// range in under a thousand buckets. Recording is two shifts and an
/// increment — cheap enough for per-packet datapath use.
class Histogram {
 public:
  static constexpr std::size_t kUnitBuckets = 32;   // exact region
  static constexpr std::size_t kSubBuckets = 16;    // per power of two
  static constexpr std::size_t kBucketCount =
      kUnitBuckets + (64 - 5) * kSubBuckets;

  /// Bucket for `value` (negatives clamp to 0).
  static std::size_t BucketIndex(std::int64_t value);
  /// Smallest value mapping to bucket `index`.
  static std::uint64_t BucketLowerBound(std::size_t index);

  void Record(std::int64_t value);

  /// Fold `other` into this histogram (bucket-wise add; min/max/sum/count
  /// combine). Used to aggregate per-thread profiler spans into registry
  /// histograms.
  void Merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  /// True if the running sum hit the accumulator's ceiling and mean() is
  /// a lower bound. Unreachable when 128-bit accumulation is available.
  bool sum_saturated() const { return sum_saturated_; }

  /// Approximate percentile, p in [0, 100]: midpoint of the bucket the
  /// rank falls into, clamped to the exact recorded [min, max]. 0 when
  /// empty.
  double Percentile(double p) const;

  /// {"count":..,"min":..,"mean":..,"p50":..,"p90":..,"p99":..,
  ///  "p999":..,"max":..}
  void WriteJson(JsonWriter& writer) const;

 private:
  // Nanosecond-scale values over long sweeps overflow a 64-bit signed
  // sum (2^63 ns ≈ 292 years, but 2^63 total is reached by ~10^10
  // millisecond-scale samples). Accumulate in 128 bits where the
  // compiler provides it; otherwise saturate and flag.
#if defined(__SIZEOF_INT128__)
  using SumType = unsigned __int128;
#else
  using SumType = std::uint64_t;
#endif
  void AddToSum(std::uint64_t value);

  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  SumType sum_ = 0;
  bool sum_saturated_ = false;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Named metrics with stable addresses: a Get*() reference stays valid
/// for the registry's lifetime, so hot paths look a metric up once and
/// keep the pointer.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// One compact JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  /// Names iterate sorted — snapshots are deterministic.
  void WriteJson(JsonWriter& writer) const;
  std::string SnapshotJson() const;

  /// Fold `other` into this registry: counters add, histograms
  /// bucket-merge (Histogram::Merge), gauges last-write-wins (the value
  /// from `other` replaces ours — merge order is the caller's
  /// reduction order, so per-shard KPI registries folded in shard order
  /// reduce deterministically). Metrics absent on either side are
  /// created/kept.
  void MergeFrom(const MetricsRegistry& other);

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mpq::obs
