// Minimal JSON support for the observability layer: a compact
// insertion-order writer (used by the NDJSON qlog tracer and the metrics
// registry) and a small recursive-descent parser (used by mpq_trace and
// the tests to read the traces back). Deliberately tiny — just enough to
// round-trip what this library itself writes; not a general JSON library.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace mpq::obs {

/// Append `text` to `out` as a JSON string literal: surrounding quotes,
/// backslash escapes for ", \, control characters (\n, \t, ... and \u00XX
/// for the rest). Non-ASCII bytes pass through untouched (valid UTF-8 in,
/// valid UTF-8 out).
void AppendJsonString(std::string& out, std::string_view text);

/// Compact streaming writer for one JSON document. Keys keep insertion
/// order; numbers are written without trailing noise. No pretty printing:
/// one event per line is the NDJSON contract.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& UInt(std::uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }
  void Clear();

 private:
  void BeforeValue();

  std::string out_;
  std::vector<bool> needs_comma_;  // one flag per open container
  bool pending_key_ = false;
};

/// Parsed JSON value. Objects are sorted maps (deterministic iteration);
/// all numbers are doubles, which is exact for the integers this library
/// writes (below 2^53).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() : value_(nullptr) {}
  explicit JsonValue(std::nullptr_t) : value_(nullptr) {}
  explicit JsonValue(bool b) : value_(b) {}
  explicit JsonValue(double d) : value_(d) {}
  explicit JsonValue(std::string s) : value_(std::move(s)) {}
  explicit JsonValue(Array a) : value_(std::move(a)) {}
  explicit JsonValue(Object o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool AsBool(bool fallback = false) const;
  double AsDouble(double fallback = 0.0) const;
  std::int64_t AsInt(std::int64_t fallback = 0) const;
  const std::string& AsString() const;  // empty string when not a string
  const Array& AsArray() const;        // empty array when not an array
  const Object& AsObject() const;      // empty object when not an object

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Parse one complete JSON document (trailing whitespace allowed,
  /// anything else after the value fails). nullopt on malformed input.
  static std::optional<JsonValue> Parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

}  // namespace mpq::obs
