#include "obs/metrics_tracer.h"

#include <string>
#include <variant>

#include "quic/wire.h"

namespace mpq::obs {

MetricsTracer::MetricsTracer(MetricsRegistry& registry)
    : registry_(registry),
      packets_sent_(registry.GetCounter("packets_sent")),
      packets_received_(registry.GetCounter("packets_received")),
      packets_lost_(registry.GetCounter("packets_lost")),
      frames_sent_(registry.GetCounter("frames_sent")),
      frames_received_(registry.GetCounter("frames_received")),
      frames_requeued_(registry.GetCounter("frames_requeued")),
      requeued_bytes_(registry.GetCounter("frames_requeued_bytes")),
      rtos_(registry.GetCounter("rtos")),
      flow_blocked_(registry.GetCounter("flow_control_blocked")),
      srtt_us_(registry.GetHistogram("srtt_us")),
      ack_delay_us_(registry.GetHistogram("ack_delay_us")),
      packet_bytes_(registry.GetHistogram("packet_bytes")),
      scheduler_ns_(registry.GetHistogram("scheduler_decision_ns")) {}

Counter& MetricsTracer::PathCounter(PathId path, const char* suffix) {
  // Cold path relative to the pre-resolved counters: only per-path
  // metrics pay the map lookup, and PathIds are single digits in
  // practice so the string stays in SSO range.
  return registry_.GetCounter("path." + std::to_string(path.value()) + "." + suffix);
}

void MetricsTracer::OnPacketSent(TimePoint /*now*/, PathId path,
                                 PacketNumber /*pn*/, ByteCount bytes,
                                 bool /*retransmittable*/) {
  packets_sent_.Increment();
  packet_bytes_.Record(static_cast<std::int64_t>(bytes.value()));
  PathCounter(path, "packets_sent").Increment();
  PathCounter(path, "bytes_sent").Increment(bytes.value());
}

void MetricsTracer::OnPacketReceived(TimePoint /*now*/, PathId path,
                                     PacketNumber /*pn*/, ByteCount bytes) {
  packets_received_.Increment();
  PathCounter(path, "packets_received").Increment();
  PathCounter(path, "bytes_received").Increment(bytes.value());
}

void MetricsTracer::OnPacketLost(TimePoint /*now*/, PathId path,
                                 PacketNumber /*pn*/) {
  packets_lost_.Increment();
  PathCounter(path, "packets_lost").Increment();
}

void MetricsTracer::OnPacketLifecycle(TimePoint /*now*/, PathId path,
                                      PacketNumber /*pn*/, const char* stage,
                                      Duration since_sent) {
  // Per-path sent→acked / sent→lost latency distributions (simulated
  // µs). p50/p99/p999 of these are the packet-lifecycle KPIs the fig11
  // handover analysis reads.
  registry_
      .GetHistogram("path." + std::to_string(path.value()) + ".lifecycle." +
                    stage + "_us")
      .Record(since_sent);
}

void MetricsTracer::OnFrameSent(TimePoint /*now*/, PathId /*path*/,
                                const quic::Frame& frame) {
  frames_sent_.Increment();
  if (const auto* ack = std::get_if<quic::AckFrame>(&frame)) {
    ack_delay_us_.Record(ack->ack_delay);
  }
}

void MetricsTracer::OnFrameReceived(TimePoint /*now*/, PathId /*path*/,
                                    const quic::Frame& /*frame*/) {
  frames_received_.Increment();
}

void MetricsTracer::OnSchedulerDecision(TimePoint /*now*/, PathId chosen,
                                        const char* /*reason*/,
                                        std::uint64_t elapsed_ns) {
  registry_.GetCounter("scheduler_decisions").Increment();
  scheduler_ns_.Record(static_cast<std::int64_t>(elapsed_ns));
  PathCounter(chosen, "scheduled").Increment();
}

void MetricsTracer::OnPathSample(TimePoint /*now*/, PathId path,
                                 ByteCount cwnd, ByteCount in_flight,
                                 Duration srtt) {
  srtt_us_.Record(srtt);
  registry_.GetGauge("path." + std::to_string(path.value()) + ".cwnd")
      .Set(static_cast<std::int64_t>(cwnd.value()));
  registry_.GetGauge("path." + std::to_string(path.value()) + ".bytes_in_flight")
      .Set(static_cast<std::int64_t>(in_flight.value()));
}

void MetricsTracer::OnRto(TimePoint /*now*/, PathId path,
                          int /*consecutive*/) {
  rtos_.Increment();
  PathCounter(path, "rtos").Increment();
}

void MetricsTracer::OnFrameRetransmitQueued(TimePoint /*now*/, PathId path,
                                            const quic::Frame& frame) {
  frames_requeued_.Increment();
  requeued_bytes_.Increment(quic::FrameWireSize(frame));
  PathCounter(path, "frames_requeued").Increment();
}

void MetricsTracer::OnFlowControlBlocked(TimePoint /*now*/,
                                         StreamId /*stream*/) {
  flow_blocked_.Increment();
}

void MetricsTracer::OnHandshakeEvent(TimePoint now, const char* milestone) {
  registry_.GetCounter("handshake_events").Increment();
  // Gauge per milestone: when (simulated µs) each handshake stage fired.
  registry_.GetGauge(std::string("handshake.") + milestone + ".time_us")
      .Set(now);
}

void MetricsTracer::OnPathStateChange(TimePoint /*now*/, PathId path,
                                      const char* state) {
  registry_.GetCounter(std::string("path_state.") + state).Increment();
  (void)path;
}

}  // namespace mpq::obs
