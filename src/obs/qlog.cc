#include "obs/qlog.h"

#include <string_view>
#include <variant>

namespace mpq::obs {

namespace {

/// Frame-type-specific fields appended to frame_sent / frame_received /
/// frame_requeued events, enough to follow a transfer without decoding
/// packets: ACK coverage, stream progress, window limits, path status.
void WriteFrameFields(JsonWriter& writer, const quic::Frame& frame) {
  using namespace quic;
  writer.Key("frame").String(FrameTypeName(frame));
  std::visit(
      [&](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, AckFrame>) {
          writer.Key("acked_path").UInt(f.path_id.value());
          writer.Key("largest_acked").UInt(f.LargestAcked().value());
          writer.Key("ack_delay_us").Int(f.ack_delay);
          writer.Key("ranges").UInt(f.ranges.size());
        } else if constexpr (std::is_same_v<T, StreamFrame>) {
          writer.Key("stream").UInt(f.stream_id.value());
          writer.Key("offset").UInt(f.offset.value());
          writer.Key("length").UInt(f.data.size());
          writer.Key("fin").Bool(f.fin);
        } else if constexpr (std::is_same_v<T, WindowUpdateFrame>) {
          writer.Key("stream").UInt(f.stream_id.value());
          writer.Key("max_data").UInt(f.max_data.value());
        } else if constexpr (std::is_same_v<T, BlockedFrame>) {
          writer.Key("stream").UInt(f.stream_id.value());
        } else if constexpr (std::is_same_v<T, RstStreamFrame>) {
          writer.Key("stream").UInt(f.stream_id.value());
          writer.Key("error_code").UInt(f.error_code);
          writer.Key("final_offset").UInt(f.final_offset.value());
        } else if constexpr (std::is_same_v<T, PathsFrame>) {
          writer.Key("paths").BeginArray();
          for (const auto& entry : f.paths) {
            writer.BeginObject();
            writer.Key("path").UInt(entry.path_id.value());
            writer.Key("status").String(
                entry.status == PathStatus::kActive ? "active"
                                                    : "potentially-failed");
            writer.Key("srtt_us").Int(entry.srtt);
            writer.EndObject();
          }
          writer.EndArray();
        } else if constexpr (std::is_same_v<T, AddAddressFrame> ||
                             std::is_same_v<T, RemoveAddressFrame>) {
          writer.Key("addresses").UInt(f.addresses.size());
        } else if constexpr (std::is_same_v<T, HandshakeFrame>) {
          writer.Key("message").String(
              f.message == HandshakeMessageType::kChlo ? "CHLO" : "SHLO");
        } else if constexpr (std::is_same_v<T, ConnectionCloseFrame>) {
          writer.Key("error_code").UInt(f.error_code);
          writer.Key("reason").String(f.reason);
        }
        // PADDING, PING: the type name says it all.
      },
      frame);
}

}  // namespace

QlogTracer::QlogTracer(std::ostream& out, std::string title) : out_(out) {
  // Preamble line: identifies the format (readers skip lines without a
  // "name" member).
  writer_.Clear();
  writer_.BeginObject();
  writer_.Key("qlog_format").String("NDJSON");
  writer_.Key("tool").String("mpquic");
  writer_.Key("title").String(title);
  writer_.Key("time_unit").String("us");
  writer_.EndObject();
  out_ << writer_.str() << '\n';
}

QlogTracer::~QlogTracer() { out_.flush(); }

JsonWriter& QlogTracer::StartEvent(TimePoint now, const char* name) {
  writer_.Clear();
  writer_.BeginObject();
  writer_.Key("time").Int(now);
  writer_.Key("name").String(name);
  writer_.Key("data").BeginObject();
  return writer_;
}

void QlogTracer::FinishEvent() {
  writer_.EndObject();  // data
  writer_.EndObject();  // event
  out_ << writer_.str() << '\n';
  ++events_written_;
}

void QlogTracer::FrameEvent(TimePoint now, const char* name, PathId path,
                            const quic::Frame& frame) {
  JsonWriter& writer = StartEvent(now, name);
  writer.Key("path").UInt(path.value());
  WriteFrameFields(writer, frame);
  FinishEvent();
}

void QlogTracer::OnPacketSent(TimePoint now, PathId path, PacketNumber pn,
                              ByteCount bytes, bool retransmittable) {
  JsonWriter& writer = StartEvent(now, "transport:packet_sent");
  writer.Key("path").UInt(path.value());
  writer.Key("pn").UInt(pn.value());
  writer.Key("bytes").UInt(bytes.value());
  writer.Key("retransmittable").Bool(retransmittable);
  FinishEvent();
}

void QlogTracer::OnPacketReceived(TimePoint now, PathId path,
                                  PacketNumber pn, ByteCount bytes) {
  JsonWriter& writer = StartEvent(now, "transport:packet_received");
  writer.Key("path").UInt(path.value());
  writer.Key("pn").UInt(pn.value());
  writer.Key("bytes").UInt(bytes.value());
  FinishEvent();
}

void QlogTracer::OnPacketLost(TimePoint now, PathId path, PacketNumber pn) {
  JsonWriter& writer = StartEvent(now, "recovery:packet_lost");
  writer.Key("path").UInt(path.value());
  writer.Key("pn").UInt(pn.value());
  FinishEvent();
}

void QlogTracer::OnPacketLifecycle(TimePoint now, PathId path,
                                   PacketNumber pn, const char* stage,
                                   Duration since_sent) {
  JsonWriter& writer = StartEvent(now, "prof:lifecycle");
  writer.Key("path").UInt(path.value());
  writer.Key("pn").UInt(pn.value());
  writer.Key("stage").String(stage);
  writer.Key("since_sent_us").Int(since_sent);
  FinishEvent();
}

void QlogTracer::OnFrameSent(TimePoint now, PathId path,
                             const quic::Frame& frame) {
  FrameEvent(now, "transport:frame_sent", path, frame);
}

void QlogTracer::OnFrameReceived(TimePoint now, PathId path,
                                 const quic::Frame& frame) {
  FrameEvent(now, "transport:frame_received", path, frame);
}

void QlogTracer::OnSchedulerDecision(TimePoint now, PathId chosen,
                                     const char* reason,
                                     std::uint64_t elapsed_ns) {
  JsonWriter& writer = StartEvent(now, "scheduler:decision");
  writer.Key("path").UInt(chosen.value());
  writer.Key("reason").String(reason);
  writer.Key("elapsed_ns").UInt(elapsed_ns);
  FinishEvent();
}

void QlogTracer::OnPathSample(TimePoint now, PathId path, ByteCount cwnd,
                              ByteCount in_flight, Duration srtt) {
  JsonWriter& writer = StartEvent(now, "recovery:metrics_updated");
  writer.Key("path").UInt(path.value());
  writer.Key("cwnd").UInt(cwnd.value());
  writer.Key("bytes_in_flight").UInt(in_flight.value());
  writer.Key("srtt_us").Int(srtt);
  FinishEvent();
}

void QlogTracer::OnRto(TimePoint now, PathId path, int consecutive) {
  JsonWriter& writer = StartEvent(now, "recovery:rto");
  writer.Key("path").UInt(path.value());
  writer.Key("consecutive").Int(consecutive);
  FinishEvent();
}

void QlogTracer::OnFrameRetransmitQueued(TimePoint now, PathId path,
                                         const quic::Frame& frame) {
  FrameEvent(now, "recovery:frame_requeued", path, frame);
}

void QlogTracer::OnFlowControlBlocked(TimePoint now, StreamId stream) {
  JsonWriter& writer = StartEvent(now, "flow_control:blocked");
  writer.Key("stream").UInt(stream.value());
  FinishEvent();
}

void QlogTracer::OnHandshakeEvent(TimePoint now, const char* milestone) {
  JsonWriter& writer = StartEvent(now, "transport:handshake");
  writer.Key("milestone").String(milestone);
  FinishEvent();
}

void QlogTracer::OnPathStateChange(TimePoint now, PathId path,
                                   const char* state) {
  JsonWriter& writer = StartEvent(now, "transport:path_state");
  writer.Key("path").UInt(path.value());
  writer.Key("state").String(state);
  FinishEvent();
}

void QlogTracer::OnLinkFault(TimePoint now, int path, const char* kind,
                             double value) {
  // Down/up transitions get their own event names (they are what a
  // handover analysis looks for); every other fault kind shares sim:fault
  // with the kind in the data object.
  const std::string_view kind_view(kind);
  if (kind_view == "down" || kind_view == "up") {
    JsonWriter& writer = StartEvent(
        now, kind_view == "down" ? "sim:link_down" : "sim:link_up");
    writer.Key("path").Int(path);
    FinishEvent();
    return;
  }
  JsonWriter& writer = StartEvent(now, "sim:fault");
  writer.Key("path").Int(path);
  writer.Key("kind").String(kind);
  writer.Key("value").Double(value);
  FinishEvent();
}

}  // namespace mpq::obs
