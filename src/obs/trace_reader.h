// Reader for the NDJSON traces QlogTracer writes: parses a stream line by
// line and aggregates a per-path / per-event summary. Backs the mpq_trace
// CLI and the observability round-trip tests.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace mpq::obs {

struct PathSummary {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t scheduled = 0;  // scheduler:decision events choosing this path
  std::uint64_t frames_requeued = 0;  // recovery:frame_requeued (lost frames)
  std::uint64_t rtos = 0;
  std::vector<double> cwnd_samples;  // from recovery:metrics_updated
  std::vector<double> srtt_samples_us;
  // Packet-lifecycle latencies from prof:lifecycle events: simulated µs
  // from transmission to the terminal ack / loss declaration.
  std::vector<double> acked_latency_us;
  std::vector<double> lost_latency_us;
};

struct TraceSummary {
  std::string title;             // from the preamble line, if present
  std::uint64_t events = 0;      // event lines parsed
  std::uint64_t malformed = 0;   // lines that failed to parse as events
  TimePoint first_time = 0;
  TimePoint last_time = 0;

  std::map<int, PathSummary> paths;
  std::map<std::string, std::uint64_t> events_by_name;
  std::map<std::string, std::uint64_t> frames_sent_by_type;
  std::map<std::string, std::uint64_t> frames_requeued_by_type;
  std::map<std::string, std::uint64_t> scheduler_reasons;
  std::map<std::string, TimePoint> handshake_milestones;  // name -> time
  std::map<std::string, std::uint64_t> link_faults;  // fault kind -> count
};

/// Read a whole NDJSON trace. Lines that are not valid event objects
/// (including the preamble) are counted in `malformed` — except the
/// preamble, which is recognised by its "qlog_format" member and supplies
/// `title`. Never throws; an empty stream yields an empty summary.
TraceSummary ReadTrace(std::istream& in);

}  // namespace mpq::obs
