#include "obs/prof.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/json.h"
#include "obs/metrics.h"

namespace mpq::obs::prof {
namespace detail {

// One node per distinct (parent, label) pair in a thread's scope tree.
// Labels are string literals at the call sites, so pointer comparison is
// the fast path; strcmp covers the same label spelled in two translation
// units.
struct Node {
  const char* label = nullptr;
  Node* parent = nullptr;
  void* owner = nullptr;  // owning Collector; lets Exit() skip the TLS lookup
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // inclusive
  Histogram hist;              // distribution of inclusive span durations
  std::vector<std::unique_ptr<Node>> children;

  Node* Child(const char* child_label) {
    for (const auto& child : children) {
      if (child->label == child_label ||
          std::strcmp(child->label, child_label) == 0) {
        return child.get();
      }
    }
    children.push_back(std::make_unique<Node>());
    Node* child = children.back().get();
    child->label = child_label;
    child->parent = this;
    child->owner = owner;
    return child;
  }
};

namespace {

// Per-thread collector: a tree rooted at a label-less node plus the
// cursor the next Enter() descends from. Registered globally so
// Snapshot() sees every thread; on thread exit the tree is merged into
// the retained tree under the registry lock.
class Collector {
 public:
  Collector();
  ~Collector();

  static Collector* Of(Node* node) {
    return static_cast<Collector*>(node->owner);
  }

  Node* Enter(const char* label) {
    current_ = current_->Child(label);
    return current_;
  }
  void Exit(Node* node, std::uint64_t elapsed_ns) {
    node->count += 1;
    node->total_ns += elapsed_ns;
    node->hist.Record(static_cast<std::int64_t>(
        std::min<std::uint64_t>(elapsed_ns, INT64_MAX)));
    current_ = node->parent != nullptr ? node->parent : &root_;
  }

  Node root_;
  Node* current_ = &root_;
};

struct GlobalRegistry {
  std::mutex mu;
  std::vector<Collector*> live;
  Node retained;  // merged trees of threads that have exited
};

GlobalRegistry& Registry() {
  // Intentionally leaked: collectors of detached threads may unregister
  // during process teardown, after static destructors would have run.
  static GlobalRegistry* registry =
      new GlobalRegistry();  // NOLINT(mpq-naked-new): immortal singleton
  return *registry;
}

// Merge `from`'s subtree into `into` (labels matched by strcmp).
void MergeTree(const Node& from, Node* into) {
  into->count += from.count;
  into->total_ns += from.total_ns;
  into->hist.Merge(from.hist);
  for (const auto& child : from.children) {
    MergeTree(*child, into->Child(child->label));
  }
}

void ZeroTree(Node* node) {
  node->count = 0;
  node->total_ns = 0;
  node->hist = Histogram();
  for (const auto& child : node->children) ZeroTree(child.get());
}

Collector& ThreadCollector() {
  thread_local Collector collector;
  return collector;
}

Collector::Collector() {
  root_.owner = this;
  auto& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.live.push_back(this);
}

Collector::~Collector() {
  auto& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& child : root_.children) {
    MergeTree(*child, registry.retained.Child(child->label));
  }
  registry.live.erase(
      std::remove(registry.live.begin(), registry.live.end(), this),
      registry.live.end());
}

// "crypto/seal" -> "crypto;seal": scope labels use '/' between
// components; folded stacks separate every frame with ';'.
std::string NormalizeLabel(const char* label) {
  std::string out(label);
  std::replace(out.begin(), out.end(), '/', ';');
  return out;
}

void CollectStats(const Node& node, const std::string& prefix,
                  std::vector<SpanStats>* out) {
  // Reset() zeroes live trees in place (node identity must survive for
  // open scopes); zeroed nodes are structure, not data — skip them.
  if (node.count == 0) {
    for (const auto& child : node.children) {
      CollectStats(*child, prefix + ';' + NormalizeLabel(child->label), out);
    }
    return;
  }
  std::uint64_t children_total = 0;
  for (const auto& child : node.children) children_total += child->total_ns;

  SpanStats stats;
  stats.stack = prefix;
  stats.leaf = NormalizeLabel(node.label);
  stats.count = node.count;
  stats.total_ns = node.total_ns;
  stats.self_ns =
      node.total_ns > children_total ? node.total_ns - children_total : 0;
  stats.p50_ns = node.hist.Percentile(50);
  stats.p99_ns = node.hist.Percentile(99);
  stats.p999_ns = node.hist.Percentile(99.9);
  stats.max_ns = node.hist.max();
  out->push_back(std::move(stats));

  for (const auto& child : node.children) {
    CollectStats(*child, prefix + ';' + NormalizeLabel(child->label),
                 out);
  }
}

// Snapshot under the registry lock: retained tree plus every live
// thread's tree, merged into one scratch tree.
void MergedSnapshot(Node* scratch) {
  auto& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& child : registry.retained.children) {
    MergeTree(*child, scratch->Child(child->label));
  }
  for (const Collector* collector : registry.live) {
    for (const auto& child : collector->root_.children) {
      MergeTree(*child, scratch->Child(child->label));
    }
  }
}

}  // namespace

Node* Enter(const char* label) { return ThreadCollector().Enter(label); }

void Exit(Node* node, std::uint64_t elapsed_ns) {
  Collector::Of(node)->Exit(node, elapsed_ns);
}

}  // namespace detail

namespace {

// Measure nanoseconds per ReadTicks() tick once, against MonotonicNanos()
// over a ~2 ms window. Invariant-TSC x86 and the aarch64 virtual counter
// are constant-rate, so one calibration holds for the process lifetime.
double CalibrateNsPerTick() {
  const std::uint64_t ns0 = MonotonicNanos();
  const std::uint64_t t0 = detail::ReadTicks();
  std::uint64_t ns1 = ns0;
  std::uint64_t t1 = t0;
  while (ns1 - ns0 < 2'000'000) {  // 2 ms
    ns1 = MonotonicNanos();
    t1 = detail::ReadTicks();
  }
  if (t1 == t0) return 1.0;  // tick source is itself nanoseconds (or broken)
  return static_cast<double>(ns1 - ns0) / static_cast<double>(t1 - t0);
}

}  // namespace

void SetEnabled(bool on) {
  if (on) {
    static const double ns_per_tick = CalibrateNsPerTick();
    detail::g_ns_per_tick = ns_per_tick;
  }
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool Enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

void Reset() {
  auto& registry = detail::Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.retained.children.clear();
  // Live trees are zeroed, not freed: another thread (or an enclosing
  // scope on this one) may hold Node pointers for spans still open.
  for (detail::Collector* collector : registry.live) {
    detail::ZeroTree(&collector->root_);
  }
}

std::vector<SpanStats> Snapshot() {
  detail::Node scratch;
  detail::MergedSnapshot(&scratch);
  std::vector<SpanStats> out;
  for (const auto& child : scratch.children) {
    detail::CollectStats(*child, detail::NormalizeLabel(child->label), &out);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanStats& a, const SpanStats& b) {
              return a.stack < b.stack;
            });
  return out;
}

std::string FoldedStacks() {
  std::string out;
  for (const SpanStats& span : Snapshot()) {
    if (span.self_ns == 0) continue;
    out += span.stack;
    out += ' ';
    out += std::to_string(span.self_ns);
    out += '\n';
  }
  return out;
}

void ExportTo(MetricsRegistry& registry) {
  detail::Node scratch;
  detail::MergedSnapshot(&scratch);
  // Walk with the histograms still attached (SpanStats only carries
  // percentiles); metric name = "prof." + stack with '.' separators.
  struct Walker {
    MetricsRegistry* registry;
    void Walk(const detail::Node& node, const std::string& prefix) {
      if (node.count > 0) {
        std::string name = "prof." + prefix + "_ns";
        std::replace(name.begin(), name.end(), ';', '.');
        registry->GetHistogram(name).Merge(node.hist);
      }
      for (const auto& child : node.children) {
        Walk(*child,
             prefix + ';' + detail::NormalizeLabel(child->label));
      }
    }
  } walker{&registry};
  for (const auto& child : scratch.children) {
    walker.Walk(*child, detail::NormalizeLabel(child->label));
  }
}

void WriteSpans(JsonWriter& writer) {
  writer.BeginArray();
  for (const SpanStats& span : Snapshot()) {
    writer.BeginObject();
    writer.Key("stack").String(span.stack);
    writer.Key("leaf").String(span.leaf);
    writer.Key("count").UInt(span.count);
    writer.Key("total_ns").UInt(span.total_ns);
    writer.Key("self_ns").UInt(span.self_ns);
    writer.Key("p50_ns").Double(span.p50_ns);
    writer.Key("p99_ns").Double(span.p99_ns);
    writer.Key("p999_ns").Double(span.p999_ns);
    writer.Key("max_ns").Int(span.max_ns);
    writer.EndObject();
  }
  writer.EndArray();
}

void WriteJson(JsonWriter& writer) {
  writer.BeginObject();
  writer.Key("spans");
  WriteSpans(writer);
  writer.EndObject();
}

}  // namespace mpq::obs::prof
