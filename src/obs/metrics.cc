#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace mpq::obs {

std::size_t Histogram::BucketIndex(std::int64_t value) {
  if (value < 0) value = 0;
  const std::uint64_t v = static_cast<std::uint64_t>(value);
  if (v < kUnitBuckets) return static_cast<std::size_t>(v);
  // v >= 32: bit_width >= 6. Keep the top 5 significand bits: the leading
  // 1 selects the power-of-two group, the next 4 the linear sub-bucket.
  const int width = static_cast<int>(std::bit_width(v));
  const int shift = width - 5;
  const std::uint64_t top = v >> shift;  // in [16, 32)
  return kUnitBuckets +
         static_cast<std::size_t>(width - 6) * kSubBuckets +
         static_cast<std::size_t>(top - kSubBuckets);
}

std::uint64_t Histogram::BucketLowerBound(std::size_t index) {
  if (index < kUnitBuckets) return index;
  const std::size_t group = (index - kUnitBuckets) / kSubBuckets;
  const std::size_t sub = (index - kUnitBuckets) % kSubBuckets;
  return (kSubBuckets + static_cast<std::uint64_t>(sub)) << (group + 1);
}

void Histogram::Record(std::int64_t value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  AddToSum(static_cast<std::uint64_t>(value));
  ++count_;
  ++buckets_[BucketIndex(value)];
}

void Histogram::AddToSum(std::uint64_t value) {
#if defined(__SIZEOF_INT128__)
  sum_ += static_cast<SumType>(value);
#else
  if (sum_ > std::numeric_limits<std::uint64_t>::max() - value) {
    sum_ = std::numeric_limits<std::uint64_t>::max();
    sum_saturated_ = true;
  } else {
    sum_ += value;
  }
#endif
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
#if defined(__SIZEOF_INT128__)
  sum_ += other.sum_;
#else
  AddToSum(other.sum_);
  sum_saturated_ = sum_saturated_ || other.sum_saturated_;
#endif
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // The extremes are tracked exactly; only interior percentiles go
  // through the bucket approximation.
  if (p == 0.0) return static_cast<double>(min());
  if (p == 100.0) return static_cast<double>(max());
  // Rank of the requested percentile, 1-based, nearest-rank method.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(p / 100.0 *
                                    static_cast<double>(count_) +
                                    0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const double low = static_cast<double>(BucketLowerBound(i));
      const double high =
          i + 1 < kBucketCount ? static_cast<double>(BucketLowerBound(i + 1))
                               : low + 1.0;
      const double mid = (low + high) / 2.0;
      return std::clamp(mid, static_cast<double>(min()),
                        static_cast<double>(max()));
    }
  }
  return static_cast<double>(max());
}

void Histogram::WriteJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.Key("count").UInt(count_);
  writer.Key("min").Int(min());
  writer.Key("mean").Double(mean());
  writer.Key("p50").Double(Percentile(50));
  writer.Key("p90").Double(Percentile(90));
  writer.Key("p99").Double(Percentile(99));
  writer.Key("p999").Double(Percentile(99.9));
  writer.Key("max").Int(max());
  if (sum_saturated_) writer.Key("sum_saturated").Bool(true);
  writer.EndObject();
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::WriteJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    writer.Key(name).UInt(counter->value());
  }
  writer.EndObject();
  writer.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    writer.Key(name).Int(gauge->value());
  }
  writer.EndObject();
  writer.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    writer.Key(name);
    histogram->WriteJson(writer);
  }
  writer.EndObject();
  writer.EndObject();
}

std::string MetricsRegistry::SnapshotJson() const {
  JsonWriter writer;
  WriteJson(writer);
  return writer.str();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    GetCounter(name).Increment(counter->value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    GetGauge(name).Set(gauge->value());
  }
  for (const auto& [name, histogram] : other.histograms_) {
    GetHistogram(name).Merge(*histogram);
  }
}

}  // namespace mpq::obs
