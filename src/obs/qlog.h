// qlog-style structured trace writer: one compact JSON object per line
// (NDJSON), one line per connection event, timestamped with the
// simulated clock in microseconds. The schema follows qlog's spirit —
// "name" is a category:event string, "data" carries the event fields —
// without claiming conformance to the IETF qlog schema (our transport is
// not RFC-QUIC). Read traces back with obs::ReadTrace or the mpq_trace
// CLI.
//
// Event catalogue (see docs/OBSERVABILITY.md):
//   transport:packet_sent     {path,pn,bytes,retransmittable}
//   transport:packet_received {path,pn,bytes}
//   transport:frame_sent      {path,frame,+frame fields}
//   transport:frame_received  {path,frame,+frame fields}
//   transport:handshake       {milestone}
//   transport:path_state      {path,state}
//   scheduler:decision        {path,reason,elapsed_ns}
//   recovery:packet_lost      {path,pn}
//   recovery:metrics_updated  {path,cwnd,bytes_in_flight,srtt_us}
//   recovery:rto              {path,consecutive}
//   recovery:frame_requeued   {path,frame}
//   flow_control:blocked      {stream}
//   prof:lifecycle            {path,pn,stage,since_sent_us}
//                             (stage = "acked" | "lost": sent→terminal
//                              latency of one packet, simulated time)
//   sim:link_down             {path}            (fault injection)
//   sim:link_up               {path}
//   sim:fault                 {path,kind,value} (loss / reconfigure / burst)
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "obs/json.h"
#include "quic/trace.h"

namespace mpq::obs {

class QlogTracer final : public quic::ConnectionTracer {
 public:
  /// Writes events to `out` (not owned; must outlive the tracer).
  /// `title` labels the trace in its preamble line (vantage point,
  /// scenario name, ... — any string, it is JSON-escaped).
  explicit QlogTracer(std::ostream& out, std::string title = "");
  ~QlogTracer() override;

  QlogTracer(const QlogTracer&) = delete;
  QlogTracer& operator=(const QlogTracer&) = delete;

  std::uint64_t events_written() const { return events_written_; }

  // -- ConnectionTracer ---------------------------------------------------
  void OnPacketSent(TimePoint now, PathId path, PacketNumber pn,
                    ByteCount bytes, bool retransmittable) override;
  void OnPacketReceived(TimePoint now, PathId path, PacketNumber pn,
                        ByteCount bytes) override;
  void OnPacketLost(TimePoint now, PathId path, PacketNumber pn) override;
  void OnPacketLifecycle(TimePoint now, PathId path, PacketNumber pn,
                         const char* stage, Duration since_sent) override;
  void OnFrameSent(TimePoint now, PathId path,
                   const quic::Frame& frame) override;
  void OnFrameReceived(TimePoint now, PathId path,
                       const quic::Frame& frame) override;
  void OnSchedulerDecision(TimePoint now, PathId chosen, const char* reason,
                           std::uint64_t elapsed_ns) override;
  void OnPathSample(TimePoint now, PathId path, ByteCount cwnd,
                    ByteCount in_flight, Duration srtt) override;
  void OnRto(TimePoint now, PathId path, int consecutive) override;
  void OnFrameRetransmitQueued(TimePoint now, PathId path,
                               const quic::Frame& frame) override;
  void OnFlowControlBlocked(TimePoint now, StreamId stream) override;
  void OnHandshakeEvent(TimePoint now, const char* milestone) override;
  void OnPathStateChange(TimePoint now, PathId path,
                         const char* state) override;
  void OnLinkFault(TimePoint now, int path, const char* kind,
                   double value) override;

 private:
  /// Open an event line: {"time":now,"name":name,"data":{ ... leaves the
  /// data object open for the caller to fill; FinishEvent closes it and
  /// flushes the line.
  JsonWriter& StartEvent(TimePoint now, const char* name);
  void FinishEvent();
  void FrameEvent(TimePoint now, const char* name, PathId path,
                  const quic::Frame& frame);

  std::ostream& out_;
  JsonWriter writer_;  // reused buffer, one event at a time
  std::uint64_t events_written_ = 0;
};

}  // namespace mpq::obs
