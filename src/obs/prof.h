// In-process datapath profiler: lightweight scoped timers recording into
// per-thread hierarchical span collectors.
//
//   void Seal(...) {
//     MPQ_PROF_SCOPE("crypto/seal");
//     ...
//   }
//
// Design:
//  - Each thread owns a tree of Nodes keyed by the scope's string-literal
//    label; entering a scope walks one edge (find-or-create child),
//    leaving it records the elapsed MonotonicNanos() into the node's
//    count/total and a per-node log-linear Histogram. Nesting therefore
//    yields hierarchical stacks ("sim;event;dispatch;packet;crypto;open")
//    for free, with no sampling and no symbolization.
//  - A relaxed atomic enable flag gates recording at runtime: scopes in
//    a binary built with MPQ_PROF cost one load+branch while disabled.
//  - When MPQ_PROF is not defined (cmake -DMPQ_PROF=OFF), MPQ_PROF_SCOPE
//    expands to a constexpr-evaluable no-op — provably zero-cost; see
//    tests/prof_disabled_test.cc for the negative proof.
//  - Snapshot() merges the calling thread, all other registered threads,
//    and the retained trees of exited threads. Take snapshots while other
//    instrumented threads are quiescent (the harness joins its workers
//    first); concurrent recording on *other* threads during a snapshot
//    can tear counts but cannot crash.
//
// Label convention: '/'-separated components, first component = subsystem
// ("crypto/seal", "assembly/packet"). Folded output rewrites '/' to ';'
// and joins nested scopes with ';' — the exact format flamegraph.pl and
// speedscope ingest: "sim;event;crypto;seal 12345".
//
// This header is a foundation-layer leaf: everything under src/ may
// include it (the mpq-layering lint rule special-cases "obs/prof"), and
// it depends only on src/common. Raw MonotonicNanos() timing anywhere
// else in src/ is rejected by the mpq-prof-clock lint rule.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace mpq::obs {
class JsonWriter;
class MetricsRegistry;
}  // namespace mpq::obs

namespace mpq::obs::prof {

// Compile-time gate. MPQ_PROF is defined by the build system (cmake
// option MPQ_PROF, default ON); MPQ_PROF_FORCE_OFF lets a single test
// translation unit observe the disabled configuration without a separate
// build tree.
#if defined(MPQ_PROF) && !defined(MPQ_PROF_FORCE_OFF)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

namespace detail {

struct Node;  // opaque; defined in prof.cc

// Runtime gate, read with relaxed ordering on every scope entry. Inline
// so the disabled-at-runtime cost is one predictable branch.
inline std::atomic<bool> g_enabled{false};

// Nanoseconds per ReadTicks() tick, calibrated against MonotonicNanos()
// by SetEnabled(true). Scopes multiply by this on exit, so all recorded
// durations are nanoseconds regardless of the tick source. Written
// before g_enabled flips on; plain double is fine for the single
// enabling thread + threads it subsequently spawns.
inline double g_ns_per_tick = 1.0;

/// Cheapest available monotonic-ish timestamp for span deltas: raw TSC
/// on x86-64, the virtual counter on aarch64, MonotonicNanos() (one
/// clock_gettime) elsewhere. A raw cycle counter halves the per-scope
/// cost versus two clock_gettime calls, which is what keeps profiled
/// engine runs within the overhead budget. Frequency drift over a bench
/// run is negligible on invariant-TSC hardware; the profiler is a
/// measurement tool, not a clock.
inline std::uint64_t ReadTicks() {
#if defined(__x86_64__)
  std::uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#elif defined(__aarch64__)
  std::uint64_t ticks;
  asm volatile("mrs %0, cntvct_el0" : "=r"(ticks));
  return ticks;
#else
  return MonotonicNanos();
#endif
}

/// Descend from the calling thread's current node to the child labelled
/// `label` (created on first use) and make it current. Returns the child.
Node* Enter(const char* label);

/// Record one completed span on `node` and pop back to its parent.
void Exit(Node* node, std::uint64_t elapsed_ns);

}  // namespace detail

/// Turn recording on/off globally. Scopes opened while disabled record
/// nothing (including their close, even if recording is enabled while
/// they are live).
void SetEnabled(bool on);
bool Enabled();

/// Drop all recorded spans (live threads' stats are zeroed in place;
/// retained trees of exited threads are discarded). Node identity stays
/// valid, so Reset() is safe while scopes are live on the calling thread.
void Reset();

/// One aggregated span stack, merged across threads.
struct SpanStats {
  std::string stack;      // "sim;event;crypto;seal"
  std::string leaf;       // innermost scope label, normalized: "crypto;seal"
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // inclusive
  std::uint64_t self_ns = 0;   // inclusive minus children's inclusive
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  std::int64_t max_ns = 0;
};

/// Merged view of every recorded span, sorted by stack string.
std::vector<SpanStats> Snapshot();

/// flamegraph.pl / speedscope collapsed-stack format: one
/// "stack self_ns" line per span with nonzero self time.
std::string FoldedStacks();

/// Merge every span's duration histogram into `registry` under
/// "prof.<stack>_ns" (stack components joined with '.'), so profiles
/// land in the same snapshot JSON as the rest of the metrics.
void ExportTo(MetricsRegistry& registry);

/// {"spans":[{"stack":..,"leaf":..,"count":..,"total_ns":..,"self_ns":..,
///            "p50_ns":..,"p99_ns":..,"p999_ns":..,"max_ns":..},...]}
/// — the profile-dump format tools/mpq_prof consumes.
void WriteJson(JsonWriter& writer);

/// Just the spans array (a JSON value), for embedding a profile inside a
/// larger document (bench_perf_baseline --prof nests one in BENCH json).
void WriteSpans(JsonWriter& writer);

/// RAII span. Prefer the MPQ_PROF_SCOPE macro, which compiles out
/// entirely when MPQ_PROF is off.
class Scope {
 public:
  explicit Scope(const char* label) {
    if (detail::g_enabled.load(std::memory_order_relaxed)) {
      node_ = detail::Enter(label);
      start_ticks_ = detail::ReadTicks();
    }
  }
  ~Scope() {
    if (node_ != nullptr) {
      const std::uint64_t ticks = detail::ReadTicks() - start_ticks_;
      detail::Exit(node_, static_cast<std::uint64_t>(
                              static_cast<double>(ticks) *
                              detail::g_ns_per_tick));
    }
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  detail::Node* node_ = nullptr;
  std::uint64_t start_ticks_ = 0;
};

}  // namespace mpq::obs::prof

#if defined(MPQ_PROF) && !defined(MPQ_PROF_FORCE_OFF)
#define MPQ_PROF_CONCAT_INNER(a, b) a##b
#define MPQ_PROF_CONCAT(a, b) MPQ_PROF_CONCAT_INNER(a, b)
#define MPQ_PROF_SCOPE(label) \
  ::mpq::obs::prof::Scope MPQ_PROF_CONCAT(mpq_prof_scope_, __LINE__)(label)
#else
// Constexpr-evaluable no-op: a constexpr function body containing
// MPQ_PROF_SCOPE(...) compiles only in this configuration, which is how
// tests/prof_disabled_test.cc proves the macro leaves no residue.
#define MPQ_PROF_SCOPE(label) \
  static_cast<void>(0)
#endif
