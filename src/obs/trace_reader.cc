#include "obs/trace_reader.h"

#include <string>
#include <string_view>

#include "obs/json.h"

namespace mpq::obs {

namespace {

std::int64_t FieldInt(const JsonValue& data, std::string_view key,
                      std::int64_t fallback = 0) {
  const JsonValue* v = data.Find(key);
  return v == nullptr ? fallback : v->AsInt(fallback);
}

std::string FieldString(const JsonValue& data, std::string_view key) {
  const JsonValue* v = data.Find(key);
  return v == nullptr ? std::string() : v->AsString();
}

/// Strict NDJSON event validation: every line must be a complete JSON
/// object; an event needs a string `name`, a non-negative numeric
/// `time`, an object `data` (when present) and an in-range integer
/// `data.path` (when present). Anything else is counted as malformed
/// and contributes nothing to the summary — a half-written or corrupted
/// trace degrades loudly (the malformed counter) instead of skewing the
/// statistics silently.
bool ValidEvent(const JsonValue& event) {
  if (!event.is_object()) return false;
  const JsonValue* name = event.Find("name");
  const JsonValue* time = event.Find("time");
  if (name == nullptr || !name->is_string() || name->AsString().empty()) {
    return false;
  }
  if (time == nullptr || !time->is_number() || time->AsInt(-1) < 0) {
    return false;
  }
  const JsonValue* data = event.Find("data");
  if (data != nullptr) {
    if (!data->is_object()) return false;
    const JsonValue* path = data->Find("path");
    if (path != nullptr &&
        (!path->is_number() || path->AsInt(-1) < 0 || path->AsInt() > 255)) {
      return false;
    }
  }
  return true;
}

}  // namespace

TraceSummary ReadTrace(std::istream& in) {
  TraceSummary summary;
  bool first_event = true;
  std::string line;
  bool at_eof = false;
  while (!at_eof) {
    // Read one line by hand so a truncated final line (stream ended
    // before the newline — e.g. a crashed writer) is detectable: NDJSON
    // requires the terminator, so such a line is malformed even if its
    // prefix happens to parse.
    line.clear();
    bool newline_terminated = false;
    for (int c = in.get(); ; c = in.get()) {
      if (c == std::char_traits<char>::eof()) {
        at_eof = true;
        break;
      }
      if (c == '\n') {
        newline_terminated = true;
        break;
      }
      line.push_back(static_cast<char>(c));
    }
    if (line.empty()) continue;
    if (!newline_terminated) {
      ++summary.malformed;
      continue;
    }
    const auto parsed = JsonValue::Parse(line);
    if (!parsed.has_value()) {
      ++summary.malformed;
      continue;
    }
    const JsonValue& event = *parsed;
    if (event.is_object() && event.Find("qlog_format") != nullptr) {
      summary.title = FieldString(event, "title");
      continue;  // preamble
    }
    if (!ValidEvent(event)) {
      ++summary.malformed;
      continue;
    }
    const std::string& name = event.Find("name")->AsString();
    const TimePoint time = event.Find("time")->AsInt();
    ++summary.events;
    ++summary.events_by_name[name];
    if (first_event) {
      summary.first_time = time;
      first_event = false;
    }
    summary.last_time = time;

    const JsonValue* data_ptr = event.Find("data");
    static const JsonValue kEmpty;
    const JsonValue& data = data_ptr != nullptr ? *data_ptr : kEmpty;
    const int path = static_cast<int>(FieldInt(data, "path", -1));

    if (name == "transport:packet_sent") {
      auto& p = summary.paths[path];
      ++p.packets_sent;
      p.bytes_sent += static_cast<std::uint64_t>(FieldInt(data, "bytes"));
    } else if (name == "transport:packet_received") {
      ++summary.paths[path].packets_received;
    } else if (name == "recovery:packet_lost") {
      ++summary.paths[path].packets_lost;
    } else if (name == "transport:frame_sent") {
      ++summary.paths[path].frames_sent;
      ++summary.frames_sent_by_type[FieldString(data, "frame")];
    } else if (name == "scheduler:decision") {
      ++summary.paths[path].scheduled;
      ++summary.scheduler_reasons[FieldString(data, "reason")];
    } else if (name == "recovery:metrics_updated") {
      auto& p = summary.paths[path];
      p.cwnd_samples.push_back(
          static_cast<double>(FieldInt(data, "cwnd")));
      p.srtt_samples_us.push_back(
          static_cast<double>(FieldInt(data, "srtt_us")));
    } else if (name == "recovery:frame_requeued") {
      ++summary.paths[path].frames_requeued;
      ++summary.frames_requeued_by_type[FieldString(data, "frame")];
    } else if (name == "prof:lifecycle") {
      auto& p = summary.paths[path];
      const double us = static_cast<double>(FieldInt(data, "since_sent_us"));
      if (FieldString(data, "stage") == "lost") {
        p.lost_latency_us.push_back(us);
      } else {
        p.acked_latency_us.push_back(us);
      }
    } else if (name == "recovery:rto") {
      ++summary.paths[path].rtos;
    } else if (name == "transport:handshake") {
      summary.handshake_milestones[FieldString(data, "milestone")] = time;
    } else if (name == "sim:link_down") {
      ++summary.link_faults["down"];
    } else if (name == "sim:link_up") {
      ++summary.link_faults["up"];
    } else if (name == "sim:fault") {
      ++summary.link_faults[FieldString(data, "kind")];
    }
    // Other event types only contribute to events_by_name.
  }
  return summary;
}

}  // namespace mpq::obs
