#include "obs/trace_reader.h"

#include <string_view>

#include "obs/json.h"

namespace mpq::obs {

namespace {

std::int64_t FieldInt(const JsonValue& data, std::string_view key,
                      std::int64_t fallback = 0) {
  const JsonValue* v = data.Find(key);
  return v == nullptr ? fallback : v->AsInt(fallback);
}

std::string FieldString(const JsonValue& data, std::string_view key) {
  const JsonValue* v = data.Find(key);
  return v == nullptr ? std::string() : v->AsString();
}

}  // namespace

TraceSummary ReadTrace(std::istream& in) {
  TraceSummary summary;
  bool first_event = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto parsed = JsonValue::Parse(line);
    if (!parsed.has_value()) {
      ++summary.malformed;
      continue;
    }
    const JsonValue& event = *parsed;
    if (event.Find("qlog_format") != nullptr) {
      summary.title = FieldString(event, "title");
      continue;  // preamble
    }
    const JsonValue* name_value = event.Find("name");
    const JsonValue* time_value = event.Find("time");
    if (name_value == nullptr || time_value == nullptr) {
      ++summary.malformed;
      continue;
    }
    const std::string& name = name_value->AsString();
    const TimePoint time = time_value->AsInt();
    ++summary.events;
    ++summary.events_by_name[name];
    if (first_event) {
      summary.first_time = time;
      first_event = false;
    }
    summary.last_time = time;

    const JsonValue* data_ptr = event.Find("data");
    static const JsonValue kEmpty;
    const JsonValue& data = data_ptr != nullptr ? *data_ptr : kEmpty;
    const int path = static_cast<int>(FieldInt(data, "path", -1));

    if (name == "transport:packet_sent") {
      auto& p = summary.paths[path];
      ++p.packets_sent;
      p.bytes_sent += static_cast<std::uint64_t>(FieldInt(data, "bytes"));
    } else if (name == "transport:packet_received") {
      ++summary.paths[path].packets_received;
    } else if (name == "recovery:packet_lost") {
      ++summary.paths[path].packets_lost;
    } else if (name == "transport:frame_sent") {
      ++summary.paths[path].frames_sent;
      ++summary.frames_sent_by_type[FieldString(data, "frame")];
    } else if (name == "scheduler:decision") {
      ++summary.paths[path].scheduled;
      ++summary.scheduler_reasons[FieldString(data, "reason")];
    } else if (name == "recovery:metrics_updated") {
      auto& p = summary.paths[path];
      p.cwnd_samples.push_back(
          static_cast<double>(FieldInt(data, "cwnd")));
      p.srtt_samples_us.push_back(
          static_cast<double>(FieldInt(data, "srtt_us")));
    } else if (name == "recovery:rto") {
      ++summary.paths[path].rtos;
    } else if (name == "transport:handshake") {
      summary.handshake_milestones[FieldString(data, "milestone")] = time;
    }
    // Other event types only contribute to events_by_name.
  }
  return summary;
}

}  // namespace mpq::obs
