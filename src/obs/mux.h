// Fan-out tracer: forwards every ConnectionTracer event to any number of
// downstream tracers, so one connection can feed a QlogTracer (full
// trace), a MetricsTracer (aggregates) and a test CountingTracer at
// once. Downstream tracers are not owned and must outlive the mux.
#pragma once

#include <vector>

#include "quic/trace.h"

namespace mpq::obs {

class TracerMux final : public quic::ConnectionTracer {
 public:
  TracerMux() = default;

  /// Null sinks are ignored — callers can pass optionally-present tracers
  /// without branching.
  void Add(quic::ConnectionTracer* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  std::size_t size() const { return sinks_.size(); }

  // -- ConnectionTracer ---------------------------------------------------
  void OnPacketSent(TimePoint now, PathId path, PacketNumber pn,
                    ByteCount bytes, bool retransmittable) override {
    for (auto* sink : sinks_) {
      sink->OnPacketSent(now, path, pn, bytes, retransmittable);
    }
  }
  void OnPacketReceived(TimePoint now, PathId path, PacketNumber pn,
                        ByteCount bytes) override {
    for (auto* sink : sinks_) sink->OnPacketReceived(now, path, pn, bytes);
  }
  void OnPacketLost(TimePoint now, PathId path, PacketNumber pn) override {
    for (auto* sink : sinks_) sink->OnPacketLost(now, path, pn);
  }
  void OnPacketLifecycle(TimePoint now, PathId path, PacketNumber pn,
                         const char* stage, Duration since_sent) override {
    for (auto* sink : sinks_) {
      sink->OnPacketLifecycle(now, path, pn, stage, since_sent);
    }
  }
  void OnFrameSent(TimePoint now, PathId path,
                   const quic::Frame& frame) override {
    for (auto* sink : sinks_) sink->OnFrameSent(now, path, frame);
  }
  void OnFrameReceived(TimePoint now, PathId path,
                       const quic::Frame& frame) override {
    for (auto* sink : sinks_) sink->OnFrameReceived(now, path, frame);
  }
  void OnSchedulerDecision(TimePoint now, PathId chosen, const char* reason,
                           std::uint64_t elapsed_ns) override {
    for (auto* sink : sinks_) {
      sink->OnSchedulerDecision(now, chosen, reason, elapsed_ns);
    }
  }
  void OnPathSample(TimePoint now, PathId path, ByteCount cwnd,
                    ByteCount in_flight, Duration srtt) override {
    for (auto* sink : sinks_) {
      sink->OnPathSample(now, path, cwnd, in_flight, srtt);
    }
  }
  void OnRto(TimePoint now, PathId path, int consecutive) override {
    for (auto* sink : sinks_) sink->OnRto(now, path, consecutive);
  }
  void OnFrameRetransmitQueued(TimePoint now, PathId path,
                               const quic::Frame& frame) override {
    for (auto* sink : sinks_) sink->OnFrameRetransmitQueued(now, path, frame);
  }
  void OnFlowControlBlocked(TimePoint now, StreamId stream) override {
    for (auto* sink : sinks_) sink->OnFlowControlBlocked(now, stream);
  }
  void OnHandshakeEvent(TimePoint now, const char* milestone) override {
    for (auto* sink : sinks_) sink->OnHandshakeEvent(now, milestone);
  }
  void OnPathStateChange(TimePoint now, PathId path,
                         const char* state) override {
    for (auto* sink : sinks_) sink->OnPathStateChange(now, path, state);
  }
  void OnLinkFault(TimePoint now, int path, const char* kind,
                   double value) override {
    for (auto* sink : sinks_) sink->OnLinkFault(now, path, kind, value);
  }

 private:
  std::vector<quic::ConnectionTracer*> sinks_;
};

}  // namespace mpq::obs
