// TCP/MPTCP segment wire format for the baseline stack.
//
// This models the Linux TCP + MPTCP v0.91 baseline of the paper's
// evaluation (§4.1). The serialized layout stands in for a TCP header
// plus options, with byte counts close to the real thing:
//   * cumulative ACK and a receive window in EVERY segment (§2 contrasts
//     this with QUIC's occasional WINDOW_UPDATE),
//   * at most 3 SACK blocks (the option-space limit the paper blames for
//     TCP's weaker loss recovery, §4.1 "Low-BDP-losses"),
//   * for MPTCP, a DSS option carrying the data sequence number (DSN)
//     mapping and a connection-level DATA_ACK,
//   * MP_CAPABLE / MP_JOIN handshake flags; a connection token (`cid`)
//     standing in for the port pair + MPTCP token demultiplexing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/buf.h"
#include "common/types.h"

namespace mpq::tcp {

inline constexpr int kMaxSackBlocks = 3;

enum SegmentFlags : std::uint8_t {
  kFlagSyn = 0x01,
  kFlagAck = 0x02,
  kFlagFin = 0x04,  // subflow-level FIN (unused by the experiments)
  kFlagMpJoin = 0x08,
  kFlagDataFin = 0x10,  // MPTCP DATA_FIN: end of the connection stream
};

struct SackBlock {
  std::uint64_t start = 0;  // subflow sequence, inclusive
  std::uint64_t end = 0;    // exclusive
};

/// DSS option: maps this segment's payload into the connection-level
/// data sequence space.
struct DssMapping {
  std::uint64_t dsn = 0;  // DSN of the first payload byte
};

struct TcpSegment {
  std::uint64_t cid = 0;     // connection token (demux)
  std::uint8_t subflow = 0;  // subflow id
  std::uint8_t flags = 0;
  std::uint64_t seq = 0;     // subflow sequence of first payload byte
  std::uint64_t ack = 0;     // cumulative subflow ACK (valid if kFlagAck)
  std::uint64_t window = 0;  // receive window (right edge = data_ack+window)
  std::uint64_t data_ack = 0;  // connection-level cumulative ACK (MPTCP)
  std::vector<SackBlock> sacks;
  std::optional<DssMapping> dss;
  std::vector<std::uint8_t> payload;

  bool has(SegmentFlags f) const { return (flags & f) != 0; }
};

/// Exact serialized size (the simulator charges this + IP overhead).
std::size_t SegmentWireSize(const TcpSegment& segment);

void EncodeSegment(const TcpSegment& segment, BufWriter& out);

/// Returns false on malformed input.
bool DecodeSegment(BufReader& in, TcpSegment& out);

}  // namespace mpq::tcp
