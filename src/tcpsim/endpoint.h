// TCP/MPTCP endpoints binding the baseline stack to simulator sockets.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "tcpsim/connection.h"

namespace mpq::tcp {

class TcpClientEndpoint {
 public:
  TcpClientEndpoint(sim::Simulator& sim, sim::Network& net,
                    std::vector<sim::Address> locals, const TcpConfig& config,
                    std::uint64_t seed);
  ~TcpClientEndpoint();

  TcpClientEndpoint(const TcpClientEndpoint&) = delete;
  TcpClientEndpoint& operator=(const TcpClientEndpoint&) = delete;

  /// `remotes[i]` is the server address reachable from `locals[i]`.
  void Connect(std::vector<sim::Address> remotes);

  TcpConnection& connection() { return *connection_; }

 private:
  sim::Network& net_;
  std::vector<sim::Address> locals_;
  std::unique_ptr<TcpConnection> connection_;
};

class TcpServerEndpoint {
 public:
  using AcceptHandler = std::function<void(TcpConnection&)>;

  TcpServerEndpoint(sim::Simulator& sim, sim::Network& net,
                    std::vector<sim::Address> locals, const TcpConfig& config,
                    std::uint64_t seed);
  ~TcpServerEndpoint();

  TcpServerEndpoint(const TcpServerEndpoint&) = delete;
  TcpServerEndpoint& operator=(const TcpServerEndpoint&) = delete;

  void SetAcceptHandler(AcceptHandler handler) {
    on_accept_ = std::move(handler);
  }
  std::size_t connection_count() const { return connections_.size(); }
  TcpConnection* FindConnection(std::uint64_t cid);

 private:
  void OnDatagram(const sim::Datagram& datagram);

  sim::Simulator& sim_;
  sim::Network& net_;
  std::vector<sim::Address> locals_;
  TcpConfig config_;
  Rng rng_;
  AcceptHandler on_accept_;
  std::vector<std::pair<sim::Address, sim::DatagramSocket*>> sockets_;
  std::map<std::uint64_t, std::unique_ptr<TcpConnection>> connections_;
};

}  // namespace mpq::tcp
