#include "tcpsim/connection.h"

#include <algorithm>
#include <cassert>

#include "cc/cubic.h"
#include "cc/newreno.h"
#include "common/log.h"

namespace mpq::tcp {

namespace {
constexpr Duration kPersistInterval = 500 * kMillisecond;
constexpr std::uint32_t kTlsPatternId = 0x715;
}  // namespace

TcpConnection::TcpConnection(sim::Simulator& sim, TcpPerspective perspective,
                             std::uint64_t cid, TcpConfig config,
                             SendFunction send)
    : sim_(sim),
      perspective_(perspective),
      cid_(cid),
      config_(config),
      send_(std::move(send)),
      persist_timer_(sim, [this] {
        // Zero-window probe: one byte of new data past the edge forces an
        // ack carrying the peer's current window.
        if (next_new_dsn_ < stream_len_ &&
            next_new_dsn_ >= peer_window_right_edge_) {
          for (auto& subflow : subflows_) {
            if (subflow->Usable()) {
              const bool fin = StreamFinKnown() &&
                               next_new_dsn_ + 1 == stream_len_;
              subflow->SendMappedData(next_new_dsn_, ByteCount{1}, fin);
              ++next_new_dsn_;
              break;
            }
          }
          persist_timer_.SetIn(kPersistInterval);
        }
      }) {
  if (config_.congestion == cc::Algorithm::kOlia) {
    olia_ = std::make_unique<cc::OliaCoordinator>(config_.mss);
  } else if (config_.congestion == cc::Algorithm::kLia) {
    lia_ = std::make_unique<cc::LiaCoordinator>(config_.mss);
  }
  peer_window_right_edge_ = 0;  // learned from the first segment
}

TcpConnection::~TcpConnection() = default;

std::vector<const Subflow*> TcpConnection::subflows() const {
  std::vector<const Subflow*> out;
  out.reserve(subflows_.size());
  for (const auto& subflow : subflows_) out.push_back(subflow.get());
  return out;
}

Subflow* TcpConnection::GetSubflow(std::uint8_t id) {
  for (auto& subflow : subflows_) {
    if (subflow->id() == id) return subflow.get();
  }
  return nullptr;
}

namespace {
std::unique_ptr<cc::CongestionController> MakeTcpController(
    cc::Algorithm algorithm, ByteCount mss, cc::OliaCoordinator* olia,
    cc::LiaCoordinator* lia) {
  switch (algorithm) {
    case cc::Algorithm::kOlia:
      return olia->CreateController();
    case cc::Algorithm::kLia:
      return lia->CreateController();
    case cc::Algorithm::kNewReno:
      return std::make_unique<cc::NewReno>(mss);
    case cc::Algorithm::kCubic:
      break;
  }
  return std::make_unique<cc::Cubic>(mss);
}
}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle

void TcpConnection::Connect(std::vector<sim::Address> locals,
                            std::vector<sim::Address> remotes) {
  assert(perspective_ == TcpPerspective::kClient);
  assert(!locals.empty() && locals.size() == remotes.size());
  local_addresses_ = std::move(locals);
  remote_addresses_ = std::move(remotes);
  SubflowConfig sf_config;
  sf_config.mss = config_.mss;
  sf_config.max_sack_blocks = config_.max_sack_blocks;
  sf_config.multipath = config_.multipath;
  sf_config.lost_retransmission_needs_rto =
      config_.lost_retransmission_needs_rto;
  auto subflow = std::make_unique<Subflow>(
      sim_, *this, 0, cid_, local_addresses_[0], remote_addresses_[0],
      MakeTcpController(config_.congestion, config_.mss, olia_.get(),
                        lia_.get()),
      sf_config);
  subflow->ConnectActive(/*mp_join=*/false);
  subflows_.push_back(std::move(subflow));
}

void TcpConnection::MaybeJoinSubflows() {
  if (perspective_ != TcpPerspective::kClient || !config_.multipath ||
      !tcp_established_ || join_initiated_) {
    return;
  }
  join_initiated_ = true;
  // §3 (contrast): MPTCP needs a full 3-way handshake per additional path
  // before any data can use it — exactly what we model here.
  SubflowConfig sf_config;
  sf_config.mss = config_.mss;
  sf_config.max_sack_blocks = config_.max_sack_blocks;
  sf_config.multipath = config_.multipath;
  sf_config.lost_retransmission_needs_rto =
      config_.lost_retransmission_needs_rto;
  for (std::size_t i = 1; i < local_addresses_.size(); ++i) {
    auto subflow = std::make_unique<Subflow>(
        sim_, *this, static_cast<std::uint8_t>(i), cid_, local_addresses_[i],
        remote_addresses_[i],
        MakeTcpController(config_.congestion, config_.mss, olia_.get(),
                        lia_.get()),
        sf_config);
    subflow->ConnectActive(/*mp_join=*/true);
    subflows_.push_back(std::move(subflow));
  }
}

void TcpConnection::OnSegment(const TcpSegment& segment,
                              const sim::Datagram& datagram) {
  ++stats_.segments_received;
  Subflow* subflow = GetSubflow(segment.subflow);
  if (subflow == nullptr) {
    // Server side: a SYN (initial or MP_JOIN) opens a new subflow.
    if (perspective_ != TcpPerspective::kServer ||
        !segment.has(kFlagSyn)) {
      return;
    }
    if (segment.subflow != 0 && !segment.has(kFlagMpJoin)) return;
    SubflowConfig sf_config;
    sf_config.mss = config_.mss;
    sf_config.max_sack_blocks = config_.max_sack_blocks;
    sf_config.multipath = config_.multipath;
    sf_config.lost_retransmission_needs_rto =
        config_.lost_retransmission_needs_rto;
    auto created = std::make_unique<Subflow>(
        sim_, *this, segment.subflow, cid_, datagram.dst, datagram.src,
        MakeTcpController(config_.congestion, config_.mss, olia_.get(),
                        lia_.get()),
        sf_config);
    created->Listen();
    subflow = created.get();
    subflows_.push_back(std::move(created));
  }
  subflow->OnSegment(segment);
}

// ---------------------------------------------------------------------------
// Send-side stream

void TcpConnection::AppendToStream(std::unique_ptr<SendSource> source) {
  const std::uint64_t start = stream_len_;
  stream_len_ += source->size().value();
  stream_.push_back({start, std::move(source)});
}

std::uint64_t TcpConnection::stream_end() const { return stream_len_; }

void TcpConnection::ReadStream(std::uint64_t dsn,
                               std::span<std::uint8_t> out) {
  std::size_t filled = 0;
  while (filled < out.size()) {
    // Find the chunk containing dsn+filled (chunks are sorted by start).
    const std::uint64_t pos = dsn + filled;
    const StreamChunk* chunk = nullptr;
    for (auto it = stream_.rbegin(); it != stream_.rend(); ++it) {
      if (it->start <= pos) {
        chunk = &*it;
        break;
      }
    }
    assert(chunk != nullptr && "read past stream end");
    const std::uint64_t rel = pos - chunk->start;
    const std::uint64_t avail = chunk->source->size().value() - rel;
    const std::size_t n =
        std::min<std::uint64_t>(avail, out.size() - filled);
    chunk->source->Read(ByteCount{rel}, out.subspan(filled, n));
    filled += n;
  }
}

void TcpConnection::SendAppData(std::unique_ptr<SendSource> source,
                                bool finish) {
  assert(!fin_requested_ && "stream already finished");
  AppendToStream(std::move(source));
  if (finish) fin_requested_ = true;
  TrySend();
}

// ---------------------------------------------------------------------------
// TLS 1.2 model

ByteCount TcpConnection::tls_rx_expected() const {
  if (!config_.use_tls) return ByteCount{0};
  return perspective_ == TcpPerspective::kClient
             ? kTlsServerHello + kTlsServerFinished
             : kTlsClientHello + kTlsClientFinished;
}

ByteCount TcpConnection::tls_tx_total() const {
  if (!config_.use_tls) return ByteCount{0};
  return perspective_ == TcpPerspective::kClient
             ? kTlsClientHello + kTlsClientFinished
             : kTlsServerHello + kTlsServerFinished;
}

void TcpConnection::AdvanceTls() {
  if (!config_.use_tls) {
    if (tcp_established_ && !secure_established_) {
      secure_established_ = true;
      if (on_secure_) on_secure_();
    }
    return;
  }
  if (perspective_ == TcpPerspective::kClient) {
    if (tls_tx_stage_ == 0 && tcp_established_) {
      AppendToStream(
          std::make_unique<PatternSource>(kTlsPatternId, kTlsClientHello));
      tls_tx_stage_ = 1;
      TrySend();
    }
    if (tls_tx_stage_ == 1 && delivered_dsn_ >= kTlsServerHello) {
      AppendToStream(std::make_unique<PatternSource>(kTlsPatternId,
                                                     kTlsClientFinished));
      tls_tx_stage_ = 2;
      TrySend();
    }
    if (tls_tx_stage_ == 2 && !secure_established_ &&
        delivered_dsn_ >= kTlsServerHello + kTlsServerFinished) {
      secure_established_ = true;
      if (on_secure_) on_secure_();
    }
  } else {
    if (tls_tx_stage_ == 0 && delivered_dsn_ >= kTlsClientHello) {
      AppendToStream(
          std::make_unique<PatternSource>(kTlsPatternId, kTlsServerHello));
      tls_tx_stage_ = 1;
      TrySend();
    }
    if (tls_tx_stage_ == 1 &&
        delivered_dsn_ >= kTlsClientHello + kTlsClientFinished) {
      AppendToStream(std::make_unique<PatternSource>(kTlsPatternId,
                                                     kTlsServerFinished));
      tls_tx_stage_ = 2;
      if (!secure_established_) {
        secure_established_ = true;
        if (on_secure_) on_secure_();
      }
      TrySend();
    }
  }
}

// ---------------------------------------------------------------------------
// SubflowHost

void TcpConnection::OnSubflowEstablished(Subflow& subflow) {
  if (subflow.id() == 0) {
    tcp_established_ = true;
    AdvanceTls();
    MaybeJoinSubflows();
  }
  TrySend();
}

void TcpConnection::OnPeerWindow(std::uint64_t data_ack,
                                 std::uint64_t window) {
  if (data_ack > peer_data_ack_) peer_data_ack_ = data_ack;
  // The right edge never retreats (RFC 7323 spirit).
  const std::uint64_t edge = data_ack + window;
  if (edge > peer_window_right_edge_) peer_window_right_edge_ = edge;
}

void TcpConnection::OnSubflowCanSend() { TrySend(); }

void TcpConnection::OnSubflowTimeout(Subflow& subflow,
                                     std::vector<DsnRange> outstanding) {
  if (config_.multipath) {
    // MPTCP reinjects the stranded DSN ranges on the other subflows
    // (§4.3: this is what makes the handover work at all).
    bool other_usable = false;
    for (const auto& other : subflows_) {
      if (other.get() != &subflow && other->Usable()) other_usable = true;
    }
    if (other_usable && !outstanding.empty()) {
      for (const DsnRange& range : outstanding) {
        const bool already =
            std::any_of(reinject_queue_.begin(), reinject_queue_.end(),
                        [&](const DsnRange& r) {
                          return r.start == range.start;
                        });
        if (!already) reinject_queue_.push_back(range);
      }
      ++stats_.failover_reinjections;
    }
  }
  TrySend();
}

void TcpConnection::EmitSegment(Subflow& subflow, TcpSegment&& segment) {
  ++stats_.segments_sent;
  BufWriter writer(SegmentWireSize(segment));
  EncodeSegment(segment, writer);
  send_(subflow.local_address(), subflow.remote_address(), writer.Take());
}

// ---------------------------------------------------------------------------
// Receive side

void TcpConnection::OnSubflowDataDelivered(Subflow&, std::uint64_t dsn,
                                           std::span<const std::uint8_t> data,
                                           bool data_fin) {
  if (data_fin) {
    data_fin_known_ = true;
    data_fin_dsn_ = dsn + data.size();
  }
  const std::uint64_t end = dsn + data.size();
  if (end > delivered_dsn_ && !data.empty()) {
    const std::uint64_t start = std::max<std::uint64_t>(dsn, delivered_dsn_);
    const std::size_t skip = start - dsn;
    reassembly_.emplace(
        start, std::vector<std::uint8_t>(data.begin() + skip, data.end()));
  }
  DrainReassembly();
}

void TcpConnection::DrainReassembly() {
  while (!reassembly_.empty()) {
    auto it = reassembly_.begin();
    if (it->first > delivered_dsn_) break;
    const std::uint64_t end = it->first + it->second.size();
    if (end <= delivered_dsn_) {
      reassembly_.erase(it);
      continue;
    }
    const std::size_t skip = delivered_dsn_ - it->first;
    DeliverDsnData(delivered_dsn_,
                   std::span<const std::uint8_t>(it->second.data() + skip,
                                                 it->second.size() - skip),
                   false);
    delivered_dsn_ = end;
    reassembly_.erase(it);
  }
  AdvanceTls();
  if (data_fin_known_ && !app_eof_signaled_ &&
      delivered_dsn_ >= data_fin_dsn_) {
    app_eof_signaled_ = true;
    if (on_app_data_) {
      const std::uint64_t base = tls_rx_expected().value();
      const ByteCount app_len{delivered_dsn_ > base ? delivered_dsn_ - base
                                                    : 0};
      on_app_data_(app_len, {}, true);
    }
  }
}

void TcpConnection::DeliverDsnData(std::uint64_t dsn,
                                   std::span<const std::uint8_t> data,
                                   bool) {
  const std::uint64_t base = tls_rx_expected().value();
  if (dsn + data.size() <= base) return;  // pure TLS bytes
  const std::size_t skip = dsn < base ? base - dsn : 0;
  const std::span<const std::uint8_t> app = data.subspan(skip);
  stats_.app_bytes_received += app.size();
  if (on_app_data_ && !app.empty()) {
    on_app_data_(ByteCount{dsn + skip - base}, app, false);
  }
}

// ---------------------------------------------------------------------------
// Scheduler + ORP

Subflow* TcpConnection::PickSubflow(ByteCount bytes) {
  Subflow* best = nullptr;
  for (auto& subflow : subflows_) {
    if (!subflow->Usable() || !subflow->CanSendData(bytes)) continue;
    if (best == nullptr ||
        (subflow->rtt().has_sample() &&
         (!best->rtt().has_sample() ||
          subflow->rtt().smoothed() < best->rtt().smoothed()))) {
      best = subflow.get();
    }
  }
  if (best != nullptr) return best;
  // Last resort: a potentially-failed subflow with window room (avoids
  // deadlock when every path looks dead).
  for (auto& subflow : subflows_) {
    if (subflow->established() && subflow->CanSendData(bytes)) {
      return subflow.get();
    }
  }
  return nullptr;
}

void TcpConnection::MaybeOpportunisticRetransmit(Subflow& idle) {
  if (!config_.multipath || !config_.enable_orp) return;
  // Receive-window limited: the data blocking the window is the lowest
  // un-DATA_ACKed DSN. Find the subflow holding it and reinject that
  // range on the idle subflow, penalizing the holder (ORP, §4.1).
  const std::uint64_t blocker = peer_data_ack_;
  if (blocker >= next_new_dsn_) return;
  for (auto& holder : subflows_) {
    if (holder.get() == &idle || !holder->HoldsDsn(blocker)) continue;
    const ByteCount len{std::min<std::uint64_t>(
        config_.mss.value(), next_new_dsn_ - blocker)};
    const bool already =
        std::any_of(reinject_queue_.begin(), reinject_queue_.end(),
                    [&](const DsnRange& r) { return r.start == blocker; });
    if (!already) {
      reinject_queue_.insert(reinject_queue_.begin(),
                             {blocker, len.value()});
      ++stats_.orp_reinjections;
      holder->Penalize();
    }
    return;
  }
}

void TcpConnection::ArmPersistTimerIfBlocked() {
  if (next_new_dsn_ < stream_len_ &&
      next_new_dsn_ >= peer_window_right_edge_) {
    bool anything_in_flight = false;
    for (const auto& subflow : subflows_) {
      if (subflow->HasUnacked()) anything_in_flight = true;
    }
    if (!anything_in_flight && !persist_timer_.armed()) {
      persist_timer_.SetIn(kPersistInterval);
    }
  }
}

void TcpConnection::TrySend() {
  if (in_try_send_) return;
  in_try_send_ = true;

  for (auto& subflow : subflows_) subflow->TrySendRetransmits();

  for (int guard = 0; guard < 100000; ++guard) {
    const bool have_reinject = !reinject_queue_.empty();
    const bool have_new = next_new_dsn_ < stream_len_;
    if (!have_reinject && !have_new) break;

    Subflow* subflow = PickSubflow(config_.mss);
    if (subflow == nullptr) break;

    if (have_reinject) {
      DsnRange& range = reinject_queue_.front();
      const ByteCount len{
          std::min<std::uint64_t>(range.length, config_.mss.value())};
      const bool fin =
          StreamFinKnown() && range.start + len == stream_len_;
      subflow->SendMappedData(range.start, len, fin);
      range.start += len.value();
      range.length -= len.value();
      if (range.length == 0) {
        reinject_queue_.erase(reinject_queue_.begin());
      }
      continue;
    }

    if (next_new_dsn_ >= PeerWindowRightEdge()) {
      MaybeOpportunisticRetransmit(*subflow);
      if (!reinject_queue_.empty()) continue;  // ORP produced work
      ArmPersistTimerIfBlocked();
      break;
    }
    const ByteCount len{std::min<std::uint64_t>(
        {config_.mss.value(), stream_len_ - next_new_dsn_,
         PeerWindowRightEdge() - next_new_dsn_})};
    const bool fin = StreamFinKnown() && next_new_dsn_ + len == stream_len_;
    subflow->SendMappedData(next_new_dsn_, len, fin);
    next_new_dsn_ += len.value();
  }
  in_try_send_ = false;
}

}  // namespace mpq::tcp
