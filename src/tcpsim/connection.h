// Connection level of the TCP/MPTCP baseline: the byte stream with DSN
// reassembly, the HTTPS-style secure session (TCP 3-way handshake plus a
// modelled TLS 1.2 exchange — 3 RTTs before the request flows, §4.2), the
// MPTCP lowest-RTT scheduler with opportunistic retransmission and
// penalization (ORP), subflow joining, and failure handling.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "cc/lia.h"
#include "cc/olia.h"
#include "common/types.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "tcpsim/subflow.h"

#include "common/source.h"

namespace mpq::tcp {

enum class TcpPerspective { kClient, kServer };

struct TcpConfig {
  bool multipath = false;
  cc::Algorithm congestion = cc::Algorithm::kCubic;
  ByteCount receive_window{16 * 1024 * 1024};  // §4.1: 16 MB
  ByteCount mss{1400};
  int max_sack_blocks = kMaxSackBlocks;  // ablation: QUIC-like when raised
  /// Model the TLS 1.2 exchange (2 extra RTTs) — the paper's comparison
  /// is https vs QUIC-crypto. Disable for raw-TCP experiments.
  bool use_tls = true;
  /// Opportunistic Retransmission and Penalization (ablation knob).
  bool enable_orp = true;
  /// Pre-RACK lost-retransmission blind spot (see SubflowConfig).
  bool lost_retransmission_needs_rto = true;
};

/// Modelled TLS 1.2 message sizes (bytes of the handshake byte-stream).
inline constexpr ByteCount kTlsClientHello{300};
inline constexpr ByteCount kTlsServerHello{3000};  // incl. certificate
inline constexpr ByteCount kTlsClientFinished{100};
inline constexpr ByteCount kTlsServerFinished{100};

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t orp_reinjections = 0;
  std::uint64_t failover_reinjections = 0;
  ByteCount app_bytes_received{};
};

class TcpConnection : public SubflowHost {
 public:
  using SendFunction = std::function<void(
      sim::Address local, sim::Address remote, std::vector<std::uint8_t>)>;

  TcpConnection(sim::Simulator& sim, TcpPerspective perspective,
                std::uint64_t cid, TcpConfig config, SendFunction send);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // -- client lifecycle ---------------------------------------------------
  /// `locals[i]` pairs with `remotes[i]`; pair 0 carries the initial
  /// subflow, the rest are joined once the connection is established
  /// (addresses beyond pair 0 stand in for MPTCP's ADD_ADDR knowledge).
  void Connect(std::vector<sim::Address> locals,
               std::vector<sim::Address> remotes);

  // -- server lifecycle ---------------------------------------------------
  /// Install the server's local addresses (one per interface).
  void SetLocalAddresses(std::vector<sim::Address> addresses) {
    local_addresses_ = std::move(addresses);
  }

  /// Feed an incoming segment (endpoint demultiplexes by cid).
  void OnSegment(const TcpSegment& segment, const sim::Datagram& datagram);

  // -- application API ----------------------------------------------------
  /// Fires when the secure session is up (TLS Finished exchanged); the
  /// client sends its request from this callback.
  void SetSecureEstablishedHandler(std::function<void()> handler) {
    on_secure_ = std::move(handler);
  }
  /// In-order application bytes (offsets relative to the app stream,
  /// i.e. excluding the TLS handshake bytes). `finished` mirrors DATA_FIN.
  using AppDataHandler = std::function<void(
      ByteCount offset, std::span<const std::uint8_t> data, bool finished)>;
  void SetAppDataHandler(AppDataHandler handler) {
    on_app_data_ = std::move(handler);
  }
  /// Queue application payload. With `finish` (default), DATA_FIN is sent
  /// with its last byte; pass false to keep the stream open for more
  /// writes (request/response workloads).
  void SendAppData(std::unique_ptr<SendSource> source, bool finish = true);

  // -- introspection ------------------------------------------------------
  bool secure_established() const { return secure_established_; }
  std::uint64_t cid() const { return cid_; }
  const TcpStats& stats() const { return stats_; }
  std::vector<const Subflow*> subflows() const;
  Subflow* GetSubflow(std::uint8_t id);

  // -- SubflowHost --------------------------------------------------------
  void OnSubflowEstablished(Subflow& subflow) override;
  void OnSubflowDataDelivered(Subflow& subflow, std::uint64_t dsn,
                              std::span<const std::uint8_t> data,
                              bool data_fin) override;
  void OnPeerWindow(std::uint64_t data_ack, std::uint64_t window) override;
  void OnSubflowCanSend() override;
  void OnSubflowTimeout(Subflow& subflow,
                        std::vector<DsnRange> outstanding) override;
  void ReadStream(std::uint64_t dsn, std::span<std::uint8_t> out) override;
  std::uint64_t AdvertisedWindow() override { return config_.receive_window.value(); }
  std::uint64_t ConnectionDataAck() override { return delivered_dsn_; }
  void EmitSegment(Subflow& subflow, TcpSegment&& segment) override;

 private:
  // -- send-side stream ---------------------------------------------------
  struct StreamChunk {
    std::uint64_t start = 0;
    std::unique_ptr<SendSource> source;
  };
  void AppendToStream(std::unique_ptr<SendSource> source);
  std::uint64_t stream_end() const;
  bool StreamFinKnown() const { return fin_requested_; }

  // -- TLS state machine (driven by delivered byte counts) ----------------
  void AdvanceTls();
  ByteCount tls_rx_expected() const;  // handshake bytes we must receive
  ByteCount tls_tx_total() const;     // handshake bytes we will send

  // -- scheduling ---------------------------------------------------------
  void TrySend();
  Subflow* PickSubflow(ByteCount bytes);
  void MaybeOpportunisticRetransmit(Subflow& idle);
  void MaybeJoinSubflows();
  std::uint64_t PeerWindowRightEdge() const {
    return peer_window_right_edge_;
  }
  void ArmPersistTimerIfBlocked();

  // -- receive-side reassembly --------------------------------------------
  void DeliverDsnData(std::uint64_t dsn, std::span<const std::uint8_t> data,
                      bool data_fin);
  void DrainReassembly();

  sim::Simulator& sim_;
  TcpPerspective perspective_;
  std::uint64_t cid_;
  TcpConfig config_;
  SendFunction send_;

  std::vector<sim::Address> local_addresses_;
  std::vector<sim::Address> remote_addresses_;

  std::unique_ptr<cc::OliaCoordinator> olia_;
  std::unique_ptr<cc::LiaCoordinator> lia_;
  std::vector<std::unique_ptr<Subflow>> subflows_;
  bool join_initiated_ = false;

  // Send-side connection stream (TLS messages then app payload).
  std::vector<StreamChunk> stream_;
  std::uint64_t stream_len_ = 0;
  std::uint64_t next_new_dsn_ = 0;
  bool fin_requested_ = false;
  std::vector<DsnRange> reinject_queue_;
  std::uint64_t peer_data_ack_ = 0;
  std::uint64_t peer_window_right_edge_ = 0;
  sim::Timer persist_timer_;

  // Receive side.
  std::map<std::uint64_t, std::vector<std::uint8_t>> reassembly_;  // by dsn
  std::uint64_t delivered_dsn_ = 0;
  bool data_fin_known_ = false;
  std::uint64_t data_fin_dsn_ = 0;
  bool app_eof_signaled_ = false;

  // TLS progression.
  bool tcp_established_ = false;
  bool secure_established_ = false;
  int tls_tx_stage_ = 0;  // how many of our handshake messages are queued

  std::function<void()> on_secure_;
  AppDataHandler on_app_data_;
  TcpStats stats_;
  bool in_try_send_ = false;
};

}  // namespace mpq::tcp
