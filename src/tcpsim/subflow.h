// One TCP subflow of the baseline stack: 3-way handshake, cumulative ACK
// + bounded SACK scoreboard, classic single-timer RTT estimation with
// Karn's algorithm, NewReno-style fast recovery, and RTO with exponential
// backoff. A single-path TCP connection is one subflow; MPTCP runs one
// subflow per path with DSN mappings to the connection-level stream.
//
// Behaviours deliberately modelled after what the paper measures against
// (Linux TCP / MPTCP v0.91, §4):
//   * RTT is sampled from at most one timed segment per RTT, and never
//     from a retransmitted one (Karn) — the "ambiguities linked to the
//     estimation of the round-trip-time" of §4.1;
//   * SACK carries at most 3 blocks; everything else must be rediscovered
//     through later acks or an RTO;
//   * a lost segment is retransmitted with the SAME subflow sequence on
//     the SAME subflow — the in-order-per-path constraint MPQUIC drops;
//   * an RTO without intervening activity marks the subflow potentially
//     failed (§4.3), like the Linux MPTCP active/backup heuristic.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "cc/congestion.h"
#include "common/types.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "tcpsim/segment.h"

namespace mpq::tcp {

/// RFC 6298 estimator fed by Karn-filtered samples.
class TcpRttEstimator {
 public:
  void AddSample(Duration rtt) {
    if (rtt <= 0) rtt = 1;
    if (!has_sample_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      has_sample_ = true;
      return;
    }
    const Duration err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + rtt) / 8;
  }
  bool has_sample() const { return has_sample_; }
  Duration smoothed() const { return srtt_; }
  Duration Rto() const {
    if (!has_sample_) return 1 * kSecond;  // RFC 6298 initial RTO
    return std::max<Duration>(srtt_ + std::max<Duration>(4 * rttvar_,
                                                         1 * kMillisecond),
                              kMinRto);
  }
  static constexpr Duration kMinRto = 200 * kMillisecond;  // Linux default

 private:
  bool has_sample_ = false;
  Duration srtt_ = 0;
  Duration rttvar_ = 0;
};

struct DsnRange {
  std::uint64_t start = 0;
  std::uint64_t length = 0;
};

class Subflow;

/// What a subflow needs from its owning connection.
class SubflowHost {
 public:
  virtual ~SubflowHost() = default;

  virtual void OnSubflowEstablished(Subflow& subflow) = 0;
  /// Subflow-in-order payload with its DSN (derived from seq when no DSS).
  virtual void OnSubflowDataDelivered(Subflow& subflow, std::uint64_t dsn,
                                      std::span<const std::uint8_t> data,
                                      bool data_fin) = 0;
  /// Connection-level fields observed on any segment from the peer.
  virtual void OnPeerWindow(std::uint64_t data_ack, std::uint64_t window) = 0;
  /// Ack processing freed congestion window: run the scheduler.
  virtual void OnSubflowCanSend() = 0;
  /// RTO fired; `outstanding` are the DSN ranges still unacked on this
  /// subflow — MPTCP reinjects them on other subflows (§4.3 handover).
  virtual void OnSubflowTimeout(Subflow& subflow,
                                std::vector<DsnRange> outstanding) = 0;
  /// Read connection-stream bytes for (re)transmission.
  virtual void ReadStream(std::uint64_t dsn,
                          std::span<std::uint8_t> out) = 0;
  /// Values for outgoing segments.
  virtual std::uint64_t AdvertisedWindow() = 0;
  virtual std::uint64_t ConnectionDataAck() = 0;
  /// Hand a fully built segment to the socket layer.
  virtual void EmitSegment(Subflow& subflow, TcpSegment&& segment) = 0;
};

struct SubflowConfig {
  ByteCount mss{1400};
  int max_sack_blocks = kMaxSackBlocks;
  bool multipath = false;  // carry DSS options on the wire
  Duration delayed_ack_timeout = 40 * kMillisecond;  // Linux-ish quickack
  /// Era-faithful default (Linux 4.1, pre-RACK): a retransmission that is
  /// itself lost cannot be detected through SACK — the sender stalls
  /// until the RTO. QUIC never has this blind spot because every
  /// transmission gets a fresh packet number (paper §2: retransmission
  /// ambiguity "affects round-trip-time estimation and loss recovery in
  /// TCP"). Set false for a modern (RACK-era) baseline.
  bool lost_retransmission_needs_rto = true;
};

class Subflow {
 public:
  Subflow(sim::Simulator& sim, SubflowHost& host, std::uint8_t id,
          std::uint64_t cid, sim::Address local, sim::Address remote,
          std::unique_ptr<cc::CongestionController> congestion,
          SubflowConfig config);

  Subflow(const Subflow&) = delete;
  Subflow& operator=(const Subflow&) = delete;

  // -- lifecycle ----------------------------------------------------------
  void Listen() { state_ = State::kListen; }
  /// Client side: send SYN (with MP_JOIN for secondary subflows).
  void ConnectActive(bool mp_join);
  bool established() const { return state_ == State::kEstablished; }

  void OnSegment(const TcpSegment& segment);

  // -- sending ------------------------------------------------------------
  /// Room for one more MSS under the congestion window?
  bool CanSendData(ByteCount bytes) const {
    return established() && congestion_->CanSend(bytes);
  }
  /// Transmit `length` connection-stream bytes starting at `dsn` as new
  /// subflow data (the DSS mapping of MPTCP). `data_fin` marks the end of
  /// the connection-level stream.
  void SendMappedData(std::uint64_t dsn, ByteCount length, bool data_fin);
  /// Drain the post-RTO retransmission backlog under the window.
  void TrySendRetransmits();
  /// Force a pure-ACK segment out now (window updates, probes).
  void SendPureAck();

  // -- introspection ------------------------------------------------------
  std::uint8_t id() const { return id_; }
  sim::Address local_address() const { return local_; }
  sim::Address remote_address() const { return remote_; }
  const TcpRttEstimator& rtt() const { return rtt_; }
  cc::CongestionController& congestion() { return *congestion_; }
  const cc::CongestionController& congestion() const { return *congestion_; }
  bool potentially_failed() const { return potentially_failed_; }
  bool Usable() const { return established() && !potentially_failed_; }
  bool HasUnacked() const { return !unacked_.empty(); }
  /// Does any in-flight mapping on this subflow contain `dsn`?
  bool HoldsDsn(std::uint64_t dsn) const;
  /// ORP penalty: halve the window (at most once per RTT).
  void Penalize();
  ByteCount bytes_sent() const { return bytes_sent_; }
  std::uint64_t segments_retransmitted() const { return retransmit_count_; }
  std::uint64_t rto_count() const { return total_rtos_; }

 private:
  enum class State { kClosed, kListen, kSynSent, kSynReceived, kEstablished };

  struct SentSegment {
    ByteCount length{};
    std::uint64_t dsn = 0;
    TimePoint sent_time = 0;
    bool retransmitted = false;
    bool sacked = false;
    bool needs_retransmit = false;
    bool in_flight = true;  // bytes currently charged to the controller
    bool data_fin = false;
  };

  TcpSegment MakeSegment(std::uint8_t flags) const;
  void Transmit(TcpSegment&& segment);
  void SendSyn();
  void SendSynAck();
  void BecomeEstablished();

  void ProcessAck(const TcpSegment& segment);
  void ApplySacks(const std::vector<SackBlock>& sacks);
  void EnterRecovery(std::uint64_t first_hole_seq);
  void RetransmitSegment(std::uint64_t seq);
  void ProcessPayload(const TcpSegment& segment);
  void DeliverInOrderPayloads();
  void ScheduleAck(bool out_of_order);
  std::vector<SackBlock> BuildSackBlocks() const;

  void ArmRtoTimer();
  void OnRtoTimer();
  Duration CurrentRto() const {
    return rtt_.Rto() << (rto_backoff_ > 6 ? 6 : rto_backoff_);
  }

  sim::Simulator& sim_;
  SubflowHost& host_;
  std::uint8_t id_;
  std::uint64_t cid_;
  sim::Address local_;
  sim::Address remote_;
  std::unique_ptr<cc::CongestionController> congestion_;
  SubflowConfig config_;
  State state_ = State::kClosed;

  // Send state. SYN consumes sequence 0; data starts at 1.
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::map<std::uint64_t, SentSegment> unacked_;  // by subflow seq
  /// Segments marked lost and awaiting retransmission (subflow seqs).
  std::set<std::uint64_t> retx_pending_;
  /// SACK loss inference never needs to re-scan below this seq.
  std::uint64_t loss_marked_up_to_ = 0;
  /// Coalesced SACK intervals already applied to the scoreboard; incoming
  /// blocks are processed only where they add new information.
  std::map<std::uint64_t, std::uint64_t> sack_seen_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_point_ = 0;
  TimePoint syn_sent_time_ = -1;
  bool syn_retransmitted_ = false;
  bool mp_join_ = false;

  // Karn/one-timer RTT sampling.
  bool timing_active_ = false;
  std::uint64_t timed_seq_end_ = 0;  // sample when snd_una_ >= this
  TimePoint timed_sent_ = 0;

  TcpRttEstimator rtt_;
  sim::Timer rto_timer_;
  int rto_backoff_ = 0;
  std::uint64_t total_rtos_ = 0;
  bool potentially_failed_ = false;
  TimePoint last_send_time_ = -1;
  TimePoint last_ack_activity_ = -1;
  TimePoint last_penalty_ = -1;

  // Receive state.
  std::uint64_t rcv_nxt_ = 0;
  struct OooSegment {
    std::vector<std::uint8_t> data;
    std::uint64_t dsn = 0;
    bool data_fin = false;
  };
  std::map<std::uint64_t, OooSegment> ooo_;  // by subflow seq
  /// Coalesced [start, end) views of ooo_, maintained incrementally so
  /// SACK generation is O(blocks), not O(|ooo_|).
  std::map<std::uint64_t, std::uint64_t> ooo_ranges_;
  sim::Timer delack_timer_;
  int unacked_arrivals_ = 0;

  // Statistics.
  ByteCount bytes_sent_{};
  std::uint64_t retransmit_count_ = 0;
};

}  // namespace mpq::tcp
