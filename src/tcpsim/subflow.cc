#include "tcpsim/subflow.h"

#include <algorithm>

#include "common/log.h"

namespace mpq::tcp {

namespace {

/// Insert [start, end) into a coalesced interval map.
void InsertInterval(std::map<std::uint64_t, std::uint64_t>& intervals,
                    std::uint64_t start, std::uint64_t end) {
  if (end <= start) return;
  auto it = intervals.lower_bound(start);
  if (it != intervals.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = intervals.erase(prev);
    }
  }
  while (it != intervals.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = intervals.erase(it);
  }
  intervals.emplace(start, end);
}

}  // namespace

Subflow::Subflow(sim::Simulator& sim, SubflowHost& host, std::uint8_t id,
                 std::uint64_t cid, sim::Address local, sim::Address remote,
                 std::unique_ptr<cc::CongestionController> congestion,
                 SubflowConfig config)
    : sim_(sim),
      host_(host),
      id_(id),
      cid_(cid),
      local_(local),
      remote_(remote),
      congestion_(std::move(congestion)),
      config_(config),
      rto_timer_(sim, [this] { OnRtoTimer(); }),
      delack_timer_(sim, [this] { SendPureAck(); }) {}

TcpSegment Subflow::MakeSegment(std::uint8_t flags) const {
  TcpSegment segment;
  segment.cid = cid_;
  segment.subflow = id_;
  segment.flags = flags;
  segment.seq = snd_nxt_;
  segment.ack = rcv_nxt_;
  segment.window = host_.AdvertisedWindow();
  segment.data_ack = host_.ConnectionDataAck();
  segment.sacks = BuildSackBlocks();
  return segment;
}

void Subflow::Transmit(TcpSegment&& segment) {
  bytes_sent_ += SegmentWireSize(segment);
  last_send_time_ = sim_.now();
  host_.EmitSegment(*this, std::move(segment));
}

// ---------------------------------------------------------------------------
// Handshake

void Subflow::ConnectActive(bool mp_join) {
  state_ = State::kSynSent;
  mp_join_ = mp_join;
  snd_nxt_ = 1;  // SYN consumes sequence 0
  syn_sent_time_ = sim_.now();
  SendSyn();
}

void Subflow::SendSyn() {
  TcpSegment syn = MakeSegment(kFlagSyn);
  syn.seq = 0;
  if (mp_join_) syn.flags |= kFlagMpJoin;
  Transmit(std::move(syn));
  rto_timer_.SetIn(CurrentRto());
}

void Subflow::SendSynAck() {
  TcpSegment synack = MakeSegment(kFlagSyn | kFlagAck);
  synack.seq = 0;
  snd_nxt_ = 1;
  Transmit(std::move(synack));
  rto_timer_.SetIn(CurrentRto());
}

void Subflow::BecomeEstablished() {
  state_ = State::kEstablished;
  snd_una_ = 1;
  rto_timer_.Cancel();
  rto_backoff_ = 0;
  host_.OnSubflowEstablished(*this);
}

// ---------------------------------------------------------------------------
// Segment dispatch

void Subflow::OnSegment(const TcpSegment& segment) {
  switch (state_) {
    case State::kClosed:
      return;
    case State::kListen:
      if (segment.has(kFlagSyn) && !segment.has(kFlagAck)) {
        rcv_nxt_ = segment.seq + 1;
        state_ = State::kSynReceived;
        host_.OnPeerWindow(segment.data_ack, segment.window);
        SendSynAck();
      }
      return;
    case State::kSynSent:
      if (segment.has(kFlagSyn) && segment.has(kFlagAck) &&
          segment.ack >= 1) {
        rcv_nxt_ = segment.seq + 1;
        // Handshake RTT sample (Karn: only if the SYN was never resent).
        if (!syn_retransmitted_ && syn_sent_time_ >= 0) {
          rtt_.AddSample(sim_.now() - syn_sent_time_);
        }
        host_.OnPeerWindow(segment.data_ack, segment.window);
        BecomeEstablished();
        SendPureAck();
      }
      return;
    case State::kSynReceived:
      if (segment.has(kFlagAck) && segment.ack >= 1) {
        BecomeEstablished();
        // Fall through to normal processing of any piggybacked data.
        ProcessAck(segment);
        ProcessPayload(segment);
      }
      return;
    case State::kEstablished:
      if (segment.has(kFlagSyn) && segment.has(kFlagAck)) {
        // Retransmitted SYN/ACK: our handshake ACK was lost.
        SendPureAck();
        return;
      }
      ProcessAck(segment);
      ProcessPayload(segment);
      return;
  }
}

// ---------------------------------------------------------------------------
// Sending data

void Subflow::SendMappedData(std::uint64_t dsn, ByteCount length,
                             bool data_fin) {
  TcpSegment segment = MakeSegment(kFlagAck);
  segment.seq = snd_nxt_;
  segment.payload.resize(length.value());
  host_.ReadStream(dsn, segment.payload);
  if (config_.multipath) segment.dss = DssMapping{dsn};
  if (data_fin) segment.flags |= kFlagDataFin;

  SentSegment info;
  info.length = length;
  info.dsn = dsn;
  info.sent_time = sim_.now();
  info.data_fin = data_fin;
  unacked_.emplace(snd_nxt_, info);

  // One timed segment at a time (classic TCP RTT sampling).
  if (!timing_active_) {
    timing_active_ = true;
    timed_seq_end_ = snd_nxt_ + length.value();
    timed_sent_ = sim_.now();
  }

  congestion_->OnPacketSent(sim_.now(), length);
  snd_nxt_ += length.value();
  Transmit(std::move(segment));
  // RFC 6298 (5.1): start the timer on send only if it is not running —
  // restarting per send would keep postponing a pending stall's RTO.
  if (!rto_timer_.armed()) rto_timer_.SetIn(CurrentRto());
}

void Subflow::RetransmitSegment(std::uint64_t seq) {
  auto it = unacked_.find(seq);
  if (it == unacked_.end()) return;
  SentSegment& info = it->second;
  if (info.sacked) return;

  TcpSegment segment = MakeSegment(kFlagAck);
  segment.seq = seq;
  segment.payload.resize(info.length.value());
  host_.ReadStream(info.dsn, segment.payload);
  if (config_.multipath) segment.dss = DssMapping{info.dsn};
  if (info.data_fin) segment.flags |= kFlagDataFin;

  // Karn: a retransmission overlapping the timed range poisons the sample.
  if (timing_active_ && seq < timed_seq_end_) timing_active_ = false;

  // In-flight accounting: write off the copy currently in the network
  // (if any), then charge the retransmission.
  if (info.in_flight) {
    congestion_->OnPacketLost(sim_.now(), info.length, info.sent_time);
  }
  congestion_->OnPacketSent(sim_.now(), info.length);
  info.in_flight = true;
  info.retransmitted = true;
  info.needs_retransmit = false;
  info.sent_time = sim_.now();
  ++retransmit_count_;
  Transmit(std::move(segment));
  if (!rto_timer_.armed()) rto_timer_.SetIn(CurrentRto());
}

void Subflow::TrySendRetransmits() {
  if (!established()) return;
  while (!retx_pending_.empty()) {
    const std::uint64_t seq = *retx_pending_.begin();
    auto it = unacked_.find(seq);
    if (it == unacked_.end() || it->second.sacked ||
        !it->second.needs_retransmit) {
      retx_pending_.erase(retx_pending_.begin());
      continue;
    }
    if (!congestion_->CanSend(it->second.length)) break;
    RetransmitSegment(seq);  // clears needs_retransmit
    retx_pending_.erase(seq);
  }
}

// ---------------------------------------------------------------------------
// ACK processing

void Subflow::ProcessAck(const TcpSegment& segment) {
  host_.OnPeerWindow(segment.data_ack, segment.window);
  if (!segment.has(kFlagAck)) return;
  const std::uint64_t ack = segment.ack;

  if (ack > snd_una_) {
    ApplySacks(segment.sacks);
    // Cumulative advance: segments are MSS-chunked and acked whole.
    while (!unacked_.empty()) {
      auto it = unacked_.begin();
      if (it->first + it->second.length > ack) break;
      SentSegment& info = it->second;
      // Credit exactly the bytes still charged to the controller (a
      // SACKed or written-off segment has none in flight).
      if (info.in_flight) {
        congestion_->OnPacketAcked(sim_.now(), info.length, info.sent_time,
                                   rtt_.smoothed());
        info.in_flight = false;
      }
      retx_pending_.erase(it->first);
      unacked_.erase(it);
    }
    // RTT sample from the timed segment (Karn-filtered: timing was
    // invalidated if anything in the range was retransmitted).
    if (timing_active_ && ack >= timed_seq_end_) {
      rtt_.AddSample(sim_.now() - timed_sent_);
      timing_active_ = false;
    }
    snd_una_ = ack;
    while (!sack_seen_.empty() && sack_seen_.begin()->second <= snd_una_) {
      sack_seen_.erase(sack_seen_.begin());
    }
    dup_acks_ = 0;
    rto_backoff_ = 0;
    last_ack_activity_ = sim_.now();
    potentially_failed_ = false;

    if (in_recovery_) {
      if (snd_una_ >= recover_point_) {
        in_recovery_ = false;
      } else {
        // NewReno partial ack: the next hole starts at the new snd_una —
        // but a hole whose retransmission was already sent (and evidently
        // lost) is invisible to a pre-RACK stack and must wait for the
        // RTO (see SubflowConfig::lost_retransmission_needs_rto).
        auto hole = unacked_.find(snd_una_);
        if (hole != unacked_.end() &&
            (!hole->second.retransmitted ||
             !config_.lost_retransmission_needs_rto)) {
          RetransmitSegment(snd_una_);
        }
      }
    }
    if (unacked_.empty()) {
      rto_timer_.Cancel();
    } else {
      rto_timer_.SetIn(CurrentRto());
    }
    host_.OnSubflowCanSend();
    return;
  }

  if (ack == snd_una_ && segment.payload.empty() && !unacked_.empty()) {
    ApplySacks(segment.sacks);
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      EnterRecovery(snd_una_);
    }
    if (in_recovery_) {
      // Drain whatever the SACK scoreboard has inferred lost, as the
      // window allows (RFC 6675 pipe-style recovery).
      TrySendRetransmits();
    }
    host_.OnSubflowCanSend();
  }
}

void Subflow::ApplySacks(const std::vector<SackBlock>& sacks) {
  std::uint64_t highest_sacked = 0;
  for (const SackBlock& block : sacks) {
    if (block.end <= block.start) continue;
    highest_sacked = std::max(highest_sacked, block.end);
    // Walk only the parts of the block not already applied (receivers
    // repeat their top ranges in every ack; re-walking them is the hot
    // path this avoids).
    std::uint64_t cursor = block.start;
    while (cursor < block.end) {
      auto seen = sack_seen_.upper_bound(cursor);
      std::uint64_t novel_end = block.end;
      if (seen != sack_seen_.begin()) {
        auto prev = std::prev(seen);
        if (prev->second > cursor) {
          cursor = prev->second;  // inside an already-applied interval
          continue;
        }
      }
      if (seen != sack_seen_.end() && seen->first < novel_end) {
        novel_end = seen->first;
      }
      for (auto it = unacked_.lower_bound(cursor);
           it != unacked_.end() && it->first + it->second.length <= novel_end;
           ++it) {
        SentSegment& info = it->second;
        if (info.sacked) continue;
        info.sacked = true;
        info.needs_retransmit = false;
        // SACKed bytes leave the network: count them as delivered for
        // congestion purposes (Linux-style in-flight accounting).
        if (info.in_flight) {
          congestion_->OnPacketAcked(sim_.now(), info.length,
                                     info.sent_time, rtt_.smoothed());
          info.in_flight = false;
        }
      }
      cursor = novel_end;
    }
    InsertInterval(sack_seen_, block.start, block.end);
  }
  if (highest_sacked == 0) return;
  // RFC 6675-style loss inference: an unsacked segment with at least
  // three segments' worth of SACKed data above it is lost. Mark it for
  // retransmission (drained under the congestion window) and write its
  // bytes off the in-flight total. A watermark avoids re-scanning the
  // already-classified region on every SACK-bearing ack.
  const std::uint64_t mss3 = 3 * config_.mss.value();
  const std::uint64_t loss_edge =
      highest_sacked > mss3 ? highest_sacked - mss3 : 0;
  for (auto it = unacked_.lower_bound(loss_marked_up_to_);
       it != unacked_.end(); ++it) {
    SentSegment& info = it->second;
    if (it->first + info.length > loss_edge) break;
    if (info.sacked || info.needs_retransmit || info.retransmitted) continue;
    info.needs_retransmit = true;
    retx_pending_.insert(it->first);
    if (info.in_flight) {
      congestion_->OnPacketLost(sim_.now(), info.length, info.sent_time);
      info.in_flight = false;
    }
  }
  loss_marked_up_to_ = std::max(loss_marked_up_to_, loss_edge);
}

void Subflow::EnterRecovery(std::uint64_t first_hole_seq) {
  in_recovery_ = true;
  recover_point_ = snd_nxt_;
  auto it = unacked_.find(first_hole_seq);
  if (it != unacked_.end() && !it->second.sacked) {
    RetransmitSegment(first_hole_seq);
  }
}

// ---------------------------------------------------------------------------
// RTO

void Subflow::OnRtoTimer() {
  if (state_ == State::kSynSent) {
    ++rto_backoff_;
    syn_retransmitted_ = true;
    SendSyn();
    return;
  }
  if (state_ == State::kSynReceived) {
    ++rto_backoff_;
    SendSynAck();
    return;
  }
  if (state_ != State::kEstablished || unacked_.empty()) return;

  ++total_rtos_;
  ++rto_backoff_;
  // §4.3 / Linux MPTCP: an RTO with no ack activity since our last send
  // marks the subflow potentially failed.
  if (last_ack_activity_ < last_send_time_) {
    potentially_failed_ = true;
  }
  congestion_->OnRetransmissionTimeout(sim_.now());
  in_recovery_ = false;
  dup_acks_ = 0;

  std::vector<DsnRange> outstanding;
  for (auto& [seq, info] : unacked_) {
    if (info.sacked) continue;
    if (info.in_flight) {
      congestion_->OnPacketLost(sim_.now(), info.length, info.sent_time);
      info.in_flight = false;
    }
    info.needs_retransmit = true;
    retx_pending_.insert(seq);
    outstanding.push_back({info.dsn, info.length.value()});
  }
  // Go-back-N restart: retransmit the first hole now, the rest as the
  // window reopens.
  if (!unacked_.empty()) RetransmitSegment(unacked_.begin()->first);
  rto_timer_.SetIn(CurrentRto());
  host_.OnSubflowTimeout(*this, std::move(outstanding));
}

// ---------------------------------------------------------------------------
// Receiving

void Subflow::ProcessPayload(const TcpSegment& segment) {
  if (segment.payload.empty()) return;
  const std::uint64_t seq = segment.seq;
  const std::uint64_t seg_end = seq + segment.payload.size();

  if (seg_end <= rcv_nxt_) {
    // Pure duplicate: ack immediately so the sender sees progress.
    SendPureAck();
    return;
  }
  const std::uint64_t dsn =
      segment.dss.has_value() ? segment.dss->dsn : seq - 1;

  if (seq > rcv_nxt_) {
    OooSegment ooo;
    ooo.data = segment.payload;
    ooo.dsn = dsn;
    ooo.data_fin = segment.has(kFlagDataFin);
    ooo_.emplace(seq, std::move(ooo));
    InsertInterval(ooo_ranges_, seq, seg_end);
    ScheduleAck(/*out_of_order=*/true);
    return;
  }

  // In-order (possibly overlapping the delivered prefix).
  const std::size_t skip = rcv_nxt_ - seq;
  std::span<const std::uint8_t> fresh(segment.payload.data() + skip,
                                      segment.payload.size() - skip);
  // RFC 5681: ack immediately when a segment fills (part of) a gap, so
  // the sender's recovery sees the partial-ack progress at once.
  const bool fills_gap = !ooo_.empty();
  rcv_nxt_ = seg_end;
  host_.OnSubflowDataDelivered(*this, dsn + skip, fresh,
                               segment.has(kFlagDataFin));
  DeliverInOrderPayloads();
  ScheduleAck(/*out_of_order=*/fills_gap);
}

void Subflow::DeliverInOrderPayloads() {
  while (!ooo_.empty()) {
    auto it = ooo_.begin();
    if (it->first > rcv_nxt_) break;
    const std::uint64_t seg_end = it->first + it->second.data.size();
    if (seg_end <= rcv_nxt_) {
      ooo_.erase(it);
      continue;
    }
    const std::size_t skip = rcv_nxt_ - it->first;
    std::span<const std::uint8_t> fresh(it->second.data.data() + skip,
                                        it->second.data.size() - skip);
    rcv_nxt_ = seg_end;
    host_.OnSubflowDataDelivered(*this, it->second.dsn + skip, fresh,
                                 it->second.data_fin);
    ooo_.erase(it);
  }
  // Drop delivered prefixes from the coalesced range view.
  while (!ooo_ranges_.empty()) {
    auto it = ooo_ranges_.begin();
    if (it->second <= rcv_nxt_) {
      ooo_ranges_.erase(it);
      continue;
    }
    if (it->first < rcv_nxt_) {
      const std::uint64_t end = it->second;
      ooo_ranges_.erase(it);
      ooo_ranges_.emplace(rcv_nxt_, end);
    }
    break;
  }
}

std::vector<SackBlock> Subflow::BuildSackBlocks() const {
  // Report the highest max_sack_blocks coalesced out-of-order ranges
  // (TCP's option space holds 2-3; the ranges are maintained
  // incrementally as segments arrive).
  std::vector<SackBlock> ranges;
  for (auto it = ooo_ranges_.rbegin();
       it != ooo_ranges_.rend() &&
       ranges.size() < static_cast<std::size_t>(config_.max_sack_blocks);
       ++it) {
    ranges.push_back({it->first, it->second});
  }
  return ranges;
}

void Subflow::ScheduleAck(bool out_of_order) {
  if (out_of_order) {
    SendPureAck();  // immediate dupack with SACK
    return;
  }
  ++unacked_arrivals_;
  if (unacked_arrivals_ >= 2) {
    SendPureAck();
  } else if (!delack_timer_.armed()) {
    delack_timer_.SetIn(config_.delayed_ack_timeout);
  }
}

void Subflow::SendPureAck() {
  if (state_ != State::kEstablished) return;
  unacked_arrivals_ = 0;
  delack_timer_.Cancel();
  TcpSegment ack = MakeSegment(kFlagAck);
  Transmit(std::move(ack));
}

// ---------------------------------------------------------------------------
// MPTCP hooks

bool Subflow::HoldsDsn(std::uint64_t dsn) const {
  for (const auto& [seq, info] : unacked_) {
    if (info.sacked) continue;
    if (dsn >= info.dsn && dsn < info.dsn + info.length) return true;
  }
  return false;
}

void Subflow::Penalize() {
  // ORP penalty (Raiciu et al., §4.1): halve the window of the subflow
  // blocking the connection, at most once per RTT.
  const Duration rtt = rtt_.has_sample() ? rtt_.smoothed() : 100 * kMillisecond;
  if (last_penalty_ >= 0 && sim_.now() - last_penalty_ < rtt) return;
  last_penalty_ = sim_.now();
  congestion_->OnPacketLost(sim_.now(), ByteCount{0}, sim_.now());
}

}  // namespace mpq::tcp
