#include "tcpsim/segment.h"

namespace mpq::tcp {

std::size_t SegmentWireSize(const TcpSegment& segment) {
  // cid(8) + subflow(1) + flags(1) + seq(4) + ack(4) + window(3 varint
  // typical) + data_ack + sack count + blocks + dss + payload length.
  std::size_t size = 8 + 1 + 1 + 4 + 4;
  size += VarintSize(segment.window);
  size += VarintSize(segment.data_ack);
  size += 1;  // SACK count
  for (const auto& block : segment.sacks) {
    size += VarintSize(block.start) + VarintSize(block.end - block.start);
  }
  size += 1;  // DSS presence byte
  if (segment.dss.has_value()) size += 8;
  size += 2 + segment.payload.size();
  return size;
}

void EncodeSegment(const TcpSegment& segment, BufWriter& out) {
  out.WriteU64(segment.cid);
  out.WriteU8(segment.subflow);
  out.WriteU8(segment.flags);
  out.WriteU32(static_cast<std::uint32_t>(segment.seq));
  out.WriteU32(static_cast<std::uint32_t>(segment.ack));
  out.WriteVarint(segment.window);
  out.WriteVarint(segment.data_ack);
  out.WriteU8(static_cast<std::uint8_t>(segment.sacks.size()));
  for (const auto& block : segment.sacks) {
    out.WriteVarint(block.start);
    out.WriteVarint(block.end - block.start);
  }
  out.WriteU8(segment.dss.has_value() ? 1 : 0);
  if (segment.dss.has_value()) out.WriteU64(segment.dss->dsn);
  out.WriteU16(static_cast<std::uint16_t>(segment.payload.size()));
  out.WriteBytes(segment.payload);
}

bool DecodeSegment(BufReader& in, TcpSegment& out) {
  std::uint32_t seq32 = 0, ack32 = 0;
  if (!in.ReadU64(out.cid) || !in.ReadU8(out.subflow) ||
      !in.ReadU8(out.flags) || !in.ReadU32(seq32) || !in.ReadU32(ack32) ||
      !in.ReadVarint(out.window) || !in.ReadVarint(out.data_ack)) {
    return false;
  }
  out.seq = seq32;
  out.ack = ack32;
  std::uint8_t sack_count = 0;
  if (!in.ReadU8(sack_count)) return false;
  if (sack_count > 64) return false;  // sanity bound
  out.sacks.clear();
  for (std::uint8_t i = 0; i < sack_count; ++i) {
    std::uint64_t start = 0, len = 0;
    if (!in.ReadVarint(start) || !in.ReadVarint(len)) return false;
    out.sacks.push_back({start, start + len});
  }
  std::uint8_t has_dss = 0;
  if (!in.ReadU8(has_dss)) return false;
  if (has_dss != 0) {
    DssMapping dss;
    if (!in.ReadU64(dss.dsn)) return false;
    out.dss = dss;
  } else {
    out.dss.reset();
  }
  std::uint16_t len = 0;
  if (!in.ReadU16(len)) return false;
  return in.ReadBytes(len, out.payload);
}

}  // namespace mpq::tcp
