#include "tcpsim/endpoint.h"

namespace mpq::tcp {

TcpClientEndpoint::TcpClientEndpoint(sim::Simulator& sim, sim::Network& net,
                                     std::vector<sim::Address> locals,
                                     const TcpConfig& config,
                                     std::uint64_t seed)
    : net_(net), locals_(std::move(locals)) {
  std::vector<sim::DatagramSocket*> sockets;
  sockets.reserve(locals_.size());
  for (const auto& addr : locals_) {
    sockets.push_back(net_.CreateSocket(addr));
  }
  Rng rng(seed);
  const std::uint64_t cid = rng.NextU64() | 1;
  auto send = [sockets, locals = locals_](sim::Address local,
                                          sim::Address remote,
                                          std::vector<std::uint8_t> payload) {
    for (std::size_t i = 0; i < locals.size(); ++i) {
      if (locals[i] == local) {
        sockets[i]->Send(remote, std::move(payload));
        return;
      }
    }
  };
  connection_ = std::make_unique<TcpConnection>(
      sim, TcpPerspective::kClient, cid, config, std::move(send));
  for (auto* socket : sockets) {
    socket->SetReceiveHandler([this](const sim::Datagram& datagram) {
      BufReader reader(datagram.payload);
      TcpSegment segment;
      if (!DecodeSegment(reader, segment)) return;
      if (segment.cid != connection_->cid()) return;
      connection_->OnSegment(segment, datagram);
    });
  }
}

TcpClientEndpoint::~TcpClientEndpoint() {
  for (const auto& addr : locals_) net_.CloseSocket(addr);
}

void TcpClientEndpoint::Connect(std::vector<sim::Address> remotes) {
  connection_->Connect(locals_, std::move(remotes));
}

// ---------------------------------------------------------------------------

TcpServerEndpoint::TcpServerEndpoint(sim::Simulator& sim, sim::Network& net,
                                     std::vector<sim::Address> locals,
                                     const TcpConfig& config,
                                     std::uint64_t seed)
    : sim_(sim),
      net_(net),
      locals_(std::move(locals)),
      config_(config),
      rng_(seed) {
  for (const auto& addr : locals_) {
    sim::DatagramSocket* socket = net_.CreateSocket(addr);
    sockets_.emplace_back(addr, socket);
    socket->SetReceiveHandler(
        [this](const sim::Datagram& datagram) { OnDatagram(datagram); });
  }
}

TcpServerEndpoint::~TcpServerEndpoint() {
  for (const auto& [addr, socket] : sockets_) net_.CloseSocket(addr);
}

TcpConnection* TcpServerEndpoint::FindConnection(std::uint64_t cid) {
  auto it = connections_.find(cid);
  return it == connections_.end() ? nullptr : it->second.get();
}

void TcpServerEndpoint::OnDatagram(const sim::Datagram& datagram) {
  BufReader reader(datagram.payload);
  TcpSegment segment;
  if (!DecodeSegment(reader, segment)) return;

  auto it = connections_.find(segment.cid);
  if (it == connections_.end()) {
    if (!segment.has(kFlagSyn)) return;  // only a SYN opens a connection
    auto send = [this](sim::Address local, sim::Address remote,
                       std::vector<std::uint8_t> payload) {
      for (const auto& [addr, socket] : sockets_) {
        if (addr == local) {
          socket->Send(remote, std::move(payload));
          return;
        }
      }
    };
    auto connection = std::make_unique<TcpConnection>(
        sim_, TcpPerspective::kServer, segment.cid, config_, std::move(send));
    connection->SetLocalAddresses(locals_);
    if (on_accept_) on_accept_(*connection);
    it = connections_.emplace(segment.cid, std::move(connection)).first;
  }
  it->second->OnSegment(segment, datagram);
}

}  // namespace mpq::tcp
