#include "expdesign/scenarios.h"

#include <cmath>

namespace mpq::expdesign {

std::string ToString(ScenarioClass klass) {
  switch (klass) {
    case ScenarioClass::kLowBdpNoLoss:
      return "low-BDP-no-loss";
    case ScenarioClass::kLowBdpLosses:
      return "low-BDP-losses";
    case ScenarioClass::kHighBdpNoLoss:
      return "high-BDP-no-loss";
    case ScenarioClass::kHighBdpLosses:
      return "high-BDP-losses";
  }
  return "?";
}

FactorRanges RangesFor(ScenarioClass klass) {
  FactorRanges ranges;
  const bool high_bdp = klass == ScenarioClass::kHighBdpNoLoss ||
                        klass == ScenarioClass::kHighBdpLosses;
  if (high_bdp) {
    ranges.rtt_max = 400 * kMillisecond;
    ranges.queue_max = 2000 * kMillisecond;
  }
  ranges.lossy = klass == ScenarioClass::kLowBdpLosses ||
                 klass == ScenarioClass::kHighBdpLosses;
  return ranges;
}

namespace {

double Lerp(double t, double lo, double hi) { return lo + t * (hi - lo); }

double LogLerp(double t, double lo, double hi) {
  return lo * std::pow(hi / lo, t);
}

sim::PathParams PathFromCoordinates(const FactorRanges& r, double capacity_t,
                                    double rtt_t, double queue_t,
                                    double loss_t) {
  sim::PathParams params;
  params.capacity_mbps =
      LogLerp(capacity_t, r.capacity_min_mbps, r.capacity_max_mbps);
  params.rtt = static_cast<Duration>(
      Lerp(rtt_t, static_cast<double>(r.rtt_min),
           static_cast<double>(r.rtt_max)));
  params.max_queue_delay = static_cast<Duration>(
      Lerp(queue_t, static_cast<double>(r.queue_min),
           static_cast<double>(r.queue_max)));
  params.random_loss_rate =
      r.lossy ? Lerp(loss_t, r.loss_min, r.loss_max) : 0.0;
  return params;
}

}  // namespace

std::vector<Scenario> GenerateScenarios(ScenarioClass klass,
                                        std::size_t count,
                                        std::uint64_t seed) {
  const FactorRanges ranges = RangesFor(klass);
  // Factors: per-path capacity, RTT, queuing delay (+ per-path loss in
  // the lossy classes) — 6 or 8 dimensions.
  const std::size_t dims = ranges.lossy ? 8 : 6;
  const auto design = WspDesign(dims, count, seed);

  std::vector<Scenario> scenarios;
  scenarios.reserve(count);
  for (std::size_t i = 0; i < design.size(); ++i) {
    const Point& p = design[i];
    Scenario scenario;
    scenario.index = static_cast<int>(i);
    for (int path = 0; path < 2; ++path) {
      const std::size_t base = path * 3;
      const double loss_t = ranges.lossy ? p[6 + path] : 0.0;
      scenario.paths[path] = PathFromCoordinates(
          ranges, p[base], p[base + 1], p[base + 2], loss_t);
    }
    scenarios.push_back(scenario);
  }
  return scenarios;
}

}  // namespace mpq::expdesign
