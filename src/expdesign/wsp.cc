#include "expdesign/wsp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mpq::expdesign {

namespace {

double Distance2(const Point& a, const Point& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

std::vector<std::size_t> WspSelect(const std::vector<Point>& candidates,
                                   double dmin) {
  const double dmin2 = dmin * dmin;
  const std::size_t n = candidates.size();
  std::vector<bool> alive(n, true);
  std::vector<std::size_t> selected;
  if (n == 0) return selected;

  // Seed: the candidate closest to the centre of the cube.
  Point centre(candidates[0].size(), 0.5);
  std::size_t current = 0;
  double best = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < n; ++i) {
    const double d2 = Distance2(candidates[i], centre);
    if (d2 < best) {
      best = d2;
      current = i;
    }
  }

  for (;;) {
    selected.push_back(current);
    alive[current] = false;
    // Discard everything within dmin of the newly selected point.
    for (std::size_t i = 0; i < n; ++i) {
      if (alive[i] && Distance2(candidates[i], candidates[current]) < dmin2) {
        alive[i] = false;
      }
    }
    // Hop to the nearest survivor.
    double nearest = std::numeric_limits<double>::max();
    std::size_t next = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      const double d2 = Distance2(candidates[i], candidates[current]);
      if (d2 < nearest) {
        nearest = d2;
        next = i;
      }
    }
    if (next == n) break;  // exhausted
    current = next;
  }
  return selected;
}

std::vector<Point> WspDesign(std::size_t dims, std::size_t count,
                             std::uint64_t seed,
                             std::size_t candidate_count) {
  if (dims == 0 || count == 0) {
    throw std::invalid_argument("WspDesign: dims and count must be > 0");
  }
  if (candidate_count < 2 * count) candidate_count = 2 * count;

  Rng rng(seed);
  std::vector<Point> candidates(candidate_count);
  for (auto& point : candidates) {
    point.resize(dims);
    for (auto& coordinate : point) coordinate = rng.NextDouble();
  }

  // Bisection on dmin: larger dmin -> fewer selected points (monotone).
  double lo = 0.0;                       // selects everything
  double hi = std::sqrt(static_cast<double>(dims));  // selects ~1 point
  std::vector<std::size_t> selection;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = (lo + hi) / 2.0;
    selection = WspSelect(candidates, mid);
    if (selection.size() == count) break;
    if (selection.size() > count) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // The bisection may land slightly above `count`; keep the first `count`
  // points in selection order (they satisfy the distance constraint).
  selection = WspSelect(candidates, lo);
  if (selection.size() < count) {
    throw std::runtime_error("WspDesign: candidate set too small");
  }
  selection.resize(count);

  std::vector<Point> design;
  design.reserve(count);
  for (std::size_t index : selection) {
    design.push_back(candidates[index]);
  }
  return design;
}

double MinPairwiseDistance(const std::vector<Point>& points) {
  double best = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      best = std::min(best, Distance2(points[i], points[j]));
    }
  }
  return points.size() < 2 ? 0.0 : std::sqrt(best);
}

}  // namespace mpq::expdesign
