// WSP space-filling experimental design (Santiago, Claeys-Bruno, Sergent,
// "Construction of space-filling designs using WSP algorithm for high
// dimensional spaces", 2012) — the algorithm the paper uses (§4.1, [45])
// to pick the 253 simulation scenarios per class from the Table-1 ranges.
//
// The WSP (Wootton-Sergent-Phan-Tan-Luu) procedure: from a large candidate
// set, pick a seed point, discard every candidate closer than a minimum
// distance, hop to the nearest survivor and repeat. The minimum distance
// is tuned (here by bisection) until the selected subset has the desired
// size.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace mpq::expdesign {

/// Points in the unit hypercube [0,1]^dims.
using Point = std::vector<double>;

/// Run one WSP selection pass over `candidates` with minimum distance
/// `dmin` (Euclidean). Returns indices of the selected points.
std::vector<std::size_t> WspSelect(const std::vector<Point>& candidates,
                                   double dmin);

/// Build a WSP design of exactly `count` points in [0,1]^dims, seeded
/// deterministically. Internally generates `candidate_count` uniform
/// candidates and bisects dmin until the selection reaches `count`
/// (trimming the tail of the selection order if it overshoots).
std::vector<Point> WspDesign(std::size_t dims, std::size_t count,
                             std::uint64_t seed,
                             std::size_t candidate_count = 4096);

/// Smallest pairwise distance within the design — the space-filling
/// quality metric WSP maximises (used by tests and the Table-1 bench).
double MinPairwiseDistance(const std::vector<Point>& points);

}  // namespace mpq::expdesign
