// Table-1 scenario generation: maps WSP design points onto the paper's
// four experiment classes (low/high bandwidth-delay product × with/without
// random losses), two disjoint paths each with independent capacity, RTT
// and queuing delay (and loss rate in the lossy classes).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.h"
#include "expdesign/wsp.h"
#include "sim/topology.h"

namespace mpq::expdesign {

/// The four classes of §4.1.
enum class ScenarioClass {
  kLowBdpNoLoss,
  kLowBdpLosses,
  kHighBdpNoLoss,
  kHighBdpLosses,
};

std::string ToString(ScenarioClass klass);

/// Table 1 ranges for one class.
struct FactorRanges {
  double capacity_min_mbps = 0.1;
  double capacity_max_mbps = 100.0;
  Duration rtt_min = 0;
  Duration rtt_max = 50 * kMillisecond;
  Duration queue_min = 0;
  Duration queue_max = 100 * kMillisecond;
  double loss_min = 0.0;
  double loss_max = 0.025;
  bool lossy = false;
};

FactorRanges RangesFor(ScenarioClass klass);

/// One evaluation scenario: the two paths of the Fig. 2 topology.
struct Scenario {
  std::array<sim::PathParams, 2> paths;
  int index = 0;  // position within the design
};

/// Generate the class's experimental design. The paper uses 253 scenarios
/// per class; pass a smaller count for quick runs. Capacity is sampled
/// log-uniformly (the range spans three decades), other factors linearly.
/// Deterministic in (klass, count, seed).
std::vector<Scenario> GenerateScenarios(ScenarioClass klass,
                                        std::size_t count = 253,
                                        std::uint64_t seed = 20170712);

}  // namespace mpq::expdesign
