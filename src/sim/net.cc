#include "sim/net.h"

#include <stdexcept>
#include <utility>

#include "common/log.h"

namespace mpq::sim {

Link::Link(Simulator& sim, LinkConfig config, Rng rng)
    : sim_(sim), config_(config), rng_(rng) {
  if (config_.capacity_mbps <= 0.0) {
    throw std::invalid_argument("link capacity must be positive");
  }
  // A link that cannot hold even two full-size packets cannot carry any
  // sustained traffic; clamp (see LinkConfig doc).
  constexpr ByteCount kMinQueue{2 * 1500};
  if (config_.queue_capacity_bytes < kMinQueue) {
    config_.queue_capacity_bytes = kMinQueue;
  }
}

Duration Link::TransmissionTime(ByteCount wire_bytes) const {
  const double bits = static_cast<double>(wire_bytes) * 8.0;
  const double seconds = bits / (config_.capacity_mbps * 1e6);
  const auto us = static_cast<Duration>(seconds * 1e6 + 0.5);
  return us > 0 ? us : 1;  // nothing transmits in zero time
}

bool Link::WireLoss() {
  if (config_.gilbert_elliott.enabled) {
    const GilbertElliottConfig& ge = config_.gilbert_elliott;
    // Evolve the channel once per packet, then draw by current state.
    const double flip = ge_bad_ ? ge.bad_to_good : ge.good_to_bad;
    if (flip > 0.0 && rng_.NextBool(flip)) ge_bad_ = !ge_bad_;
    const double loss = ge_bad_ ? ge.loss_bad : ge.loss_good;
    return loss > 0.0 && rng_.NextBool(loss);
  }
  return config_.random_loss_rate > 0.0 &&
         rng_.NextBool(config_.random_loss_rate);
}

void Link::ApplyFault(const LinkFault& fault) {
  switch (fault.kind) {
    case LinkFault::Kind::kDown:
      down_ = true;
      break;
    case LinkFault::Kind::kUp:
      down_ = false;
      break;
    case LinkFault::Kind::kLossRate:
      config_.random_loss_rate = fault.loss_rate;
      config_.gilbert_elliott.enabled = false;
      break;
    case LinkFault::Kind::kReconfigure:
      if (fault.capacity_mbps > 0.0) {
        config_.capacity_mbps = fault.capacity_mbps;
      }
      if (fault.propagation_delay > 0) {
        config_.propagation_delay = fault.propagation_delay;
      }
      if (fault.queue_capacity_bytes > ByteCount{0}) {
        constexpr ByteCount kMinQueue{2 * 1500};
        config_.queue_capacity_bytes =
            fault.queue_capacity_bytes < kMinQueue ? kMinQueue
                                                   : fault.queue_capacity_bytes;
      }
      break;
    case LinkFault::Kind::kBurstLoss:
      SetGilbertElliott(fault.gilbert_elliott);
      break;
  }
}

void Link::ScheduleFaults(const std::vector<LinkFault>& faults) {
  for (const LinkFault& fault : faults) {
    sim_.ScheduleAt(fault.time, [this, fault] { ApplyFault(fault); });
  }
}

void Link::Transmit(Datagram dgram) {
  ++stats_.offered;
  if (down_) {
    ++stats_.dropped_link_down;
    return;
  }
  const ByteCount wire_bytes =
      ByteCount{dgram.payload.size()} + config_.per_packet_overhead;
  if (queued_bytes_ + wire_bytes > config_.queue_capacity_bytes) {
    ++stats_.dropped_queue_full;
    return;
  }
  queued_bytes_ += wire_bytes;
  if (queued_bytes_ > stats_.max_queue_bytes) {
    stats_.max_queue_bytes = queued_bytes_;
  }
  const TimePoint start =
      busy_until_ > sim_.now() ? busy_until_ : sim_.now();
  const TimePoint tx_done = start + TransmissionTime(wire_bytes);
  busy_until_ = tx_done;
  // One event at transmission completion: free the queue space, then (if
  // the wire does not eat the packet) deliver after the propagation delay.
  sim_.ScheduleAt(tx_done, [this, wire_bytes,
                            dgram = std::move(dgram)]() mutable {
    queued_bytes_ -= wire_bytes;
    // A link that went down mid-serialization loses the packet too; no
    // RNG draw, so up/down cycles leave other links' loss sequences
    // untouched.
    if (down_) {
      ++stats_.dropped_link_down;
      return;
    }
    if (WireLoss()) {
      ++stats_.dropped_random;
      return;
    }
    Duration propagation = config_.propagation_delay;
    if (config_.jitter > 0) {
      propagation += static_cast<Duration>(
          rng_.NextBounded(static_cast<std::uint64_t>(config_.jitter) + 1));
    }
    // The delivery event is tagged so the explorer can treat it as an
    // adversarial target (drop/duplicate) and group it by destination.
    sim_.Schedule(
        propagation,
        [this, wire_bytes, dgram = std::move(dgram)]() mutable {
          ++stats_.delivered;
          stats_.wire_bytes_delivered += wire_bytes;
          if (deliver_) deliver_(std::move(dgram));
        },
        EventKind::kDelivery, delivery_scope_);
  });
}

void DatagramSocket::Send(Address dst, std::vector<std::uint8_t> payload) {
  net_.Send(Datagram{local_, dst, std::move(payload)});
}

Link* Network::AddLink(Address from, Address to, const LinkConfig& config) {
  auto link = std::make_unique<Link>(sim_, config, rng_.Fork());
  Link* raw = link.get();
  raw->SetDeliveryHandler([this](Datagram&& d) { Deliver(std::move(d)); });
  raw->SetDeliveryScope(1u + to.node);
  auto [it, inserted] =
      links_by_src_.emplace(from, LinkEnds{std::move(link), to});
  if (!inserted) {
    throw std::invalid_argument("interface already has an outgoing link");
  }
  return it->second.link.get();
}

Link* Network::AddSharedLink(Address from, const LinkConfig& config) {
  auto link = std::make_unique<Link>(sim_, config, rng_.Fork());
  Link* raw = link.get();
  raw->SetDeliveryHandler([this](Datagram&& d) { Deliver(std::move(d)); });
  // Deliveries fan out to many destinations; scope 0 keeps the explorer
  // conservative ("dependent with everything") should it ever meet one.
  raw->SetDeliveryScope(0);
  auto [it, inserted] = links_by_src_.emplace(
      from, LinkEnds{std::move(link), Address{}, /*any_dst=*/true});
  if (!inserted) {
    throw std::invalid_argument("interface already has an outgoing link");
  }
  return it->second.link.get();
}

std::pair<Link*, Link*> Network::AddDuplexLink(Address a, Address b,
                                               const LinkConfig& a_to_b,
                                               const LinkConfig& b_to_a) {
  Link* fwd = AddLink(a, b, a_to_b);
  Link* rev = AddLink(b, a, b_to_a);
  return {fwd, rev};
}

DatagramSocket* Network::CreateSocket(Address local) {
  auto socket =
      std::unique_ptr<DatagramSocket>(new DatagramSocket(*this, local));
  auto [it, inserted] = sockets_.emplace(local, std::move(socket));
  if (!inserted) {
    throw std::invalid_argument("address already bound");
  }
  return it->second.get();
}

Link* Network::FindLinkFrom(Address from) {
  auto it = links_by_src_.find(from);
  return it == links_by_src_.end() ? nullptr : it->second.link.get();
}

void Network::Send(Datagram dgram) {
  auto it = links_by_src_.find(dgram.src);
  if (it == links_by_src_.end()) {
    MPQ_WARN(sim_.now(), "net", "no route from node %u iface %u",
             dgram.src.node, dgram.src.iface);
    return;
  }
  if (!it->second.any_dst && !(it->second.to == dgram.dst)) {
    // Disjoint-path topology: an interface reaches exactly one peer
    // address. A mismatched destination is unroutable.
    MPQ_WARN(sim_.now(), "net", "unroutable dst node %u iface %u",
             dgram.dst.node, dgram.dst.iface);
    return;
  }
  it->second.link->Transmit(std::move(dgram));
}

void Network::Deliver(Datagram&& dgram) {
  auto it = sockets_.find(dgram.dst);
  if (it == sockets_.end()) return;  // no listener: silently dropped
  if (it->second->receive_) it->second->receive_(dgram);
}

}  // namespace mpq::sim
