#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "obs/prof.h"

namespace mpq::sim {

Simulator::EventId Simulator::ScheduleAt(TimePoint when, Callback fn,
                                         EventKind kind, std::uint32_t scope) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  pending_.emplace(id, Event{when, id, kind, scope, std::move(fn)});
  queue_.push(HeapEntry{when, id});
  return id;
}

std::vector<Simulator::PendingEventInfo> Simulator::PendingEvents() const {
  std::vector<PendingEventInfo> out;
  out.reserve(pending_.size());
  for (const auto& [id, event] : pending_) {
    out.push_back({id, event.when, event.kind, event.scope});
  }
  std::sort(out.begin(), out.end(),
            [](const PendingEventInfo& a, const PendingEventInfo& b) {
              if (a.when != b.when) return a.when < b.when;
              return a.id < b.id;
            });
  return out;
}

bool Simulator::FireEvent(EventId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  Callback fn = std::move(it->second.fn);
  if (it->second.when > now_) now_ = it->second.when;
  pending_.erase(it);
  ++events_executed_;
  {
    MPQ_PROF_SCOPE("sim/event");
    fn();
  }
  return true;
}

Simulator::EventId Simulator::DuplicateEvent(EventId id, Duration extra_delay) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return 0;
  // Copy the callback (std::function targets are CopyConstructible by
  // construction) and reuse the normal scheduling path for the clone.
  Callback copy = it->second.fn;
  const TimePoint when =
      it->second.when + (extra_delay < 0 ? 0 : extra_delay);
  return ScheduleAt(when, std::move(copy), it->second.kind, it->second.scope);
}

void Simulator::Cancel(EventId id) { pending_.erase(id); }

bool Simulator::RunOne(TimePoint until) {
  while (!queue_.empty()) {
    const HeapEntry top = queue_.top();
    auto it = pending_.find(top.id);
    if (it == pending_.end()) {
      queue_.pop();  // cancelled; discard the stale heap entry
      continue;
    }
    if (top.when > until) return false;
    queue_.pop();
    // Move the callback out before erasing so the callback may freely
    // schedule/cancel (including rescheduling its own id, which is gone).
    Callback fn = std::move(it->second.fn);
    now_ = top.when;
    pending_.erase(it);
    ++events_executed_;
    {
      // Root span of the engine: every protocol callback (and therefore
      // every nested dispatch/assembly/crypto/recovery span) runs inside
      // one simulated event, so "sim;event" inclusive time ≈ engine wall
      // time and its self time is the uninstrumented remainder.
      MPQ_PROF_SCOPE("sim/event");
      fn();
    }
    return true;
  }
  return false;
}

std::uint64_t Simulator::Run(TimePoint until) {
  std::uint64_t executed = 0;
  while (RunOne(until)) ++executed;
  return executed;
}

}  // namespace mpq::sim
