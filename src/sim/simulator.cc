#include "sim/simulator.h"

#include <utility>

#include "obs/prof.h"

namespace mpq::sim {

Simulator::EventId Simulator::ScheduleAt(TimePoint when, Callback fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  pending_.emplace(id, Event{when, id, std::move(fn)});
  queue_.push(HeapEntry{when, id});
  return id;
}

void Simulator::Cancel(EventId id) { pending_.erase(id); }

bool Simulator::RunOne(TimePoint until) {
  while (!queue_.empty()) {
    const HeapEntry top = queue_.top();
    auto it = pending_.find(top.id);
    if (it == pending_.end()) {
      queue_.pop();  // cancelled; discard the stale heap entry
      continue;
    }
    if (top.when > until) return false;
    queue_.pop();
    // Move the callback out before erasing so the callback may freely
    // schedule/cancel (including rescheduling its own id, which is gone).
    Callback fn = std::move(it->second.fn);
    now_ = top.when;
    pending_.erase(it);
    ++events_executed_;
    {
      // Root span of the engine: every protocol callback (and therefore
      // every nested dispatch/assembly/crypto/recovery span) runs inside
      // one simulated event, so "sim;event" inclusive time ≈ engine wall
      // time and its self time is the uninstrumented remainder.
      MPQ_PROF_SCOPE("sim/event");
      fn();
    }
    return true;
  }
  return false;
}

std::uint64_t Simulator::Run(TimePoint until) {
  std::uint64_t executed = 0;
  while (RunOne(until)) ++executed;
  return executed;
}

}  // namespace mpq::sim
