#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "obs/prof.h"

namespace mpq::sim {

Simulator::EventId Simulator::ScheduleAt(TimePoint when, Callback fn,
                                         EventKind kind, std::uint32_t scope) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  pending_.emplace(id, Event{when, id, kind, scope, std::move(fn)});
  queue_.push(HeapEntry{when, id});
  return id;
}

Simulator::EventId Simulator::ArmTimer(TimerEntry& entry, TimePoint when) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  wheel_.Arm(entry, when, id);
  return id;
}

void Simulator::CancelTimer(TimerEntry& entry) { wheel_.Cancel(entry); }

std::vector<Simulator::PendingEventInfo> Simulator::PendingEvents() const {
  std::vector<PendingEventInfo> out;
  out.reserve(pending_.size() + wheel_.size());
  for (const auto& [id, event] : pending_) {
    out.push_back({id, event.when, event.kind, event.scope});
  }
  // Wheel timers are pending events like any other; they carry scope 0
  // (timers are dependent with everything), exactly as the heap-based
  // timers did.
  wheel_.ForEach([&out](const TimerEntry& entry) {
    out.push_back({entry.id(), entry.when(), EventKind::kTimer, 0});
  });
  std::sort(out.begin(), out.end(),
            [](const PendingEventInfo& a, const PendingEventInfo& b) {
              if (a.when != b.when) return a.when < b.when;
              return a.id < b.id;
            });
  return out;
}

void Simulator::FireWheelEntry(TimerEntry& entry, bool pop_earliest) {
  std::function<void()>* fn = entry.callback;
  const TimePoint when = entry.when();
  if (pop_earliest) {
    wheel_.PopEarliest(entry);
    now_ = when;
  } else {
    // Explorer path (FireEvent out of order): fire late without moving
    // the wheel's horizon — later entries keep their placement.
    wheel_.Cancel(entry);
    if (when > now_) now_ = when;
  }
  ++events_executed_;
  {
    MPQ_PROF_SCOPE("sim/event");
    (*fn)();
  }
}

bool Simulator::FireEvent(EventId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    TimerEntry* entry = wheel_.FindById(id);
    if (entry == nullptr) return false;
    FireWheelEntry(*entry, /*pop_earliest=*/false);
    return true;
  }
  Callback fn = std::move(it->second.fn);
  if (it->second.when > now_) now_ = it->second.when;
  pending_.erase(it);
  ++events_executed_;
  {
    MPQ_PROF_SCOPE("sim/event");
    fn();
  }
  return true;
}

Simulator::EventId Simulator::DuplicateEvent(EventId id, Duration extra_delay) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    TimerEntry* entry = wheel_.FindById(id);
    if (entry == nullptr) return 0;
    // Clone the timer as a plain heap event invoking a copy of the
    // owner's callback (the original entry stays armed; the clone does
    // not reset the owning Timer's state when it fires).
    Callback copy = *entry->callback;
    const TimePoint when =
        entry->when() + (extra_delay < 0 ? 0 : extra_delay);
    return ScheduleAt(when, std::move(copy), EventKind::kTimer, 0);
  }
  // Copy the callback (std::function targets are CopyConstructible by
  // construction) and reuse the normal scheduling path for the clone.
  Callback copy = it->second.fn;
  const TimePoint when =
      it->second.when + (extra_delay < 0 ? 0 : extra_delay);
  return ScheduleAt(when, std::move(copy), it->second.kind, it->second.scope);
}

void Simulator::Cancel(EventId id) {
  if (pending_.erase(id) != 0) return;
  TimerEntry* entry = wheel_.FindById(id);
  if (entry != nullptr) wheel_.Cancel(*entry);
}

bool Simulator::RunOne(TimePoint until) {
  // Discard stale heap entries so the top (if any) is a live event.
  while (!queue_.empty() &&
         pending_.find(queue_.top().id) == pending_.end()) {
    queue_.pop();
  }
  TimerEntry* timer = wheel_.PeekEarliest();
  bool fire_timer;
  if (timer != nullptr && !queue_.empty()) {
    const HeapEntry top = queue_.top();
    fire_timer = timer->when() != top.when ? timer->when() < top.when
                                           : timer->id() < top.id;
  } else if (timer != nullptr) {
    fire_timer = true;
  } else if (!queue_.empty()) {
    fire_timer = false;
  } else {
    return false;
  }

  if (fire_timer) {
    if (timer->when() > until) return false;
    FireWheelEntry(*timer, /*pop_earliest=*/true);
    return true;
  }

  const HeapEntry top = queue_.top();
  if (top.when > until) return false;
  auto it = pending_.find(top.id);
  queue_.pop();
  // Move the callback out before erasing so the callback may freely
  // schedule/cancel (including rescheduling its own id, which is gone).
  Callback fn = std::move(it->second.fn);
  now_ = top.when;
  pending_.erase(it);
  ++events_executed_;
  {
    // Root span of the engine: every protocol callback (and therefore
    // every nested dispatch/assembly/crypto/recovery span) runs inside
    // one simulated event, so "sim;event" inclusive time ≈ engine wall
    // time and its self time is the uninstrumented remainder.
    MPQ_PROF_SCOPE("sim/event");
    fn();
  }
  return true;
}

std::uint64_t Simulator::Run(TimePoint until) {
  std::uint64_t executed = 0;
  while (RunOne(until)) ++executed;
  return executed;
}

}  // namespace mpq::sim
