// The evaluation topology of the paper (Fig. 2): two multihomed hosts —
// client and server — connected by two disjoint paths with independent
// characteristics. Path i joins client interface i to server interface i.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/net.h"
#include "sim/simulator.h"

namespace mpq::sim {

/// Per-path parameters, matching Table 1's factors. `rtt` is the two-way
/// propagation delay (split evenly per direction); `max_queue_delay`
/// sizes the drop-tail queue as capacity * delay (bufferbloat knob);
/// `random_loss_rate` applies independently in each direction.
struct PathParams {
  double capacity_mbps = 10.0;
  Duration rtt = 30 * kMillisecond;
  Duration max_queue_delay = 50 * kMillisecond;
  double random_loss_rate = 0.0;
  /// Optional per-packet delay jitter (reordering stressor; 0 in the
  /// paper's Table-1 scenarios).
  Duration jitter = 0;
  ByteCount per_packet_overhead{28};
};

inline constexpr std::uint16_t kClientNode = 1;
inline constexpr std::uint16_t kServerNode = 2;

struct TwoPathTopology {
  /// client_addr[i] / server_addr[i] are the endpoints of path i.
  std::array<Address, 2> client_addr;
  std::array<Address, 2> server_addr;
  /// forward[i]: client -> server on path i; backward[i]: the reverse.
  std::array<Link*, 2> forward{};
  std::array<Link*, 2> backward{};
};

/// Derive the queue capacity from capacity and max queuing delay.
ByteCount QueueCapacityBytes(double capacity_mbps, Duration max_queue_delay);

/// Build the Fig. 2 topology in `net` from two PathParams.
TwoPathTopology BuildTwoPathTopology(Network& net,
                                     const std::array<PathParams, 2>& paths);

// ---------------------------------------------------------------------------
// Fault injection (docs/ROBUSTNESS.md)

/// One scheduled change to a *path* — both directions of the duplex link.
/// The Kind and value fields mirror sim::LinkFault; `rtt` (kReconfigure)
/// is the two-way delay, split evenly per direction like PathParams.
struct PathFault {
  TimePoint time = 0;
  int path = 0;  // topology path index (0 or 1)
  LinkFault::Kind kind = LinkFault::Kind::kDown;
  double loss_rate = 0.0;        // kLossRate
  double capacity_mbps = 0.0;    // kReconfigure; 0 = unchanged
  Duration rtt = 0;              // kReconfigure; 0 = unchanged
  GilbertElliottConfig gilbert_elliott;  // kBurstLoss
};

using FaultSchedule = std::vector<PathFault>;

/// Human-readable kind name ("down", "up", "loss", "reconfigure",
/// "burst-loss") — used for trace events and chaos diagnostics.
const char* ToString(LinkFault::Kind kind);

/// Schedule every fault of `schedule` into `sim`: exactly ONE simulator
/// event per entry, applying the change to both directions of the path
/// (forward first). `observer`, when set, is invoked from that event
/// after the fault is applied — the hook the harness uses to emit
/// sim:link_down / sim:link_up / sim:fault trace events. `topo` must
/// outlive the scheduled events.
void SchedulePathFaults(Simulator& sim, TwoPathTopology& topo,
                        const FaultSchedule& schedule,
                        std::function<void(const PathFault&)> observer = {});

}  // namespace mpq::sim
