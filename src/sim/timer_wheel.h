// Hierarchical timing wheel (Varghese & Lauck) shared by every Timer in
// one Simulator.
//
// Why a wheel: at many-connection scale each connection keeps several
// rearmable timers (RTO, probe, delayed ACK, pacing, idle), and the old
// implementation pushed one fresh heap event + hash-map entry per re-arm.
// The wheel stores each timer as an intrusive list node instead: arm,
// re-arm and cancel are O(1) pointer surgery with zero allocation, and
// firing order is recovered lazily from 256-slot levels of exponentially
// coarser resolution (1 us ticks at level 0, covering 2^32 us ~ 71
// minutes across 4 levels, with an overflow list beyond).
//
// Determinism contract: the wheel does NOT replace the Simulator's
// (timestamp, id) total order — every armed entry carries an event id
// drawn from the same monotonic counter as heap events, and the
// Simulator merges wheel and heap by exact (when, id) comparison. One id
// is consumed per arm, the same id budget the previous ScheduleAt-based
// timers used, so event interleavings (and therefore every CSV/qlog/
// digest output) are byte-identical to the old implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/types.h"

namespace mpq::sim {

class TimerWheel;

/// Intrusive handle for one armed timer. Owned by sim::Timer (one per
/// Timer, embedded — never heap-allocated per arm). `callback` points at
/// the owner's std::function, stored once at construction; the wheel
/// never copies it.
class TimerEntry {
 public:
  TimerEntry() = default;
  ~TimerEntry();

  TimerEntry(const TimerEntry&) = delete;
  TimerEntry& operator=(const TimerEntry&) = delete;

  bool armed() const { return wheel_ != nullptr; }
  TimePoint when() const { return when_; }
  std::uint64_t id() const { return id_; }

  /// The owner's callback storage (set once; the owner outlives any
  /// armed entry — same RAII contract as sim::Timer).
  std::function<void()>* callback = nullptr;

 private:
  friend class TimerWheel;

  TimerWheel* wheel_ = nullptr;
  TimePoint when_ = 0;
  std::uint64_t id_ = 0;
  // Doubly-linked slot list; pprev_ points at whatever points at this
  // entry (slot head or predecessor's next_), so unlink is O(1) without
  // knowing the slot.
  TimerEntry* next_ = nullptr;
  TimerEntry** pprev_ = nullptr;
  // Where the entry currently lives (kLevels = overflow list), so
  // unlink can clear the slot's occupancy bit when the list empties.
  std::int32_t level_ = -1;
  std::int32_t slot_ = 0;
};

/// The wheel itself. Invariants:
///  - every armed entry has when() >= horizon() (the wheel's notion of
///    "now"; the Simulator only advances it to the earliest deadline);
///  - an entry lives at the lowest level whose coarser digits of when()
///    all match horizon() — so within a level, slots in increasing index
///    order hold strictly increasing deadlines, every level-L deadline
///    precedes every level-(L+1) deadline, and the earliest entry is
///    found by scanning occupancy bitmaps for the first nonempty slot of
///    the lowest nonempty level.
class TimerWheel {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;  // 256 slots per level
  static constexpr int kBitmapWords = kSlots / 64;

  TimerWheel() = default;
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arm (or re-arm) `entry` to fire at `when` with event id `id`.
  /// `when` must be >= horizon() (the Simulator clamps to now).
  void Arm(TimerEntry& entry, TimePoint when, std::uint64_t id);

  /// Disarm `entry`. No-op if it is not armed on this wheel.
  void Cancel(TimerEntry& entry);

  /// Earliest armed entry by (when, id); nullptr when empty. Does not
  /// advance the wheel.
  TimerEntry* PeekEarliest();

  /// Remove `entry` — which must be the current earliest — advancing the
  /// wheel's horizon to its deadline (cascading coarser slots down) and
  /// disarming it. The normal fire path.
  void PopEarliest(TimerEntry& entry);

  /// Linear scan for an armed entry by id (explorer hooks only).
  TimerEntry* FindById(std::uint64_t id);

  /// Visit every armed entry, in no particular order (explorer snapshot;
  /// the caller sorts).
  void ForEach(const std::function<void(const TimerEntry&)>& fn) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  TimePoint horizon() const { return horizon_; }

 private:
  void Place(TimerEntry& entry);
  void Unlink(TimerEntry& entry);
  /// Advance horizon to `to`; requires no armed deadline < `to`.
  /// Re-files the slots whose digits newly match the horizon so their
  /// entries cascade down to finer levels.
  void AdvanceTo(TimePoint to);
  void FlushSlot(int level, int slot);
  void FlushOverflow();
  void FlushChain(TimerEntry* chain);
  bool LevelEmpty(int level) const;
  static bool EarlierThan(const TimerEntry& a, const TimerEntry& b) {
    if (a.when_ != b.when_) return a.when_ < b.when_;
    return a.id_ < b.id_;
  }

  TimerEntry* slots_[kLevels][kSlots] = {};
  std::uint64_t bitmap_[kLevels][kBitmapWords] = {};
  TimerEntry* overflow_ = nullptr;
  TimePoint horizon_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mpq::sim
