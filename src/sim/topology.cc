#include "sim/topology.h"

namespace mpq::sim {

ByteCount QueueCapacityBytes(double capacity_mbps, Duration max_queue_delay) {
  const double bytes_per_us = capacity_mbps * 1e6 / 8.0 / 1e6;
  return static_cast<ByteCount>(bytes_per_us *
                                static_cast<double>(max_queue_delay));
}

TwoPathTopology BuildTwoPathTopology(
    Network& net, const std::array<PathParams, 2>& paths) {
  TwoPathTopology topo;
  for (std::uint16_t i = 0; i < 2; ++i) {
    topo.client_addr[i] = Address{kClientNode, i};
    topo.server_addr[i] = Address{kServerNode, i};
    LinkConfig config;
    config.capacity_mbps = paths[i].capacity_mbps;
    config.propagation_delay = paths[i].rtt / 2;
    config.queue_capacity_bytes =
        QueueCapacityBytes(paths[i].capacity_mbps, paths[i].max_queue_delay);
    config.random_loss_rate = paths[i].random_loss_rate;
    config.jitter = paths[i].jitter;
    config.per_packet_overhead = paths[i].per_packet_overhead;
    auto [fwd, rev] = net.AddDuplexLink(topo.client_addr[i],
                                        topo.server_addr[i], config, config);
    topo.forward[i] = fwd;
    topo.backward[i] = rev;
  }
  return topo;
}

const char* ToString(LinkFault::Kind kind) {
  switch (kind) {
    case LinkFault::Kind::kDown:
      return "down";
    case LinkFault::Kind::kUp:
      return "up";
    case LinkFault::Kind::kLossRate:
      return "loss";
    case LinkFault::Kind::kReconfigure:
      return "reconfigure";
    case LinkFault::Kind::kBurstLoss:
      return "burst-loss";
  }
  return "?";
}

namespace {

LinkFault ToLinkFault(const PathFault& fault) {
  LinkFault link_fault;
  link_fault.time = fault.time;
  link_fault.kind = fault.kind;
  link_fault.loss_rate = fault.loss_rate;
  link_fault.capacity_mbps = fault.capacity_mbps;
  link_fault.propagation_delay = fault.rtt / 2;
  link_fault.gilbert_elliott = fault.gilbert_elliott;
  return link_fault;
}

}  // namespace

void SchedulePathFaults(Simulator& sim, TwoPathTopology& topo,
                        const FaultSchedule& schedule,
                        std::function<void(const PathFault&)> observer) {
  for (const PathFault& fault : schedule) {
    sim.ScheduleAt(fault.time, [&topo, fault, observer] {
      const LinkFault link_fault = ToLinkFault(fault);
      const std::size_t index =
          fault.path == 0 ? 0 : 1;  // out-of-range paths clamp to 1
      topo.forward[index]->ApplyFault(link_fault);
      topo.backward[index]->ApplyFault(link_fault);
      if (observer) observer(fault);
    });
  }
}

}  // namespace mpq::sim
