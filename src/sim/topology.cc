#include "sim/topology.h"

namespace mpq::sim {

ByteCount QueueCapacityBytes(double capacity_mbps, Duration max_queue_delay) {
  const double bytes_per_us = capacity_mbps * 1e6 / 8.0 / 1e6;
  return static_cast<ByteCount>(bytes_per_us *
                                static_cast<double>(max_queue_delay));
}

TwoPathTopology BuildTwoPathTopology(
    Network& net, const std::array<PathParams, 2>& paths) {
  TwoPathTopology topo;
  for (std::uint16_t i = 0; i < 2; ++i) {
    topo.client_addr[i] = Address{kClientNode, i};
    topo.server_addr[i] = Address{kServerNode, i};
    LinkConfig config;
    config.capacity_mbps = paths[i].capacity_mbps;
    config.propagation_delay = paths[i].rtt / 2;
    config.queue_capacity_bytes =
        QueueCapacityBytes(paths[i].capacity_mbps, paths[i].max_queue_delay);
    config.random_loss_rate = paths[i].random_loss_rate;
    config.jitter = paths[i].jitter;
    config.per_packet_overhead = paths[i].per_packet_overhead;
    auto [fwd, rev] = net.AddDuplexLink(topo.client_addr[i],
                                        topo.server_addr[i], config, config);
    topo.forward[i] = fwd;
    topo.backward[i] = rev;
  }
  return topo;
}

}  // namespace mpq::sim
