// Deterministic discrete-event simulator.
//
// This is the substrate that replaces the paper's Mininet testbed. All
// protocol stacks in this repository are event-driven state machines wired
// to a Simulator: link transmissions, propagation delays and protocol
// timers are all events on one queue, executed in strict timestamp order
// (FIFO among equal timestamps), so every run is exactly reproducible.
//
// Schedule control (docs/MODEL_CHECKING.md): events carry an EventKind
// and a scope tag, the pending set is enumerable (PendingEvents), and a
// specific pending event can be fired out of timestamp order (FireEvent)
// or duplicated (DuplicateEvent). Normal runs never use these hooks —
// Run/RunOne keep the strict (timestamp, id) order — but the mpq_model
// explorer uses them to branch over every delivery/timer interleaving a
// bounded amount of jitter could produce.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/timer_wheel.h"

namespace mpq::sim {

/// What an event models — the explorer's choice vocabulary. Deliveries
/// are the adversary's targets (drop/duplicate model wire faults);
/// timers and generic events may only be reordered, never dropped.
enum class EventKind : std::uint8_t { kGeneric = 0, kDelivery = 1, kTimer = 2 };

class Simulator {
 public:
  using EventId = std::uint64_t;
  using Callback = std::function<void()>;

  /// One pending event as the explorer sees it. `scope` is an
  /// independence class assigned at schedule time (deliveries use
  /// 1 + destination node; 0 means "dependent with everything").
  struct PendingEventInfo {
    EventId id = 0;
    TimePoint when = 0;
    EventKind kind = EventKind::kGeneric;
    std::uint32_t scope = 0;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run `delay` microseconds from now (delay < 0 is
  /// clamped to 0). Returns an id usable with Cancel().
  EventId Schedule(Duration delay, Callback fn,
                   EventKind kind = EventKind::kGeneric,
                   std::uint32_t scope = 0) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn), kind,
                      scope);
  }

  /// Schedule `fn` at absolute time `when` (clamped to now).
  EventId ScheduleAt(TimePoint when, Callback fn,
                     EventKind kind = EventKind::kGeneric,
                     std::uint32_t scope = 0);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is
  /// a harmless no-op (protocol timers race with the events that clear
  /// them; this mirrors how timer APIs behave in real stacks).
  void Cancel(EventId id);

  /// Arm `entry` to fire at `when` (clamped to now) on the shared timer
  /// wheel — the zero-allocation path sim::Timer uses. Exactly one event
  /// id is consumed per arm (the same budget a ScheduleAt-based timer
  /// would use), so the merged (when, id) firing order is identical to
  /// scheduling the timer as a heap event. Returns the assigned id.
  EventId ArmTimer(TimerEntry& entry, TimePoint when);

  /// Disarm a wheel timer (no-op if not armed).
  void CancelTimer(TimerEntry& entry);

  /// Run until the queue is empty or simulated time would exceed `until`.
  /// Returns the number of events executed.
  std::uint64_t Run(TimePoint until = kTimeInfinite);

  /// Execute exactly one runnable event. Returns false if the queue is
  /// empty or the next event is later than `until`.
  bool RunOne(TimePoint until = kTimeInfinite);

  // -- schedule-control hooks (explorer only; see header comment) --------

  /// Snapshot of every pending event, sorted by (when, id) — the same
  /// canonical order Run() would fire them in. O(n log n); the explorer
  /// calls it once per exploration step on tiny queues.
  std::vector<PendingEventInfo> PendingEvents() const;

  /// Execute the pending event `id` now, even if it is not the earliest:
  /// time advances to max(now, its scheduled time), so events skipped
  /// over simply fire late (the jitter interpretation of reordering).
  /// Returns false for unknown/cancelled ids.
  bool FireEvent(EventId id);

  /// Clone a pending event: the copy fires at `when + extra_delay` with a
  /// fresh id (FIFO places it after the original at equal times). Models
  /// wire duplication. Returns 0 for unknown ids.
  EventId DuplicateEvent(EventId id, Duration extra_delay = 0);

  bool empty() const { return pending_.empty() && wheel_.empty(); }
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    TimePoint when = 0;
    EventId id = 0;  // monotonic; provides FIFO tie-breaking at equal times
    EventKind kind = EventKind::kGeneric;
    std::uint32_t scope = 0;
    Callback fn;
  };
  struct HeapEntry {
    TimePoint when;
    EventId id;
  };
  struct HeapCompare {
    // std::priority_queue is a max-heap; invert for earliest-first and
    // lowest-id-first among equal timestamps.
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  /// Fire one wheel timer: disarm first (so the callback may re-arm),
  /// advance time, invoke.
  void FireWheelEntry(TimerEntry& entry, bool pop_earliest);

  TimePoint now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> queue_;
  // Cancellation removes from this map; stale heap entries are skipped on
  // pop. The heap never holds more stale entries than were cancelled.
  std::unordered_map<EventId, Event> pending_;
  // Protocol timers (EventKind::kTimer via sim::Timer) live here, not in
  // the heap; RunOne merges the two sources by exact (when, id).
  TimerWheel wheel_;
};

}  // namespace mpq::sim
