// Deterministic discrete-event simulator.
//
// This is the substrate that replaces the paper's Mininet testbed. All
// protocol stacks in this repository are event-driven state machines wired
// to a Simulator: link transmissions, propagation delays and protocol
// timers are all events on one queue, executed in strict timestamp order
// (FIFO among equal timestamps), so every run is exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace mpq::sim {

class Simulator {
 public:
  using EventId = std::uint64_t;
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run `delay` microseconds from now (delay < 0 is
  /// clamped to 0). Returns an id usable with Cancel().
  EventId Schedule(Duration delay, Callback fn) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedule `fn` at absolute time `when` (clamped to now).
  EventId ScheduleAt(TimePoint when, Callback fn);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is
  /// a harmless no-op (protocol timers race with the events that clear
  /// them; this mirrors how timer APIs behave in real stacks).
  void Cancel(EventId id);

  /// Run until the queue is empty or simulated time would exceed `until`.
  /// Returns the number of events executed.
  std::uint64_t Run(TimePoint until = kTimeInfinite);

  /// Execute exactly one runnable event. Returns false if the queue is
  /// empty or the next event is later than `until`.
  bool RunOne(TimePoint until = kTimeInfinite);

  bool empty() const { return pending_.empty(); }
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    TimePoint when = 0;
    EventId id = 0;  // monotonic; provides FIFO tie-breaking at equal times
    Callback fn;
  };
  struct HeapEntry {
    TimePoint when;
    EventId id;
  };
  struct HeapCompare {
    // std::priority_queue is a max-heap; invert for earliest-first and
    // lowest-id-first among equal timestamps.
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  TimePoint now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> queue_;
  // Cancellation removes from this map; stale heap entries are skipped on
  // pop. The heap never holds more stale entries than were cancelled.
  std::unordered_map<EventId, Event> pending_;
};

}  // namespace mpq::sim
