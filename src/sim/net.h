// Simulated network: addresses, datagrams, links and sockets.
//
// The model mirrors what the paper configures in Mininet per path
// (Table 1): link capacity, propagation delay (RTT/2 per direction), a
// drop-tail queue sized by the maximum queuing delay (the "bufferbloat"
// factor), and Bernoulli random loss on the wire. Datagrams are real byte
// buffers; transmission time is computed from their true size plus a
// configurable per-packet header overhead (IP+UDP or IP+TCP).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace mpq::sim {

/// (node, interface) pair. One interface has exactly one outgoing link in
/// the topologies used here (disjoint paths), so an Address fully
/// determines the route.
struct Address {
  std::uint16_t node = 0;
  std::uint16_t iface = 0;

  friend bool operator==(const Address&, const Address&) = default;
};

struct AddressHash {
  std::size_t operator()(const Address& a) const {
    return (std::size_t{a.node} << 16) | a.iface;
  }
};

struct Datagram {
  Address src;
  Address dst;
  std::vector<std::uint8_t> payload;
};

/// Gilbert–Elliott burst-loss channel: a two-state Markov chain evaluated
/// once per packet at the loss decision point. The channel sits in a Good
/// or Bad state with independent loss probabilities; the state transition
/// probabilities set the expected burst length (1/bad_to_good packets).
/// Disabled channels draw nothing from the link's RNG, so enabling the
/// mode on one link cannot perturb any other link's loss sequence.
struct GilbertElliottConfig {
  bool enabled = false;
  /// Per-packet P(Good -> Bad) and P(Bad -> Good).
  double good_to_bad = 0.0;
  double bad_to_good = 1.0;
  /// Loss probability while in each state.
  double loss_good = 0.0;
  double loss_bad = 1.0;
};

struct LinkConfig {
  double capacity_mbps = 10.0;
  Duration propagation_delay = 10 * kMillisecond;
  /// Drop-tail queue capacity in bytes (includes the packet being
  /// transmitted). Derived from Table 1's queuing-delay factor as
  /// capacity * max_queuing_delay; clamped to at least 2 full-size packets
  /// so a link can always make progress.
  ByteCount queue_capacity_bytes{64 * 1024};
  /// Probability that a packet that made it through the queue is lost on
  /// the wire (wireless-style random loss, Table 1's loss factor).
  double random_loss_rate = 0.0;
  /// Burst loss (chaos harness). When enabled it replaces the Bernoulli
  /// `random_loss_rate` as the wire-loss model.
  GilbertElliottConfig gilbert_elliott;
  /// Per-packet extra propagation delay, uniform in [0, jitter]. Values
  /// larger than a packet's serialization gap reorder packets in flight —
  /// not part of Table 1, but useful for stressing loss detection
  /// (QUIC's packet threshold, TCP's dupack threshold).
  Duration jitter = 0;
  /// Lower-layer header bytes charged per datagram on the wire
  /// (IP+UDP = 28 for QUIC, IP = 20 for the TCP model whose own header is
  /// already part of the datagram).
  ByteCount per_packet_overhead{28};
};

/// One scheduled change to a link — the unit of the fault-injection
/// subsystem (docs/ROBUSTNESS.md). Applied by Link::ApplyFault, either
/// immediately or at `time` via Link::ScheduleFaults /
/// SchedulePathFaults (sim/topology.h).
struct LinkFault {
  enum class Kind {
    kDown,         ///< hard outage: every offered packet is dropped
    kUp,           ///< end of an outage
    kLossRate,     ///< set Bernoulli wire loss (disables burst mode)
    kReconfigure,  ///< change capacity / delay / queue mid-run
    kBurstLoss,    ///< install (or disable) a Gilbert–Elliott channel
  };

  TimePoint time = 0;
  Kind kind = Kind::kDown;
  /// kLossRate: the new Bernoulli loss probability.
  double loss_rate = 0.0;
  /// kReconfigure: fields left at 0 keep their current value.
  double capacity_mbps = 0.0;
  Duration propagation_delay = 0;
  ByteCount queue_capacity_bytes{0};
  /// kBurstLoss: the channel to install; `enabled = false` switches burst
  /// loss off again.
  GilbertElliottConfig gilbert_elliott;
};

/// Unidirectional point-to-point link with a drop-tail queue.
class Link {
 public:
  using DeliveryHandler = std::function<void(Datagram&&)>;

  Link(Simulator& sim, LinkConfig config, Rng rng);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void SetDeliveryHandler(DeliveryHandler handler) {
    deliver_ = std::move(handler);
  }

  /// Offer a datagram to the link. It is queued if there is room and
  /// silently dropped otherwise (counted in stats).
  void Transmit(Datagram dgram);

  /// Change the random loss rate mid-simulation — used by the handover
  /// scenario where the initial path "becomes completely lossy" at t=3 s.
  void SetRandomLossRate(double rate) { config_.random_loss_rate = rate; }

  /// Hard outage toggle: a down link drops every packet it is offered
  /// (and everything still serializing) without consuming RNG draws.
  void SetDown(bool down) { down_ = down; }
  bool down() const { return down_; }

  /// Install or disable the Gilbert–Elliott burst-loss channel. The chain
  /// (re)starts in the Good state.
  void SetGilbertElliott(const GilbertElliottConfig& ge) {
    config_.gilbert_elliott = ge;
    ge_bad_ = false;
  }

  /// Independence tag stamped onto this link's delivery events (see
  /// Simulator::PendingEventInfo::scope). The Network sets it to
  /// 1 + destination node, so deliveries toward different hosts form
  /// different classes for the explorer's partial-order reduction.
  void SetDeliveryScope(std::uint32_t scope) { delivery_scope_ = scope; }

  /// Apply one fault right now (see LinkFault; `time` is ignored here).
  void ApplyFault(const LinkFault& fault);

  /// Schedule every fault at its absolute `time` (one simulator event
  /// each). Times in the past are clamped to "now" by the simulator.
  void ScheduleFaults(const std::vector<LinkFault>& faults);

  const LinkConfig& config() const { return config_; }

  struct Stats {
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_queue_full = 0;
    std::uint64_t dropped_random = 0;
    /// Packets dropped because the link was down (LinkFault::kDown).
    std::uint64_t dropped_link_down = 0;
    ByteCount wire_bytes_delivered;
    /// Highest queue occupancy seen, in bytes (bufferbloat diagnostics).
    ByteCount max_queue_bytes;
  };
  const Stats& stats() const { return stats_; }

  /// Serialization delay of `wire_bytes` at the configured capacity.
  Duration TransmissionTime(ByteCount wire_bytes) const;

 private:
  /// One wire-loss decision for a packet that finished serializing.
  /// Draws from the RNG only when a loss model is active, so fault-free
  /// links keep a byte-identical draw sequence.
  bool WireLoss();

  Simulator& sim_;
  LinkConfig config_;
  Rng rng_;
  DeliveryHandler deliver_;
  TimePoint busy_until_ = 0;
  ByteCount queued_bytes_;
  std::uint32_t delivery_scope_ = 0;
  bool down_ = false;
  bool ge_bad_ = false;  // Gilbert–Elliott channel state
  Stats stats_;
};

class Node;

/// An endpoint handle bound to one local Address. Protocol stacks use this
/// exactly like a UDP socket: Send() and a receive callback.
class DatagramSocket {
 public:
  using ReceiveHandler = std::function<void(const Datagram&)>;

  Address local_address() const { return local_; }
  void SetReceiveHandler(ReceiveHandler handler) {
    receive_ = std::move(handler);
  }
  /// Send `payload` from this socket's interface to `dst`.
  void Send(Address dst, std::vector<std::uint8_t> payload);

 private:
  friend class Network;
  DatagramSocket(class Network& net, Address local)
      : net_(net), local_(local) {}

  Network& net_;
  Address local_;
  ReceiveHandler receive_;
};

/// Owns links and sockets; routes datagrams. Routing is by source
/// interface: each (node, iface) has at most one outgoing link.
class Network {
 public:
  Network(Simulator& sim, Rng rng) : sim_(sim), rng_(rng) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Create a unidirectional link from `from` to `to`. Returns a stable
  /// pointer owned by the network.
  Link* AddLink(Address from, Address to, const LinkConfig& config);

  /// Create a unidirectional *shared* (multipoint) link out of `from`:
  /// datagrams to any destination traverse it and are routed to the
  /// destination socket on delivery. This models a server's access link
  /// fanning out to many clients — the shared bottleneck the
  /// many-connection workload contends on (point-to-point links keep
  /// their strict one-peer check). Returns a stable pointer owned by
  /// the network.
  Link* AddSharedLink(Address from, const LinkConfig& config);

  /// Convenience: a link in each direction with per-direction configs.
  std::pair<Link*, Link*> AddDuplexLink(Address a, Address b,
                                        const LinkConfig& a_to_b,
                                        const LinkConfig& b_to_a);

  /// Bind a socket at `local`. At most one socket per address; rebinding
  /// an in-use address is a setup error and throws.
  DatagramSocket* CreateSocket(Address local);

  /// Remove the socket bound at `local` (endpoint teardown).
  void CloseSocket(Address local) { sockets_.erase(local); }

  Link* FindLinkFrom(Address from);

  Simulator& simulator() { return sim_; }

 private:
  friend class DatagramSocket;
  void Send(Datagram dgram);
  void Deliver(Datagram&& dgram);

  Simulator& sim_;
  Rng rng_;
  struct LinkEnds {
    std::unique_ptr<Link> link;
    Address to;
    /// Shared (multipoint) link: any destination is routable; `to` is
    /// meaningless.
    bool any_dst = false;
  };
  std::unordered_map<Address, LinkEnds, AddressHash> links_by_src_;
  std::unordered_map<Address, std::unique_ptr<DatagramSocket>, AddressHash>
      sockets_;
};

}  // namespace mpq::sim
