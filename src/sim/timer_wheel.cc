#include "sim/timer_wheel.h"

#include <bit>

namespace mpq::sim {

namespace {

constexpr std::uint64_t Uns(TimePoint t) { return static_cast<std::uint64_t>(t); }

}  // namespace

TimerEntry::~TimerEntry() {
  if (wheel_ != nullptr) wheel_->Cancel(*this);
}

TimerWheel::~TimerWheel() {
  // Timers normally outlive the wheel's Simulator only in teardown
  // paths; leave any still-armed entries consistent (disarmed) so their
  // destructors do not touch a dead wheel.
  for (int level = 0; level < kLevels; ++level) {
    for (int slot = 0; slot < kSlots; ++slot) {
      for (TimerEntry* e = slots_[level][slot]; e != nullptr;) {
        TimerEntry* next = e->next_;
        e->wheel_ = nullptr;
        e->next_ = nullptr;
        e->pprev_ = nullptr;
        e = next;
      }
    }
  }
  for (TimerEntry* e = overflow_; e != nullptr;) {
    TimerEntry* next = e->next_;
    e->wheel_ = nullptr;
    e->next_ = nullptr;
    e->pprev_ = nullptr;
    e = next;
  }
}

void TimerWheel::Arm(TimerEntry& entry, TimePoint when, std::uint64_t id) {
  if (entry.wheel_ != nullptr) entry.wheel_->Cancel(entry);
  entry.wheel_ = this;
  entry.when_ = when < horizon_ ? horizon_ : when;
  entry.id_ = id;
  Place(entry);
  ++size_;
}

void TimerWheel::Cancel(TimerEntry& entry) {
  if (entry.wheel_ != this) return;
  Unlink(entry);
}

void TimerWheel::Place(TimerEntry& entry) {
  const std::uint64_t when = Uns(entry.when_);
  const std::uint64_t cur = Uns(horizon_);
  for (int level = 0; level < kLevels; ++level) {
    const int shift = kSlotBits * (level + 1);
    if ((when >> shift) == (cur >> shift)) {
      const int slot =
          static_cast<int>((when >> (kSlotBits * level)) & (kSlots - 1));
      TimerEntry*& head = slots_[level][slot];
      entry.next_ = head;
      entry.pprev_ = &head;
      if (head != nullptr) head->pprev_ = &entry.next_;
      head = &entry;
      entry.level_ = level;
      entry.slot_ = slot;
      bitmap_[level][slot / 64] |= std::uint64_t{1} << (slot % 64);
      return;
    }
  }
  // Beyond the 2^32 us horizon: unsorted overflow list, re-filed when
  // the horizon rolls into its epoch.
  entry.next_ = overflow_;
  entry.pprev_ = &overflow_;
  if (overflow_ != nullptr) overflow_->pprev_ = &entry.next_;
  overflow_ = &entry;
  entry.level_ = kLevels;
  entry.slot_ = 0;
}

void TimerWheel::Unlink(TimerEntry& entry) {
  *entry.pprev_ = entry.next_;
  if (entry.next_ != nullptr) entry.next_->pprev_ = entry.pprev_;
  if (entry.level_ < kLevels &&
      slots_[entry.level_][entry.slot_] == nullptr) {
    bitmap_[entry.level_][entry.slot_ / 64] &=
        ~(std::uint64_t{1} << (entry.slot_ % 64));
  }
  entry.next_ = nullptr;
  entry.pprev_ = nullptr;
  entry.level_ = -1;
  entry.wheel_ = nullptr;
  --size_;
}

bool TimerWheel::LevelEmpty(int level) const {
  for (int word = 0; word < kBitmapWords; ++word) {
    if (bitmap_[level][word] != 0) return false;
  }
  return true;
}

TimerEntry* TimerWheel::PeekEarliest() {
  // Lowest nonempty level, first nonempty slot: by the placement
  // invariant that slot holds the level's minimum, and every level-L
  // deadline precedes every deadline at coarser levels / the overflow.
  for (int level = 0; level < kLevels; ++level) {
    for (int word = 0; word < kBitmapWords; ++word) {
      const std::uint64_t bits = bitmap_[level][word];
      if (bits == 0) continue;
      const int slot = word * 64 + std::countr_zero(bits);
      TimerEntry* best = nullptr;
      for (TimerEntry* e = slots_[level][slot]; e != nullptr; e = e->next_) {
        if (best == nullptr || EarlierThan(*e, *best)) best = e;
      }
      return best;
    }
  }
  TimerEntry* best = nullptr;
  for (TimerEntry* e = overflow_; e != nullptr; e = e->next_) {
    if (best == nullptr || EarlierThan(*e, *best)) best = e;
  }
  return best;
}

void TimerWheel::AdvanceTo(TimePoint to) {
  if (to <= horizon_) return;
  const bool epoch_crossed =
      (Uns(horizon_) >> (kSlotBits * kLevels)) != (Uns(to) >> (kSlotBits * kLevels));
  horizon_ = to;
  // No armed deadline lies in (old horizon, to) — the caller advances to
  // the global minimum only — so the slots skipped over are empty and
  // only the slots whose digits newly match the horizon need re-filing,
  // coarsest first so cascaded entries settle through finer levels.
  if (epoch_crossed) FlushOverflow();
  for (int level = kLevels - 1; level >= 1; --level) {
    const int slot =
        static_cast<int>((Uns(horizon_) >> (kSlotBits * level)) & (kSlots - 1));
    FlushSlot(level, slot);
  }
}

void TimerWheel::FlushSlot(int level, int slot) {
  TimerEntry* chain = slots_[level][slot];
  if (chain == nullptr) return;
  slots_[level][slot] = nullptr;
  bitmap_[level][slot / 64] &= ~(std::uint64_t{1} << (slot % 64));
  FlushChain(chain);
}

void TimerWheel::FlushOverflow() {
  TimerEntry* chain = overflow_;
  overflow_ = nullptr;
  FlushChain(chain);
}

void TimerWheel::FlushChain(TimerEntry* chain) {
  while (chain != nullptr) {
    TimerEntry* next = chain->next_;
    chain->next_ = nullptr;
    chain->pprev_ = nullptr;
    Place(*chain);  // size_ unchanged: the entry stays armed
    chain = next;
  }
}

void TimerWheel::PopEarliest(TimerEntry& entry) {
  AdvanceTo(entry.when_);
  Unlink(entry);
}

TimerEntry* TimerWheel::FindById(std::uint64_t id) {
  for (int level = 0; level < kLevels; ++level) {
    for (int word = 0; word < kBitmapWords; ++word) {
      std::uint64_t bits = bitmap_[level][word];
      while (bits != 0) {
        const int slot = word * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        for (TimerEntry* e = slots_[level][slot]; e != nullptr; e = e->next_) {
          if (e->id_ == id) return e;
        }
      }
    }
  }
  for (TimerEntry* e = overflow_; e != nullptr; e = e->next_) {
    if (e->id_ == id) return e;
  }
  return nullptr;
}

void TimerWheel::ForEach(
    const std::function<void(const TimerEntry&)>& fn) const {
  for (int level = 0; level < kLevels; ++level) {
    for (int word = 0; word < kBitmapWords; ++word) {
      std::uint64_t bits = bitmap_[level][word];
      while (bits != 0) {
        const int slot = word * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        for (TimerEntry* e = slots_[level][slot]; e != nullptr; e = e->next_) {
          fn(*e);
        }
      }
    }
  }
  for (TimerEntry* e = overflow_; e != nullptr; e = e->next_) fn(*e);
}

}  // namespace mpq::sim
