// One-shot rearmable timer — the idiom every protocol module uses for
// retransmission timeouts, delayed ACKs, idle timers, etc.
#pragma once

#include <functional>
#include <utility>

#include "common/types.h"
#include "sim/simulator.h"

namespace mpq::sim {

/// Wraps a Simulator event with set/reset/cancel semantics. The timer does
/// not own its callback's context; the owner must outlive any armed timer
/// (owners cancel in their destructors via RAII here).
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> callback)
      : sim_(sim), callback_(std::move(callback)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { Cancel(); }

  /// Arm (or re-arm) the timer to fire at absolute time `when`.
  void SetAt(TimePoint when) {
    Cancel();
    deadline_ = when;
    // Tagged kTimer so the model-checking explorer can tell protocol
    // timers from network deliveries (timers reorder but never drop).
    event_ = sim_.ScheduleAt(
        when,
        [this] {
          event_ = 0;
          deadline_ = kTimeInfinite;
          callback_();
        },
        EventKind::kTimer);
  }

  /// Arm (or re-arm) the timer to fire `delay` from now.
  void SetIn(Duration delay) { SetAt(sim_.now() + (delay < 0 ? 0 : delay)); }

  void Cancel() {
    if (event_ != 0) {
      sim_.Cancel(event_);
      event_ = 0;
      deadline_ = kTimeInfinite;
    }
  }

  bool armed() const { return event_ != 0; }
  TimePoint deadline() const { return deadline_; }

 private:
  Simulator& sim_;
  std::function<void()> callback_;
  Simulator::EventId event_ = 0;
  TimePoint deadline_ = kTimeInfinite;
};

}  // namespace mpq::sim
