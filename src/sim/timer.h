// One-shot rearmable timer — the idiom every protocol module uses for
// retransmission timeouts, delayed ACKs, idle timers, etc.
#pragma once

#include <functional>
#include <utility>

#include "common/types.h"
#include "sim/simulator.h"

namespace mpq::sim {

/// Set/reset/cancel semantics over the Simulator's shared timer wheel.
/// The callback is stored once at construction and the timer re-arms by
/// relinking its embedded wheel entry — no allocation per (re-)arm,
/// which matters when thousands of connections each re-arm RTO/ACK/
/// pacing timers on every packet. The timer does not own its callback's
/// context; the owner must outlive any armed timer (owners cancel in
/// their destructors via RAII here).
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> callback)
      : sim_(sim), callback_(std::move(callback)) {
    entry_.callback = &callback_;
  }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { Cancel(); }

  /// Arm (or re-arm) the timer to fire at absolute time `when`. The
  /// wheel entry is tagged EventKind::kTimer so the model-checking
  /// explorer can tell protocol timers from network deliveries (timers
  /// reorder but never drop); the Simulator disarms the entry before
  /// invoking the callback, so the callback may re-arm freely.
  void SetAt(TimePoint when) {
    deadline_ = when;
    sim_.ArmTimer(entry_, when);
  }

  /// Arm (or re-arm) the timer to fire `delay` from now.
  void SetIn(Duration delay) { SetAt(sim_.now() + (delay < 0 ? 0 : delay)); }

  void Cancel() {
    sim_.CancelTimer(entry_);
    deadline_ = kTimeInfinite;
  }

  bool armed() const { return entry_.armed(); }
  TimePoint deadline() const {
    return entry_.armed() ? deadline_ : kTimeInfinite;
  }

 private:
  Simulator& sim_;
  std::function<void()> callback_;
  TimerEntry entry_;
  TimePoint deadline_ = kTimeInfinite;
};

}  // namespace mpq::sim
