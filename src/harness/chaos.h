// Chaos harness (docs/ROBUSTNESS.md): run the §4.1 transfer workload
// over the Fig. 2 two-path topology under seeded fault schedules — link
// outages shorter and longer than the RTO, flapping paths, windows with
// both paths down, Gilbert–Elliott loss bursts during the handshake and
// in steady state, mid-run capacity/RTT reconfiguration — and check the
// liveness invariants a robust multipath transport must keep:
//
//   1. TERMINATION  every scenario's faults heal, so the transfer must
//      complete within the time limit; a connection that closed itself
//      or hung instead is a bug (the idle-timeout-during-outage class).
//   2. NO STALL     once the connection has had at least one usable path
//      continuously for `recovery_grace`, progress gaps longer than
//      `stall_limit` are a bug (the unbounded-RTO-backoff class).
//
// Every violation a sweep ever found is pinned by a named regression
// test in tests/chaos_test.cc. Deterministic per seed: a failure report
// from `mpq_chaos --sweep N` is replayed exactly by `mpq_chaos --seed S`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "quic/scheduler.h"
#include "sim/topology.h"

namespace mpq::harness {

struct ChaosOptions {
  std::uint64_t seed = 1;     // scenario + RNG seed (one run)
  int runs = 200;             // sweep width: seeds seed .. seed+runs-1
  /// Sized so the transfer (~4 s nominal at 2 x 2 Mbps) spans the fault
  /// window — every scenario's faults land mid-transfer.
  ByteCount transfer_size{2 * 1024 * 1024};
  TimePoint time_limit = 90 * kSecond;
  /// Idle timeout armed on both endpoints — part of the fault surface
  /// (an outage must not trip it while recovery is live).
  Duration idle_timeout = 30 * kSecond;
  /// Invariant 2 knobs (header comment).
  Duration stall_limit = 5 * kSecond;
  Duration recovery_grace = 3 * kSecond;
  quic::SchedulerType scheduler = quic::SchedulerType::kLowestRtt;
  /// When non-empty, write the server-side NDJSON qlog trace (including
  /// the sim:link_down / sim:link_up / sim:fault events) to this file.
  std::string qlog_path;
};

struct ChaosScenario {
  std::string name;           // family + parameters, human-readable
  sim::FaultSchedule faults;  // all healed by ~10 s
};

struct ChaosRunResult {
  std::uint64_t seed = 0;
  std::string scenario;
  bool established = false;
  bool completed = false;
  bool closed = false;        // connection closed before completing
  ByteCount bytes_received{};
  TimePoint finish_time = 0;  // completion time (or time of giving up)
  /// Human-readable invariant violations; empty = the run is clean.
  std::vector<std::string> violations;
};

struct ChaosSweepResult {
  std::vector<ChaosRunResult> runs;
  int violation_runs = 0;     // runs with at least one violation
};

/// Derive the seed's fault scenario (pure function of the seed).
ChaosScenario GenerateChaosScenario(std::uint64_t seed);

/// Run one scenario and evaluate the invariants.
ChaosRunResult RunChaosScenario(const ChaosOptions& options,
                                const ChaosScenario& scenario);

/// Convenience: generate + run the options.seed scenario.
ChaosRunResult RunChaosOne(const ChaosOptions& options);

/// The sweep: options.runs seeds starting at options.seed.
ChaosSweepResult RunChaos(const ChaosOptions& options);

}  // namespace mpq::harness
