#include "harness/explore.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "common/source.h"
#include "obs/mux.h"
#include "obs/qlog.h"
#include "quic/audit.h"
#include "quic/endpoint.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace mpq::harness {

const char* ToString(ChoiceAction action) {
  switch (action) {
    case ChoiceAction::kFire:
      return "fire";
    case ChoiceAction::kDrop:
      return "drop";
    case ChoiceAction::kDup:
      return "dup";
  }
  return "?";
}

const char* ToString(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kInvariant:
      return "invariant";
    case ViolationKind::kLiveness:
      return "liveness";
    case ViolationKind::kDeterminism:
      return "determinism";
  }
  return "?";
}

bool Model::Independent(const Choice& a, const Choice& b) const {
  return a.action == ChoiceAction::kFire && b.action == ChoiceAction::kFire &&
         a.scope != 0 && b.scope != 0 && a.scope != b.scope;
}

// ---------------------------------------------------------------------------
// Replay

ReplayOutcome Replay(Model& model, const std::vector<TraceStep>& trace) {
  ReplayOutcome out;
  model.Reset();
  out.digests.push_back(model.Digest());
  std::string why;
  if (!model.CheckInvariants(&why)) {
    out.invariants_ok = false;
    out.message = why;
    return out;
  }
  for (const TraceStep& step : trace) {
    const std::vector<Choice> enabled = model.Enabled();
    if (step.index >= enabled.size()) {
      out.valid = false;
      out.message = "choice index " + std::to_string(step.index) +
                    " out of range at step " +
                    std::to_string(out.steps_executed) + " (" +
                    std::to_string(enabled.size()) + " enabled)";
      break;
    }
    const Choice& choice = enabled[step.index];
    model.Execute(choice);
    ++out.steps_executed;
    out.executed.push_back({choice.index, choice.action, choice.label});
    out.digests.push_back(model.Digest());
    why.clear();
    if (!model.CheckInvariants(&why)) {
      out.invariants_ok = false;
      out.message = why;
      break;
    }
  }
  out.goal_reached = model.GoalReached();
  out.deadlocked = out.valid && out.invariants_ok && !out.goal_reached &&
                   model.Enabled().empty();
  return out;
}

// ---------------------------------------------------------------------------
// Exploration

namespace {

/// A choice remembered across sibling branches. Sleep sets match on
/// (label, action): labels identify the *transition*, which is stable
/// across re-executions of the same prefix.
struct SleepEntry {
  std::string label;
  ChoiceAction action = ChoiceAction::kFire;
  std::uint32_t scope = 0;
};

Choice AsChoice(const SleepEntry& entry) {
  Choice c;
  c.action = entry.action;
  c.label = entry.label;
  c.scope = entry.scope;
  return c;
}

bool InSleep(const std::vector<SleepEntry>& sleep, const Choice& choice) {
  for (const SleepEntry& entry : sleep) {
    if (entry.action == choice.action && entry.label == choice.label) {
      return true;
    }
  }
  return false;
}

/// Greedy counterexample minimisation: repeatedly try deleting a step or
/// flattening a step back to the default schedule (index 0), keeping any
/// candidate that still reproduces the same violation kind.
std::vector<TraceStep> ShrinkTrace(Model& model, std::vector<TraceStep> trace,
                                   ViolationKind kind, int budget,
                                   ExploreStats& stats) {
  auto reproduces = [&](const std::vector<TraceStep>& candidate) {
    const ReplayOutcome outcome = Replay(model, candidate);
    stats.transitions += outcome.steps_executed;
    --budget;
    if (kind == ViolationKind::kInvariant) return !outcome.invariants_ok;
    return outcome.deadlocked;  // liveness
  };
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    for (std::size_t i = trace.size(); i-- > 0 && budget > 0;) {
      std::vector<TraceStep> candidate = trace;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (reproduces(candidate)) {
        trace = std::move(candidate);
        improved = true;
      }
    }
    for (std::size_t i = 0; i < trace.size() && budget > 0; ++i) {
      if (trace[i].index == 0) continue;
      std::vector<TraceStep> candidate = trace;
      candidate[i].index = 0;
      if (reproduces(candidate)) {
        trace = std::move(candidate);
        improved = true;
      }
    }
  }
  return trace;
}

/// Shrink, then replay once more to canonicalise the trace (labels and
/// actions re-read from the actual enabled sets) and record the digest
/// sequence the replayer must reproduce.
void FinishViolation(Model& model, const ExploreOptions& options,
                     ExploreStats& stats, Violation violation,
                     ExploreResult& result) {
  if (violation.kind != ViolationKind::kDeterminism &&
      options.shrink_budget > 0) {
    violation.trace = ShrinkTrace(model, std::move(violation.trace),
                                  violation.kind, options.shrink_budget, stats);
  }
  if (violation.kind != ViolationKind::kDeterminism) {
    ReplayOutcome outcome = Replay(model, violation.trace);
    stats.transitions += outcome.steps_executed;
    violation.trace = std::move(outcome.executed);
    violation.digests = std::move(outcome.digests);
    if (!outcome.message.empty()) violation.message = outcome.message;
  }
  result.violations.push_back(std::move(violation));
}

/// Execute one trace greedily (always the first enabled choice), then
/// replay the identical choice sequence and demand an identical digest
/// sequence. Divergence means the model leaks state across Reset() or
/// depends on iteration order / uninitialized memory — which would also
/// silently corrupt the DFS bookkeeping, so it is checked first.
std::optional<Violation> DeterminismProbe(Model& model,
                                          const ExploreOptions& options,
                                          ExploreStats& stats) {
  model.Reset();
  std::vector<TraceStep> steps;
  std::vector<std::uint64_t> first;
  first.push_back(model.Digest());
  while (static_cast<int>(steps.size()) < options.max_steps &&
         !model.GoalReached()) {
    const std::vector<Choice> enabled = model.Enabled();
    if (enabled.empty()) break;
    const Choice& choice = enabled.front();
    model.Execute(choice);
    ++stats.transitions;
    steps.push_back({choice.index, choice.action, choice.label});
    first.push_back(model.Digest());
  }
  const ReplayOutcome outcome = Replay(model, steps);
  stats.transitions += outcome.steps_executed;

  const std::size_t n = std::min(first.size(), outcome.digests.size());
  std::size_t diverge = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (first[i] != outcome.digests[i]) {
      diverge = i;
      break;
    }
  }
  if (diverge == n && first.size() == outcome.digests.size()) {
    return std::nullopt;
  }
  Violation violation;
  violation.kind = ViolationKind::kDeterminism;
  violation.message =
      "replaying an identical choice trace produced a different digest "
      "sequence (first divergence at step " +
      std::to_string(diverge) + " of " + std::to_string(first.size()) + ")";
  violation.trace = std::move(steps);
  violation.digests = std::move(first);
  return violation;
}

}  // namespace

ExploreResult Explore(Model& model, const ExploreOptions& options) {
  ExploreResult result;
  ExploreStats& stats = result.stats;

  if (options.check_determinism) {
    if (auto violation = DeterminismProbe(model, options, stats)) {
      result.violations.push_back(std::move(*violation));
      return result;
    }
  }

  // One DFS frame per executed step: the full enabled set at that state,
  // which sibling is currently taken, and the state's sleep set.
  struct Frame {
    std::vector<Choice> choices;
    std::size_t next = 0;
    std::vector<SleepEntry> sleep;
  };
  std::vector<Frame> stack;
  // digest -> shallowest depth it was reached at. Revisiting at the same
  // or greater depth cannot reach anything new within the step bound.
  std::unordered_map<std::uint64_t, int> seen_depth;
  // Sleep set of the state the DFS just arrived at (empty at the root).
  std::vector<SleepEntry> arrival_sleep;

  auto next_explorable = [&](const Frame& frame, std::size_t from) {
    std::size_t k = from;
    while (k < frame.choices.size() && options.por &&
           InSleep(frame.sleep, frame.choices[k])) {
      ++stats.pruned_sleep;
      ++k;
    }
    return k;
  };

  // Sleep set for the state reached by taking frame.choices[frame.next]:
  // everything slept-or-explored before it that is independent of it.
  auto child_sleep = [&](const Frame& frame) {
    std::vector<SleepEntry> child;
    if (!options.por) return child;
    const Choice& chosen = frame.choices[frame.next];
    for (const SleepEntry& entry : frame.sleep) {
      if (model.Independent(AsChoice(entry), chosen)) child.push_back(entry);
    }
    for (std::size_t k = 0; k < frame.next; ++k) {
      const Choice& prev = frame.choices[k];
      if (InSleep(frame.sleep, prev)) continue;  // skipped, not explored
      if (model.Independent(prev, chosen)) {
        child.push_back({prev.label, prev.action, prev.scope});
      }
    }
    return child;
  };

  auto current_trace = [&]() {
    std::vector<TraceStep> trace;
    trace.reserve(stack.size());
    for (const Frame& frame : stack) {
      const Choice& c = frame.choices[frame.next];
      trace.push_back({c.index, c.action, c.label});
    }
    return trace;
  };

  model.Reset();
  bool running = true;
  while (running) {
    const int depth = static_cast<int>(stack.size());

    std::string why;
    if (!model.CheckInvariants(&why)) {
      Violation violation;
      violation.kind = ViolationKind::kInvariant;
      violation.message = why;
      violation.trace = current_trace();
      FinishViolation(model, options, stats, std::move(violation), result);
      return result;
    }

    bool terminal = false;
    const std::uint64_t digest = model.Digest();
    const auto [it, inserted] = seen_depth.try_emplace(digest, depth);
    if (inserted) {
      ++stats.distinct_states;
    } else if (it->second <= depth) {
      if (options.prune_digests) {
        ++stats.pruned_digest;
        terminal = true;
      }
    } else {
      it->second = depth;
    }

    if (model.GoalReached()) {
      ++stats.maximal_traces;
      terminal = true;
    } else if (!terminal && depth >= options.max_steps) {
      ++stats.truncated_traces;
      terminal = true;
    }

    if (!terminal) {
      std::vector<Choice> enabled = model.Enabled();
      if (enabled.empty()) {
        Violation violation;
        violation.kind = ViolationKind::kLiveness;
        violation.message = "event queue drained at depth " +
                            std::to_string(depth) +
                            " without reaching the goal";
        violation.trace = current_trace();
        FinishViolation(model, options, stats, std::move(violation), result);
        return result;
      }
      Frame frame;
      frame.choices = std::move(enabled);
      frame.sleep = std::move(arrival_sleep);
      frame.next = next_explorable(frame, 0);
      if (frame.next < frame.choices.size()) {
        arrival_sleep = child_sleep(frame);
        model.Execute(frame.choices[frame.next]);
        ++stats.transitions;
        stack.push_back(std::move(frame));
        continue;
      }
      // Every enabled choice is asleep: all continuations are covered by
      // sibling branches. Not a maximal trace — just done here.
      terminal = true;
    }

    if (stats.maximal_traces + stats.truncated_traces >= options.max_traces) {
      stats.exhausted = false;
      break;
    }

    // Backtrack: advance the deepest frame with an unexplored sibling and
    // re-execute the prefix from a fresh initial state (the search is
    // stateless — nothing is checkpointed).
    bool advanced = false;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::size_t sibling = next_explorable(frame, frame.next + 1);
      if (sibling < frame.choices.size()) {
        frame.next = sibling;
        model.Reset();
        for (std::size_t i = 0; i + 1 < stack.size(); ++i) {
          model.Execute(stack[i].choices[stack[i].next]);
          ++stats.transitions;
        }
        arrival_sleep = child_sleep(frame);
        model.Execute(frame.choices[frame.next]);
        ++stats.transitions;
        advanced = true;
        break;
      }
      stack.pop_back();
    }
    running = advanced;
  }
  return result;
}

// ---------------------------------------------------------------------------
// QUIC scenarios

namespace {

constexpr StreamId kDataStream{3};

// FNV-1a for the model-level digest (connection digests + queue shape).
class Fnv {
 public:
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (i * 8)) & 0xffU;
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

enum class ScenarioKind { kHandshake, kTransfer, kHandover };

/// Everything a scenario run owns. Reset() destroys and rebuilds the
/// whole world — the only way to restart a C++ object graph of this
/// size deterministically.
struct QuicWorld {
  sim::Simulator sim;
  sim::Network net;
  sim::TwoPathTopology topo;
  // Declared before the endpoints: tracers must outlive the connections
  // holding pointers to them (same discipline as harness/runner.cc).
  std::ofstream qlog_out;
  std::unique_ptr<obs::QlogTracer> qlog;
  obs::TracerMux mux;
  std::unique_ptr<quic::ServerEndpoint> server;
  std::unique_ptr<quic::ClientEndpoint> client;
  ByteCount received{};
  std::uint64_t errors = 0;
  bool finished = false;

  QuicWorld(const ScenarioOptions& options, ScenarioKind kind)
      : net(sim, Rng(options.seed ^ 0x517E0FF)) {
    obs::TracerMux* tracer = nullptr;
    if (!options.qlog_path.empty()) {
      qlog_out.open(options.qlog_path, std::ios::trunc);
      if (qlog_out.is_open()) {
        qlog = std::make_unique<obs::QlogTracer>(
            qlog_out, "mpq-model-" + options.name);
        mux.Add(qlog.get());
        tracer = &mux;
      }
    }
    // The Fig. 2 topology with mildly asymmetric RTTs — asymmetric
    // enough that path choice matters, small enough that the schedule
    // space stays explorable.
    std::array<sim::PathParams, 2> paths;
    paths[0].capacity_mbps = 10.0;
    paths[0].rtt = 20 * kMillisecond;
    paths[0].random_loss_rate = 0.0;
    paths[1] = paths[0];
    paths[1].rtt = 30 * kMillisecond;
    topo = sim::BuildTwoPathTopology(net, paths);

    quic::ConnectionConfig config;
    config.multipath = true;
    config.congestion = cc::Algorithm::kOlia;

    std::vector<sim::Address> server_locals(topo.server_addr.begin(),
                                            topo.server_addr.end());
    server = std::make_unique<quic::ServerEndpoint>(sim, net, server_locals,
                                                    config,
                                                    options.seed * 2 + 1);
    server->SetAcceptHandler([tracer](quic::Connection& conn) {
      if (tracer != nullptr) conn.SetTracer(tracer);
      auto request = std::make_shared<std::string>();
      conn.SetStreamDataHandler(
          [&conn, request](StreamId id, ByteCount,
                           std::span<const std::uint8_t> data, bool fin) {
            request->append(data.begin(), data.end());
            if (fin && id == kDataStream) {
              const ByteCount size{std::stoull(request->substr(4))};
              conn.SendOnStream(kDataStream, std::make_unique<PatternSource>(
                                                 kDataStream, size));
            }
          });
    });

    std::vector<sim::Address> client_locals(topo.client_addr.begin(),
                                            topo.client_addr.end());
    client = std::make_unique<quic::ClientEndpoint>(sim, net, client_locals,
                                                    config,
                                                    options.seed * 2 + 2);
    if (tracer != nullptr) client->connection().SetTracer(tracer);
    client->connection().SetStreamDataHandler(
        [this](StreamId, ByteCount offset, std::span<const std::uint8_t> data,
               bool fin) {
          for (std::size_t i = 0; i < data.size(); ++i) {
            if (data[i] != PatternByte(kDataStream.value(), offset + i)) {
              ++errors;
            }
          }
          received += data.size();
          if (fin) finished = true;
        });
    if (kind != ScenarioKind::kHandshake) {
      const ByteCount size = options.transfer_bytes;
      const TimePoint fault_after = options.fault_time;
      client->connection().SetEstablishedHandler(
          [this, kind, size, fault_after] {
            const std::string request = "GET " + std::to_string(size.value());
            client->connection().SendOnStream(
                kDataStream,
                std::make_unique<BufferSource>(std::vector<std::uint8_t>(
                    request.begin(), request.end())));
            if (kind == ScenarioKind::kHandover) {
              // Path 0 dies fault_time after establishment — relative,
              // not absolute: the handshake is single-path, so a fault
              // landing mid-handshake (which adversarial drops can
              // arrange against any fixed time) would make the liveness
              // goal unsatisfiable by construction. The explorer found
              // exactly that deadlock when this used an absolute time.
              sim::PathFault fault;
              fault.time = sim.now() + fault_after;
              fault.path = 0;
              fault.kind = sim::LinkFault::Kind::kDown;
              sim::SchedulePathFaults(sim, topo, {fault});
            }
          });
    }
    client->Connect(topo.server_addr[0]);
  }
};

class QuicScenarioModel final : public Model {
 public:
  explicit QuicScenarioModel(ScenarioOptions options)
      : options_(std::move(options)) {
    if (options_.name == "handshake") {
      kind_ = ScenarioKind::kHandshake;
    } else if (options_.name == "transfer") {
      kind_ = ScenarioKind::kTransfer;
    } else if (options_.name == "handover") {
      kind_ = ScenarioKind::kHandover;
    } else {
      throw std::invalid_argument("unknown scenario: " + options_.name);
    }
    Reset();
  }

  void Reset() override {
    world_ = std::make_unique<QuicWorld>(options_, kind_);
    drops_used_ = 0;
    dups_used_ = 0;
  }

  std::vector<Choice> Enabled() override {
    const auto pending = world_->sim.PendingEvents();
    std::vector<Choice> out;
    if (pending.empty()) return out;
    const TimePoint t0 = pending.front().when;
    int considered = 0;
    for (const auto& info : pending) {
      if (info.when > t0 + options_.commute_window) break;
      if (considered >= options_.branch) break;
      ++considered;
      const bool delivery = info.kind == sim::EventKind::kDelivery;
      std::string label = "e" + std::to_string(info.id);
      label += delivery ? 'd' : (info.kind == sim::EventKind::kTimer ? 't' : 'g');
      Choice fire;
      fire.action = ChoiceAction::kFire;
      fire.label = label;
      fire.scope = delivery ? info.scope : 0;
      fire.ref = info.id;
      out.push_back(std::move(fire));
      if (delivery && drops_used_ < options_.max_drops) {
        Choice drop;
        drop.action = ChoiceAction::kDrop;
        drop.label = label;
        drop.ref = info.id;
        out.push_back(std::move(drop));
      }
      if (delivery && dups_used_ < options_.max_dups) {
        Choice dup;
        dup.action = ChoiceAction::kDup;
        dup.label = label;
        dup.ref = info.id;
        out.push_back(std::move(dup));
      }
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].index = static_cast<std::uint32_t>(i);
    }
    return out;
  }

  void Execute(const Choice& choice) override {
    switch (choice.action) {
      case ChoiceAction::kFire:
        world_->sim.FireEvent(choice.ref);
        break;
      case ChoiceAction::kDrop:
        world_->sim.Cancel(choice.ref);
        ++drops_used_;
        break;
      case ChoiceAction::kDup:
        // Wire duplication: a copy stays pending, the original delivers.
        world_->sim.DuplicateEvent(choice.ref, 0);
        world_->sim.FireEvent(choice.ref);
        ++dups_used_;
        break;
    }
  }

  std::uint64_t Digest() override {
    Fnv h;
    h.U64(world_->client->connection().StateDigest());
    const auto conns = world_->server->Connections();
    h.U64(conns.size());
    for (const quic::Connection* conn : conns) h.U64(conn->StateDigest());
    h.U64(static_cast<std::uint64_t>(drops_used_));
    h.U64(static_cast<std::uint64_t>(dups_used_));
    h.U64(world_->received.value());
    h.U64(world_->errors);
    h.U64(world_->finished ? 1 : 0);
    // The pending queue's shape: kinds, scopes and *relative* delays.
    // Absolute times stay out (see quic/digest.cc) so that equivalent
    // protocol states reached at different clock values still merge.
    const auto pending = world_->sim.PendingEvents();
    h.U64(pending.size());
    const TimePoint t0 = pending.empty() ? 0 : pending.front().when;
    for (const auto& info : pending) {
      h.U64(static_cast<std::uint64_t>(info.kind));
      h.U64(info.scope);
      h.U64(static_cast<std::uint64_t>(info.when - t0));
    }
    return h.hash();
  }

  bool CheckInvariants(std::string* why) override {
    bool ok = quic::Auditor::CheckAll(world_->client->connection(), why);
    for (const quic::Connection* conn : world_->server->Connections()) {
      ok = quic::Auditor::CheckAll(*conn, why) && ok;
    }
    if (world_->errors > 0) {
      ok = false;
      if (why != nullptr) {
        *why += "payload corruption: " + std::to_string(world_->errors) +
                " byte(s) differ from the pattern\n";
      }
    }
    if (kind_ != ScenarioKind::kHandshake) {
      const ByteCount expected = options_.transfer_bytes;
      if (world_->received > expected) {
        ok = false;
        if (why != nullptr) {
          *why += "receiver got " + std::to_string(world_->received.value()) +
                  " bytes, more than the " +
                  std::to_string(expected.value()) + " sent\n";
        }
      }
      if (world_->finished && world_->received != expected) {
        ok = false;
        if (why != nullptr) {
          *why += "transfer finished at " +
                  std::to_string(world_->received.value()) + " of " +
                  std::to_string(expected.value()) + " bytes\n";
        }
      }
    }
    return ok;
  }

  bool GoalReached() override {
    if (kind_ == ScenarioKind::kHandshake) {
      if (!world_->client->connection().established()) return false;
      const auto conns = world_->server->Connections();
      if (conns.empty()) return false;
      for (const quic::Connection* conn : conns) {
        if (!conn->established()) return false;
      }
      return true;
    }
    return world_->finished && world_->errors == 0 &&
           world_->received == options_.transfer_bytes;
  }

 private:
  ScenarioOptions options_;
  ScenarioKind kind_ = ScenarioKind::kHandshake;
  std::unique_ptr<QuicWorld> world_;
  int drops_used_ = 0;
  int dups_used_ = 0;
};

}  // namespace

std::unique_ptr<Model> MakeQuicScenarioModel(const ScenarioOptions& options) {
  return std::make_unique<QuicScenarioModel>(options);
}

// ---------------------------------------------------------------------------
// Self-test corpus

namespace {

// --- clean-pair: two independent counters, no bug. Also the PoR
// benchmark: with sleep sets the interleavings collapse.
class CleanPairModel final : public Model {
 public:
  void Reset() override { a_ = b_ = 0; }
  std::vector<Choice> Enabled() override {
    std::vector<Choice> out;
    if (a_ < 3) out.push_back(Step("a", a_, 1, 0));
    if (b_ < 3) out.push_back(Step("b", b_, 2, 1));
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].index = static_cast<std::uint32_t>(i);
    }
    return out;
  }
  void Execute(const Choice& choice) override {
    if (choice.ref == 0) ++a_; else ++b_;
  }
  std::uint64_t Digest() override {
    return 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(a_) * 16 +
                                    static_cast<std::uint64_t>(b_) + 1);
  }
  bool CheckInvariants(std::string* why) override {
    if (a_ <= 3 && b_ <= 3) return true;
    if (why != nullptr) *why += "counter overshot\n";
    return false;
  }
  bool GoalReached() override { return a_ == 3 && b_ == 3; }

 private:
  static Choice Step(const char* name, int step, std::uint32_t scope,
                     std::uint64_t ref) {
    Choice c;
    c.label = std::string(name) + std::to_string(step);
    c.scope = scope;
    c.ref = ref;
    return c;
  }
  int a_ = 0;
  int b_ = 0;
};

// --- order-bug: "withdraw" before "pay" drives the balance negative.
// The schedule-order bug class the explorer exists to find.
class OrderBugModel final : public Model {
 public:
  void Reset() override {
    balance_ = 0;
    paid_ = withdrawn_ = false;
  }
  std::vector<Choice> Enabled() override {
    std::vector<Choice> out;
    if (!paid_) out.push_back(Step("pay", 1));
    if (!withdrawn_) out.push_back(Step("withdraw", 2));
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].index = static_cast<std::uint32_t>(i);
    }
    return out;
  }
  void Execute(const Choice& choice) override {
    if (choice.ref == 1) {
      ++balance_;
      paid_ = true;
    } else {
      --balance_;
      withdrawn_ = true;
    }
  }
  std::uint64_t Digest() override {
    return (static_cast<std::uint64_t>(balance_ + 8) << 2) |
           (paid_ ? 2U : 0U) | (withdrawn_ ? 1U : 0U);
  }
  bool CheckInvariants(std::string* why) override {
    if (balance_ >= 0) return true;
    if (why != nullptr) *why += "balance went negative\n";
    return false;
  }
  bool GoalReached() override { return paid_ && withdrawn_; }

 private:
  static Choice Step(const char* label, std::uint64_t ref) {
    Choice c;
    c.label = label;
    c.ref = ref;
    return c;
  }
  int balance_ = 0;
  bool paid_ = false;
  bool withdrawn_ = false;
};

// --- lost-message: a protocol with no retransmission. Dropping its one
// delivery deadlocks short of the goal — a liveness violation that only
// the adversarial drop branch can expose.
class LostMessageModel final : public Model {
 public:
  void Reset() override {
    in_flight_ = true;
    delivered_ = false;
    drops_used_ = 0;
  }
  std::vector<Choice> Enabled() override {
    std::vector<Choice> out;
    if (in_flight_) {
      Choice fire;
      fire.label = "msg";
      fire.ref = 1;
      out.push_back(std::move(fire));
      if (drops_used_ < 1) {
        Choice drop;
        drop.action = ChoiceAction::kDrop;
        drop.label = "msg";
        drop.ref = 1;
        out.push_back(std::move(drop));
      }
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].index = static_cast<std::uint32_t>(i);
    }
    return out;
  }
  void Execute(const Choice& choice) override {
    in_flight_ = false;
    if (choice.action == ChoiceAction::kFire) {
      delivered_ = true;
    } else {
      ++drops_used_;
    }
  }
  std::uint64_t Digest() override {
    return (in_flight_ ? 4U : 0U) | (delivered_ ? 2U : 0U) |
           static_cast<std::uint64_t>(drops_used_ << 3);
  }
  bool CheckInvariants(std::string*) override { return true; }
  bool GoalReached() override { return delivered_; }

 private:
  bool in_flight_ = true;
  bool delivered_ = false;
  int drops_used_ = 0;
};

// --- dup-unsafe: a non-idempotent receiver. Duplicating the delivery
// applies it twice; only the adversarial duplicate branch catches it.
class DupUnsafeModel final : public Model {
 public:
  void Reset() override {
    pending_ = 1;
    applied_ = 0;
    dups_used_ = 0;
  }
  std::vector<Choice> Enabled() override {
    std::vector<Choice> out;
    if (pending_ > 0) {
      Choice fire;
      fire.label = "msg";
      fire.ref = 1;
      out.push_back(std::move(fire));
      if (dups_used_ < 1) {
        Choice dup;
        dup.action = ChoiceAction::kDup;
        dup.label = "msg";
        dup.ref = 1;
        out.push_back(std::move(dup));
      }
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].index = static_cast<std::uint32_t>(i);
    }
    return out;
  }
  void Execute(const Choice& choice) override {
    if (choice.action == ChoiceAction::kDup) {
      ++pending_;  // the wire copy
      ++dups_used_;
    }
    --pending_;  // deliver (the original, for kDup)
    ++applied_;  // ...and the receiver blindly re-applies it
  }
  std::uint64_t Digest() override {
    return static_cast<std::uint64_t>(pending_) |
           (static_cast<std::uint64_t>(applied_) << 8) |
           (static_cast<std::uint64_t>(dups_used_) << 16);
  }
  bool CheckInvariants(std::string* why) override {
    if (applied_ <= 1) return true;
    if (why != nullptr) *why += "message applied twice\n";
    return false;
  }
  bool GoalReached() override { return pending_ == 0; }

 private:
  int pending_ = 1;
  int applied_ = 0;
  int dups_used_ = 0;
};

// --- hidden-nondet: state leaks across Reset() (a "static" survives),
// so a replayed trace digests differently. The determinism probe must
// catch it before the DFS trusts any re-execution.
class HiddenNondetModel final : public Model {
 public:
  void Reset() override { steps_ = 0; }
  std::vector<Choice> Enabled() override {
    std::vector<Choice> out;
    if (steps_ < 3) {
      Choice c;
      c.label = "tick" + std::to_string(steps_);
      out.push_back(std::move(c));
      out[0].index = 0;
    }
    return out;
  }
  void Execute(const Choice&) override {
    ++steps_;
    ++Leak();
  }
  std::uint64_t Digest() override {
    return static_cast<std::uint64_t>(steps_) * 1024 + Leak();
  }
  bool CheckInvariants(std::string*) override { return true; }
  bool GoalReached() override { return steps_ == 3; }

 private:
  static std::uint64_t& Leak() {
    static std::uint64_t counter = 0;
    return counter;
  }
  int steps_ = 0;
};

// --- deep-race: x+=1 ; x*=2 racing x+=3 — only two of the three
// interleavings reach x==8. Needs depth-3 systematic search *and* is
// irreducible, so it exercises the shrinker's "no candidate survives"
// path too.
class DeepRaceModel final : public Model {
 public:
  void Reset() override {
    x_ = 0;
    a_step_ = 0;
    b_done_ = false;
  }
  std::vector<Choice> Enabled() override {
    std::vector<Choice> out;
    if (a_step_ == 0) out.push_back(Step("a-add", 1));
    if (a_step_ == 1) out.push_back(Step("a-mul", 2));
    if (!b_done_) out.push_back(Step("b-add", 3));
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].index = static_cast<std::uint32_t>(i);
    }
    return out;
  }
  void Execute(const Choice& choice) override {
    if (choice.ref == 1) {
      x_ += 1;
      a_step_ = 1;
    } else if (choice.ref == 2) {
      x_ *= 2;
      a_step_ = 2;
    } else {
      x_ += 3;
      b_done_ = true;
    }
  }
  std::uint64_t Digest() override {
    return static_cast<std::uint64_t>(x_) * 64 +
           static_cast<std::uint64_t>(a_step_) * 2 + (b_done_ ? 1 : 0);
  }
  bool CheckInvariants(std::string* why) override {
    if (x_ != 8) return true;
    if (why != nullptr) *why += "x reached the forbidden value 8\n";
    return false;
  }
  bool GoalReached() override { return a_step_ == 2 && b_done_; }

 private:
  static Choice Step(const char* label, std::uint64_t ref) {
    Choice c;
    c.label = label;
    c.ref = ref;
    return c;
  }
  int x_ = 0;
  int a_step_ = 0;
  bool b_done_ = false;
};

}  // namespace

std::vector<SelfTestCase> SelfTestCorpus() {
  ExploreOptions small;
  small.max_steps = 16;

  std::vector<SelfTestCase> corpus;
  corpus.push_back({"clean-pair",
                    [] { return std::make_unique<CleanPairModel>(); },
                    small, false, ViolationKind::kInvariant});
  corpus.push_back({"order-bug",
                    [] { return std::make_unique<OrderBugModel>(); },
                    small, true, ViolationKind::kInvariant});
  corpus.push_back({"lost-message",
                    [] { return std::make_unique<LostMessageModel>(); },
                    small, true, ViolationKind::kLiveness});
  corpus.push_back({"dup-unsafe",
                    [] { return std::make_unique<DupUnsafeModel>(); },
                    small, true, ViolationKind::kInvariant});
  corpus.push_back({"hidden-nondet",
                    [] { return std::make_unique<HiddenNondetModel>(); },
                    small, true, ViolationKind::kDeterminism});
  corpus.push_back({"deep-race",
                    [] { return std::make_unique<DeepRaceModel>(); },
                    small, true, ViolationKind::kInvariant});
  return corpus;
}

int RunSelfTest(std::string& report) {
  int failures = 0;
  auto record = [&](bool ok, const std::string& name,
                    const std::string& detail) {
    report += std::string(ok ? "PASS" : "FAIL") + "  " + name;
    if (!detail.empty()) report += "  (" + detail + ")";
    report += "\n";
    if (!ok) ++failures;
  };

  for (const SelfTestCase& test : SelfTestCorpus()) {
    const auto model = test.make();
    const ExploreResult result = Explore(*model, test.options);
    std::string detail;
    bool ok;
    if (test.expect_violation) {
      ok = !result.violations.empty() &&
           result.violations.front().kind == test.expected_kind;
      detail = result.violations.empty()
                   ? "expected a " + std::string(ToString(test.expected_kind)) +
                         " violation, found none"
                   : std::string("found ") +
                         ToString(result.violations.front().kind) +
                         " in " +
                         std::to_string(result.violations.front().trace.size()) +
                         " steps";
      if (!result.violations.empty() && !ok) {
        detail += ", expected " + std::string(ToString(test.expected_kind));
      }
    } else {
      ok = result.violations.empty() && result.stats.exhausted;
      detail = std::to_string(result.stats.maximal_traces) + " traces, " +
               std::to_string(result.stats.distinct_states) + " states";
      if (!result.violations.empty()) {
        detail += ", unexpected " +
                  std::string(ToString(result.violations.front().kind));
      }
    }
    record(ok, "corpus/" + test.name, detail);
  }

  // Partial-order reduction cross-check: on the independent-counters
  // model, sleep sets must prune traces without changing the verdict.
  {
    ExploreOptions base;
    base.max_steps = 16;
    base.prune_digests = false;  // isolate the sleep-set effect
    ExploreOptions with_por = base;
    with_por.por = true;
    ExploreOptions without_por = base;
    without_por.por = false;

    CleanPairModel model;
    const ExploreResult reduced = Explore(model, with_por);
    const ExploreResult full = Explore(model, without_por);
    const bool ok = reduced.violations.empty() && full.violations.empty() &&
                    reduced.stats.maximal_traces < full.stats.maximal_traces;
    record(ok, "por-cross-check",
           "por " + std::to_string(reduced.stats.maximal_traces) +
               " traces vs full " + std::to_string(full.stats.maximal_traces));
  }

  // Counterexample round-trip: a found violation must replay to the
  // identical digest sequence and the same verdict.
  {
    DeepRaceModel model;
    ExploreOptions options;
    options.max_steps = 16;
    const ExploreResult result = Explore(model, options);
    bool ok = !result.violations.empty();
    std::string detail = "no violation found";
    if (ok) {
      const Violation& violation = result.violations.front();
      const ReplayOutcome replayed = Replay(model, violation.trace);
      ok = !replayed.invariants_ok && replayed.digests == violation.digests;
      detail = ok ? std::to_string(violation.trace.size()) +
                        " steps replay digest-identical"
                  : "replay diverged from the recorded counterexample";
    }
    record(ok, "replay-round-trip", detail);
  }

  return failures;
}

}  // namespace mpq::harness
