#include "harness/figures.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "harness/parallel.h"

namespace mpq::harness {

namespace {
std::string g_csv_dir;  // set once at bench startup

std::string SanitizeLabel(const std::string& label) {
  std::string out;
  for (char ch : label) {
    out.push_back((std::isalnum(static_cast<unsigned char>(ch)) != 0) ? ch
                                                                      : '_');
  }
  return out;
}
}  // namespace

void SetCsvDirectory(const std::string& dir) { g_csv_dir = dir; }

ClassEvalOptions ParseBenchArgs(int argc, char** argv) {
  ClassEvalOptions options;
  // MPQ_BENCH_FULL=1 reproduces the paper's full design from the
  // environment (useful with `for b in build/bench/*; do $b; done`).
  if (const char* env = std::getenv("MPQ_BENCH_FULL");
      env != nullptr && env[0] == '1') {
    options.scenario_count = 253;
    options.repetitions = 3;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      options.scenario_count = 253;
      options.repetitions = 3;
    } else if (std::strcmp(argv[i], "--scenarios") == 0 && i + 1 < argc) {
      options.scenario_count = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      options.repetitions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      options.transfer_size = ByteCount{std::strtoull(argv[++i], nullptr, 10)};
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      options.csv_dir = argv[++i];
      SetCsvDirectory(options.csv_dir);
    } else if (std::strcmp(argv[i], "--obs") == 0 && i + 1 < argc) {
      options.obs_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs = std::atoi(argv[++i]);
      if (options.jobs <= 0) options.jobs = DefaultJobs();
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      options.progress = false;
    }
  }
  return options;
}

std::vector<ScenarioOutcome> EvaluateClass(expdesign::ScenarioClass klass,
                                           const ClassEvalOptions& options) {
  const auto scenarios = expdesign::GenerateScenarios(
      klass, options.scenario_count, options.seed);

  if (!options.obs_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.obs_dir, ec);
  }

  // Flatten the class into independent (scenario, initial path, protocol,
  // repetition) work items. The decomposition — including every derived
  // seed and observability path — is the same for any --jobs value; only
  // the execution order varies, and the reduction below walks the result
  // slots in original item order, so the outcome vector (and thus every
  // figure CSV built from it) is byte-identical regardless of job count.
  struct WorkItem {
    std::size_t scenario = 0;  // index into `scenarios`
    int path = 0;
    Protocol protocol = Protocol::kTcp;
    int rep = 0;
  };
  static constexpr Protocol kProtocols[] = {Protocol::kTcp, Protocol::kQuic,
                                            Protocol::kMptcp,
                                            Protocol::kMpquic};
  const int reps = std::max(options.repetitions, 1);
  const std::size_t per_scenario = 2 * std::size(kProtocols) * reps;
  std::vector<WorkItem> items;
  items.reserve(scenarios.size() * per_scenario);
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    for (int path = 0; path < 2; ++path) {
      for (Protocol protocol : kProtocols) {
        for (int rep = 0; rep < reps; ++rep) {
          items.push_back({s, path, protocol, rep});
        }
      }
    }
  }

  std::vector<TransferResult> results(items.size());
  // Progress dot per scenario, emitted by whichever worker finishes the
  // scenario's last item (under --jobs 1 this is the original ordering).
  std::vector<std::atomic<std::size_t>> remaining(scenarios.size());
  for (auto& count : remaining) {
    count.store(per_scenario, std::memory_order_relaxed);
  }

  RunParallel(options.jobs, items.size(), [&](std::size_t i) {
    const WorkItem& item = items[i];
    const expdesign::Scenario& scenario = scenarios[item.scenario];
    TransferOptions run = options.base_options;
    run.transfer_size = options.transfer_size;
    run.time_limit = options.time_limit;
    run.initial_path = item.path;
    // Same derivation as the serial MedianTransfer loop: a scenario base
    // seed plus the per-repetition stride.
    run.seed = options.seed + 1000003ULL * scenario.index +
               7919ULL * static_cast<std::uint64_t>(item.rep);
    if (!options.obs_dir.empty() && item.protocol == Protocol::kMpquic) {
      // One qlog per (scenario, initial path, repetition) so concurrent
      // repetitions never write the same file, plus one metrics row per
      // run (the append itself is mutex-guarded in the runner).
      const std::string stem =
          "scenario_" + std::to_string(scenario.index) + "_p" +
          std::to_string(item.path) + "_r" + std::to_string(item.rep);
      run.qlog_path = options.obs_dir + "/" + stem + ".qlog";
      run.metrics_path = options.obs_dir + "/metrics.ndjson";
      run.metrics_label = stem;
    }
    results[i] = RunTransfer(item.protocol, scenario.paths, run);
    if (options.progress &&
        remaining[item.scenario].fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
      std::fputc('.', stderr);
      std::fflush(stderr);
    }
  });
  if (options.progress) std::fputc('\n', stderr);

  // Serial reduction in item order: repetitions collapse to their median,
  // medians land in the outcome slot their (path, protocol) dictates.
  std::vector<ScenarioOutcome> outcomes;
  outcomes.reserve(scenarios.size());
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    ScenarioOutcome outcome;
    outcome.scenario = scenarios[s];
    for (int path = 0; path < 2; ++path) {
      for (Protocol protocol : kProtocols) {
        std::vector<TransferResult> reps_results(
            results.begin() + static_cast<std::ptrdiff_t>(cursor),
            results.begin() + static_cast<std::ptrdiff_t>(cursor + reps));
        cursor += reps;
        TransferResult median = MedianResult(std::move(reps_results));
        switch (protocol) {
          case Protocol::kTcp: outcome.tcp[path] = median; break;
          case Protocol::kQuic: outcome.quic[path] = median; break;
          case Protocol::kMptcp: outcome.mptcp[path] = median; break;
          case Protocol::kMpquic: outcome.mpquic[path] = median; break;
        }
      }
    }
    outcome.best_path_tcp =
        outcome.tcp[0].goodput_mbps >= outcome.tcp[1].goodput_mbps ? 0 : 1;
    outcome.best_path_quic =
        outcome.quic[0].goodput_mbps >= outcome.quic[1].goodput_mbps ? 0 : 1;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

RatioSeries ComputeRatios(const std::vector<ScenarioOutcome>& outcomes) {
  // Time ratios are computed through goodput (identical for completed
  // runs, since both transfer the same byte count). For a run truncated
  // by the time limit, goodput still reflects its partial progress,
  // whereas clamped completion times would degenerate to ratio 1.
  RatioSeries series;
  for (const auto& outcome : outcomes) {
    for (int initial = 0; initial < 2; ++initial) {
      if (outcome.tcp[initial].goodput_mbps > 0.0) {
        series.tcp_over_quic.push_back(outcome.quic[initial].goodput_mbps /
                                       outcome.tcp[initial].goodput_mbps);
      }
      if (outcome.mptcp[initial].goodput_mbps > 0.0) {
        series.mptcp_over_mpquic.push_back(
            outcome.mpquic[initial].goodput_mbps /
            outcome.mptcp[initial].goodput_mbps);
      }
    }
  }
  return series;
}

BenefitSeries ComputeBenefits(const std::vector<ScenarioOutcome>& outcomes) {
  BenefitSeries series;
  for (const auto& outcome : outcomes) {
    for (int initial = 0; initial < 2; ++initial) {
      const double mptcp_benefit = ExperimentalAggregationBenefit(
          outcome.mptcp[initial].goodput_mbps, outcome.tcp[0].goodput_mbps,
          outcome.tcp[1].goodput_mbps);
      if (initial == outcome.best_path_tcp) {
        series.mptcp_best_first.push_back(mptcp_benefit);
      } else {
        series.mptcp_worst_first.push_back(mptcp_benefit);
      }
      const double mpquic_benefit = ExperimentalAggregationBenefit(
          outcome.mpquic[initial].goodput_mbps, outcome.quic[0].goodput_mbps,
          outcome.quic[1].goodput_mbps);
      if (initial == outcome.best_path_quic) {
        series.mpquic_best_first.push_back(mpquic_benefit);
      } else {
        series.mpquic_worst_first.push_back(mpquic_benefit);
      }
    }
  }
  return series;
}

void PrintCdf(const std::string& label, std::vector<double> values) {
  std::printf("# CDF %s (n=%zu)\n", label.c_str(), values.size());
  const auto cdf = EmpiricalCdf(std::move(values));
  if (!g_csv_dir.empty()) {
    const std::string path =
        g_csv_dir + "/cdf_" + SanitizeLabel(label) + ".csv";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "value,cumulative_probability\n");
      for (const auto& point : cdf) {
        std::fprintf(f, "%.6f,%.6f\n", point.value,
                     point.cumulative_probability);
      }
      std::fclose(f);
    }
  }
  // Thin very long series for readability: at most ~100 printed points.
  const std::size_t step = cdf.size() > 100 ? cdf.size() / 100 : 1;
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    std::printf("%.4f %.4f\n", cdf[i].value, cdf[i].cumulative_probability);
  }
  if (!cdf.empty() && (cdf.size() - 1) % step != 0) {
    std::printf("%.4f %.4f\n", cdf.back().value,
                cdf.back().cumulative_probability);
  }
}

void PrintSummaryRow(const std::string& label,
                     const std::vector<double>& values) {
  std::printf("%-28s %s\n", label.c_str(),
              FormatSummary(Summarize(values)).c_str());
  if (!g_csv_dir.empty()) {
    const std::string path =
        g_csv_dir + "/series_" + SanitizeLabel(label) + ".csv";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "value\n");
      for (double v : values) std::fprintf(f, "%.6f\n", v);
      std::fclose(f);
    }
  }
}

}  // namespace mpq::harness
