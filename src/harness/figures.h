// Figure-level evaluation: run the four protocols over a WSP scenario
// class exactly as §4.1 does — single-path TCP and QUIC on each path,
// MPTCP and MPQUIC starting from each path — and expose the series the
// paper plots (completion-time-ratio CDFs, experimental aggregation
// benefit split by best/worst initial path).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "expdesign/scenarios.h"
#include "harness/runner.h"

namespace mpq::harness {

struct ClassEvalOptions {
  /// Scenarios per class. The paper uses 253; the bench default is a
  /// smaller space-filling subset so `bench/*` stays minutes, not hours.
  std::size_t scenario_count = 60;
  /// Repetitions per point, median taken (paper: 3).
  int repetitions = 1;
  ByteCount transfer_size{20 * 1024 * 1024};
  std::uint64_t seed = 20170712;
  TimePoint time_limit = 600 * kSecond;
  bool progress = true;  // print a dot per scenario to stderr
  /// Worker threads running the (scenario, path, protocol, repetition)
  /// work items. Every run is independent and results are reduced in
  /// serial item order, so any jobs value yields byte-identical output
  /// (docs/PERFORMANCE.md); only wall-clock time changes.
  int jobs = 1;
  /// When non-empty, PrintCdf/PrintSummaryRow additionally write the full
  /// (un-thinned) series as CSV files into this directory.
  std::string csv_dir;
  /// When non-empty, every MPQUIC run dumps a per-connection qlog trace
  /// (scenario_<index>_p<initial>_r<rep>.qlog — one file per repetition,
  /// safe under --jobs N) into this directory and appends a per-run
  /// metrics row to <obs_dir>/metrics.ndjson. The directory is created
  /// if missing. See docs/OBSERVABILITY.md.
  std::string obs_dir;
  /// Ablation knobs forwarded to every run.
  TransferOptions base_options;
};

/// Set by ParseBenchArgs (--csv DIR); used by the Print helpers.
void SetCsvDirectory(const std::string& dir);

/// Parse common bench arguments: --full (253 scenarios, 3 reps),
/// --scenarios N, --reps N, --size BYTES, --quiet, --csv DIR, --obs DIR,
/// --jobs N (worker threads; 0 = one per hardware core).
ClassEvalOptions ParseBenchArgs(int argc, char** argv);

struct ScenarioOutcome {
  expdesign::Scenario scenario;
  // Single-path runs, indexed by topology path.
  TransferResult tcp[2];
  TransferResult quic[2];
  // Multipath runs, indexed by the initial path.
  TransferResult mptcp[2];
  TransferResult mpquic[2];
  // Index of the better single-path for each family (by goodput).
  int best_path_tcp = 0;
  int best_path_quic = 0;
};

/// Run the full §4.1 evaluation for one class.
std::vector<ScenarioOutcome> EvaluateClass(expdesign::ScenarioClass klass,
                                           const ClassEvalOptions& options);

/// Completion-time ratios over all (scenario, initial path) pairs — the
/// "506 simulations" series of Figs. 3/5/8/9. ratio > 1 means the QUIC
/// variant is faster.
struct RatioSeries {
  std::vector<double> tcp_over_quic;
  std::vector<double> mptcp_over_mpquic;
};
RatioSeries ComputeRatios(const std::vector<ScenarioOutcome>& outcomes);

/// Aggregation-benefit distributions split by initial path quality — the
/// series of Figs. 4/6/7/10.
struct BenefitSeries {
  std::vector<double> mptcp_best_first;
  std::vector<double> mptcp_worst_first;
  std::vector<double> mpquic_best_first;
  std::vector<double> mpquic_worst_first;
};
BenefitSeries ComputeBenefits(const std::vector<ScenarioOutcome>& outcomes);

/// Print an empirical CDF as "value cumulative_probability" rows.
void PrintCdf(const std::string& label, std::vector<double> values);

/// Print a box-plot-style summary row.
void PrintSummaryRow(const std::string& label,
                     const std::vector<double>& values);

}  // namespace mpq::harness
