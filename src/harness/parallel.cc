#include "harness/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace mpq::harness {

int DefaultJobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void RunParallel(int jobs, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs), count);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&next, count, &fn] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
  }
  for (auto& thread : pool) thread.join();
}

}  // namespace mpq::harness
