// Minimal worker pool for fanning independent simulation runs across
// threads. Every run in this codebase is self-contained (own Simulator,
// Network, Rng, connections), so the only coordination a sweep needs is
// work distribution — results land in pre-sized slots and are reduced
// serially by the caller, keeping output byte-identical for any job
// count. See docs/PERFORMANCE.md.
#pragma once

#include <cstddef>
#include <functional>

namespace mpq::harness {

/// Worker count used for `--jobs 0` (auto): the hardware concurrency,
/// at least 1.
int DefaultJobs();

/// Invoke fn(0), fn(1), ..., fn(count - 1), distributing indices over
/// `jobs` threads via an atomic claim counter. `jobs <= 1` runs inline
/// in index order with no threads. fn must be safe to call concurrently
/// for distinct indices; no two workers ever receive the same index.
/// Returns after every item has completed.
void RunParallel(int jobs, std::size_t count,
                 const std::function<void(std::size_t)>& fn);

}  // namespace mpq::harness
