#include "harness/workload.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <utility>

#include "common/rng.h"
#include "common/source.h"
#include "harness/parallel.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "quic/endpoint.h"
#include "quic/server.h"
#include "sim/net.h"
#include "sim/simulator.h"

namespace mpq::harness {

namespace {

constexpr std::uint16_t kServerNode = 1;
constexpr std::uint16_t kFirstClientNode = 10;

std::uint64_t Mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Drop-tail queue sized by the max queuing delay, like sim/topology.cc.
ByteCount QueueBytes(double capacity_mbps, Duration max_queue_delay) {
  const double bytes = capacity_mbps * 1e6 / 8.0 *
                       (static_cast<double>(max_queue_delay) /
                        static_cast<double>(kSecond));
  return ByteCount{static_cast<std::uint64_t>(bytes)};
}

sim::LinkConfig MakeLink(double capacity_mbps, Duration one_way,
                         Duration max_queue_delay) {
  sim::LinkConfig config;
  config.capacity_mbps = capacity_mbps;
  config.propagation_delay = one_way;
  config.queue_capacity_bytes = QueueBytes(capacity_mbps, max_queue_delay);
  return config;
}

/// Everything one shard needs to report back; reduced in shard order.
struct ShardOutcome {
  std::vector<FlowResult> flows;  // this shard's flows, arrival order
  std::uint64_t events = 0;
};

ShardOutcome RunShard(const WorkloadOptions& options,
                      const std::vector<FlowSpec>& shard_flows,
                      std::uint32_t shard_index,
                      obs::MetricsRegistry& registry) {
  const int paths = options.multipath ? 2 : 1;

  sim::Simulator sim;
  sim::Network net(sim, Rng(Mix(options.seed, 0xA11CE + shard_index)));

  quic::ConnectionConfig config;
  config.multipath = options.multipath;
  config.congestion = options.multipath ? options.multipath_congestion
                                        : cc::Algorithm::kCubic;

  std::vector<sim::Address> server_locals;
  for (int p = 0; p < paths; ++p) {
    server_locals.push_back(
        sim::Address{kServerNode, static_cast<std::uint16_t>(p)});
  }
  quic::Server server(sim, net, server_locals, config,
                      Mix(options.seed, 0x5E44E4 + shard_index), shard_index,
                      options.shards);
  server.SetBatchDispatch(options.batch_dispatch);
  server.SetAcceptHandler([](quic::Connection& conn) {
    auto request = std::make_shared<std::string>();
    conn.SetStreamDataHandler([&conn, request](
                                  StreamId id, ByteCount,
                                  std::span<const std::uint8_t> data,
                                  bool fin) {
      request->append(data.begin(), data.end());
      if (fin && id == StreamId{3}) {
        const ByteCount size = ByteCount{std::stoull(request->substr(4))};
        conn.SendOnStream(StreamId{3},
                          std::make_unique<PatternSource>(3, size));
      }
    });
  });

  // Topology: per path, a shared bottleneck downlink out of the server
  // (all of this shard's responses contend there) and a dedicated
  // uplink per client. Propagation splits the path RTT evenly.
  for (int p = 0; p < paths; ++p) {
    net.AddSharedLink(server_locals[static_cast<std::size_t>(p)],
                      MakeLink(options.bottleneck_capacity_mbps,
                               options.path_rtt[p] / 2,
                               options.max_queue_delay));
  }
  for (std::size_t j = 0; j < shard_flows.size(); ++j) {
    const auto node = static_cast<std::uint16_t>(kFirstClientNode + j);
    for (int p = 0; p < paths; ++p) {
      net.AddLink(sim::Address{node, static_cast<std::uint16_t>(p)},
                  server_locals[static_cast<std::size_t>(p)],
                  MakeLink(options.access_capacity_mbps,
                           options.path_rtt[p] / 2, options.max_queue_delay));
    }
  }

  struct ClientSlot {
    std::unique_ptr<quic::ClientEndpoint> endpoint;
    ByteCount expect;
    ByteCount received;
    bool completed = false;
    TimePoint completion = 0;
  };
  std::vector<ClientSlot> slots(shard_flows.size());

  obs::Counter& flows_completed =
      registry.GetCounter("workload.flows_completed");
  obs::Counter& bytes_received = registry.GetCounter("workload.bytes_received");
  obs::Histogram& fct_hist = registry.GetHistogram("workload.fct_us");
  registry.GetCounter("workload.flows").Increment(shard_flows.size());

  for (std::size_t j = 0; j < shard_flows.size(); ++j) {
    const FlowSpec& flow = shard_flows[j];
    slots[j].expect = flow.size;
    sim.ScheduleAt(flow.arrival, [&, j] {
      const FlowSpec& spec = shard_flows[j];
      ClientSlot& slot = slots[j];
      const auto node = static_cast<std::uint16_t>(kFirstClientNode + j);
      std::vector<sim::Address> locals;
      for (int p = 0; p < paths; ++p) {
        locals.push_back(sim::Address{node, static_cast<std::uint16_t>(p)});
      }
      slot.endpoint = std::make_unique<quic::ClientEndpoint>(
          sim, net, std::move(locals), config, spec.seed);
      quic::Connection& conn = slot.endpoint->connection();
      conn.SetStreamDataHandler([&, j](StreamId, ByteCount,
                                       std::span<const std::uint8_t> data,
                                       bool fin) {
        ClientSlot& s = slots[j];
        s.received += data.size();
        if (fin && !s.completed) {
          s.completed = true;
          s.completion = sim.now();
          const Duration fct = s.completion - shard_flows[j].arrival;
          flows_completed.Increment();
          bytes_received.Increment(s.received.value());
          fct_hist.Record(fct);
          // Release the connection pair; the periodic sweep frees it.
          s.endpoint->connection().Close(0, "done");
        }
      });
      conn.SetEstablishedHandler([&, j] {
        const std::string request =
            "GET " + std::to_string(slots[j].expect.value());
        slots[j].endpoint->connection().SendOnStream(
            StreamId{3},
            std::make_unique<BufferSource>(
                std::vector<std::uint8_t>(request.begin(), request.end())));
      });
      slot.endpoint->Connect(server_locals[0]);
    });
  }

  // Periodic reap: free closed server connections and finished client
  // endpoints so memory tracks the *concurrent* flow count, not the
  // total. Runs until the time limit; each sweep is O(live connections).
  std::function<void()> sweep = [&] {
    for (ClientSlot& slot : slots) {
      if (slot.completed && slot.endpoint != nullptr &&
          slot.endpoint->connection().closed()) {
        slot.endpoint.reset();
      }
    }
    server.ReapClosed();
    if (sim.now() + options.reap_interval <= options.time_limit) {
      sim.Schedule(options.reap_interval, [&] { sweep(); });
    }
  };
  sim.Schedule(options.reap_interval, [&] { sweep(); });

  sim.Run(options.time_limit);

  ShardOutcome outcome;
  outcome.events = sim.events_executed();
  outcome.flows.reserve(shard_flows.size());
  for (std::size_t j = 0; j < shard_flows.size(); ++j) {
    const FlowSpec& spec = shard_flows[j];
    FlowResult result;
    result.index = spec.index;
    result.shard = spec.shard;
    result.cid = spec.cid;
    result.arrival = spec.arrival;
    result.size = spec.size;
    result.completed = slots[j].completed;
    if (result.completed) {
      result.fct = slots[j].completion - spec.arrival;
      result.goodput_mbps = result.fct > 0
                                ? static_cast<double>(spec.size.value()) *
                                      8.0 / static_cast<double>(result.fct)
                                : 0.0;
    }
    outcome.flows.push_back(result);
  }
  return outcome;
}

void WriteOutputs(const WorkloadOptions& options,
                  const WorkloadResult& result) {
  if (!options.metrics_path.empty()) {
    std::ofstream out(options.metrics_path, std::ios::app);
    for (const FlowResult& flow : result.flows) {
      obs::JsonWriter row;
      row.BeginObject();
      row.Key("label").String(options.metrics_label);
      row.Key("conn").UInt(flow.index);
      row.Key("cid").UInt(flow.cid);
      row.Key("shard").UInt(flow.shard);
      row.Key("arrival_us").Int(flow.arrival);
      row.Key("size_bytes").UInt(flow.size.value());
      row.Key("completed").Bool(flow.completed);
      row.Key("fct_us").Int(flow.fct);
      row.Key("goodput_mbps").Double(flow.goodput_mbps);
      row.EndObject();
      out << row.str() << '\n';
    }
    obs::JsonWriter fleet;
    fleet.BeginObject();
    fleet.Key("label").String(options.metrics_label);
    fleet.Key("fleet");
    fleet.BeginObject();
    fleet.Key("flows").UInt(result.flows.size());
    fleet.Key("completed").UInt(result.completed);
    fleet.Key("bytes").UInt(result.bytes_received.value());
    fleet.Key("goodput_mbps").Double(result.total_goodput_mbps);
    fleet.Key("jain").Double(result.jain_index);
    fleet.Key("fct_us");
    fleet.BeginObject();
    fleet.Key("p50").Double(result.fct_p50_us);
    fleet.Key("p99").Double(result.fct_p99_us);
    fleet.Key("p999").Double(result.fct_p999_us);
    fleet.EndObject();
    fleet.EndObject();
    fleet.EndObject();
    out << fleet.str() << '\n';
  }

  if (!options.qlog_path.empty()) {
    // Flow-level event trace, merged across shards in time order (ties
    // by flow index, arrivals before completions).
    struct Line {
      TimePoint time;
      int order;
      std::uint32_t index;
      std::string text;
    };
    std::vector<Line> lines;
    lines.reserve(result.flows.size() * 2);
    for (const FlowResult& flow : result.flows) {
      obs::JsonWriter arrive;
      arrive.BeginObject();
      arrive.Key("time").Int(flow.arrival);
      arrive.Key("name").String("workload:flow_arrival");
      arrive.Key("data");
      arrive.BeginObject();
      arrive.Key("conn").UInt(flow.index);
      arrive.Key("shard").UInt(flow.shard);
      arrive.Key("size_bytes").UInt(flow.size.value());
      arrive.EndObject();
      arrive.EndObject();
      lines.push_back({flow.arrival, 0, flow.index, arrive.str()});
      if (!flow.completed) continue;
      obs::JsonWriter complete;
      complete.BeginObject();
      complete.Key("time").Int(flow.arrival + flow.fct);
      complete.Key("name").String("workload:flow_complete");
      complete.Key("data");
      complete.BeginObject();
      complete.Key("conn").UInt(flow.index);
      complete.Key("shard").UInt(flow.shard);
      complete.Key("fct_us").Int(flow.fct);
      complete.Key("goodput_mbps").Double(flow.goodput_mbps);
      complete.EndObject();
      complete.EndObject();
      lines.push_back(
          {flow.arrival + flow.fct, 1, flow.index, complete.str()});
    }
    std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
      if (a.time != b.time) return a.time < b.time;
      if (a.order != b.order) return a.order < b.order;
      return a.index < b.index;
    });
    std::ofstream out(options.qlog_path, std::ios::trunc);
    for (const Line& line : lines) out << line.text << '\n';
  }
}

}  // namespace

double JainIndex(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

std::vector<FlowSpec> GenerateFlows(const WorkloadOptions& options) {
  std::vector<FlowSpec> flows;
  flows.reserve(options.connections);
  Rng master(Mix(options.seed, 0xF10335));
  const std::uint32_t shards = options.shards < 1 ? 1 : options.shards;
  const double min_size = static_cast<double>(options.min_flow_bytes.value());
  const double max_size = static_cast<double>(options.max_flow_bytes.value());
  const double alpha = options.pareto_alpha;
  // Bounded-Pareto inverse CDF: x = min / (1 - u * (1 - (min/max)^a))^(1/a).
  const double tail = 1.0 - std::pow(min_size / max_size, alpha);

  std::vector<ConnectionId> seen;
  TimePoint arrival = 0;
  for (std::uint32_t i = 0; i < options.connections; ++i) {
    FlowSpec flow;
    flow.index = i;
    // Exponential interarrival at the configured Poisson rate.
    const double u_gap = master.NextDouble();
    const double gap_s =
        -std::log(1.0 - u_gap) / std::max(1e-9, options.arrival_rate_per_s);
    arrival += SecondsToDuration(gap_s);
    flow.arrival = arrival;

    const double u_size = master.NextDouble();
    double size = min_size / std::pow(1.0 - u_size * tail, 1.0 / alpha);
    size = std::min(std::max(size, min_size), max_size);
    flow.size = ByteCount{static_cast<std::uint64_t>(size + 0.5)};

    // Per-flow client seed; redraw on the (astronomically rare) CID
    // collision so server demux stays unambiguous. Deterministic: the
    // redraw pattern depends only on the master sequence.
    for (;;) {
      flow.seed = master.NextU64();
      flow.cid = quic::ClientEndpoint::CidForSeed(flow.seed);
      if (std::find(seen.begin(), seen.end(), flow.cid) == seen.end()) break;
    }
    seen.push_back(flow.cid);
    flow.shard = quic::ShardOf(flow.cid, shards);
    flows.push_back(flow);
  }
  std::sort(seen.begin(), seen.end());
  return flows;
}

WorkloadResult RunWorkload(const WorkloadOptions& options) {
  const std::uint32_t shards = options.shards < 1 ? 1 : options.shards;
  const std::vector<FlowSpec> flows = GenerateFlows(options);

  std::vector<std::vector<FlowSpec>> by_shard(shards);
  for (const FlowSpec& flow : flows) {
    by_shard[flow.shard].push_back(flow);
  }

  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries(shards);
  std::vector<ShardOutcome> outcomes(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    registries[s] = std::make_unique<obs::MetricsRegistry>();
  }

  const int jobs = options.jobs == 0 ? DefaultJobs() : options.jobs;
  RunParallel(jobs, shards, [&](std::size_t s) {
    outcomes[s] = RunShard(options, by_shard[s],
                           static_cast<std::uint32_t>(s), *registries[s]);
  });

  // Serial reduction in shard order: byte-identical for any job count.
  WorkloadResult result;
  result.flows.resize(flows.size());
  obs::MetricsRegistry fleet;
  for (std::uint32_t s = 0; s < shards; ++s) {
    result.total_events += outcomes[s].events;
    fleet.MergeFrom(*registries[s]);
    for (const FlowResult& flow : outcomes[s].flows) {
      result.flows[flow.index] = flow;
    }
  }

  TimePoint first_arrival = 0;
  TimePoint last_completion = 0;
  std::vector<double> goodputs;
  bool any = false;
  for (const FlowResult& flow : result.flows) {
    if (!flow.completed) continue;
    if (!any || flow.arrival < first_arrival) first_arrival = flow.arrival;
    const TimePoint completion = flow.arrival + flow.fct;
    if (!any || completion > last_completion) last_completion = completion;
    any = true;
    result.completed += 1;
    result.bytes_received += flow.size;
    goodputs.push_back(flow.goodput_mbps);
  }
  const Duration span = any ? last_completion - first_arrival : 0;
  result.total_goodput_mbps =
      span > 0 ? static_cast<double>(result.bytes_received.value()) * 8.0 /
                     static_cast<double>(span)
               : 0.0;
  result.jain_index = JainIndex(goodputs);
  const obs::Histogram& fct = fleet.GetHistogram("workload.fct_us");
  result.fct_p50_us = fct.Percentile(50.0);
  result.fct_p99_us = fct.Percentile(99.0);
  result.fct_p999_us = fct.Percentile(99.9);
  fleet.GetCounter("workload.shards").Increment(shards);
  fleet.GetCounter("workload.events").Increment(result.total_events);
  result.metrics_json = fleet.SnapshotJson();

  WriteOutputs(options, result);
  return result;
}

}  // namespace mpq::harness
