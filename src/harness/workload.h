// Arrival-process workload over the sharded many-connection server
// engine (quic/server.h).
//
// Model: flows arrive by a Poisson process (exponential interarrivals)
// with bounded-Pareto flow sizes — the standard heavy-tailed traffic
// model behind FCT evaluations. Every flow is one MPQUIC connection:
// the client connects, sends "GET <size>", and the server streams the
// response back over the shard's shared bottleneck link(s).
//
// Execution: flows are partitioned over `shards` completely independent
// simulations by quic::ShardOf of the flow's (precomputed) CID. Each
// shard owns its own Simulator, Network, Server and clients; shards fan
// out across `jobs` threads via harness::RunParallel and reduce in
// shard order, so every KPI — and every byte of the metrics/qlog output
// — is identical for any job count. The shard count (not the job
// count) is the partition, so it is a workload parameter: changing it
// changes the topology, changing jobs changes nothing.
//
// KPIs: per-flow completion time and goodput; fleet-wide aggregate
// goodput, p50/p99/p999 FCT (obs::Histogram, merged across shards with
// MetricsRegistry::MergeFrom) and the Jain fairness index over per-flow
// goodputs. Exported as a merged MetricsRegistry snapshot, optional
// per-flow NDJSON rows (`metrics_path`, read by `mpq_trace
// --aggregate`) and an optional qlog-style flow-event trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cc/congestion.h"
#include "common/types.h"
#include "quic/config.h"

namespace mpq::harness {

struct WorkloadOptions {
  /// Total flows (connections) across all shards.
  std::uint32_t connections = 100;
  /// Poisson arrival rate, flows per second.
  double arrival_rate_per_s = 200.0;
  /// Bounded-Pareto flow-size distribution P(X > x) ~ x^-alpha on
  /// [min_flow_bytes, max_flow_bytes].
  double pareto_alpha = 1.3;
  ByteCount min_flow_bytes{4 * 1024};
  ByteCount max_flow_bytes{256 * 1024};
  /// Master seed: arrivals, sizes and per-connection seeds all derive
  /// from it.
  std::uint64_t seed = 1;
  /// Independent simulation shards (the deterministic partition).
  std::uint32_t shards = 8;
  /// Worker threads (0 = auto). Output is byte-identical for any value.
  int jobs = 1;
  /// Single-path QUIC vs two-path MPQUIC.
  bool multipath = false;
  cc::Algorithm multipath_congestion = cc::Algorithm::kOlia;
  /// Server-side batch dispatch (quic::Server::SetBatchDispatch):
  /// same-instant datagram runs decrypt via one crypto::OpenN call.
  /// Deterministic for a given value, but the event stream differs from
  /// unbatched mode, so it defaults off and benches opt in.
  bool batch_dispatch = false;
  /// Per-client access (uplink) capacity.
  double access_capacity_mbps = 100.0;
  /// Capacity of each shared server downlink — the bottleneck all of a
  /// shard's responses contend on (one such link per path).
  double bottleneck_capacity_mbps = 20.0;
  /// Base RTT of path 0 / path 1 (single-path uses only path 0).
  Duration path_rtt[2] = {30 * kMillisecond, 50 * kMillisecond};
  Duration max_queue_delay = 50 * kMillisecond;
  /// Give up on unfinished flows at this simulated time.
  TimePoint time_limit = 600 * kSecond;
  /// Sweep period for destroying finished connections (memory bound at
  /// 10k-connection scale).
  Duration reap_interval = 1 * kSecond;
  /// Optional outputs.
  std::string metrics_path;   ///< per-flow NDJSON rows + fleet rollup row
  std::string metrics_label;  ///< label stamped on every row
  std::string qlog_path;      ///< flow arrival/complete event trace
};

/// One planned flow (pre-drawn, before any simulation runs).
struct FlowSpec {
  std::uint32_t index = 0;     ///< global arrival order
  std::uint64_t seed = 0;      ///< client endpoint seed
  ConnectionId cid = 0;        ///< ClientEndpoint::CidForSeed(seed)
  std::uint32_t shard = 0;     ///< quic::ShardOf(cid, shards)
  TimePoint arrival = 0;
  ByteCount size;
};

struct FlowResult {
  std::uint32_t index = 0;
  std::uint32_t shard = 0;
  ConnectionId cid = 0;
  TimePoint arrival = 0;
  ByteCount size;
  bool completed = false;
  Duration fct = 0;            ///< arrival -> last response byte (with fin)
  double goodput_mbps = 0.0;   ///< size * 8 / fct
};

struct WorkloadResult {
  std::vector<FlowResult> flows;  ///< index order
  std::uint32_t completed = 0;
  ByteCount bytes_received;
  /// Aggregate goodput: completed bytes * 8 over the span from first
  /// arrival to last completion.
  double total_goodput_mbps = 0.0;
  /// Jain fairness index over completed flows' goodputs (1 = perfectly
  /// fair; 1/n = one flow got everything).
  double jain_index = 0.0;
  /// FCT percentiles from the merged fleet histogram, microseconds.
  double fct_p50_us = 0.0;
  double fct_p99_us = 0.0;
  double fct_p999_us = 0.0;
  /// Sum of per-shard simulator events (engine work measure).
  std::uint64_t total_events = 0;
  /// Merged fleet MetricsRegistry snapshot (deterministic JSON).
  std::string metrics_json;
};

/// Draw the full arrival plan (deterministic in options.seed; no
/// simulation). Flows are in arrival order; arrivals are nondecreasing.
std::vector<FlowSpec> GenerateFlows(const WorkloadOptions& options);

/// Run the workload to completion (or time_limit).
WorkloadResult RunWorkload(const WorkloadOptions& options);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 0 for empty input.
double JainIndex(const std::vector<double>& xs);

}  // namespace mpq::harness
