#include "harness/runner.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "common/source.h"
#include "obs/metrics_tracer.h"
#include "obs/mux.h"
#include "obs/qlog.h"
#include "quic/endpoint.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "tcpsim/endpoint.h"

namespace mpq::harness {

namespace {
constexpr StreamId kQuicDataStream{3};
constexpr std::uint32_t kTcpAppPattern = 7;
}  // namespace

std::string ToString(Protocol protocol) {
  switch (protocol) {
    case Protocol::kTcp:
      return "TCP";
    case Protocol::kQuic:
      return "QUIC";
    case Protocol::kMptcp:
      return "MPTCP";
    case Protocol::kMpquic:
      return "MPQUIC";
  }
  return "?";
}

bool IsMultipath(Protocol protocol) {
  return protocol == Protocol::kMptcp || protocol == Protocol::kMpquic;
}

bool IsQuicFamily(Protocol protocol) {
  return protocol == Protocol::kQuic || protocol == Protocol::kMpquic;
}

double ExperimentalAggregationBenefit(double multipath_goodput,
                                      double single_path0_goodput,
                                      double single_path1_goodput) {
  const double g_max = std::max(single_path0_goodput, single_path1_goodput);
  const double g_sum = single_path0_goodput + single_path1_goodput;
  if (g_max <= 0.0) return 0.0;
  if (multipath_goodput >= g_max) {
    const double denom = g_sum - g_max;
    if (denom <= 0.0) return 0.0;
    return (multipath_goodput - g_max) / denom;
  }
  return (multipath_goodput - g_max) / g_max;
}

namespace {

std::array<sim::PathParams, 2> OrientPaths(
    const std::array<sim::PathParams, 2>& paths, int initial_path) {
  if (initial_path == 0) return paths;
  return {paths[1], paths[0]};
}

TransferResult FinishResult(bool completed, TimePoint finish_time,
                            ByteCount bytes, ByteCount target,
                            TimePoint time_limit, std::uint64_t errors) {
  TransferResult result;
  result.completed = completed;
  result.bytes_received = bytes;
  result.data_integrity_errors = errors;
  result.completion_time = completed ? finish_time : time_limit;
  const double seconds =
      DurationToSeconds(completed ? finish_time : time_limit);
  const double payload =
      static_cast<double>(completed ? target : bytes) * 8.0;
  result.goodput_mbps = seconds > 0.0 ? payload / seconds / 1e6 : 0.0;
  return result;
}

TransferResult RunQuicTransfer(bool multipath,
                               const std::array<sim::PathParams, 2>& paths,
                               const TransferOptions& options) {
  sim::Simulator sim;
  sim::Network net(sim, Rng(options.seed ^ 0x517E0FF));
  auto topo = sim::BuildTwoPathTopology(net, paths);

  quic::ConnectionConfig config;
  config.multipath = multipath;
  config.congestion =
      multipath ? options.multipath_congestion : cc::Algorithm::kCubic;
  config.scheduler = options.quic_scheduler;
  config.window_update_on_all_paths = options.quic_window_update_on_all_paths;
  config.send_paths_frame = options.quic_send_paths_frame;
  config.pacing = options.quic_pacing;

  // Observability sinks. Declared before the endpoints so the tracer
  // outlives every connection holding a pointer to it; the mux stays
  // empty (and no tracer is attached) when neither output is requested.
  std::ofstream qlog_out;
  std::unique_ptr<obs::QlogTracer> qlog;
  obs::MetricsRegistry registry;
  std::unique_ptr<obs::MetricsTracer> metrics;
  obs::TracerMux mux;
  if (!options.qlog_path.empty()) {
    qlog_out.open(options.qlog_path, std::ios::trunc);
    if (qlog_out.is_open()) {
      qlog = std::make_unique<obs::QlogTracer>(
          qlog_out, options.metrics_label.empty() ? "mpq-transfer"
                                                  : options.metrics_label);
      mux.Add(qlog.get());
    } else {
      std::fprintf(stderr, "warning: cannot open qlog output %s\n",
                   options.qlog_path.c_str());
    }
  }
  if (!options.metrics_path.empty()) {
    metrics = std::make_unique<obs::MetricsTracer>(registry);
    mux.Add(metrics.get());
  }
  obs::TracerMux* tracer = mux.size() > 0 ? &mux : nullptr;

  std::vector<sim::Address> server_locals(topo.server_addr.begin(),
                                          topo.server_addr.end());
  quic::ServerEndpoint server(sim, net, server_locals, config,
                              options.seed * 2 + 1);
  // The server connection sends the payload, so it is the interesting
  // vantage point: scheduler decisions, losses and cwnd all live there.
  server.SetAcceptHandler([tracer](quic::Connection& conn) {
    if (tracer != nullptr) conn.SetTracer(tracer);
    auto request = std::make_shared<std::string>();
    conn.SetStreamDataHandler(
        [&conn, request](StreamId id, ByteCount,
                         std::span<const std::uint8_t> data, bool fin) {
          request->append(data.begin(), data.end());
          if (fin && id == kQuicDataStream) {
            const ByteCount size{std::stoull(request->substr(4))};
            conn.SendOnStream(kQuicDataStream,
                              std::make_unique<PatternSource>(
                                  kQuicDataStream.value(), size));
          }
        });
  });

  std::vector<sim::Address> client_locals;
  client_locals.push_back(topo.client_addr[0]);
  if (multipath) client_locals.push_back(topo.client_addr[1]);
  quic::ClientEndpoint client(sim, net, client_locals, config,
                              options.seed * 2 + 2);

  ByteCount received{};
  std::uint64_t errors = 0;
  bool finished = false;
  TimePoint finish_time = 0;
  client.connection().SetStreamDataHandler(
      [&](StreamId, ByteCount offset, std::span<const std::uint8_t> data,
          bool fin) {
        for (std::size_t i = 0; i < data.size(); ++i) {
          if (data[i] != PatternByte(kQuicDataStream.value(), offset + i)) ++errors;
        }
        received += data.size();
        if (fin) {
          finished = true;
          finish_time = sim.now();
        }
      });
  client.connection().SetEstablishedHandler([&] {
    const std::string request =
        "GET " + std::to_string(options.transfer_size.value());
    client.connection().SendOnStream(
        kQuicDataStream,
        std::make_unique<BufferSource>(
            std::vector<std::uint8_t>(request.begin(), request.end())));
  });
  client.Connect(topo.server_addr[0]);
  while (!finished && sim.RunOne(options.time_limit)) {
  }
  const TransferResult result =
      FinishResult(finished, finish_time, received, options.transfer_size,
                   options.time_limit, errors);

  if (metrics != nullptr) {
    // Build the row outside the lock; the metrics file is the one output
    // shared between parallel sweep workers, so the append (open, write
    // one line, close) is serialised by a process-wide mutex.
    obs::JsonWriter writer;
    writer.BeginObject();
    writer.Key("label").String(options.metrics_label);
    writer.Key("protocol").String(multipath ? "MPQUIC" : "QUIC");
    writer.Key("seed").UInt(options.seed);
    writer.Key("completed").Bool(result.completed);
    writer.Key("time_s").Double(DurationToSeconds(result.completion_time));
    writer.Key("goodput_mbps").Double(result.goodput_mbps);
    writer.Key("metrics");
    registry.WriteJson(writer);
    writer.EndObject();

    static std::mutex metrics_file_mutex;
    const std::lock_guard<std::mutex> lock(metrics_file_mutex);
    std::ofstream out(options.metrics_path, std::ios::app);
    if (out.is_open()) {
      out << writer.str() << '\n';
    } else {
      std::fprintf(stderr, "warning: cannot open metrics output %s\n",
                   options.metrics_path.c_str());
    }
  }
  return result;
}

TransferResult RunTcpTransfer(bool multipath,
                              const std::array<sim::PathParams, 2>& paths,
                              const TransferOptions& options) {
  sim::Simulator sim;
  sim::Network net(sim, Rng(options.seed ^ 0x7C9D));
  // The TCP model's own header is part of the datagram; only IP remains.
  std::array<sim::PathParams, 2> tcp_paths = paths;
  for (auto& path : tcp_paths) path.per_packet_overhead = ByteCount{20};
  auto topo = sim::BuildTwoPathTopology(net, tcp_paths);

  tcp::TcpConfig config;
  config.multipath = multipath;
  config.congestion =
      multipath ? options.multipath_congestion : cc::Algorithm::kCubic;
  config.max_sack_blocks = options.tcp_sack_blocks;
  config.enable_orp = options.tcp_orp;
  config.use_tls = options.tcp_use_tls;
  config.lost_retransmission_needs_rto =
      options.tcp_lost_retransmission_needs_rto;

  std::vector<sim::Address> server_locals(topo.server_addr.begin(),
                                          topo.server_addr.end());
  tcp::TcpServerEndpoint server(sim, net, server_locals, config,
                                options.seed * 2 + 1);
  server.SetAcceptHandler([](tcp::TcpConnection& conn) {
    auto request = std::make_shared<std::string>();
    conn.SetAppDataHandler(
        [&conn, request](ByteCount, std::span<const std::uint8_t> data,
                         bool) {
          request->append(data.begin(), data.end());
          if (!request->empty() && request->back() == '\n') {
            const ByteCount size{std::stoull(request->substr(4))};
            request->clear();
            conn.SendAppData(
                std::make_unique<PatternSource>(kTcpAppPattern, size));
          }
        });
  });

  std::vector<sim::Address> client_locals;
  std::vector<sim::Address> remotes;
  client_locals.push_back(topo.client_addr[0]);
  remotes.push_back(topo.server_addr[0]);
  if (multipath) {
    client_locals.push_back(topo.client_addr[1]);
    remotes.push_back(topo.server_addr[1]);
  }
  tcp::TcpClientEndpoint client(sim, net, client_locals, config,
                                options.seed * 2 + 2);

  ByteCount received{};
  std::uint64_t errors = 0;
  bool finished = false;
  TimePoint finish_time = 0;
  client.connection().SetAppDataHandler(
      [&](ByteCount offset, std::span<const std::uint8_t> data, bool eof) {
        for (std::size_t i = 0; i < data.size(); ++i) {
          if (data[i] != PatternByte(kTcpAppPattern, offset + i)) ++errors;
        }
        received += data.size();
        if (eof) {
          finished = true;
          finish_time = sim.now();
        }
      });
  client.connection().SetSecureEstablishedHandler([&] {
    const std::string request =
        "GET " + std::to_string(options.transfer_size.value()) + "\n";
    client.connection().SendAppData(std::make_unique<BufferSource>(
        std::vector<std::uint8_t>(request.begin(), request.end())));
  });
  client.Connect(remotes);
  while (!finished && sim.RunOne(options.time_limit)) {
  }
  return FinishResult(finished, finish_time, received, options.transfer_size,
                      options.time_limit, errors);
}

}  // namespace

TransferResult RunTransfer(Protocol protocol,
                           const std::array<sim::PathParams, 2>& paths,
                           const TransferOptions& options) {
  const auto oriented = OrientPaths(paths, options.initial_path);
  if (IsQuicFamily(protocol)) {
    return RunQuicTransfer(IsMultipath(protocol), oriented, options);
  }
  return RunTcpTransfer(IsMultipath(protocol), oriented, options);
}

TransferResult MedianTransfer(Protocol protocol,
                              const std::array<sim::PathParams, 2>& paths,
                              TransferOptions options, int repetitions) {
  std::vector<TransferResult> results;
  results.reserve(repetitions);
  const std::uint64_t base_seed = options.seed;
  for (int rep = 0; rep < repetitions; ++rep) {
    options.seed = base_seed + 7919ULL * static_cast<std::uint64_t>(rep);
    results.push_back(RunTransfer(protocol, paths, options));
  }
  return MedianResult(std::move(results));
}

TransferResult MedianResult(std::vector<TransferResult> results) {
  std::sort(results.begin(), results.end(),
            [](const TransferResult& a, const TransferResult& b) {
              if (a.completed != b.completed) return a.completed;
              return a.completion_time < b.completion_time;
            });
  return results[results.size() / 2];
}

// ---------------------------------------------------------------------------
// Handover (Fig. 11)

namespace {

std::array<sim::PathParams, 2> HandoverPaths(const HandoverOptions& options) {
  std::array<sim::PathParams, 2> paths;
  for (auto& path : paths) {
    path.capacity_mbps = options.capacity_mbps;
    path.max_queue_delay = 50 * kMillisecond;
    path.random_loss_rate = 0.0;
  }
  paths[0].rtt = options.initial_path_rtt;
  paths[1].rtt = options.second_path_rtt;
  return paths;
}

/// The fault schedule a handover run injects: the caller's, or (when
/// empty) the paper's single failure — path 0 turns completely lossy at
/// failure_time. Expressed as a kLossRate fault rather than kDown so the
/// link still serializes and then eats packets, exactly like the
/// original hand-scheduled SetRandomLossRate(1.0) — the Fig. 11 series
/// is byte-identical either way the schedule is supplied.
sim::FaultSchedule HandoverFaults(const HandoverOptions& options) {
  if (!options.faults.empty()) return options.faults;
  sim::PathFault failure;
  failure.time = options.failure_time;
  failure.path = 0;
  failure.kind = sim::LinkFault::Kind::kLossRate;
  failure.loss_rate = 1.0;
  return {failure};
}

}  // namespace

std::vector<HandoverSample> RunQuicHandover(const HandoverOptions& options) {
  sim::Simulator sim;
  sim::Network net(sim, Rng(options.seed ^ 0xFA110));
  auto topo = sim::BuildTwoPathTopology(net, HandoverPaths(options));

  quic::ConnectionConfig config;
  if (options.single_path_migration) {
    // §1: "QUIC connection migration allows moving a flow from one
    // address to another. This is a form of hard handover."
    config.multipath = false;
    config.congestion = cc::Algorithm::kCubic;
    config.migrate_on_path_failure = true;
  } else {
    config.multipath = true;
    config.congestion = cc::Algorithm::kOlia;
    config.scheduler = options.scheduler;
  }
  config.send_paths_frame = options.send_paths_frame;

  std::vector<sim::Address> server_locals(topo.server_addr.begin(),
                                          topo.server_addr.end());
  quic::ServerEndpoint server(sim, net, server_locals, config,
                              options.seed * 2 + 1);
  const ByteCount response_size = options.response_size;
  server.SetAcceptHandler([response_size](quic::Connection& conn) {
    conn.SetStreamDataHandler(
        [&conn, response_size](StreamId id, ByteCount,
                               std::span<const std::uint8_t>, bool fin) {
          if (fin) {
            conn.SendOnStream(id, std::make_unique<PatternSource>(
                                      id, response_size));
          }
        });
  });

  std::vector<sim::Address> client_locals(topo.client_addr.begin(),
                                          topo.client_addr.end());
  quic::ClientEndpoint client(sim, net, client_locals, config,
                              options.seed * 2 + 2);

  // Observability sinks, attached to the client connection (the vantage
  // that measures response delay). Same lifetime discipline as
  // RunQuicTransfer: sinks outlive the connection, empty mux = no tracer.
  std::ofstream qlog_out;
  std::unique_ptr<obs::QlogTracer> qlog;
  obs::MetricsRegistry registry;
  std::unique_ptr<obs::MetricsTracer> metrics;
  obs::TracerMux mux;
  if (!options.qlog_path.empty()) {
    qlog_out.open(options.qlog_path, std::ios::trunc);
    if (qlog_out.is_open()) {
      qlog = std::make_unique<obs::QlogTracer>(qlog_out,
                                               options.metrics_label);
      mux.Add(qlog.get());
    } else {
      std::fprintf(stderr, "warning: cannot open qlog output %s\n",
                   options.qlog_path.c_str());
    }
  }
  if (!options.metrics_path.empty()) {
    metrics = std::make_unique<obs::MetricsTracer>(registry);
    mux.Add(metrics.get());
  }
  if (mux.size() > 0) client.connection().SetTracer(&mux);

  std::vector<HandoverSample> samples;
  std::vector<StreamId> request_stream_of;  // sample index -> stream id
  client.connection().SetStreamDataHandler(
      [&](StreamId id, ByteCount, std::span<const std::uint8_t>, bool fin) {
        if (!fin) return;
        for (std::size_t i = 0; i < request_stream_of.size(); ++i) {
          if (request_stream_of[i] == id && !samples[i].answered) {
            samples[i].answered = true;
            samples[i].response_delay = sim.now() - samples[i].sent_time;
            break;
          }
        }
      });

  StreamId next_stream{5};  // stream 3 reserved for file transfers
  std::function<void()> send_request = [&] {
    if (sim.now() > options.end_time) return;
    const StreamId id = next_stream;
    next_stream += 2;
    samples.push_back({sim.now(), 0, false});
    request_stream_of.push_back(id);
    client.connection().SendOnStream(
        id, std::make_unique<PatternSource>(id, options.request_size));
    sim.Schedule(options.request_interval, send_request);
  };
  client.connection().SetEstablishedHandler([&] { send_request(); });
  client.Connect(topo.server_addr[0]);

  sim::SchedulePathFaults(sim, topo, HandoverFaults(options));
  sim.Run(options.end_time + 10 * kSecond);

  if (metrics != nullptr) {
    std::size_t answered = 0;
    for (const HandoverSample& sample : samples) {
      if (sample.answered) ++answered;
    }
    obs::JsonWriter writer;
    writer.BeginObject();
    writer.Key("label").String(options.metrics_label);
    writer.Key("protocol")
        .String(options.single_path_migration ? "QUIC-migration" : "MPQUIC");
    writer.Key("seed").UInt(options.seed);
    writer.Key("requests").UInt(samples.size());
    writer.Key("answered").UInt(answered);
    writer.Key("metrics");
    registry.WriteJson(writer);
    writer.EndObject();

    static std::mutex handover_metrics_mutex;
    const std::lock_guard<std::mutex> lock(handover_metrics_mutex);
    std::ofstream out(options.metrics_path, std::ios::app);
    if (out.is_open()) {
      out << writer.str() << '\n';
    } else {
      std::fprintf(stderr, "warning: cannot open metrics output %s\n",
                   options.metrics_path.c_str());
    }
  }
  return samples;
}

std::vector<HandoverSample> RunMptcpHandover(const HandoverOptions& options) {
  sim::Simulator sim;
  sim::Network net(sim, Rng(options.seed ^ 0xFA111));
  auto paths = HandoverPaths(options);
  for (auto& path : paths) path.per_packet_overhead = ByteCount{20};
  auto topo = sim::BuildTwoPathTopology(net, paths);

  tcp::TcpConfig config;
  config.multipath = true;
  config.congestion = cc::Algorithm::kOlia;
  config.use_tls = true;

  std::vector<sim::Address> server_locals(topo.server_addr.begin(),
                                          topo.server_addr.end());
  tcp::TcpServerEndpoint server(sim, net, server_locals, config,
                                options.seed * 2 + 1);
  // Echo server: one response per full request_size bytes received.
  const ByteCount request_size = options.request_size;
  const ByteCount response_size = options.response_size;
  server.SetAcceptHandler([request_size, response_size](
                              tcp::TcpConnection& conn) {
    auto pending = std::make_shared<ByteCount>(0);
    conn.SetAppDataHandler([&conn, pending, request_size, response_size](
                               ByteCount, std::span<const std::uint8_t> data,
                               bool) {
      *pending += data.size();
      while (*pending >= request_size) {
        *pending -= request_size;
        conn.SendAppData(std::make_unique<PatternSource>(9, response_size),
                         /*finish=*/false);
      }
    });
  });

  std::vector<sim::Address> client_locals(topo.client_addr.begin(),
                                          topo.client_addr.end());
  tcp::TcpClientEndpoint client(sim, net, client_locals, config,
                                options.seed * 2 + 2);

  std::vector<HandoverSample> samples;
  ByteCount response_bytes{};
  client.connection().SetAppDataHandler(
      [&](ByteCount, std::span<const std::uint8_t> data, bool) {
        response_bytes += data.size();
        // Response i completes when (i+1)*response_size bytes arrived.
        const std::size_t answered =
            static_cast<std::size_t>(response_bytes / options.response_size);
        for (std::size_t i = 0; i < samples.size() && i < answered; ++i) {
          if (!samples[i].answered) {
            samples[i].answered = true;
            samples[i].response_delay = sim.now() - samples[i].sent_time;
          }
        }
      });

  std::function<void()> send_request = [&] {
    if (sim.now() > options.end_time) return;
    samples.push_back({sim.now(), 0, false});
    client.connection().SendAppData(
        std::make_unique<PatternSource>(8, options.request_size),
        /*finish=*/false);
    sim.Schedule(options.request_interval, send_request);
  };
  client.connection().SetSecureEstablishedHandler([&] { send_request(); });
  client.Connect({topo.server_addr[0], topo.server_addr[1]});

  sim::SchedulePathFaults(sim, topo, HandoverFaults(options));
  sim.Run(options.end_time + 10 * kSecond);
  return samples;
}

}  // namespace mpq::harness
