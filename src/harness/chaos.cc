#include "harness/chaos.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/source.h"
#include "obs/qlog.h"
#include "quic/endpoint.h"
#include "sim/net.h"
#include "sim/simulator.h"

namespace mpq::harness {

namespace {

constexpr StreamId kChaosStream{3};

std::string Ms(Duration d) {
  return std::to_string(d / kMillisecond) + "ms";
}

sim::PathFault Down(TimePoint time, int path) {
  sim::PathFault fault;
  fault.time = time;
  fault.path = path;
  fault.kind = sim::LinkFault::Kind::kDown;
  return fault;
}

sim::PathFault Up(TimePoint time, int path) {
  sim::PathFault fault;
  fault.time = time;
  fault.path = path;
  fault.kind = sim::LinkFault::Kind::kUp;
  return fault;
}

}  // namespace

ChaosScenario GenerateChaosScenario(std::uint64_t seed) {
  Rng rng(seed ^ 0xC4A05C4A05ULL);
  ChaosScenario scenario;
  const int path = static_cast<int>(rng.NextBounded(2));
  switch (rng.NextBounded(6)) {
    case 0: {
      // Outage shorter than (or around) the backed-off RTO.
      const TimePoint start =
          1 * kSecond + static_cast<Duration>(rng.NextBounded(2000)) * kMillisecond;
      const Duration len =
          (50 + static_cast<Duration>(rng.NextBounded(351))) * kMillisecond;
      scenario.name = "short-outage path" + std::to_string(path) + " at " +
                      Ms(start) + " for " + Ms(len);
      scenario.faults = {Down(start, path), Up(start + len, path)};
      break;
    }
    case 1: {
      // Outage well past several RTO doublings.
      const TimePoint start =
          1 * kSecond + static_cast<Duration>(rng.NextBounded(1500)) * kMillisecond;
      const Duration len =
          1 * kSecond + static_cast<Duration>(rng.NextBounded(3001)) * kMillisecond;
      scenario.name = "long-outage path" + std::to_string(path) + " at " +
                      Ms(start) + " for " + Ms(len);
      scenario.faults = {Down(start, path), Up(start + len, path)};
      break;
    }
    case 2: {
      // Flapping path: repeated down/up cycles.
      const int cycles = 3 + static_cast<int>(rng.NextBounded(6));
      TimePoint t = 500 * kMillisecond +
                    static_cast<Duration>(rng.NextBounded(1500)) * kMillisecond;
      scenario.name = "flap path" + std::to_string(path) + " x" +
                      std::to_string(cycles) + " from " + Ms(t);
      for (int i = 0; i < cycles; ++i) {
        const Duration down_len =
            (100 + static_cast<Duration>(rng.NextBounded(401))) * kMillisecond;
        const Duration up_len =
            (200 + static_cast<Duration>(rng.NextBounded(601))) * kMillisecond;
        scenario.faults.push_back(Down(t, path));
        scenario.faults.push_back(Up(t + down_len, path));
        t += down_len + up_len;
      }
      break;
    }
    case 3: {
      // Staggered outages that overlap into a both-paths-down window.
      const TimePoint start0 =
          1 * kSecond + static_cast<Duration>(rng.NextBounded(1000)) * kMillisecond;
      const Duration len0 =
          1 * kSecond + static_cast<Duration>(rng.NextBounded(2001)) * kMillisecond;
      const TimePoint start1 =
          start0 + static_cast<Duration>(rng.NextBounded(
                       static_cast<std::uint64_t>(len0 / kMillisecond))) *
                       kMillisecond;
      const Duration len1 =
          500 * kMillisecond +
          static_cast<Duration>(rng.NextBounded(2501)) * kMillisecond;
      scenario.name = "both-down: path0 " + Ms(start0) + "+" + Ms(len0) +
                      ", path1 " + Ms(start1) + "+" + Ms(len1);
      scenario.faults = {Down(start0, 0), Up(start0 + len0, 0),
                         Down(start1, 1), Up(start1 + len1, 1)};
      break;
    }
    case 4: {
      // Gilbert–Elliott burst loss — during the handshake (start at 0)
      // or in steady state.
      const bool handshake = rng.NextBool(0.5);
      const TimePoint start =
          handshake ? 0
                    : 1 * kSecond +
                          static_cast<Duration>(rng.NextBounded(2000)) *
                              kMillisecond;
      const Duration len =
          2 * kSecond + static_cast<Duration>(rng.NextBounded(3001)) * kMillisecond;
      sim::PathFault burst;
      burst.time = start;
      burst.path = path;
      burst.kind = sim::LinkFault::Kind::kBurstLoss;
      burst.gilbert_elliott.enabled = true;
      burst.gilbert_elliott.good_to_bad =
          0.01 + 0.04 * rng.NextDouble();
      burst.gilbert_elliott.bad_to_good = 0.1 + 0.2 * rng.NextDouble();
      burst.gilbert_elliott.loss_good = 0.0;
      burst.gilbert_elliott.loss_bad = 1.0;
      sim::PathFault heal;
      heal.time = start + len;
      heal.path = path;
      heal.kind = sim::LinkFault::Kind::kLossRate;
      heal.loss_rate = 0.0;
      scenario.name = std::string("burst-loss (") +
                      (handshake ? "handshake" : "steady") + ") path" +
                      std::to_string(path) + " for " + Ms(len);
      scenario.faults = {burst, heal};
      break;
    }
    default: {
      // Mid-run reconfiguration: shrink capacity / stretch RTT, restore.
      const TimePoint start =
          1 * kSecond + static_cast<Duration>(rng.NextBounded(2000)) * kMillisecond;
      const Duration len =
          1 * kSecond + static_cast<Duration>(rng.NextBounded(3001)) * kMillisecond;
      sim::PathFault degrade;
      degrade.time = start;
      degrade.path = path;
      degrade.kind = sim::LinkFault::Kind::kReconfigure;
      degrade.capacity_mbps = 0.5 + rng.NextDouble();        // ~10-20x cut
      degrade.rtt = (100 + static_cast<Duration>(rng.NextBounded(200))) *
                    kMillisecond;
      sim::PathFault restore;
      restore.time = start + len;
      restore.path = path;
      restore.kind = sim::LinkFault::Kind::kReconfigure;
      restore.capacity_mbps = 2.0;
      restore.rtt = path == 0 ? 30 * kMillisecond : 50 * kMillisecond;
      scenario.name = "reconfigure path" + std::to_string(path) + " at " +
                      Ms(start) + " for " + Ms(len);
      scenario.faults = {degrade, restore};
      break;
    }
  }
  std::sort(scenario.faults.begin(), scenario.faults.end(),
            [](const sim::PathFault& a, const sim::PathFault& b) {
              return a.time < b.time;
            });
  return scenario;
}

namespace {

/// [start, end) window during which at least one path is known good:
/// not down, no injected loss, no burst-loss process.
struct GoodWindow {
  TimePoint start = 0;
  TimePoint end = 0;
};

/// Replays the schedule against a per-path (down, lossy) model and
/// returns the windows where the connection had a clean path. The base
/// topology is loss-free, so both paths start good.
std::vector<GoodWindow> KnownGoodWindows(const sim::FaultSchedule& faults,
                                         TimePoint horizon) {
  struct PathState {
    bool down = false;
    bool lossy = false;
  };
  PathState state[2];
  const auto good = [&state] {
    return (!state[0].down && !state[0].lossy) ||
           (!state[1].down && !state[1].lossy);
  };
  std::vector<GoodWindow> windows;
  bool was_good = true;
  TimePoint good_since = 0;
  for (const sim::PathFault& fault : faults) {
    PathState& p = state[fault.path == 0 ? 0 : 1];
    switch (fault.kind) {
      case sim::LinkFault::Kind::kDown:
        p.down = true;
        break;
      case sim::LinkFault::Kind::kUp:
        p.down = false;
        break;
      case sim::LinkFault::Kind::kLossRate:
        p.lossy = fault.loss_rate > 0.0;
        break;
      case sim::LinkFault::Kind::kBurstLoss:
        p.lossy = fault.gilbert_elliott.enabled;
        break;
      case sim::LinkFault::Kind::kReconfigure:
        break;  // slower, not broken
    }
    const bool now_good = good();
    if (was_good && !now_good) {
      if (fault.time > good_since) windows.push_back({good_since, fault.time});
    } else if (!was_good && now_good) {
      good_since = fault.time;
    }
    was_good = now_good;
  }
  if (was_good && horizon > good_since) windows.push_back({good_since, horizon});
  return windows;
}

}  // namespace

ChaosRunResult RunChaosScenario(const ChaosOptions& options,
                                const ChaosScenario& scenario) {
  ChaosRunResult result;
  result.seed = options.seed;
  result.scenario = scenario.name;

  sim::Simulator sim;
  sim::Network net(sim, Rng(options.seed ^ 0x517E0FF));
  // Fig. 2 shape, but slow (2 Mbps per path) so the default transfer
  // takes ~4 s and every scenario's faults land while data is moving;
  // mildly asymmetric RTTs so the scheduler has a preference to lose
  // when faults hit the faster path.
  std::array<sim::PathParams, 2> params;
  params[0] = {2.0, 30 * kMillisecond, 50 * kMillisecond, 0.0};
  params[1] = {2.0, 50 * kMillisecond, 50 * kMillisecond, 0.0};
  auto topo = sim::BuildTwoPathTopology(net, params);

  quic::ConnectionConfig config;
  config.multipath = true;
  config.congestion = cc::Algorithm::kOlia;
  config.scheduler = options.scheduler;
  config.idle_timeout = options.idle_timeout;

  std::ofstream qlog_out;
  std::unique_ptr<obs::QlogTracer> qlog;
  if (!options.qlog_path.empty()) {
    qlog_out.open(options.qlog_path, std::ios::trunc);
    if (qlog_out.is_open()) {
      qlog = std::make_unique<obs::QlogTracer>(qlog_out, scenario.name);
    } else {
      std::fprintf(stderr, "warning: cannot open qlog output %s\n",
                   options.qlog_path.c_str());
    }
  }
  quic::ConnectionTracer* tracer = qlog.get();

  std::vector<sim::Address> server_locals(topo.server_addr.begin(),
                                          topo.server_addr.end());
  quic::ServerEndpoint server(sim, net, server_locals, config,
                              options.seed * 2 + 1);
  server.SetAcceptHandler([tracer](quic::Connection& conn) {
    if (tracer != nullptr) conn.SetTracer(tracer);
    auto request = std::make_shared<std::string>();
    conn.SetStreamDataHandler(
        [&conn, request](StreamId id, ByteCount,
                         std::span<const std::uint8_t> data, bool fin) {
          request->append(data.begin(), data.end());
          if (fin && id == kChaosStream) {
            const ByteCount size{std::stoull(request->substr(4))};
            conn.SendOnStream(kChaosStream,
                              std::make_unique<PatternSource>(
                                  kChaosStream.value(), size));
          }
        });
  });

  std::vector<sim::Address> client_locals(topo.client_addr.begin(),
                                          topo.client_addr.end());
  quic::ClientEndpoint client(sim, net, client_locals, config,
                              options.seed * 2 + 2);

  bool finished = false;
  std::vector<TimePoint> progress;  // establishment + every data arrival
  TimePoint established_at = kTimeInfinite;
  client.connection().SetStreamDataHandler(
      [&](StreamId, ByteCount, std::span<const std::uint8_t> data, bool fin) {
        result.bytes_received += data.size();
        progress.push_back(sim.now());
        if (fin) {
          finished = true;
          result.finish_time = sim.now();
        }
      });
  client.connection().SetEstablishedHandler([&] {
    established_at = sim.now();
    progress.push_back(sim.now());
    const std::string request =
        "GET " + std::to_string(options.transfer_size.value());
    client.connection().SendOnStream(
        kChaosStream,
        std::make_unique<BufferSource>(
            std::vector<std::uint8_t>(request.begin(), request.end())));
  });

  sim::SchedulePathFaults(sim, topo, scenario.faults,
                          [&](const sim::PathFault& fault) {
                            if (tracer == nullptr) return;
                            double value = 0.0;
                            if (fault.kind == sim::LinkFault::Kind::kLossRate) {
                              value = fault.loss_rate;
                            } else if (fault.kind ==
                                       sim::LinkFault::Kind::kReconfigure) {
                              value = fault.capacity_mbps;
                            } else if (fault.kind ==
                                       sim::LinkFault::Kind::kBurstLoss) {
                              value = fault.gilbert_elliott.loss_bad;
                            }
                            tracer->OnLinkFault(sim.now(), fault.path,
                                                sim::ToString(fault.kind),
                                                value);
                          });

  client.Connect(topo.server_addr[0]);
  while (!finished && !client.connection().closed() &&
         sim.RunOne(options.time_limit)) {
  }

  result.established = established_at != kTimeInfinite;
  result.completed = finished;
  result.closed = client.connection().closed() && !finished;
  if (!finished) result.finish_time = sim.now();

  // Invariant 1: termination. Every scenario heals, so the only
  // acceptable terminal state is a completed transfer.
  if (!result.completed) {
    if (result.closed) {
      result.violations.push_back("closed before completing transfer");
    } else if (!result.established) {
      result.violations.push_back("never established");
    } else {
      result.violations.push_back(
          "hung: transfer incomplete at the time limit");
    }
  }

  // Invariant 2: no stall while a usable path exists. A progress gap
  // may cross an outage, but once a clean path has been up for
  // `recovery_grace`, another `stall_limit` without progress means
  // recovery lost the plot (runaway RTO backoff, stranded path, ...).
  const TimePoint horizon = result.completed ? result.finish_time : sim.now();
  if (result.established) {
    progress.push_back(horizon);
    std::sort(progress.begin(), progress.end());
    const auto windows = KnownGoodWindows(scenario.faults, horizon);
    for (std::size_t i = 0; i + 1 < progress.size(); ++i) {
      const TimePoint gap_start = progress[i];
      const TimePoint gap_end = progress[i + 1];
      if (gap_end - gap_start <= options.stall_limit) continue;
      for (const GoodWindow& window : windows) {
        const TimePoint usable_from =
            std::max(gap_start, window.start + options.recovery_grace);
        const TimePoint usable_to = std::min(gap_end, window.end);
        if (usable_to > usable_from &&
            usable_to - usable_from > options.stall_limit) {
          result.violations.push_back(
              "stalled " + Ms(usable_to - usable_from) + " from " +
              Ms(usable_from) + " with a usable path");
          break;
        }
      }
    }
  }
  return result;
}

ChaosRunResult RunChaosOne(const ChaosOptions& options) {
  return RunChaosScenario(options, GenerateChaosScenario(options.seed));
}

ChaosSweepResult RunChaos(const ChaosOptions& options) {
  ChaosSweepResult sweep;
  sweep.runs.reserve(static_cast<std::size_t>(options.runs));
  for (int i = 0; i < options.runs; ++i) {
    ChaosOptions one = options;
    one.seed = options.seed + static_cast<std::uint64_t>(i);
    sweep.runs.push_back(RunChaosOne(one));
    if (!sweep.runs.back().violations.empty()) ++sweep.violation_runs;
  }
  return sweep;
}

}  // namespace mpq::harness
