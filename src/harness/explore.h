// Bounded state-space exploration of the MPQUIC event machine
// (docs/MODEL_CHECKING.md). Where the chaos sweep and the fuzzer *sample*
// schedules, the explorer *enumerates* them: a depth-first search over
// every ordering of commutable event deliveries and timers (plus
// adversarial drop/duplicate within configurable budgets), checking the
// full MPQ_AUDIT invariant set, liveness and byte consistency at every
// reached state, and pruning with the canonical Connection::StateDigest
// plus a sleep-set partial-order reduction for independent deliveries.
//
// The search is stateless (CHESS-style): protocol state is never
// checkpointed. A state is identified by the choice sequence that
// produced it, and backtracking re-executes the prefix from a fresh
// scenario — cheap at the depths this tool explores, and the only
// approach that needs zero copy support from the protocol code.
//
// Everything here is deterministic: the same options explore the same
// tree, and any violation is reported as a replayable choice trace
// (tools/mpq_model --replay).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace mpq::harness {

// ---------------------------------------------------------------------------
// The model interface: anything with enumerable choices, a state digest
// and invariants. Implemented by the QUIC scenarios below and by the
// deliberately-buggy toy machines of the self-test corpus.

/// What a choice does to its target event.
enum class ChoiceAction : std::uint8_t { kFire = 0, kDrop = 1, kDup = 2 };

const char* ToString(ChoiceAction action);

/// One enabled transition of the model, in the model's canonical order.
struct Choice {
  /// Position in the Enabled() list (the stable identity a recorded
  /// trace stores — Enabled() is deterministic per state).
  std::uint32_t index = 0;
  ChoiceAction action = ChoiceAction::kFire;
  /// Stable human-readable identity of the *transition* (not the state):
  /// the same pending event keeps the same label across sibling
  /// branches, which is what sleep sets match on.
  std::string label;
  /// Independence class: two kFire choices with different non-zero
  /// scopes are candidates for partial-order reduction. 0 = dependent
  /// with everything.
  std::uint32_t scope = 0;
  /// Opaque handle for Execute (the simulator event id).
  std::uint64_t ref = 0;
};

class Model {
 public:
  virtual ~Model() = default;

  /// Tear down and rebuild the initial state. Must be deterministic.
  virtual void Reset() = 0;
  /// The enabled choices at the current state, canonically ordered
  /// (including any adversarial drop/dup variants still within budget).
  virtual std::vector<Choice> Enabled() = 0;
  /// Execute one choice valid at the current state — from the latest
  /// Enabled() call, or recorded at an earlier visit of the identical
  /// state (the explorer re-executes prefixes when backtracking).
  virtual void Execute(const Choice& choice) = 0;
  /// Canonical digest of the current state (equal ⇒ explored-equivalent).
  virtual std::uint64_t Digest() = 0;
  /// Validate all invariants; on failure append diagnostics and return
  /// false.
  virtual bool CheckInvariants(std::string* why) = 0;
  /// Liveness target: a maximal trace must reach this.
  virtual bool GoalReached() = 0;
  /// May `a` and `b` be commuted without changing the reachable states?
  /// Default: only kFire choices with distinct non-zero scopes.
  virtual bool Independent(const Choice& a, const Choice& b) const;
};

// ---------------------------------------------------------------------------
// Exploration

struct ExploreOptions {
  /// Depth bound: maximal traces longer than this are counted as
  /// truncated, not explored further.
  int max_steps = 256;
  /// Sleep-set partial-order reduction on/off (off explores the full
  /// tree — the self test uses both to cross-check verdicts).
  bool por = true;
  /// Prune states whose digest was already reached at the same or a
  /// shallower depth.
  bool prune_digests = true;
  /// Before the DFS, execute one trace twice and require identical
  /// digest sequences (catches hidden nondeterminism: hash-order
  /// iteration, uninitialized reads, state leaking across runs).
  bool check_determinism = true;
  /// Safety valve on the number of maximal traces.
  std::uint64_t max_traces = 1u << 20;
  /// Replay budget for greedy counterexample shrinking (0 = no shrink).
  int shrink_budget = 200;
};

/// One recorded decision — the unit of a replayable counterexample.
struct TraceStep {
  std::uint32_t index = 0;
  ChoiceAction action = ChoiceAction::kFire;
  std::string label;  // diagnostic only; replay goes by index
};

enum class ViolationKind { kInvariant, kLiveness, kDeterminism };

const char* ToString(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::kInvariant;
  std::string message;
  /// Choice trace from the initial state to the violating state
  /// (greedy-shrunk when ExploreOptions::shrink_budget allows).
  std::vector<TraceStep> trace;
  /// Digest after Reset and after every step of `trace` — the replay
  /// must reproduce this sequence exactly.
  std::vector<std::uint64_t> digests;
};

struct ExploreStats {
  std::uint64_t maximal_traces = 0;  ///< traces run to completion/goal
  std::uint64_t truncated_traces = 0;  ///< traces cut by max_steps
  std::uint64_t transitions = 0;     ///< Execute() calls, replays included
  std::uint64_t distinct_states = 0;  ///< unique digests reached
  std::uint64_t pruned_digest = 0;   ///< states cut by digest pruning
  std::uint64_t pruned_sleep = 0;    ///< choices skipped by sleep sets
  bool exhausted = true;             ///< false iff max_traces tripped
};

struct ExploreResult {
  ExploreStats stats;
  std::vector<Violation> violations;
};

/// Run the bounded DFS. Stops at the first violation (which is then
/// shrunk); a violation-free result means every schedule within the
/// bounds satisfies every invariant, reaches the goal, and replays
/// deterministically.
ExploreResult Explore(Model& model, const ExploreOptions& options);

/// Re-execute a recorded trace step by step. Stops early at the first
/// invariant violation or out-of-range index.
struct ReplayOutcome {
  bool valid = true;           ///< every index was in range
  bool invariants_ok = true;
  bool goal_reached = false;
  /// Ended with nothing enabled and the goal unreached (the liveness
  /// failure shape).
  bool deadlocked = false;
  std::string message;
  std::size_t steps_executed = 0;
  std::vector<std::uint64_t> digests;  ///< initial + one per step
  /// The steps actually executed, with labels/actions re-read from the
  /// live enabled sets (canonical form of the input trace).
  std::vector<TraceStep> executed;
};

ReplayOutcome Replay(Model& model, const std::vector<TraceStep>& trace);

// ---------------------------------------------------------------------------
// QUIC scenarios

struct ScenarioOptions {
  /// "handshake", "transfer" or "handover".
  std::string name = "handshake";
  std::uint64_t seed = 1;
  /// transfer/handover: response body size (kept tiny — every packet
  /// multiplies the schedule space).
  ByteCount transfer_bytes{1200};
  /// Adversarial budgets: how many deliveries may be dropped/duplicated
  /// per trace.
  int max_drops = 0;
  int max_dups = 0;
  /// Commutability window: events within this much of the earliest
  /// pending event are considered concurrently enabled (the jitter the
  /// adversary may inject to reorder them).
  Duration commute_window = 2 * kMillisecond;
  /// Branching bound: at most this many of the earliest enabled events
  /// are considered per step (each may add drop/dup variants).
  int branch = 3;
  /// handover: path 0 goes down this long *after* the connection is
  /// established (relative, so adversarial handshake delays cannot make
  /// the goal unsatisfiable by killing the only handshake path).
  TimePoint fault_time = 30 * kMillisecond;
  /// When non-empty, attach a qlog tracer writing NDJSON here (replay
  /// diagnostics; by design this must not perturb any digest).
  std::string qlog_path;
};

/// Build the scenario model ("handshake" | "transfer" | "handover").
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<Model> MakeQuicScenarioModel(const ScenarioOptions& options);

// ---------------------------------------------------------------------------
// Self-test corpus: deliberately-buggy toy state machines the explorer
// must catch (and clean ones it must pass). tools/mpq_model --selftest.

struct SelfTestCase {
  std::string name;
  std::function<std::unique_ptr<Model>()> make;
  ExploreOptions options;
  /// Expected outcome: no violation, or a violation of `expected_kind`.
  bool expect_violation = false;
  ViolationKind expected_kind = ViolationKind::kInvariant;
};

std::vector<SelfTestCase> SelfTestCorpus();

/// Run the whole corpus plus the PoR cross-check and the
/// shrink-and-replay round-trip. Returns the number of failures and
/// appends one line per check to `report`.
int RunSelfTest(std::string& report);

}  // namespace mpq::harness
