// Experiment runner: executes one file transfer (the §4.1/§4.2 workload)
// or one handover session (§4.3) for a given protocol over a two-path
// scenario, and returns the metrics the paper's figures are built from.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cc/congestion.h"
#include "common/types.h"
#include "quic/connection.h"
#include "sim/topology.h"
#include "tcpsim/connection.h"

namespace mpq::harness {

/// The four compared protocols (§4.1).
enum class Protocol { kTcp, kQuic, kMptcp, kMpquic };

std::string ToString(Protocol protocol);
bool IsMultipath(Protocol protocol);
bool IsQuicFamily(Protocol protocol);

struct TransferOptions {
  ByteCount transfer_size{20 * 1024 * 1024};  // §4.1: GET 20 MB
  /// Which of the scenario's two paths carries the handshake (the paper
  /// varies the initial path, §4.1). Single-path protocols run entirely
  /// on this path.
  int initial_path = 0;
  std::uint64_t seed = 1;
  /// Wall-clock guard (simulated): runs not finished by then count as
  /// failed (goodput measured on the bytes that did arrive).
  TimePoint time_limit = 600 * kSecond;

  // -- ablation knobs (defaults = the paper's configuration) -------------
  quic::SchedulerType quic_scheduler = quic::SchedulerType::kLowestRtt;
  bool quic_window_update_on_all_paths = true;
  bool quic_send_paths_frame = true;
  cc::Algorithm multipath_congestion = cc::Algorithm::kOlia;
  int tcp_sack_blocks = 3;
  bool tcp_orp = true;
  bool tcp_use_tls = true;
  /// Pre-RACK lost-retransmission blind spot (Linux 4.1 default).
  bool tcp_lost_retransmission_needs_rto = true;
  bool quic_pacing = true;

  // -- observability (QUIC family only) ----------------------------------
  /// When non-empty, write an NDJSON qlog trace of the data-sending
  /// (server) connection to this file (truncated per run).
  std::string qlog_path;
  /// When non-empty, append one NDJSON metrics row per run to this file:
  /// {"label","protocol","seed","completed","time_s","goodput_mbps",
  ///  "metrics":{<MetricsRegistry snapshot>}}.
  std::string metrics_path;
  /// Label stamped into the trace preamble and the metrics row
  /// (scenario name, sweep point, ...).
  std::string metrics_label;
};

struct TransferResult {
  bool completed = false;
  /// First connection packet to last payload byte (the paper's metric).
  Duration completion_time = 0;
  ByteCount bytes_received{};
  /// Application goodput over the measured interval.
  double goodput_mbps = 0.0;
  std::uint64_t data_integrity_errors = 0;
};

/// Run one transfer. Deterministic in (protocol, paths, options).
TransferResult RunTransfer(Protocol protocol,
                           const std::array<sim::PathParams, 2>& paths,
                           const TransferOptions& options);

/// The paper's 3-repetitions-median (three derived seeds, median by
/// completion time; failed runs sort last). Repetition r runs with
/// seed = options.seed + 7919 * r.
TransferResult MedianTransfer(Protocol protocol,
                              const std::array<sim::PathParams, 2>& paths,
                              TransferOptions options, int repetitions = 3);

/// The reduction step of MedianTransfer on its own: sort by (completed,
/// completion_time) — failed runs last — and return the middle element.
/// For callers that execute the repetitions themselves (the parallel
/// sweep harness fans them out as independent work items).
TransferResult MedianResult(std::vector<TransferResult> results);

/// Experimental aggregation benefit EBen(C) of §4.1:
///   (Gm - Gmax) / (G1 + G2 - Gmax)  if Gm >= Gmax,
///   (Gm - Gmax) / Gmax              otherwise.
/// 0 = as good as the best single path, 1 = full aggregation, -1 = total
/// failure; >1 is possible experimentally.
double ExperimentalAggregationBenefit(double multipath_goodput,
                                      double single_path0_goodput,
                                      double single_path1_goodput);

// ---------------------------------------------------------------------------
// Handover workload (Fig. 11)

struct HandoverOptions {
  /// Paper setup: initial path 15 ms RTT, second path 25 ms RTT; the
  /// initial path becomes completely lossy at t = 3 s.
  Duration initial_path_rtt = 15 * kMillisecond;
  Duration second_path_rtt = 25 * kMillisecond;
  double capacity_mbps = 10.0;
  ByteCount request_size{750};
  ByteCount response_size{750};
  Duration request_interval = 400 * kMillisecond;
  TimePoint failure_time = 3 * kSecond;
  TimePoint end_time = 15 * kSecond;
  std::uint64_t seed = 1;
  /// Fault schedule driving the path failure (sim/topology.h). Empty =
  /// the paper's scenario: path 0 becomes completely lossy at
  /// `failure_time` (a single kLossRate fault at rate 1.0). Supply your
  /// own schedule to run the same workload under arbitrary outages,
  /// flaps or burst loss — the chaos harness does exactly that.
  sim::FaultSchedule faults;
  bool send_paths_frame = true;  // ablation: §4.3's RTO-avoidance hint
  /// Run single-path QUIC with connection migration (the "hard handover"
  /// of §1) instead of MPQUIC — the extension comparison.
  bool single_path_migration = false;
  /// Scheduler for the MPQUIC variant (kRedundant duplicates every
  /// request on both paths: zero-interruption handover at 2x cost).
  quic::SchedulerType scheduler = quic::SchedulerType::kLowestRtt;
  /// Observability (mirrors TransferOptions): when set, a qlog NDJSON
  /// trace / one metrics-snapshot JSON line is written for the client
  /// connection — the vantage that measures response delay. The metrics
  /// snapshot includes the per-path packet-lifecycle latency histograms
  /// ("path.N.lifecycle.acked_us"), which is how the handover's
  /// before/after-failure latency shift is quantified without a trace.
  std::string qlog_path;
  std::string metrics_path;
  std::string metrics_label = "mpq-handover";
};

struct HandoverSample {
  TimePoint sent_time = 0;
  Duration response_delay = 0;
  bool answered = false;
};

/// Run the request/response handover session over MPQUIC and return one
/// sample per request (the series of Fig. 11).
std::vector<HandoverSample> RunQuicHandover(const HandoverOptions& options);

/// Same workload over MPTCP (extension: the paper shows only MPQUIC).
std::vector<HandoverSample> RunMptcpHandover(const HandoverOptions& options);

}  // namespace mpq::harness
