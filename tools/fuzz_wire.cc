// libFuzzer harness for the wire parser — the same external input
// surface tests/fuzz_mutation_test.cc covers with deterministic
// mutation fuzzing, wired up for coverage-guided search. One input
// exercises all three decoder entry points (DecodeFrame, DecodePayload,
// DecodeHeader); the oracle is crash-freedom plus the mutation test's
// cheap consistency checks (a decoded frame must re-encode to exactly
// FrameWireSize bytes, a decoded header must be self-consistent).
//
// Built by -DMPQ_LIBFUZZER=ON. On a toolchain with -fsanitize=fuzzer
// (clang) this is a real libFuzzer binary; elsewhere (the baseline
// container is GCC) CMake defines MPQ_FUZZ_STANDALONE and this file
// supplies a main() that replays corpus files once each, silently
// ignoring libFuzzer-style "-flag" arguments — so tools/ci.sh runs the
// identical command either way and the harness plus seed corpus stay
// compiled and exercised even where libFuzzer is unavailable.
//
// Regenerate the seed corpus (standalone build only):
//   build-fuzz/tools/fuzz_wire --write-seeds tools/fuzz_corpus/wire
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "common/buf.h"
#include "common/types.h"
#include "quic/wire.h"

namespace {

void Require(bool ok) {
  if (!ok) std::abort();
}

void FuzzWire(std::span<const std::uint8_t> bytes) {
  using namespace mpq;        // NOLINT
  using namespace mpq::quic;  // NOLINT
  {
    BufReader reader(bytes);
    Frame frame;
    if (DecodeFrame(reader, frame)) {
      BufWriter reencoded;
      EncodeFrame(frame, reencoded);
      Require(reencoded.size() == FrameWireSize(frame));
    }
  }
  {
    std::vector<Frame> frames;
    if (DecodePayload(bytes, frames)) {
      for (const Frame& frame : frames) {
        BufWriter reencoded;
        EncodeFrame(frame, reencoded);
        Require(reencoded.size() == FrameWireSize(frame));
      }
    }
  }
  {
    BufReader reader(bytes);
    ParsedHeader parsed;
    if (DecodeHeader(reader, parsed)) {
      Require(parsed.header_size >= parsed.pn_length);
      Require(parsed.header_size <= bytes.size());
      (void)DecodePacketNumber(PacketNumber{1000}, parsed.header.packet_number,
                               parsed.pn_length);
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzWire(std::span<const std::uint8_t>(data, size));
  return 0;
}

#ifdef MPQ_FUZZ_STANDALONE

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>

namespace {

namespace fs = std::filesystem;

/// The checked-in seeds: one representative encoding per wire surface,
/// handcrafted and fully deterministic so regeneration is a no-op diff.
void WriteSeeds(const fs::path& dir) {
  using namespace mpq;        // NOLINT
  using namespace mpq::quic;  // NOLINT
  fs::create_directories(dir);
  const auto write = [&dir](const char* name, const BufWriter& writer) {
    std::ofstream out(dir / name, std::ios::binary);
    out.write(reinterpret_cast<const char*>(writer.data().data()),
              static_cast<std::streamsize>(writer.size()));
  };

  {  // A mid-transfer STREAM frame with payload and fin.
    StreamFrame frame;
    frame.stream_id = StreamId{3};
    frame.offset = ByteCount{1200};
    frame.fin = true;
    for (std::uint8_t i = 0; i < 32; ++i) frame.data.push_back(i);
    BufWriter writer;
    EncodeFrame(frame, writer);
    write("stream", writer);
  }
  {  // A multi-range ACK for path 1.
    AckFrame frame;
    frame.path_id = PathId{1};
    frame.ack_delay = 500;
    frame.ranges.push_back({PacketNumber{7}, PacketNumber{9}});
    frame.ranges.push_back({PacketNumber{1}, PacketNumber{4}});
    BufWriter writer;
    EncodeFrame(frame, writer);
    write("ack", writer);
  }
  {  // Flow control trio as one payload: WINDOW_UPDATE, BLOCKED, PING.
    BufWriter writer;
    WindowUpdateFrame wu;
    wu.stream_id = StreamId{0};
    wu.max_data = ByteCount{1 << 20};
    EncodeFrame(wu, writer);
    BlockedFrame blocked;
    blocked.stream_id = StreamId{3};
    EncodeFrame(blocked, writer);
    EncodeFrame(PingFrame{}, writer);
    write("flow_control", writer);
  }
  {  // Path management pair: PATHS status + ADD_ADDRESS/REMOVE_ADDRESS.
    BufWriter writer;
    PathsFrame paths;
    paths.paths.push_back({PathId{0}, PathStatus::kActive, 20000});
    paths.paths.push_back({PathId{1}, PathStatus::kPotentiallyFailed, 35000});
    EncodeFrame(paths, writer);
    AddAddressFrame add;
    add.addresses.push_back({2, 0});
    add.addresses.push_back({2, 1});
    EncodeFrame(add, writer);
    RemoveAddressFrame remove;
    remove.addresses.push_back({2, 1});
    EncodeFrame(remove, writer);
    write("path_mgmt", writer);
  }
  {  // CHLO with a full-size nonce.
    HandshakeFrame frame;
    frame.message = HandshakeMessageType::kChlo;
    for (std::uint8_t i = 0; i < 16; ++i) frame.nonce.push_back(i);
    BufWriter writer;
    EncodeFrame(frame, writer);
    write("chlo", writer);
  }
  {  // Teardown pair: RST_STREAM then CONNECTION_CLOSE.
    BufWriter writer;
    RstStreamFrame rst;
    rst.stream_id = StreamId{3};
    rst.error_code = 7;
    rst.final_offset = ByteCount{4096};
    EncodeFrame(rst, writer);
    ConnectionCloseFrame close;
    close.error_code = 1;
    close.reason = "seed";
    EncodeFrame(close, writer);
    write("teardown", writer);
  }
  {  // A full multipath packet header ahead of a tiny payload.
    PacketHeader header;
    header.cid = 0xC1D;
    header.multipath = true;
    header.path_id = PathId{1};
    header.packet_number = PacketNumber{300};
    BufWriter writer;
    EncodeHeader(header, PacketNumber{295}, writer);
    EncodeFrame(PingFrame{}, writer);
    write("header", writer);
  }
}

int ReplayFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz_wire: cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--write-seeds" && i + 1 < argc) {
      WriteSeeds(argv[++i]);
      std::printf("fuzz_wire: seed corpus written\n");
      continue;
    }
    // libFuzzer-style flags (-max_total_time=30, -seed=1, ...): ignore,
    // so the same ci.sh command works for both builds of this binary.
    if (!arg.empty() && arg.front() == '-') continue;
    inputs.emplace_back(arg);
  }
  std::size_t replayed = 0;
  for (const fs::path& input : inputs) {
    if (fs::is_directory(input)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::directory_iterator(input)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const fs::path& file : files) {
        if (ReplayFile(file) != 0) return 1;
        ++replayed;
      }
    } else {
      if (ReplayFile(input) != 0) return 1;
      ++replayed;
    }
  }
  std::printf("fuzz_wire standalone: replayed %zu corpus inputs OK\n",
              replayed);
  return 0;
}

#endif  // MPQ_FUZZ_STANDALONE
