// mpq_experiment — scriptable experiment runner.
//
// Runs one transfer per (protocol × scenario-line) and prints a CSV row,
// so downstream users can sweep custom scenario matrices without writing
// C++. Scenario lines come from a file (or stdin with "-"), one scenario
// per line:
//
//   cap0_mbps rtt0_ms queue0_ms loss0_pct cap1_mbps rtt1_ms queue1_ms loss1_pct
//
// Lines starting with '#' are comments. Example:
//
//   $ cat > scenarios.txt <<EOF
//   10 30 50 0    4 80 50 0
//   10 30 50 1.0  4 80 50 1.0
//   EOF
//   $ mpq_experiment --scenarios scenarios.txt --size 20971520 --reps 3
//
// Output columns:
//   scenario,protocol,initial_path,completed,time_s,goodput_mbps
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.h"

namespace {

using namespace mpq;
using namespace mpq::harness;

struct Options {
  std::string scenario_file;
  ByteCount size = ByteCount{20 * 1024 * 1024};
  int reps = 1;
  std::uint64_t seed = 1;
  bool both_initial_paths = false;
  std::vector<Protocol> protocols = {Protocol::kTcp, Protocol::kQuic,
                                     Protocol::kMptcp, Protocol::kMpquic};
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: mpq_experiment --scenarios FILE|- [--size BYTES] [--reps N]\n"
      "                      [--seed N] [--both-initial-paths]\n"
      "                      [--protocols tcp,quic,mptcp,mpquic]\n"
      "scenario line: cap0 rtt0_ms q0_ms loss0%% cap1 rtt1_ms q1_ms loss1%%\n");
}

bool ParseProtocols(const std::string& list, std::vector<Protocol>& out) {
  out.clear();
  std::stringstream stream(list);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token == "tcp") {
      out.push_back(Protocol::kTcp);
    } else if (token == "quic") {
      out.push_back(Protocol::kQuic);
    } else if (token == "mptcp") {
      out.push_back(Protocol::kMptcp);
    } else if (token == "mpquic") {
      out.push_back(Protocol::kMpquic);
    } else {
      std::fprintf(stderr, "unknown protocol '%s'\n", token.c_str());
      return false;
    }
  }
  return !out.empty();
}

bool ParseScenarioLine(const std::string& line,
                       std::array<sim::PathParams, 2>& paths) {
  std::stringstream stream(line);
  double cap[2], rtt_ms[2], queue_ms[2], loss_pct[2];
  for (int i = 0; i < 2; ++i) {
    if (!(stream >> cap[i] >> rtt_ms[i] >> queue_ms[i] >> loss_pct[i])) {
      return false;
    }
  }
  for (int i = 0; i < 2; ++i) {
    if (cap[i] <= 0 || rtt_ms[i] < 0 || queue_ms[i] < 0 || loss_pct[i] < 0) {
      return false;
    }
    paths[i].capacity_mbps = cap[i];
    paths[i].rtt = MillisToDuration(rtt_ms[i]);
    paths[i].max_queue_delay = MillisToDuration(queue_ms[i]);
    paths[i].random_loss_rate = loss_pct[i] / 100.0;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenarios") == 0 && i + 1 < argc) {
      options.scenario_file = argv[++i];
    } else if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      options.size = ByteCount{std::strtoull(argv[++i], nullptr, 10)};
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      options.reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--both-initial-paths") == 0) {
      options.both_initial_paths = true;
    } else if (std::strcmp(argv[i], "--protocols") == 0 && i + 1 < argc) {
      if (!ParseProtocols(argv[++i], options.protocols)) return 2;
    } else {
      Usage();
      return 2;
    }
  }
  if (options.scenario_file.empty()) {
    Usage();
    return 2;
  }

  std::ifstream file;
  std::istream* input = &std::cin;
  if (options.scenario_file != "-") {
    file.open(options.scenario_file);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n",
                   options.scenario_file.c_str());
      return 1;
    }
    input = &file;
  }

  std::printf("scenario,protocol,initial_path,completed,time_s,goodput_mbps\n");
  std::string line;
  int index = 0;
  int bad_lines = 0;
  while (std::getline(*input, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::array<sim::PathParams, 2> paths;
    if (!ParseScenarioLine(line, paths)) {
      std::fprintf(stderr, "skipping malformed line: %s\n", line.c_str());
      ++bad_lines;
      continue;
    }
    const int initial_count = options.both_initial_paths ? 2 : 1;
    for (Protocol protocol : options.protocols) {
      for (int initial = 0; initial < initial_count; ++initial) {
        TransferOptions run;
        run.transfer_size = options.size;
        run.seed = options.seed + 7919ULL * index;
        run.initial_path = initial;
        run.time_limit = 4000 * kSecond;
        const TransferResult result =
            MedianTransfer(protocol, paths, run, options.reps);
        std::printf("%d,%s,%d,%d,%.3f,%.3f\n", index,
                    ToString(protocol).c_str(), initial, result.completed,
                    DurationToSeconds(result.completion_time),
                    result.goodput_mbps);
      }
    }
    ++index;
  }
  return bad_lines == 0 ? 0 : 1;
}
