#!/usr/bin/env python3
"""Terminal CDF plotter for the CSV series the figure benches emit.

Usage:
    bench_fig3_lowbdp_noloss --csv out/
    tools/plot_cdf.py out/cdf_*.csv

Renders each CDF as an ASCII plot (log-x like the paper's ratio figures
when --log is given), overlaying multiple files with distinct markers.
No third-party dependencies.
"""

import argparse
import csv
import math
import os
import sys

WIDTH = 72
HEIGHT = 20
MARKERS = "*o+x#@"


def read_cdf(path):
    points = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            points.append(
                (float(row["value"]), float(row["cumulative_probability"]))
            )
    return points


def render(series, log_x):
    values = [v for points, _ in series for v, _ in points]
    if not values:
        print("no data")
        return
    lo, hi = min(values), max(values)
    if log_x:
        lo = max(lo, 1e-9)
        to_x = lambda v: math.log(max(v, lo))
    else:
        to_x = lambda v: v
    x_lo, x_hi = to_x(lo), to_x(hi)
    span = (x_hi - x_lo) or 1.0

    grid = [[" "] * (WIDTH + 1) for _ in range(HEIGHT + 1)]
    for (points, marker) in series:
        for value, prob in points:
            col = round((to_x(value) - x_lo) / span * WIDTH)
            row = HEIGHT - round(prob * HEIGHT)
            grid[row][col] = marker

    for i, line in enumerate(grid):
        prob = 1.0 - i / HEIGHT
        print(f"{prob:5.2f} |" + "".join(line))
    print("      +" + "-" * (WIDTH + 1))
    left = f"{lo:.3g}"
    right = f"{hi:.3g}"
    mid = f"{(math.exp((x_lo + x_hi) / 2) if log_x else (lo + hi) / 2):.3g}"
    pad = WIDTH - len(left) - len(mid) - len(right)
    print(
        "       "
        + left
        + " " * (pad // 2)
        + mid
        + " " * (pad - pad // 2)
        + right
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="cdf_*.csv files")
    parser.add_argument(
        "--log", action="store_true", help="logarithmic x axis"
    )
    args = parser.parse_args()

    series = []
    for i, path in enumerate(args.files):
        marker = MARKERS[i % len(MARKERS)]
        points = read_cdf(path)
        series.append((points, marker))
        print(f"  {marker} = {os.path.basename(path)} (n={len(points)})")
    print()
    render(series, args.log)
    return 0


if __name__ == "__main__":
    sys.exit(main())
