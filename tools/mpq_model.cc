// mpq_model — bounded state-space exploration of the MPQUIC event
// machine (docs/MODEL_CHECKING.md).
//
//   mpq_model --scenario handshake          exhaustive bounded exploration
//   mpq_model --scenario transfer --drops 1 ...with one adversarial drop
//   mpq_model --selftest                    seeded-bug corpus + PoR checks
//   mpq_model --replay trace.json --qlog t.qlog
//                                           re-run a counterexample
//
// Exploration exits 0 iff the bounded schedule space contains no
// invariant, liveness or determinism violation; a violation is written
// as a replayable JSON counterexample (--out, default mpq_model_cex.json
// only when explicitly requested). Replay exits 0 iff the recorded trace
// reproduces the recorded digest sequence exactly.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/explore.h"
#include "obs/json.h"

namespace {

using mpq::harness::ChoiceAction;
using mpq::harness::ExploreOptions;
using mpq::harness::ExploreResult;
using mpq::harness::ScenarioOptions;
using mpq::harness::TraceStep;
using mpq::harness::Violation;

std::string HexDigest(std::uint64_t digest) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

bool ParseAction(const std::string& text, ChoiceAction& out) {
  if (text == "fire") {
    out = ChoiceAction::kFire;
  } else if (text == "drop") {
    out = ChoiceAction::kDrop;
  } else if (text == "dup") {
    out = ChoiceAction::kDup;
  } else {
    return false;
  }
  return true;
}

std::string WriteCounterexample(const ScenarioOptions& scenario,
                                const Violation& violation) {
  mpq::obs::JsonWriter w;
  w.BeginObject();
  w.Key("tool").String("mpq_model");
  w.Key("scenario");
  w.BeginObject();
  w.Key("name").String(scenario.name);
  w.Key("seed").UInt(scenario.seed);
  w.Key("transfer_bytes").UInt(scenario.transfer_bytes.value());
  w.Key("max_drops").Int(scenario.max_drops);
  w.Key("max_dups").Int(scenario.max_dups);
  w.Key("commute_window_us").Int(scenario.commute_window);
  w.Key("branch").Int(scenario.branch);
  w.Key("fault_time_us").Int(scenario.fault_time);
  w.EndObject();
  w.Key("violation");
  w.BeginObject();
  w.Key("kind").String(mpq::harness::ToString(violation.kind));
  w.Key("message").String(violation.message);
  w.EndObject();
  w.Key("trace");
  w.BeginArray();
  for (const TraceStep& step : violation.trace) {
    w.BeginObject();
    w.Key("index").UInt(step.index);
    w.Key("action").String(mpq::harness::ToString(step.action));
    w.Key("label").String(step.label);
    w.EndObject();
  }
  w.EndArray();
  // Digests as hex strings: they use all 64 bits, beyond JSON's exact
  // double range.
  w.Key("digests");
  w.BeginArray();
  for (const std::uint64_t digest : violation.digests) {
    w.String(HexDigest(digest));
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

struct LoadedTrace {
  ScenarioOptions scenario;
  std::vector<TraceStep> trace;
  std::vector<std::uint64_t> digests;
  std::string violation_kind;
};

bool LoadCounterexample(const std::string& path, LoadedTrace& out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "mpq_model: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = mpq::obs::JsonValue::Parse(buffer.str());
  if (!doc) {
    std::fprintf(stderr, "mpq_model: %s is not valid JSON\n", path.c_str());
    return false;
  }
  const auto* scenario = doc->Find("scenario");
  const auto* trace = doc->Find("trace");
  if (scenario == nullptr || trace == nullptr || !trace->is_array()) {
    std::fprintf(stderr, "mpq_model: %s is missing scenario/trace\n",
                 path.c_str());
    return false;
  }
  if (const auto* v = scenario->Find("name")) out.scenario.name = v->AsString();
  if (const auto* v = scenario->Find("seed")) {
    out.scenario.seed = static_cast<std::uint64_t>(v->AsInt());
  }
  if (const auto* v = scenario->Find("transfer_bytes")) {
    out.scenario.transfer_bytes =
        mpq::ByteCount{static_cast<std::uint64_t>(v->AsInt())};
  }
  if (const auto* v = scenario->Find("max_drops")) {
    out.scenario.max_drops = static_cast<int>(v->AsInt());
  }
  if (const auto* v = scenario->Find("max_dups")) {
    out.scenario.max_dups = static_cast<int>(v->AsInt());
  }
  if (const auto* v = scenario->Find("commute_window_us")) {
    out.scenario.commute_window = v->AsInt();
  }
  if (const auto* v = scenario->Find("branch")) {
    out.scenario.branch = static_cast<int>(v->AsInt());
  }
  if (const auto* v = scenario->Find("fault_time_us")) {
    out.scenario.fault_time = v->AsInt();
  }
  for (const auto& entry : trace->AsArray()) {
    TraceStep step;
    if (const auto* v = entry.Find("index")) {
      step.index = static_cast<std::uint32_t>(v->AsInt());
    }
    std::string action = "fire";
    if (const auto* v = entry.Find("action")) action = v->AsString();
    if (!ParseAction(action, step.action)) {
      std::fprintf(stderr, "mpq_model: unknown action '%s' in %s\n",
                   action.c_str(), path.c_str());
      return false;
    }
    if (const auto* v = entry.Find("label")) step.label = v->AsString();
    out.trace.push_back(std::move(step));
  }
  if (const auto* digests = doc->Find("digests")) {
    for (const auto& entry : digests->AsArray()) {
      out.digests.push_back(
          std::strtoull(entry.AsString().c_str(), nullptr, 16));
    }
  }
  if (const auto* violation = doc->Find("violation")) {
    if (const auto* v = violation->Find("kind")) {
      out.violation_kind = v->AsString();
    }
  }
  return true;
}

int RunReplay(const std::string& path, const std::string& qlog_path) {
  LoadedTrace loaded;
  if (!LoadCounterexample(path, loaded)) return 2;
  loaded.scenario.qlog_path = qlog_path;

  std::unique_ptr<mpq::harness::Model> model;
  try {
    model = mpq::harness::MakeQuicScenarioModel(loaded.scenario);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mpq_model: %s\n", e.what());
    return 2;
  }
  const auto outcome = mpq::harness::Replay(*model, loaded.trace);

  std::printf("replay: %s scenario=%s steps=%zu/%zu\n", path.c_str(),
              loaded.scenario.name.c_str(), outcome.steps_executed,
              loaded.trace.size());
  for (std::size_t i = 0; i < outcome.executed.size(); ++i) {
    const TraceStep& step = outcome.executed[i];
    std::printf("  step %2zu: [%u] %s %s -> %s\n", i + 1, step.index,
                mpq::harness::ToString(step.action), step.label.c_str(),
                i + 1 < outcome.digests.size()
                    ? HexDigest(outcome.digests[i + 1]).c_str()
                    : "?");
  }
  if (!outcome.invariants_ok) {
    std::printf("invariant violation reproduced:\n%s", outcome.message.c_str());
  } else if (outcome.deadlocked) {
    std::printf("liveness violation reproduced: deadlock before goal\n");
  } else if (!outcome.valid) {
    std::printf("trace invalid: %s\n", outcome.message.c_str());
  } else {
    std::printf("trace ran clean (goal %s)\n",
                outcome.goal_reached ? "reached" : "not reached");
  }

  if (loaded.digests.empty()) {
    std::printf("no recorded digests to compare\n");
    return outcome.valid ? 0 : 1;
  }
  if (outcome.digests == loaded.digests) {
    std::printf("digest sequence identical to the recording (%zu digests)\n",
                outcome.digests.size());
    return 0;
  }
  std::size_t diverge = 0;
  const std::size_t n = std::min(outcome.digests.size(), loaded.digests.size());
  while (diverge < n && outcome.digests[diverge] == loaded.digests[diverge]) {
    ++diverge;
  }
  std::printf("digest DIVERGENCE at step %zu: recorded %s, replayed %s\n",
              diverge,
              diverge < loaded.digests.size()
                  ? HexDigest(loaded.digests[diverge]).c_str()
                  : "<end>",
              diverge < outcome.digests.size()
                  ? HexDigest(outcome.digests[diverge]).c_str()
                  : "<end>");
  return 1;
}

int RunExplore(const ScenarioOptions& scenario, const ExploreOptions& options,
               const std::string& out_path) {
  std::unique_ptr<mpq::harness::Model> model;
  try {
    model = mpq::harness::MakeQuicScenarioModel(scenario);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mpq_model: %s\n", e.what());
    return 2;
  }
  const ExploreResult result = mpq::harness::Explore(*model, options);
  const auto& stats = result.stats;
  std::printf(
      "scenario=%s seed=%llu branch=%d window=%lldus drops=%d dups=%d "
      "max-steps=%d por=%d\n",
      scenario.name.c_str(), static_cast<unsigned long long>(scenario.seed),
      scenario.branch, static_cast<long long>(scenario.commute_window),
      scenario.max_drops, scenario.max_dups, options.max_steps,
      options.por ? 1 : 0);
  std::printf(
      "explored: %llu maximal traces (%llu truncated), %llu transitions, "
      "%llu distinct states, pruned %llu by digest / %llu by sleep sets%s\n",
      static_cast<unsigned long long>(stats.maximal_traces),
      static_cast<unsigned long long>(stats.truncated_traces),
      static_cast<unsigned long long>(stats.transitions),
      static_cast<unsigned long long>(stats.distinct_states),
      static_cast<unsigned long long>(stats.pruned_digest),
      static_cast<unsigned long long>(stats.pruned_sleep),
      stats.exhausted ? "" : " [trace budget hit]");

  if (result.violations.empty()) {
    std::printf("no invariant, liveness or determinism violations\n");
    return 0;
  }
  const Violation& violation = result.violations.front();
  std::printf("VIOLATION (%s): %s\n", mpq::harness::ToString(violation.kind),
              violation.message.c_str());
  std::printf("counterexample (%zu steps):\n", violation.trace.size());
  for (std::size_t i = 0; i < violation.trace.size(); ++i) {
    const TraceStep& step = violation.trace[i];
    std::printf("  step %2zu: [%u] %s %s\n", i + 1, step.index,
                mpq::harness::ToString(step.action), step.label.c_str());
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (out.is_open()) {
      out << WriteCounterexample(scenario, violation) << '\n';
      std::printf("replayable counterexample written to %s\n",
                  out_path.c_str());
    } else {
      std::fprintf(stderr, "mpq_model: cannot write %s\n", out_path.c_str());
    }
  }
  return 1;
}

int RunSelfTestMode() {
  std::string report;
  const int failures = mpq::harness::RunSelfTest(report);
  std::fputs(report.c_str(), stdout);
  std::printf("selftest: %s\n", failures == 0 ? "all checks passed"
                                              : "FAILURES detected");
  return failures == 0 ? 0 : 1;
}

void Usage() {
  std::fputs(
      "usage: mpq_model [mode] [options]\n"
      "modes:\n"
      "  --scenario {handshake,transfer,handover}  explore (default handshake)\n"
      "  --replay <trace.json>      re-run a recorded counterexample\n"
      "  --selftest                 run the seeded-bug corpus\n"
      "exploration options:\n"
      "  --seed N          scenario seed (default 1)\n"
      "  --size N          transfer/handover response bytes (default 1200)\n"
      "  --max-steps N     depth bound (default 256)\n"
      "  --branch N        events considered per step (default 3)\n"
      "  --window US       commute window in microseconds (default 2000)\n"
      "  --drops N         adversarial drop budget (default 0)\n"
      "  --dups N          adversarial duplicate budget (default 0)\n"
      "  --por {0,1}       sleep-set partial-order reduction (default 1)\n"
      "  --max-traces N    trace budget (default 1048576)\n"
      "  --out FILE        write a violation as replayable JSON\n"
      "replay options:\n"
      "  --qlog FILE       attach a qlog tracer during replay\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioOptions scenario;
  ExploreOptions options;
  std::string out_path;
  std::string replay_path;
  std::string qlog_path;
  bool selftest = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mpq_model: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--scenario") {
      scenario.name = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--qlog") {
      qlog_path = next();
    } else if (arg == "--seed") {
      scenario.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--size") {
      scenario.transfer_bytes =
          mpq::ByteCount{std::strtoull(next(), nullptr, 10)};
    } else if (arg == "--max-steps") {
      options.max_steps = std::atoi(next());
    } else if (arg == "--branch") {
      scenario.branch = std::atoi(next());
    } else if (arg == "--window") {
      scenario.commute_window = std::atoll(next());
    } else if (arg == "--drops") {
      scenario.max_drops = std::atoi(next());
    } else if (arg == "--dups") {
      scenario.max_dups = std::atoi(next());
    } else if (arg == "--por") {
      options.por = std::atoi(next()) != 0;
    } else if (arg == "--max-traces") {
      options.max_traces = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "mpq_model: unknown option %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  if (selftest) return RunSelfTestMode();
  if (!replay_path.empty()) return RunReplay(replay_path, qlog_path);
  return RunExplore(scenario, options, out_path);
}
