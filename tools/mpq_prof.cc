// mpq_prof: render and gate on profile dumps from the in-process
// datapath profiler (src/obs/prof.h).
//
//   mpq_prof DUMP.json                subsystem time breakdown + span table
//   mpq_prof DUMP.json --folded OUT   write flamegraph.pl/speedscope
//                                     collapsed stacks ("a;b;c self_ns")
//   mpq_prof --check-regression NEW.json BASELINE.json [--tolerance PCT]
//                                     compare current.engine_packets_per_sec
//                                     between two BENCH_*.json files; exit 1
//                                     on a regression beyond the tolerance
//                                     (default 15%) — the ci.sh perf gate
//   mpq_prof --selftest               profile a synthetic workload through
//                                     the full scope → snapshot → dump →
//                                     parse → breakdown pipeline
//
// A dump is either a bare profiler dump ({"spans":[...]}) or a
// BENCH_*.json from `bench_perf_baseline --prof` (the dump lives under
// its "prof" member, next to "engine_wall_ns" for share-of-wall
// accounting).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/prof.h"

namespace {

using namespace mpq;

struct DumpSpan {
  std::string stack;
  std::string leaf;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
};

struct Dump {
  std::vector<DumpSpan> spans;
  // From the enclosing BENCH json when present: wall time of the
  // profiled engine run, for coverage / share-of-wall columns.
  double wall_ns = 0.0;
};

std::string Subsystem(const DumpSpan& span) {
  const std::string& label = span.leaf.empty() ? span.stack : span.leaf;
  return label.substr(0, label.find(';'));
}

bool ParseDump(const obs::JsonValue& root, Dump* dump) {
  const obs::JsonValue* prof = root.Find("prof");
  if (prof == nullptr) prof = &root;
  const obs::JsonValue* wall = prof->Find("engine_wall_ns");
  if (wall != nullptr) dump->wall_ns = wall->AsDouble();
  const obs::JsonValue* spans = prof->Find("spans");
  if (spans == nullptr || !spans->is_array()) return false;
  for (const obs::JsonValue& entry : spans->AsArray()) {
    DumpSpan span;
    const obs::JsonValue* v = entry.Find("stack");
    if (v == nullptr) return false;
    span.stack = v->AsString();
    if ((v = entry.Find("leaf")) != nullptr) span.leaf = v->AsString();
    if ((v = entry.Find("count")) != nullptr) {
      span.count = static_cast<std::uint64_t>(v->AsDouble());
    }
    if ((v = entry.Find("total_ns")) != nullptr) {
      span.total_ns = static_cast<std::uint64_t>(v->AsDouble());
    }
    if ((v = entry.Find("self_ns")) != nullptr) {
      span.self_ns = static_cast<std::uint64_t>(v->AsDouble());
    }
    if ((v = entry.Find("p50_ns")) != nullptr) span.p50_ns = v->AsDouble();
    if ((v = entry.Find("p99_ns")) != nullptr) span.p99_ns = v->AsDouble();
    if ((v = entry.Find("p999_ns")) != nullptr) span.p999_ns = v->AsDouble();
    dump->spans.push_back(std::move(span));
  }
  return true;
}

/// Self time grouped by the innermost scope's subsystem (first label
/// component): where the cycles were actually spent, with nested
/// subsystems (crypto under assembly under sim) attributed to the code
/// that ran, not the caller.
std::map<std::string, std::uint64_t> SubsystemSelfNs(const Dump& dump) {
  std::map<std::string, std::uint64_t> by_subsystem;
  for (const DumpSpan& span : dump.spans) {
    by_subsystem[Subsystem(span)] += span.self_ns;
  }
  return by_subsystem;
}

void PrintBreakdown(const Dump& dump) {
  const auto by_subsystem = SubsystemSelfNs(dump);
  std::uint64_t total_self = 0;
  for (const auto& [name, ns] : by_subsystem) total_self += ns;
  if (total_self == 0) {
    std::printf("empty profile (no self time recorded)\n");
    return;
  }

  std::printf("subsystem breakdown (self time):\n");
  std::printf("  %-12s %12s %7s", "subsystem", "self_ms", "share");
  if (dump.wall_ns > 0) std::printf(" %9s", "of_wall");
  std::printf("\n");
  // Sorted by share, largest first.
  std::vector<std::pair<std::uint64_t, std::string>> rows;
  for (const auto& [name, ns] : by_subsystem) rows.emplace_back(ns, name);
  std::sort(rows.rbegin(), rows.rend());
  for (const auto& [ns, name] : rows) {
    std::printf("  %-12s %12.3f %6.1f%%", name.c_str(),
                static_cast<double>(ns) / 1e6,
                100.0 * static_cast<double>(ns) /
                    static_cast<double>(total_self));
    if (dump.wall_ns > 0) {
      std::printf(" %8.1f%%",
                  100.0 * static_cast<double>(ns) / dump.wall_ns);
    }
    std::printf("\n");
  }
  if (dump.wall_ns > 0) {
    std::printf("  profiled coverage: %.1f%% of %.3f ms engine wall\n",
                100.0 * static_cast<double>(total_self) / dump.wall_ns,
                dump.wall_ns / 1e6);
  }

  std::printf("\nspans:\n");
  std::printf("  %-52s %10s %12s %12s %9s %9s %9s\n", "stack", "count",
              "total_ms", "self_ms", "p50_ns", "p99_ns", "p999_ns");
  for (const DumpSpan& span : dump.spans) {
    std::printf("  %-52s %10llu %12.3f %12.3f %9.0f %9.0f %9.0f\n",
                span.stack.c_str(),
                static_cast<unsigned long long>(span.count),
                static_cast<double>(span.total_ns) / 1e6,
                static_cast<double>(span.self_ns) / 1e6, span.p50_ns,
                span.p99_ns, span.p999_ns);
  }
}

/// flamegraph.pl collapsed format: "stack self_samples" — we emit self
/// nanoseconds as the sample count, which flamegraph.pl renders as time.
int WriteFolded(const Dump& dump, const char* path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  for (const DumpSpan& span : dump.spans) {
    if (span.self_ns == 0) continue;
    out << span.stack << ' ' << span.self_ns << '\n';
  }
  out.close();
  return out.fail() ? 1 : 0;
}

bool LoadJsonFile(const char* path, obs::JsonValue* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = obs::JsonValue::Parse(buffer.str());
  if (!parsed.has_value()) {
    std::fprintf(stderr, "%s: not valid JSON\n", path);
    return false;
  }
  *out = std::move(*parsed);
  return true;
}

/// The perf-regression gate: engine packets-per-second from the fresh
/// bench run must be within `tolerance_pct` of the committed trajectory.
/// Both files are BENCH_*.json ({"current":{"engine_packets_per_sec":..}}).
int CheckRegression(const char* new_path, const char* baseline_path,
                    double tolerance_pct) {
  const auto engine_pps = [](const obs::JsonValue& root, const char* path,
                             double* out) {
    const obs::JsonValue* current = root.Find("current");
    const obs::JsonValue* pps =
        current != nullptr ? current->Find("engine_packets_per_sec") : nullptr;
    if (pps == nullptr) {
      std::fprintf(stderr, "%s: no current.engine_packets_per_sec\n", path);
      return false;
    }
    *out = pps->AsDouble();
    return true;
  };
  obs::JsonValue new_json, baseline_json;
  double new_pps = 0.0, baseline_pps = 0.0;
  if (!LoadJsonFile(new_path, &new_json) ||
      !LoadJsonFile(baseline_path, &baseline_json) ||
      !engine_pps(new_json, new_path, &new_pps) ||
      !engine_pps(baseline_json, baseline_path, &baseline_pps)) {
    return 2;
  }
  const double floor = baseline_pps * (1.0 - tolerance_pct / 100.0);
  const double delta_pct =
      baseline_pps > 0 ? 100.0 * (new_pps - baseline_pps) / baseline_pps : 0;
  std::printf("engine_packets_per_sec: new %.0f vs baseline %.0f "
              "(%+.1f%%, tolerance -%.0f%%)\n",
              new_pps, baseline_pps, delta_pct, tolerance_pct);
  if (new_pps < floor) {
    std::fprintf(stderr,
                 "PERF REGRESSION: %.0f pps is below the %.0f pps floor\n",
                 new_pps, floor);
    return 1;
  }
  std::printf("perf gate OK\n");
  return 0;
}

/// Exercise the full pipeline in-process: record a synthetic nested
/// workload with real scopes, dump it, parse the dump back, and verify
/// the breakdown and folded output.
int SelfTest() {
  int failures = 0;
  const auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "selftest FAILED: %s\n", what);
      ++failures;
    }
  };

  if (!obs::prof::kCompiledIn) {
    // A -DMPQ_PROF=OFF build has nothing to profile; the parsing and
    // gate logic is still exercised below via a canned dump.
    std::printf("profiler compiled out; testing parse/gate only\n");
  } else {
    obs::prof::Reset();
    obs::prof::SetEnabled(true);
    for (int i = 0; i < 50; ++i) {
      MPQ_PROF_SCOPE("sim/event");
      volatile unsigned sink = 0;
      {
        MPQ_PROF_SCOPE("crypto/seal");
        for (unsigned j = 0; j < 1000; ++j) sink = sink + j;
      }
      {
        MPQ_PROF_SCOPE("assembly/packet");
        for (unsigned j = 0; j < 100; ++j) sink = sink + j;
      }
    }
    obs::prof::SetEnabled(false);

    obs::JsonWriter writer;
    obs::prof::WriteJson(writer);
    const auto parsed = obs::JsonValue::Parse(writer.str());
    expect(parsed.has_value(), "dump is valid JSON");
    Dump dump;
    expect(parsed.has_value() && ParseDump(*parsed, &dump), "dump parses");
    expect(dump.spans.size() == 3, "three spans recorded");
    const auto by_subsystem = SubsystemSelfNs(dump);
    expect(by_subsystem.count("sim") == 1 &&
               by_subsystem.count("crypto") == 1 &&
               by_subsystem.count("assembly") == 1,
           "subsystems attributed by leaf label");
    for (const DumpSpan& span : dump.spans) {
      expect(span.count == 50, "span counts");
      expect(span.total_ns >= span.self_ns, "total >= self");
    }
    // Folded lines must match flamegraph.pl's expectation:
    // "frame;frame;frame <integer>".
    std::stringstream folded(obs::prof::FoldedStacks());
    std::string line;
    std::size_t lines = 0;
    bool folded_ok = true;
    while (std::getline(folded, line)) {
      ++lines;
      const std::size_t space = line.rfind(' ');
      if (space == std::string::npos || space == 0 ||
          space + 1 >= line.size()) {
        folded_ok = false;
        break;
      }
      for (std::size_t i = space + 1; i < line.size(); ++i) {
        if (line[i] < '0' || line[i] > '9') folded_ok = false;
      }
      if (line.substr(0, space).find(' ') != std::string::npos) {
        folded_ok = false;
      }
    }
    expect(folded_ok && lines >= 1, "folded stacks are flamegraph-ready");
    obs::prof::Reset();
    expect(obs::prof::Snapshot().empty(), "Reset clears spans");
  }

  // The gate's math (CheckRegression itself reads files).
  const double baseline = 100000.0;
  expect(90000.0 >= baseline * (1.0 - 15.0 / 100.0), "within tolerance");
  expect(!(80000.0 >= baseline * (1.0 - 15.0 / 100.0)), "beyond tolerance");

  if (failures == 0) {
    std::printf("selftest OK\n");
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--selftest") == 0) {
    return SelfTest();
  }
  if (argc >= 4 && std::strcmp(argv[1], "--check-regression") == 0) {
    double tolerance = 15.0;
    if (argc == 6 && std::strcmp(argv[4], "--tolerance") == 0) {
      tolerance = std::atof(argv[5]);
    } else if (argc != 4) {
      std::fprintf(stderr,
                   "usage: %s --check-regression NEW.json BASELINE.json "
                   "[--tolerance PCT]\n",
                   argv[0]);
      return 2;
    }
    return CheckRegression(argv[2], argv[3], tolerance);
  }

  const char* dump_path = nullptr;
  const char* folded_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--folded") == 0 && i + 1 < argc) {
      folded_path = argv[++i];
    } else if (dump_path == nullptr) {
      dump_path = argv[i];
    } else {
      dump_path = nullptr;
      break;
    }
  }
  if (dump_path == nullptr) {
    std::fprintf(
        stderr,
        "usage: %s DUMP.json [--folded OUT.folded]\n"
        "       %s --check-regression NEW.json BASELINE.json "
        "[--tolerance PCT]\n"
        "       %s --selftest\n"
        "Render a profile dump from bench_perf_baseline --prof or\n"
        "obs::prof::WriteJson; --folded writes flamegraph.pl input.\n",
        argv[0], argv[0], argv[0]);
    return 2;
  }
  obs::JsonValue root;
  if (!LoadJsonFile(dump_path, &root)) return 1;
  Dump dump;
  if (!ParseDump(root, &dump)) {
    std::fprintf(stderr, "%s: no profile spans found\n", dump_path);
    return 1;
  }
  PrintBreakdown(dump);
  if (folded_path != nullptr) return WriteFolded(dump, folded_path);
  return 0;
}
