#!/usr/bin/env bash
# Local CI: build the plain, sanitized (ASan+UBSan), and ThreadSanitizer
# configurations and run the full test suite under each. TSan exercises
# the parallel sweep harness (tests run EvaluateClass with --jobs > 1).
#
#   tools/ci.sh [--jobs N]
#
# Exits non-zero on the first build or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

run_config() {
  local dir="$1"; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@"
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${jobs}"
  echo "==> test ${dir}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config build
run_config build-asan -DMPQ_SANITIZE=ON
run_config build-tsan -DMPQ_TSAN=ON

echo "==> all configurations passed"
