#!/usr/bin/env bash
# Local CI: static analysis first (cheap, catches style/hygiene drift),
# then build the plain, sanitized (ASan+UBSan), ThreadSanitizer, and
# MPQ_AUDIT (runtime invariant checker) configurations and run the full
# test suite under each. TSan exercises the parallel sweep harness
# (tests run EvaluateClass with --jobs > 1); the audit leg runs every
# test with per-event protocol invariants asserted (src/quic/audit.cc).
# After the matrix: bounded model checking of the event machine
# (tools/mpq_model), a 30-second wire-parser fuzz smoke (tools/fuzz_wire),
# the chaos sweep, the many-connection scale smoke (1000-connection
# workload with a --jobs determinism check), the SIMD/scalar crypto
# equivalence check (a -DMPQ_NO_SIMD build must digest-match the
# vectorized build), and the perf-regression gate.
#
#   tools/ci.sh [--jobs N]
#
# Exits non-zero on the first lint finding, build, or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

run_config() {
  local dir="$1"; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@"
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${jobs}"
  # Fast per-layer unit tests first: a broken layer fails in seconds,
  # before the full-network integration suites spin up.
  echo "==> test ${dir} (unit)"
  ctest --test-dir "${dir}" -L unit --output-on-failure -j "${jobs}"
  echo "==> test ${dir} (integration + lint)"
  ctest --test-dir "${dir}" -LE unit --output-on-failure -j "${jobs}"
}

# --- Stage 1: lint -----------------------------------------------------
# Build just the checker in the plain config, prove it still detects its
# seeded-violation corpus, then run it over the real tree.
echo "==> lint (mpq_lint)"
cmake -B build -S . > /dev/null
cmake --build build -j "${jobs}" --target mpq_lint
./build/tools/mpq_lint --selftest tools/lint_corpus
./build/tools/mpq_lint --root . src bench

# clang-tidy is optional tooling (not in the baseline container); run it
# when available, using the checks pinned in .clang-tidy.
if command -v clang-tidy > /dev/null 2>&1; then
  echo "==> lint (clang-tidy)"
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  git ls-files 'src/*.cc' | xargs -P "${jobs}" -n 8 \
    clang-tidy -p build --quiet --warnings-as-errors='*'
else
  echo "==> lint (clang-tidy): not installed, skipping"
fi

# --- Stage 2: build + test matrix --------------------------------------
# The plain leg also builds with MPQ_STRICT so -Wconversion/-Wshadow
# warnings in src/ are hard errors.
run_config build -DMPQ_STRICT=ON
run_config build-asan -DMPQ_SANITIZE=ON
run_config build-tsan -DMPQ_TSAN=ON
run_config build-audit -DMPQ_AUDIT=ON

# --- Stage 3: model checking -------------------------------------------
# Bounded state-space exploration (docs/MODEL_CHECKING.md) on the audit
# build, so every reached state is double-checked by the runtime
# invariant assertions too. The selftest proves the explorer still
# catches its seeded-bug corpus; the scenario runs enumerate every
# schedule within the stated bounds — handshake exhaustively, plus
# adversarial handshake (drop budget) and a small reordered transfer
# with one drop and one duplicate. Each run takes well under a second.
echo "==> model checking (mpq_model)"
./build-audit/tools/mpq_model --selftest
./build-audit/tools/mpq_model --scenario handshake --branch 2 --max-steps 40
./build-audit/tools/mpq_model --scenario handshake --branch 3 --drops 1
./build-audit/tools/mpq_model --scenario transfer --size 1200 --branch 3 \
  --window 10000 --drops 1 --dups 1

# --- Stage 4: fuzz smoke -----------------------------------------------
# Build the wire-parser fuzz harness and give it 30 seconds. With a
# clang toolchain this is real coverage-guided libFuzzer; on GCC the
# binary is the standalone replayer (it ignores the -flags), so the
# harness and seed corpus still compile and run everywhere.
echo "==> fuzz smoke (fuzz_wire)"
cmake -B build-fuzz -S . -DMPQ_LIBFUZZER=ON > /dev/null
cmake --build build-fuzz -j "${jobs}" --target fuzz_wire
./build-fuzz/tools/fuzz_wire -max_total_time=30 -seed=1 tools/fuzz_corpus/wire

# --- Stage 5: chaos sweep ----------------------------------------------
# The ctest `chaos` label (already run per-config above) covers a 25-seed
# smoke; this stage runs the full 200-scenario fault-injection sweep from
# docs/ROBUSTNESS.md under the two configurations that catch what plain
# builds cannot: ASan+UBSan for memory errors on the fault paths, and
# MPQ_AUDIT for protocol invariant violations on every simulated event.
for dir in build-asan build-audit; do
  echo "==> chaos sweep (${dir})"
  "./${dir}/tools/mpq_chaos" --sweep 200 --seed 1
done

# --- Stage 5b: many-connection scale smoke -----------------------------
# Seeded 1000-connection workload (bench_many_conn --smoke) under the
# two configurations that see what plain builds cannot (ASan+UBSan,
# MPQ_AUDIT), with the server-engine determinism bar enforced: --jobs 1
# and --jobs 4 must produce byte-identical KPIs and per-flow metrics.
# The ctest `scale` label (workload_test) already ran per-config above;
# this exercises the full fleet at 1000 connections.
for dir in build-asan build-audit; do
  echo "==> scale smoke (${dir})"
  "./${dir}/bench/bench_many_conn" --smoke 1000 --seed 1 --jobs 1 \
    --metrics "${dir}/scale_j1.ndjson" > "${dir}/scale_j1.json"
  "./${dir}/bench/bench_many_conn" --smoke 1000 --seed 1 --jobs 4 \
    --metrics "${dir}/scale_j4.ndjson" > "${dir}/scale_j4.json"
  cmp "${dir}/scale_j1.json" "${dir}/scale_j4.json"
  cmp "${dir}/scale_j1.ndjson" "${dir}/scale_j4.ndjson"
  ./build/tools/mpq_trace --aggregate "${dir}/scale_j1.ndjson" > /dev/null
done

# --- Stage 5c: SIMD/scalar crypto equivalence ---------------------------
# Build the crypto micro-bench with the SIMD kernels compiled out
# entirely (-DMPQ_NO_SIMD=ON) and byte-compare its deterministic
# --selftest digest sweep against the default build's. This is the
# end-to-end guarantee that the SSE2/AVX2 ChaCha20 kernels and the fused
# seal/open walk produce exactly the scalar bytes — independent of the
# unit-test vectors, on the real dispatch path.
echo "==> crypto SIMD/scalar equivalence (build-nosimd)"
cmake -B build-nosimd -S . -DMPQ_NO_SIMD=ON > /dev/null
cmake --build build-nosimd -j "${jobs}" --target bench_micro_crypto
./build/bench/bench_micro_crypto --selftest > build/crypto_selftest.txt
./build-nosimd/bench/bench_micro_crypto --selftest \
  > build-nosimd/crypto_selftest.txt
cmp build/crypto_selftest.txt build-nosimd/crypto_selftest.txt
# Belt and braces: the runtime kill switch must land on the same bytes.
MPQ_NO_SIMD=1 ./build/bench/bench_micro_crypto --selftest \
  | cmp - build/crypto_selftest.txt

# --- Stage 6: perf-regression gate -------------------------------------
# Re-measure the engine transfer (--quick skips the WSP sweeps) and
# compare packets-per-second against the committed baseline; fail the
# build if the engine regressed more than 15%. The committed BENCH_*.json
# is the newest checkpoint — refresh it with
# `build/bench/bench_perf_baseline --prof --out BENCH_PRn.json` whenever
# a PR intentionally moves the number (docs/PERFORMANCE.md).
baseline=$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -1)
if [[ -n "${baseline}" ]]; then
  echo "==> perf-regression gate (vs ${baseline})"
  ./build/bench/bench_perf_baseline --quick --out build/BENCH_ci.json
  ./build/tools/mpq_prof --check-regression build/BENCH_ci.json \
    "${baseline}" --tolerance 15
else
  echo "==> perf-regression gate: no committed BENCH_PR*.json, skipping"
fi

echo "==> all configurations passed"
