// mpq_lint: the repo's own static checker. Scans C++ sources for the
// project rules that generic compilers don't enforce:
//
//   wall-clock       host clock reads (system_clock/steady_clock/
//                    std::time/gettimeofday/clock_gettime) outside
//                    src/common — simulations must be functions of
//                    simulated time only (common/clock.h is the one
//                    sanctioned read).
//   raw-rng          std::rand/srand/random_device/mt19937 outside
//                    common/rng.h — all randomness flows from the
//                    seeded xoshiro Rng, or runs aren't reproducible.
//   unordered-iter   range-for over a std::unordered_{map,set} declared
//                    in the same file, in protocol/simulation code
//                    (src/quic, src/cc, src/sim, src/tcpsim) —
//                    iteration order is implementation-defined and
//                    breaks determinism.
//   iostream-io      <iostream> / std::cout / std::cerr in src/ —
//                    library code reports through common/log.
//   naked-new        a `new` expression whose result is not captured by
//                    a smart pointer in the same statement.
//   pragma-once      a header under src/ without #pragma once.
//   include-hygiene  quoted includes using ".." parent paths (project
//                    includes are rooted at src/).
//   prof-clock       raw MonotonicNanos() timing in src/ outside
//                    obs/prof and common/clock.h — datapath
//                    self-measurement goes through MPQ_PROF_SCOPE so it
//                    aggregates into profiles (docs/OBSERVABILITY.md).
//   reinterpret-cast reinterpret_cast outside src/crypto and the wire
//                    codec (src/quic/wire*) — type punning stays in the
//                    two layers whose job is raw bytes.
//   layering         a direct #include that points upward in the layer
//                    DAG (docs/ARCHITECTURE.md): foundation dirs
//                    (common/crypto/sim/cc) must not include protocol
//                    code, obs/ must not include the connection or
//                    endpoint, and within src/quic each layer module
//                    (wire, path, streams, scheduler, control_queue,
//                    config, recovery, handshake, assembler, dispatch)
//                    may only include modules below it. Only direct
//                    includes are checked; transitive closure is the
//                    compiler's problem.
//
// Suppression: a line containing NOLINT silences every rule on that
// line; NOLINT(mpq-<rule>) silences just that rule. NOLINTNEXTLINE and
// NOLINTNEXTLINE(mpq-<rule>) do the same for the line directly below
// them (for lines with no room for a trailing comment).
//
//   mpq_lint [--root DIR] [PATHS...]   lint PATHS (default: src bench)
//   mpq_lint --selftest DIR            run the seeded-violation corpus:
//                                      every file must produce exactly
//                                      the rules its "// expect:" lines
//                                      declare, and every rule must be
//                                      exercised at least once.
//
// Exit status: 0 clean, 1 findings (or corpus mismatch), 2 usage.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

// -- source preprocessing ---------------------------------------------------

/// Strip comments and string/char literals, preserving line structure, so
/// rules match only code. Returns one entry per input line; `raw` keeps
/// the original text (for NOLINT markers and "// expect:" directives).
struct Line {
  std::string code;  // comments and literal contents blanked out
  std::string raw;
};

std::vector<Line> ReadLines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<Line> lines;
  std::string text;
  bool in_block_comment = false;
  while (std::getline(in, text)) {
    std::string code;
    code.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (in_block_comment) {
        if (text[i] == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      const char c = text[i];
      if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') break;
      if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        code.push_back(quote);
        ++i;
        while (i < text.size() && text[i] != quote) {
          if (text[i] == '\\') ++i;
          ++i;
        }
        code.push_back(quote);
        continue;
      }
      code.push_back(c);
    }
    lines.push_back({std::move(code), std::move(text)});
  }
  return lines;
}

/// Does `raw` carry the given suppression marker for `rule`? A bare
/// marker silences every rule; a parenthesised one only the rules it
/// names (as mpq-<rule>).
bool MarkerSuppresses(const std::string& raw, const char* marker,
                      const std::string& rule) {
  const std::size_t len = std::strlen(marker);
  std::size_t pos = raw.find(marker);
  while (pos != std::string::npos) {
    // "NOLINT" also matches inside "NOLINTNEXTLINE" — skip occurrences
    // that are a prefix of a longer marker; they belong to that marker.
    const std::size_t after = pos + len;
    if (after < raw.size() &&
        (std::isalnum(static_cast<unsigned char>(raw[after])) != 0 ||
         raw[after] == '_')) {
      pos = raw.find(marker, after);
      continue;
    }
    if (after < raw.size() && raw[after] == '(') {
      const std::size_t close = raw.find(')', after);
      const std::string list =
          raw.substr(after, close == std::string::npos ? std::string::npos
                                                       : close - after);
      return list.find("mpq-" + rule) != std::string::npos;
    }
    return true;  // bare marker: silence everything
  }
  return false;
}

/// A finding on line `idx` is suppressed by NOLINT / NOLINT(mpq-<rule>)
/// on the same line, or NOLINTNEXTLINE / NOLINTNEXTLINE(mpq-<rule>) on
/// the line directly above it.
bool Suppressed(const std::vector<Line>& lines, std::size_t idx,
                const std::string& rule) {
  if (MarkerSuppresses(lines[idx].raw, "NOLINT", rule)) return true;
  return idx > 0 &&
         MarkerSuppresses(lines[idx - 1].raw, "NOLINTNEXTLINE", rule);
}

// -- rule implementations ---------------------------------------------------

/// `rel` is the path of the file relative to the repository root, with
/// forward slashes (e.g. "src/quic/connection.cc").
bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// mpq-layering: the enforced include DAG. Each entry applies to files
/// whose repo-relative path starts with `file_prefix` and forbids direct
/// quoted includes starting with any of the comma-separated prefixes in
/// `forbidden`. Prefixes are matched without the ".h" suffix so the rule
/// also covers split headers (e.g. "quic/wire" matches "quic/wire.h").
/// The tables mirror docs/ARCHITECTURE.md; connection/endpoint/audit sit
/// at the top and may include everything.
struct LayerRule {
  const char* file_prefix;
  const char* forbidden;
};

/// Include prefixes exempt from every layering rule: headers that are
/// architecturally foundation leaves despite their directory. The
/// profiler ("obs/prof") depends only on src/common and must be
/// includable from every instrumented subsystem — crypto, sim, quic —
/// that the obs/ prefix would otherwise wall off.
const char* const kLayeringExempt[] = {"obs/prof"};

const LayerRule kLayeringRules[] = {
    // Foundation: no upward includes at all.
    {"src/common/", "quic/,cc/,crypto/,sim/,obs/,harness/"},
    {"src/crypto/", "quic/,cc/,sim/,obs/,harness/"},
    {"src/sim/", "quic/,cc/,crypto/,obs/,harness/"},
    {"src/cc/", "quic/,crypto/,sim/,obs/,harness/"},
    // Observability consumes the tracer interface and wire types only.
    {"src/obs/",
     "quic/connection,quic/endpoint,quic/assembler,quic/dispatch,"
     "quic/handshake,quic/recovery,quic/path,quic/streams,quic/config,"
     "quic/scheduler,quic/control_queue,quic/audit,harness/"},
    // src/quic, bottom-up. Each module may include only what sits below
    // it; the delegate interfaces exist precisely so these lists hold.
    {"src/quic/wire",
     "quic/connection,quic/endpoint,quic/audit,quic/config,quic/path,"
     "quic/streams,quic/scheduler,quic/control_queue,quic/recovery,"
     "quic/handshake,quic/assembler,quic/dispatch,obs/"},
    {"src/quic/trace",
     "quic/connection,quic/endpoint,quic/audit,quic/config,quic/path,"
     "quic/streams,quic/scheduler,quic/control_queue,quic/recovery,"
     "quic/handshake,quic/assembler,quic/dispatch,obs/"},
    {"src/quic/path",
     "quic/connection,quic/endpoint,quic/audit,quic/config,"
     "quic/streams,quic/scheduler,quic/control_queue,quic/recovery,"
     "quic/handshake,quic/assembler,quic/dispatch,obs/"},
    {"src/quic/streams",
     "quic/connection,quic/endpoint,quic/audit,quic/config,quic/path,"
     "quic/scheduler,quic/control_queue,quic/recovery,"
     "quic/handshake,quic/assembler,quic/dispatch,obs/"},
    {"src/quic/scheduler",
     "quic/connection,quic/endpoint,quic/audit,quic/config,"
     "quic/streams,quic/control_queue,quic/recovery,"
     "quic/handshake,quic/assembler,quic/dispatch,obs/"},
    {"src/quic/control_queue",
     "quic/connection,quic/endpoint,quic/audit,quic/config,quic/path,"
     "quic/streams,quic/scheduler,quic/recovery,"
     "quic/handshake,quic/assembler,quic/dispatch,obs/"},
    {"src/quic/config",
     "quic/connection,quic/endpoint,quic/audit,quic/path,"
     "quic/control_queue,quic/recovery,"
     "quic/handshake,quic/assembler,quic/dispatch,obs/"},
    {"src/quic/recovery",
     "quic/connection,quic/endpoint,quic/audit,quic/config,"
     "quic/streams,quic/scheduler,quic/control_queue,"
     "quic/handshake,quic/assembler,quic/dispatch,obs/"},
    {"src/quic/handshake",
     "quic/connection,quic/endpoint,quic/audit,quic/path,"
     "quic/streams,quic/scheduler,quic/control_queue,quic/recovery,"
     "quic/assembler,quic/dispatch,obs/"},
    {"src/quic/assembler",
     "quic/connection,quic/endpoint,quic/audit,"
     "quic/handshake,quic/dispatch,obs/"},
    {"src/quic/dispatch",
     "quic/connection,quic/endpoint,quic/audit,quic/config,"
     "quic/scheduler,quic/control_queue,quic/recovery,"
     "quic/handshake,quic/assembler,obs/"},
};

void CheckFile(const std::string& rel, const std::vector<Line>& lines,
               std::vector<Finding>& findings) {
  const bool in_src = StartsWith(rel, "src/");
  const bool in_common = StartsWith(rel, "src/common/");
  const bool is_rng_header = rel == "src/common/rng.h";
  const bool protocol_scope =
      StartsWith(rel, "src/quic/") || StartsWith(rel, "src/cc/") ||
      StartsWith(rel, "src/sim/") || StartsWith(rel, "src/tcpsim/");
  const bool is_header = rel.size() > 2 && rel.compare(rel.size() - 2, 2, ".h") == 0;

  const auto report = [&](std::size_t idx, const char* rule,
                          std::string message) {
    if (!Suppressed(lines, idx, rule)) {
      findings.push_back({rel, idx + 1, rule, std::move(message)});
    }
  };

  static const std::regex kProfClock(R"(\bMonotonicNanos\s*\()");
  static const std::regex kWallClock(
      R"(\b(?:system_clock|steady_clock|high_resolution_clock|gettimeofday|clock_gettime)\b|std::time\s*\()");
  static const std::regex kRawRng(
      R"(\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|\bmt19937)");
  static const std::regex kIostream(
      R"(#include\s*<iostream>|\bstd::cout\b|\bstd::cerr\b|\bstd::clog\b)");
  static const std::regex kNew(R"(\bnew\b)");
  static const std::regex kSmartWrap(R"(unique_ptr|shared_ptr|make_unique|make_shared)");
  static const std::regex kUnorderedDecl(
      R"(unordered_(?:map|set|multimap|multiset)\s*<)");
  static const std::regex kDeclName(R"(>\s*(\w+)\s*(?:;|\{|=))");
  static const std::regex kParentInclude(R"(#include\s*"[^"]*\.\./)");
  static const std::regex kQuotedInclude(R"(#include\s*"([^"]+)\")");
  static const std::regex kReinterpret(R"(\breinterpret_cast\b)");
  static const std::regex kShardAffinity(
      R"(\b(?:FindConnection|ForEachConnection|Connections)\s*\()");
  static const std::regex kSimdIntrinsics(
      R"(\b_mm\d*_\w+\s*\(|\b__m(?:128|256|512)i?\b|\b__builtin_cpu_(?:supports|init)\s*\(|#include\s*<(?:imm|emm|xmm|smm|tmm|wmm|nmm|avx[\w]*)intrin\.h>)");

  // Pass 1: names of unordered containers declared in this file (for the
  // iteration rule). Declarations themselves are fine — lookups and
  // erases are order-independent.
  std::set<std::string> unordered_names;
  if (protocol_scope) {
    for (const auto& line : lines) {
      std::smatch m;
      if (std::regex_search(line.code, m, kUnorderedDecl)) {
        // The variable name follows the closing '>' of the template
        // argument list, possibly on this line.
        std::smatch name;
        const std::string tail = line.code.substr(m.position(0));
        if (std::regex_search(tail, name, kDeclName)) {
          unordered_names.insert(name[1]);
        }
      }
    }
  }

  bool saw_pragma_once = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (code.find("#pragma once") != std::string::npos) {
      saw_pragma_once = true;
    }

    // MonotonicNanos() is the sanctioned host-clock read, but calling it
    // raw scatters ad-hoc timing that never reaches a profile dump; the
    // profiler wraps it once (and clock.h defines it).
    if (in_src && !StartsWith(rel, "src/obs/prof") &&
        rel != "src/common/clock.h" &&
        std::regex_search(code, kProfClock)) {
      report(i, "prof-clock",
             "raw MonotonicNanos() timing (use MPQ_PROF_SCOPE so the "
             "measurement lands in profiles)");
    }
    if (in_src && !in_common && std::regex_search(code, kWallClock)) {
      report(i, "wall-clock",
             "host clock read outside src/common (use simulated time, or "
             "common/clock.h for self-measurement)");
    }
    if (!is_rng_header && std::regex_search(code, kRawRng)) {
      report(i, "raw-rng",
             "unseeded/global randomness (use the seeded mpq::Rng)");
    }
    if (in_src && std::regex_search(code, kIostream)) {
      report(i, "iostream-io",
             "iostream writes in library code (use common/log)");
    }
    if (std::regex_search(code, kNew) &&
        !std::regex_search(code, kSmartWrap)) {
      report(i, "naked-new",
             "new expression not owned by a smart pointer in the same "
             "statement");
    }
    // Type punning is confined to the two places that legitimately
    // reinterpret bytes: the crypto primitives and the wire codec.
    if (in_src && !StartsWith(rel, "src/crypto/") &&
        !StartsWith(rel, "src/quic/wire") &&
        std::regex_search(code, kReinterpret)) {
      report(i, "reinterpret-cast",
             "reinterpret_cast outside src/crypto and quic/wire (keep "
             "type punning in the byte-handling layers)");
    }
    // Shard affinity: the server's connection table is owned by one
    // shard's event loop. Only the server engine itself, the endpoint
    // facades, and the whole-world harness layers (model-checker
    // explorer, workload reducer) may touch it; everything else must
    // route through the owning shard or per-connection handles.
    {
      const bool shard_engine_scope =
          StartsWith(rel, "src/quic/server") ||
          StartsWith(rel, "src/quic/endpoint") ||
          StartsWith(rel, "src/tcpsim/endpoint") ||
          StartsWith(rel, "src/harness/explore") ||
          StartsWith(rel, "src/harness/workload");
      if (!shard_engine_scope && std::regex_search(code, kShardAffinity)) {
        report(i, "shard-affinity",
               "connection-table access (FindConnection/ForEachConnection/"
               "Connections) outside the server engine breaks shard "
               "affinity (route through the owning shard)");
      }
    }
    // CPU intrinsics and feature probes stay behind the crypto dispatch
    // layer (src/crypto/cpu.h): one audited home for per-arch code and
    // its scalar fallback, instead of #ifdef __AVX2__ creep through the
    // protocol layers. Matches vector intrinsics/types, the GCC/Clang
    // cpu-feature builtins, and the x86 intrinsic headers.
    if (in_src && !StartsWith(rel, "src/crypto/") &&
        std::regex_search(code, kSimdIntrinsics)) {
      report(i, "simd-intrinsics",
             "CPU intrinsics / feature probes outside src/crypto (route "
             "through the crypto/cpu.h dispatch layer)");
    }
    // Include paths live inside string literals, which the code view
    // blanks out — match the raw line for this rule.
    if (std::regex_search(lines[i].raw, kParentInclude)) {
      report(i, "include-hygiene",
             "parent-relative #include (project includes are rooted at "
             "src/)");
    }
    // Layering is checked on direct includes only (again on the raw
    // line, since the include path is a string literal).
    std::smatch inc;
    if (std::regex_search(lines[i].raw, inc, kQuotedInclude)) {
      const std::string target = inc[1];
      bool exempt = false;
      for (const char* prefix : kLayeringExempt) {
        if (StartsWith(target, prefix)) exempt = true;
      }
      for (const auto& rule : kLayeringRules) {
        if (exempt || !StartsWith(rel, rule.file_prefix)) continue;
        const std::string forbidden = rule.forbidden;
        std::size_t start = 0;
        while (start < forbidden.size()) {
          std::size_t comma = forbidden.find(',', start);
          if (comma == std::string::npos) comma = forbidden.size();
          const std::string prefix = forbidden.substr(start, comma - start);
          if (StartsWith(target, prefix.c_str())) {
            report(i, "layering",
                   "\"" + target + "\" sits above " + rule.file_prefix +
                       "* in the layer DAG (see docs/ARCHITECTURE.md)");
          }
          start = comma + 1;
        }
      }
    }
    if (protocol_scope && code.find("for") != std::string::npos &&
        code.find(':') != std::string::npos) {
      for (const auto& name : unordered_names) {
        static const char* kForPrefix = R"(for\s*\([^;:]*:\s*[\w.\->]*\b)";
        const std::regex iter(std::string(kForPrefix) + name + R"(\b)");
        if (std::regex_search(code, iter)) {
          report(i, "unordered-iter",
                 "iteration over std::unordered container '" + name +
                     "' in protocol/sim code (order is nondeterministic)");
        }
      }
    }
  }

  if (in_src && is_header && !saw_pragma_once && !lines.empty()) {
    findings.push_back({rel, 1, "pragma-once", "header missing #pragma once"});
  }
}

// -- driver -----------------------------------------------------------------

bool LintableFile(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

std::vector<fs::path> CollectFiles(const fs::path& root,
                                   const std::vector<std::string>& dirs) {
  std::vector<fs::path> files;
  for (const auto& dir : dirs) {
    const fs::path base = root / dir;
    if (fs::is_regular_file(base)) {
      files.push_back(base);
      continue;
    }
    if (!fs::is_directory(base)) {
      std::fprintf(stderr, "mpq_lint: no such path: %s\n",
                   base.string().c_str());
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && LintableFile(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string RelativeTo(const fs::path& root, const fs::path& file) {
  return fs::relative(file, root).generic_string();
}

const std::vector<std::string> kAllRules = {
    "wall-clock", "raw-rng",     "unordered-iter",  "iostream-io",
    "naked-new",  "pragma-once", "include-hygiene", "layering",
    "prof-clock", "reinterpret-cast", "shard-affinity", "simd-intrinsics"};

int RunLint(const fs::path& root, const std::vector<std::string>& dirs) {
  std::vector<Finding> findings;
  for (const auto& file : CollectFiles(root, dirs)) {
    CheckFile(RelativeTo(root, file), ReadLines(file), findings);
  }
  for (const auto& f : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "mpq_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}

/// Corpus mode: each file under `dir` declares its expected rules in
/// "// expect: <rule>" lines; files named common_* are linted as if they
/// lived in src/common, headers keep their extension, everything else is
/// treated as protocol code under src/quic.
int RunSelfTest(const fs::path& dir) {
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "mpq_lint: corpus directory not found: %s\n",
                 dir.string().c_str());
    return 2;
  }
  int failures = 0;
  std::set<std::string> exercised;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && LintableFile(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "mpq_lint: empty corpus\n");
    return 1;
  }
  for (const auto& file : files) {
    const auto lines = ReadLines(file);
    std::multiset<std::string> expected;
    for (const auto& line : lines) {
      const auto pos = line.raw.find("// expect: ");
      if (pos != std::string::npos) {
        std::string rule = line.raw.substr(pos + std::strlen("// expect: "));
        while (!rule.empty() && (rule.back() == ' ' || rule.back() == '\r')) {
          rule.pop_back();
        }
        expected.insert(rule);
      }
    }
    const std::string name = file.filename().string();
    const std::string virtual_path =
        (name.rfind("common_", 0) == 0 ? "src/common/" : "src/quic/") + name;
    std::vector<Finding> findings;
    CheckFile(virtual_path, lines, findings);
    std::multiset<std::string> got;
    for (const auto& f : findings) {
      got.insert(f.rule);
      exercised.insert(f.rule);
    }
    if (got != expected) {
      ++failures;
      std::fprintf(stderr, "selftest FAILED: %s\n  expected:", name.c_str());
      for (const auto& r : expected) std::fprintf(stderr, " %s", r.c_str());
      std::fprintf(stderr, "\n  got:     ");
      for (const auto& f : findings) {
        std::fprintf(stderr, " %s(line %zu)", f.rule.c_str(), f.line);
      }
      std::fprintf(stderr, "\n");
    }
  }
  for (const auto& rule : kAllRules) {
    if (exercised.find(rule) == exercised.end()) {
      ++failures;
      std::fprintf(stderr, "selftest FAILED: rule '%s' never fired\n",
                   rule.c_str());
    }
  }
  if (failures == 0) {
    std::printf("mpq_lint selftest OK (%zu corpus files, %zu rules)\n",
                files.size(), kAllRules.size());
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0 && i + 1 < argc) {
      return RunSelfTest(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: mpq_lint [--root DIR] [PATHS...]\n"
                   "       mpq_lint --selftest CORPUS_DIR\n");
      return 2;
    }
    dirs.push_back(argv[i]);
  }
  if (dirs.empty()) dirs = {"src", "bench"};
  return RunLint(root, dirs);
}
