// mpq_trace: summarize an NDJSON trace written by obs::QlogTracer.
//
//   mpq_trace TRACE.qlog        per-path and per-event summary tables
//   mpq_trace --json TRACE.qlog same summary as one JSON object (for CI
//                               and mpq_prof — no screen-scraping)
//   mpq_trace --aggregate METRICS.ndjson
//                               summarize a many-connection workload
//                               metrics file (harness/workload.h): one
//                               row per label with fleet goodput, FCT
//                               percentiles, Jain index, and the
//                               per-shard flow distribution; add --json
//                               for machine-readable output
//   mpq_trace --selftest        run a built-in trace through the full
//                               write -> parse -> summarize round trip
//                               (registered as a ctest smoke test)
//
// Per-path rows include cwnd percentiles computed with the same
// mpq::Percentile the figure pipeline uses, so numbers line up with the
// benches.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/json.h"
#include "obs/qlog.h"
#include "obs/trace_reader.h"
#include "quic/wire.h"

namespace {

using namespace mpq;

void PrintSummary(const obs::TraceSummary& summary) {
  std::printf("trace: %s\n",
              summary.title.empty() ? "(untitled)" : summary.title.c_str());
  std::printf("events: %llu (%llu malformed lines), span %.3f s\n",
              static_cast<unsigned long long>(summary.events),
              static_cast<unsigned long long>(summary.malformed),
              DurationToSeconds(summary.last_time - summary.first_time));

  if (!summary.handshake_milestones.empty()) {
    std::printf("\nhandshake:\n");
    for (const auto& [milestone, time] : summary.handshake_milestones) {
      std::printf("  %-16s %9.3f ms\n", milestone.c_str(),
                  static_cast<double>(time) / 1000.0);
    }
  }

  std::printf("\nper path:\n");
  std::printf("  %4s %8s %8s %6s %12s %7s %6s %9s %9s %9s\n", "path",
              "pkts_tx", "pkts_rx", "lost", "bytes_tx", "requeue", "rtos",
              "cwnd_p50", "cwnd_p90", "cwnd_max");
  for (const auto& [path, p] : summary.paths) {
    if (path < 0) continue;  // events without a path field
    std::vector<double> cwnd = p.cwnd_samples;
    const double p50 = cwnd.empty() ? 0.0 : Percentile(cwnd, 50.0);
    const double p90 = cwnd.empty() ? 0.0 : Percentile(cwnd, 90.0);
    const double pmax = cwnd.empty() ? 0.0 : Percentile(cwnd, 100.0);
    std::printf("  %4d %8llu %8llu %6llu %12llu %7llu %6llu %8.1fk %8.1fk "
                "%8.1fk\n",
                path, static_cast<unsigned long long>(p.packets_sent),
                static_cast<unsigned long long>(p.packets_received),
                static_cast<unsigned long long>(p.packets_lost),
                static_cast<unsigned long long>(p.bytes_sent),
                static_cast<unsigned long long>(p.frames_requeued),
                static_cast<unsigned long long>(p.rtos), p50 / 1024.0,
                p90 / 1024.0, pmax / 1024.0);
  }

  bool any_lifecycle = false;
  for (const auto& [path, p] : summary.paths) {
    if (!p.acked_latency_us.empty() || !p.lost_latency_us.empty()) {
      any_lifecycle = true;
    }
  }
  if (any_lifecycle) {
    std::printf("\npacket lifecycle (sent -> acked/lost, simulated us):\n");
    std::printf("  %4s %-6s %8s %9s %9s %9s\n", "path", "stage", "count",
                "p50", "p99", "p999");
    for (const auto& [path, p] : summary.paths) {
      if (path < 0) continue;
      const auto row = [path](const char* stage,
                              const std::vector<double>& samples) {
        if (samples.empty()) return;
        std::printf("  %4d %-6s %8zu %9.1f %9.1f %9.1f\n", path, stage,
                    samples.size(), Percentile(samples, 50.0),
                    Percentile(samples, 99.0), Percentile(samples, 99.9));
      };
      row("acked", p.acked_latency_us);
      row("lost", p.lost_latency_us);
    }
  }

  if (!summary.scheduler_reasons.empty()) {
    std::printf("\nscheduler decisions:\n");
    for (const auto& [reason, count] : summary.scheduler_reasons) {
      std::printf("  %-20s %llu\n", reason.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }

  if (!summary.frames_sent_by_type.empty()) {
    std::printf("\nframes sent:\n");
    for (const auto& [type, count] : summary.frames_sent_by_type) {
      std::printf("  %-16s %llu\n", type.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }

  if (!summary.frames_requeued_by_type.empty()) {
    std::printf("\nframes requeued after loss:\n");
    for (const auto& [type, count] : summary.frames_requeued_by_type) {
      std::printf("  %-16s %llu\n", type.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }

  if (!summary.link_faults.empty()) {
    std::printf("\nlink faults injected:\n");
    for (const auto& [kind, count] : summary.link_faults) {
      std::printf("  %-16s %llu\n", kind.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }

  std::printf("\nevents by name:\n");
  for (const auto& [name, count] : summary.events_by_name) {
    std::printf("  %-28s %llu\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }
}

/// The whole summary as one JSON object, mirroring the tables
/// PrintSummary renders. Percentiles are precomputed (consumers get
/// numbers, not sample vectors).
void WriteSummaryJson(const obs::TraceSummary& summary,
                      obs::JsonWriter& writer) {
  const auto percentiles = [&writer](const char* key,
                                     const std::vector<double>& samples) {
    writer.Key(key).BeginObject();
    writer.Key("count").UInt(samples.size());
    if (!samples.empty()) {
      writer.Key("p50").Double(Percentile(samples, 50.0));
      writer.Key("p90").Double(Percentile(samples, 90.0));
      writer.Key("p99").Double(Percentile(samples, 99.0));
      writer.Key("p999").Double(Percentile(samples, 99.9));
      writer.Key("max").Double(Percentile(samples, 100.0));
    }
    writer.EndObject();
  };
  const auto string_counts =
      [&writer](const char* key,
                const std::map<std::string, std::uint64_t>& counts) {
        writer.Key(key).BeginObject();
        for (const auto& [name, count] : counts) {
          writer.Key(name).UInt(count);
        }
        writer.EndObject();
      };

  writer.BeginObject();
  writer.Key("title").String(summary.title);
  writer.Key("events").UInt(summary.events);
  writer.Key("malformed").UInt(summary.malformed);
  writer.Key("first_time_us").Int(summary.first_time);
  writer.Key("last_time_us").Int(summary.last_time);
  writer.Key("span_s").Double(
      DurationToSeconds(summary.last_time - summary.first_time));
  writer.Key("paths").BeginObject();
  for (const auto& [path, p] : summary.paths) {
    if (path < 0) continue;
    writer.Key(std::to_string(path)).BeginObject();
    writer.Key("packets_sent").UInt(p.packets_sent);
    writer.Key("packets_received").UInt(p.packets_received);
    writer.Key("packets_lost").UInt(p.packets_lost);
    writer.Key("bytes_sent").UInt(p.bytes_sent);
    writer.Key("frames_sent").UInt(p.frames_sent);
    writer.Key("scheduled").UInt(p.scheduled);
    writer.Key("frames_requeued").UInt(p.frames_requeued);
    writer.Key("rtos").UInt(p.rtos);
    percentiles("cwnd", p.cwnd_samples);
    percentiles("srtt_us", p.srtt_samples_us);
    writer.Key("lifecycle").BeginObject();
    percentiles("acked_us", p.acked_latency_us);
    percentiles("lost_us", p.lost_latency_us);
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndObject();
  string_counts("events_by_name", summary.events_by_name);
  string_counts("scheduler_reasons", summary.scheduler_reasons);
  string_counts("frames_sent_by_type", summary.frames_sent_by_type);
  string_counts("frames_requeued_by_type", summary.frames_requeued_by_type);
  string_counts("link_faults", summary.link_faults);
  writer.Key("handshake").BeginObject();
  for (const auto& [milestone, time] : summary.handshake_milestones) {
    writer.Key(milestone).Int(time);
  }
  writer.EndObject();
  writer.EndObject();
}

// -- workload aggregation (--aggregate) -------------------------------------

/// Rollup of one label's flow rows from a workload metrics NDJSON file
/// (harness/workload.h WriteOutputs: per-flow rows carrying conn/shard/
/// size_bytes/completed/fct_us/goodput_mbps, plus an optional "fleet"
/// row which we cross-check but do not depend on).
struct LabelAggregate {
  std::uint64_t flows = 0;
  std::uint64_t completed = 0;
  std::uint64_t bytes = 0;
  TimePoint first_arrival = 0;
  TimePoint last_completion = 0;
  std::vector<double> fct_us;
  std::vector<double> goodputs_mbps;
  std::map<std::int64_t, std::uint64_t> flows_by_shard;
  bool saw_fleet_row = false;
};

struct AggregateSummary {
  std::map<std::string, LabelAggregate> labels;
  std::uint64_t malformed = 0;
  std::uint64_t rows = 0;
};

double Jain(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  return sum_sq == 0.0
             ? 0.0
             : sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

AggregateSummary ReadAggregate(std::istream& in) {
  AggregateSummary summary;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto parsed = obs::JsonValue::Parse(line);
    if (!parsed.has_value()) {
      ++summary.malformed;
      continue;
    }
    const auto* label_v = parsed->Find("label");
    const std::string label =
        label_v != nullptr ? label_v->AsString() : std::string();
    LabelAggregate& agg = summary.labels[label];
    if (parsed->Find("fleet") != nullptr) {
      agg.saw_fleet_row = true;
      ++summary.rows;
      continue;
    }
    const auto* conn = parsed->Find("conn");
    if (conn == nullptr) {
      ++summary.malformed;
      continue;
    }
    ++summary.rows;
    ++agg.flows;
    const auto* shard = parsed->Find("shard");
    if (shard != nullptr) ++agg.flows_by_shard[shard->AsInt()];
    const TimePoint arrival = parsed->Find("arrival_us") != nullptr
                                  ? parsed->Find("arrival_us")->AsInt()
                                  : 0;
    if (agg.flows == 1 || arrival < agg.first_arrival) {
      agg.first_arrival = arrival;
    }
    const auto* completed = parsed->Find("completed");
    if (completed == nullptr || !completed->AsBool()) continue;
    ++agg.completed;
    const auto* size = parsed->Find("size_bytes");
    if (size != nullptr) {
      agg.bytes += static_cast<std::uint64_t>(size->AsInt());
    }
    const auto* fct = parsed->Find("fct_us");
    if (fct != nullptr) {
      agg.fct_us.push_back(fct->AsDouble());
      agg.last_completion =
          std::max(agg.last_completion, arrival + fct->AsInt());
    }
    const auto* goodput = parsed->Find("goodput_mbps");
    if (goodput != nullptr) agg.goodputs_mbps.push_back(goodput->AsDouble());
  }
  return summary;
}

double AggregateGoodputMbps(const LabelAggregate& agg) {
  const Duration span = agg.last_completion - agg.first_arrival;
  return span > 0
             ? static_cast<double>(agg.bytes) * 8.0 / static_cast<double>(span)
             : 0.0;
}

void PrintAggregate(const AggregateSummary& summary) {
  std::printf("workload rows: %llu (%llu malformed lines)\n",
              static_cast<unsigned long long>(summary.rows),
              static_cast<unsigned long long>(summary.malformed));
  std::printf("\n%-24s %8s %9s %12s %9s %6s %9s %9s %9s\n", "label", "flows",
              "completed", "bytes", "goodput", "jain", "fct_p50", "fct_p99",
              "fct_p999");
  for (const auto& [label, agg] : summary.labels) {
    std::vector<double> fct = agg.fct_us;
    const double p50 = fct.empty() ? 0.0 : Percentile(fct, 50.0);
    const double p99 = fct.empty() ? 0.0 : Percentile(fct, 99.0);
    const double p999 = fct.empty() ? 0.0 : Percentile(fct, 99.9);
    std::printf("%-24s %8llu %9llu %12llu %7.2fM %6.3f %8.1fms %8.1fms "
                "%8.1fms\n",
                label.empty() ? "(unlabeled)" : label.c_str(),
                static_cast<unsigned long long>(agg.flows),
                static_cast<unsigned long long>(agg.completed),
                static_cast<unsigned long long>(agg.bytes),
                AggregateGoodputMbps(agg), Jain(agg.goodputs_mbps),
                p50 / 1000.0, p99 / 1000.0, p999 / 1000.0);
  }
  std::printf("\nflows by shard:\n");
  for (const auto& [label, agg] : summary.labels) {
    std::printf("  %-22s", label.empty() ? "(unlabeled)" : label.c_str());
    for (const auto& [shard, count] : agg.flows_by_shard) {
      std::printf(" %lld:%llu", static_cast<long long>(shard),
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }
}

void WriteAggregateJson(const AggregateSummary& summary,
                        obs::JsonWriter& writer) {
  writer.BeginObject();
  writer.Key("rows").UInt(summary.rows);
  writer.Key("malformed").UInt(summary.malformed);
  writer.Key("labels").BeginObject();
  for (const auto& [label, agg] : summary.labels) {
    writer.Key(label).BeginObject();
    writer.Key("flows").UInt(agg.flows);
    writer.Key("completed").UInt(agg.completed);
    writer.Key("bytes").UInt(agg.bytes);
    writer.Key("goodput_mbps").Double(AggregateGoodputMbps(agg));
    writer.Key("jain_index").Double(Jain(agg.goodputs_mbps));
    std::vector<double> fct = agg.fct_us;
    writer.Key("fct_us").BeginObject();
    writer.Key("count").UInt(fct.size());
    if (!fct.empty()) {
      writer.Key("p50").Double(Percentile(fct, 50.0));
      writer.Key("p99").Double(Percentile(fct, 99.0));
      writer.Key("p999").Double(Percentile(fct, 99.9));
      writer.Key("max").Double(Percentile(fct, 100.0));
    }
    writer.EndObject();
    writer.Key("flows_by_shard").BeginObject();
    for (const auto& [shard, count] : agg.flows_by_shard) {
      writer.Key(std::to_string(shard)).UInt(count);
    }
    writer.EndObject();
    writer.Key("fleet_row_present").Bool(agg.saw_fleet_row);
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
}

/// Synthesize a small trace covering every event type (including a title
/// with characters that need JSON escaping), read it back, and check the
/// counts survive the round trip.
int SelfTest() {
  std::stringstream stream;
  {
    obs::QlogTracer tracer(stream, "selftest \"quoted\"\n\ttitle");
    quic::Frame stream_frame =
        quic::StreamFrame{StreamId{3}, ByteCount{0}, false, {1, 2, 3}};
    quic::Frame ack = quic::AckFrame{
        PathId{0}, 25, {{PacketNumber{1}, PacketNumber{4}}}};
    tracer.OnHandshakeEvent(0, "chlo-sent");
    tracer.OnPathStateChange(10, PathId{0}, "created");
    tracer.OnSchedulerDecision(20, PathId{0}, "lowest-rtt", 137);
    tracer.OnFrameSent(30, PathId{0}, stream_frame);
    tracer.OnPacketSent(30, PathId{0}, PacketNumber{1}, ByteCount{1350}, true);
    tracer.OnPacketSent(40, PathId{1}, PacketNumber{1}, ByteCount{1350}, true);
    tracer.OnFrameReceived(50, PathId{0}, ack);
    tracer.OnPacketReceived(50, PathId{0}, PacketNumber{7}, ByteCount{40});
    tracer.OnPacketLost(60, PathId{1}, PacketNumber{1});
    tracer.OnPacketLifecycle(55, PathId{0}, PacketNumber{1}, "acked", 25);
    tracer.OnPacketLifecycle(60, PathId{1}, PacketNumber{1}, "lost", 20);
    tracer.OnFrameRetransmitQueued(60, PathId{1}, stream_frame);
    tracer.OnRto(70, PathId{1}, 1);
    tracer.OnPathSample(80, PathId{0}, ByteCount{42 * 1024},
                        ByteCount{10 * 1024}, 20000);
    tracer.OnFlowControlBlocked(90, StreamId{3});
    tracer.OnLinkFault(100, 1, "down", 0.0);
    tracer.OnLinkFault(110, 1, "burst-loss", 0.5);
    tracer.OnLinkFault(120, 1, "up", 0.0);
  }

  const auto summary = obs::ReadTrace(stream);
  int failures = 0;
  const auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "selftest FAILED: %s\n", what);
      ++failures;
    }
  };
  expect(summary.malformed == 0, "no malformed lines");
  expect(summary.events == 18, "18 events parsed");
  expect(summary.title.find("\"quoted\"") != std::string::npos,
         "escaped title round-trips");
  expect(summary.paths.at(0).packets_sent == 1, "path0 packets_sent");
  expect(summary.paths.at(1).packets_sent == 1, "path1 packets_sent");
  expect(summary.paths.at(1).packets_lost == 1, "path1 packets_lost");
  expect(summary.paths.at(1).rtos == 1, "path1 rtos");
  expect(summary.paths.at(0).cwnd_samples.size() == 1 &&
             summary.paths.at(0).cwnd_samples[0] == 42 * 1024,
         "cwnd sample");
  expect(summary.scheduler_reasons.at("lowest-rtt") == 1,
         "scheduler reason counted");
  expect(summary.frames_sent_by_type.at("STREAM") == 1, "frame type");
  expect(summary.paths.at(1).frames_requeued == 1, "path1 frames_requeued");
  expect(summary.frames_requeued_by_type.at("STREAM") == 1,
         "requeued frame type");
  expect(summary.handshake_milestones.at("chlo-sent") == 0,
         "handshake milestone");
  expect(summary.events_by_name.at("flow_control:blocked") == 1,
         "blocked event");
  expect(summary.link_faults.at("down") == 1 &&
             summary.link_faults.at("up") == 1 &&
             summary.link_faults.at("burst-loss") == 1,
         "link faults counted by kind");
  expect(summary.events_by_name.at("sim:link_down") == 1 &&
             summary.events_by_name.at("sim:fault") == 1,
         "fault event names");
  expect(summary.paths.at(0).acked_latency_us.size() == 1 &&
             summary.paths.at(0).acked_latency_us[0] == 25.0,
         "acked lifecycle latency");
  expect(summary.paths.at(1).lost_latency_us.size() == 1 &&
             summary.paths.at(1).lost_latency_us[0] == 20.0,
         "lost lifecycle latency");
  {
    // The --json rendering must itself be valid JSON with the lifecycle
    // percentiles present.
    obs::JsonWriter writer;
    WriteSummaryJson(summary, writer);
    const auto parsed = obs::JsonValue::Parse(writer.str());
    expect(parsed.has_value(), "--json output parses");
    if (parsed.has_value()) {
      const auto* paths = parsed->Find("paths");
      expect(paths != nullptr && paths->Find("0") != nullptr &&
                 paths->Find("0")->Find("lifecycle") != nullptr,
             "--json lifecycle present");
    }
  }

  {
    // Aggregate mode round trip: two labels, one incomplete flow, a
    // fleet rollup row, and a malformed line.
    std::stringstream metrics;
    metrics
        << R"({"label":"sp","conn":0,"shard":1,"arrival_us":0,)"
        << R"("size_bytes":1000,"completed":true,"fct_us":1000,)"
        << R"("goodput_mbps":8.0})" << '\n'
        << R"({"label":"sp","conn":1,"shard":1,"arrival_us":500,)"
        << R"("size_bytes":3000,"completed":true,"fct_us":1500,)"
        << R"("goodput_mbps":16.0})" << '\n'
        << R"({"label":"sp","conn":2,"shard":4,"arrival_us":900,)"
        << R"("size_bytes":5000,"completed":false,"fct_us":0,)"
        << R"("goodput_mbps":0.0})" << '\n'
        << R"({"label":"sp","fleet":{"flows":3,"completed":2}})" << '\n'
        << R"({"label":"mp","conn":0,"shard":0,"arrival_us":0,)"
        << R"("size_bytes":2000,"completed":true,"fct_us":2000,)"
        << R"("goodput_mbps":8.0})" << '\n'
        << "not json\n";
    const auto agg = ReadAggregate(metrics);
    expect(agg.malformed == 1, "aggregate: malformed line counted");
    expect(agg.rows == 5, "aggregate: five rows parsed");
    expect(agg.labels.size() == 2, "aggregate: two labels");
    const auto& sp = agg.labels.at("sp");
    expect(sp.flows == 3 && sp.completed == 2, "aggregate: sp flow counts");
    expect(sp.bytes == 4000, "aggregate: completed bytes only");
    expect(sp.saw_fleet_row, "aggregate: fleet row detected");
    expect(sp.flows_by_shard.at(1) == 2 && sp.flows_by_shard.at(4) == 1,
           "aggregate: shard distribution");
    // 4000 bytes over first arrival 0 .. last completion 2000 us.
    expect(AggregateGoodputMbps(sp) == 16.0, "aggregate: goodput math");
    expect(Jain({8.0, 16.0}) > 0.89 && Jain({8.0, 16.0}) < 0.91,
           "aggregate: jain math");
    obs::JsonWriter writer;
    WriteAggregateJson(agg, writer);
    const auto parsed = obs::JsonValue::Parse(writer.str());
    expect(parsed.has_value(), "aggregate: --json output parses");
    if (parsed.has_value()) {
      const auto* labels = parsed->Find("labels");
      expect(labels != nullptr && labels->Find("sp") != nullptr &&
                 labels->Find("sp")->Find("fct_us")->Find("count")->AsInt() ==
                     2,
             "aggregate: --json fct histogram count");
    }
  }

  if (failures == 0) {
    std::stringstream replay(stream.str());
    PrintSummary(obs::ReadTrace(replay));
    std::printf("\nselftest OK\n");
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--selftest") == 0) {
    return SelfTest();
  }
  bool json = false;
  bool aggregate = false;
  const char* file = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--aggregate") == 0) {
      aggregate = true;
    } else if (file == nullptr) {
      file = argv[i];
    } else {
      file = nullptr;
      break;
    }
  }
  if (file == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--json] TRACE.qlog | --aggregate [--json] "
                 "METRICS.ndjson | --selftest\n"
                 "Summarize an NDJSON trace produced by obs::QlogTracer\n"
                 "(bench --obs DIR, or TransferOptions::qlog_path), or a\n"
                 "many-connection workload metrics file (--aggregate).\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(file);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", file);
    return 1;
  }
  if (aggregate) {
    const auto summary = ReadAggregate(in);
    if (summary.rows == 0) {
      std::fprintf(stderr, "no workload rows in %s (%llu malformed lines)\n",
                   file, static_cast<unsigned long long>(summary.malformed));
      return 1;
    }
    if (json) {
      obs::JsonWriter writer;
      WriteAggregateJson(summary, writer);
      std::printf("%s\n", writer.str().c_str());
    } else {
      PrintAggregate(summary);
    }
    return 0;
  }
  const auto summary = obs::ReadTrace(in);
  if (summary.events == 0) {
    std::fprintf(stderr, "no events in %s (%llu malformed lines)\n", file,
                 static_cast<unsigned long long>(summary.malformed));
    return 1;
  }
  if (json) {
    obs::JsonWriter writer;
    WriteSummaryJson(summary, writer);
    std::printf("%s\n", writer.str().c_str());
  } else {
    PrintSummary(summary);
  }
  return 0;
}
