// mpq_chaos: seeded fault-injection sweeps over the MPQUIC stack
// (docs/ROBUSTNESS.md).
//
//   mpq_chaos --sweep N [--seed S]   run N seeded scenarios (seeds
//                                    S..S+N-1); exit 1 on any liveness
//                                    violation
//   mpq_chaos --seed S [--qlog F]    replay one seed verbosely,
//                                    optionally with a qlog trace
//
// Every seed is deterministic: a violation found by a sweep reproduces
// exactly under the same seed, with a trace, via the second form.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/chaos.h"

namespace {

using namespace mpq;

void PrintRun(const harness::ChaosRunResult& run, bool verbose) {
  if (verbose || !run.violations.empty()) {
    std::printf("seed %llu: %s\n",
                static_cast<unsigned long long>(run.seed),
                run.scenario.c_str());
    std::printf("  established=%d completed=%d closed=%d bytes=%llu "
                "finish=%.3fs\n",
                run.established ? 1 : 0, run.completed ? 1 : 0,
                run.closed ? 1 : 0,
                static_cast<unsigned long long>(run.bytes_received.value()),
                DurationToSeconds(run.finish_time));
  }
  for (const std::string& violation : run.violations) {
    std::printf("  VIOLATION: %s\n", violation.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  harness::ChaosOptions options;
  int sweep = 0;
  bool have_seed = false;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = std::atoi(next("--sweep"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(next("--seed"), nullptr, 10);
      have_seed = true;
    } else if (std::strcmp(argv[i], "--size") == 0) {
      options.transfer_size = ByteCount{
          std::strtoull(next("--size"), nullptr, 10)};
    } else if (std::strcmp(argv[i], "--qlog") == 0) {
      options.qlog_path = next("--qlog");
    } else {
      std::fprintf(stderr,
                   "usage: %s --sweep N [--seed S] [--size BYTES]\n"
                   "       %s --seed S [--qlog FILE] [--size BYTES]\n",
                   argv[0], argv[0]);
      return 2;
    }
  }

  if (sweep > 0) {
    options.runs = sweep;
    const harness::ChaosSweepResult result = harness::RunChaos(options);
    for (const auto& run : result.runs) PrintRun(run, false);
    std::printf("%d/%d scenarios clean\n",
                static_cast<int>(result.runs.size()) - result.violation_runs,
                static_cast<int>(result.runs.size()));
    return result.violation_runs == 0 ? 0 : 1;
  }
  if (have_seed) {
    const harness::ChaosRunResult run = harness::RunChaosOne(options);
    PrintRun(run, true);
    return run.violations.empty() ? 0 : 1;
  }
  std::fprintf(stderr, "one of --sweep N or --seed S is required\n");
  return 2;
}
