// Control: clock reads are allowed under src/common (this file lints
// with a virtual src/common path) — no findings expected.
#include <chrono>

long Now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
