// Seeded violation: iterating an unordered container in protocol code.
// expect: unordered-iter
#include <unordered_map>

std::unordered_map<int, int> table;

int Sum() {
  int total = 0;
  for (const auto& [key, value] : table) total += value;
  return total;
}
