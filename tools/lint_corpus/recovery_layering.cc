// Seeded violation: the recovery layer reaching sideways into stream
// state. Lost stream frames must be reported through RecoveryDelegate
// (OnStreamFrameLost), not by touching SendStream directly.
#include "quic/streams.h"  // expect: layering

namespace corpus {

int DetectLosses() { return 0; }

}  // namespace corpus
