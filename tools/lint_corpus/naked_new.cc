// Seeded violation: a new expression nobody owns.
// expect: naked-new
struct Widget {};

Widget* Make() { return new Widget; }
