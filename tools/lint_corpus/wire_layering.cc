// Seeded violation: wire-format code reaching up into the connection
// layer. Wire encoding sits at the bottom of the quic include DAG and
// may depend on common/ and sim/net only.
#include "quic/connection.h"  // expect: layering
#include "obs/prof.h"  // exempt: the profiler is a foundation-layer leaf

namespace corpus {

int EncodeSomething() { return 1; }

}  // namespace corpus
