// Suppression control for NOLINTNEXTLINE: the marker on its own line
// must silence exactly the next line — scoped to the named rule, or
// everything when bare — and must never suppress its *own* line (the
// "NOLINT" prefix inside "NOLINTNEXTLINE" does not count as a bare
// NOLINT).
struct Gadget {};

Gadget* MakeSilenced() {
  // NOLINTNEXTLINE(mpq-naked-new): ownership passes to a C API
  return new Gadget;
}

Gadget* MakeBareSilenced() {
  // NOLINTNEXTLINE
  return new Gadget;
}

// A marker scoped to a *different* rule must not suppress this one.
// expect: naked-new
Gadget* MakeStillFlagged() {
  // NOLINTNEXTLINE(mpq-iostream-io)
  return new Gadget;
}

// The marker only reaches one line: two lines down is still flagged.
// expect: naked-new
Gadget* MakeOutOfReach() {
  // NOLINTNEXTLINE(mpq-naked-new)
  Gadget* unrelated = nullptr;
  (void)unrelated;
  return new Gadget;
}
