// Seeded violation: type punning in protocol code (virtual path
// src/quic/reinterpret.cc — not the wire codec, not crypto).
// expect: reinterpret-cast
#include <cstdint>

std::uint32_t PunProtocolState(const float value) {
  const float* p = &value;
  return *reinterpret_cast<const std::uint32_t*>(p);
}

// The rule is NOLINT-suppressible like every other.
std::uint32_t PunButSanctioned(const float value) {
  const float* p = &value;
  return *reinterpret_cast<const std::uint32_t*>(p);  // NOLINT(mpq-reinterpret-cast)
}
