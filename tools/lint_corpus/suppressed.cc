// Control: NOLINT suppression — no findings expected.
struct Legacy {};

Legacy* MakeLegacy() {
  return new Legacy;  // NOLINT(mpq-naked-new): ownership passes to C API
}
