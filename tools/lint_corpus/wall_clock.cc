// Seeded violation: host clock read in protocol code.
// expect: wall-clock
#include <chrono>

long Now() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
