// Seeded violation: parent-relative include path.
// expect: include-hygiene
#include "../quic/wire.h"
