// Seeded violation: header without #pragma once.
// expect: pragma-once
inline int Answer() { return 42; }
