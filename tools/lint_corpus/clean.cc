// Control: a clean protocol file — no findings expected. The smart-
// pointer-owned allocation and the unordered lookup (no iteration) are
// both allowed.
#include <memory>
#include <unordered_map>

struct Widget {};

std::unordered_map<int, int> table;

std::unique_ptr<Widget> Make() {
  return std::unique_ptr<Widget>(new Widget);
}

int Lookup(int key) {
  auto it = table.find(key);
  return it == table.end() ? 0 : it->second;
}
