// Seeded violation: global RNG instead of the seeded mpq::Rng.
// expect: raw-rng
#include <cstdlib>

int Roll() { return std::rand() % 6; }
