// Seeded violation: iostream writes in library code.
// expect: iostream-io
// expect: iostream-io
#include <iostream>

void Report(int value) { std::cout << value << "\n"; }
