// Seeded violation: raw MonotonicNanos() timing in protocol code.
// Datapath self-measurement goes through MPQ_PROF_SCOPE so it
// aggregates into profile dumps instead of ad-hoc counters. The
// suppressed read below is the sanctioned escape hatch.
// expect: prof-clock
#include "common/clock.h"

unsigned long long TimeSomething() {
  const auto t0 = MonotonicNanos();
  return MonotonicNanos() - t0;  // NOLINT(mpq-prof-clock): calibration
}
