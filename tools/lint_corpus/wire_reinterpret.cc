// Control: the same cast is allowed in the wire codec (virtual path
// src/quic/wire_reinterpret.cc matches the src/quic/wire* carve-out) —
// no findings expected.
#include <cstdint>

const std::uint8_t* WireBytes(const char* buffer) {
  return reinterpret_cast<const std::uint8_t*>(buffer);
}
