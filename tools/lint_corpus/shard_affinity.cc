// Seeded violation: reaching into the server's connection table from
// code outside the server engine. Connections are sharded by CID hash
// (quic::ShardOf) and owned by one shard's event loop; cross-shard
// lookups bypass that ownership. The suppressed call shows the
// sanctioned escape hatch for read-only diagnostics.
// expect: shard-affinity
#include "quic/server.h"

mpq::quic::Server* server;

mpq::quic::Connection* Lookup(mpq::ConnectionId cid) {
  return server->FindConnection(cid);
}

std::size_t CountDiagnostic() {
  // NOLINTNEXTLINE(mpq-shard-affinity): offline diagnostics, loop quiesced
  return server->Connections().size();
}
