// Seeded violation: CPU intrinsics outside src/crypto. Per-arch vector
// code and feature probes live behind the crypto dispatch layer
// (src/crypto/cpu.h) with its scalar fallback — protocol layers stay
// architecture-neutral. This file poses as src/quic/ code, so the raw
// reinterpret_casts are findings too (that rule confines type punning
// to src/crypto and quic/wire). The suppressed probe at the bottom is
// the sanctioned escape hatch.
// expect: simd-intrinsics
// expect: simd-intrinsics
// expect: simd-intrinsics
// expect: reinterpret-cast
// expect: reinterpret-cast
#include <emmintrin.h>

int SumFour(const int* values) {
  __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(values));
  int out[4];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), v);
  return out[0] + out[1] + out[2] + out[3];
}

bool HasAvx2() {
  return __builtin_cpu_supports("avx2");  // NOLINT(mpq-simd-intrinsics): probe
}
