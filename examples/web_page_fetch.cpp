// Web-page-style fetch: many objects over one MPQUIC connection, each on
// its own stream (§2: streams prevent head-of-line blocking between
// objects), pulled over two aggregated paths. Prints a waterfall of
// per-object completion times.
//
//   $ ./web_page_fetch
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "quic/endpoint.h"
#include "sim/topology.h"

using namespace mpq;

int main() {
  sim::Simulator simulator;
  sim::Network network(simulator, Rng(8));
  std::array<sim::PathParams, 2> paths;
  paths[0].capacity_mbps = 15.0;  // WiFi-ish
  paths[0].rtt = 30 * kMillisecond;
  paths[0].max_queue_delay = 60 * kMillisecond;
  paths[0].random_loss_rate = 0.005;
  paths[1].capacity_mbps = 8.0;  // LTE-ish
  paths[1].rtt = 60 * kMillisecond;
  paths[1].max_queue_delay = 80 * kMillisecond;
  auto topology = sim::BuildTwoPathTopology(network, paths);

  quic::ConnectionConfig config;
  config.multipath = true;
  config.congestion = cc::Algorithm::kOlia;

  quic::ServerEndpoint server(
      simulator, network,
      {topology.server_addr[0], topology.server_addr[1]}, config, 1);
  server.SetAcceptHandler([](quic::Connection& connection) {
    connection.SetStreamDataHandler(
        [&connection](StreamId stream, ByteCount,
                      std::span<const std::uint8_t> data, bool fin) {
          if (fin && !data.empty()) {
            // First byte of the request encodes the object size in KiB.
            const ByteCount size = ByteCount{data[0]} * 1024;
            connection.SendOnStream(
                stream, std::make_unique<PatternSource>(stream, size));
          }
        });
  });

  // A "page": one 200 KiB document, four 100 KiB scripts/styles, eight
  // 30 KiB images — all requested the moment the handshake completes.
  struct Object {
    const char* name;
    std::uint8_t kib;
    StreamId stream{};
    double done_at = -1;
  };
  std::vector<Object> objects = {{"document", 200}};
  for (int i = 0; i < 4; ++i) objects.push_back({"script", 100});
  for (int i = 0; i < 8; ++i) objects.push_back({"image", 30});

  quic::ClientEndpoint client(
      simulator, network,
      {topology.client_addr[0], topology.client_addr[1]}, config, 2);
  int remaining = static_cast<int>(objects.size());
  client.connection().SetStreamDataHandler(
      [&](StreamId stream, ByteCount, std::span<const std::uint8_t>,
          bool fin) {
        if (!fin) return;
        for (auto& object : objects) {
          if (object.stream == stream && object.done_at < 0) {
            object.done_at = DurationToSeconds(simulator.now());
            --remaining;
          }
        }
      });
  client.connection().SetEstablishedHandler([&] {
    StreamId next = StreamId{5};
    for (auto& object : objects) {
      object.stream = next;
      next += 2;
      client.connection().SendOnStream(
          object.stream, std::make_unique<BufferSource>(
                             std::vector<std::uint8_t>{object.kib}));
    }
  });
  client.Connect(topology.server_addr[0]);
  while (remaining > 0 && simulator.RunOne(60 * kSecond)) {
  }

  std::printf("fetched %zu objects (%u KiB total) over WiFi+LTE with 0.5%% "
              "WiFi loss\n\n",
              objects.size(), 200u + 4 * 100 + 8 * 30);
  std::sort(objects.begin(), objects.end(),
            [](const Object& a, const Object& b) {
              return a.done_at < b.done_at;
            });
  std::printf("%-10s %-10s waterfall (10 ms per column)\n", "object",
              "done [s]");
  for (const auto& object : objects) {
    std::printf("%-10s %8.3f   ", object.name, object.done_at);
    for (double t = 0; t < object.done_at; t += 0.01) std::printf("=");
    std::printf("|\n");
  }
  std::printf("\nstreams let small images finish early instead of queueing "
              "behind the document; both radios carry the page.\n");
  return remaining == 0 ? 0 : 1;
}
