// Protocol shootout: TCP vs QUIC vs MPTCP vs MPQUIC on one scenario of
// your choosing, through the same experiment harness the paper-figure
// benches use. A handy way to poke at the design space by hand.
//
//   $ ./protocol_shootout [size_bytes] [cap0] [cap1] [rtt0_ms] [rtt1_ms] [loss%]
//   $ ./protocol_shootout 20971520 10 2 30 90 1.0
#include <cstdio>
#include <cstdlib>

#include "harness/runner.h"

using namespace mpq;
using namespace mpq::harness;

int main(int argc, char** argv) {
  ByteCount size{argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                          : 20ULL * 1024 * 1024};
  std::array<sim::PathParams, 2> paths;
  paths[0].capacity_mbps = argc > 2 ? std::atof(argv[2]) : 10.0;
  paths[1].capacity_mbps = argc > 3 ? std::atof(argv[3]) : 4.0;
  paths[0].rtt = MillisToDuration(argc > 4 ? std::atof(argv[4]) : 30.0);
  paths[1].rtt = MillisToDuration(argc > 5 ? std::atof(argv[5]) : 80.0);
  const double loss = argc > 6 ? std::atof(argv[6]) / 100.0 : 0.0;
  for (auto& path : paths) {
    path.max_queue_delay = 60 * kMillisecond;
    path.random_loss_rate = loss;
  }

  std::printf("GET %llu bytes; path0 %.1f Mbps/%lld ms, path1 %.1f "
              "Mbps/%lld ms, loss %.2f%%\n\n",
              static_cast<unsigned long long>(size), paths[0].capacity_mbps,
              static_cast<long long>(paths[0].rtt / kMillisecond),
              paths[1].capacity_mbps,
              static_cast<long long>(paths[1].rtt / kMillisecond),
              loss * 100.0);

  std::printf("%-8s %-12s %-12s %s\n", "proto", "time [s]", "goodput",
              "(single-path protocols use path 0)");
  for (Protocol protocol : {Protocol::kTcp, Protocol::kQuic,
                            Protocol::kMptcp, Protocol::kMpquic}) {
    TransferOptions options;
    options.transfer_size = size;
    options.seed = 99;
    const TransferResult median =
        MedianTransfer(protocol, paths, options, /*repetitions=*/3);
    std::printf("%-8s %9.2f    %7.2f Mbps %s\n",
                ToString(protocol).c_str(),
                DurationToSeconds(median.completion_time),
                median.goodput_mbps, median.completed ? "" : "(incomplete)");
  }
  return 0;
}
