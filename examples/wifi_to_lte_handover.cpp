// Seamless network handover (the paper's §4.3 / Fig. 11 scenario and the
// headline smartphone use case): an interactive request/response session
// runs over MPQUIC while the WiFi path dies mid-session; traffic shifts
// to LTE within roughly one retransmission timeout, helped by the PATHS
// frame that tells the server not to answer on the dead path.
//
//   $ ./wifi_to_lte_handover
#include <cstdio>

#include "harness/runner.h"

using namespace mpq;
using namespace mpq::harness;

int main() {
  HandoverOptions options;
  options.initial_path_rtt = 15 * kMillisecond;   // WiFi
  options.second_path_rtt = 25 * kMillisecond;    // LTE
  options.failure_time = 3 * kSecond;             // WiFi dies here
  options.end_time = 8 * kSecond;
  options.seed = 3;

  std::printf("750-byte request every 400 ms; WiFi (15 ms RTT) fails at "
              "t = 3 s; LTE (25 ms RTT) takes over\n\n");
  std::printf("%-10s %-14s %s\n", "sent at", "reply delay", "");

  const auto samples = RunQuicHandover(options);
  for (const auto& sample : samples) {
    const double when = DurationToSeconds(sample.sent_time);
    if (!sample.answered) {
      std::printf("%8.2f s  %-12s\n", when, "LOST");
      continue;
    }
    const double ms = static_cast<double>(sample.response_delay) / 1000.0;
    // Crude bar chart: one '#' per 10 ms.
    std::printf("%8.2f s  %8.1f ms  ", when, ms);
    for (int i = 0; i < ms / 10.0 && i < 60; ++i) std::printf("#");
    if (when > DurationToSeconds(options.failure_time) &&
        when < DurationToSeconds(options.failure_time) + 0.5) {
      std::printf("   <- WiFi just died");
    }
    std::printf("\n");
  }
  std::printf("\nthe single spike is the client's RTO discovering the dead "
              "path; afterwards every request rides LTE.\n");
  return 0;
}
