// Quickstart: a single-path QUIC file download over the simulated
// network. Shows the core public API: build a Simulator + Network +
// topology, bind a ServerEndpoint and a ClientEndpoint, exchange a
// request and stream the response back on stream 3.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>
#include <string>

#include "quic/endpoint.h"
#include "sim/topology.h"

using namespace mpq;

int main() {
  // 1. A deterministic simulated network: two disjoint paths between a
  //    client and a server (we only use the first one here) — 10 Mbps,
  //    40 ms RTT, 50 ms of bottleneck buffer.
  sim::Simulator simulator;
  sim::Network network(simulator, Rng(/*seed=*/42));
  std::array<sim::PathParams, 2> paths;
  for (auto& path : paths) {
    path.capacity_mbps = 10.0;
    path.rtt = 40 * kMillisecond;
    path.max_queue_delay = 50 * kMillisecond;
  }
  auto topology = sim::BuildTwoPathTopology(network, paths);

  // 2. A QUIC server that answers "GET <n>" with n pattern bytes.
  quic::ConnectionConfig config;  // defaults: single path, CUBIC
  quic::ServerEndpoint server(
      simulator, network,
      {topology.server_addr[0], topology.server_addr[1]}, config,
      /*seed=*/1);
  server.SetAcceptHandler([](quic::Connection& connection) {
    auto request = std::make_shared<std::string>();
    connection.SetStreamDataHandler(
        [&connection, request](StreamId stream, ByteCount,
                               std::span<const std::uint8_t> data, bool fin) {
          request->append(data.begin(), data.end());
          if (fin) {
            const ByteCount size = ByteCount{std::stoull(request->substr(4))};
            std::printf("[server] %s -> sending %llu bytes\n",
                        request->c_str(),
                        static_cast<unsigned long long>(size));
            connection.SendOnStream(
                stream, std::make_unique<PatternSource>(stream, size));
          }
        });
  });

  // 3. A client that requests 1 MiB and reports progress.
  quic::ClientEndpoint client(simulator, network, {topology.client_addr[0]},
                              config, /*seed=*/2);
  constexpr ByteCount kFileSize = ByteCount{1024 * 1024};
  ByteCount received{};
  client.connection().SetStreamDataHandler(
      [&](StreamId, ByteCount, std::span<const std::uint8_t> data,
          bool fin) {
        const ByteCount before = received;
        received += data.size();
        if (before / (256 * 1024) != received / (256 * 1024)) {
          std::printf("[client] %6.2f s  %llu KiB\n",
                      DurationToSeconds(simulator.now()),
                      static_cast<unsigned long long>(received / 1024));
        }
        if (fin) {
          std::printf("[client] done: %llu bytes in %.3f s (%.2f Mbps "
                      "goodput)\n",
                      static_cast<unsigned long long>(received),
                      DurationToSeconds(simulator.now()),
                      static_cast<double>(received) * 8.0 /
                          DurationToSeconds(simulator.now()) / 1e6);
        }
      });
  client.connection().SetEstablishedHandler([&] {
    std::printf("[client] handshake complete at %.3f s (1 RTT)\n",
                DurationToSeconds(simulator.now()));
    const std::string request = "GET " + std::to_string(kFileSize.value());
    client.connection().SendOnStream(
        StreamId{3}, std::make_unique<BufferSource>(
               std::vector<std::uint8_t>(request.begin(), request.end())));
  });

  // 4. Go.
  client.Connect(topology.server_addr[0]);
  simulator.Run();

  const auto& stats = client.connection().stats();
  std::printf("[client] packets sent %llu, received %llu\n",
              static_cast<unsigned long long>(stats.packets_sent),
              static_cast<unsigned long long>(stats.packets_received));
  return received == kFileSize ? 0 : 1;
}
