// Bandwidth aggregation on a smartphone-like host: WiFi (20 Mbps, 25 ms)
// + LTE (12 Mbps, 50 ms). Downloads the same 16 MiB file with single-path
// QUIC over each interface and with MPQUIC over both, printing the
// completion times, the per-path byte split, and the experimental
// aggregation benefit of §4.1.
//
//   $ ./multipath_download
#include <cstdio>
#include <memory>
#include <string>

#include "harness/runner.h"

using namespace mpq;
using namespace mpq::harness;

int main() {
  std::array<sim::PathParams, 2> paths;
  paths[0].capacity_mbps = 20.0;  // WiFi
  paths[0].rtt = 25 * kMillisecond;
  paths[0].max_queue_delay = 60 * kMillisecond;
  paths[1].capacity_mbps = 12.0;  // LTE
  paths[1].rtt = 50 * kMillisecond;
  paths[1].max_queue_delay = 80 * kMillisecond;

  TransferOptions options;
  options.transfer_size = ByteCount{16 * 1024 * 1024};
  options.seed = 7;

  std::printf("downloading %llu bytes over WiFi (20 Mbps / 25 ms) and LTE "
              "(12 Mbps / 50 ms)\n\n",
              static_cast<unsigned long long>(options.transfer_size));

  options.initial_path = 0;
  const TransferResult wifi = RunTransfer(Protocol::kQuic, paths, options);
  std::printf("QUIC over WiFi only:   %6.2f s  (%.2f Mbps)\n",
              DurationToSeconds(wifi.completion_time), wifi.goodput_mbps);

  options.initial_path = 1;
  const TransferResult lte = RunTransfer(Protocol::kQuic, paths, options);
  std::printf("QUIC over LTE only:    %6.2f s  (%.2f Mbps)\n",
              DurationToSeconds(lte.completion_time), lte.goodput_mbps);

  options.initial_path = 0;
  const TransferResult multi = RunTransfer(Protocol::kMpquic, paths, options);
  std::printf("MPQUIC over both:      %6.2f s  (%.2f Mbps)\n\n",
              DurationToSeconds(multi.completion_time), multi.goodput_mbps);

  std::printf("experimental aggregation benefit: %.2f  "
              "(0 = best single path, 1 = perfect aggregation)\n",
              ExperimentalAggregationBenefit(multi.goodput_mbps,
                                             wifi.goodput_mbps,
                                             lte.goodput_mbps));
  return 0;
}
