// Dual-stack host (the paper's second motivating use case): the IPv4 and
// IPv6 paths to the same server have very different quality. MPQUIC opens
// a path over each address family — the server advertises its second
// address during the handshake (the ADD_ADDRESS mechanism of §3, carried
// in the SHLO here) — measures both, and automatically puts the traffic
// on the better path without the application doing anything.
//
//   $ ./dualstack_race
#include <cstdio>
#include <memory>
#include <string>

#include "quic/endpoint.h"
#include "sim/topology.h"

using namespace mpq;

int main() {
  sim::Simulator simulator;
  sim::Network network(simulator, Rng(11));
  std::array<sim::PathParams, 2> paths;
  paths[0].capacity_mbps = 5.0;  // "IPv4": congested, slow
  paths[0].rtt = 120 * kMillisecond;
  paths[0].max_queue_delay = 100 * kMillisecond;
  paths[1].capacity_mbps = 40.0;  // "IPv6": clean, fast
  paths[1].rtt = 20 * kMillisecond;
  paths[1].max_queue_delay = 40 * kMillisecond;
  auto topology = sim::BuildTwoPathTopology(network, paths);

  quic::ConnectionConfig config;
  config.multipath = true;
  config.congestion = cc::Algorithm::kOlia;

  quic::ServerEndpoint server(
      simulator, network,
      {topology.server_addr[0], topology.server_addr[1]}, config, 1);
  server.SetAcceptHandler([](quic::Connection& connection) {
    auto request = std::make_shared<std::string>();
    connection.SetStreamDataHandler(
        [&connection, request](StreamId stream, ByteCount,
                               std::span<const std::uint8_t> data, bool fin) {
          request->append(data.begin(), data.end());
          if (fin) {
            connection.SendOnStream(
                stream, std::make_unique<PatternSource>(
                            stream, ByteCount{std::stoull(request->substr(4))}));
          }
        });
  });

  // The client starts on the IPv4 address — it has no idea IPv6 is
  // better. MPQUIC discovers that on its own.
  quic::ClientEndpoint client(
      simulator, network,
      {topology.client_addr[0], topology.client_addr[1]}, config, 2);
  bool done = false;
  client.connection().SetStreamDataHandler(
      [&](StreamId, ByteCount, std::span<const std::uint8_t>, bool fin) {
        if (fin) done = true;
      });
  client.connection().SetEstablishedHandler([&] {
    const std::string request = "GET " + std::to_string(8 * 1024 * 1024);
    client.connection().SendOnStream(
        StreamId{3}, std::make_unique<BufferSource>(
               std::vector<std::uint8_t>(request.begin(), request.end())));
  });
  client.Connect(topology.server_addr[0]);  // IPv4 first
  simulator.Run();

  std::printf("8 MiB downloaded in %.2f s, connection started on the SLOW "
              "IPv4 path\n\n",
              DurationToSeconds(simulator.now()));
  quic::Connection* server_conn =
      server.FindConnection(client.connection().cid());
  std::printf("%-24s %-14s %-12s %s\n", "server path", "bytes sent",
              "share", "smoothed RTT");
  ByteCount total{};
  for (const quic::Path* path : server_conn->paths()) {
    total += path->bytes_sent();
  }
  for (const quic::Path* path : server_conn->paths()) {
    std::printf("path %d (%s)    %10llu     %5.1f%%      %.1f ms\n",
                path->id().value(), path->id() == 0 ? "IPv4, slow" : "IPv6, fast",
                static_cast<unsigned long long>(path->bytes_sent()),
                100.0 * static_cast<double>(path->bytes_sent()) /
                    static_cast<double>(total),
                static_cast<double>(path->rtt().smoothed()) / 1000.0);
  }
  std::printf("\nthe scheduler learned the IPv6 path's RTT from the very "
              "first packets (no extra handshake) and moved the bulk of "
              "the transfer there.\n");
  return done ? 0 : 1;
}
