// Tests for the experiment harness: the aggregation-benefit formula of
// §4.1, run determinism, protocol plumbing, data integrity across all
// four protocols and scenario classes, the handover workload, and the
// figure-series computations.
#include <gtest/gtest.h>

#include "harness/figures.h"
#include "harness/runner.h"

namespace mpq::harness {
namespace {

std::array<sim::PathParams, 2> TestPaths(double cap0 = 10, double cap1 = 4,
                                         double rtt0_ms = 30,
                                         double rtt1_ms = 80,
                                         double loss = 0.0) {
  std::array<sim::PathParams, 2> paths;
  paths[0].capacity_mbps = cap0;
  paths[1].capacity_mbps = cap1;
  paths[0].rtt = MillisToDuration(rtt0_ms);
  paths[1].rtt = MillisToDuration(rtt1_ms);
  for (auto& path : paths) {
    path.max_queue_delay = 60 * kMillisecond;
    path.random_loss_rate = loss;
  }
  return paths;
}

TEST(AggregationBenefit, PaperFormula) {
  // Perfect aggregation: Gm = G1 + G2.
  EXPECT_DOUBLE_EQ(ExperimentalAggregationBenefit(15, 10, 5), 1.0);
  // Equal to the best single path.
  EXPECT_DOUBLE_EQ(ExperimentalAggregationBenefit(10, 10, 5), 0.0);
  // Half of the extra capacity realised.
  EXPECT_DOUBLE_EQ(ExperimentalAggregationBenefit(12.5, 10, 5), 0.5);
  // Worse than the best single path: scaled by Gmax.
  EXPECT_DOUBLE_EQ(ExperimentalAggregationBenefit(5, 10, 5), -0.5);
  // Total failure.
  EXPECT_DOUBLE_EQ(ExperimentalAggregationBenefit(0, 10, 5), -1.0);
  // Better than the sum (possible experimentally): > 1.
  EXPECT_GT(ExperimentalAggregationBenefit(20, 10, 5), 1.0);
}

TEST(Runner, DeterministicForSameSeed) {
  const auto paths = TestPaths();
  TransferOptions options;
  options.transfer_size = ByteCount{512 * 1024};
  options.seed = 99;
  const TransferResult a = RunTransfer(Protocol::kMpquic, paths, options);
  const TransferResult b = RunTransfer(Protocol::kMpquic, paths, options);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.bytes_received, b.bytes_received);
}

TEST(Runner, SeedChangesOutcomeUnderLoss) {
  const auto paths = TestPaths(10, 4, 30, 80, /*loss=*/0.02);
  TransferOptions options;
  options.transfer_size = ByteCount{512 * 1024};
  options.seed = 1;
  const TransferResult a = RunTransfer(Protocol::kQuic, paths, options);
  options.seed = 2;
  const TransferResult b = RunTransfer(Protocol::kQuic, paths, options);
  EXPECT_NE(a.completion_time, b.completion_time);
}

class AllProtocols : public ::testing::TestWithParam<Protocol> {};

TEST_P(AllProtocols, TransferCompletesWithIntactData) {
  TransferOptions options;
  options.transfer_size = ByteCount{1024 * 1024};
  options.seed = 5;
  const TransferResult result =
      RunTransfer(GetParam(), TestPaths(), options);
  EXPECT_TRUE(result.completed) << ToString(GetParam());
  EXPECT_EQ(result.bytes_received, options.transfer_size);
  EXPECT_EQ(result.data_integrity_errors, 0u);
  EXPECT_GT(result.goodput_mbps, 0.5);
}

TEST_P(AllProtocols, LossyTransferCompletesWithIntactData) {
  TransferOptions options;
  options.transfer_size = ByteCount{512 * 1024};
  options.seed = 6;
  const TransferResult result = RunTransfer(
      GetParam(), TestPaths(10, 4, 30, 80, /*loss=*/0.02), options);
  EXPECT_TRUE(result.completed) << ToString(GetParam());
  EXPECT_EQ(result.data_integrity_errors, 0u);
}

TEST_P(AllProtocols, InitialPathSelectsTheUsedPath) {
  // On very asymmetric paths a single-path protocol must be much slower
  // from the bad path; a multipath one should barely care.
  TransferOptions options;
  options.transfer_size = ByteCount{2 * 1024 * 1024};
  options.seed = 7;
  const auto paths = TestPaths(40, 1, 20, 150);
  options.initial_path = 0;
  const TransferResult fast = RunTransfer(GetParam(), paths, options);
  options.initial_path = 1;
  const TransferResult slow = RunTransfer(GetParam(), paths, options);
  ASSERT_TRUE(fast.completed && slow.completed);
  if (IsMultipath(GetParam())) {
    EXPECT_LT(DurationToSeconds(slow.completion_time),
              3.0 * DurationToSeconds(fast.completion_time));
  } else {
    EXPECT_GT(DurationToSeconds(slow.completion_time),
              5.0 * DurationToSeconds(fast.completion_time));
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllProtocols,
                         ::testing::Values(Protocol::kTcp, Protocol::kQuic,
                                           Protocol::kMptcp,
                                           Protocol::kMpquic),
                         [](const auto& info) {
                           return ToString(info.param);
                         });

TEST(Runner, QuicHandshakeBeatsTcpForTinyTransfers) {
  // The Fig. 9 mechanism in isolation: 1-RTT vs 3-RTT setup.
  TransferOptions options;
  options.transfer_size = ByteCount{10 * 1024};
  options.seed = 8;
  const auto paths = TestPaths(50, 50, 100, 100);
  const TransferResult quic = RunTransfer(Protocol::kQuic, paths, options);
  const TransferResult tcp = RunTransfer(Protocol::kTcp, paths, options);
  ASSERT_TRUE(quic.completed && tcp.completed);
  // TCP needs ~2 extra RTTs (200 ms here) before the request.
  EXPECT_GT(tcp.completion_time, quic.completion_time + 150 * kMillisecond);
}

TEST(Runner, MedianTransferPicksMiddleRun) {
  TransferOptions options;
  options.transfer_size = ByteCount{256 * 1024};
  options.seed = 11;
  const auto paths = TestPaths(10, 4, 30, 80, 0.02);
  const TransferResult median =
      MedianTransfer(Protocol::kQuic, paths, options, 3);
  // Collect the three runs manually and verify the median matches one.
  std::vector<Duration> times;
  for (int rep = 0; rep < 3; ++rep) {
    TransferOptions run = options;
    run.seed = options.seed + 7919ULL * rep;
    times.push_back(
        RunTransfer(Protocol::kQuic, paths, run).completion_time);
  }
  std::sort(times.begin(), times.end());
  EXPECT_EQ(median.completion_time, times[1]);
}

TEST(Handover, QuicRecoversWithinRtoAndServesAllRequests) {
  HandoverOptions options;
  options.seed = 2;
  const auto samples = RunQuicHandover(options);
  ASSERT_GT(samples.size(), 30u);
  Duration worst = 0;
  for (const auto& sample : samples) {
    ASSERT_TRUE(sample.answered)
        << "request at " << DurationToSeconds(sample.sent_time);
    worst = std::max(worst, sample.response_delay);
    if (sample.sent_time < 2 * kSecond) {
      // Pre-failure: one fast-path RTT plus transmission.
      EXPECT_LT(sample.response_delay, 30 * kMillisecond);
    }
    if (sample.sent_time > 5 * kSecond) {
      // Post-failover steady state: second path RTT.
      EXPECT_LT(sample.response_delay, 40 * kMillisecond);
    }
  }
  // The failure spike is bounded by ~RTO + second-path RTT.
  EXPECT_LT(worst, 500 * kMillisecond);
}

TEST(Handover, PathsFrameReducesWorstDelay) {
  HandoverOptions options;
  options.seed = 4;
  options.send_paths_frame = true;
  Duration worst_with = 0;
  for (const auto& sample : RunQuicHandover(options)) {
    if (sample.answered) {
      worst_with = std::max(worst_with, sample.response_delay);
    }
  }
  options.send_paths_frame = false;
  Duration worst_without = 0;
  for (const auto& sample : RunQuicHandover(options)) {
    if (sample.answered) {
      worst_without = std::max(worst_without, sample.response_delay);
    }
  }
  // Without the PATHS frame the server wastes (at least) its own RTO on
  // the dead path before answering elsewhere.
  EXPECT_GT(worst_without, worst_with);
}

TEST(Handover, MptcpAlsoRecovers) {
  HandoverOptions options;
  options.seed = 5;
  const auto samples = RunMptcpHandover(options);
  ASSERT_GT(samples.size(), 20u);
  int unanswered = 0;
  for (const auto& sample : samples) unanswered += !sample.answered;
  EXPECT_EQ(unanswered, 0);
}

TEST(Figures, RatioAndBenefitSeriesShapes) {
  ClassEvalOptions options;
  options.scenario_count = 3;
  options.transfer_size = ByteCount{256 * 1024};
  options.progress = false;
  options.time_limit = 600 * kSecond;
  const auto outcomes =
      EvaluateClass(expdesign::ScenarioClass::kLowBdpNoLoss, options);
  ASSERT_EQ(outcomes.size(), 3u);
  const RatioSeries ratios = ComputeRatios(outcomes);
  EXPECT_EQ(ratios.tcp_over_quic.size(), 6u);       // 3 scenarios x 2 paths
  EXPECT_EQ(ratios.mptcp_over_mpquic.size(), 6u);
  const BenefitSeries benefits = ComputeBenefits(outcomes);
  EXPECT_EQ(benefits.mptcp_best_first.size() +
                benefits.mptcp_worst_first.size(),
            6u);
  EXPECT_EQ(benefits.mpquic_best_first.size(), 3u);
  for (const auto& outcome : outcomes) {
    for (int path = 0; path < 2; ++path) {
      EXPECT_TRUE(outcome.tcp[path].completed);
      EXPECT_TRUE(outcome.quic[path].completed);
      EXPECT_TRUE(outcome.mptcp[path].completed);
      EXPECT_TRUE(outcome.mpquic[path].completed);
    }
  }
}

TEST(Figures, ParseBenchArgs) {
  const char* argv[] = {"bench", "--scenarios", "17", "--reps", "2",
                        "--size", "1000", "--quiet"};
  const ClassEvalOptions options =
      ParseBenchArgs(8, const_cast<char**>(argv));
  EXPECT_EQ(options.scenario_count, 17u);
  EXPECT_EQ(options.repetitions, 2);
  EXPECT_EQ(options.transfer_size, 1000u);
  EXPECT_FALSE(options.progress);
}

TEST(Figures, ParseBenchArgsJobs) {
  const char* argv[] = {"bench", "--jobs", "3"};
  EXPECT_EQ(ParseBenchArgs(3, const_cast<char**>(argv)).jobs, 3);
  const char* argv_auto[] = {"bench", "--jobs", "0"};
  // 0 = auto: one worker per hardware thread, never fewer than one.
  EXPECT_GE(ParseBenchArgs(3, const_cast<char**>(argv_auto)).jobs, 1);
  const char* argv_default[] = {"bench"};
  EXPECT_EQ(ParseBenchArgs(1, const_cast<char**>(argv_default)).jobs, 1);
}

void ExpectSameResult(const TransferResult& a, const TransferResult& b,
                      const char* what, std::size_t scenario, int path) {
  // Exact equality, doubles included: parallel execution must reproduce
  // the serial results bit for bit.
  EXPECT_EQ(a.completed, b.completed) << what << " s" << scenario << " p"
                                      << path;
  EXPECT_EQ(a.completion_time, b.completion_time)
      << what << " s" << scenario << " p" << path;
  EXPECT_EQ(a.bytes_received, b.bytes_received)
      << what << " s" << scenario << " p" << path;
  EXPECT_EQ(a.goodput_mbps, b.goodput_mbps)
      << what << " s" << scenario << " p" << path;
  EXPECT_EQ(a.data_integrity_errors, b.data_integrity_errors)
      << what << " s" << scenario << " p" << path;
}

TEST(Figures, ParallelEvaluationMatchesSerialExactly) {
  // The determinism contract of the worker-pool harness: the outcome
  // vector is identical for any --jobs value (docs/PERFORMANCE.md), so
  // every figure CSV built from it is byte-identical too.
  ClassEvalOptions options;
  options.scenario_count = 3;
  options.repetitions = 2;
  options.transfer_size = ByteCount{128 * 1024};
  options.progress = false;
  options.time_limit = 600 * kSecond;

  options.jobs = 1;
  const auto serial =
      EvaluateClass(expdesign::ScenarioClass::kLowBdpNoLoss, options);
  options.jobs = 4;
  const auto parallel =
      EvaluateClass(expdesign::ScenarioClass::kLowBdpNoLoss, options);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    EXPECT_EQ(serial[s].scenario.index, parallel[s].scenario.index);
    for (int path = 0; path < 2; ++path) {
      ExpectSameResult(serial[s].tcp[path], parallel[s].tcp[path], "tcp", s,
                       path);
      ExpectSameResult(serial[s].quic[path], parallel[s].quic[path], "quic",
                       s, path);
      ExpectSameResult(serial[s].mptcp[path], parallel[s].mptcp[path],
                       "mptcp", s, path);
      ExpectSameResult(serial[s].mpquic[path], parallel[s].mpquic[path],
                       "mpquic", s, path);
    }
    EXPECT_EQ(serial[s].best_path_tcp, parallel[s].best_path_tcp);
    EXPECT_EQ(serial[s].best_path_quic, parallel[s].best_path_quic);
  }
}

}  // namespace
}  // namespace mpq::harness
