// Connection-level QUIC tests: handshake loss/retry, flow-control
// blocking and WINDOW_UPDATE duplication, NAT rebinding, path management
// via advertised addresses, pacing, failed-path probing, close semantics,
// and cross-run determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "quic/endpoint.h"
#include "quic/trace.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace mpq::quic {
namespace {

constexpr StreamId kStream = StreamId{3};

struct Fixture {
  sim::Simulator sim;
  sim::Network net{sim, Rng(99)};
  sim::TwoPathTopology topo;
  std::unique_ptr<ServerEndpoint> server;
  std::unique_ptr<ClientEndpoint> client;
  ByteCount received{};
  bool finished = false;

  explicit Fixture(const ConnectionConfig& config,
                   std::array<sim::PathParams, 2> paths = DefaultPaths(),
                   int client_interfaces = 2)
      : topo(sim::BuildTwoPathTopology(net, paths)) {
    server = std::make_unique<ServerEndpoint>(
        sim, net,
        std::vector<sim::Address>(topo.server_addr.begin(),
                                  topo.server_addr.end()),
        config, 1);
    server->SetAcceptHandler([](Connection& conn) {
      auto request = std::make_shared<std::string>();
      conn.SetStreamDataHandler(
          [&conn, request](StreamId id, ByteCount,
                           std::span<const std::uint8_t> data, bool fin) {
            request->append(data.begin(), data.end());
            if (fin) {
              conn.SendOnStream(id, std::make_unique<PatternSource>(
                                        id, ByteCount{std::stoull(request->substr(4))}));
            }
          });
    });
    std::vector<sim::Address> locals;
    for (int i = 0; i < client_interfaces; ++i) {
      locals.push_back(topo.client_addr[i]);
    }
    client = std::make_unique<ClientEndpoint>(sim, net, locals, config, 2);
    client->connection().SetStreamDataHandler(
        [this](StreamId, ByteCount, std::span<const std::uint8_t> data,
               bool fin) {
          received += data.size();
          if (fin) finished = true;
        });
  }

  static std::array<sim::PathParams, 2> DefaultPaths() {
    sim::PathParams p;
    p.capacity_mbps = 10;
    p.rtt = 40 * kMillisecond;
    p.max_queue_delay = 50 * kMillisecond;
    return {p, p};
  }

  void RequestOnEstablished(ByteCount size) {
    client->connection().SetEstablishedHandler([this, size] {
      const std::string request = "GET " + std::to_string(size.value());
      client->connection().SendOnStream(
          kStream, std::make_unique<BufferSource>(std::vector<std::uint8_t>(
                       request.begin(), request.end())));
    });
    client->Connect(topo.server_addr[0]);
  }
};

ConnectionConfig Multipath() {
  ConnectionConfig config;
  config.multipath = true;
  config.congestion = CongestionAlgo::kOlia;
  return config;
}

TEST(QuicConnection, HandshakeSurvivesChloLoss) {
  Fixture fx(Multipath());
  // Kill the forward link only long enough to eat the first CHLO.
  fx.topo.forward[0]->SetRandomLossRate(1.0);
  fx.sim.Schedule(500 * kMillisecond,
                  [&] { fx.topo.forward[0]->SetRandomLossRate(0.0); });
  fx.RequestOnEstablished(ByteCount{100 * 1024});
  fx.sim.Run(30 * kSecond);
  EXPECT_TRUE(fx.finished);
  // The retry costs one handshake timeout (1 s initial).
  EXPECT_GT(fx.client->connection().stats().packets_sent, 2u);
}

TEST(QuicConnection, HandshakeSurvivesShloLoss) {
  Fixture fx(Multipath());
  fx.topo.backward[0]->SetRandomLossRate(1.0);
  fx.sim.Schedule(500 * kMillisecond,
                  [&] { fx.topo.backward[0]->SetRandomLossRate(0.0); });
  fx.RequestOnEstablished(ByteCount{100 * 1024});
  fx.sim.Run(30 * kSecond);
  EXPECT_TRUE(fx.finished);
}

TEST(QuicConnection, HandshakeGivesUpAfterRetries) {
  Fixture fx(Multipath());
  fx.topo.forward[0]->SetRandomLossRate(1.0);  // forever
  bool established = false;
  fx.client->connection().SetEstablishedHandler(
      [&] { established = true; });
  fx.client->Connect(fx.topo.server_addr[0]);
  fx.sim.Run(30 * 60 * kSecond);
  EXPECT_FALSE(established);
  EXPECT_TRUE(fx.client->connection().closed());
}

TEST(QuicConnection, ServerLearnsClientPathsAndUsesPerPathPnSpaces) {
  Fixture fx(Multipath());
  fx.RequestOnEstablished(ByteCount{4 * 1024 * 1024});
  fx.sim.Run(120 * kSecond);
  ASSERT_TRUE(fx.finished);
  Connection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  ASSERT_NE(server_conn, nullptr);
  const auto paths = server_conn->paths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0]->id(), 0);
  EXPECT_EQ(paths[1]->id(), 1);  // client-created: odd id
  // Both PN spaces started from scratch and advanced independently.
  EXPECT_GT(paths[0]->largest_sent(), 10u);
  EXPECT_GT(paths[1]->largest_sent(), 10u);
}

TEST(QuicConnection, SingleInterfaceMultipathConfigStillWorks) {
  // Multipath enabled but the client has one interface: degenerates to
  // one path without errors.
  Fixture fx(Multipath(), Fixture::DefaultPaths(), /*client_interfaces=*/1);
  fx.RequestOnEstablished(ByteCount{256 * 1024});
  fx.sim.Run(60 * kSecond);
  ASSERT_TRUE(fx.finished);
  Connection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  EXPECT_EQ(server_conn->paths().size(), 1u);
}

TEST(QuicConnection, FlowControlBlocksAndWindowUpdatesUnblock) {
  // Shrink the receive window so the 2 MiB transfer must stall on flow
  // control several times; completion proves WINDOW_UPDATEs flowed.
  ConnectionConfig config = Multipath();
  config.receive_window = ByteCount{64 * 1024};
  Fixture fx(config);
  fx.RequestOnEstablished(ByteCount{2 * 1024 * 1024});
  fx.sim.Run(120 * kSecond);
  EXPECT_TRUE(fx.finished);
  EXPECT_EQ(fx.received, 2u * 1024 * 1024);
}

TEST(QuicConnection, WindowUpdateDuplicationSurvivesLossyPath) {
  // One path is badly lossy; with WINDOW_UPDATE duplicated on all paths
  // the transfer still completes briskly even with a tiny window.
  ConnectionConfig config = Multipath();
  config.receive_window = ByteCount{64 * 1024};
  auto paths = Fixture::DefaultPaths();
  paths[1].random_loss_rate = 0.3;
  Fixture fx(config, paths);
  fx.RequestOnEstablished(ByteCount{1 * 1024 * 1024});
  fx.sim.Run(300 * kSecond);
  EXPECT_TRUE(fx.finished);
}

TEST(QuicConnection, AckOnlyPacketsAreNotCongestionControlled) {
  // A pure download: the client sends almost nothing but acks. Its paths
  // must show no in-flight growth (ack-only packets untracked).
  Fixture fx(Multipath());
  fx.RequestOnEstablished(ByteCount{1 * 1024 * 1024});
  fx.sim.Run(60 * kSecond);
  ASSERT_TRUE(fx.finished);
  for (const Path* path : fx.client->connection().paths()) {
    EXPECT_EQ(path->congestion().bytes_in_flight(), 0u)
        << "path " << static_cast<int>(path->id());
  }
}

TEST(QuicConnection, NatRebindingKeepsConnectionAlive) {
  // Mid-transfer, rebind the client's first interface to a new address
  // (NAT rebinding): the Path ID keeps the path's identity (§3), so the
  // transfer must finish without a new handshake.
  Fixture fx(Multipath());
  fx.RequestOnEstablished(ByteCount{2 * 1024 * 1024});
  // Run a little, then rebind: new socket address on iface 0 with
  // traffic redirected. We simulate rebinding by swapping the socket —
  // covered implicitly: Connection updates path remote on source change.
  // Here we just verify the happy path completes (full rebinding is
  // exercised at the Path level).
  fx.sim.Run(120 * kSecond);
  EXPECT_TRUE(fx.finished);
}

TEST(QuicConnection, PacingSmoothsBurstsWithoutChangingCorrectness) {
  for (bool pacing : {true, false}) {
    ConnectionConfig config = Multipath();
    config.pacing = pacing;
    // Tiny queue: only a couple of packets fit; unpaced bursts overflow.
    auto paths = Fixture::DefaultPaths();
    paths[0].max_queue_delay = 0;
    paths[1].max_queue_delay = 0;
    Fixture fx(config, paths);
    fx.RequestOnEstablished(ByteCount{512 * 1024});
    fx.sim.Run(120 * kSecond);
    EXPECT_TRUE(fx.finished) << "pacing=" << pacing;
  }
}

TEST(QuicConnection, CloseStopsTraffic) {
  Fixture fx(Multipath());
  fx.RequestOnEstablished(ByteCount{8 * 1024 * 1024});
  fx.sim.Run(1 * kSecond);  // mid-transfer
  ASSERT_FALSE(fx.finished);
  fx.client->connection().Close(0, "done");
  EXPECT_TRUE(fx.client->connection().closed());
  const auto sent_at_close = fx.client->connection().stats().packets_sent;
  fx.sim.Run(5 * kSecond);
  // Only the CLOSE packet itself may have left after Close().
  EXPECT_LE(fx.client->connection().stats().packets_sent,
            sent_at_close + 1);
  // The peer saw the CONNECTION_CLOSE and stopped too.
  Connection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  fx.sim.Run(10 * kSecond);
  EXPECT_TRUE(server_conn->closed());
}

TEST(QuicConnection, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    Fixture fx(Multipath());
    fx.RequestOnEstablished(ByteCount{1 * 1024 * 1024});
    fx.sim.Run(60 * kSecond);
    return std::tuple(fx.sim.now(), fx.received,
                      fx.client->connection().stats().packets_sent);
  };
  EXPECT_EQ(run(), run());
}

TEST(QuicConnection, SchedulerVariantsAllCompleteTransfers) {
  for (SchedulerType type :
       {SchedulerType::kLowestRtt, SchedulerType::kPingFirst,
        SchedulerType::kRoundRobin, SchedulerType::kRedundant}) {
    ConnectionConfig config = Multipath();
    config.scheduler = type;
    auto paths = Fixture::DefaultPaths();
    paths[1].rtt = 120 * kMillisecond;  // heterogeneous
    Fixture fx(config, paths);
    fx.RequestOnEstablished(ByteCount{1 * 1024 * 1024});
    fx.sim.Run(120 * kSecond);
    EXPECT_TRUE(fx.finished)
        << "scheduler " << static_cast<int>(type);
    EXPECT_EQ(fx.received, 1u * 1024 * 1024);
  }
}

TEST(QuicConnection, RedundantSchedulerDuplicatesHeavily) {
  ConnectionConfig config = Multipath();
  config.scheduler = SchedulerType::kRedundant;
  Fixture fx(config);
  fx.RequestOnEstablished(ByteCount{512 * 1024});
  fx.sim.Run(60 * kSecond);
  ASSERT_TRUE(fx.finished);
  Connection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  // Duplication is congestion-window limited, so not every packet gets a
  // twin — but it must be far above the lowest-RTT scheduler's handful
  // (which only duplicates while a path's RTT is unknown).
  EXPECT_GT(server_conn->stats().duplicated_scheduler_packets, 20u);
  // The client dropped the duplicates by stream offset, not by error.
  EXPECT_EQ(fx.received, 512u * 1024);
}

TEST(QuicConnection, FailedPathRecoversViaProbes) {
  Fixture fx(Multipath());
  fx.client->connection().SetEstablishedHandler([&fx] {
    fx.client->connection().SendOnStream(
        kStream, std::make_unique<BufferSource>(std::vector<std::uint8_t>{
                     'G', 'E', 'T', ' ', '8', '3', '8', '8', '6', '0', '8'}));
  });
  fx.client->Connect(fx.topo.server_addr[0]);
  // Path 0 dies at 1 s and resurrects at 4 s.
  fx.sim.Schedule(1 * kSecond, [&fx] {
    fx.topo.forward[0]->SetRandomLossRate(1.0);
    fx.topo.backward[0]->SetRandomLossRate(1.0);
  });
  fx.sim.Schedule(4 * kSecond, [&fx] {
    fx.topo.forward[0]->SetRandomLossRate(0.0);
    fx.topo.backward[0]->SetRandomLossRate(0.0);
  });
  fx.sim.Run(120 * kSecond);
  ASSERT_TRUE(fx.finished);
  // After recovery the path carried real traffic again.
  const Path* path0 = fx.client->connection().paths()[0];
  EXPECT_FALSE(path0->potentially_failed());
  Connection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  EXPECT_GT(server_conn->GetPath(PathId{0})->bytes_sent(), 1024u * 1024);
}


TEST(QuicConnection, ConnectionMigrationHardHandover) {
  // Single-path QUIC with migrate_on_path_failure: when path 0 dies, the
  // connection hops to the second interface pair and the transfer
  // completes — §1's "hard handover" by connection migration.
  ConnectionConfig config;  // single path
  config.migrate_on_path_failure = true;
  Fixture fx(config, Fixture::DefaultPaths(), /*client_interfaces=*/2);
  fx.RequestOnEstablished(ByteCount{2 * 1024 * 1024});
  fx.sim.Schedule(1 * kSecond, [&fx] {
    fx.topo.forward[0]->SetRandomLossRate(1.0);
    fx.topo.backward[0]->SetRandomLossRate(1.0);
  });
  fx.sim.Run(120 * kSecond);
  ASSERT_TRUE(fx.finished);
  EXPECT_EQ(fx.received, 2u * 1024 * 1024);
  // The surviving connection's only path now lives on interface 1.
  const Path* path = fx.client->connection().paths()[0];
  EXPECT_EQ(path->local_address().iface, 1);
  EXPECT_FALSE(path->potentially_failed());
}

TEST(QuicConnection, MigrationWithoutFlagStallsInstead) {
  ConnectionConfig config;  // single path, no migration
  Fixture fx(config, Fixture::DefaultPaths(), /*client_interfaces=*/2);
  fx.RequestOnEstablished(ByteCount{2 * 1024 * 1024});
  fx.sim.Schedule(1 * kSecond, [&fx] {
    fx.topo.forward[0]->SetRandomLossRate(1.0);
    fx.topo.backward[0]->SetRandomLossRate(1.0);
  });
  fx.sim.Run(60 * kSecond);
  EXPECT_FALSE(fx.finished);  // stuck on the dead path, as plain QUIC is
}

TEST(QuicConnection, ManualMigrationMidTransfer) {
  ConnectionConfig config;
  Fixture fx(config, Fixture::DefaultPaths(), /*client_interfaces=*/2);
  fx.RequestOnEstablished(ByteCount{2 * 1024 * 1024});
  // Migrate proactively (no failure) at 0.5 s, then kill the old path:
  // the transfer must be unaffected.
  fx.sim.Schedule(500 * kMillisecond, [&fx] {
    fx.client->connection().MigratePath(PathId{0}, fx.topo.client_addr[1],
                                        fx.topo.server_addr[1]);
    fx.topo.forward[0]->SetRandomLossRate(1.0);
    fx.topo.backward[0]->SetRandomLossRate(1.0);
  });
  fx.sim.Run(120 * kSecond);
  ASSERT_TRUE(fx.finished);
  EXPECT_EQ(fx.received, 2u * 1024 * 1024);
}


TEST(QuicConnection, ServerInitiatedPathsWhenAllowed) {
  // Extension of §3: with allow_server_paths the server opens an
  // even-id path toward the address the client advertises via
  // ADD_ADDRESS. The paper's implementation leaves this off (NATs); we
  // verify the designed mechanism works.
  ConnectionConfig config = Multipath();
  config.allow_server_paths = true;
  config.client_opens_paths = false;  // isolate the server-side mechanism
  Fixture fx(config);
  fx.RequestOnEstablished(ByteCount{1 * 1024 * 1024});
  fx.sim.Run(60 * kSecond);
  ASSERT_TRUE(fx.finished);
  Connection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  bool has_even_path = false;
  for (const Path* path : server_conn->paths()) {
    if (path->id() != 0 && path->id() % 2 == 0) has_even_path = true;
  }
  EXPECT_TRUE(has_even_path);
}

TEST(QuicConnection, NoServerPathsByDefault) {
  Fixture fx(Multipath());
  fx.RequestOnEstablished(ByteCount{512 * 1024});
  fx.sim.Run(60 * kSecond);
  ASSERT_TRUE(fx.finished);
  Connection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  for (const Path* path : server_conn->paths()) {
    EXPECT_TRUE(path->id() == 0 || path->id() % 2 == 1)
        << "unexpected server-created path "
        << static_cast<int>(path->id());
  }
}

TEST(QuicConnection, RemoveAddressDrainsPathsAndTransferSurvives) {
  Fixture fx(Multipath());
  fx.RequestOnEstablished(ByteCount{2 * 1024 * 1024});
  // Mid-transfer the client announces its first interface is going away.
  fx.sim.Schedule(500 * kMillisecond, [&fx] {
    fx.client->connection().RemoveLocalAddress(fx.topo.client_addr[0]);
  });
  fx.sim.Run(120 * kSecond);
  ASSERT_TRUE(fx.finished);
  EXPECT_EQ(fx.received, 2u * 1024 * 1024);
  // The server honoured the withdrawal: traffic after t=0.5 s rode the
  // second path, so path 1 carried the bulk of the data.
  Connection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  const Path* path1 = server_conn->GetPath(PathId{1});
  ASSERT_NE(path1, nullptr);
  EXPECT_GT(path1->bytes_sent(), 1024u * 1024);
}


TEST(QuicConnection, TracerObservesTrafficAndPathEvents) {
  Fixture fx(Multipath());
  // Trace the sender: the server connection does the transmitting, takes
  // the acks (path samples) and suffers the RTOs when a path dies.
  CountingTracer tracer;
  fx.server->SetAcceptHandler([&tracer](Connection& conn) {
    conn.SetTracer(&tracer);
    auto request = std::make_shared<std::string>();
    conn.SetStreamDataHandler(
        [&conn, request](StreamId id, ByteCount,
                         std::span<const std::uint8_t> data, bool fin) {
          request->append(data.begin(), data.end());
          if (fin) {
            conn.SendOnStream(id, std::make_unique<PatternSource>(
                                      id, ByteCount{std::stoull(request->substr(4))}));
          }
        });
  });
  fx.RequestOnEstablished(ByteCount{8 * 1024 * 1024});
  // Kill path 0 mid-transfer so a state change fires, then revive it.
  fx.sim.Schedule(1 * kSecond, [&fx] {
    fx.topo.forward[0]->SetRandomLossRate(1.0);
    fx.topo.backward[0]->SetRandomLossRate(1.0);
  });
  fx.sim.Schedule(3 * kSecond, [&fx] {
    fx.topo.forward[0]->SetRandomLossRate(0.0);
    fx.topo.backward[0]->SetRandomLossRate(0.0);
  });
  fx.sim.Run(120 * kSecond);
  ASSERT_TRUE(fx.finished);
  // Encrypted packets only (the handshake is not traced), so expect
  // slightly fewer traced receives than the raw packet counter.
  EXPECT_GT(tracer.packets_sent, 100u);
  EXPECT_GT(tracer.packets_received, 50u);
  EXPECT_GT(tracer.path_samples, 10u);
  EXPECT_GT(tracer.packets_lost, 0u);
  // The server's in-flight data on the dead path RTOs: the failure (and
  // later the recovery) surface as path state changes.
  bool saw_failure = false;
  for (const auto& change : tracer.state_changes) {
    if (change.find("potentially-failed") != std::string::npos) {
      saw_failure = true;
    }
  }
  EXPECT_TRUE(saw_failure);
}


TEST(QuicConnection, ResetStreamAbortsDeliveryCleanly) {
  Fixture fx(Multipath());
  // Server app that aborts the response stream after ~256 KiB.
  fx.server->SetAcceptHandler([&fx](Connection& conn) {
    auto request = std::make_shared<std::string>();
    conn.SetStreamDataHandler(
        [&fx, &conn, request](StreamId id, ByteCount,
                              std::span<const std::uint8_t> data, bool fin) {
          request->append(data.begin(), data.end());
          if (fin) {
            conn.SendOnStream(id, std::make_unique<PatternSource>(
                                      id, ByteCount{8 * 1024 * 1024}));
            fx.sim.Schedule(300 * kMillisecond,
                            [&conn, id] { conn.ResetStream(id, 42); });
          }
        });
  });
  fx.RequestOnEstablished(ByteCount{8 * 1024 * 1024});
  fx.sim.Run(60 * kSecond);
  // The client saw an early end-of-stream, not the full 8 MiB.
  EXPECT_TRUE(fx.finished);
  EXPECT_LT(fx.received, 8u * 1024 * 1024);
  EXPECT_GT(fx.received, 0u);
}

TEST(QuicConnection, ConnectionIdleTimeoutCloses) {
  ConnectionConfig config = Multipath();
  config.idle_timeout = 5 * kSecond;
  Fixture fx(config);
  fx.RequestOnEstablished(ByteCount{64 * 1024});
  fx.sim.Run(60 * kSecond);
  ASSERT_TRUE(fx.finished);  // transfer finishes well before the timeout
  EXPECT_TRUE(fx.client->connection().closed());
  // Closed at (last activity + idle_timeout), long before the run cap.
  EXPECT_LT(fx.sim.now(), 10 * kSecond);
}

TEST(QuicConnection, IdleTimeoutSurvivesOutageMidTransfer) {
  // Chaos regression: during a total outage the client receives nothing
  // and — as a pure receiver with everything it sent long since acked —
  // transmits nothing either, so an outage outlasting the idle timeout
  // used to close the connection from the client side even though the
  // server's recovery machinery was mid-probe. While the transfer is
  // unfinished (or data is in flight) the idle timer must rearm, not
  // close.
  ConnectionConfig config = Multipath();
  config.idle_timeout = 5 * kSecond;
  Fixture fx(config);
  fx.RequestOnEstablished(ByteCount{8 * 1024 * 1024});
  const auto set_down = [&fx](bool down) {
    for (sim::Link* link : {fx.topo.forward[0], fx.topo.forward[1],
                            fx.topo.backward[0], fx.topo.backward[1]}) {
      link->SetDown(down);
    }
  };
  fx.sim.Schedule(1 * kSecond, [&] { set_down(true); });
  // 6.5 s of silence — past the 5 s idle timeout.
  fx.sim.Schedule(7500 * kMillisecond, [&] { set_down(false); });
  fx.sim.Run(180 * kSecond);
  // Pre-fix the client closed ("idle timeout") at ~6 s, mid-outage, and
  // the transfer never finished. (The connection still closes AFTER the
  // transfer completes and goes quiet — that is the timer working.)
  EXPECT_TRUE(fx.finished);
  EXPECT_EQ(fx.received, ByteCount{8 * 1024 * 1024});
}

TEST(QuicConnection, IdleTimeoutStillClosesQuietConnection) {
  // The counterpart: once the transfer is done and nothing is in flight,
  // the idle timer must still fire (no connection leak from the rearm).
  ConnectionConfig config = Multipath();
  config.idle_timeout = 5 * kSecond;
  Fixture fx(config);
  fx.RequestOnEstablished(ByteCount{64 * 1024});
  fx.sim.Run(60 * kSecond);
  ASSERT_TRUE(fx.finished);
  EXPECT_TRUE(fx.client->connection().closed());
}

TEST(QuicConnection, ReAddedAddressRestoresRemoteFailedPath) {
  // Chaos regression (interface flap): REMOVE_ADDRESS marks every path
  // to the withdrawn address remote-reported-failed on the peer, and
  // nothing but a PATHS frame used to clear it — but the peer stops
  // advertising a path it considers dead, so the path stayed stranded
  // forever. A later ADD_ADDRESS of the same address must restore it.
  Fixture fx(Multipath());
  Connection* server_conn = nullptr;
  fx.server->SetAcceptHandler([&](Connection& conn) {
    server_conn = &conn;
    auto request = std::make_shared<std::string>();
    conn.SetStreamDataHandler(
        [&conn, request](StreamId id, ByteCount,
                         std::span<const std::uint8_t> data, bool fin) {
          request->append(data.begin(), data.end());
          if (fin) {
            conn.SendOnStream(id, std::make_unique<PatternSource>(
                                      id, ByteCount{std::stoull(
                                              request->substr(4))}));
          }
        });
  });
  fx.RequestOnEstablished(ByteCount{8 * 1024 * 1024});

  const sim::Address flapping = fx.topo.client_addr[1];
  const auto server_path_usable = [&]() -> int {
    if (server_conn == nullptr) return -1;
    for (const Path* path : server_conn->paths()) {
      if (path->remote_address() == flapping) return path->Usable() ? 1 : 0;
    }
    return -1;
  };

  int usable_after_remove = -1;
  int usable_after_add = -1;
  int usable_after_second_remove = -1;
  fx.sim.Schedule(1 * kSecond, [&] {
    fx.client->connection().RemoveLocalAddress(flapping);
  });
  fx.sim.Schedule(1500 * kMillisecond,
                  [&] { usable_after_remove = server_path_usable(); });
  fx.sim.Schedule(2 * kSecond, [&] {
    fx.client->connection().AddLocalAddress(flapping);
  });
  fx.sim.Schedule(2500 * kMillisecond,
                  [&] { usable_after_add = server_path_usable(); });
  // Flap once more: recovered -> failed must work too.
  fx.sim.Schedule(3 * kSecond, [&] {
    fx.client->connection().RemoveLocalAddress(flapping);
  });
  fx.sim.Schedule(3500 * kMillisecond,
                  [&] { usable_after_second_remove = server_path_usable(); });
  fx.sim.Schedule(4 * kSecond, [&] {
    fx.client->connection().AddLocalAddress(flapping);
  });
  fx.sim.Run(120 * kSecond);

  EXPECT_EQ(usable_after_remove, 0);
  EXPECT_EQ(usable_after_add, 1);
  EXPECT_EQ(usable_after_second_remove, 0);
  EXPECT_TRUE(fx.finished);
}

TEST(QuicConnection, VersionMismatchFailsCleanly) {
  ConnectionConfig client_config = Multipath();
  client_config.supported_versions = {0xDEAD0001};
  ConnectionConfig server_config = Multipath();  // speaks only kVersionMpq1
  sim::Simulator sim;
  sim::Network net(sim, Rng(1));
  auto topo = sim::BuildTwoPathTopology(net, Fixture::DefaultPaths());
  ServerEndpoint server(sim, net,
                        {topo.server_addr[0], topo.server_addr[1]},
                        server_config, 1);
  ClientEndpoint client(sim, net, {topo.client_addr[0], topo.client_addr[1]},
                        client_config, 2);
  bool established = false;
  client.connection().SetEstablishedHandler([&] { established = true; });
  client.Connect(topo.server_addr[0]);
  sim.Run(30 * 60 * kSecond);
  EXPECT_FALSE(established);
  EXPECT_TRUE(client.connection().closed());  // retries exhausted
}


TEST(QuicConnection, ZeroRttSendsRequestImmediately) {
  ConnectionConfig config = Multipath();
  config.zero_rtt = true;
  Fixture fx(config);
  TimePoint established_at = -1;
  fx.client->connection().SetEstablishedHandler(
      [&] { established_at = fx.sim.now(); });
  fx.client->Connect(fx.topo.server_addr[0]);
  fx.sim.Run(5 * kSecond);
  // Established instantly: keys derived from the cached server config.
  EXPECT_EQ(established_at, 0);
}

TEST(QuicConnection, ZeroRttTransferCompletesOneRttEarlier) {
  auto run = [](bool zero_rtt) {
    ConnectionConfig config;  // single path isolates the handshake effect
    config.zero_rtt = zero_rtt;
    Fixture fx(config, Fixture::DefaultPaths(), /*client_interfaces=*/1);
    fx.RequestOnEstablished(ByteCount{64 * 1024});
    fx.sim.Run(60 * kSecond);
    EXPECT_TRUE(fx.finished);
    EXPECT_EQ(fx.received, 64u * 1024);
    return fx.sim.now();
  };
  const TimePoint with_1rtt = run(false);
  const TimePoint with_0rtt = run(true);
  // One 40 ms RTT saved, give or take transmission time.
  EXPECT_LT(with_0rtt, with_1rtt);
  EXPECT_NEAR(static_cast<double>(with_1rtt - with_0rtt),
              static_cast<double>(40 * kMillisecond),
              static_cast<double>(10 * kMillisecond));
}

TEST(QuicConnection, ZeroRttMultipathStillOpensSecondPath) {
  ConnectionConfig config = Multipath();
  config.zero_rtt = true;
  Fixture fx(config);
  fx.RequestOnEstablished(ByteCount{4 * 1024 * 1024});
  fx.sim.Run(120 * kSecond);
  ASSERT_TRUE(fx.finished);
  // The second path opened once the SHLO delivered the server addresses.
  EXPECT_EQ(fx.client->connection().paths().size(), 2u);
  Connection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  EXPECT_GT(server_conn->GetPath(PathId{1})->bytes_sent(), 100u * 1024);
}

TEST(QuicConnection, ZeroRttSurvivesChloLoss) {
  ConnectionConfig config = Multipath();
  config.zero_rtt = true;
  Fixture fx(config);
  fx.topo.forward[0]->SetRandomLossRate(1.0);
  fx.sim.Schedule(500 * kMillisecond,
                  [&] { fx.topo.forward[0]->SetRandomLossRate(0.0); });
  fx.RequestOnEstablished(ByteCount{128 * 1024});
  fx.sim.Run(60 * kSecond);
  EXPECT_TRUE(fx.finished);
}

}  // namespace
}  // namespace mpq::quic
