// Server endpoints under concurrent load: several clients sharing one
// server, interleaved transfers, and per-connection isolation (stats,
// streams, keys). The Fig. 2 topology only has one client node, so these
// tests build wider custom topologies.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "quic/endpoint.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "tcpsim/endpoint.h"

namespace mpq {
namespace {

/// N client nodes, each with one interface, all wired to the same server
/// interface-per-client (the server has one address per client so the
/// one-link-per-interface routing holds).
struct StarTopology {
  sim::Simulator sim;
  sim::Network net{sim, Rng(2024)};
  std::vector<sim::Address> client_addrs;
  std::vector<sim::Address> server_addrs;

  explicit StarTopology(int clients) {
    for (int i = 0; i < clients; ++i) {
      sim::Address client{static_cast<std::uint16_t>(10 + i), 0};
      sim::Address server{1, static_cast<std::uint16_t>(i)};
      sim::LinkConfig link;
      link.capacity_mbps = 10;
      link.propagation_delay = 20 * kMillisecond;
      link.queue_capacity_bytes = ByteCount{64 * 1024};
      net.AddDuplexLink(client, server, link, link);
      client_addrs.push_back(client);
      server_addrs.push_back(server);
    }
  }
};

TEST(MultiConnection, QuicServerHandlesManyClients) {
  constexpr int kClients = 5;
  StarTopology topo(kClients);

  quic::ConnectionConfig config;  // single-path QUIC per client
  quic::ServerEndpoint server(topo.sim, topo.net, topo.server_addrs, config,
                              1);
  server.SetAcceptHandler([](quic::Connection& conn) {
    auto request = std::make_shared<std::string>();
    conn.SetStreamDataHandler(
        [&conn, request](StreamId id, ByteCount,
                         std::span<const std::uint8_t> data, bool fin) {
          request->append(data.begin(), data.end());
          if (fin) {
            conn.SendOnStream(id, std::make_unique<PatternSource>(
                                      id, ByteCount{std::stoull(request->substr(4))}));
          }
        });
  });

  std::vector<std::unique_ptr<quic::ClientEndpoint>> clients;
  std::vector<ByteCount> received(kClients, ByteCount{0});
  std::vector<ByteCount> errors(kClients, ByteCount{0});
  int finished = 0;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<quic::ClientEndpoint>(
        topo.sim, topo.net,
        std::vector<sim::Address>{topo.client_addrs[i]}, config, 100 + i));
    // Every client asks for a different size to catch cross-talk.
    const ByteCount size = ByteCount{(i + 1) * 256 * 1024};
    clients[i]->connection().SetStreamDataHandler(
        [&, i](StreamId id, ByteCount offset,
               std::span<const std::uint8_t> data, bool fin) {
          for (std::size_t k = 0; k < data.size(); ++k) {
            if (data[k] != PatternByte(id.value(), offset + k)) ++errors[i];
          }
          received[i] += data.size();
          if (fin) ++finished;
        });
    clients[i]->connection().SetEstablishedHandler([&, i, size] {
      const std::string request = "GET " + std::to_string(size.value());
      clients[i]->connection().SendOnStream(
          StreamId{3}, std::make_unique<BufferSource>(std::vector<std::uint8_t>(
                 request.begin(), request.end())));
    });
    clients[i]->Connect(topo.server_addrs[i]);
  }
  while (finished < kClients && topo.sim.RunOne(300 * kSecond)) {
  }
  ASSERT_EQ(finished, kClients);
  EXPECT_EQ(server.connection_count(), static_cast<std::size_t>(kClients));
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(received[i], static_cast<ByteCount>(i + 1) * 256 * 1024)
        << "client " << i;
    EXPECT_EQ(errors[i], 0u) << "client " << i;
  }
}

TEST(MultiConnection, QuicConnectionsAreCryptographicallyIsolated) {
  // Two clients; verify their connections derived different keys — i.e.
  // a packet for one CID never decrypts under the other connection.
  StarTopology topo(2);
  quic::ConnectionConfig config;
  quic::ServerEndpoint server(topo.sim, topo.net, topo.server_addrs, config,
                              1);
  server.SetAcceptHandler([](quic::Connection& conn) {
    conn.SetStreamDataHandler(
        [&conn](StreamId id, ByteCount, std::span<const std::uint8_t>,
                bool fin) {
          if (fin) {
            conn.SendOnStream(id, std::make_unique<PatternSource>(id, ByteCount{1024}));
          }
        });
  });
  std::vector<std::unique_ptr<quic::ClientEndpoint>> clients;
  int finished = 0;
  for (int i = 0; i < 2; ++i) {
    clients.push_back(std::make_unique<quic::ClientEndpoint>(
        topo.sim, topo.net,
        std::vector<sim::Address>{topo.client_addrs[i]}, config, 300 + i));
    clients[i]->connection().SetStreamDataHandler(
        [&](StreamId, ByteCount, std::span<const std::uint8_t>, bool fin) {
          if (fin) ++finished;
        });
    clients[i]->connection().SetEstablishedHandler([&, i] {
      clients[i]->connection().SendOnStream(
          StreamId{3}, std::make_unique<BufferSource>(
                 std::vector<std::uint8_t>{'G', 'E', 'T', ' ', '1'}));
    });
    clients[i]->Connect(topo.server_addrs[i]);
  }
  topo.sim.Run(30 * kSecond);
  EXPECT_EQ(finished, 2);
  EXPECT_NE(clients[0]->connection().cid(), clients[1]->connection().cid());
  // Distinct nonce/key material: both connections decrypted only their
  // own traffic (zero cross-connection decrypt failures implies the demux
  // never even offered foreign packets — also fine).
  for (auto& client : clients) {
    EXPECT_EQ(client->connection().stats().packets_decrypt_failed, 0u);
  }
}

TEST(MultiConnection, TcpServerHandlesManyClients) {
  constexpr int kClients = 4;
  StarTopology topo(kClients);

  tcp::TcpConfig config;
  tcp::TcpServerEndpoint server(topo.sim, topo.net, topo.server_addrs,
                                config, 1);
  server.SetAcceptHandler([](tcp::TcpConnection& conn) {
    auto request = std::make_shared<std::string>();
    conn.SetAppDataHandler([&conn, request](
                               ByteCount, std::span<const std::uint8_t> d,
                               bool) {
      request->append(d.begin(), d.end());
      if (!request->empty() && request->back() == '\n') {
        const ByteCount n = ByteCount{std::stoull(request->substr(4))};
        request->clear();
        conn.SendAppData(std::make_unique<PatternSource>(7, n));
      }
    });
  });

  std::vector<std::unique_ptr<tcp::TcpClientEndpoint>> clients;
  std::vector<ByteCount> received(kClients, ByteCount{0});
  int finished = 0;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<tcp::TcpClientEndpoint>(
        topo.sim, topo.net,
        std::vector<sim::Address>{topo.client_addrs[i]}, config, 200 + i));
    const ByteCount size = ByteCount{(i + 1) * 128 * 1024};
    clients[i]->connection().SetAppDataHandler(
        [&, i](ByteCount, std::span<const std::uint8_t> d, bool eof) {
          received[i] += d.size();
          if (eof) ++finished;
        });
    clients[i]->connection().SetSecureEstablishedHandler([&, i, size] {
      const std::string request = "GET " + std::to_string(size.value()) + "\n";
      clients[i]->connection().SendAppData(std::make_unique<BufferSource>(
          std::vector<std::uint8_t>(request.begin(), request.end())));
    });
    clients[i]->Connect({topo.server_addrs[i]});
  }
  while (finished < kClients && topo.sim.RunOne(300 * kSecond)) {
  }
  ASSERT_EQ(finished, kClients);
  EXPECT_EQ(server.connection_count(), static_cast<std::size_t>(kClients));
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(received[i], static_cast<ByteCount>(i + 1) * 128 * 1024);
  }
}

}  // namespace
}  // namespace mpq
