// Unit tests for the PacketAssembler layer against fake delegates and a
// captured send function — no simulated network, no Connection. Covers
// the packing order (ACK, control, stream data), delayed-ACK scheduling,
// flow-control gating and the §3 property that frames lost on one path
// go back out on another.
#include "quic/assembler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "cc/newreno.h"
#include "common/buf.h"
#include "common/types.h"
#include "crypto/aead.h"
#include "quic/config.h"
#include "quic/control_queue.h"
#include "quic/path.h"
#include "quic/recovery.h"
#include "quic/stats.h"
#include "quic/streams.h"
#include "quic/wire.h"
#include "sim/net.h"
#include "sim/simulator.h"

namespace mpq::quic {
namespace {

/// Everything the assembler needs to run standalone: real streams, flow
/// control, control queue and recovery manager, with this harness
/// standing in for the Connection composer on both delegate interfaces
/// (it routes requeued frames exactly the way Connection does).
struct Harness : AssemblerDelegate, RecoveryDelegate {
  explicit Harness(ByteCount window = kDefaultReceiveWindow)
      : flow(window),
        recovery(sim, stats, 1 * kSecond, 15 * kSecond, *this),
        assembler(sim, config, ConnectionId{7}, stats, flow, streams,
                  control, recovery, *this,
                  [this](sim::Address local, sim::Address remote,
                         std::vector<std::uint8_t> payload) {
                    sent.push_back({local, remote, std::move(payload)});
                  }) {
    config.multipath = true;
    const std::vector<std::uint8_t> client_nonce(16, 0x11);
    const std::vector<std::uint8_t> server_nonce(16, 0x22);
    const auto keys = crypto::DeriveSessionKeys(client_nonce, server_nonce,
                                                config.server_config_secret);
    assembler.SetSealer(
        std::make_unique<crypto::PacketProtection>(keys.client_to_server));
    opener =
        std::make_unique<crypto::PacketProtection>(keys.client_to_server);
    assembler.set_established(true);
  }

  Path& AddPath(PathId id, sim::Address local, sim::Address remote) {
    paths.push_back(std::make_unique<Path>(
        id, local, remote,
        std::make_unique<cc::NewReno>(config.max_packet_size)));
    Path& path = *paths.back();
    recovery.RegisterPath(path);
    assembler.RegisterPath(path);
    return path;
  }

  void AddStream(StreamId id, ByteCount size) {
    streams.emplace(id, std::make_unique<SendStream>(
                            id, std::make_unique<PatternSource>(id, size)));
  }

  /// Decode the most recently captured datagram back into frames.
  std::vector<Frame> DecodeLastPacket() {
    std::vector<Frame> frames;
    if (sent.empty()) {
      ADD_FAILURE() << "no packet was sent";
      return frames;
    }
    const std::vector<std::uint8_t>& payload = sent.back().payload;
    BufReader reader(payload);
    ParsedHeader parsed;
    if (!DecodeHeader(reader, parsed)) {
      ADD_FAILURE() << "bad public header";
      return frames;
    }
    const std::span<const std::uint8_t> all(payload);
    const PacketNumber pn = DecodePacketNumber(
        PacketNumber{0}, parsed.header.packet_number, parsed.pn_length);
    std::vector<std::uint8_t> plaintext;
    if (!opener->Open(parsed.header.multipath ? parsed.header.path_id
                                              : PathId{0},
                      pn, all.subspan(0, parsed.header_size),
                      all.subspan(parsed.header_size), plaintext)) {
      ADD_FAILURE() << "packet failed to open";
      return frames;
    }
    EXPECT_TRUE(DecodePayload(plaintext, frames));
    return frames;
  }

  // -- AssemblerDelegate --------------------------------------------------
  void RequestSend() override { ++send_requests; }
  void OnPacketTransmitted() override { ++packets_transmitted; }

  // -- RecoveryDelegate (routed like Connection routes them) --------------
  void OnStreamFrameLost(StreamId stream, ByteCount offset, ByteCount length,
                         bool fin) override {
    streams.at(stream)->OnFrameLost(offset, length, fin);
  }
  void RequeueWindowUpdate(const WindowUpdateFrame& frame) override {
    control.EnqueueShared(Frame{frame});
  }
  void RequeuePathsSnapshot() override {}
  void RequeueControlFrame(Frame frame) override {
    control.EnqueueShared(std::move(frame));
  }
  bool OnPathPotentiallyFailed(PathId) override { return false; }
  void OnPathRecovered(PathId) override {}
  void SendProbePing(PathId) override {}
  void RunAudit() override {}

  struct SentDatagram {
    sim::Address local;
    sim::Address remote;
    std::vector<std::uint8_t> payload;
  };

  sim::Simulator sim;
  ConnectionConfig config;
  ConnectionStats stats;
  FlowController flow;
  std::map<StreamId, std::unique_ptr<SendStream>> streams;
  ControlQueue control;
  RecoveryManager recovery;
  PacketAssembler assembler;
  std::vector<std::unique_ptr<Path>> paths;
  std::vector<SentDatagram> sent;
  std::unique_ptr<crypto::PacketProtection> opener;
  int send_requests = 0;
  int packets_transmitted = 0;
};

int FirstIndexOf(const std::vector<Frame>& frames, FrameType type) {
  for (std::size_t i = 0; i < frames.size(); ++i) {
    bool match = false;
    switch (type) {
      case FrameType::kHandshake:
        match = std::holds_alternative<HandshakeFrame>(frames[i]);
        break;
      case FrameType::kStream:
        match = std::holds_alternative<StreamFrame>(frames[i]);
        break;
      case FrameType::kAck:
        match = std::holds_alternative<AckFrame>(frames[i]);
        break;
      default:
        break;
    }
    if (match) return static_cast<int>(i);
  }
  return -1;
}

TEST(AssemblerTest, ControlFramesPrecedeStreamData) {
  Harness h;
  Path& path = h.AddPath(PathId{0}, {1, 0}, {2, 0});
  h.AddStream(StreamId{5}, ByteCount{4000});

  // A requeued handshake-cleartext frame sits on the control queue (see
  // recovery_test's LostHandshakeCleartextRequeuedAsControlFrame); the
  // assembler must serve it ahead of any stream data.
  HandshakeFrame chlo;
  chlo.message = HandshakeMessageType::kChlo;
  chlo.nonce.assign(16, 0x42);
  h.control.EnqueueShared(Frame{chlo});

  ASSERT_TRUE(h.assembler.SendOnePacket(path, /*include_stream_data=*/true,
                                        nullptr, nullptr));
  const auto frames = h.DecodeLastPacket();
  const int handshake_at = FirstIndexOf(frames, FrameType::kHandshake);
  const int stream_at = FirstIndexOf(frames, FrameType::kStream);
  ASSERT_GE(handshake_at, 0);
  ASSERT_GE(stream_at, 0);
  EXPECT_LT(handshake_at, stream_at);
  EXPECT_TRUE(h.control.shared_empty());
}

TEST(AssemblerTest, LostFramesFromDeadPathGoOutOnLivePath) {
  Harness h;
  Path& dead = h.AddPath(PathId{0}, {1, 0}, {2, 0});
  Path& live = h.AddPath(PathId{1}, {1, 1}, {2, 1});
  h.AddStream(StreamId{5}, ByteCount{2000});

  std::vector<StreamFrame> first_sent;
  ASSERT_TRUE(h.assembler.SendOnePacket(dead, true, nullptr, &first_sent));
  ASSERT_FALSE(first_sent.empty());
  EXPECT_EQ(first_sent.front().offset, ByteCount{0});

  // The path goes away: write off its in-flight data and requeue the
  // frames (what Connection::RemoveLocalAddress does). The stream data
  // must then leave on the surviving path, retransmit ranges first.
  h.recovery.RequeueLostFrames(PathId{0},
                               dead.OnRetransmissionTimeout(h.sim.now()));
  EXPECT_TRUE(dead.potentially_failed());
  EXPECT_GE(h.stats.frames_retransmitted, 1u);

  ASSERT_TRUE(h.assembler.SendOnePacket(live, true, nullptr, nullptr));
  EXPECT_EQ(h.sent.back().local, live.local_address());
  EXPECT_EQ(h.sent.back().remote, live.remote_address());
  const auto frames = h.DecodeLastPacket();
  const int stream_at = FirstIndexOf(frames, FrameType::kStream);
  ASSERT_GE(stream_at, 0);
  const auto& retransmitted = std::get<StreamFrame>(frames[stream_at]);
  EXPECT_EQ(retransmitted.stream_id, StreamId{5});
  EXPECT_EQ(retransmitted.offset, ByteCount{0});
  EXPECT_TRUE(live.HasInFlight());
}

TEST(AssemblerTest, DelayedAckFiresAfterTimeout) {
  Harness h;
  Path& path = h.AddPath(PathId{0}, {1, 0}, {2, 0});
  ASSERT_TRUE(path.receiver().OnPacketReceived(PacketNumber{1}, h.sim.now()));
  path.NoteRetransmittableReceived();

  h.assembler.MaybeScheduleAck(path, /*out_of_order=*/false);
  EXPECT_TRUE(h.sent.empty());  // armed, not sent

  h.sim.Run();
  ASSERT_EQ(h.sent.size(), 1u);
  const auto frames = h.DecodeLastPacket();
  ASSERT_EQ(frames.size(), 1u);
  const auto* ack = std::get_if<AckFrame>(&frames.front());
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->LargestAcked(), PacketNumber{1});
  EXPECT_GT(ack->ack_delay, 0);
  EXPECT_FALSE(path.HasInFlight());  // ack-only packets are not tracked
}

TEST(AssemblerTest, SecondRetransmittablePacketForcesImmediateAck) {
  Harness h;
  Path& path = h.AddPath(PathId{0}, {1, 0}, {2, 0});
  ASSERT_TRUE(path.receiver().OnPacketReceived(PacketNumber{1}, h.sim.now()));
  path.NoteRetransmittableReceived();
  ASSERT_TRUE(path.receiver().OnPacketReceived(PacketNumber{2}, h.sim.now()));
  path.NoteRetransmittableReceived();

  h.assembler.MaybeScheduleAck(path, /*out_of_order=*/false);
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_FALSE(path.ack_pending());
}

TEST(AssemblerTest, OutOfOrderArrivalForcesImmediateAck) {
  Harness h;
  Path& path = h.AddPath(PathId{0}, {1, 0}, {2, 0});
  ASSERT_TRUE(path.receiver().OnPacketReceived(PacketNumber{5}, h.sim.now()));
  path.NoteRetransmittableReceived();

  h.assembler.MaybeScheduleAck(path, /*out_of_order=*/true);
  ASSERT_EQ(h.sent.size(), 1u);
}

TEST(AssemblerTest, PendingAckIsPiggybackedFirst) {
  Harness h;
  Path& path = h.AddPath(PathId{0}, {1, 0}, {2, 0});
  h.AddStream(StreamId{5}, ByteCount{500});
  ASSERT_TRUE(path.receiver().OnPacketReceived(PacketNumber{3}, h.sim.now()));
  path.NoteRetransmittableReceived();

  ASSERT_TRUE(h.assembler.SendOnePacket(path, true, nullptr, nullptr));
  const auto frames = h.DecodeLastPacket();
  ASSERT_GE(frames.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<AckFrame>(frames.front()));
  EXPECT_GE(FirstIndexOf(frames, FrameType::kStream), 1);
  EXPECT_TRUE(path.HasInFlight());  // the stream data makes it tracked
}

TEST(AssemblerTest, FlowControlCapsNewStreamBytes) {
  Harness h(/*window=*/ByteCount{1000});
  Path& path = h.AddPath(PathId{0}, {1, 0}, {2, 0});
  h.AddStream(StreamId{5}, ByteCount{5000});

  while (h.assembler.SendOnePacket(path, true, nullptr, nullptr)) {
  }
  EXPECT_EQ(h.stats.stream_bytes_sent_new, ByteCount{1000});
  EXPECT_FALSE(h.assembler.AnyStreamHasData());
  EXPECT_EQ(h.assembler.SendAllowance(), ByteCount{0});
}

TEST(AssemblerTest, TrackedPingEntersRecovery) {
  Harness h;
  Path& path = h.AddPath(PathId{0}, {1, 0}, {2, 0});

  h.assembler.SendPing(path, /*track=*/false);
  EXPECT_FALSE(path.HasInFlight());

  h.assembler.SendPing(path, /*track=*/true);
  EXPECT_TRUE(path.HasInFlight());
  EXPECT_EQ(h.packets_transmitted, 2);
}

TEST(AssemblerTest, ClosedAssemblerRefusesAckOnlySends) {
  Harness h;
  Path& path = h.AddPath(PathId{0}, {1, 0}, {2, 0});
  ASSERT_TRUE(path.receiver().OnPacketReceived(PacketNumber{1}, h.sim.now()));
  path.NoteRetransmittableReceived();

  h.assembler.OnConnectionClosed();
  h.assembler.SendAckOnlyPacket(path);
  h.sim.Run();
  EXPECT_TRUE(h.sent.empty());
}

}  // namespace
}  // namespace mpq::quic
