// Stability of the canonical state digest (Connection::StateDigest via
// the model checker's scenario Digest): observability must be free of
// protocol side effects. The same transfer schedule must produce the
// identical digest sequence whether or not a qlog tracer is attached and
// whether or not the datapath profiler is recording — otherwise digest
// pruning in the explorer would depend on instrumentation, and replayed
// counterexamples (which attach a tracer via --qlog) would diverge from
// the recording that produced them.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "harness/explore.h"
#include "obs/prof.h"

namespace mpq::harness {
namespace {

/// Drive a scenario with the greedy schedule (always the first enabled
/// choice) to completion and return the digest after every step.
std::vector<std::uint64_t> GreedyDigests(const ScenarioOptions& options) {
  auto model = MakeQuicScenarioModel(options);
  model->Reset();
  std::vector<std::uint64_t> digests{model->Digest()};
  for (int step = 0; step < 4000; ++step) {
    const std::vector<Choice> enabled = model->Enabled();
    if (enabled.empty()) break;
    model->Execute(enabled.front());
    digests.push_back(model->Digest());
  }
  EXPECT_TRUE(model->GoalReached());
  std::string why;
  EXPECT_TRUE(model->CheckInvariants(&why)) << why;
  return digests;
}

ScenarioOptions TransferScenario() {
  ScenarioOptions options;
  options.name = "transfer";
  options.transfer_bytes = ByteCount{1200};
  return options;
}

class DigestStabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::prof::SetEnabled(false); }
  void TearDown() override { obs::prof::SetEnabled(false); }
};

TEST_F(DigestStabilityTest, TracerAttachmentDoesNotPerturbDigests) {
  const std::vector<std::uint64_t> plain = GreedyDigests(TransferScenario());
  ASSERT_GT(plain.size(), 10u);

  ScenarioOptions traced = TransferScenario();
  traced.qlog_path = ::testing::TempDir() + "/digest_stability_qlog.ndjson";
  const std::vector<std::uint64_t> with_tracer = GreedyDigests(traced);
  EXPECT_EQ(plain, with_tracer);

  // The control must not be vacuous: the tracer actually wrote events.
  std::ifstream qlog(traced.qlog_path);
  ASSERT_TRUE(qlog.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(qlog, line)) ++lines;
  EXPECT_GT(lines, 1u);
}

TEST_F(DigestStabilityTest, ProfilerRecordingDoesNotPerturbDigests) {
  const std::vector<std::uint64_t> off = GreedyDigests(TransferScenario());
  obs::prof::SetEnabled(true);
  const std::vector<std::uint64_t> on = GreedyDigests(TransferScenario());
  obs::prof::SetEnabled(false);
  EXPECT_EQ(off, on);
}

TEST_F(DigestStabilityTest, TracerAndProfilerTogetherMatchPlainRun) {
  const std::vector<std::uint64_t> plain = GreedyDigests(TransferScenario());
  ScenarioOptions instrumented = TransferScenario();
  instrumented.qlog_path =
      ::testing::TempDir() + "/digest_stability_both.ndjson";
  obs::prof::SetEnabled(true);
  const std::vector<std::uint64_t> both = GreedyDigests(instrumented);
  obs::prof::SetEnabled(false);
  EXPECT_EQ(plain, both);
}

}  // namespace
}  // namespace mpq::harness
