// End-to-end tests of the TCP/MPTCP baseline over the simulated two-path
// network: HTTPS-style downloads (3-RTT setup), data integrity, MPTCP
// aggregation, subflow join latency, ORP, and failover reinjection.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/source.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/topology.h"
#include "tcpsim/endpoint.h"

namespace mpq::tcp {
namespace {

constexpr std::uint32_t kAppPattern = 7;

struct TcpTestApp {
  sim::Simulator sim;
  sim::Network net{sim, Rng(777)};
  sim::TwoPathTopology topo;
  std::unique_ptr<TcpServerEndpoint> server;
  std::unique_ptr<TcpClientEndpoint> client;

  ByteCount bytes_received{};
  ByteCount pattern_errors{};
  bool finished = false;
  TimePoint finish_time = -1;
  TimePoint secure_time = -1;

  TcpTestApp(const std::array<sim::PathParams, 2>& paths,
             const TcpConfig& config, int interfaces)
      : topo(sim::BuildTwoPathTopology(net, paths)) {
    std::vector<sim::Address> server_locals(topo.server_addr.begin(),
                                            topo.server_addr.end());
    server = std::make_unique<TcpServerEndpoint>(sim, net, server_locals,
                                                 config, /*seed=*/1);
    server->SetAcceptHandler([](TcpConnection& conn) {
      auto request = std::make_shared<std::string>();
      conn.SetAppDataHandler([&conn, request](
                                 ByteCount, std::span<const std::uint8_t> data,
                                 bool) {
        request->append(data.begin(), data.end());
        const auto newline = request->find('\n');
        if (newline != std::string::npos && request->back() == '\n') {
          const ByteCount size = ByteCount{std::stoull(request->substr(4, newline - 4))};
          request->clear();
          conn.SendAppData(std::make_unique<PatternSource>(kAppPattern, size));
        }
      });
    });

    std::vector<sim::Address> client_locals;
    for (int i = 0; i < interfaces; ++i) {
      client_locals.push_back(topo.client_addr[i]);
    }
    client = std::make_unique<TcpClientEndpoint>(sim, net, client_locals,
                                                 config, /*seed=*/2);
    client->connection().SetAppDataHandler(
        [this](ByteCount offset, std::span<const std::uint8_t> data,
               bool eof) {
          for (std::size_t i = 0; i < data.size(); ++i) {
            if (data[i] != PatternByte(kAppPattern, offset + i)) {
              ++pattern_errors;
            }
          }
          bytes_received += data.size();
          if (eof) {
            finished = true;
            finish_time = sim.now();
          }
        });
  }

  void Run(ByteCount download_size, TimePoint deadline = 600 * kSecond,
           int interfaces = 2) {
    client->connection().SetSecureEstablishedHandler(
        [this, download_size] {
          secure_time = sim.now();
          const std::string request =
              "GET " + std::to_string(download_size.value()) + "\n";
          client->connection().SendAppData(
              std::make_unique<BufferSource>(std::vector<std::uint8_t>(
                  request.begin(), request.end())));
        });
    std::vector<sim::Address> remotes;
    for (int i = 0; i < interfaces; ++i) {
      remotes.push_back(topo.server_addr[i]);
    }
    client->Connect(remotes);
    while (!finished && sim.RunOne(deadline)) {
    }
  }
};

TcpConfig SinglePathTcp() {
  TcpConfig config;
  config.multipath = false;
  config.congestion = cc::Algorithm::kCubic;
  return config;
}

TcpConfig Mptcp() {
  TcpConfig config;
  config.multipath = true;
  config.congestion = cc::Algorithm::kOlia;
  return config;
}

std::array<sim::PathParams, 2> SymmetricPaths(double mbps, Duration rtt,
                                              double loss = 0.0) {
  sim::PathParams p;
  p.capacity_mbps = mbps;
  p.rtt = rtt;
  p.max_queue_delay = 50 * kMillisecond;
  p.random_loss_rate = loss;
  return {p, p};
}

TEST(TcpIntegration, SinglePathDownloadCompletesWithIntactData) {
  TcpTestApp app(SymmetricPaths(10.0, 30 * kMillisecond), SinglePathTcp(), 1);
  app.Run(ByteCount{2 * 1024 * 1024}, 600 * kSecond, 1);
  ASSERT_TRUE(app.finished);
  EXPECT_EQ(app.bytes_received, 2u * 1024 * 1024);
  EXPECT_EQ(app.pattern_errors, 0u);
  EXPECT_LT(app.finish_time, SecondsToDuration(6.0));
}

TEST(TcpIntegration, SecureHandshakeTakesThreeRtts) {
  // §4.2: TCP 3WHS + TLS 1.2 = 3 RTTs before the request can be sent.
  TcpTestApp app(SymmetricPaths(50.0, 100 * kMillisecond), SinglePathTcp(), 1);
  app.Run(ByteCount{1024}, 30 * kSecond, 1);
  ASSERT_TRUE(app.finished);
  EXPECT_GE(app.secure_time, 300 * kMillisecond);
  EXPECT_LE(app.secure_time, 360 * kMillisecond);
  // Compare: QUIC's handshake test pins ~1 RTT. The 256 KB figure (Fig. 9)
  // rests on exactly this gap.
}

TEST(TcpIntegration, NoTlsHandshakeTakesOneRtt) {
  TcpConfig config = SinglePathTcp();
  config.use_tls = false;
  TcpTestApp app(SymmetricPaths(50.0, 100 * kMillisecond), config, 1);
  app.Run(ByteCount{1024}, 30 * kSecond, 1);
  ASSERT_TRUE(app.finished);
  EXPECT_GE(app.secure_time, 100 * kMillisecond);
  EXPECT_LE(app.secure_time, 120 * kMillisecond);
}

TEST(TcpIntegration, MptcpAggregatesBandwidth) {
  TcpTestApp single(SymmetricPaths(8.0, 40 * kMillisecond), SinglePathTcp(),
                    1);
  single.Run(ByteCount{10 * 1024 * 1024}, 600 * kSecond, 1);
  ASSERT_TRUE(single.finished);

  TcpTestApp multi(SymmetricPaths(8.0, 40 * kMillisecond), Mptcp(), 2);
  multi.Run(ByteCount{10 * 1024 * 1024});
  ASSERT_TRUE(multi.finished);
  EXPECT_EQ(multi.pattern_errors, 0u);
  EXPECT_LT(multi.finish_time, single.finish_time * 0.7);
}

TEST(TcpIntegration, MptcpUsesBothSubflows) {
  TcpTestApp app(SymmetricPaths(8.0, 40 * kMillisecond), Mptcp(), 2);
  app.Run(ByteCount{5 * 1024 * 1024});
  ASSERT_TRUE(app.finished);
  ASSERT_EQ(app.server->connection_count(), 1u);
  TcpConnection* conn =
      app.server->FindConnection(app.client->connection().cid());
  ASSERT_NE(conn, nullptr);
  const auto subflows = conn->subflows();
  ASSERT_EQ(subflows.size(), 2u);
  for (const Subflow* subflow : subflows) {
    EXPECT_GT(subflow->bytes_sent(), 100u * 1024)
        << "subflow " << static_cast<int>(subflow->id());
  }
}

TEST(TcpIntegration, LossyPathStillCompletesWithIntactData) {
  TcpTestApp app(SymmetricPaths(10.0, 30 * kMillisecond, 0.02),
                 SinglePathTcp(), 1);
  app.Run(ByteCount{1 * 1024 * 1024}, 600 * kSecond, 1);
  ASSERT_TRUE(app.finished);
  EXPECT_EQ(app.bytes_received, 1u * 1024 * 1024);
  EXPECT_EQ(app.pattern_errors, 0u);
}

TEST(TcpIntegration, MptcpLossyBothPathsCompletes) {
  TcpTestApp app(SymmetricPaths(6.0, 50 * kMillisecond, 0.01), Mptcp(), 2);
  app.Run(ByteCount{2 * 1024 * 1024});
  ASSERT_TRUE(app.finished);
  EXPECT_EQ(app.pattern_errors, 0u);
}

TEST(TcpIntegration, FailoverReinjectsOntoSurvivingSubflow) {
  std::array<sim::PathParams, 2> paths =
      SymmetricPaths(10.0, 15 * kMillisecond);
  paths[1].rtt = 25 * kMillisecond;
  TcpTestApp app(paths, Mptcp(), 2);
  app.sim.Schedule(1 * kSecond, [&app] {
    app.topo.forward[0]->SetRandomLossRate(1.0);
    app.topo.backward[0]->SetRandomLossRate(1.0);
  });
  app.Run(ByteCount{512 * 1024}, 120 * kSecond);
  ASSERT_TRUE(app.finished);
  EXPECT_EQ(app.bytes_received, 512u * 1024);
  EXPECT_EQ(app.pattern_errors, 0u);
  EXPECT_LT(app.finish_time, 30 * kSecond);
}

TEST(TcpIntegration, AsymmetricPathsNoCorruption) {
  std::array<sim::PathParams, 2> paths =
      SymmetricPaths(10.0, 20 * kMillisecond);
  paths[1].capacity_mbps = 1.0;
  paths[1].rtt = 200 * kMillisecond;
  TcpTestApp app(paths, Mptcp(), 2);
  app.Run(ByteCount{2 * 1024 * 1024});
  ASSERT_TRUE(app.finished);
  EXPECT_EQ(app.pattern_errors, 0u);
}

}  // namespace
}  // namespace mpq::tcp
