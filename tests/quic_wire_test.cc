// Wire-format tests: public-header encode/decode (including packet-number
// truncation/reconstruction), every frame type's round trip, ACK range
// encoding up to the 256-range cap, and malformed-input rejection.
#include <gtest/gtest.h>

#include <vector>

#include "common/buf.h"
#include "common/rng.h"
#include "quic/wire.h"

namespace mpq::quic {
namespace {

TEST(Header, RoundTripSinglePath) {
  PacketHeader h;
  h.cid = 0xDEADBEEFCAFEF00DULL;
  h.packet_number = PacketNumber{5};
  h.multipath = false;
  BufWriter w;
  EncodeHeader(h, /*largest_acked=*/PacketNumber{0}, w);
  BufReader r(w.span());
  ParsedHeader parsed;
  ASSERT_TRUE(DecodeHeader(r, parsed));
  EXPECT_EQ(parsed.header.cid, h.cid);
  EXPECT_FALSE(parsed.header.multipath);
  EXPECT_FALSE(parsed.header.handshake);
  EXPECT_EQ(DecodePacketNumber(PacketNumber{4}, parsed.header.packet_number,
                               parsed.pn_length),
            5u);
  EXPECT_EQ(parsed.header_size, w.size());
}

TEST(Header, MultipathCarriesPathId) {
  PacketHeader h;
  h.cid = 42;
  h.path_id = PathId{7};
  h.packet_number = PacketNumber{1};
  h.multipath = true;
  BufWriter w;
  EncodeHeader(h, PacketNumber{0}, w);
  BufReader r(w.span());
  ParsedHeader parsed;
  ASSERT_TRUE(DecodeHeader(r, parsed));
  EXPECT_TRUE(parsed.header.multipath);
  EXPECT_EQ(parsed.header.path_id, 7);
  // Multipath adds exactly one byte over the single-path header.
  BufWriter w2;
  h.multipath = false;
  EncodeHeader(h, PacketNumber{0}, w2);
  EXPECT_EQ(w.size(), w2.size() + 1);
}

TEST(Header, PacketNumberLengthGrowsWithDistance) {
  // The encoding must cover 2*distance+1 values.
  EXPECT_EQ(PacketNumberLength(PacketNumber{1}, PacketNumber{0}), 1u);
  EXPECT_EQ(PacketNumberLength(PacketNumber{127}, PacketNumber{0}), 1u);   // 255 < 2^8
  EXPECT_EQ(PacketNumberLength(PacketNumber{128}, PacketNumber{0}), 2u);   // 257 > 2^8
  EXPECT_EQ(PacketNumberLength(PacketNumber{100}, PacketNumber{99}), 1u);
  EXPECT_EQ(PacketNumberLength(PacketNumber{40000}, PacketNumber{0}), 4u);  // 80001 > 2^16
  EXPECT_EQ(PacketNumberLength(PacketNumber{1ULL << 40}, PacketNumber{0}), 8u);
}

class PnReconstruction
    : public ::testing::TestWithParam<std::pair<PacketNumber, PacketNumber>> {
};

TEST_P(PnReconstruction, TruncateAndRecover) {
  const auto [largest_acked, pn] = GetParam();
  PacketHeader h;
  h.cid = 1;
  h.packet_number = pn;
  BufWriter w;
  EncodeHeader(h, largest_acked, w);
  BufReader r(w.span());
  ParsedHeader parsed;
  ASSERT_TRUE(DecodeHeader(r, parsed));
  // Receiver has seen up to pn-1 (in-order arrival).
  EXPECT_EQ(DecodePacketNumber(pn - 1, parsed.header.packet_number,
                               parsed.pn_length),
            pn);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PnReconstruction,
    ::testing::Values(std::pair<PacketNumber, PacketNumber>{0, 1},
                      std::pair<PacketNumber, PacketNumber>{0, 2},
                      std::pair<PacketNumber, PacketNumber>{10, 11},
                      std::pair<PacketNumber, PacketNumber>{100, 130},
                      std::pair<PacketNumber, PacketNumber>{1000, 1255},
                      std::pair<PacketNumber, PacketNumber>{65000, 65100},
                      std::pair<PacketNumber, PacketNumber>{1 << 20,
                                                            (1 << 20) + 900},
                      std::pair<PacketNumber, PacketNumber>{1ULL << 33,
                                                            (1ULL << 33) +
                                                                5000}));

TEST(PnReconstructionEdge, ReorderedBelowLargestSeen) {
  // Largest seen 200, packet 198 arrives late with a 1-byte PN.
  PacketHeader h;
  h.cid = 1;
  h.packet_number = PacketNumber{198};
  BufWriter w;
  EncodeHeader(h, /*largest_acked=*/PacketNumber{197}, w);
  BufReader r(w.span());
  ParsedHeader parsed;
  ASSERT_TRUE(DecodeHeader(r, parsed));
  EXPECT_EQ(DecodePacketNumber(PacketNumber{200}, parsed.header.packet_number,
                               parsed.pn_length),
            198u);
}

// ---------------------------------------------------------------------------
// Frames

Frame RoundTrip(const Frame& in) {
  BufWriter w;
  EncodeFrame(in, w);
  EXPECT_EQ(w.size(), FrameWireSize(in));
  BufReader r(w.span());
  Frame out;
  EXPECT_TRUE(DecodeFrame(r, out));
  EXPECT_TRUE(r.AtEnd());
  return out;
}

TEST(Frames, StreamRoundTrip) {
  StreamFrame f;
  f.stream_id = StreamId{3};
  f.offset = ByteCount{123456};
  f.fin = true;
  f.data = {1, 2, 3, 4, 5};
  const auto out = std::get<StreamFrame>(RoundTrip(f));
  EXPECT_EQ(out.stream_id, f.stream_id);
  EXPECT_EQ(out.offset, f.offset);
  EXPECT_EQ(out.fin, f.fin);
  EXPECT_EQ(out.data, f.data);
}

TEST(Frames, EmptyStreamFrameWithFin) {
  StreamFrame f;
  f.stream_id = StreamId{9};
  f.offset = ByteCount{1000};
  f.fin = true;
  const auto out = std::get<StreamFrame>(RoundTrip(f));
  EXPECT_TRUE(out.data.empty());
  EXPECT_TRUE(out.fin);
}

TEST(Frames, AckRoundTripMultipleRanges) {
  AckFrame f;
  f.path_id = PathId{2};
  f.ack_delay = 12345;
  f.ranges = {{PacketNumber{90}, PacketNumber{100}},
              {PacketNumber{70}, PacketNumber{80}},
              {PacketNumber{10}, PacketNumber{50}},
              {PacketNumber{3}, PacketNumber{3}}};
  const auto out = std::get<AckFrame>(RoundTrip(f));
  EXPECT_EQ(out.path_id, 2);
  EXPECT_EQ(out.ack_delay, 12345);
  ASSERT_EQ(out.ranges.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out.ranges[i].smallest, f.ranges[i].smallest);
    EXPECT_EQ(out.ranges[i].largest, f.ranges[i].largest);
  }
  EXPECT_EQ(out.LargestAcked(), 100u);
}

TEST(Frames, AckSingleRange) {
  AckFrame f;
  f.path_id = PathId{0};
  f.ranges = {{PacketNumber{1}, PacketNumber{1}}};
  const auto out = std::get<AckFrame>(RoundTrip(f));
  ASSERT_EQ(out.ranges.size(), 1u);
  EXPECT_EQ(out.ranges[0].smallest, 1u);
  EXPECT_EQ(out.ranges[0].largest, 1u);
}

TEST(Frames, AckMaxRangesRoundTrip) {
  // 256 alternating ranges — the QUIC-side capacity the paper contrasts
  // with TCP's 2-3 SACK blocks.
  AckFrame f;
  f.path_id = PathId{1};
  PacketNumber pn = PacketNumber{10 * AckFrame::kMaxAckRanges};
  for (std::size_t i = 0; i < AckFrame::kMaxAckRanges; ++i) {
    f.ranges.push_back({pn, pn + 3});
    pn -= 10;
  }
  const auto out = std::get<AckFrame>(RoundTrip(f));
  EXPECT_EQ(out.ranges.size(), AckFrame::kMaxAckRanges);
}

TEST(Frames, AckBeyondMaxRangesRejectedOnDecode) {
  BufWriter w;
  w.WriteU8(static_cast<std::uint8_t>(FrameType::kAck));
  w.WriteU8(0);                                      // path id
  w.WriteVarint(0);                                  // delay
  w.WriteVarint(AckFrame::kMaxAckRanges + 1);        // too many ranges
  w.WriteVarint(100000);
  w.WriteVarint(1);
  BufReader r(w.span());
  Frame out;
  EXPECT_FALSE(DecodeFrame(r, out));
}

TEST(Frames, WindowUpdateRoundTrip) {
  WindowUpdateFrame f;
  f.stream_id = StreamId{0};
  f.max_data = ByteCount{16 * 1024 * 1024};
  const auto out = std::get<WindowUpdateFrame>(RoundTrip(f));
  EXPECT_EQ(out.stream_id, 0u);
  EXPECT_EQ(out.max_data, f.max_data);
}

TEST(Frames, HandshakeRoundTrip) {
  HandshakeFrame f;
  f.message = HandshakeMessageType::kShlo;
  f.version = kVersionMpq1;
  f.nonce = {9, 8, 7, 6};
  f.peer_addresses = {{2, 0}, {2, 1}};
  const auto out = std::get<HandshakeFrame>(RoundTrip(f));
  EXPECT_EQ(out.message, HandshakeMessageType::kShlo);
  EXPECT_EQ(out.version, kVersionMpq1);
  EXPECT_EQ(out.nonce, f.nonce);
  ASSERT_EQ(out.peer_addresses.size(), 2u);
  EXPECT_EQ(out.peer_addresses[1].iface, 1);
}

TEST(Frames, AddAddressRoundTrip) {
  AddAddressFrame f;
  f.addresses = {{5, 0}, {5, 1}, {5, 2}};
  const auto out = std::get<AddAddressFrame>(RoundTrip(f));
  ASSERT_EQ(out.addresses.size(), 3u);
  EXPECT_EQ(out.addresses[2].iface, 2);
}

TEST(Frames, RemoveAddressRoundTrip) {
  RemoveAddressFrame f;
  f.addresses = {{1, 0}, {1, 1}};
  const auto out = std::get<RemoveAddressFrame>(RoundTrip(f));
  ASSERT_EQ(out.addresses.size(), 2u);
  EXPECT_EQ(out.addresses[1].iface, 1);
  EXPECT_TRUE(IsRetransmittable(Frame{RemoveAddressFrame{}}));
}

TEST(Frames, PathsRoundTrip) {
  PathsFrame f;
  f.paths = {{PathId{0}, PathStatus::kActive, 15000},
             {PathId{1}, PathStatus::kPotentiallyFailed, 250000}};
  const auto out = std::get<PathsFrame>(RoundTrip(f));
  ASSERT_EQ(out.paths.size(), 2u);
  EXPECT_EQ(out.paths[0].srtt, 15000);
  EXPECT_EQ(out.paths[1].status, PathStatus::kPotentiallyFailed);
}

TEST(Frames, ConnectionCloseRoundTrip) {
  ConnectionCloseFrame f;
  f.error_code = 42;
  f.reason = "done";
  const auto out = std::get<ConnectionCloseFrame>(RoundTrip(f));
  EXPECT_EQ(out.error_code, 42);
  EXPECT_EQ(out.reason, "done");
}

TEST(Frames, RstStreamRoundTrip) {
  RstStreamFrame f;
  f.stream_id = StreamId{11};
  f.error_code = 3;
  f.final_offset = ByteCount{999999};
  const auto out = std::get<RstStreamFrame>(RoundTrip(f));
  EXPECT_EQ(out.final_offset, 999999u);
}

TEST(Frames, PingAndBlockedRoundTrip) {
  EXPECT_TRUE(std::holds_alternative<PingFrame>(RoundTrip(PingFrame{})));
  BlockedFrame b;
  b.stream_id = StreamId{4};
  EXPECT_EQ(std::get<BlockedFrame>(RoundTrip(b)).stream_id, 4u);
}

TEST(Frames, PayloadWithTrailingPadding) {
  BufWriter w;
  EncodeFrame(PingFrame{}, w);
  EncodeFrame(StreamFrame{StreamId{3}, ByteCount{0}, false, {1, 2}}, w);
  EncodeFrame(PaddingFrame{100}, w);
  std::vector<Frame> frames;
  ASSERT_TRUE(DecodePayload(w.span(), frames));
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<PingFrame>(frames[0]));
  EXPECT_TRUE(std::holds_alternative<StreamFrame>(frames[1]));
  EXPECT_EQ(std::get<PaddingFrame>(frames[2]).length, 100u);
}

TEST(Frames, RetransmittabilityClassification) {
  EXPECT_FALSE(IsRetransmittable(Frame{AckFrame{}}));
  EXPECT_FALSE(IsRetransmittable(Frame{PaddingFrame{}}));
  EXPECT_TRUE(IsRetransmittable(Frame{PingFrame{}}));
  EXPECT_TRUE(IsRetransmittable(Frame{StreamFrame{}}));
  EXPECT_TRUE(IsRetransmittable(Frame{WindowUpdateFrame{}}));
  EXPECT_TRUE(IsRetransmittable(Frame{PathsFrame{}}));
}

TEST(Frames, MalformedInputsRejected) {
  // Unknown frame type.
  {
    const std::uint8_t bytes[] = {0x7F};
    BufReader r(bytes, sizeof(bytes));
    Frame out;
    EXPECT_FALSE(DecodeFrame(r, out));
  }
  // Truncated stream frame (length says 10, only 2 present).
  {
    BufWriter w;
    w.WriteU8(static_cast<std::uint8_t>(FrameType::kStream));
    w.WriteVarint(3);
    w.WriteVarint(0);
    w.WriteVarint(10);
    w.WriteU8(0);
    w.WriteU8(1);
    w.WriteU8(2);
    BufReader r(w.span());
    Frame out;
    EXPECT_FALSE(DecodeFrame(r, out));
  }
  // ACK with an impossible gap (overlapping ranges).
  {
    BufWriter w;
    w.WriteU8(static_cast<std::uint8_t>(FrameType::kAck));
    w.WriteU8(0);
    w.WriteVarint(0);
    w.WriteVarint(2);
    w.WriteVarint(100);  // largest
    w.WriteVarint(5);    // first range 95..100
    w.WriteVarint(1);    // gap of 1: adjacent/overlap — illegal
    w.WriteVarint(5);
    BufReader r(w.span());
    Frame out;
    EXPECT_FALSE(DecodeFrame(r, out));
  }
  // Empty input.
  {
    BufReader r(std::span<const std::uint8_t>{});
    Frame out;
    EXPECT_FALSE(DecodeFrame(r, out));
  }
}

TEST(Frames, FuzzDecodeNeverCrashes) {
  // Random bytes must never crash the decoder (they may or may not parse).
  Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> junk(rng.NextBounded(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.NextU64());
    std::vector<Frame> frames;
    DecodePayload(junk, frames);  // result irrelevant; absence of UB is the test
  }
  SUCCEED();
}

}  // namespace
}  // namespace mpq::quic
