// Deterministic mutation fuzzing for the two external input surfaces:
// the wire parser (DecodeFrame/DecodePayload/DecodeHeader) and the
// NDJSON trace reader (ReadTrace). Inputs start from valid encodings,
// then get byte flips, splices, and truncations from a fixed-seed
// common/rng.h generator, so every run covers the same corpus and a
// failure reproduces by seed. The assertion is crash-freedom (and a few
// cheap sanity bounds) under whatever sanitizer the build enables —
// tools/ci.sh runs this binary under ASan+UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/source.h"
#include "crypto/aead.h"
#include "obs/qlog.h"
#include "obs/trace_reader.h"
#include "quic/connection.h"
#include "quic/wire.h"
#include "sim/simulator.h"

namespace mpq::quic {
namespace {

// Mirror of the generator in wire_property_test.cc: a diverse valid
// frame to seed mutations from. Kept local so the two tests stay
// independently hackable.
Frame RandomFrame(Rng& rng) {
  switch (rng.NextBounded(10)) {
    case 0: {
      StreamFrame f;
      f.stream_id = StreamId{static_cast<std::uint32_t>(
          rng.NextBounded(1000) + 1)};
      f.offset = ByteCount{rng.NextBounded(1ULL << 40)};
      f.fin = rng.NextBool(0.2);
      f.data.resize(rng.NextBounded(600));
      for (auto& b : f.data) b = static_cast<std::uint8_t>(rng.NextU64());
      return f;
    }
    case 1: {
      AckFrame f;
      f.path_id = PathId{static_cast<std::uint8_t>(rng.NextBounded(8))};
      f.ack_delay = static_cast<Duration>(rng.NextBounded(1 << 20));
      PacketNumber cursor{rng.NextBounded(1ULL << 30) + 3000};
      const std::size_t count = rng.NextBounded(32) + 1;
      for (std::size_t i = 0; i < count && cursor > 8; ++i) {
        const PacketNumber largest = cursor;
        const PacketNumber smallest =
            largest -
            rng.NextBounded(std::min<std::uint64_t>(largest.value(), 5));
        f.ranges.push_back({smallest, largest});
        if (smallest < rng.NextBounded(6) + 2) break;
        cursor = smallest - (rng.NextBounded(4) + 2);
      }
      return f;
    }
    case 2: {
      WindowUpdateFrame f;
      f.stream_id = StreamId{static_cast<std::uint32_t>(rng.NextBounded(100))};
      f.max_data = ByteCount{rng.NextBounded(1ULL << 40)};
      return f;
    }
    case 3:
      return PingFrame{};
    case 4: {
      PathsFrame f;
      const std::size_t count = rng.NextBounded(6);
      for (std::size_t i = 0; i < count; ++i) {
        f.paths.push_back({PathId{static_cast<std::uint8_t>(i)},
                           rng.NextBool(0.3) ? PathStatus::kPotentiallyFailed
                                             : PathStatus::kActive,
                           static_cast<Duration>(rng.NextBounded(1 << 22))});
      }
      return f;
    }
    case 5: {
      AddAddressFrame f;
      const std::size_t count = rng.NextBounded(4) + 1;
      for (std::size_t i = 0; i < count; ++i) {
        f.addresses.push_back(
            {static_cast<std::uint16_t>(rng.NextBounded(100)),
             static_cast<std::uint16_t>(rng.NextBounded(4))});
      }
      return f;
    }
    case 6: {
      RemoveAddressFrame f;
      f.addresses.push_back({static_cast<std::uint16_t>(rng.NextBounded(100)),
                             static_cast<std::uint16_t>(rng.NextBounded(4))});
      return f;
    }
    case 7: {
      RstStreamFrame f;
      f.stream_id = StreamId{static_cast<std::uint32_t>(
          rng.NextBounded(1000) + 1)};
      f.error_code = static_cast<std::uint16_t>(rng.NextBounded(1 << 16));
      f.final_offset = ByteCount{rng.NextBounded(1ULL << 40)};
      return f;
    }
    case 8: {
      ConnectionCloseFrame f;
      f.error_code = static_cast<std::uint16_t>(rng.NextBounded(1 << 16));
      f.reason.resize(rng.NextBounded(40));
      for (auto& c : f.reason) c = static_cast<char>(rng.NextBounded(256));
      return f;
    }
    default: {
      BlockedFrame f;
      f.stream_id = StreamId{static_cast<std::uint32_t>(rng.NextBounded(100))};
      return f;
    }
  }
}

/// Apply `count` random single-byte edits (flip, overwrite, or splice of
/// a short random run) in place.
void MutateBytes(Rng& rng, std::vector<std::uint8_t>& bytes,
                 std::size_t count) {
  if (bytes.empty()) return;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pos = rng.NextBounded(bytes.size());
    switch (rng.NextBounded(3)) {
      case 0:  // flip one bit
        bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.NextBounded(8));
        break;
      case 1:  // overwrite with a fresh byte
        bytes[pos] = static_cast<std::uint8_t>(rng.NextU64());
        break;
      default: {  // splice a short random run
        const std::size_t run =
            std::min<std::size_t>(rng.NextBounded(8) + 1, bytes.size() - pos);
        for (std::size_t j = 0; j < run; ++j) {
          bytes[pos + j] = static_cast<std::uint8_t>(rng.NextU64());
        }
        break;
      }
    }
  }
}

/// Decoding must never crash, and on success the decoded frame must
/// re-encode (i.e. be internally consistent enough to serialize).
void DecodeMustNotCrash(std::span<const std::uint8_t> bytes) {
  BufReader reader(bytes);
  Frame frame;
  if (DecodeFrame(reader, frame)) {
    BufWriter reencoded;
    EncodeFrame(frame, reencoded);
    ASSERT_EQ(reencoded.size(), FrameWireSize(frame));
  }
  std::vector<Frame> frames;
  if (DecodePayload(bytes, frames)) {
    for (const Frame& f : frames) {
      BufWriter reencoded;
      EncodeFrame(f, reencoded);
      ASSERT_EQ(reencoded.size(), FrameWireSize(f));
    }
  }
}

TEST(FuzzMutation, MutatedFramesNeverCrashDecoder) {
  Rng rng(0xF0552001);
  for (int iter = 0; iter < 4000; ++iter) {
    BufWriter writer;
    const std::size_t count = rng.NextBounded(4) + 1;
    for (std::size_t i = 0; i < count; ++i) {
      EncodeFrame(RandomFrame(rng), writer);
    }
    std::vector<std::uint8_t> bytes(writer.data());
    MutateBytes(rng, bytes, rng.NextBounded(8) + 1);
    DecodeMustNotCrash(bytes);
  }
}

TEST(FuzzMutation, EveryTruncationPrefixIsHandled) {
  Rng rng(0xF0552002);
  for (int iter = 0; iter < 200; ++iter) {
    BufWriter writer;
    EncodeFrame(RandomFrame(rng), writer);
    const std::vector<std::uint8_t>& bytes = writer.data();
    for (std::size_t len = 0; len <= bytes.size(); ++len) {
      DecodeMustNotCrash(std::span<const std::uint8_t>(bytes.data(), len));
    }
  }
}

TEST(FuzzMutation, PureNoiseNeverCrashesDecoder) {
  Rng rng(0xF0552003);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::uint8_t> bytes(rng.NextBounded(300));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.NextU64());
    DecodeMustNotCrash(bytes);
  }
}

TEST(FuzzMutation, MutatedHeadersNeverCrashDecoder) {
  Rng rng(0xF0552004);
  for (int iter = 0; iter < 4000; ++iter) {
    PacketHeader header;
    header.cid = rng.NextU64();
    header.multipath = rng.NextBool(0.5);
    header.path_id = PathId{static_cast<std::uint8_t>(rng.NextBounded(8))};
    const PacketNumber largest_acked{rng.NextBounded(1ULL << 34)};
    header.packet_number = largest_acked + 1 + rng.NextBounded(1 << 12);
    header.handshake = rng.NextBool(0.1);
    BufWriter writer;
    EncodeHeader(header, largest_acked, writer);
    std::vector<std::uint8_t> bytes(writer.data());
    MutateBytes(rng, bytes, rng.NextBounded(4) + 1);
    const std::size_t len = rng.NextBool(0.3)
                                ? rng.NextBounded(bytes.size() + 1)
                                : bytes.size();
    BufReader reader(std::span<const std::uint8_t>(bytes.data(), len));
    ParsedHeader parsed;
    if (DecodeHeader(reader, parsed)) {
      // Whatever decoded must at least be self-consistent.
      ASSERT_GE(parsed.header_size, parsed.pn_length);
      ASSERT_LE(parsed.header_size, len);
      (void)DecodePacketNumber(largest_acked, parsed.header.packet_number,
                               parsed.pn_length);
    }
  }
}

// ---------------------------------------------------------------------------
// Connection-level mutation fuzzing: the dispatcher and the path-management
// handlers behind it, reached through the real decrypt path. The simulated
// handshake is observable (both nonces cross in cleartext and the server
// config secret sits in ConnectionConfig), so the harness plays an on-path
// attacker that derives the session keys and abuses them two ways: real
// packets on the transfer-carrying paths are re-sealed in transit with
// mutated PATHS / ADD_ADDRESS / REMOVE_ADDRESS frames appended, and whole
// forged packets land on fresh path ids — aimed at paths in the
// potentially-failed and unknown-RTT states the chaos sweep newly
// reaches. Assertions: crash-freedom (tools/ci.sh runs this binary
// under ASan+UBSan and with MPQ_AUDIT, which re-checks the connection
// invariants on every OnDatagram), and liveness — once the abuse stops and
// both ends re-announce their addresses, the transfers still finish.

constexpr sim::Address kVictimAddrs[] = {{1, 0}, {1, 1}};
constexpr sim::Address kPeerAddrs[] = {{2, 0}, {2, 1}};
constexpr ConnectionId kForgeCid = 0xF0DD;

class OnPathAttacker {
 public:
  explicit OnPathAttacker(std::uint64_t seed) : rng_(seed) {
    config_.multipath = true;
    config_.congestion = CongestionAlgo::kOlia;
    client_ = std::make_unique<Connection>(
        sim_, Perspective::kClient, kForgeCid, config_, Rng(seed ^ 0xC1),
        [this](sim::Address local, sim::Address remote,
               std::vector<std::uint8_t> bytes) {
          Forward(/*to_server=*/true, local, remote, std::move(bytes));
        });
    server_ = std::make_unique<Connection>(
        sim_, Perspective::kServer, kForgeCid, config_, Rng(seed ^ 0x5E),
        [this](sim::Address local, sim::Address remote,
               std::vector<std::uint8_t> bytes) {
          Forward(/*to_server=*/false, local, remote, std::move(bytes));
        });
    client_->SetLocalAddresses({kVictimAddrs[0], kVictimAddrs[1]});
    server_->SetLocalAddresses({kPeerAddrs[0], kPeerAddrs[1]});
    client_->SetStreamDataHandler(
        [this](StreamId, ByteCount, std::span<const std::uint8_t>, bool fin) {
          if (fin) ++transfers_finished_;
        });
    server_->SetStreamDataHandler(
        [this](StreamId, ByteCount, std::span<const std::uint8_t>, bool fin) {
          if (fin) ++transfers_finished_;
        });
  }

  /// Run the handshake, then derive the same session keys both endpoints
  /// ended up with from the sniffed nonces.
  bool EstablishAndDeriveKeys() {
    client_->Connect(kPeerAddrs[0]);
    sim_.Run(2 * kSecond);
    if (!client_->established() || !server_->established()) return false;
    if (client_nonce_.empty() || server_nonce_.empty()) return false;
    const crypto::SessionKeys keys = crypto::DeriveSessionKeys(
        client_nonce_, server_nonce_, config_.server_config_secret);
    to_client_.emplace(keys.server_to_client);
    to_server_.emplace(keys.client_to_server);
    return true;
  }

  void StartTransfers() {
    client_->SendOnStream(StreamId{3}, std::make_unique<PatternSource>(
                                           StreamId{3}, ByteCount{96 * 1024}));
    server_->SendOnStream(StreamId{4}, std::make_unique<PatternSource>(
                                           StreamId{4}, ByteCount{64 * 1024}));
    tampering_ = true;
  }

  /// One fuzz step: move the outage windows, inject one forged packet,
  /// advance the clock 20 ms.
  void Step(int iter) {
    // Periodic one-directional cuts, each longer than the minimum RTO, so
    // the victim's paths cycle through potentially-failed while forged
    // frames keep arriving.
    drop_to_client_ = iter % 100 >= 40 && iter % 100 < 60;
    drop_to_server_ = iter % 100 >= 70 && iter % 100 < 80;
    const bool to_client = rng_.NextBool(0.7);
    // Whole forged packets go only to attacker-created path ids, forcing
    // EnsurePath to spin up fresh unknown-RTT paths mid-connection. The
    // live paths 0/1 get their abuse from TamperInTransit instead: a
    // forged packet must sit above the receive horizon to be accepted, and
    // every such injection drags the victim's packet-number reconstruction
    // base further away from the honest sender's — after a few hundred
    // injections honest packets no longer decode and the path is dead for
    // reasons inherent to the attacker model, not bugs.
    const PathId pid{static_cast<std::uint8_t>(2 + rng_.NextBounded(4))};
    BufWriter payload;
    const std::size_t count = rng_.NextBounded(3) + 1;
    for (std::size_t i = 0; i < count; ++i) {
      EncodeFrame(RandomPathManagementFrame(), payload);
    }
    const std::vector<std::uint8_t> original(payload.data());
    std::vector<std::uint8_t> plaintext = original;
    if (rng_.NextBool(0.7)) {
      MutateBytes(rng_, plaintext, rng_.NextBounded(6) + 1);
    }
    // A keyed attacker can kill or stall the connection with one HONEST
    // frame — CONNECTION_CLOSE closes it, a forged in-window STREAM fin
    // pins a final size the real sender will never reach, a forged ACK
    // marks lost data delivered so it is never retransmitted. Those are
    // inherent to the attacker model, not robustness bugs, so mutations
    // that land on them are reverted: this test asserts that
    // *path-management* abuse can never permanently wedge the connection.
    if (!KeepsLivenessAssertable(plaintext)) plaintext = original;
    Inject(to_client, pid, plaintext,
           /*corrupt_after_seal=*/rng_.NextBool(0.1));
    sim_.Run(sim_.now() + 20 * kMillisecond);
  }

  /// End the abuse and let both ends re-announce their addresses — the
  /// ADD_ADDRESS recovery rule is what un-strands any path the forged
  /// REMOVE_ADDRESS / PATHS frames left remote-reported-failed.
  void Heal() {
    tampering_ = false;
    drop_to_client_ = false;
    drop_to_server_ = false;
    for (const sim::Address& addr : kVictimAddrs) {
      client_->AddLocalAddress(addr);
    }
    for (const sim::Address& addr : kPeerAddrs) {
      server_->AddLocalAddress(addr);
    }
  }

  /// Liveness: both directions still reach end-of-stream. Byte-accurate
  /// delivery is out of scope — an attacker with the keys can forge stream
  /// data or fins — the assertion is that nothing deadlocks or dies.
  bool FinishCleanly() {
    sim_.Run(sim_.now() + 60 * kSecond);
    return transfers_finished_ >= 2 && !client_->closed() &&
           !server_->closed();
  }

  Connection& client() { return *client_; }
  Connection& server() { return *server_; }
  sim::Simulator& sim() { return sim_; }

  /// Forge one sealed 1-RTT packet to the chosen endpoint. The packet
  /// number sits a little above the path's receive horizon so it decodes
  /// exactly; the horizon inflation this causes is why the fuzz loop
  /// keeps forgery off the transfer-carrying paths (see Step).
  void Inject(bool to_client, PathId pid, std::vector<std::uint8_t> plaintext,
              bool corrupt_after_seal) {
    Connection& dst = to_client ? *client_ : *server_;
    if (dst.closed()) return;
    Path* path = dst.GetPath(pid);
    const PacketNumber base = path == nullptr
                                  ? PacketNumber{800}
                                  : path->receiver().largest_received();
    const PacketNumber pn = base + 20 + rng_.NextBounded(40);
    PacketHeader header;
    header.cid = kForgeCid;
    header.multipath = true;
    header.path_id = pid;
    header.handshake = false;
    header.packet_number = pn;
    BufWriter writer;
    EncodeHeader(header, PacketNumber{0}, writer);
    std::vector<std::uint8_t> bytes(writer.data());
    const crypto::PacketProtection& prot =
        to_client ? *to_client_ : *to_server_;
    std::vector<std::uint8_t> sealed = prot.Seal(pid, pn, bytes, plaintext);
    if (corrupt_after_seal && !sealed.empty()) {
      sealed[rng_.NextBounded(sealed.size())] ^= 0x40;
    }
    bytes.insert(bytes.end(), sealed.begin(), sealed.end());
    // Occasionally arrive from an unexpected source address to exercise
    // the NAT-rebinding follow under forged traffic — but only on the
    // attacker-created path ids: the rebind trusts any authenticated
    // packet, so hijacking the remotes of the transfer-carrying paths 0/1
    // on both sides at once would deadlock the connection by design (no
    // path validation in this stack), not by bug.
    sim::Address src = to_client ? kPeerAddrs[0] : kVictimAddrs[0];
    if (pid.value() >= 2 && rng_.NextBool(0.2)) {
      src = sim::Address{9, static_cast<std::uint16_t>(rng_.NextBounded(4))};
    }
    const sim::Datagram dgram{src, to_client ? kVictimAddrs[0] : kPeerAddrs[0],
                              std::move(bytes)};
    dst.OnDatagram(dgram);
  }

  /// Adversarial path-management frame: unknown path ids, absurd RTTs,
  /// the victim's own addresses, duplicates, unroutable addresses.
  Frame RandomPathManagementFrame() {
    const sim::Address pool[] = {kVictimAddrs[0], kVictimAddrs[1],
                                 kPeerAddrs[0],  kPeerAddrs[1],
                                 {9, 0},         {9, 1},
                                 {37, 21}};
    constexpr std::size_t kPoolSize = std::size(pool);
    switch (rng_.NextBounded(3)) {
      case 0: {
        PathsFrame f;
        const std::size_t count = rng_.NextBounded(8);
        for (std::size_t i = 0; i < count; ++i) {
          f.paths.push_back(
              {PathId{static_cast<std::uint8_t>(rng_.NextBounded(16))},
               rng_.NextBool(0.5) ? PathStatus::kPotentiallyFailed
                                  : PathStatus::kActive,
               static_cast<Duration>(rng_.NextBounded(1ULL << 40))});
        }
        return f;
      }
      case 1: {
        AddAddressFrame f;
        const std::size_t count = rng_.NextBounded(5) + 1;
        for (std::size_t i = 0; i < count; ++i) {
          f.addresses.push_back(pool[rng_.NextBounded(kPoolSize)]);
        }
        return f;
      }
      default: {
        RemoveAddressFrame f;
        const std::size_t count = rng_.NextBounded(3) + 1;
        for (std::size_t i = 0; i < count; ++i) {
          f.addresses.push_back(pool[rng_.NextBounded(kPoolSize)]);
        }
        return f;
      }
    }
  }

 private:
  void Forward(bool to_server, sim::Address local, sim::Address remote,
               std::vector<std::uint8_t> bytes) {
    SniffHandshakeNonces(bytes);
    if (to_server ? drop_to_server_ : drop_to_client_) return;
    // Route only to addresses the destination actually owns; datagrams
    // aimed at forged ADD_ADDRESS destinations blackhole like the real
    // network would.
    const auto& owned = to_server ? kPeerAddrs : kVictimAddrs;
    if (std::find(std::begin(owned), std::end(owned), remote) ==
        std::end(owned)) {
      return;
    }
    TrackAndMaybeTamper(to_server, bytes,
                        /*tamper=*/tampering_ && rng_.NextBool(0.35));
    sim_.Schedule(5 * kMillisecond,
                  [this, to_server, local, remote,
                   bytes = std::move(bytes)]() mutable {
                    Connection& dst = to_server ? *server_ : *client_;
                    if (dst.closed()) return;
                    const sim::Datagram dgram{local, remote, std::move(bytes)};
                    dst.OnDatagram(dgram);
                  });
  }

  /// Mirror the receiver's packet-number reconstruction for every packet
  /// the attacker relays, and — while the fuzz loop runs — rewrite some of
  /// them: decrypt with the derived keys, append (possibly mutated)
  /// path-management frames, and re-seal under the SAME packet number.
  /// Unlike whole-packet forgery this leaves the path's packet-number
  /// space untouched, so it is the one way to keep hammering the live
  /// paths 0/1 with adversarial frames — including during the outage
  /// windows, when those paths are potentially-failed — without wedging
  /// packet-number reconstruction forever.
  void TrackAndMaybeTamper(bool to_server, std::vector<std::uint8_t>& bytes,
                           bool tamper) {
    BufReader reader(bytes);
    ParsedHeader parsed;
    if (!DecodeHeader(reader, parsed)) return;
    const PathId pid =
        parsed.header.multipath ? parsed.header.path_id : PathId{0};
    if (pid.value() >= kTrackedPaths) return;
    PacketNumber& largest = largest_relayed_[to_server ? 1 : 0][pid.value()];
    const PacketNumber pn = DecodePacketNumber(
        largest, parsed.header.packet_number, parsed.pn_length);
    if (pn > largest) largest = pn;
    if (!tamper || parsed.header.handshake || !to_server_ || !to_client_) {
      return;
    }
    const crypto::PacketProtection& prot =
        to_server ? *to_server_ : *to_client_;
    const std::span<const std::uint8_t> aad =
        std::span<const std::uint8_t>(bytes).subspan(0, parsed.header_size);
    std::vector<std::uint8_t> plaintext;
    if (!prot.Open(pid, pn, aad,
                   std::span<const std::uint8_t>(bytes)
                       .subspan(parsed.header_size),
                   plaintext)) {
      // The attacker's horizon estimate drifted (a forged packet moved the
      // victim's); relay the packet untouched.
      return;
    }
    BufWriter extra;
    const std::size_t count = rng_.NextBounded(2) + 1;
    for (std::size_t i = 0; i < count; ++i) {
      EncodeFrame(RandomPathManagementFrame(), extra);
    }
    const std::vector<std::uint8_t> appended(extra.data());
    std::vector<std::uint8_t> mutated = appended;
    if (rng_.NextBool(0.7)) {
      MutateBytes(rng_, mutated, rng_.NextBounded(4) + 1);
    }
    // The appendix rides a REAL packet: if it fails to decode, the whole
    // packet (honest frames included) is discarded after its packet number
    // was recorded — silent data loss the sender will never repair, i.e. a
    // stall inherent to holding the keys. Same for mutations that morph
    // into the honest frame types that can kill or stall a connection
    // outright (see Step). Either way fall back to the unmutated frames.
    if (!FullyDecodesLivenessSafe(mutated)) mutated = appended;
    plaintext.insert(plaintext.end(), mutated.begin(), mutated.end());
    const std::vector<std::uint8_t> sealed =
        prot.Seal(pid, pn, aad, plaintext);
    bytes.resize(parsed.header_size);
    bytes.insert(bytes.end(), sealed.begin(), sealed.end());
  }

  void SniffHandshakeNonces(const std::vector<std::uint8_t>& bytes) {
    if (!client_nonce_.empty() && !server_nonce_.empty()) return;
    BufReader reader(bytes);
    ParsedHeader parsed;
    if (!DecodeHeader(reader, parsed) || !parsed.header.handshake) return;
    BufReader frames(
        std::span<const std::uint8_t>(bytes).subspan(parsed.header_size));
    Frame frame;
    while (DecodeFrame(frames, frame)) {
      const auto* hs = std::get_if<HandshakeFrame>(&frame);
      if (hs == nullptr) continue;
      if (hs->message == HandshakeMessageType::kChlo) {
        client_nonce_ = hs->nonce;
      } else if (hs->message == HandshakeMessageType::kShlo) {
        server_nonce_ = hs->nonce;
      }
    }
  }

  static bool KeepsLivenessAssertable(const std::vector<std::uint8_t>& bytes) {
    BufReader reader(bytes);
    Frame frame;
    while (DecodeFrame(reader, frame)) {
      if (std::holds_alternative<ConnectionCloseFrame>(frame) ||
          std::holds_alternative<StreamFrame>(frame) ||
          std::holds_alternative<RstStreamFrame>(frame) ||
          std::holds_alternative<AckFrame>(frame)) {
        return false;
      }
    }
    return true;
  }

  /// Strict variant for frames spliced into real packets: every byte must
  /// decode, and no decoded frame may be one of the kill/stall types.
  static bool FullyDecodesLivenessSafe(const std::vector<std::uint8_t>& bytes) {
    BufReader reader(bytes);
    Frame frame;
    while (reader.remaining() > 0) {
      if (!DecodeFrame(reader, frame)) return false;
      if (std::holds_alternative<ConnectionCloseFrame>(frame) ||
          std::holds_alternative<StreamFrame>(frame) ||
          std::holds_alternative<RstStreamFrame>(frame) ||
          std::holds_alternative<AckFrame>(frame)) {
        return false;
      }
    }
    return true;
  }

  static constexpr std::uint8_t kTrackedPaths = 16;

  Rng rng_;
  sim::Simulator sim_;
  ConnectionConfig config_;
  std::unique_ptr<Connection> client_;
  std::unique_ptr<Connection> server_;
  std::vector<std::uint8_t> client_nonce_;
  std::vector<std::uint8_t> server_nonce_;
  std::optional<crypto::PacketProtection> to_client_;
  std::optional<crypto::PacketProtection> to_server_;
  bool drop_to_client_ = false;
  bool drop_to_server_ = false;
  bool tampering_ = false;
  /// Per-direction, per-path largest packet number the attacker has
  /// relayed — its copy of each receiver's reconstruction base.
  std::array<std::array<PacketNumber, kTrackedPaths>, 2> largest_relayed_{};
  int transfers_finished_ = 0;
};

TEST(FuzzMutation, ForgedPathFramesAgainstFailedPathsNeverCrashConnection) {
  OnPathAttacker attacker(0xF0552007);
  ASSERT_TRUE(attacker.EstablishAndDeriveKeys());
  attacker.StartTransfers();
  for (int iter = 0; iter < 400; ++iter) {
    attacker.Step(iter);
  }
  attacker.Heal();
  const bool clean = attacker.FinishCleanly();
  EXPECT_TRUE(clean);
  // The abuse must have actually reached the dispatcher: some forged
  // packets decrypt (and get processed), some fail authentication.
  EXPECT_GT(attacker.client().stats().packets_received, 100u);
  EXPECT_GT(attacker.client().stats().packets_decrypt_failed, 0u);
}

TEST(FuzzMutation, CorruptedSealedPacketsAreDroppedNotProcessed) {
  OnPathAttacker attacker(0xF0552008);
  ASSERT_TRUE(attacker.EstablishAndDeriveKeys());
  const std::uint64_t failed_before =
      attacker.client().stats().packets_decrypt_failed;
  for (int i = 0; i < 200; ++i) {
    BufWriter payload;
    EncodeFrame(attacker.RandomPathManagementFrame(), payload);
    attacker.Inject(/*to_client=*/true, PathId{0},
                    std::vector<std::uint8_t>(payload.data()),
                    /*corrupt_after_seal=*/true);
    attacker.sim().Run(attacker.sim().now() + kMillisecond);
  }
  // Every corrupted packet fails the tag check and changes nothing: no
  // path was stranded and the connection is still alive.
  EXPECT_GE(attacker.client().stats().packets_decrypt_failed,
            failed_before + 200);
  ASSERT_NE(attacker.client().GetPath(PathId{0}), nullptr);
  EXPECT_TRUE(attacker.client().GetPath(PathId{0})->Usable());
  EXPECT_FALSE(attacker.client().closed());
}

}  // namespace
}  // namespace mpq::quic

namespace mpq::obs {
namespace {

/// Produce a realistic trace through the actual writer.
std::string MakeTrace(Rng& rng) {
  std::stringstream stream;
  {
    QlogTracer tracer(stream, "fuzz");
    TimePoint now = 0;
    const int events = static_cast<int>(rng.NextBounded(40)) + 5;
    for (int i = 0; i < events; ++i) {
      now += static_cast<TimePoint>(rng.NextBounded(5000));
      const PathId path{static_cast<std::uint8_t>(rng.NextBounded(4))};
      switch (rng.NextBounded(4)) {
        case 0:
          tracer.OnPacketSent(now, path, PacketNumber{rng.NextBounded(1000)},
                              ByteCount{rng.NextBounded(1350)}, true);
          break;
        case 1:
          tracer.OnPacketLost(now, path, PacketNumber{rng.NextBounded(1000)});
          break;
        case 2:
          tracer.OnSchedulerDecision(now, path, "lowest-rtt",
                                     rng.NextBounded(100));
          break;
        default:
          tracer.OnPathSample(now, path, ByteCount{rng.NextBounded(1 << 20)},
                              ByteCount{rng.NextBounded(1 << 20)},
                              static_cast<Duration>(rng.NextBounded(1 << 20)));
          break;
      }
    }
  }
  return stream.str();
}

TEST(FuzzMutation, MutatedTracesNeverCrashReader) {
  Rng rng(0xF0552005);
  for (int iter = 0; iter < 1500; ++iter) {
    std::string text = MakeTrace(rng);
    // Byte-level corruption of the NDJSON text itself.
    const std::size_t edits = rng.NextBounded(12) + 1;
    for (std::size_t i = 0; i < edits; ++i) {
      if (text.empty()) break;
      const std::size_t pos = rng.NextBounded(text.size());
      if (rng.NextBool(0.5)) {
        text[pos] = static_cast<char>(rng.NextBounded(256));
      } else {
        text[pos] ^= static_cast<char>(1 << rng.NextBounded(8));
      }
    }
    // Sometimes cut the tail off mid-line (crashed-writer shape).
    if (rng.NextBool(0.4)) {
      text.resize(rng.NextBounded(text.size() + 1));
    }
    std::istringstream in(text);
    const TraceSummary summary = ReadTrace(in);
    // A corrupted trace may lose events but can never invent time
    // running backwards in the summary bounds.
    if (summary.events > 0) {
      EXPECT_LE(summary.first_time, summary.last_time);
    }
  }
}

TEST(FuzzMutation, TruncatedTracesCountTailAsMalformed) {
  Rng rng(0xF0552006);
  for (int iter = 0; iter < 300; ++iter) {
    const std::string text = MakeTrace(rng);
    // Cut inside the final line: strict NDJSON must flag the tail.
    const std::size_t last_nl = text.find_last_of('\n', text.size() - 2);
    const std::size_t cut =
        last_nl + 2 + rng.NextBounded(text.size() - last_nl - 2);
    std::istringstream in(text.substr(0, cut));
    const TraceSummary summary = ReadTrace(in);
    EXPECT_GE(summary.malformed, 1u) << "iter " << iter;
  }
}

}  // namespace
}  // namespace mpq::obs
